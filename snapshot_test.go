package mosaic_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mosaic"
)

// buildSnapshotWorld assembles a database exercising every dump feature at
// once: a derived population, a binned marginal, non-unit sample weights,
// and text values with embedded quotes.
func buildSnapshotWorld(t *testing.T) *mosaic.DB {
	t.Helper()
	db := mosaic.Open(snapshotOpts())
	if err := db.Exec(`
		CREATE GLOBAL POPULATION People (name TEXT, region TEXT, age INT);
		CREATE POPULATION North AS (SELECT name, region, age FROM People WHERE region = 'north');
		CREATE SAMPLE S AS (SELECT * FROM People);
		CREATE TABLE Census (region TEXT, n INT);
		CREATE TABLE Ages (age INT, n INT);
	`); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("Census", [][]any{{"north", 60}, {"south", 40}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Ingest("Ages", [][]any{
		{10, 25}, {20, 25}, {30, 25}, {40, 25},
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`
		CREATE METADATA People_M1 AS (SELECT region, n FROM Census);
		CREATE METADATA People_M2 WITH BINS (age 10) AS (SELECT age, n FROM Ages);
	`); err != nil {
		t.Fatal(err)
	}
	rows := [][]any{
		{"Anna", "north", 12}, {"O'Brien", "north", 23}, {"D'Arcy ''quoted''", "south", 34},
		{"Bob", "south", 41}, {"Cleo", "north", 18}, {"Miguel", "north", 29},
		{"Ines", "south", 37}, {"Lee", "north", 44},
	}
	if err := db.Ingest("S", rows); err != nil {
		t.Fatal(err)
	}
	// Non-unit weights on part of the sample.
	if err := db.Exec(`UPDATE SAMPLE S SET WEIGHT = 2.5 WHERE region = 'north'`); err != nil {
		t.Fatal(err)
	}
	return db
}

func snapshotOpts() *mosaic.Options {
	return &mosaic.Options{
		Seed:        5,
		OpenSamples: 3,
		SWG: mosaic.SWGConfig{
			Hidden: []int{16, 16}, Latent: 2, Epochs: 6,
			BatchSize: 64, Projections: 8, StepsPerEpoch: 4,
		},
	}
}

// snapshotQueries covers all three visibilities over both the GP and the
// derived population, plus an auxiliary-table query.
var snapshotQueries = []string{
	"SELECT CLOSED region, COUNT(*) FROM People GROUP BY region ORDER BY region",
	"SELECT CLOSED name FROM People ORDER BY name",
	"SELECT SEMI-OPEN region, COUNT(*) FROM People GROUP BY region ORDER BY region",
	"SELECT SEMI-OPEN COUNT(*) FROM North",
	"SELECT OPEN region, COUNT(*) FROM People GROUP BY region ORDER BY region",
	"SELECT region, n FROM Census ORDER BY region",
}

func renderExact(t *testing.T, db *mosaic.DB, q string) string {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, ","))
	for _, row := range res.Rows {
		b.WriteByte('\n')
		for _, v := range row {
			b.WriteString(v.HashKey())
			b.WriteByte('\x1f')
		}
	}
	return b.String()
}

func TestSnapshotRestoreAnswerFidelity(t *testing.T) {
	db := buildSnapshotWorld(t)
	before := make(map[string]string, len(snapshotQueries))
	for _, q := range snapshotQueries {
		before[q] = renderExact(t, db, q)
	}

	script, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Restore into the same DB: answers must be byte-identical.
	if err := db.Restore(script); err != nil {
		t.Fatalf("restore: %v\nscript:\n%s", err, script)
	}
	for _, q := range snapshotQueries {
		if got := renderExact(t, db, q); got != before[q] {
			t.Errorf("after in-place restore, %q diverged:\n got %q\nwant %q", q, got, before[q])
		}
	}

	// Restore into a brand-new DB with the same options: same guarantee.
	fresh := mosaic.Open(snapshotOpts())
	if err := fresh.Restore(script); err != nil {
		t.Fatalf("restore into fresh DB: %v", err)
	}
	for _, q := range snapshotQueries {
		if got := renderExact(t, fresh, q); got != before[q] {
			t.Errorf("after fresh restore, %q diverged:\n got %q\nwant %q", q, got, before[q])
		}
	}

	// A second snapshot of the restored state reproduces the script exactly:
	// the dump is a fixpoint.
	again, err := fresh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if again != script {
		t.Errorf("snapshot of restored DB differs from original snapshot:\n%s\n---\n%s", again, script)
	}
}

func TestSnapshotPreservesWeightsQuotesAndBins(t *testing.T) {
	db := buildSnapshotWorld(t)
	script, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"UPDATE SAMPLE S SET WEIGHT = 2.5", // non-unit weights survive
		"'O''Brien'",                       // embedded quote doubled
		"'D''Arcy ''''quoted'''''",         // doubled quotes re-doubled
		"WITH BINS (age 10)",               // binned marginal
		"CREATE POPULATION North",          // derived population
	} {
		if !strings.Contains(script, want) {
			t.Errorf("snapshot script missing %q:\n%s", want, script)
		}
	}
}

func TestSaveLoadSnapshotFile(t *testing.T) {
	db := buildSnapshotWorld(t)
	before := renderExact(t, db, snapshotQueries[0])
	path := filepath.Join(t.TempDir(), "snap.sql")
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	// The write is atomic: no temp files linger next to the snapshot.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "snap.sql" {
			t.Errorf("unexpected file %q next to snapshot", e.Name())
		}
	}

	fresh := mosaic.Open(snapshotOpts())
	if err := fresh.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if got := renderExact(t, fresh, snapshotQueries[0]); got != before {
		t.Errorf("loaded snapshot answers diverged:\n got %q\nwant %q", got, before)
	}

	// Saving over an existing snapshot replaces it atomically.
	if err := fresh.Exec(`INSERT INTO Census VALUES ('west', 5)`); err != nil {
		t.Fatal(err)
	}
	if err := fresh.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	again := mosaic.Open(snapshotOpts())
	if err := again.LoadSnapshot(path); err != nil {
		t.Fatal(err)
	}
	if got, _ := again.Scalar("SELECT COUNT(*) FROM Census"); got != 3 {
		t.Errorf("re-saved snapshot has %g census rows, want 3", got)
	}

	if err := db.LoadSnapshot(filepath.Join(t.TempDir(), "missing.sql")); err == nil {
		t.Error("loading a missing snapshot should fail")
	}
}

func TestRestoreFailureLeavesStateUntouched(t *testing.T) {
	db := buildSnapshotWorld(t)
	before := renderExact(t, db, snapshotQueries[0])
	if err := db.Restore("CREATE TABLE Broken (x INT); INSERT INTO Broken VALUES ('not an int')"); err == nil {
		t.Fatal("restore of a broken script should fail")
	}
	if got := renderExact(t, db, snapshotQueries[0]); got != before {
		t.Errorf("failed restore mutated state:\n got %q\nwant %q", got, before)
	}
}

// Demography demonstrates the SEMI-OPEN workflow the paper's Sec 6 calls
// out as Mosaic's prime use case: social-science survey reweighting. A
// survey sample over-represents one stratum; census marginals (age band ×
// region) calibrate it via IPF, and a known-mechanism variant shows
// Horvitz–Thompson weighting for comparison.
//
// Run with:
//
//	go run ./examples/demography
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mosaic"
)

func main() {
	db := mosaic.Open(&mosaic.Options{Seed: 9})

	must(db.Exec(`
		CREATE TABLE Census (age_band TEXT, region TEXT, n INT);
		CREATE GLOBAL POPULATION Residents (age_band TEXT, region TEXT, income FLOAT);
		CREATE SAMPLE Survey AS (SELECT * FROM Residents);
	`))

	// Census ground truth: age-band and region marginals of a synthetic
	// 100k-person region.
	type cell struct {
		age, region string
		n           int
	}
	truth := []cell{
		{"18-34", "urban", 22000}, {"18-34", "rural", 8000},
		{"35-54", "urban", 20000}, {"35-54", "rural", 12000},
		{"55+", "urban", 15000}, {"55+", "rural", 23000},
	}
	var censusRows [][]any
	for _, c := range truth {
		censusRows = append(censusRows, []any{c.age, c.region, c.n})
	}
	must(db.Ingest("Census", censusRows))
	must(db.Exec(`
		CREATE METADATA Residents_Age AS (SELECT age_band, SUM(n) FROM Census GROUP BY age_band);
		CREATE METADATA Residents_Region AS (SELECT region, SUM(n) FROM Census GROUP BY region);
	`))

	// The survey: an online panel that badly over-represents young urban
	// respondents. Incomes differ by stratum, so the raw mean is biased.
	rng := rand.New(rand.NewSource(4))
	meanIncome := map[string]float64{
		"18-34|urban": 42000, "18-34|rural": 35000,
		"35-54|urban": 61000, "35-54|rural": 48000,
		"55+|urban": 52000, "55+|rural": 39000,
	}
	panelShare := map[string]float64{ // sampling rates per stratum:
		// the panel massively over-represents affluent urban professionals.
		"18-34|urban": 0.012, "18-34|rural": 0.002,
		"35-54|urban": 0.040, "35-54|rural": 0.002,
		"55+|urban": 0.003, "55+|rural": 0.001,
	}
	var survey [][]any
	var trueTotalIncome, trueN float64
	for _, c := range truth {
		key := c.age + "|" + c.region
		trueTotalIncome += meanIncome[key] * float64(c.n)
		trueN += float64(c.n)
		for i := 0; i < c.n; i++ {
			if rng.Float64() < panelShare[key] {
				income := meanIncome[key] * (0.6 + 0.8*rng.Float64())
				survey = append(survey, []any{c.age, c.region, income})
			}
		}
	}
	must(db.Ingest("Survey", survey))
	trueMean := trueTotalIncome / trueN

	fmt.Printf("population 100000; survey panel %d respondents\n", len(survey))
	fmt.Printf("true mean income: %.0f\n\n", trueMean)

	raw, err := db.Scalar(`SELECT CLOSED AVG(income) FROM Residents`)
	must(err)
	fmt.Printf("CLOSED    AVG(income) = %.0f  (raw panel — biased %+.1f%%)\n",
		raw, 100*(raw-trueMean)/trueMean)

	ipf, err := db.Scalar(`SELECT SEMI-OPEN AVG(income) FROM Residents`)
	must(err)
	fmt.Printf("SEMI-OPEN AVG(income) = %.0f  (IPF against census marginals — %+.1f%%)\n",
		ipf, 100*(ipf-trueMean)/trueMean)

	count, err := db.Scalar(`SELECT SEMI-OPEN COUNT(*) FROM Residents`)
	must(err)
	fmt.Printf("SEMI-OPEN COUNT(*)    = %.0f  (population size recovered from marginals)\n\n", count)

	// Per-region calibrated means.
	res, err := db.Query(`
		SELECT SEMI-OPEN region, COUNT(*), AVG(income)
		FROM Residents GROUP BY region ORDER BY region`)
	must(err)
	fmt.Println("calibrated per-region estimates:")
	fmt.Println(res)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

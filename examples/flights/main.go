// Flights demonstrates OPEN query processing on the paper's Sec 5.3
// workload: a 5 % sample of domestic flights that is 95 %-biased toward
// long flights, debiased three ways (raw, IPF, M-SWG) against the true
// population, for a query the bias hurts (AVG elapsed time of long-distance
// flights) and a carrier GROUP BY.
//
// Run with:
//
//	go run ./examples/flights
package main

import (
	"fmt"
	"log"

	"mosaic/internal/bench"
	"mosaic/internal/exec"
	"mosaic/internal/sql"
	"mosaic/internal/swg"
)

func main() {
	setup, err := bench.BuildFlights(bench.FlightsConfig{
		PopN: 30000, OpenSamples: 5, Seed: 3,
		SWG: swg.Config{
			Hidden: []int{50, 50, 50}, Latent: 12, Lambda: 1e-6,
			BatchSize: 300, Projections: 32, Epochs: 12, LR: 0.002, Seed: 3,
		},
	})
	must(err)
	fmt.Printf("flights population %d rows; biased sample %d rows (95%% long flights)\n\n",
		setup.Pop.Len(), setup.SampleN)

	show := func(q string) {
		truthSel, err := sql.ParseQuery(q)
		must(err)
		truthRes, err := exec.Run(setup.Pop, truthSel, exec.Options{})
		must(err)
		fmt.Printf("query: %s\n", q)
		fmt.Printf("truth:\n%s\n", indent(truthRes.String()))
		for _, vis := range []string{"CLOSED", "SEMI-OPEN", "OPEN"} {
			sel, err := sql.ParseQuery(withVis(q, vis))
			must(err)
			res, err := setup.Engine.Query(sel)
			must(err)
			fmt.Printf("%s:\n%s\n", vis, indent(res.String()))
		}
		fmt.Println()
	}

	// Query 3 of Table 2: the biased sample overestimates elapsed time.
	show("SELECT AVG(elapsed_time) FROM Flights WHERE distance > 1000")
	// A carrier GROUP BY in the spirit of queries 5–8.
	show("SELECT carrier, AVG(distance) FROM Flights WHERE carrier IN ('WN', 'AA') GROUP BY carrier ORDER BY carrier")
}

func withVis(q, vis string) string {
	return "SELECT " + vis + " " + q[len("SELECT "):]
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Quickstart reproduces the paper's Sec 2 motivating example end to end: a
// data scientist estimates European migrant counts from a biased Yahoo-email
// sample, debiased against Eurostat-style marginal reports.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mosaic"
	"mosaic/internal/dataset"
)

func main() {
	db := mosaic.Open(&mosaic.Options{
		Seed:        42,
		OpenSamples: 5,
		SWG: mosaic.SWGConfig{
			Hidden: []int{48, 48}, Latent: 4, Epochs: 25,
			BatchSize: 256, Projections: 32, StepsPerEpoch: 8, LR: 0.003,
		},
	})

	// The true population (in reality unobservable; here synthetic so the
	// example can show ground truth).
	world := dataset.Migrants(dataset.MigrantsConfig{N: 20000, Seed: 7})

	// Lines 1–12 of the paper's example: an auxiliary table for the
	// Eurostat reports, the global population, its metadata, and the
	// Yahoo-only sample.
	must(db.Exec(`
		CREATE TEMPORARY TABLE Eurostat (country TEXT, email TEXT, reported_count INT);
		CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT, age INT);
		CREATE SAMPLE YahooMigrants AS
			(SELECT * FROM EuropeMigrants WHERE email = 'Yahoo');
	`))

	// "...Ingest Eurostat reports": per-country and per-provider counts.
	counts := map[[2]string]int64{}
	for i := 0; i < world.Len(); i++ {
		row := world.Row(i)
		counts[[2]string{row[0].AsText(), row[1].AsText()}]++
	}
	var reports [][]any
	for k, n := range counts {
		reports = append(reports, []any{k[0], k[1], n})
	}
	must(db.Ingest("Eurostat", reports))
	must(db.Exec(`
		CREATE METADATA EuropeMigrants_M1 AS
			(SELECT country, reported_count FROM Eurostat);
		CREATE METADATA EuropeMigrants_M2 AS
			(SELECT email, reported_count FROM Eurostat);
	`))

	// "...Ingest Yahoo sample": every Yahoo user (selection-biased by
	// countries' differing Yahoo shares).
	var sample [][]any
	for i := 0; i < world.Len(); i++ {
		row := world.Row(i)
		if row[1].AsText() == "Yahoo" {
			sample = append(sample, []any{row[0].AsText(), row[1].AsText(), row[2].AsInt()})
		}
	}
	must(db.Ingest("YahooMigrants", sample))
	fmt.Printf("population %d tuples; Yahoo sample %d tuples\n\n", world.Len(), len(sample))

	// The paper's first query: SEMI-OPEN reweighting. Only Yahoo rows
	// appear, but their weights now represent whole countries.
	fmt.Println("SELECT SEMI-OPEN country, email, COUNT(*) ... GROUP BY country, email")
	res, err := db.Query(`
		SELECT SEMI-OPEN country, email, COUNT(*)
		FROM EuropeMigrants
		GROUP BY country, email
		ORDER BY country`)
	must(err)
	fmt.Println(res)
	fmt.Println()

	// The paper's second query: OPEN generation. Mosaic invents the
	// missing providers (Gmail, AOL, Outlook) from the marginals.
	fmt.Println("SELECT OPEN country, email, COUNT(*) ... GROUP BY country, email")
	res, err = db.Query(`
		SELECT OPEN country, email, COUNT(*)
		FROM EuropeMigrants
		GROUP BY country, email
		ORDER BY country, email`)
	must(err)
	fmt.Println(res)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

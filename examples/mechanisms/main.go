// Mechanisms demonstrates the two SEMI-OPEN subcases of the paper's Sec 4.1
// through the public API only: a sample with a *known* mechanism is
// reweighted by inverse inclusion probability (no metadata needed at all),
// and the same analysis with an *unknown* mechanism falls back to IPF
// against marginals. EXPLAIN shows the engine's routing for each.
//
// Run with:
//
//	go run ./examples/mechanisms
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mosaic"
)

func main() {
	db := mosaic.Open(&mosaic.Options{Seed: 5})

	must(db.Exec(`
		CREATE GLOBAL POPULATION Orders (region TEXT, amount FLOAT);
		CREATE SAMPLE Audit AS (SELECT * FROM Orders USING MECHANISM UNIFORM PERCENT 4);
		CREATE SAMPLE Legacy AS (SELECT * FROM Orders);
		CREATE TABLE RegionTotals (region TEXT, n INT);
	`))

	// A synthetic order population: 50k orders over three regions with
	// different mean amounts.
	rng := rand.New(rand.NewSource(2))
	regions := []string{"east", "west", "south"}
	share := []float64{0.5, 0.3, 0.2}
	mean := []float64{120, 240, 80}
	const n = 50000
	counts := map[string]int{}
	var audit, legacy [][]any
	var trueSum float64
	for i := 0; i < n; i++ {
		u := rng.Float64()
		ri := 0
		acc := 0.0
		for j, s := range share {
			acc += s
			if u <= acc {
				ri = j
				break
			}
		}
		amount := mean[ri] * (0.5 + rng.Float64())
		trueSum += amount
		counts[regions[ri]]++
		// Audit: a genuine 4% uniform subsample (known mechanism).
		if rng.Float64() < 0.04 {
			audit = append(audit, []any{regions[ri], amount})
		}
		// Legacy: a region-skewed dump with unknown provenance.
		pick := 0.002
		if ri == 1 {
			pick = 0.02 // west-heavy
		}
		if rng.Float64() < pick {
			legacy = append(legacy, []any{regions[ri], amount})
		}
	}
	must(db.Ingest("Audit", audit))
	must(db.Ingest("Legacy", legacy))
	var totals [][]any
	for _, r := range regions {
		totals = append(totals, []any{r, counts[r]})
	}
	must(db.Ingest("RegionTotals", totals))
	must(db.Exec(`CREATE METADATA Orders_M1 AS (SELECT region, n FROM RegionTotals)`))

	fmt.Printf("population: %d orders, true total amount %.0f\n", n, trueSum)
	fmt.Printf("audit sample (known 4%% uniform): %d rows\n", len(audit))
	fmt.Printf("legacy sample (unknown, west-skewed): %d rows\n\n", len(legacy))

	// The engine picks the largest covering sample (Audit here) and, since
	// its mechanism is known, routes SEMI-OPEN through Horvitz–Thompson
	// weighting rather than IPF — EXPLAIN shows the decision.
	explain, err := db.Run(`EXPLAIN SELECT SEMI-OPEN SUM(amount) FROM Orders`)
	must(err)
	fmt.Println("EXPLAIN SELECT SEMI-OPEN SUM(amount) FROM Orders:")
	fmt.Println(explain[0])
	fmt.Println()

	est, err := db.Scalar(`SELECT SEMI-OPEN SUM(amount) FROM Orders`)
	must(err)
	fmt.Printf("SEMI-OPEN SUM(amount) = %.0f (truth %.0f, err %+.1f%%)\n\n",
		est, trueSum, 100*(est-trueSum)/trueSum)

	// Per-region counts line up with the census regardless of skew.
	res, err := db.Query(`SELECT SEMI-OPEN region, COUNT(*) FROM Orders GROUP BY region ORDER BY region`)
	must(err)
	fmt.Println("SEMI-OPEN per-region counts (vs census):")
	fmt.Println(res)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Spiral visualizes Fig 5 in the terminal: the 2-D spiral population, the
// spatially biased sample, and the M-SWG-generated sample, rendered as
// ASCII density plots, plus the marginal-fit metrics.
//
// Run with:
//
//	go run ./examples/spiral
package main

import (
	"fmt"
	"log"

	"mosaic/internal/bench"
	"mosaic/internal/swg"
	"mosaic/internal/table"
)

func main() {
	setup, err := bench.BuildSpiral(bench.SpiralConfig{
		PopN: 20000, SampleN: 4000, Bias: 8, Bins: 32, Seed: 2,
		SWG: swg.Config{
			Hidden: []int{64, 64, 64}, Latent: 2, Lambda: 0.04,
			BatchSize: 400, Projections: 32, Epochs: 20, StepsPerEpoch: 8,
			LR: 0.002, Seed: 2,
		},
	})
	must(err)
	gen, err := setup.Model.Generate("mswg", 4000)
	must(err)

	fmt.Println("population (spiral):")
	plot(setup.Pop)
	fmt.Println("\nbiased sample (right half over-represented 8:1):")
	plot(setup.Sample)
	fmt.Println("\nM-SWG generated sample:")
	plot(gen)

	res, err := bench.Figure5From(setup)
	must(err)
	fmt.Println()
	fmt.Println(res)
}

// plot renders a 60×24 ASCII density map of the table's (x, y) columns.
func plot(t *table.Table) {
	const w, h = 60, 24
	xs, err := t.FloatColumn("x")
	must(err)
	ys, err := t.FloatColumn("y")
	must(err)
	grid := make([]int, w*h)
	maxC := 0
	for i := range xs {
		cx := int((xs[i] + 0.3) / 1.6 * float64(w))
		cy := int((1.3 - ys[i]) / 1.8 * float64(h))
		if cx < 0 || cx >= w || cy < 0 || cy >= h {
			continue
		}
		grid[cy*w+cx]++
		if grid[cy*w+cx] > maxC {
			maxC = grid[cy*w+cx]
		}
	}
	shades := []byte(" .:-=+*#%@")
	for row := 0; row < h; row++ {
		line := make([]byte, w)
		for col := 0; col < w; col++ {
			c := grid[row*w+col]
			if c == 0 {
				line[col] = ' '
				continue
			}
			idx := 1 + c*(len(shades)-2)/max(1, maxC)
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			line[col] = shades[idx]
		}
		fmt.Println("  " + string(line))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

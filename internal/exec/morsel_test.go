package exec

import (
	"fmt"
	"sync"
	"testing"

	"mosaic/internal/sql"
	"mosaic/internal/value"
)

// The differential and metamorphic grids run on small tables (≤500 rows),
// which sit far below the 64K-row morsel size: with Workers > 1 they only
// exercise the pool plumbing and the across-aggregates fan-out, never the
// multi-morsel code paths. This file pins those paths on a table large
// enough (3×morselRows + change) that forEachMorsel really partitions,
// ternSelection really stitches per-morsel segments, groupIDsParallel
// really merges per-morsel key tables, and the parallel merge sort really
// merges sorted runs.

const morselTestRows = 3*morselRows + 4321

// morselQueries are bench-shaped queries chosen so each parallel code path
// is on the hot line for at least one of them.
var morselQueries = []string{
	// ternSelection (parallel segment stitch) + selection kernels.
	"SELECT id FROM t WHERE x > 5 AND c != 'g3'",
	// Arithmetic kernels inside WHERE (parallel fills over shared errs bitmap).
	"SELECT id FROM t WHERE y * 2 > x + 1",
	// Weighted global multi-aggregate (fan-out across aggregate items).
	"SELECT COUNT(*), SUM(x), AVG(y), MIN(x), MAX(y) FROM t",
	// Low-cardinality group-by: groupIDsParallel over a TEXT key.
	"SELECT c, COUNT(*), SUM(x) FROM t GROUP BY c ORDER BY c",
	// Composite key group-by: per-key dense ids folded pairwise.
	"SELECT c, b, COUNT(*) FROM t GROUP BY c, b ORDER BY c, b",
	// FLOAT key group-by: NaN and NULL keys through the nullKeyBits sentinel.
	"SELECT y, COUNT(*) FROM t GROUP BY y ORDER BY y",
	// Full sort on NaN-free keys: the parallel stable merge sort.
	"SELECT x, id FROM t ORDER BY x, id",
	// Full sort on a NaN-carrying key: must take the serial fallback.
	"SELECT y, id FROM t ORDER BY y, id",
	// Bounded top-K against the same ordering.
	"SELECT id, y FROM t ORDER BY y DESC, id LIMIT 25",
	// Columnar DISTINCT (group-by machinery, first-appearance order).
	"SELECT DISTINCT c, b FROM t",
	// Division by zero inside an aggregate: the error must be byte-identical
	// at every worker count (y - y is 0 except for NULL/NaN rows).
	"SELECT SUM(x / (y - y)) FROM t",
	// Division by zero inside WHERE.
	"SELECT id FROM t WHERE x % (x - x) = 0",
}

// TestMorselDeterminism: on a genuinely multi-morsel table, the row
// interpreter and the vectorized path at 1, 2, 4, and 8 workers must agree
// byte for byte — same rendered result or same error string.
func TestMorselDeterminism(t *testing.T) {
	tbl := metaTable(t, morselTestRows, 97)
	for _, src := range morselQueries {
		sel, err := sql.ParseQuery(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rres, rerr := Run(tbl, sel, Options{Weighted: true, ForceRow: true})
		for _, w := range sweepWorkers {
			vres, verr := Run(tbl, sel, Options{Weighted: true, Workers: w})
			switch {
			case rerr != nil && verr != nil:
				if rerr.Error() != verr.Error() {
					t.Errorf("%q: error mismatch\n  row: %v\n  vec(%d workers): %v", src, rerr, w, verr)
				}
			case rerr != nil || verr != nil:
				t.Errorf("%q: one path errored\n  row: %v\n  vec(%d workers): %v", src, rerr, w, verr)
			default:
				if rs, vs := rres.String(), vres.String(); rs != vs {
					t.Errorf("%q: vec(%d workers) diverged from row path (%d vs %d rendered bytes)",
						src, w, len(rs), len(vs))
				}
			}
		}
	}
}

// TestParallelQueryWithConcurrentMutation: morsel-parallel queries racing
// against concurrent appends and truncates must stay safe — each query takes
// one consistent table.Snapshot up front and never touches live column
// storage again. Run under -race this pins the snapshot lock-once contract
// for the worker pool; the final exchange re-checks determinism on the
// post-churn table.
func TestParallelQueryWithConcurrentMutation(t *testing.T) {
	tbl := metaTable(t, morselRows+2048, 131)
	queries := []string{
		"SELECT c, COUNT(*), SUM(x) FROM t GROUP BY c ORDER BY c",
		"SELECT COUNT(*), SUM(x), AVG(y) FROM t WHERE y * 2 > x + 1",
		"SELECT x, id FROM t ORDER BY x, id LIMIT 100",
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				src := queries[(g+i)%len(queries)]
				sel, err := sql.ParseQuery(src)
				if err != nil {
					t.Errorf("parse %q: %v", src, err)
					return
				}
				if _, err := Run(tbl, sel, Options{Weighted: true, Workers: 4}); err != nil {
					t.Errorf("%q under mutation: %v", src, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			row := []value.Value{
				value.Int(int64(i)), value.Text("g1"), value.Int(int64(i % 7)),
				value.Float(float64(i%9) / 2), value.Bool(i%2 == 0),
			}
			if err := tbl.AppendWeighted(row, 1.5); err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if i == 200 {
				tbl.Truncate()
			}
		}
	}()
	wg.Wait()

	// Post-churn table: the determinism contract still holds.
	sel, err := sql.ParseQuery(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(tbl, sel, Options{Weighted: true, ForceRow: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(tbl, sel, Options{Weighted: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want.String() != got.String() {
		t.Errorf("post-churn divergence:\n row: %s\n vec: %s", want, got)
	}
}

func init() {
	if morselRows%64 != 0 {
		panic("morselRows must stay a multiple of 64: parallel bitmap writers rely on it")
	}
}

func BenchmarkMorselGroupBy(b *testing.B) {
	tbl := metaTable(b, morselTestRows, 97)
	sel, err := sql.ParseQuery("SELECT c, COUNT(*), SUM(x) FROM t GROUP BY c")
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(tbl, sel, Options{Weighted: true, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

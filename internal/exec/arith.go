// Arithmetic vector kernels: +, -, *, /, % over typed columns.
//
// A numVec is one numeric operand of a WHERE comparison (or an aggregate
// input) materialized as a typed vector: int64 when the whole expression
// stays in exact integer arithmetic, float64 otherwise, with null and error
// bitmaps on the side. The compiler mirrors expr.evalArith exactly — INT op
// INT stays int64 (including wraparound) except division, everything else
// computes through float64 in the interpreter's operand order — so results
// are bit-identical to the row path. The only dynamic error arithmetic over
// numeric columns can raise is division by zero; rows that would raise it
// carry an error bit, which the consuming kernels turn into ternErr.
package exec

import (
	"errors"
	"math"

	"mosaic/internal/expr"
	"mosaic/internal/value"
)

// errDivisionByZero is the vectorized twin of the interpreter's division
// error; the messages must match byte for byte (the differential harness
// compares error strings across the two executors).
var errDivisionByZero = errors.New("expr: division by zero")

// numVec is a numeric operand: exactly one of ints/floats is set. Bitmaps
// are 64 rows per word; nil means "no bits set". Payload and bitmap slices
// may be shared with the snapshot's columns and must not be mutated.
//
// Constant operands broadcast as scalars instead of materializing
// table-length vectors: scalar means the payload slice holds a single
// element every row shares, constNull means every row is NULL (payload
// unused; errs may still carry per-row bits from a nested operand), and
// constErr means every row raises division-by-zero. The arithmetic and
// comparison kernels read scalars into registers; consumers whose loops
// index per row call full() first.
type numVec struct {
	isInt     bool
	scalar    bool // payload is one broadcast element
	constNull bool // every row NULL
	constErr  bool // every row raises "expr: division by zero"
	ints      []int64
	floats    []float64
	nulls     []uint64
	errs      []uint64 // rows that raise "expr: division by zero"
}

// scalarInt returns the broadcast element of a scalar int vector.
func (v *numVec) scalarInt() int64 { return v.ints[0] }

// scalarFloat returns the broadcast element of a scalar vector as float64.
func (v *numVec) scalarFloat() float64 {
	if v.isInt {
		return float64(v.ints[0])
	}
	return v.floats[0]
}

// full materializes a scalar vector at table length n — the shape consumers
// with per-row indexing expect, identical to what numConst built before
// scalars existed. Non-scalar vectors return unchanged.
func (v *numVec) full(n int) *numVec {
	if !v.scalar {
		return v
	}
	allOnes := func() []uint64 {
		bm := newBitmap(n)
		for i := range bm {
			bm[i] = ^uint64(0)
		}
		return bm
	}
	switch {
	case v.constErr:
		return &numVec{floats: make([]float64, n), errs: allOnes()}
	case v.constNull:
		return &numVec{floats: make([]float64, n), nulls: allOnes(), errs: v.errs}
	case v.isInt:
		xs := make([]int64, n)
		x := v.ints[0]
		for i := range xs {
			xs[i] = x
		}
		return &numVec{isInt: true, ints: xs}
	default:
		xs := make([]float64, n)
		x := v.floats[0]
		for i := range xs {
			xs[i] = x
		}
		return &numVec{floats: xs}
	}
}

func bitGet(bm []uint64, i int) bool {
	if bm == nil {
		return false
	}
	w := i >> 6
	if w >= len(bm) {
		return false
	}
	return bm[w]&(1<<(uint(i)&63)) != 0
}

func bitSet(bm []uint64, i int) {
	bm[i>>6] |= 1 << (uint(i) & 63)
}

func newBitmap(n int) []uint64 { return make([]uint64, (n+63)/64) }

// orBits merges two bitmaps (either may be nil, lengths may differ).
func orBits(a, b []uint64, n int) []uint64 {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := newBitmap(n)
	copy(out, a)
	for i := range b {
		if i < len(out) {
			out[i] |= b[i]
		}
	}
	return out
}

// overlayBits writes v into dst wherever the bitmap is set; dst covers rows
// [lo, lo+len(dst)) of the bitmap.
func overlayBits(dst []int8, bm []uint64, v int8, lo int) {
	if bm == nil {
		return
	}
	for i := range dst {
		if bitGet(bm, lo+i) {
			dst[i] = v
		}
	}
}

// floatView returns the vector's values as float64s, converting an int
// vector once (the coercion value.Compare applies to mixed comparisons).
func (v *numVec) floatView() []float64 {
	if !v.isInt {
		return v.floats
	}
	out := make([]float64, len(v.ints))
	for i, x := range v.ints {
		out[i] = float64(x)
	}
	return out
}

// compileNum compiles e into a numeric vector, or returns nil when e falls
// outside the arithmetic kernel set (non-numeric operands, unknown columns,
// aggregates — the caller then declines and the interpreter reproduces the
// exact per-row semantics, including lazy errors).
func (c *kernelCompiler) compileNum(e expr.Expr) *numVec {
	if v, ok := foldConst(e); ok {
		return c.numConst(v)
	}
	switch ex := e.(type) {
	case *expr.Column:
		ref, ok := c.resolve(ex.Name)
		if !ok {
			return nil
		}
		switch {
		case ref.isWeight:
			return &numVec{floats: ref.weight}
		case ref.kind == value.KindInt:
			return &numVec{isInt: true, ints: ref.col.Ints, nulls: ref.col.Nulls}
		case ref.kind == value.KindFloat:
			return &numVec{floats: ref.col.Floats, nulls: ref.col.Nulls}
		default:
			return nil // arithmetic on BOOL/TEXT errors per row: interpreted fallback
		}
	case *expr.Unary:
		if !ex.Neg {
			return nil // NOT yields BOOL; arithmetic on it errors per row
		}
		child := c.compileNum(ex.Child)
		if child == nil {
			return nil
		}
		if child.constNull || child.constErr {
			return child // negating NULL/error changes nothing
		}
		if child.scalar {
			if child.isInt {
				return &numVec{isInt: true, scalar: true, ints: []int64{-child.ints[0]}}
			}
			return &numVec{scalar: true, floats: []float64{-child.floats[0]}}
		}
		out := &numVec{isInt: child.isInt, nulls: child.nulls, errs: child.errs}
		if child.isInt {
			out.ints = make([]int64, len(child.ints))
			for i, x := range child.ints {
				out.ints[i] = -x
			}
		} else {
			out.floats = make([]float64, len(child.floats))
			for i, x := range child.floats {
				out.floats[i] = -x
			}
		}
		return out
	case *expr.Binary:
		switch ex.Op {
		case expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv, expr.OpMod:
		default:
			return nil // comparisons/logic yield BOOL
		}
		l := c.compileNum(ex.Left)
		if l == nil {
			return nil
		}
		r := c.compileNum(ex.Right)
		if r == nil {
			return nil
		}
		return c.numArith(ex.Op, l, r)
	default:
		return nil
	}
}

// numConst broadcasts a constant as a scalar vector: one element shared by
// every row, never a table-length materialization. NULL becomes a constNull
// scalar (NULL propagates through arithmetic, so payload values are never
// observed).
func (c *kernelCompiler) numConst(v value.Value) *numVec {
	switch v.Kind() {
	case value.KindInt:
		return &numVec{isInt: true, scalar: true, ints: []int64{v.AsInt()}}
	case value.KindFloat:
		return &numVec{scalar: true, floats: []float64{v.AsFloat()}}
	case value.KindNull:
		return &numVec{scalar: true, constNull: true}
	default:
		return nil // BOOL/TEXT constants are not arithmetic operands
	}
}

// numArith applies one arithmetic operator elementwise, mirroring
// expr.evalArith: NULL-before-error (a NULL operand yields NULL even when
// the divisor is zero), exact int64 arithmetic for INT op INT except /, and
// float64 otherwise. Scalar operands stay scalar inside the loops — the
// constant reads once into a register instead of being materialized as a
// table-length vector — so `x*2 > y+500` allocates exactly one vector per
// computed operand.
func (c *kernelCompiler) numArith(op expr.BinOp, l, r *numVec) *numVec {
	n := c.n
	// Whole-row constants decide first: an erroring operand errors every row
	// (operand evaluation precedes evalArith's NULL check), and a NULL
	// constant nulls every row while keeping the other side's error bits.
	if l.constErr || r.constErr {
		return &numVec{scalar: true, constErr: true}
	}
	if l.constNull || r.constNull {
		return &numVec{scalar: true, constNull: true, errs: orBits(l.errs, r.errs, n)}
	}
	if l.scalar && r.scalar {
		// Two plain constants reach the compiler only when an enclosing node
		// kept them from folding (an erroring parent): one element computes
		// every row.
		return arithScalarScalar(op, l, r)
	}
	out := &numVec{
		nulls: orBits(l.nulls, r.nulls, n),
		errs:  orBits(l.errs, r.errs, n),
	}
	// The fills below run morsel-parallel (compile-time work, nil ctx: never
	// cancelled). Each morsel writes disjoint payload rows, and morselRows is
	// a multiple of 64, so error-bit writers never share a bitmap word — but
	// the shared errs bitmap must be privately owned *before* the fan-out.
	if l.isInt && r.isInt && op != expr.OpDiv {
		out.isInt = true
		out.ints = make([]int64, n)
		if op == expr.OpMod {
			out.errs = ownBits(out.errs, n)
		}
		_ = forEachMorsel(nil, n, c.workers, func(lo, hi int) {
			switch {
			case r.scalar:
				arithIntVS(op, out, l.ints, r.scalarInt(), lo, hi)
			case l.scalar:
				arithIntSV(op, out, l.scalarInt(), r.ints, lo, hi)
			default:
				arithIntVV(op, out, l.ints, r.ints, lo, hi)
			}
		})
		return out
	}
	out.floats = make([]float64, n)
	if op == expr.OpDiv || op == expr.OpMod {
		out.errs = ownBits(out.errs, n)
	}
	lf, rf := l.floatView(), r.floatView()
	_ = forEachMorsel(nil, n, c.workers, func(lo, hi int) {
		switch {
		case r.scalar:
			arithFloatVS(op, out, lf, r.scalarFloat(), lo, hi)
		case l.scalar:
			arithFloatSV(op, out, l.scalarFloat(), rf, lo, hi)
		default:
			arithFloatVV(op, out, lf, rf, lo, hi)
		}
	})
	return out
}

// arithScalarScalar computes a constant-only operation as a single element,
// with the interpreter's exact semantics (zero divisors error every row).
func arithScalarScalar(op expr.BinOp, l, r *numVec) *numVec {
	if l.isInt && r.isInt && op != expr.OpDiv {
		x, y := l.scalarInt(), r.scalarInt()
		if op == expr.OpMod && y == 0 {
			return &numVec{scalar: true, constErr: true}
		}
		var v int64
		switch op {
		case expr.OpAdd:
			v = x + y
		case expr.OpSub:
			v = x - y
		case expr.OpMul:
			v = x * y
		case expr.OpMod:
			v = x % y
		}
		return &numVec{isInt: true, scalar: true, ints: []int64{v}}
	}
	x, y := l.scalarFloat(), r.scalarFloat()
	if (op == expr.OpDiv || op == expr.OpMod) && y == 0 {
		return &numVec{scalar: true, constErr: true}
	}
	var v float64
	switch op {
	case expr.OpAdd:
		v = x + y
	case expr.OpSub:
		v = x - y
	case expr.OpMul:
		v = x * y
	case expr.OpDiv:
		v = x / y
	case expr.OpMod:
		v = math.Mod(x, y)
	}
	return &numVec{scalar: true, floats: []float64{v}}
}

// arithIntVV is the vector⊙vector int kernel (exact int64, incl. wraparound),
// filling rows [lo, hi). The caller owns out.errs before any % fan-out.
func arithIntVV(op expr.BinOp, out *numVec, a, b []int64, lo, hi int) {
	switch op {
	case expr.OpAdd:
		for i := lo; i < hi; i++ {
			out.ints[i] = a[i] + b[i]
		}
	case expr.OpSub:
		for i := lo; i < hi; i++ {
			out.ints[i] = a[i] - b[i]
		}
	case expr.OpMul:
		for i := lo; i < hi; i++ {
			out.ints[i] = a[i] * b[i]
		}
	case expr.OpMod:
		for i := lo; i < hi; i++ {
			if b[i] == 0 {
				if !bitGet(out.nulls, i) {
					bitSet(out.errs, i)
				}
				continue
			}
			out.ints[i] = a[i] % b[i]
		}
	}
}

// arithIntVS is vector⊙scalar: the broadcast operand lives in a register. A
// zero scalar divisor errors every non-null row without a per-row branch.
func arithIntVS(op expr.BinOp, out *numVec, a []int64, y int64, lo, hi int) {
	switch op {
	case expr.OpAdd:
		for i := lo; i < hi; i++ {
			out.ints[i] = a[i] + y
		}
	case expr.OpSub:
		for i := lo; i < hi; i++ {
			out.ints[i] = a[i] - y
		}
	case expr.OpMul:
		for i := lo; i < hi; i++ {
			out.ints[i] = a[i] * y
		}
	case expr.OpMod:
		if y == 0 {
			for i := lo; i < hi; i++ {
				if !bitGet(out.nulls, i) {
					bitSet(out.errs, i)
				}
			}
			return
		}
		for i := lo; i < hi; i++ {
			out.ints[i] = a[i] % y
		}
	}
}

// arithIntSV is scalar⊙vector (the divisor varies per row for %).
func arithIntSV(op expr.BinOp, out *numVec, x int64, b []int64, lo, hi int) {
	switch op {
	case expr.OpAdd:
		for i := lo; i < hi; i++ {
			out.ints[i] = x + b[i]
		}
	case expr.OpSub:
		for i := lo; i < hi; i++ {
			out.ints[i] = x - b[i]
		}
	case expr.OpMul:
		for i := lo; i < hi; i++ {
			out.ints[i] = x * b[i]
		}
	case expr.OpMod:
		for i := lo; i < hi; i++ {
			y := b[i]
			if y == 0 {
				if !bitGet(out.nulls, i) {
					bitSet(out.errs, i)
				}
				continue
			}
			out.ints[i] = x % y
		}
	}
}

// arithFloatVV is the vector⊙vector float kernel over rows [lo, hi).
func arithFloatVV(op expr.BinOp, out *numVec, lf, rf []float64, lo, hi int) {
	switch op {
	case expr.OpAdd:
		for i := lo; i < hi; i++ {
			out.floats[i] = lf[i] + rf[i]
		}
	case expr.OpSub:
		for i := lo; i < hi; i++ {
			out.floats[i] = lf[i] - rf[i]
		}
	case expr.OpMul:
		for i := lo; i < hi; i++ {
			out.floats[i] = lf[i] * rf[i]
		}
	case expr.OpDiv, expr.OpMod:
		mod := op == expr.OpMod
		for i := lo; i < hi; i++ {
			if rf[i] == 0 {
				if !bitGet(out.nulls, i) {
					bitSet(out.errs, i)
				}
				continue
			}
			if mod {
				out.floats[i] = math.Mod(lf[i], rf[i])
			} else {
				out.floats[i] = lf[i] / rf[i]
			}
		}
	}
}

// arithFloatVS is vector⊙scalar; a zero scalar divisor errors every non-null
// row, any other divisor drops the per-row zero check entirely.
func arithFloatVS(op expr.BinOp, out *numVec, lf []float64, y float64, lo, hi int) {
	switch op {
	case expr.OpAdd:
		for i := lo; i < hi; i++ {
			out.floats[i] = lf[i] + y
		}
	case expr.OpSub:
		for i := lo; i < hi; i++ {
			out.floats[i] = lf[i] - y
		}
	case expr.OpMul:
		for i := lo; i < hi; i++ {
			out.floats[i] = lf[i] * y
		}
	case expr.OpDiv, expr.OpMod:
		if y == 0 {
			for i := lo; i < hi; i++ {
				if !bitGet(out.nulls, i) {
					bitSet(out.errs, i)
				}
			}
			return
		}
		if op == expr.OpMod {
			for i := lo; i < hi; i++ {
				out.floats[i] = math.Mod(lf[i], y)
			}
			return
		}
		for i := lo; i < hi; i++ {
			out.floats[i] = lf[i] / y
		}
	}
}

// arithFloatSV is scalar⊙vector (the divisor varies per row).
func arithFloatSV(op expr.BinOp, out *numVec, x float64, rf []float64, lo, hi int) {
	switch op {
	case expr.OpAdd:
		for i := lo; i < hi; i++ {
			out.floats[i] = x + rf[i]
		}
	case expr.OpSub:
		for i := lo; i < hi; i++ {
			out.floats[i] = x - rf[i]
		}
	case expr.OpMul:
		for i := lo; i < hi; i++ {
			out.floats[i] = x * rf[i]
		}
	case expr.OpDiv, expr.OpMod:
		mod := op == expr.OpMod
		for i := lo; i < hi; i++ {
			y := rf[i]
			if y == 0 {
				if !bitGet(out.nulls, i) {
					bitSet(out.errs, i)
				}
				continue
			}
			if mod {
				out.floats[i] = math.Mod(x, y)
			} else {
				out.floats[i] = x / y
			}
		}
	}
}

// ownBits returns a full-width, privately owned copy of bm (which may be nil
// or shared with a child vector) so the caller can set bits into it.
func ownBits(bm []uint64, n int) []uint64 {
	out := newBitmap(n)
	copy(out, bm)
	return out
}

// --- kernels over numeric vectors ---

// cmpNumNumKernel compares two numeric vectors with value.Compare semantics:
// exact int64 when both sides stayed integer, float64 (NaN comparing equal
// to everything, like the interpreter's "neither smaller") otherwise.
// Scalar operands compare from a register — the common `x*2 > 500` shape
// never materializes the constant side.
type cmpNumNumKernel struct {
	a, b   *numVec
	af, bf []float64 // precomputed float views of non-scalar mixed operands
	lut    [3]int8
}

// newCmpNumNum builds the comparison kernel, materializing any int→float
// coercion once at compile time: eval runs per morsel, and re-deriving a
// floatView inside each morsel would redo the whole-column conversion per
// morsel (and allocate under the worker pool).
func newCmpNumNum(a, b *numVec, lut [3]int8) kernel {
	k := &cmpNumNumKernel{a: a, b: b, lut: lut}
	wholeRowConst := a.constErr || b.constErr || a.constNull || b.constNull
	if !wholeRowConst && !(a.isInt && b.isInt) {
		if !a.scalar {
			k.af = a.floatView()
		}
		if !b.scalar {
			k.bf = b.floatView()
		}
	}
	return k
}

func (k *cmpNumNumKernel) eval(dst []int8, lo, hi int) {
	a, b := k.a, k.b
	// Whole-row constants first: an erroring operand errors every row; a
	// NULL constant nulls every row but still surfaces the other side's
	// division errors (operands evaluate before the comparison).
	if a.constErr || b.constErr {
		for i := range dst {
			dst[i] = ternErr
		}
		return
	}
	if a.constNull || b.constNull {
		for i := range dst {
			dst[i] = ternNull
		}
		overlayBits(dst, a.errs, ternErr, lo)
		overlayBits(dst, b.errs, ternErr, lo)
		return
	}
	tl, te, tg := k.lut[0], k.lut[1], k.lut[2]
	bothInt := a.isInt && b.isInt
	switch {
	case a.scalar && b.scalar:
		// Two plain constants under an unfoldable parent: one comparison
		// decides every row.
		var c int
		if bothInt {
			c = cmpOrder(a.scalarInt(), b.scalarInt())
		} else {
			c = cmpOrder(a.scalarFloat(), b.scalarFloat())
		}
		v := k.lut[c+1]
		for i := range dst {
			dst[i] = v
		}
	case b.scalar:
		if bothInt {
			y := b.scalarInt()
			for i, x := range a.ints[lo:hi] {
				switch {
				case x < y:
					dst[i] = tl
				case x > y:
					dst[i] = tg
				default:
					dst[i] = te
				}
			}
		} else {
			y := b.scalarFloat()
			for i, x := range k.af[lo:hi] {
				switch {
				case x < y:
					dst[i] = tl
				case x > y:
					dst[i] = tg
				default:
					dst[i] = te
				}
			}
		}
	case a.scalar:
		if bothInt {
			x := a.scalarInt()
			for i, y := range b.ints[lo:hi] {
				switch {
				case x < y:
					dst[i] = tl
				case x > y:
					dst[i] = tg
				default:
					dst[i] = te
				}
			}
		} else {
			x := a.scalarFloat()
			for i, y := range k.bf[lo:hi] {
				switch {
				case x < y:
					dst[i] = tl
				case x > y:
					dst[i] = tg
				default:
					dst[i] = te
				}
			}
		}
	case bothInt:
		ys := b.ints[lo:hi]
		for i, x := range a.ints[lo:hi] {
			y := ys[i]
			switch {
			case x < y:
				dst[i] = tl
			case x > y:
				dst[i] = tg
			default:
				dst[i] = te
			}
		}
	default:
		ys := k.bf[lo:hi]
		for i, x := range k.af[lo:hi] {
			y := ys[i]
			switch {
			case x < y:
				dst[i] = tl
			case x > y:
				dst[i] = tg
			default:
				dst[i] = te
			}
		}
	}
	overlayBits(dst, a.nulls, ternNull, lo)
	overlayBits(dst, b.nulls, ternNull, lo)
	overlayBits(dst, a.errs, ternErr, lo)
	overlayBits(dst, b.errs, ternErr, lo)
}

// cmpOrder is value.Compare's ordering over two same-shape numerics: -1/0/1
// with NaN comparing equal to everything ("neither smaller").
func cmpOrder[T int64 | float64](x, y T) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}

// truthNumKernel is WHERE truthiness of an arithmetic expression.
type truthNumKernel struct{ v *numVec }

func (k *truthNumKernel) eval(dst []int8, lo, hi int) {
	if k.v.isInt {
		for i, x := range k.v.ints[lo:hi] {
			dst[i] = ternOf(x != 0)
		}
	} else {
		for i, x := range k.v.floats[lo:hi] {
			dst[i] = ternOf(x != 0)
		}
	}
	overlayBits(dst, k.v.nulls, ternNull, lo)
	overlayBits(dst, k.v.errs, ternErr, lo)
}

// inNumKernel is IN-list membership of an arithmetic expression, with the
// same exact-int/float asymmetry — and NaN rules — as inIntKernel and
// inFloatKernel.
type inNumKernel struct {
	v       *numVec
	ints    map[int64]bool
	floats  map[uint64]bool
	anyNum  bool
	nanItem bool
	sawNull bool
	negate  bool
}

func (k *inNumKernel) eval(dst []int8, lo, hi int) {
	match, miss := ternOf(!k.negate), ternOf(k.negate)
	if k.sawNull {
		miss = ternNull
	}
	if k.v.isInt {
		for i, x := range k.v.ints[lo:hi] {
			hit := k.nanItem || k.ints[x]
			if !hit && len(k.floats) > 0 {
				hit = k.floats[eqBits(float64(x))]
			}
			if hit {
				dst[i] = match
			} else {
				dst[i] = miss
			}
		}
	} else {
		for i, x := range k.v.floats[lo:hi] {
			if k.nanItem || k.floats[eqBits(x)] || (k.anyNum && math.IsNaN(x)) {
				dst[i] = match
			} else {
				dst[i] = miss
			}
		}
	}
	overlayBits(dst, k.v.nulls, ternNull, lo)
	overlayBits(dst, k.v.errs, ternErr, lo)
}

// isNullNumKernel is IS [NOT] NULL over an arithmetic expression.
type isNullNumKernel struct {
	v      *numVec
	negate bool
}

func (k *isNullNumKernel) eval(dst []int8, lo, hi int) {
	base := ternOf(k.negate)
	for i := range dst {
		dst[i] = base
	}
	overlayBits(dst, k.v.nulls, ternOf(!k.negate), lo)
	overlayBits(dst, k.v.errs, ternErr, lo)
}

// constWithErrsKernel is a constant outcome except on error rows (a BETWEEN
// with a NULL bound over an arithmetic child: the child still evaluates
// first, so its division errors must surface).
type constWithErrsKernel struct {
	v    int8
	errs []uint64
}

func (k *constWithErrsKernel) eval(dst []int8, lo, hi int) {
	for i := range dst {
		dst[i] = k.v
	}
	overlayBits(dst, k.errs, ternErr, lo)
}

// Arithmetic vector kernels: +, -, *, /, % over typed columns.
//
// A numVec is one numeric operand of a WHERE comparison (or an aggregate
// input) materialized as a typed vector: int64 when the whole expression
// stays in exact integer arithmetic, float64 otherwise, with null and error
// bitmaps on the side. The compiler mirrors expr.evalArith exactly — INT op
// INT stays int64 (including wraparound) except division, everything else
// computes through float64 in the interpreter's operand order — so results
// are bit-identical to the row path. The only dynamic error arithmetic over
// numeric columns can raise is division by zero; rows that would raise it
// carry an error bit, which the consuming kernels turn into ternErr.
package exec

import (
	"errors"
	"math"

	"mosaic/internal/expr"
	"mosaic/internal/value"
)

// errDivisionByZero is the vectorized twin of the interpreter's division
// error; the messages must match byte for byte (the differential harness
// compares error strings across the two executors).
var errDivisionByZero = errors.New("expr: division by zero")

// numVec is a materialized numeric operand: exactly one of ints/floats is
// set. Bitmaps are 64 rows per word; nil means "no bits set". Payload and
// bitmap slices may be shared with the snapshot's columns and must not be
// mutated.
type numVec struct {
	isInt  bool
	ints   []int64
	floats []float64
	nulls  []uint64
	errs   []uint64 // rows that raise "expr: division by zero"
}

func bitGet(bm []uint64, i int) bool {
	if bm == nil {
		return false
	}
	w := i >> 6
	if w >= len(bm) {
		return false
	}
	return bm[w]&(1<<(uint(i)&63)) != 0
}

func bitSet(bm []uint64, i int) {
	bm[i>>6] |= 1 << (uint(i) & 63)
}

func newBitmap(n int) []uint64 { return make([]uint64, (n+63)/64) }

// orBits merges two bitmaps (either may be nil, lengths may differ).
func orBits(a, b []uint64, n int) []uint64 {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := newBitmap(n)
	copy(out, a)
	for i := range b {
		if i < len(out) {
			out[i] |= b[i]
		}
	}
	return out
}

// overlayBits writes v into dst wherever the bitmap is set.
func overlayBits(dst []int8, bm []uint64, v int8) {
	if bm == nil {
		return
	}
	for i := range dst {
		if bitGet(bm, i) {
			dst[i] = v
		}
	}
}

// floatView returns the vector's values as float64s, converting an int
// vector once (the coercion value.Compare applies to mixed comparisons).
func (v *numVec) floatView() []float64 {
	if !v.isInt {
		return v.floats
	}
	out := make([]float64, len(v.ints))
	for i, x := range v.ints {
		out[i] = float64(x)
	}
	return out
}

// compileNum compiles e into a numeric vector, or returns nil when e falls
// outside the arithmetic kernel set (non-numeric operands, unknown columns,
// aggregates — the caller then declines and the interpreter reproduces the
// exact per-row semantics, including lazy errors).
func (c *kernelCompiler) compileNum(e expr.Expr) *numVec {
	if v, ok := foldConst(e); ok {
		return c.numConst(v)
	}
	switch ex := e.(type) {
	case *expr.Column:
		ref, ok := c.resolve(ex.Name)
		if !ok {
			return nil
		}
		switch {
		case ref.isWeight:
			return &numVec{floats: ref.weight}
		case ref.kind == value.KindInt:
			return &numVec{isInt: true, ints: ref.col.Ints, nulls: ref.col.Nulls}
		case ref.kind == value.KindFloat:
			return &numVec{floats: ref.col.Floats, nulls: ref.col.Nulls}
		default:
			return nil // arithmetic on BOOL/TEXT errors per row: interpreted fallback
		}
	case *expr.Unary:
		if !ex.Neg {
			return nil // NOT yields BOOL; arithmetic on it errors per row
		}
		child := c.compileNum(ex.Child)
		if child == nil {
			return nil
		}
		out := &numVec{isInt: child.isInt, nulls: child.nulls, errs: child.errs}
		if child.isInt {
			out.ints = make([]int64, len(child.ints))
			for i, x := range child.ints {
				out.ints[i] = -x
			}
		} else {
			out.floats = make([]float64, len(child.floats))
			for i, x := range child.floats {
				out.floats[i] = -x
			}
		}
		return out
	case *expr.Binary:
		switch ex.Op {
		case expr.OpAdd, expr.OpSub, expr.OpMul, expr.OpDiv, expr.OpMod:
		default:
			return nil // comparisons/logic yield BOOL
		}
		l := c.compileNum(ex.Left)
		if l == nil {
			return nil
		}
		r := c.compileNum(ex.Right)
		if r == nil {
			return nil
		}
		return c.numArith(ex.Op, l, r)
	default:
		return nil
	}
}

// numConst broadcasts a constant. NULL becomes an all-null vector (NULL
// propagates through arithmetic, so payload values are never observed).
func (c *kernelCompiler) numConst(v value.Value) *numVec {
	n := c.n
	switch v.Kind() {
	case value.KindInt:
		xs := make([]int64, n)
		x := v.AsInt()
		for i := range xs {
			xs[i] = x
		}
		return &numVec{isInt: true, ints: xs}
	case value.KindFloat:
		xs := make([]float64, n)
		x := v.AsFloat()
		for i := range xs {
			xs[i] = x
		}
		return &numVec{floats: xs}
	case value.KindNull:
		nulls := newBitmap(n)
		for i := range nulls {
			nulls[i] = ^uint64(0)
		}
		return &numVec{floats: make([]float64, n), nulls: nulls}
	default:
		return nil // BOOL/TEXT constants are not arithmetic operands
	}
}

// numArith applies one arithmetic operator elementwise, mirroring
// expr.evalArith: NULL-before-error (a NULL operand yields NULL even when
// the divisor is zero), exact int64 arithmetic for INT op INT except /, and
// float64 otherwise.
func (c *kernelCompiler) numArith(op expr.BinOp, l, r *numVec) *numVec {
	n := c.n
	out := &numVec{
		nulls: orBits(l.nulls, r.nulls, n),
		errs:  orBits(l.errs, r.errs, n),
	}
	if l.isInt && r.isInt && op != expr.OpDiv {
		out.isInt = true
		out.ints = make([]int64, n)
		switch op {
		case expr.OpAdd:
			for i := range out.ints {
				out.ints[i] = l.ints[i] + r.ints[i]
			}
		case expr.OpSub:
			for i := range out.ints {
				out.ints[i] = l.ints[i] - r.ints[i]
			}
		case expr.OpMul:
			for i := range out.ints {
				out.ints[i] = l.ints[i] * r.ints[i]
			}
		case expr.OpMod:
			out.errs = ownBits(out.errs, n)
			for i := range out.ints {
				if r.ints[i] == 0 {
					if !bitGet(out.nulls, i) {
						bitSet(out.errs, i)
					}
					continue
				}
				out.ints[i] = l.ints[i] % r.ints[i]
			}
		}
		return out
	}
	lf, rf := l.floatView(), r.floatView()
	out.floats = make([]float64, n)
	switch op {
	case expr.OpAdd:
		for i := range out.floats {
			out.floats[i] = lf[i] + rf[i]
		}
	case expr.OpSub:
		for i := range out.floats {
			out.floats[i] = lf[i] - rf[i]
		}
	case expr.OpMul:
		for i := range out.floats {
			out.floats[i] = lf[i] * rf[i]
		}
	case expr.OpDiv, expr.OpMod:
		mod := op == expr.OpMod
		out.errs = ownBits(out.errs, n)
		for i := range out.floats {
			if rf[i] == 0 {
				if !bitGet(out.nulls, i) {
					bitSet(out.errs, i)
				}
				continue
			}
			if mod {
				out.floats[i] = math.Mod(lf[i], rf[i])
			} else {
				out.floats[i] = lf[i] / rf[i]
			}
		}
	}
	return out
}

// ownBits returns a full-width, privately owned copy of bm (which may be nil
// or shared with a child vector) so the caller can set bits into it.
func ownBits(bm []uint64, n int) []uint64 {
	out := newBitmap(n)
	copy(out, bm)
	return out
}

// --- kernels over numeric vectors ---

// cmpNumNumKernel compares two numeric vectors with value.Compare semantics:
// exact int64 when both sides stayed integer, float64 (NaN comparing equal
// to everything, like the interpreter's "neither smaller") otherwise.
type cmpNumNumKernel struct {
	a, b *numVec
	lut  [3]int8
}

func (k *cmpNumNumKernel) eval(dst []int8) {
	lo, eq, hi := k.lut[0], k.lut[1], k.lut[2]
	if k.a.isInt && k.b.isInt {
		for i := range dst {
			x, y := k.a.ints[i], k.b.ints[i]
			switch {
			case x < y:
				dst[i] = lo
			case x > y:
				dst[i] = hi
			default:
				dst[i] = eq
			}
		}
	} else {
		xf, yf := k.a.floatView(), k.b.floatView()
		for i := range dst {
			x, y := xf[i], yf[i]
			switch {
			case x < y:
				dst[i] = lo
			case x > y:
				dst[i] = hi
			default:
				dst[i] = eq
			}
		}
	}
	overlayBits(dst, k.a.nulls, ternNull)
	overlayBits(dst, k.b.nulls, ternNull)
	overlayBits(dst, k.a.errs, ternErr)
	overlayBits(dst, k.b.errs, ternErr)
}

// truthNumKernel is WHERE truthiness of an arithmetic expression.
type truthNumKernel struct{ v *numVec }

func (k *truthNumKernel) eval(dst []int8) {
	if k.v.isInt {
		for i, x := range k.v.ints {
			dst[i] = ternOf(x != 0)
		}
	} else {
		for i, x := range k.v.floats {
			dst[i] = ternOf(x != 0)
		}
	}
	overlayBits(dst, k.v.nulls, ternNull)
	overlayBits(dst, k.v.errs, ternErr)
}

// inNumKernel is IN-list membership of an arithmetic expression, with the
// same exact-int/float asymmetry — and NaN rules — as inIntKernel and
// inFloatKernel.
type inNumKernel struct {
	v       *numVec
	ints    map[int64]bool
	floats  map[uint64]bool
	anyNum  bool
	nanItem bool
	sawNull bool
	negate  bool
}

func (k *inNumKernel) eval(dst []int8) {
	match, miss := ternOf(!k.negate), ternOf(k.negate)
	if k.sawNull {
		miss = ternNull
	}
	if k.v.isInt {
		for i, x := range k.v.ints {
			hit := k.nanItem || k.ints[x]
			if !hit && len(k.floats) > 0 {
				hit = k.floats[eqBits(float64(x))]
			}
			if hit {
				dst[i] = match
			} else {
				dst[i] = miss
			}
		}
	} else {
		for i, x := range k.v.floats {
			if k.nanItem || k.floats[eqBits(x)] || (k.anyNum && math.IsNaN(x)) {
				dst[i] = match
			} else {
				dst[i] = miss
			}
		}
	}
	overlayBits(dst, k.v.nulls, ternNull)
	overlayBits(dst, k.v.errs, ternErr)
}

// isNullNumKernel is IS [NOT] NULL over an arithmetic expression.
type isNullNumKernel struct {
	v      *numVec
	negate bool
}

func (k *isNullNumKernel) eval(dst []int8) {
	base := ternOf(k.negate)
	for i := range dst {
		dst[i] = base
	}
	overlayBits(dst, k.v.nulls, ternOf(!k.negate))
	overlayBits(dst, k.v.errs, ternErr)
}

// constWithErrsKernel is a constant outcome except on error rows (a BETWEEN
// with a NULL bound over an arithmetic child: the child still evaluates
// first, so its division errors must surface).
type constWithErrsKernel struct {
	v    int8
	errs []uint64
}

func (k *constWithErrsKernel) eval(dst []int8) {
	for i := range dst {
		dst[i] = k.v
	}
	overlayBits(dst, k.errs, ternErr)
}

// Morsel-driven intra-query parallelism.
//
// Every columnar scan partitions into fixed-size morsels of morselRows rows
// and runs across a small worker pool. Partitioning is independent of the
// worker count — morsel boundaries are a pure function of the row count — so
// any per-morsel state (selection counts, local group tables, sorted runs)
// merges **in morsel order** into exactly the state a serial scan would have
// built. That is the whole determinism story: workers only decide who
// computes a morsel, never what the morsel produces or the order morsels
// combine, so answers are byte-identical for any Workers value.
//
// morselRows is a multiple of 64 so that two morsels never share a word of a
// []uint64 bitmap: parallel writers of per-row bits (the arithmetic kernels'
// division-error bits) stay race-free without atomics.
//
// Cancellation: each morsel boundary is a context checkpoint (the successor
// of PR 5's per-kernel checkpoints), so a cancelled query aborts within one
// morsel of work per worker and surfaces ctx.Err().
package exec

import (
	"context"
	"sync"
	"sync/atomic"
)

// morselRows is the fixed scan partition size. 64K rows keeps per-morsel
// state (a truth-vector slice, a local group table) comfortably in cache
// while giving a 1M-row scan 16 units of schedulable work. Must stay a
// multiple of 64 (see the package comment on bitmap word ownership).
const morselRows = 64 * 1024

// MorselRows is the scan partition size, exported for plan introspection
// (EXPLAIN's execution row).
const MorselRows = morselRows

// forEachMorsel runs fn over the morsel partition of [0, n), checking ctx at
// every morsel boundary. With workers <= 1 (or a single morsel) the morsels
// run in order on the calling goroutine; otherwise min(workers, morsels)
// goroutines pull morsels from an atomic counter. fn must be safe to call
// concurrently on disjoint ranges and must not depend on completion order.
func forEachMorsel(ctx context.Context, n, workers int, fn func(lo, hi int)) error {
	if n <= 0 {
		return checkCtx(ctx)
	}
	nMorsels := (n + morselRows - 1) / morselRows
	if workers > nMorsels {
		workers = nMorsels
	}
	if workers <= 1 {
		for lo := 0; lo < n; lo += morselRows {
			if err := checkCtx(ctx); err != nil {
				return err
			}
			hi := lo + morselRows
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return nil
	}
	var next atomic.Int64
	var cancelled atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m := int(next.Add(1)) - 1
				if m >= nMorsels || cancelled.Load() {
					return
				}
				if err := checkCtx(ctx); err != nil {
					cancelled.Store(true)
					return
				}
				lo := m * morselRows
				hi := lo + morselRows
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
	// A context that cancelled a worker is still cancelled here (ctx.Err is
	// sticky), so the caller always observes the error.
	return checkCtx(ctx)
}

// forEachTask runs fn(0..n-1) across the worker pool. Unlike forEachMorsel
// the units are whole tasks (one aggregate's accumulation pass, one merge of
// two sorted runs); fn handles its own context checkpoints. The first error
// in task order wins, so the surfaced error is deterministic.
func forEachTask(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return checkCtx(ctx)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// evalTern evaluates a compiled filter kernel over every row, morsel by
// morsel. Each morsel writes its own sub-slice of the truth vector, so the
// result is identical for any worker count.
func evalTern(ctx context.Context, k kernel, n, workers int) ([]int8, error) {
	tern := make([]int8, n)
	if err := forEachMorsel(ctx, n, workers, func(lo, hi int) {
		k.eval(tern[lo:hi], lo, hi)
	}); err != nil {
		return nil, err
	}
	return tern, nil
}

// ternSelection builds the selection vector — indices of ternTrue rows in
// scan order — from a truth vector, reporting whether any row erred
// (division by zero). The parallel path counts per morsel, prefix-sums the
// counts into per-morsel output offsets, and fills each morsel's segment
// concurrently: concatenation in morsel order IS scan order, so the vector
// is byte-identical to the serial append loop.
func ternSelection(ctx context.Context, tern []int8, workers int) (sel []int32, sawErr bool, err error) {
	n := len(tern)
	nMorsels := (n + morselRows - 1) / morselRows
	if workers <= 1 || nMorsels <= 1 {
		sel = make([]int32, 0, n)
		for lo := 0; lo < n; lo += morselRows {
			if err := checkCtx(ctx); err != nil {
				return nil, false, err
			}
			hi := lo + morselRows
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				t := tern[i]
				if t == ternErr {
					return nil, true, nil
				}
				if t == ternTrue {
					sel = append(sel, int32(i))
				}
			}
		}
		return sel, false, nil
	}
	counts := make([]int, nMorsels)
	var errSeen atomic.Bool
	if err := forEachMorsel(ctx, n, workers, func(lo, hi int) {
		c := 0
		for _, t := range tern[lo:hi] {
			switch t {
			case ternTrue:
				c++
			case ternErr:
				errSeen.Store(true)
			}
		}
		counts[lo/morselRows] = c
	}); err != nil {
		return nil, false, err
	}
	if errSeen.Load() {
		return nil, true, nil
	}
	offs := make([]int, nMorsels+1)
	for m, c := range counts {
		offs[m+1] = offs[m] + c
	}
	sel = make([]int32, offs[nMorsels])
	if err := forEachMorsel(ctx, n, workers, func(lo, hi int) {
		p := offs[lo/morselRows]
		for i := lo; i < hi; i++ {
			if tern[i] == ternTrue {
				sel[p] = int32(i)
				p++
			}
		}
	}); err != nil {
		return nil, false, err
	}
	return sel, false, nil
}

package exec

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mosaic/internal/schema"
	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

var sc = schema.MustNew(
	schema.Attribute{Name: "c", Kind: value.KindText},
	schema.Attribute{Name: "x", Kind: value.KindInt},
	schema.Attribute{Name: "y", Kind: value.KindFloat},
)

func mkTable(t *testing.T, rows []struct {
	c string
	x int64
	y float64
	w float64
}) *table.Table {
	t.Helper()
	tbl := table.New("t", sc)
	for _, r := range rows {
		if err := tbl.AppendWeighted([]value.Value{
			value.Text(r.c), value.Int(r.x), value.Float(r.y),
		}, r.w); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func sampleData(t *testing.T) *table.Table {
	return mkTable(t, []struct {
		c string
		x int64
		y float64
		w float64
	}{
		{"a", 1, 10, 2},
		{"a", 2, 20, 3},
		{"b", 3, 30, 1},
		{"b", 4, 40, 4},
	})
}

func q(t *testing.T, src string) *sql.Select {
	t.Helper()
	sel, err := sql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return sel
}

func TestProjectionWithWhere(t *testing.T) {
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT x, y FROM t WHERE x > 2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Rows[0][0].AsInt() != 3 || res.Rows[1][0].AsInt() != 4 {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "x" || res.Columns[1] != "y" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestStarProjection(t *testing.T) {
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT * FROM t LIMIT 1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 3 || len(res.Rows) != 1 || len(res.Rows[0]) != 3 {
		t.Errorf("star projection: %v %v", res.Columns, res.Rows)
	}
}

func TestUnweightedAggregates(t *testing.T) {
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT COUNT(*), SUM(x), AVG(y), MIN(x), MAX(y) FROM t"), Options{Weighted: false})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if got, _ := row[0].Float64(); got != 4 {
		t.Errorf("COUNT(*) = %v", row[0])
	}
	if got, _ := row[1].Float64(); got != 10 {
		t.Errorf("SUM(x) = %v", row[1])
	}
	if got, _ := row[2].Float64(); got != 25 {
		t.Errorf("AVG(y) = %v", row[2])
	}
	if row[3].AsInt() != 1 {
		t.Errorf("MIN(x) = %v", row[3])
	}
	if got, _ := row[4].Float64(); got != 40 {
		t.Errorf("MAX(y) = %v", row[4])
	}
}

func TestWeightedAggregates(t *testing.T) {
	// Weights 2,3,1,4: the paper's rewriting COUNT(*) → SUM(weight).
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT COUNT(*), SUM(x), AVG(x) FROM t"), Options{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if got, _ := row[0].Float64(); got != 10 {
		t.Errorf("weighted COUNT(*) = %v, want 10", row[0])
	}
	// SUM(x) = 2·1 + 3·2 + 1·3 + 4·4 = 27
	if got, _ := row[1].Float64(); got != 27 {
		t.Errorf("weighted SUM(x) = %v, want 27", row[1])
	}
	// AVG(x) = 27 / 10
	if got, _ := row[2].Float64(); math.Abs(got-2.7) > 1e-12 {
		t.Errorf("weighted AVG(x) = %v, want 2.7", row[2])
	}
}

func TestWeightOverride(t *testing.T) {
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT COUNT(*) FROM t"), Options{
		Weighted:       true,
		WeightOverride: []float64{1, 1, 1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Rows[0][0].Float64(); got != 4 {
		t.Errorf("override COUNT(*) = %v, want 4", res.Rows[0][0])
	}
	if _, err := Run(tbl, q(t, "SELECT COUNT(*) FROM t"), Options{WeightOverride: []float64{1}}); err == nil {
		t.Error("length-mismatched override should fail")
	}
}

func TestGroupBy(t *testing.T) {
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT c, COUNT(*), AVG(x) FROM t GROUP BY c ORDER BY c"), Options{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// Group a: weights 2+3=5, avg x = (2·1+3·2)/5 = 1.6
	if res.Rows[0][0].AsText() != "a" {
		t.Errorf("group order: %v", res.Rows)
	}
	if got, _ := res.Rows[0][1].Float64(); got != 5 {
		t.Errorf("group a count = %v", res.Rows[0][1])
	}
	if got, _ := res.Rows[0][2].Float64(); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("group a avg = %v", res.Rows[0][2])
	}
}

func TestGroupByValidatesItems(t *testing.T) {
	tbl := sampleData(t)
	if _, err := Run(tbl, q(t, "SELECT x, COUNT(*) FROM t GROUP BY c"), Options{}); err == nil {
		t.Error("non-group column in select list should fail")
	}
	if _, err := Run(tbl, q(t, "SELECT *, COUNT(*) FROM t GROUP BY c"), Options{}); err == nil {
		t.Error("star with GROUP BY should fail")
	}
	if _, err := Run(tbl, q(t, "SELECT z, COUNT(*) FROM t GROUP BY z"), Options{}); err == nil {
		t.Error("unknown group column should fail")
	}
}

func TestHaving(t *testing.T) {
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT c, COUNT(*) AS n FROM t GROUP BY c HAVING n > 4"), Options{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("having rows = %d (a has 5, b has 5)", len(res.Rows))
	}
	res, err = Run(tbl, q(t, "SELECT c, COUNT(*) AS n FROM t GROUP BY c HAVING n > 6"), Options{Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("having should filter all groups, got %v", res.Rows)
	}
}

func TestOrderByAndLimit(t *testing.T) {
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT x FROM t ORDER BY x DESC LIMIT 2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 4 || res.Rows[1][0].AsInt() != 3 {
		t.Errorf("order/limit = %v", res.Rows)
	}
	// ORDER BY an aliased aggregate.
	res, err = Run(tbl, q(t, "SELECT c, SUM(x) AS s FROM t GROUP BY c ORDER BY s DESC"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsText() != "b" {
		t.Errorf("aggregate order = %v", res.Rows)
	}
}

func TestEmptyGlobalAggregate(t *testing.T) {
	tbl := table.New("empty", sc)
	res, err := Run(tbl, q(t, "SELECT COUNT(*), SUM(x), MIN(x) FROM empty"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("empty aggregate rows = %d", len(res.Rows))
	}
	if got, _ := res.Rows[0][0].Float64(); got != 0 {
		t.Errorf("COUNT over empty = %v", res.Rows[0][0])
	}
	if !res.Rows[0][1].IsNull() || !res.Rows[0][2].IsNull() {
		t.Errorf("SUM/MIN over empty should be NULL: %v", res.Rows[0])
	}
}

func TestCountColumnSkipsNulls(t *testing.T) {
	tbl := table.New("t", sc)
	if err := tbl.Append([]value.Value{value.Text("a"), value.Null(), value.Float(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append([]value.Value{value.Text("a"), value.Int(5), value.Float(2)}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(tbl, q(t, "SELECT COUNT(x), COUNT(*) FROM t"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cx, _ := res.Rows[0][0].Float64()
	call, _ := res.Rows[0][1].Float64()
	if cx != 1 || call != 2 {
		t.Errorf("COUNT(x)=%v COUNT(*)=%v", cx, call)
	}
}

func TestWeightPseudoColumn(t *testing.T) {
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT x FROM t WHERE WEIGHT > 2.5"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Weights 2,3,1,4 → rows with x=2 and x=4 qualify.
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 2 || res.Rows[1][0].AsInt() != 4 {
		t.Errorf("WEIGHT filter = %v", res.Rows)
	}
}

func TestSumWeights(t *testing.T) {
	tbl := sampleData(t)
	tot, err := SumWeights(tbl, nil)
	if err != nil || tot != 10 {
		t.Errorf("SumWeights = %v, %v", tot, err)
	}
	pred, err := sql.ParseExpr("c = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	tot, err = SumWeights(tbl, pred)
	if err != nil || tot != 5 {
		t.Errorf("filtered SumWeights = %v, %v", tot, err)
	}
}

func TestMaterialize(t *testing.T) {
	tbl := sampleData(t)
	out, err := Materialize(tbl, q(t, "SELECT c, x FROM t WHERE x < 3"), Options{}, "mat")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 || out.Schema().Len() != 2 {
		t.Errorf("materialized %d rows, schema %s", out.Len(), out.Schema())
	}
	k, _ := out.Schema().Kind("c")
	if k != value.KindText {
		t.Errorf("materialized kind = %v", k)
	}
}

func TestResultString(t *testing.T) {
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT c, x FROM t LIMIT 2"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "c") || !strings.Contains(s, "-") || !strings.Contains(s, "\n") {
		t.Errorf("String() = %q", s)
	}
}

func TestWeightedAggregatesLinearInWeightsProperty(t *testing.T) {
	// Property: scaling all weights by k scales weighted COUNT(*) and
	// SUM(x) by k and leaves AVG(x) unchanged.
	f := func(k uint8) bool {
		scale := float64(k%7) + 1
		tbl := sampleData(t)
		base, err := Run(tbl, q(t, "SELECT COUNT(*), SUM(x), AVG(x) FROM t"), Options{Weighted: true})
		if err != nil {
			return false
		}
		w := tbl.Weights()
		for i := range w {
			w[i] *= scale
		}
		if err := tbl.SetWeights(w); err != nil {
			return false
		}
		scaled, err := Run(tbl, q(t, "SELECT COUNT(*), SUM(x), AVG(x) FROM t"), Options{Weighted: true})
		if err != nil {
			return false
		}
		b0, _ := base.Rows[0][0].Float64()
		s0, _ := scaled.Rows[0][0].Float64()
		b1, _ := base.Rows[0][1].Float64()
		s1, _ := scaled.Rows[0][1].Float64()
		b2, _ := base.Rows[0][2].Float64()
		s2, _ := scaled.Rows[0][2].Float64()
		return math.Abs(s0-scale*b0) < 1e-9 &&
			math.Abs(s1-scale*b1) < 1e-9 &&
			math.Abs(s2-b2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestInPredicateThroughExecutor(t *testing.T) {
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT c, SUM(x) FROM t WHERE c IN ('a') GROUP BY c"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "a" {
		t.Errorf("IN filter = %v", res.Rows)
	}
}

func TestDistinctProjection(t *testing.T) {
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT DISTINCT c FROM t ORDER BY c"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].AsText() != "a" || res.Rows[1][0].AsText() != "b" {
		t.Errorf("DISTINCT = %v", res.Rows)
	}
	// Multi-column distinct keeps distinct pairs.
	res, err = Run(tbl, q(t, "SELECT DISTINCT c, x FROM t"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("distinct pairs = %d, want 4", len(res.Rows))
	}
	// DISTINCT respects LIMIT after dedup.
	res, err = Run(tbl, q(t, "SELECT DISTINCT c FROM t LIMIT 1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("distinct+limit = %v", res.Rows)
	}
}

func TestOrderByExpression(t *testing.T) {
	tbl := sampleData(t)
	// ORDER BY an arithmetic expression over output columns.
	res, err := Run(tbl, q(t, "SELECT x, y FROM t ORDER BY y - x DESC LIMIT 1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 4 {
		t.Errorf("expression order = %v", res.Rows)
	}
}

func TestHavingOverGroupColumn(t *testing.T) {
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT c, COUNT(*) FROM t GROUP BY c HAVING c = 'b'"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "b" {
		t.Errorf("HAVING on group key = %v", res.Rows)
	}
}

func TestBetweenThroughExecutor(t *testing.T) {
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT x FROM t WHERE x BETWEEN 2 AND 3 ORDER BY x"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 2 {
		t.Errorf("BETWEEN = %v", res.Rows)
	}
}

func TestDuplicateAggregateColumns(t *testing.T) {
	// Two COUNT(*) items collide on output name; execution must still work.
	tbl := sampleData(t)
	res, err := Run(tbl, q(t, "SELECT COUNT(*), COUNT(*) FROM t"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := res.Rows[0][0].Float64()
	b, _ := res.Rows[0][1].Float64()
	if a != 4 || b != 4 {
		t.Errorf("duplicate aggregates = %v", res.Rows[0])
	}
}

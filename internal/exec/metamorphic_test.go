package exec

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"mosaic/internal/schema"
	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// The metamorphic harness checks algebraic identities that must hold for
// ANY correct executor — no oracle needed — and checks them on both executor
// paths, so a bug that slipped past the differential harness (where both
// paths could be wrong together) still gets caught:
//
//  1. ORDER BY x LIMIT k  ==  the k-prefix of ORDER BY x
//  2. DISTINCT cols       ==  GROUP BY cols over the same columns
//  3. WHERE c1 AND c2     ==  the c1 rows whose unique id also passes c2
var metaSchema = schema.MustNew(
	schema.Attribute{Name: "id", Kind: value.KindInt}, // unique, never NULL
	schema.Attribute{Name: "c", Kind: value.KindText},
	schema.Attribute{Name: "x", Kind: value.KindInt},
	schema.Attribute{Name: "y", Kind: value.KindFloat},
	schema.Attribute{Name: "b", Kind: value.KindBool},
)

func metaTable(tb testing.TB, n int, seed int64) *table.Table {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	t := table.New("t", metaSchema)
	for i := 0; i < n; i++ {
		row := make([]value.Value, 5)
		row[0] = value.Int(int64(i))
		if rng.Intn(8) == 0 {
			row[1] = value.Null()
		} else {
			row[1] = value.Text(fmt.Sprintf("g%d", rng.Intn(5)))
		}
		if rng.Intn(8) == 0 {
			row[2] = value.Null()
		} else {
			row[2] = value.Int(int64(rng.Intn(40) - 20))
		}
		switch rng.Intn(10) {
		case 0:
			row[3] = value.Null()
		case 1:
			row[3] = value.Float(math.NaN()) // ties with everything: stresses the top-K guard
		default:
			row[3] = value.Float(float64(rng.Intn(64)) / 8)
		}
		row[4] = value.Bool(rng.Intn(2) == 0)
		if err := t.AppendWeighted(row, float64(rng.Intn(6))/2); err != nil {
			tb.Fatal(err)
		}
	}
	return t
}

// execModes is the executor sweep every metamorphic identity runs under: the
// row interpreter, the serial vectorized scan, and the morsel-parallel pool
// at several worker counts. The identities must hold on each mode alone (and
// the differential harness separately pins the modes to each other).
var execModes = []Options{
	{Weighted: true, ForceRow: true},
	{Weighted: true, Workers: 1},
	{Weighted: true, Workers: 2},
	{Weighted: true, Workers: 4},
	{Weighted: true, Workers: 8},
}

func modeLabel(opts Options) string {
	if opts.ForceRow {
		return "row"
	}
	return fmt.Sprintf("vec@%d", opts.Workers)
}

func mustRun(t *testing.T, tbl *table.Table, src string, opts Options) *Result {
	t.Helper()
	sel, err := sql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	res, err := Run(tbl, sel, opts)
	if err != nil {
		t.Fatalf("%q (%s): %v", src, modeLabel(opts), err)
	}
	return res
}

func renderResultRows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var b strings.Builder
		for _, v := range row {
			b.WriteString(v.HashKey())
			b.WriteByte('\x1f')
		}
		out[i] = b.String()
	}
	return out
}

// TestMetamorphicLimitPrefix: for every ORDER BY, the LIMIT k answer must be
// the k-prefix of the unlimited answer — the tie-break contract makes the
// unlimited order unique enough for this to be exact, and the heap top-K
// must agree with the full sort it replaces.
func TestMetamorphicLimitPrefix(t *testing.T) {
	cases := [][2]string{
		{"SELECT * FROM t %s", "ORDER BY y"},
		{"SELECT * FROM t %s", "ORDER BY y DESC, c"},
		{"SELECT * FROM t %s", "ORDER BY x DESC, id"},
		{"SELECT * FROM t %s", "ORDER BY c, b DESC"},
		{"SELECT c, y FROM t %s", "ORDER BY y DESC, c"},
		{"SELECT c, y FROM t %s", "ORDER BY c, y"},
		{"SELECT DISTINCT c, b FROM t %s", "ORDER BY c, b DESC"},
		{"SELECT DISTINCT c, b FROM t %s", "ORDER BY b DESC, c"},
		{"SELECT id, WEIGHT FROM t %s", "ORDER BY WEIGHT, id"},
		{"SELECT id, x FROM t %s", "ORDER BY x + id"}, // expression key: generic path
	}
	for _, n := range []int{0, 1, 37, 400} {
		tbl := metaTable(t, n, int64(n)+1)
		for _, mode := range execModes {
			for _, cse := range cases {
				sel, order := cse[0], cse[1]
				full := renderResultRows(mustRun(t, tbl, fmt.Sprintf(sel, order), mode))
				for _, k := range []int{0, 1, 3, n, 2*n + 5} {
					src := fmt.Sprintf(sel, order) + fmt.Sprintf(" LIMIT %d", k)
					got := renderResultRows(mustRun(t, tbl, src, mode))
					want := full
					if k < len(want) {
						want = want[:k]
					}
					if strings.Join(got, "\n") != strings.Join(want, "\n") {
						t.Fatalf("%q (n=%d %s): LIMIT %d is not the prefix of the full sort\n got: %v\nwant: %v",
							src, n, modeLabel(mode), k, got, want)
					}
				}
			}
		}
	}
}

// TestMetamorphicDistinctEqualsGroupBy: SELECT DISTINCT cols must equal
// SELECT cols ... GROUP BY cols — first-occurrence order on one side,
// group first-appearance order on the other; the identity pins them to
// each other.
func TestMetamorphicDistinctEqualsGroupBy(t *testing.T) {
	colSets := [][2]string{
		{"c", "c"},
		{"c, b", "c, b"},
		{"x", "x"},
		{"y, b", "y, b"}, // NaN and NULL keys must group/dedup identically
		{"c, x, b", "c, x, b"},
	}
	wheres := []string{"", "WHERE x > 0", "WHERE y * 2 > 3", "WHERE c != 'g0'"}
	for _, n := range []int{0, 1, 300} {
		tbl := metaTable(t, n, int64(n)+11)
		for _, mode := range execModes {
			for _, cs := range colSets {
				for _, where := range wheres {
					d := renderResultRows(mustRun(t, tbl, fmt.Sprintf("SELECT DISTINCT %s FROM t %s", cs[0], where), mode))
					g := renderResultRows(mustRun(t, tbl, fmt.Sprintf("SELECT %s FROM t %s GROUP BY %s", cs[0], where, cs[1]), mode))
					if strings.Join(d, "\n") != strings.Join(g, "\n") {
						t.Fatalf("DISTINCT %s %q (n=%d %s) != GROUP BY:\n distinct: %v\n group-by: %v",
							cs[0], where, n, modeLabel(mode), d, g)
					}
				}
			}
		}
	}
}

// TestMetamorphicConjunctionIntersection: the rows of WHERE c1 AND c2 must
// be exactly the WHERE c1 rows whose unique id also satisfies c2, in the
// same scan order (AND-true requires both arms true under 3VL, so NULL arms
// drop out on both sides of the identity).
func TestMetamorphicConjunctionIntersection(t *testing.T) {
	preds := []string{
		"x > 0",
		"y < 4",
		"c = 'g1'",
		"x % 2 = 0",
		"b",
		"y * 2 > x + 1",
		"x IS NOT NULL",
		"c IN ('g1', 'g2')",
	}
	for _, n := range []int{0, 1, 250} {
		tbl := metaTable(t, n, int64(n)+23)
		for _, mode := range execModes {
			for i, p1 := range preds {
				for _, p2 := range preds[i+1:] {
					and := renderResultRows(mustRun(t, tbl, fmt.Sprintf("SELECT id FROM t WHERE %s AND %s", p1, p2), mode))
					r1 := renderResultRows(mustRun(t, tbl, fmt.Sprintf("SELECT id FROM t WHERE %s", p1), mode))
					r2 := renderResultRows(mustRun(t, tbl, fmt.Sprintf("SELECT id FROM t WHERE %s", p2), mode))
					in2 := make(map[string]bool, len(r2))
					for _, id := range r2 {
						in2[id] = true
					}
					var want []string
					for _, id := range r1 {
						if in2[id] {
							want = append(want, id)
						}
					}
					if strings.Join(and, "\n") != strings.Join(want, "\n") {
						t.Fatalf("WHERE %s AND %s (n=%d %s) != intersection\n  and: %v\n want: %v",
							p1, p2, n, modeLabel(mode), and, want)
					}
				}
			}
		}
	}
}

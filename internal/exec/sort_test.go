package exec

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// TestSortStabilityContract pins the engine-wide tie-break contract (see
// orderAndLimit): rows with equal ORDER BY keys keep their pre-sort order on
// every sorting surface — the row engine, the columnar permutation sort, the
// bounded top-K heap, and ApplyPostAggregation (the OPEN combine path).
func TestSortStabilityContract(t *testing.T) {
	tbl := table.New("t", metaSchema)
	// key cycles 2,1,0,2,1,0,... so each key value collects ids in ascending
	// order; id is the tie witness.
	for i := 0; i < 60; i++ {
		err := tbl.Append([]value.Value{
			value.Int(int64(i)),
			value.Text(fmt.Sprintf("k%d", 2-(i%3))),
			value.Int(int64(2 - (i % 3))),
			value.Float(float64(2 - (i % 3))),
			value.Bool(i%3 == 0),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// For every key column and both directions, ties must list ids ascending
	// (their scan order), on both executors, with and without LIMIT.
	keyCol := map[string]int{"c": 1, "x": 2, "y": 3}
	for _, key := range []string{"c", "x", "y"} {
		for _, dir := range []string{"", " DESC"} {
			for _, limit := range []string{"", " LIMIT 7"} {
				src := fmt.Sprintf("SELECT id, c, x, y FROM t ORDER BY %s%s%s", key, dir, limit)
				for _, mode := range execModes {
					res := mustRun(t, tbl, src, mode)
					for i := 1; i < len(res.Rows); i++ {
						prev, row := res.Rows[i-1], res.Rows[i]
						if value.Equal(prev[keyCol[key]], row[keyCol[key]]) && prev[0].AsInt() >= row[0].AsInt() {
							t.Fatalf("%q (%s): tie broken out of scan order: id %d after %d",
								src, modeLabel(mode), row[0].AsInt(), prev[0].AsInt())
						}
					}
				}
			}
		}
	}

	// ApplyPostAggregation must apply the identical contract to a
	// materialized result (the OPEN path sorts combined answers with it).
	sel, err := sql.ParseQuery("SELECT k, id FROM t ORDER BY k LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Result {
		res := &Result{Columns: []string{"k", "id"}}
		for i := 0; i < 20; i++ {
			res.Rows = append(res.Rows, []value.Value{value.Int(int64(2 - (i % 3))), value.Int(int64(i))})
		}
		return res
	}
	limited := mk()
	if err := ApplyPostAggregation(context.Background(), limited, sel); err != nil {
		t.Fatal(err)
	}
	selFull := *sel
	selFull.Limit = -1
	full := mk()
	if err := ApplyPostAggregation(context.Background(), full, &selFull); err != nil {
		t.Fatal(err)
	}
	for i, row := range limited.Rows {
		want := full.Rows[i]
		if row[0].AsInt() != want[0].AsInt() || row[1].AsInt() != want[1].AsInt() {
			t.Fatalf("ApplyPostAggregation LIMIT row %d = (%v,%v), full sort prefix has (%v,%v)",
				i, row[0], row[1], want[0], want[1])
		}
	}
	for i := 1; i < len(full.Rows); i++ {
		a, b := full.Rows[i-1], full.Rows[i]
		if a[0].AsInt() == b[0].AsInt() && a[1].AsInt() > b[1].AsInt() {
			t.Fatalf("ApplyPostAggregation tie broken out of input order at row %d", i)
		}
	}
}

// TestBoundedTopKMatchesSortPrefix property-checks the heap against a full
// sort under random total orders.
func TestBoundedTopKMatchesSortPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		k := rng.Intn(60)
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(8) // heavy ties
		}
		less := func(a, b int) bool {
			if keys[a] != keys[b] {
				return keys[a] < keys[b]
			}
			return a < b
		}
		got := boundedTopK(n, k, less)
		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		sort.SliceStable(want, func(a, b int) bool { return keys[want[a]] < keys[want[b]] })
		if k < n {
			want = want[:k]
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("trial %d (n=%d k=%d): topK %v != sort prefix %v", trial, n, k, got, want)
		}
	}
}

// TestFoldedConstantItemKeepsName: constant folding must never rename output
// columns (the fold pins the original rendering as an alias).
func TestFoldedConstantItemKeepsName(t *testing.T) {
	tbl := metaTable(t, 3, 1)
	res := mustRun(t, tbl, "SELECT 1 + 2, id FROM t ORDER BY id LIMIT 2", Options{Weighted: true})
	if res.Columns[0] != "(1 + 2)" {
		t.Fatalf("folded item renamed: %q", res.Columns[0])
	}
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 3 {
		t.Fatalf("folded item value wrong: %+v", res.Rows)
	}
	if !strings.Contains(res.String(), "(1 + 2)") {
		t.Fatalf("rendered header lost the original expression: %s", res.String())
	}
}

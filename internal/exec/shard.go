// Sharded scatter-gather execution for aggregate queries.
//
// Options.Shards range-partitions the snapshot into S contiguous slices
// (shard boundaries are a pure function of the row count and S, and always
// multiples of 64 so null bitmaps re-slice on word boundaries). Each shard
// runs the ordinary vectorized aggregate pipeline over its slice and emits
// mergeable partial states; the gather step then merges partials **in shard
// order** through the shared partial-state algebra before HAVING / ORDER BY
// / LIMIT apply. Because shards are contiguous in scan order, a group's
// global id is assigned at its earliest scan-order appearance — exactly the
// unsharded first-appearance order — so group sets and output order are
// identical to the single-shard engine; float aggregate cells may differ in
// low-order bits (the shard merge reassociates IEEE 754 addition), which is
// why Shards is part of the answer contract. For a fixed Shards value,
// answers are bit-identical across runs and across Workers values.
//
// The same scatter and gather halves are exported (PartialAggregate,
// GatherPartials) for the multi-process fleet: a coordinator asks each shard
// process for PartialAggregate(shard i of N) over its own full copy of the
// data and gathers the serialized ShardPartials in shard order — the merge
// is the identical code path, so fleet answers are bit-identical to
// in-process Options.Shards: N.
package exec

import (
	"context"
	"fmt"
	"strings"

	"mosaic/internal/expr"
	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// shardBounds returns the row ranges of the S contiguous shards of an n-row
// scan. Every boundary is a multiple of 64 (null-bitmap word alignment);
// trailing shards may be empty when n is small or not divisible. The bounds
// are a pure function of (n, S) — never of Workers or scheduling — which is
// what makes sharded answers reproducible.
func shardBounds(n, s int) [][2]int {
	if s < 1 {
		s = 1
	}
	chunk := (n + s - 1) / s
	chunk = (chunk + 63) / 64 * 64
	if chunk == 0 {
		chunk = 64
	}
	out := make([][2]int, s)
	for i := 0; i < s; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		out[i] = [2]int{lo, hi}
	}
	return out
}

// ShardPartial is one shard's scatter output: its locally-grouped partial
// states plus the group identities the gather step merges on. Local group
// order is the shard's first-appearance scan order. Keys are derived from
// KeyVals (HashKey concatenation), so a deserialized partial can rebuild
// them from the values alone.
type ShardPartial struct {
	Keys    []string        // HashKey-concat group identity per local group
	KeyVals [][]value.Value // materialized key values per local group
	States  []*PartialStates
	Rows    int // rows the shard slice scanned (observability)
}

// GroupKey builds the canonical gather key for one group's key values — the
// same encoding shardPartialAggregate produces, so remote partials merge into
// the identical group identity space.
func GroupKey(kv []value.Value) string {
	var kb strings.Builder
	for _, v := range kv {
		kb.WriteString(v.HashKey())
		kb.WriteByte('\x1f')
	}
	return kb.String()
}

// PartialAggregate runs the scatter half of sharded execution for shard
// `shard` of `shards` over the full snapshot: it plans against the full
// table (so the engage/decline decision is identical on every shard), slices
// out the shard's contiguous range, and returns its partial states.
// handled=false means the shape is not kernel-coverable (or needs the row
// path's interleaved error ordering) — the caller must answer the query
// through the ordinary unsharded path instead. This is the entry point the
// fleet's /v1/partial endpoint serves; opts.Shards is ignored in favor of
// the explicit shard/shards pair.
func PartialAggregate(ctx context.Context, snap *table.Snapshot, sel *sql.Select, opts Options, shard, shards int) (*ShardPartial, bool, error) {
	if shards < 1 || shard < 0 || shard >= shards {
		return nil, true, fmt.Errorf("exec: shard %d of %d out of range", shard, shards)
	}
	if opts.WeightOverride != nil && len(opts.WeightOverride) != snap.Len() {
		return nil, true, fmt.Errorf("exec: weight override has %d entries for %d rows", len(opts.WeightOverride), snap.Len())
	}
	if err := checkCtx(ctx); err != nil {
		return nil, true, err
	}
	sel = foldSelect(sel)
	if !sel.HasAggregates() && len(sel.GroupBy) == 0 {
		return nil, false, nil
	}
	keyIdx, err := resolveGroupKeys(snap, sel)
	if err != nil {
		return nil, true, err
	}
	rawW := snap.Weights()
	if opts.WeightOverride != nil {
		rawW = opts.WeightOverride
	}
	workers := opts.workers()
	// The engage/decline decision runs against the FULL snapshot, exactly as
	// runAggregateSharded's does: plannability depends only on schema and
	// expression shape, and the error-ordering guard (aggsCanErr without a
	// compilable filter) on the full row count — so every shard process
	// holding the same data reaches the same decision.
	comp := &kernelCompiler{snap: snap, weights: rawW, n: snap.Len(), workers: workers}
	vaggs, ok := planVectorAggs(comp, sel)
	if !ok {
		return nil, false, nil
	}
	if sel.Where != nil && aggsCanErr(vaggs, snap.Len()) && compileFilter(sel.Where, snap, rawW, 1) == nil {
		return nil, false, nil
	}
	bounds := shardBounds(snap.Len(), shards)
	lo, hi := bounds[shard][0], bounds[shard][1]
	sub := snap.SliceRange(lo, hi)
	var wo []float64
	if opts.WeightOverride != nil {
		wo = opts.WeightOverride[lo:hi]
	}
	p, err := shardPartialAggregate(ctx, sub, sel, keyIdx, wo, opts, workers)
	if err != nil {
		return nil, true, err
	}
	p.Rows = hi - lo
	if opts.ShardScan != nil {
		opts.ShardScan(shard, hi-lo)
	}
	return p, true, nil
}

// GatherPartials merges per-shard partials **in slice order** through the
// shared partial-state algebra and finalizes the result: group global ids by
// first appearance across the shard sequence, then HAVING / ORDER BY /
// LIMIT. It is the gather half of both in-process sharding and the
// multi-process fleet (where partials arrive deserialized off the wire); for
// identical inputs in identical order the output is bit-identical to
// runAggregateSharded's.
func GatherPartials(ctx context.Context, sel *sql.Select, partials []*ShardPartial) (*Result, error) {
	if len(partials) == 0 {
		return nil, fmt.Errorf("exec: gather of zero partials")
	}
	sel = foldSelect(sel)
	naggs := 0
	for _, it := range sel.Items {
		if it.Agg != sql.AggNone {
			naggs++
		}
	}
	for i, p := range partials {
		if p == nil {
			return nil, fmt.Errorf("exec: gather: partial %d is nil", i)
		}
		if len(p.States) != naggs {
			return nil, fmt.Errorf("exec: gather: partial %d carries %d aggregate states, query has %d", i, len(p.States), naggs)
		}
		if len(p.Keys) != len(p.KeyVals) {
			return nil, fmt.Errorf("exec: gather: partial %d has %d keys for %d key-value rows", i, len(p.Keys), len(p.KeyVals))
		}
		for ai, st := range p.States {
			if st.Kind != partials[0].States[ai].Kind {
				return nil, fmt.Errorf("exec: gather: partial %d aggregate %d is %v, partial 0 has %v", i, ai, st.Kind, partials[0].States[ai].Kind)
			}
		}
	}
	return gatherShardPartials(ctx, sel, partials)
}

// runAggregateSharded answers an aggregate query by scattering it over
// opts.Shards contiguous range partitions and gathering the partial states
// in shard order. handled=false means the shape is not kernel-coverable (or
// needs the row path's interleaved error ordering); the caller falls through
// to the unsharded paths.
func runAggregateSharded(ctx context.Context, snap *table.Snapshot, sel *sql.Select, opts Options) (*Result, bool, error) {
	keyIdx, err := resolveGroupKeys(snap, sel)
	if err != nil {
		return nil, true, err
	}
	rawW := snap.Weights()
	if opts.WeightOverride != nil {
		rawW = opts.WeightOverride
	}
	workers := opts.workers()
	// Engagement mirrors runAggregateVector exactly: a query the vectorized
	// path would decline must take the (unsharded) row path, with the same
	// error-ordering reasoning.
	comp := &kernelCompiler{snap: snap, weights: rawW, n: snap.Len(), workers: workers}
	vaggs, ok := planVectorAggs(comp, sel)
	if !ok {
		return nil, false, nil
	}
	if sel.Where != nil && aggsCanErr(vaggs, snap.Len()) && compileFilter(sel.Where, snap, rawW, 1) == nil {
		return nil, false, nil
	}

	// Scatter: each shard runs the full selection → group-id → accumulate
	// pipeline over its slice. Shards fan out across the existing worker
	// pool; a shard's internal morsel scans use the same pool size. Errors
	// surface in shard order (forEachTask), and within a shard in scan
	// order — together, the first erroring selected row in global scan order,
	// exactly like the unsharded scan.
	bounds := shardBounds(snap.Len(), opts.Shards)
	partials := make([]*ShardPartial, len(bounds))
	err = forEachTask(ctx, len(bounds), workers, func(s int) error {
		lo, hi := bounds[s][0], bounds[s][1]
		sub := snap.SliceRange(lo, hi)
		var wo []float64
		if opts.WeightOverride != nil {
			wo = opts.WeightOverride[lo:hi]
		}
		p, err := shardPartialAggregate(ctx, sub, sel, keyIdx, wo, opts, workers)
		if err != nil {
			return err
		}
		p.Rows = hi - lo
		if opts.ShardScan != nil {
			opts.ShardScan(s, hi-lo)
		}
		partials[s] = p
		return nil
	})
	if err != nil {
		return nil, true, err
	}
	res, err := gatherShardPartials(ctx, sel, partials)
	if err != nil {
		return nil, true, err
	}
	return res, true, nil
}

// gatherShardPartials is the shared gather: merge partials in slice order,
// assign group global ids at first appearance (shards being contiguous scan
// ranges, that is scan order), finalize every aggregate, and apply HAVING /
// ORDER BY / LIMIT. Aggregate kinds come from the partials themselves.
func gatherShardPartials(ctx context.Context, sel *sql.Select, partials []*ShardPartial) (*Result, error) {
	globalIdx := make(map[string]int)
	var keyVals [][]value.Value
	gStates := make([]*PartialStates, len(partials[0].States))
	for ai, st := range partials[0].States {
		gStates[ai] = NewPartialStates(st.Kind, 0)
	}
	for _, p := range partials {
		for lg, k := range p.Keys {
			gi, ok := globalIdx[k]
			if !ok {
				gi = len(keyVals)
				globalIdx[k] = gi
				keyVals = append(keyVals, p.KeyVals[lg])
				for _, st := range gStates {
					st.Grow(gi + 1)
				}
			}
			for ai, st := range gStates {
				st.MergeGroup(gi, p.States[ai], lg)
			}
		}
	}

	res := &Result{}
	for _, it := range sel.Items {
		res.Columns = append(res.Columns, it.Name())
	}
	outSchema := outputSchema(res.Columns)
	keyPos := itemKeyPositions(sel)
	total := len(keyVals)
	// A global aggregate over zero selected rows still yields one row of
	// empty aggregates.
	if total == 0 && len(sel.GroupBy) == 0 {
		total = 1
		for _, st := range gStates {
			st.Grow(1)
		}
	}
	for g := 0; g < total; g++ {
		row := make([]value.Value, 0, len(sel.Items))
		ai := 0
		for ii, it := range sel.Items {
			if it.Agg == sql.AggNone {
				row = append(row, keyVals[g][keyPos[ii]])
			} else {
				row = append(row, gStates[ai].Finalize(g))
				ai++
			}
		}
		if sel.Having != nil {
			ok, err := expr.Truthy(sel.Having, &expr.Binding{Schema: outSchema, Row: row})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if err := orderAndLimit(ctx, res, sel, outSchema); err != nil {
		return nil, err
	}
	return res, nil
}

// shardPartialAggregate runs the vectorized aggregate pipeline over one
// shard slice and returns its partial states keyed by group identity.
func shardPartialAggregate(ctx context.Context, sub *table.Snapshot, sel *sql.Select, keyIdx []int, weightOverride []float64, opts Options, workers int) (*ShardPartial, error) {
	rawW := sub.Weights()
	if weightOverride != nil {
		rawW = weightOverride
	}
	comp := &kernelCompiler{snap: sub, weights: rawW, n: sub.Len(), workers: workers}
	vaggs, ok := planVectorAggs(comp, sel)
	if !ok {
		// Plannability depends only on schema and expression shape, which
		// every slice shares with the full snapshot the caller planned.
		return nil, fmt.Errorf("exec: internal: shard plan diverged from table plan")
	}
	selRows, err := selectRows(ctx, sub, sel.Where, rawW, workers)
	if err != nil {
		return nil, err
	}
	if err := checkAggErrs(vaggs, selRows); err != nil {
		return nil, err
	}
	selW := make([]float64, len(selRows))
	if opts.Weighted {
		for k, ri := range selRows {
			selW[k] = rawW[ri]
		}
	} else {
		for k := range selW {
			selW[k] = 1
		}
	}
	gids, ngroups, firstRow := groupIDs(sub, keyIdx, selRows, workers)
	states, err := accumulateStates(ctx, vaggs, sub, selRows, gids, selW, rawW, ngroups, workers)
	if err != nil {
		return nil, err
	}
	p := &ShardPartial{
		Keys:    make([]string, ngroups),
		KeyVals: make([][]value.Value, ngroups),
		States:  states,
	}
	for g := 0; g < ngroups; g++ {
		row := sub.Row(int(firstRow[g]))
		kv := make([]value.Value, len(keyIdx))
		for ki, j := range keyIdx {
			kv[ki] = row[j]
		}
		p.Keys[g] = GroupKey(kv)
		p.KeyVals[g] = kv
	}
	return p, nil
}

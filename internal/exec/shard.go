// In-process sharded scatter-gather execution for aggregate queries.
//
// Options.Shards range-partitions the snapshot into S contiguous slices
// (shard boundaries are a pure function of the row count and S, and always
// multiples of 64 so null bitmaps re-slice on word boundaries). Each shard
// runs the ordinary vectorized aggregate pipeline over its slice and emits
// mergeable partial states; the gather step then merges partials **in shard
// order** through the shared partial-state algebra before HAVING / ORDER BY
// / LIMIT apply. Because shards are contiguous in scan order, a group's
// global id is assigned at its earliest scan-order appearance — exactly the
// unsharded first-appearance order — so group sets and output order are
// identical to the single-shard engine; float aggregate cells may differ in
// low-order bits (the shard merge reassociates IEEE 754 addition), which is
// why Shards is part of the answer contract. For a fixed Shards value,
// answers are bit-identical across runs and across Workers values.
package exec

import (
	"context"
	"fmt"
	"strings"

	"mosaic/internal/expr"
	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// shardBounds returns the row ranges of the S contiguous shards of an n-row
// scan. Every boundary is a multiple of 64 (null-bitmap word alignment);
// trailing shards may be empty when n is small or not divisible. The bounds
// are a pure function of (n, S) — never of Workers or scheduling — which is
// what makes sharded answers reproducible.
func shardBounds(n, s int) [][2]int {
	if s < 1 {
		s = 1
	}
	chunk := (n + s - 1) / s
	chunk = (chunk + 63) / 64 * 64
	if chunk == 0 {
		chunk = 64
	}
	out := make([][2]int, s)
	for i := 0; i < s; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		out[i] = [2]int{lo, hi}
	}
	return out
}

// shardPartial is one shard's scatter output: its locally-grouped partial
// states plus the group identities the gather step merges on. Local group
// order is the shard's first-appearance scan order.
type shardPartial struct {
	keys    []string        // HashKey-concat group identity per local group
	keyVals [][]value.Value // materialized key values per local group
	states  []*PartialStates
}

// runAggregateSharded answers an aggregate query by scattering it over
// opts.Shards contiguous range partitions and gathering the partial states
// in shard order. handled=false means the shape is not kernel-coverable (or
// needs the row path's interleaved error ordering); the caller falls through
// to the unsharded paths.
func runAggregateSharded(ctx context.Context, snap *table.Snapshot, sel *sql.Select, opts Options) (*Result, bool, error) {
	keyIdx, err := resolveGroupKeys(snap, sel)
	if err != nil {
		return nil, true, err
	}
	rawW := snap.Weights()
	if opts.WeightOverride != nil {
		rawW = opts.WeightOverride
	}
	workers := opts.workers()
	// Engagement mirrors runAggregateVector exactly: a query the vectorized
	// path would decline must take the (unsharded) row path, with the same
	// error-ordering reasoning.
	comp := &kernelCompiler{snap: snap, weights: rawW, n: snap.Len(), workers: workers}
	vaggs, ok := planVectorAggs(comp, sel)
	if !ok {
		return nil, false, nil
	}
	if sel.Where != nil && aggsCanErr(vaggs, snap.Len()) && compileFilter(sel.Where, snap, rawW, 1) == nil {
		return nil, false, nil
	}

	// Scatter: each shard runs the full selection → group-id → accumulate
	// pipeline over its slice. Shards fan out across the existing worker
	// pool; a shard's internal morsel scans use the same pool size. Errors
	// surface in shard order (forEachTask), and within a shard in scan
	// order — together, the first erroring selected row in global scan order,
	// exactly like the unsharded scan.
	bounds := shardBounds(snap.Len(), opts.Shards)
	partials := make([]*shardPartial, len(bounds))
	err = forEachTask(ctx, len(bounds), workers, func(s int) error {
		lo, hi := bounds[s][0], bounds[s][1]
		sub := snap.SliceRange(lo, hi)
		var wo []float64
		if opts.WeightOverride != nil {
			wo = opts.WeightOverride[lo:hi]
		}
		p, err := shardPartialAggregate(ctx, sub, sel, keyIdx, wo, opts, workers)
		if err != nil {
			return err
		}
		if opts.ShardScan != nil {
			opts.ShardScan(s, hi-lo)
		}
		partials[s] = p
		return nil
	})
	if err != nil {
		return nil, true, err
	}

	// Gather: merge partials in shard order. A group's global id is assigned
	// at its first appearance across the shard sequence, which — shards being
	// contiguous scan ranges — is its first appearance in scan order.
	globalIdx := make(map[string]int)
	var keyVals [][]value.Value
	gStates := make([]*PartialStates, len(vaggs))
	for ai, a := range vaggs {
		gStates[ai] = NewPartialStates(a.kind, 0)
	}
	for _, p := range partials {
		for lg, k := range p.keys {
			gi, ok := globalIdx[k]
			if !ok {
				gi = len(keyVals)
				globalIdx[k] = gi
				keyVals = append(keyVals, p.keyVals[lg])
				for _, st := range gStates {
					st.Grow(gi + 1)
				}
			}
			for ai, st := range gStates {
				st.MergeGroup(gi, p.states[ai], lg)
			}
		}
	}

	res := &Result{}
	for _, it := range sel.Items {
		res.Columns = append(res.Columns, it.Name())
	}
	outSchema := outputSchema(res.Columns)
	keyPos := itemKeyPositions(sel)
	total := len(keyVals)
	// A global aggregate over zero selected rows still yields one row of
	// empty aggregates.
	if total == 0 && len(sel.GroupBy) == 0 {
		total = 1
		for _, st := range gStates {
			st.Grow(1)
		}
	}
	for g := 0; g < total; g++ {
		row := make([]value.Value, 0, len(sel.Items))
		ai := 0
		for ii, it := range sel.Items {
			if it.Agg == sql.AggNone {
				row = append(row, keyVals[g][keyPos[ii]])
			} else {
				row = append(row, gStates[ai].Finalize(g))
				ai++
			}
		}
		if sel.Having != nil {
			ok, err := expr.Truthy(sel.Having, &expr.Binding{Schema: outSchema, Row: row})
			if err != nil {
				return nil, true, err
			}
			if !ok {
				continue
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if err := orderAndLimit(ctx, res, sel, outSchema); err != nil {
		return nil, true, err
	}
	return res, true, nil
}

// shardPartialAggregate runs the vectorized aggregate pipeline over one
// shard slice and returns its partial states keyed by group identity.
func shardPartialAggregate(ctx context.Context, sub *table.Snapshot, sel *sql.Select, keyIdx []int, weightOverride []float64, opts Options, workers int) (*shardPartial, error) {
	rawW := sub.Weights()
	if weightOverride != nil {
		rawW = weightOverride
	}
	comp := &kernelCompiler{snap: sub, weights: rawW, n: sub.Len(), workers: workers}
	vaggs, ok := planVectorAggs(comp, sel)
	if !ok {
		// Plannability depends only on schema and expression shape, which
		// every slice shares with the full snapshot the caller planned.
		return nil, fmt.Errorf("exec: internal: shard plan diverged from table plan")
	}
	selRows, err := selectRows(ctx, sub, sel.Where, rawW, workers)
	if err != nil {
		return nil, err
	}
	if err := checkAggErrs(vaggs, selRows); err != nil {
		return nil, err
	}
	selW := make([]float64, len(selRows))
	if opts.Weighted {
		for k, ri := range selRows {
			selW[k] = rawW[ri]
		}
	} else {
		for k := range selW {
			selW[k] = 1
		}
	}
	gids, ngroups, firstRow := groupIDs(sub, keyIdx, selRows, workers)
	states, err := accumulateStates(ctx, vaggs, sub, selRows, gids, selW, rawW, ngroups, workers)
	if err != nil {
		return nil, err
	}
	p := &shardPartial{
		keys:    make([]string, ngroups),
		keyVals: make([][]value.Value, ngroups),
		states:  states,
	}
	var kb strings.Builder
	for g := 0; g < ngroups; g++ {
		row := sub.Row(int(firstRow[g]))
		kv := make([]value.Value, len(keyIdx))
		kb.Reset()
		for ki, j := range keyIdx {
			kv[ki] = row[j]
			kb.WriteString(row[j].HashKey())
			kb.WriteByte('\x1f')
		}
		p.keys[g] = kb.String()
		p.keyVals[g] = kv
	}
	return p, nil
}

// The partial-aggregate state algebra: the one definition of how
// SUM/COUNT/AVG/MIN/MAX (weighted or not) accumulate inputs, merge partial
// results, and finalize into output values. Three drivers consume it — the
// row interpreter (runAggregate), the vectorized executor's group-indexed
// loops (runAggregateVector, runAggregateSharded), and the OPEN replicate
// combine (core.combineOpenResults) — so the accumulation semantics exist
// exactly once and every combine layer (morsel, shard, replicate) speaks the
// same algebra.
//
// Merge is order-sensitive: IEEE 754 addition does not reassociate, so
// partial states must always be merged in a fixed partition order (shard
// order, replicate order). For a fixed partition count the merged answer is
// then bit-identical across runs and worker counts; different partition
// counts may legitimately differ in low-order float bits, which is why
// Shards is part of the answer contract for float aggregates.
package exec

import (
	"mosaic/internal/sql"
	"mosaic/internal/value"
)

// AggState is the mergeable partial state of one aggregate over one group.
// Only the fields the aggregate kind touches are meaningful; the zero value
// is the empty state for every kind.
type AggState struct {
	Count  float64     // COUNT: Σ w over contributing rows
	SumW   float64     // SUM/AVG: Σ w
	SumWX  float64     // SUM/AVG: Σ w·x
	MinMax value.Value // MIN/MAX: running extremum, valid when Seen
	Seen   bool        // a non-null input reached this state
}

// AccumulateStar folds a COUNT(*) contribution: no input value, never null.
func (s *AggState) AccumulateStar(w float64) { s.Count += w }

// Accumulate folds one evaluated, non-null input value with weight w into
// the state. The operation sequence here is the determinism contract: every
// driver (and the columnar loops that mirror it) must perform exactly these
// additions in scan order so float results are bit-identical across paths.
// The returned error is value.Float64's (SUM/AVG over a non-numeric value);
// callers wrap it with their own message.
func (s *AggState) Accumulate(kind sql.AggKind, v value.Value, w float64) error {
	switch kind {
	case sql.AggCount:
		s.Count += w
	case sql.AggSum, sql.AggAvg:
		f, err := v.Float64()
		if err != nil {
			return err
		}
		s.SumW += w
		s.SumWX += w * f
	case sql.AggMin:
		if !s.Seen || value.Compare(v, s.MinMax) < 0 {
			s.MinMax = v
		}
	case sql.AggMax:
		if !s.Seen || value.Compare(v, s.MinMax) > 0 {
			s.MinMax = v
		}
	}
	s.Seen = true
	return nil
}

// Merge folds other into s, with s logically ordered before other: s becomes
// the state of the concatenation (s's rows, then other's rows). Callers must
// merge partitions in their fixed order — sums do not reassociate.
func (s *AggState) Merge(kind sql.AggKind, other AggState) {
	switch kind {
	case sql.AggCount:
		s.Count += other.Count
	case sql.AggSum, sql.AggAvg:
		s.SumW += other.SumW
		s.SumWX += other.SumWX
	case sql.AggMin:
		if other.Seen && (!s.Seen || value.Compare(other.MinMax, s.MinMax) < 0) {
			s.MinMax = other.MinMax
		}
	case sql.AggMax:
		if other.Seen && (!s.Seen || value.Compare(other.MinMax, s.MinMax) > 0) {
			s.MinMax = other.MinMax
		}
	}
	s.Seen = s.Seen || other.Seen
}

// Finalize produces the aggregate's output value: COUNT of nothing is 0,
// SUM/MIN/MAX of nothing are NULL, AVG is NULL when no input or all weights
// were zero.
func (s *AggState) Finalize(kind sql.AggKind) value.Value {
	switch kind {
	case sql.AggCount:
		return value.Float(s.Count)
	case sql.AggSum:
		if !s.Seen {
			return value.Null()
		}
		return value.Float(s.SumWX)
	case sql.AggAvg:
		if !s.Seen || s.SumW == 0 {
			return value.Null()
		}
		return value.Float(s.SumWX / s.SumW)
	case sql.AggMin, sql.AggMax:
		if !s.Seen {
			return value.Null()
		}
		return s.MinMax
	default:
		return value.Null()
	}
}

// PartialStates is the columnar (group-indexed) form of AggState: one
// aggregate's states for every group as struct-of-arrays, so the vectorized
// accumulation loops index flat slices instead of chasing per-group
// pointers. Only the slices the kind needs are allocated. Semantics are
// defined by AggState: position g of these arrays is AggState's fields for
// group g, and Finalize/MergeGroup mirror AggState.Finalize/Merge exactly.
type PartialStates struct {
	Kind   sql.AggKind
	Count  []float64
	SumW   []float64
	SumWX  []float64
	MinMax []value.Value
	Seen   []bool
}

// NewPartialStates allocates empty states for n groups.
func NewPartialStates(kind sql.AggKind, n int) *PartialStates {
	st := &PartialStates{Kind: kind}
	st.Grow(n)
	return st
}

// Grow extends the state arrays to cover n groups; new groups start empty.
// A no-op when the states already cover n.
func (st *PartialStates) Grow(n int) {
	switch st.Kind {
	case sql.AggCount:
		st.Count = grown(st.Count, n)
	case sql.AggSum, sql.AggAvg:
		st.SumW = grown(st.SumW, n)
		st.SumWX = grown(st.SumWX, n)
		st.Seen = grown(st.Seen, n)
	case sql.AggMin, sql.AggMax:
		st.MinMax = grown(st.MinMax, n)
		st.Seen = grown(st.Seen, n)
	}
}

// grown is append-style growth to exactly n elements (zero-filled), with
// capacity doubling so incremental gather loops stay linear.
func grown[T any](s []T, n int) []T {
	if len(s) >= n {
		return s
	}
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	out := make([]T, n, c)
	copy(out, s)
	return out
}

// MergeGroup folds group og of other into group g of st, st-before-other —
// the columnar mirror of AggState.Merge. Callers merge partitions in their
// fixed order.
func (st *PartialStates) MergeGroup(g int, other *PartialStates, og int) {
	switch st.Kind {
	case sql.AggCount:
		st.Count[g] += other.Count[og]
	case sql.AggSum, sql.AggAvg:
		st.SumW[g] += other.SumW[og]
		st.SumWX[g] += other.SumWX[og]
		st.Seen[g] = st.Seen[g] || other.Seen[og]
	case sql.AggMin:
		if other.Seen[og] && (!st.Seen[g] || value.Compare(other.MinMax[og], st.MinMax[g]) < 0) {
			st.MinMax[g] = other.MinMax[og]
		}
		st.Seen[g] = st.Seen[g] || other.Seen[og]
	case sql.AggMax:
		if other.Seen[og] && (!st.Seen[g] || value.Compare(other.MinMax[og], st.MinMax[g]) > 0) {
			st.MinMax[g] = other.MinMax[og]
		}
		st.Seen[g] = st.Seen[g] || other.Seen[og]
	}
}

// Finalize produces group g's output value — AggState.Finalize over the
// columnar form.
func (st *PartialStates) Finalize(g int) value.Value {
	switch st.Kind {
	case sql.AggCount:
		return value.Float(st.Count[g])
	case sql.AggSum:
		if !st.Seen[g] {
			return value.Null()
		}
		return value.Float(st.SumWX[g])
	case sql.AggAvg:
		if !st.Seen[g] || st.SumW[g] == 0 {
			return value.Null()
		}
		return value.Float(st.SumWX[g] / st.SumW[g])
	case sql.AggMin, sql.AggMax:
		if !st.Seen[g] {
			return value.Null()
		}
		return st.MinMax[g]
	default:
		return value.Null()
	}
}

package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mosaic/internal/schema"
	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// diffSchema exercises every column kind, with NULLs allowed everywhere.
var diffSchema = schema.MustNew(
	schema.Attribute{Name: "c", Kind: value.KindText},
	schema.Attribute{Name: "x", Kind: value.KindInt},
	schema.Attribute{Name: "y", Kind: value.KindFloat},
	schema.Attribute{Name: "b", Kind: value.KindBool},
	schema.Attribute{Name: "n", Kind: value.KindInt},
)

// diffTable builds a deterministic fixture with duplicates, NULLs in every
// column, ±0, NaN-free floats (NaN weights would poison sums on both paths
// identically but make failures hard to read), and non-unit weights
// including zero.
func diffTable(tb testing.TB, n int, seed int64) *table.Table {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	t := table.New("t", diffSchema)
	for i := 0; i < n; i++ {
		row := make([]value.Value, 5)
		if rng.Intn(10) == 0 {
			row[0] = value.Null()
		} else {
			row[0] = value.Text(fmt.Sprintf("g%d", rng.Intn(6)))
		}
		if rng.Intn(10) == 0 {
			row[1] = value.Null()
		} else {
			row[1] = value.Int(int64(rng.Intn(1000) - 500))
		}
		switch rng.Intn(12) {
		case 0:
			row[2] = value.Null()
		case 1:
			row[2] = value.Float(0)
		case 2:
			row[2] = value.Float(math.Copysign(0, -1)) // -0: distinct group, equal compare
		default:
			row[2] = value.Float(float64(int(rng.Float64()*2000-1000)) / 8)
		}
		if rng.Intn(10) == 0 {
			row[3] = value.Null()
		} else {
			row[3] = value.Bool(rng.Intn(2) == 0)
		}
		if rng.Intn(3) == 0 {
			row[4] = value.Null()
		} else {
			row[4] = value.Int(int64(rng.Intn(4)))
		}
		w := float64(rng.Intn(8)) / 2 // weights 0, 0.5, ... 3.5
		if err := t.AppendWeighted(row, w); err != nil {
			tb.Fatal(err)
		}
	}
	return t
}

// diffWheres covers every kernel plus shapes that must fall back.
var diffWheres = []string{
	"",
	"WHERE x > 42",
	"WHERE x >= -100 AND x <= 100",
	"WHERE y < 12.5",
	"WHERE y != 0",
	"WHERE c = 'g3'",
	"WHERE c != 'g3'",
	"WHERE c = 'not-present'",
	"WHERE c < 'g2'",
	"WHERE c >= 'g4'",
	"WHERE b",
	"WHERE NOT b",
	"WHERE b = TRUE",
	"WHERE n IS NULL",
	"WHERE n IS NOT NULL",
	"WHERE x IN (1, 2, 3)",
	"WHERE x IN (1, 2, NULL)",
	"WHERE x NOT IN (1, 2, NULL)",
	"WHERE c IN ('g1', 'zzz')",
	"WHERE c NOT IN ('g1', 'g2')",
	"WHERE b IN (TRUE)",
	"WHERE y BETWEEN -10 AND 50",
	"WHERE x NOT BETWEEN 0 AND 400",
	"WHERE x BETWEEN NULL AND 10",
	"WHERE x > 100 AND y < 50 OR b",
	"WHERE NOT (x > 100 OR c = 'g1')",
	"WHERE x > y",
	"WHERE x = n",
	"WHERE c = c",
	"WHERE WEIGHT > 1",
	"WHERE WEIGHT = 0",
	"WHERE x = NULL",
	"WHERE x > 'text'",
	"WHERE b > 5",
	"WHERE x",
	"WHERE -x",
	"WHERE 1",
	"WHERE NULL",
	"WHERE x + 1 > y", // arithmetic: interpreted fallback
	"WHERE (x * 2) IN (4, 8)",
	"WHERE nosuch > 1", // unknown column: lazy per-row error on both paths
}

// diffShapes are query templates; %s receives the WHERE clause.
var diffShapes = []string{
	"SELECT * FROM t %s",
	"SELECT c, x, y FROM t %s ORDER BY x DESC, c LIMIT 7",
	"SELECT DISTINCT c, b FROM t %s",
	"SELECT c, WEIGHT FROM t %s LIMIT 9",
	"SELECT COUNT(*), SUM(x), AVG(y), MIN(x), MAX(y) FROM t %s",
	"SELECT COUNT(n), MIN(c), MAX(c), MIN(b), MAX(b) FROM t %s",
	"SELECT SUM(WEIGHT), MIN(WEIGHT), MAX(WEIGHT), COUNT(WEIGHT) FROM t %s",
	"SELECT c, COUNT(*), AVG(y) FROM t %s GROUP BY c",
	"SELECT c, b, COUNT(*) AS cnt, SUM(WEIGHT), MIN(n) FROM t %s GROUP BY c, b ORDER BY cnt DESC, c LIMIT 5",
	"SELECT n, COUNT(n) AS cnt, SUM(y) FROM t %s GROUP BY n HAVING cnt > 2",
	"SELECT y, COUNT(*) FROM t %s GROUP BY y",
	"SELECT x, SUM(b), AVG(b) FROM t %s GROUP BY x ORDER BY x LIMIT 11",
	"SELECT c, n, b, COUNT(*) FROM t %s GROUP BY c, n, b",
	"SELECT b, MIN(y), MAX(n) FROM t %s GROUP BY b ORDER BY b DESC",
	"SELECT c FROM t %s GROUP BY c",
	"SELECT AVG(c) FROM t %s",     // SUM/AVG over TEXT: lazy error, row path on both sides
	"SELECT SUM(x + y) FROM t %s", // non-column aggregate input: row path
	"SELECT c, COUNT(*) FROM t %s GROUP BY c HAVING c > 'g2'",
}

// runBoth executes sel on both executor paths and requires byte-identical
// outcomes (same error message, or same rendered result).
func runBoth(t *testing.T, tbl *table.Table, src string, opts Options) {
	t.Helper()
	sel, err := sql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	rowOpts := opts
	rowOpts.ForceRow = true
	vecOpts := opts
	vecOpts.ForceRow = false
	rres, rerr := Run(tbl, sel, rowOpts)
	vres, verr := Run(tbl, sel, vecOpts)
	switch {
	case rerr != nil && verr != nil:
		if rerr.Error() != verr.Error() {
			t.Errorf("%q: error mismatch\n  row: %v\n  vec: %v", src, rerr, verr)
		}
	case rerr != nil || verr != nil:
		t.Errorf("%q: one path errored\n  row: %v\n  vec: %v", src, rerr, verr)
	default:
		if rs, vs := rres.String(), vres.String(); rs != vs {
			t.Errorf("%q: output mismatch\n--- row ---\n%s\n--- vec ---\n%s", src, rs, vs)
		}
	}
}

// TestRowVsVectorGrid is the differential harness: every WHERE × shape ×
// weighting combination must be byte-identical across the two executors.
func TestRowVsVectorGrid(t *testing.T) {
	tables := []*table.Table{
		diffTable(t, 0, 1),
		diffTable(t, 1, 2),
		diffTable(t, 500, 3),
	}
	var override []float64
	{
		rng := rand.New(rand.NewSource(9))
		override = make([]float64, 500)
		for i := range override {
			override[i] = rng.Float64() * 3
		}
	}
	for ti, tbl := range tables {
		for _, shape := range diffShapes {
			for _, where := range diffWheres {
				src := fmt.Sprintf(shape, where)
				runBoth(t, tbl, src, Options{Weighted: true})
				runBoth(t, tbl, src, Options{Weighted: false})
				if ti == 2 {
					runBoth(t, tbl, src, Options{Weighted: true, WeightOverride: override})
				}
			}
		}
	}
}

// FuzzRowVsVector feeds arbitrary SQL through both executors; any accepted
// SELECT must produce identical outcomes. Seeded from the grid plus the
// parser fuzz corpus style of inputs.
func FuzzRowVsVector(f *testing.F) {
	for _, shape := range diffShapes {
		for _, where := range diffWheres[:8] {
			f.Add(fmt.Sprintf(shape, where))
		}
	}
	f.Add("SELECT OPEN c, COUNT(*) FROM t GROUP BY c")
	f.Add("SELECT x FROM t WHERE x IN (1, 'one', TRUE, NULL)")
	f.Add("SELECT MAX(c) FROM t WHERE c BETWEEN 'a' AND 'z' GROUP BY b")
	tbl := diffTable(f, 200, 7)
	f.Fuzz(func(t *testing.T, src string) {
		sel, err := sql.ParseQuery(src)
		if err != nil {
			return
		}
		rres, rerr := Run(tbl, sel, Options{Weighted: true, ForceRow: true})
		vres, verr := Run(tbl, sel, Options{Weighted: true})
		switch {
		case rerr != nil && verr != nil:
			if rerr.Error() != verr.Error() {
				t.Fatalf("%q: error mismatch\n  row: %v\n  vec: %v", src, rerr, verr)
			}
		case rerr != nil || verr != nil:
			t.Fatalf("%q: one path errored\n  row: %v\n  vec: %v", src, rerr, verr)
		default:
			if rs, vs := rres.String(), vres.String(); rs != vs {
				t.Fatalf("%q: output mismatch\n--- row ---\n%s\n--- vec ---\n%s", src, rs, vs)
			}
		}
	})
}

// TestInExactIntMembership pins value.Equal's exact INT-vs-INT comparison
// on the vectorized IN kernel: 2^53 and 2^53+1 collapse to one float64, so
// a float-coded membership set would confuse them.
func TestInExactIntMembership(t *testing.T) {
	tbl := table.New("t", diffSchema)
	big := int64(1) << 53
	for _, x := range []int64{big, big + 1, 7} {
		if err := tbl.Append([]value.Value{value.Text("g"), value.Int(x), value.Float(0), value.Bool(true), value.Null()}); err != nil {
			t.Fatal(err)
		}
	}
	for _, src := range []string{
		fmt.Sprintf("SELECT COUNT(*) FROM t WHERE x IN (%d)", big+1),
		fmt.Sprintf("SELECT COUNT(*) FROM t WHERE x IN (%d, 7)", big),
		fmt.Sprintf("SELECT COUNT(*) FROM t WHERE x NOT IN (%d)", big+1),
		fmt.Sprintf("SELECT COUNT(*) FROM t WHERE x IN (%d.0)", 8),
	} {
		runBoth(t, tbl, src, Options{Weighted: true})
	}
}

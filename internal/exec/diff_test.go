package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mosaic/internal/schema"
	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// diffSchema exercises every column kind, with NULLs allowed everywhere.
var diffSchema = schema.MustNew(
	schema.Attribute{Name: "c", Kind: value.KindText},
	schema.Attribute{Name: "x", Kind: value.KindInt},
	schema.Attribute{Name: "y", Kind: value.KindFloat},
	schema.Attribute{Name: "b", Kind: value.KindBool},
	schema.Attribute{Name: "n", Kind: value.KindInt},
)

// diffTable builds a deterministic fixture with duplicates, NULLs in every
// column, ±0, NaN-free floats (NaN weights would poison sums on both paths
// identically but make failures hard to read), and non-unit weights
// including zero.
func diffTable(tb testing.TB, n int, seed int64) *table.Table {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	t := table.New("t", diffSchema)
	for i := 0; i < n; i++ {
		row := make([]value.Value, 5)
		if rng.Intn(10) == 0 {
			row[0] = value.Null()
		} else {
			row[0] = value.Text(fmt.Sprintf("g%d", rng.Intn(6)))
		}
		if rng.Intn(10) == 0 {
			row[1] = value.Null()
		} else {
			row[1] = value.Int(int64(rng.Intn(1000) - 500))
		}
		switch rng.Intn(12) {
		case 0:
			row[2] = value.Null()
		case 1:
			row[2] = value.Float(0)
		case 2:
			row[2] = value.Float(math.Copysign(0, -1)) // -0: distinct group, equal compare
		default:
			row[2] = value.Float(float64(int(rng.Float64()*2000-1000)) / 8)
		}
		if rng.Intn(10) == 0 {
			row[3] = value.Null()
		} else {
			row[3] = value.Bool(rng.Intn(2) == 0)
		}
		if rng.Intn(3) == 0 {
			row[4] = value.Null()
		} else {
			row[4] = value.Int(int64(rng.Intn(4)))
		}
		w := float64(rng.Intn(8)) / 2 // weights 0, 0.5, ... 3.5
		if err := t.AppendWeighted(row, w); err != nil {
			tb.Fatal(err)
		}
	}
	return t
}

// diffWheres covers every kernel plus shapes that must fall back.
var diffWheres = []string{
	"",
	"WHERE x > 42",
	"WHERE x >= -100 AND x <= 100",
	"WHERE y < 12.5",
	"WHERE y != 0",
	"WHERE c = 'g3'",
	"WHERE c != 'g3'",
	"WHERE c = 'not-present'",
	"WHERE c < 'g2'",
	"WHERE c >= 'g4'",
	"WHERE b",
	"WHERE NOT b",
	"WHERE b = TRUE",
	"WHERE n IS NULL",
	"WHERE n IS NOT NULL",
	"WHERE x IN (1, 2, 3)",
	"WHERE x IN (1, 2, NULL)",
	"WHERE x NOT IN (1, 2, NULL)",
	"WHERE c IN ('g1', 'zzz')",
	"WHERE c NOT IN ('g1', 'g2')",
	"WHERE b IN (TRUE)",
	"WHERE y BETWEEN -10 AND 50",
	"WHERE x NOT BETWEEN 0 AND 400",
	"WHERE x BETWEEN NULL AND 10",
	"WHERE x > 100 AND y < 50 OR b",
	"WHERE NOT (x > 100 OR c = 'g1')",
	"WHERE x > y",
	"WHERE x = n",
	"WHERE c = c",
	"WHERE WEIGHT > 1",
	"WHERE WEIGHT = 0",
	"WHERE x = NULL",
	"WHERE x > 'text'",
	"WHERE b > 5",
	"WHERE x",
	"WHERE -x",
	"WHERE 1",
	"WHERE NULL",
	// Arithmetic kernels (and their fallback edges).
	"WHERE x + 1 > y",
	"WHERE x * 2 > y + 1",
	"WHERE (x * 2) IN (4, 8)",
	"WHERE x % 5 = 0",
	"WHERE (x + y) / 2 >= 1",
	"WHERE x / 4 > 10 OR y * -1 < 0",
	"WHERE -(x + 1) < 0",
	"WHERE x + 1 IS NULL",
	"WHERE x + 1 IS NOT NULL",
	"WHERE x * 2 BETWEEN 10 AND 100",
	"WHERE y - 0.5 NOT BETWEEN 0 AND 1",
	"WHERE x * 2 BETWEEN NULL AND 100",
	"WHERE x + NULL > 3",
	"WHERE x + y",
	"WHERE x - x",
	"WHERE 2 + 3 > 4",              // constant-folds to TRUE
	"WHERE x / n > 2",              // n has zeros: division-by-zero error on both paths
	"WHERE n IS NULL OR x / n > 2", // error suppressed only where short-circuited? no: OR evaluates both arms
	"WHERE x > 0 AND x / 0 > 1",    // constant zero divisor behind an AND
	"WHERE x % n = 1",              // modulo by zero error
	"WHERE x / 0 > 1",
	"WHERE WEIGHT * 2 > 1",
	"WHERE x + c > 1",  // arithmetic on TEXT: lazy per-row error on both paths
	"WHERE b + 1 > 0",  // arithmetic on BOOL: lazy per-row error on both paths
	"WHERE nosuch > 1", // unknown column: lazy per-row error on both paths
}

// diffShapes are query templates; %s receives the WHERE clause.
var diffShapes = []string{
	"SELECT * FROM t %s",
	"SELECT c, x, y FROM t %s ORDER BY x DESC, c LIMIT 7",
	"SELECT DISTINCT c, b FROM t %s",
	"SELECT c, WEIGHT FROM t %s LIMIT 9",
	"SELECT COUNT(*), SUM(x), AVG(y), MIN(x), MAX(y) FROM t %s",
	"SELECT COUNT(n), MIN(c), MAX(c), MIN(b), MAX(b) FROM t %s",
	"SELECT SUM(WEIGHT), MIN(WEIGHT), MAX(WEIGHT), COUNT(WEIGHT) FROM t %s",
	"SELECT c, COUNT(*), AVG(y) FROM t %s GROUP BY c",
	"SELECT c, b, COUNT(*) AS cnt, SUM(WEIGHT), MIN(n) FROM t %s GROUP BY c, b ORDER BY cnt DESC, c LIMIT 5",
	"SELECT n, COUNT(n) AS cnt, SUM(y) FROM t %s GROUP BY n HAVING cnt > 2",
	"SELECT y, COUNT(*) FROM t %s GROUP BY y",
	"SELECT x, SUM(b), AVG(b) FROM t %s GROUP BY x ORDER BY x LIMIT 11",
	"SELECT c, n, b, COUNT(*) FROM t %s GROUP BY c, n, b",
	"SELECT b, MIN(y), MAX(n) FROM t %s GROUP BY b ORDER BY b DESC",
	"SELECT c FROM t %s GROUP BY c",
	"SELECT AVG(c) FROM t %s", // SUM/AVG over TEXT: lazy error, row path on both sides
	"SELECT c, COUNT(*) FROM t %s GROUP BY c HAVING c > 'g2'",
	// Columnar ORDER BY / top-K: every kind as a key, ties, DESC, NULL
	// ordering, LIMIT 0 / 1 / oversized, and computed-item fallbacks.
	"SELECT x, y FROM t %s ORDER BY y LIMIT 10",
	"SELECT * FROM t %s ORDER BY y DESC, x LIMIT 3",
	"SELECT c, x FROM t %s ORDER BY c, x DESC",
	"SELECT x FROM t %s ORDER BY x LIMIT 0",
	"SELECT x FROM t %s ORDER BY x LIMIT 1",
	"SELECT n, b FROM t %s ORDER BY n DESC, b LIMIT 1000000",
	"SELECT c, WEIGHT FROM t %s ORDER BY WEIGHT DESC, c LIMIT 6",
	"SELECT b, c FROM t %s ORDER BY b, c DESC LIMIT 8",
	"SELECT x AS a, y AS a FROM t %s ORDER BY a LIMIT 5", // duplicate output name: first wins
	"SELECT x + 1 AS z, y FROM t %s ORDER BY z LIMIT 5",  // computed item: materialized sort
	"SELECT x, y FROM t %s ORDER BY x + 1 LIMIT 5",       // expression key: generic fallback
	"SELECT x FROM t %s ORDER BY nosuch",                 // unresolvable key: same lazy error
	"SELECT * FROM t %s LIMIT 2",
	// Columnar DISTINCT (densified) and its fallbacks.
	"SELECT DISTINCT c FROM t %s ORDER BY c DESC LIMIT 4",
	"SELECT DISTINCT n, b FROM t %s",
	"SELECT DISTINCT y FROM t %s ORDER BY y LIMIT 1000000",
	"SELECT DISTINCT * FROM t %s ORDER BY x LIMIT 7",
	"SELECT DISTINCT c, WEIGHT FROM t %s ORDER BY c LIMIT 5", // WEIGHT item: dedup fallback
	"SELECT DISTINCT x %% 3 AS r FROM t %s ORDER BY r",       // computed item: dedup fallback
	// Aggregate ORDER BY + LIMIT rides the generic top-K heap.
	"SELECT y, COUNT(*) AS cnt FROM t %s GROUP BY y ORDER BY cnt DESC, y LIMIT 4",
	"SELECT x, AVG(y) AS m FROM t %s GROUP BY x ORDER BY m LIMIT 6",
	// Arithmetic aggregate inputs on the vectorized path.
	"SELECT SUM(x + y) FROM t %s",
	"SELECT c, SUM(x * 2), AVG(y / 2), MIN(x - n), MAX(x %% 7) FROM t %s GROUP BY c",
	"SELECT COUNT(y * 2), SUM(WEIGHT + 1) FROM t %s",
	"SELECT SUM(x / n) FROM t %s", // division by zero in the aggregate input
	"SELECT c, MIN(x + NULL) FROM t %s GROUP BY c",
}

// sweepWorkers is the Workers grid every differential check runs the
// vectorized path under: the serial scan and three morsel-parallel pool
// sizes. Byte-identity across the sweep is the morsel-merge contract.
var sweepWorkers = []int{1, 2, 4, 8}

// sweepShards is the Shards grid layered on top: unsharded, and two
// scatter-gather partitionings. At Shards 1 every answer must be
// byte-identical to the row engine; at Shards > 1 the contract weakens for
// float aggregates only (partial-state merges reassociate addition), so
// those cells check bit-identity against a fresh single-worker reference at
// the same shard count, error-message identity against the row engine, and
// numeric closeness of the result cells.
var sweepShards = []int{1, 2, 4}

// resultsClose compares two results cell by cell: columns, row count, row
// order, kinds, and non-float cells must match exactly; float cells may
// differ by a relative 1e-9 (the reassociation allowance).
func resultsClose(a, b *Result) bool {
	if len(a.Rows) != len(b.Rows) || len(a.Columns) != len(b.Columns) {
		return false
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return false
		}
	}
	for i := range a.Rows {
		ra, rb := a.Rows[i], b.Rows[i]
		if len(ra) != len(rb) {
			return false
		}
		for j := range ra {
			va, vb := ra[j], rb[j]
			if va.Kind() != vb.Kind() {
				return false
			}
			if va.Kind() == value.KindFloat {
				x, y := va.AsFloat(), vb.AsFloat()
				if x == y || (math.IsNaN(x) && math.IsNaN(y)) {
					continue
				}
				if math.Abs(x-y) <= 1e-9*math.Max(math.Abs(x), math.Abs(y)) {
					continue
				}
				return false
			}
			if !value.Equal(va, vb) {
				return false
			}
		}
	}
	return true
}

// runBoth executes sel on the row path and on the vectorized path at every
// swept (workers × shards) cell. Shards 1 cells must be byte-identical to
// the row answer; Shards > 1 cells must be byte-identical to each other
// (across Workers and across runs — the reference is a fresh execution) and
// close to the row answer per resultsClose, with identical error outcomes.
func runBoth(t *testing.T, tbl *table.Table, src string, opts Options) {
	t.Helper()
	sel, err := sql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	rowOpts := opts
	rowOpts.ForceRow = true
	rres, rerr := Run(tbl, sel, rowOpts)
	for _, s := range sweepShards {
		refRes, refErr := rres, rerr
		if s > 1 {
			shardOpts := opts
			shardOpts.ForceRow = false
			shardOpts.Workers = 1
			shardOpts.Shards = s
			refRes, refErr = Run(tbl, sel, shardOpts)
			switch {
			case (rerr == nil) != (refErr == nil):
				t.Errorf("%q: one path errored\n  row: %v\n  vec(%d shards): %v", src, rerr, s, refErr)
				continue
			case rerr != nil:
				if rerr.Error() != refErr.Error() {
					t.Errorf("%q: error mismatch\n  row: %v\n  vec(%d shards): %v", src, rerr, s, refErr)
					continue
				}
			case !resultsClose(rres, refRes):
				t.Errorf("%q: sharded answer diverged beyond float reassociation\n--- row ---\n%s\n--- vec (%d shards) ---\n%s",
					src, rres, s, refRes)
				continue
			}
		}
		for _, w := range sweepWorkers {
			vecOpts := opts
			vecOpts.ForceRow = false
			vecOpts.Workers = w
			vecOpts.Shards = s
			vres, verr := Run(tbl, sel, vecOpts)
			switch {
			case refErr != nil && verr != nil:
				if refErr.Error() != verr.Error() {
					t.Errorf("%q: error mismatch\n  ref: %v\n  vec(%d workers, %d shards): %v", src, refErr, w, s, verr)
				}
			case refErr != nil || verr != nil:
				t.Errorf("%q: one path errored\n  ref: %v\n  vec(%d workers, %d shards): %v", src, refErr, w, s, verr)
			default:
				if rs, vs := refRes.String(), vres.String(); rs != vs {
					t.Errorf("%q: output mismatch\n--- ref ---\n%s\n--- vec (%d workers, %d shards) ---\n%s", src, rs, w, s, vs)
				}
			}
		}
	}
}

// TestRowVsVectorGrid is the differential harness: every WHERE × shape ×
// weighting combination must be byte-identical across the two executors.
// The table sizes double as the mandatory sharding cells: 0 rows (every
// shard empty), 1 row (row count not divisible by any swept S > 1, all but
// one shard empty), 130 rows (not divisible by 4, and under the 64-row-
// aligned bounds S=4 leaves a trailing shard empty), and 500 rows (spans
// several 64-row blocks with a partial tail).
func TestRowVsVectorGrid(t *testing.T) {
	tables := []*table.Table{
		diffTable(t, 0, 1),
		diffTable(t, 1, 2),
		diffTable(t, 500, 3),
		diffTable(t, 130, 4),
	}
	var override []float64
	{
		rng := rand.New(rand.NewSource(9))
		override = make([]float64, 500)
		for i := range override {
			override[i] = rng.Float64() * 3
		}
	}
	for ti, tbl := range tables {
		for _, shape := range diffShapes {
			for _, where := range diffWheres {
				src := fmt.Sprintf(shape, where)
				runBoth(t, tbl, src, Options{Weighted: true})
				runBoth(t, tbl, src, Options{Weighted: false})
				if ti == 2 {
					runBoth(t, tbl, src, Options{Weighted: true, WeightOverride: override})
				}
			}
		}
	}
}

// nanTable is diffTable with NaN values mixed into the float column — the
// one value under which value.Compare is not a strict weak order, so it
// stresses the sort paths' NaN guards (heap top-K must refuse; the
// permutation sort must still match the row engine's stable sort bit for
// bit) and NaN group identity.
func nanTable(tb testing.TB, n int, seed int64) *table.Table {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	t := table.New("t", diffSchema)
	for i := 0; i < n; i++ {
		row := make([]value.Value, 5)
		row[0] = value.Text(fmt.Sprintf("g%d", rng.Intn(4)))
		row[1] = value.Int(int64(rng.Intn(20) - 10))
		switch rng.Intn(4) {
		case 0:
			row[2] = value.Float(math.NaN())
		case 1:
			row[2] = value.Null()
		default:
			row[2] = value.Float(float64(rng.Intn(16)) / 4)
		}
		row[3] = value.Bool(rng.Intn(2) == 0)
		row[4] = value.Int(int64(rng.Intn(3)))
		if err := t.AppendWeighted(row, float64(rng.Intn(4))/2); err != nil {
			tb.Fatal(err)
		}
	}
	return t
}

// TestRowVsVectorNaN runs the sort/distinct/arith shapes over a table whose
// float column contains NaNs (and, separately, a NaN weight override).
func TestRowVsVectorNaN(t *testing.T) {
	tbl := nanTable(t, 300, 11)
	shapes := []string{
		"SELECT x, y FROM t %s ORDER BY y LIMIT 10",
		"SELECT * FROM t %s ORDER BY y DESC, x LIMIT 5",
		"SELECT y FROM t %s ORDER BY y",
		"SELECT DISTINCT y FROM t %s",
		"SELECT DISTINCT y FROM t %s ORDER BY y LIMIT 3",
		"SELECT y, COUNT(*) FROM t %s GROUP BY y ORDER BY y LIMIT 7",
		"SELECT c, AVG(y) AS m FROM t %s GROUP BY c ORDER BY m LIMIT 2", // NaN aggregate keys hit the generic guard
		"SELECT SUM(y * 2), MIN(y + 1) FROM t %s",
		"SELECT c, WEIGHT FROM t %s ORDER BY WEIGHT, c LIMIT 4",
	}
	wheres := []string{
		"", "WHERE y = y", "WHERE y * 2 > 1", "WHERE x % 3 = 0",
		// NaN membership: under value.Equal a NaN child matches ANY numeric
		// item, so the hash-set kernels need their NaN flags.
		"WHERE y IN (1.5, 2)",
		"WHERE y NOT IN (1.5, 2)",
		"WHERE y * 1 IN (1.5, 2)",
		"WHERE y IN (1.5, NULL)",
		"WHERE y IN ('a', TRUE)", // no numeric item: NaN must NOT match
		// A NaN list item (Inf - Inf folds to NaN) matches every numeric
		// child, float and int alike.
		"WHERE y IN (2, 1e308 * 2 - 1e308 * 2)",
		"WHERE x IN (1e308 * 2 - 1e308 * 2)",
		"WHERE x * 1 IN (7, 1e308 * 2 - 1e308 * 2)",
		"WHERE y BETWEEN 1e308 * 2 - 1e308 * 2 AND 5",
	}
	nanOverride := make([]float64, 300)
	for i := range nanOverride {
		nanOverride[i] = float64(i%5) / 2
		if i%17 == 0 {
			nanOverride[i] = math.NaN()
		}
	}
	for _, shape := range shapes {
		for _, where := range wheres {
			src := fmt.Sprintf(shape, where)
			runBoth(t, tbl, src, Options{Weighted: true})
			runBoth(t, tbl, src, Options{Weighted: true, WeightOverride: nanOverride})
		}
	}
}

// FuzzRowVsVector feeds arbitrary SQL through both executors; any accepted
// SELECT must produce identical outcomes. Seeded from the grid plus the
// parser fuzz corpus style of inputs.
func FuzzRowVsVector(f *testing.F) {
	for _, shape := range diffShapes {
		for _, where := range diffWheres[:8] {
			f.Add(fmt.Sprintf(shape, where))
		}
	}
	f.Add("SELECT OPEN c, COUNT(*) FROM t GROUP BY c")
	f.Add("SELECT x FROM t WHERE x IN (1, 'one', TRUE, NULL)")
	f.Add("SELECT MAX(c) FROM t WHERE c BETWEEN 'a' AND 'z' GROUP BY b")
	f.Add("SELECT DISTINCT c, b FROM t WHERE x % 3 = 1 ORDER BY c DESC, b LIMIT 4")
	f.Add("SELECT x, y FROM t WHERE x * 2 > y + 1 ORDER BY y DESC, x LIMIT 7")
	f.Add("SELECT SUM(x / n), MIN(x % 7) FROM t GROUP BY b ORDER BY MIN(x % 7) LIMIT 2")
	tbl := diffTable(f, 200, 7)
	f.Fuzz(func(t *testing.T, src string) {
		sel, err := sql.ParseQuery(src)
		if err != nil {
			return
		}
		rres, rerr := Run(tbl, sel, Options{Weighted: true, ForceRow: true})
		for _, s := range sweepShards {
			refRes, refErr := rres, rerr
			if s > 1 {
				refRes, refErr = Run(tbl, sel, Options{Weighted: true, Workers: 1, Shards: s})
				switch {
				case (rerr == nil) != (refErr == nil):
					t.Fatalf("%q: one path errored\n  row: %v\n  vec(%d shards): %v", src, rerr, s, refErr)
				case rerr != nil:
					if rerr.Error() != refErr.Error() {
						t.Fatalf("%q: error mismatch\n  row: %v\n  vec(%d shards): %v", src, rerr, s, refErr)
					}
				case !resultsClose(rres, refRes):
					t.Fatalf("%q: sharded answer diverged beyond float reassociation\n--- row ---\n%s\n--- vec (%d shards) ---\n%s",
						src, rres, s, refRes)
				}
			}
			for _, w := range sweepWorkers {
				vres, verr := Run(tbl, sel, Options{Weighted: true, Workers: w, Shards: s})
				switch {
				case refErr != nil && verr != nil:
					if refErr.Error() != verr.Error() {
						t.Fatalf("%q: error mismatch\n  ref: %v\n  vec(%d workers, %d shards): %v", src, refErr, w, s, verr)
					}
				case refErr != nil || verr != nil:
					t.Fatalf("%q: one path errored\n  ref: %v\n  vec(%d workers, %d shards): %v", src, refErr, w, s, verr)
				default:
					if rs, vs := refRes.String(), vres.String(); rs != vs {
						t.Fatalf("%q: output mismatch\n--- ref ---\n%s\n--- vec (%d workers, %d shards) ---\n%s", src, rs, w, s, vs)
					}
				}
			}
		}
	})
}

// TestAggErrOrderWithInterpretedFilter pins the error-ordering rule for
// vectorized aggregate inputs: when the WHERE needs the interpreted fallback
// (here: TEXT arithmetic in one OR arm) and the aggregate input can divide
// by zero, only the row path's interleaved evaluation knows which error
// surfaces first — row 0 passes WHERE via short-circuit and its aggregate
// input divides by zero, while row 1's WHERE raises the TEXT error. The
// vectorized path must fall back rather than evaluate the whole WHERE
// first.
func TestAggErrOrderWithInterpretedFilter(t *testing.T) {
	tbl := table.New("t", diffSchema)
	rows := [][]value.Value{
		// c, x, y, b, n — row 0: WHERE left arm 20/5 > 2 short-circuits TRUE,
		// SUM(x / y) hits 20/0.
		{value.Text("g"), value.Int(20), value.Float(0), value.Bool(true), value.Int(5)},
		// row 1: left arm 1/1 > 2 is FALSE, right arm c + 1 errors on TEXT.
		{value.Text("g"), value.Int(1), value.Float(1), value.Bool(true), value.Int(1)},
	}
	for _, r := range rows {
		if err := tbl.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	runBoth(t, tbl, "SELECT SUM(x / y) FROM t WHERE x / n > 2 OR c + 1 > 0", Options{Weighted: true})
	// Same shape with a kernel-compilable filter: both errors are
	// division-by-zero, so the vectorized path may serve it.
	runBoth(t, tbl, "SELECT SUM(x / y) FROM t WHERE x / n > 2 OR x > 0", Options{Weighted: true})
}

// TestInExactIntMembership pins value.Equal's exact INT-vs-INT comparison
// on the vectorized IN kernel: 2^53 and 2^53+1 collapse to one float64, so
// a float-coded membership set would confuse them.
func TestInExactIntMembership(t *testing.T) {
	tbl := table.New("t", diffSchema)
	big := int64(1) << 53
	for _, x := range []int64{big, big + 1, 7} {
		if err := tbl.Append([]value.Value{value.Text("g"), value.Int(x), value.Float(0), value.Bool(true), value.Null()}); err != nil {
			t.Fatal(err)
		}
	}
	for _, src := range []string{
		fmt.Sprintf("SELECT COUNT(*) FROM t WHERE x IN (%d)", big+1),
		fmt.Sprintf("SELECT COUNT(*) FROM t WHERE x IN (%d, 7)", big),
		fmt.Sprintf("SELECT COUNT(*) FROM t WHERE x NOT IN (%d)", big+1),
		fmt.Sprintf("SELECT COUNT(*) FROM t WHERE x IN (%d.0)", 8),
	} {
		runBoth(t, tbl, src, Options{Weighted: true})
	}
}

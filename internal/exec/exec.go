// Package exec evaluates SELECT statements over weighted tables. It is the
// shared physical layer for all three visibilities: CLOSED runs over
// user-initialized weights, SEMI-OPEN over mechanism/IPF weights, and OPEN
// over generated samples — the operators are identical, only the weights and
// the backing rows differ.
//
// Weighted aggregate rewriting (paper Sec 5.3: "we simply modify the
// aggregate to be over a weight attribute, e.g. COUNT(*) becomes
// SUM(weight)"): COUNT(*) sums weights, SUM(x) computes Σ w·x, AVG(x)
// computes Σ w·x / Σ w; MIN and MAX are weight-invariant.
package exec

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"mosaic/internal/expr"
	"mosaic/internal/schema"
	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// Result is a materialized query answer.
type Result struct {
	Columns []string
	Rows    [][]value.Value
}

// String renders the result as an aligned text table.
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := renderValue(v)
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	for i, c := range r.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	for _, row := range cells {
		b.WriteByte('\n')
		for i, s := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
	}
	return b.String()
}

func renderValue(v value.Value) string {
	if v.Kind() == value.KindText {
		return v.AsText()
	}
	if v.Kind() == value.KindFloat {
		return fmt.Sprintf("%.6g", v.AsFloat())
	}
	return v.String()
}

// Options controls execution.
type Options struct {
	// Weighted enables the weighted-aggregate rewriting. When false every
	// tuple counts exactly once regardless of stored weight.
	Weighted bool
	// WeightOverride supplies per-row weights to use instead of the table's
	// stored weights (len must equal table length). Ignored when nil.
	WeightOverride []float64
	// ForceRow forces the legacy row-at-a-time executor even when the
	// vectorized path could serve the query. The differential test harness
	// and the exec microbenchmarks use it; answers are byte-identical either
	// way, so production callers never need it.
	ForceRow bool
	// Workers is the intra-query parallelism of the columnar kernels: scans
	// partition into fixed-size morsels that a pool of this many goroutines
	// processes, with per-morsel state merged in morsel order. 0 or 1 runs
	// serial. Answers are byte-identical for any value — Workers only trades
	// wall-clock for cores, never changes results.
	Workers int
	// Shards range-partitions the scan into this many contiguous slices and
	// answers kernel-coverable aggregate queries by scatter-gather: per-shard
	// partial states merged in shard order (see shard.go). 0 or 1 disables
	// sharding and is byte-identical to the pre-sharding engine. For a fixed
	// Shards value answers are bit-identical across runs and Workers values,
	// but float aggregates may differ in low-order bits between different
	// Shards values (the shard merge reassociates addition) — Shards is part
	// of the answer contract.
	Shards int
	// ShardScan, when non-nil, is called once per executed shard partial
	// with the shard index and the number of rows its slice scanned — the
	// observability hook behind /statsz's per-shard counters. Must be safe
	// for concurrent calls.
	ShardScan func(shard, rows int)
}

// workers normalizes Options.Workers for the morsel scheduler.
func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// Run evaluates sel over t. It takes one snapshot of the table (a single
// lock acquisition) and scans it lock-free.
func Run(t *table.Table, sel *sql.Select, opts Options) (*Result, error) {
	return RunContext(context.Background(), t, sel, opts)
}

// RunContext is Run with a cancellation context: the scan checks ctx at
// kernel, sort, and row-batch boundaries and returns ctx.Err() promptly once
// it expires, leaving no partial state behind (results materialize only on
// success).
func RunContext(ctx context.Context, t *table.Table, sel *sql.Select, opts Options) (*Result, error) {
	return RunSnapshotContext(ctx, t.Snapshot(), sel, opts)
}

// RunSnapshot evaluates sel over an already-captured snapshot. Queries route
// through the vectorized columnar path when every operator is covered by a
// kernel, and fall back to the row-at-a-time interpreter otherwise; the two
// paths produce byte-identical results.
func RunSnapshot(snap *table.Snapshot, sel *sql.Select, opts Options) (*Result, error) {
	return RunSnapshotContext(context.Background(), snap, sel, opts)
}

// RunSnapshotContext is RunSnapshot with a cancellation context.
func RunSnapshotContext(ctx context.Context, snap *table.Snapshot, sel *sql.Select, opts Options) (*Result, error) {
	if opts.WeightOverride != nil && len(opts.WeightOverride) != snap.Len() {
		return nil, fmt.Errorf("exec: weight override has %d entries for %d rows", len(opts.WeightOverride), snap.Len())
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	sel = foldSelect(sel)
	if sel.HasAggregates() || len(sel.GroupBy) > 0 {
		if !opts.ForceRow && opts.Shards > 1 {
			if res, handled, err := runAggregateSharded(ctx, snap, sel, opts); handled {
				return res, err
			}
		}
		if !opts.ForceRow {
			if res, handled, err := runAggregateVector(ctx, snap, sel, opts); handled {
				return res, err
			}
		}
		return runAggregate(ctx, snap, sel, opts)
	}
	if !opts.ForceRow {
		if res, handled, err := runProjectionVector(ctx, snap, sel, opts); handled {
			return res, err
		}
	}
	return runProjection(ctx, snap, sel, opts)
}

// cancelCheckRows is how many rows a tight scan loop processes between
// context checks: frequent enough that cancellation lands within microseconds
// on any realistic table, rare enough that the check never shows in profiles.
const cancelCheckRows = 8192

// checkCtx returns the context's error, if any. A nil context never cancels.
func checkCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// foldSelect constant-folds every evaluable expression of sel once per
// query — WHERE, HAVING, ORDER BY keys, and select items — so both executor
// paths evaluate pre-folded trees. Folding never changes semantics
// (expr.Fold leaves erroring constants and short-circuit behavior intact)
// and never changes output column names: an item whose expression folds gets
// its original rendering pinned as an alias first. sel is not mutated; the
// original is returned unchanged when nothing folds.
func foldSelect(sel *sql.Select) *sql.Select {
	out := *sel
	changed := false
	if sel.Where != nil {
		if f := expr.Fold(sel.Where); f != sel.Where {
			out.Where = f
			changed = true
		}
	}
	if sel.Having != nil {
		if f := expr.Fold(sel.Having); f != sel.Having {
			out.Having = f
			changed = true
		}
	}
	orderCopied := false
	for i, o := range sel.OrderBy {
		if f := expr.Fold(o.Expr); f != o.Expr {
			if !orderCopied {
				out.OrderBy = append([]sql.OrderItem(nil), sel.OrderBy...)
				orderCopied = true
			}
			out.OrderBy[i].Expr = f
			changed = true
		}
	}
	itemsCopied := false
	for i, it := range sel.Items {
		if it.Expr == nil {
			continue
		}
		f := expr.Fold(it.Expr)
		if f == it.Expr {
			continue
		}
		if !itemsCopied {
			out.Items = append([]sql.SelectItem(nil), sel.Items...)
			itemsCopied = true
		}
		if out.Items[i].Alias == "" {
			out.Items[i].Alias = it.Name()
		}
		out.Items[i].Expr = f
		changed = true
	}
	if !changed {
		return sel
	}
	return &out
}

// bindingSchema exposes WEIGHT as a pseudo-column so predicates and
// projections can reference it.
type rowEnv struct {
	sc   *schema.Schema
	wIdx int // index of injected WEIGHT column, -1 when the schema has one
}

func makeEnv(sc *schema.Schema) (*rowEnv, *schema.Schema) {
	if _, ok := sc.Index("WEIGHT"); ok {
		return &rowEnv{sc: sc, wIdx: -1}, sc
	}
	attrs := append(sc.Attributes(), schema.Attribute{Name: "WEIGHT", Kind: value.KindFloat})
	ext, err := schema.New(attrs...)
	if err != nil {
		// A schema that already validated cannot fail here except via the
		// WEIGHT duplicate, which the branch above handles.
		return &rowEnv{sc: sc, wIdx: -1}, sc
	}
	return &rowEnv{sc: ext, wIdx: sc.Len()}, ext
}

func (e *rowEnv) bind(row []value.Value, w float64) *expr.Binding {
	if e.wIdx < 0 {
		return &expr.Binding{Schema: e.sc, Row: row}
	}
	ext := make([]value.Value, len(row)+1)
	copy(ext, row)
	ext[e.wIdx] = value.Float(w)
	return &expr.Binding{Schema: e.sc, Row: ext}
}

// projectionColumns resolves the output column names of a projection.
func projectionColumns(snap *table.Snapshot, sel *sql.Select) []string {
	var cols []string
	for _, it := range sel.Items {
		if it.Star {
			cols = append(cols, snap.Schema().Names()...)
		} else {
			cols = append(cols, it.Name())
		}
	}
	return cols
}

// projectRow evaluates the select items over one bound row.
func projectRow(sel *sql.Select, row []value.Value, b *expr.Binding) ([]value.Value, error) {
	var out []value.Value
	for _, it := range sel.Items {
		if it.Star {
			out = append(out, row...)
			continue
		}
		v, err := it.Expr.Eval(b)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func runProjection(ctx context.Context, snap *table.Snapshot, sel *sql.Select, opts Options) (*Result, error) {
	env, _ := makeEnv(snap.Schema())
	res := &Result{Columns: projectionColumns(snap, sel)}
	n := snap.Len()
	for i := 0; i < n; i++ {
		if i%cancelCheckRows == 0 {
			if err := checkCtx(ctx); err != nil {
				return nil, err
			}
		}
		row := snap.Row(i)
		w := snap.Weight(i)
		if opts.WeightOverride != nil {
			w = opts.WeightOverride[i]
		}
		b := env.bind(row, w)
		if sel.Where != nil {
			ok, err := expr.Truthy(sel.Where, b)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out, err := projectRow(sel, row, b)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, out)
	}
	if sel.Distinct {
		res.Rows = dedupRows(res.Rows)
	}
	if err := orderAndLimit(ctx, res, sel, snap.Schema()); err != nil {
		return nil, err
	}
	return res, nil
}

// dedupRows keeps the first occurrence of each distinct row (SQL DISTINCT),
// preserving input order.
func dedupRows(rows [][]value.Value) [][]value.Value {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	for _, row := range rows {
		var kb strings.Builder
		for _, v := range row {
			kb.WriteString(v.HashKey())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, row)
	}
	return out
}

// agg is the row interpreter's driver of one aggregate: it evaluates the
// input expression per row and folds the result into the shared partial
// state (the accumulation semantics live in AggState, not here).
type agg struct {
	kind sql.AggKind
	star bool
	e    expr.Expr
	st   AggState
}

func (a *agg) add(b *expr.Binding, w float64, weighted bool) error {
	if !weighted {
		w = 1
	}
	if a.kind == sql.AggCount && a.star {
		a.st.AccumulateStar(w)
		return nil
	}
	v, err := a.e.Eval(b)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if err := a.st.Accumulate(a.kind, v, w); err != nil {
		return fmt.Errorf("exec: %s over non-numeric value %s", a.kind, v)
	}
	return nil
}

func (a *agg) result() value.Value {
	return a.st.Finalize(a.kind)
}

type group struct {
	keys []value.Value
	aggs []*agg
}

// resolveGroupKeys maps GROUP BY names to schema positions and validates the
// plain (non-aggregate) select items, with the error messages both executor
// paths share.
func resolveGroupKeys(snap *table.Snapshot, sel *sql.Select) ([]int, error) {
	sc := snap.Schema()
	keyIdx := make([]int, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		j, ok := sc.Index(g)
		if !ok {
			return nil, fmt.Errorf("exec: GROUP BY column %q not in %s", g, snap.Name())
		}
		keyIdx[i] = j
	}
	isGroupKey := func(name string) bool {
		for _, g := range sel.GroupBy {
			if strings.EqualFold(g, name) {
				return true
			}
		}
		return false
	}
	for _, it := range sel.Items {
		if it.Agg != sql.AggNone {
			continue
		}
		if it.Star {
			return nil, fmt.Errorf("exec: * is not allowed with GROUP BY or aggregates")
		}
		col, ok := it.Expr.(*expr.Column)
		if !ok || !isGroupKey(col.Name) {
			return nil, fmt.Errorf("exec: select item %q must be a GROUP BY column or an aggregate", it.Name())
		}
	}
	return keyIdx, nil
}

// itemKeyPositions precomputes, for every select item, the GROUP BY position
// its key value comes from (-1 for aggregates). It mirrors the first-match
// EqualFold scan the output loop historically did per group.
func itemKeyPositions(sel *sql.Select) []int {
	out := make([]int, len(sel.Items))
	for ii, it := range sel.Items {
		out[ii] = -1
		if it.Agg != sql.AggNone {
			continue
		}
		col := it.Expr.(*expr.Column)
		for i, gname := range sel.GroupBy {
			if strings.EqualFold(gname, col.Name) {
				out[ii] = i
				break
			}
		}
		if out[ii] < 0 {
			out[ii] = 0
		}
	}
	return out
}

func runAggregate(ctx context.Context, snap *table.Snapshot, sel *sql.Select, opts Options) (*Result, error) {
	sc := snap.Schema()
	env, _ := makeEnv(sc)

	keyIdx, err := resolveGroupKeys(snap, sel)
	if err != nil {
		return nil, err
	}

	newAggs := func() []*agg {
		out := make([]*agg, 0, len(sel.Items))
		for _, it := range sel.Items {
			if it.Agg == sql.AggNone {
				continue
			}
			out = append(out, &agg{kind: it.Agg, star: it.Star, e: it.Expr})
		}
		return out
	}

	groups := map[string]*group{}
	var order []string
	var kb strings.Builder
	n := snap.Len()
	for i := 0; i < n; i++ {
		if i%cancelCheckRows == 0 {
			if err := checkCtx(ctx); err != nil {
				return nil, err
			}
		}
		row := snap.Row(i)
		w := snap.Weight(i)
		if opts.WeightOverride != nil {
			w = opts.WeightOverride[i]
		}
		b := env.bind(row, w)
		if sel.Where != nil {
			ok, err := expr.Truthy(sel.Where, b)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		kb.Reset()
		for _, j := range keyIdx {
			kb.WriteString(row[j].HashKey())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		g, ok := groups[k]
		if !ok {
			// Key values materialize only on first sight of the group; rows
			// that land in an existing group allocate nothing for keys.
			keys := make([]value.Value, len(keyIdx))
			for ki, j := range keyIdx {
				keys[ki] = row[j]
			}
			g = &group{keys: keys, aggs: newAggs()}
			groups[k] = g
			order = append(order, k)
		}
		for _, a := range g.aggs {
			if err := a.add(b, w, opts.Weighted); err != nil {
				return nil, err
			}
		}
	}

	// Global aggregate with no rows still yields one row of empty aggregates.
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{aggs: newAggs()}
		order = append(order, "")
	}

	res := &Result{}
	for _, it := range sel.Items {
		res.Columns = append(res.Columns, it.Name())
	}
	// Output schema for HAVING / ORDER BY references output columns.
	outSchema := outputSchema(res.Columns)
	keyPos := itemKeyPositions(sel)

	for _, k := range order {
		g := groups[k]
		row := make([]value.Value, 0, len(sel.Items))
		ai := 0
		for ii, it := range sel.Items {
			if it.Agg == sql.AggNone {
				row = append(row, g.keys[keyPos[ii]])
			} else {
				row = append(row, g.aggs[ai].result())
				ai++
			}
		}
		if sel.Having != nil {
			ok, err := expr.Truthy(sel.Having, &expr.Binding{Schema: outSchema, Row: row})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if err := orderAndLimit(ctx, res, sel, outSchema); err != nil {
		return nil, err
	}
	return res, nil
}

// outputSchema builds the name-resolution schema over a result's output
// columns for HAVING/ORDER BY evaluation. Kinds are irrelevant — column
// evaluation looks up by name and returns the stored row value — so every
// attribute is declared FLOAT. Duplicate output names (e.g. two COUNT(*))
// fall back to positional _colN names: by-name resolution is then
// unavailable but execution still succeeds.
func outputSchema(cols []string) *schema.Schema {
	attrs := make([]schema.Attribute, len(cols))
	for i, c := range cols {
		attrs[i] = schema.Attribute{Name: c, Kind: value.KindFloat}
	}
	sc, err := schema.New(attrs...)
	if err != nil {
		for i := range attrs {
			attrs[i].Name = fmt.Sprintf("_col%d", i)
		}
		sc = schema.MustNew(attrs...)
	}
	return sc
}

// ApplyPostAggregation applies the post-aggregation clauses — HAVING, ORDER
// BY, LIMIT — to an already-materialized result, resolving names against the
// result's output columns. The OPEN path combines per-replicate answers
// first and only then applies these clauses: running them per replicate
// would drop groups before the intersect-and-average protocol sees them.
//
// Sorting obeys the engine-wide tie-break contract (see orderAndLimit): rows
// with equal ORDER BY keys keep their pre-sort order, so OPEN answers sort
// exactly like single-engine answers over the same combined rows.
func ApplyPostAggregation(ctx context.Context, res *Result, sel *sql.Select) error {
	if sel.Having != nil {
		outSchema := outputSchema(res.Columns)
		kept := res.Rows[:0:0]
		for _, row := range res.Rows {
			ok, err := expr.Truthy(sel.Having, &expr.Binding{Schema: outSchema, Row: row})
			if err != nil {
				return err
			}
			if ok {
				kept = append(kept, row)
			}
		}
		res.Rows = kept
	}
	return orderAndLimit(ctx, res, sel, nil)
}

// orderAndLimit sorts and truncates a materialized result.
//
// Tie-break contract: the sort is STABLE. Rows whose ORDER BY keys all
// compare equal under value.Compare keep their relative pre-sort order —
// scan order for projections, first-occurrence order after DISTINCT, group
// first-appearance order for aggregates, replicate-0 group order for OPEN
// combines. Every sort in the engine (this one, the columnar permutation
// sort, and the bounded top-K heap) implements this same contract, which is
// what makes the executors byte-identical and ORDER BY ... LIMIT k equal to
// the k-prefix of the unlimited query.
func orderAndLimit(ctx context.Context, res *Result, sel *sql.Select, sc *schema.Schema) error {
	if len(sel.OrderBy) > 0 {
		// Sort boundary: the comparator itself is not interruptible, so the
		// check lands before the O(n log n) work starts.
		if err := checkCtx(ctx); err != nil {
			return err
		}
		outSchema := outputSchema(res.Columns)
		// Bounded-heap top-K: selecting k of n beats sorting n when k is
		// small. topKRows refuses (and the lazy stable sort below runs)
		// whenever its answer could differ: inextractable keys or NaNs.
		if sel.Limit >= 0 && sel.Limit < len(res.Rows) {
			if topKRows(res, sel, sc, outSchema) {
				return nil
			}
		}
		var sortErr error
		sort.SliceStable(res.Rows, func(i, j int) bool {
			for _, o := range sel.OrderBy {
				vi, vj, err := orderKey(o.Expr, res, sc, outSchema, i, j)
				if err != nil {
					sortErr = err
					return false
				}
				c := value.Compare(vi, vj)
				if c == 0 {
					continue
				}
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return sortErr
		}
	}
	if sel.Limit >= 0 && len(res.Rows) > sel.Limit {
		res.Rows = res.Rows[:sel.Limit]
	}
	return nil
}

// orderKey evaluates an ORDER BY expression against output row i and j,
// trying output-column names first.
func orderKey(e expr.Expr, res *Result, in, out *schema.Schema, i, j int) (value.Value, value.Value, error) {
	if col, ok := e.(*expr.Column); ok {
		for ci, name := range res.Columns {
			if strings.EqualFold(name, col.Name) {
				return res.Rows[i][ci], res.Rows[j][ci], nil
			}
		}
	}
	if out != nil {
		vi, erri := e.Eval(&expr.Binding{Schema: out, Row: res.Rows[i]})
		vj, errj := e.Eval(&expr.Binding{Schema: out, Row: res.Rows[j]})
		if erri == nil && errj == nil {
			return vi, vj, nil
		}
	}
	return value.Null(), value.Null(), fmt.Errorf("exec: cannot resolve ORDER BY expression %s against output columns", e)
}

// Materialize runs a projection-style select and stores the answer in a new
// table with the given name. Aggregate selects are materialized with FLOAT
// columns for aggregates.
func Materialize(t *table.Table, sel *sql.Select, opts Options, name string) (*table.Table, error) {
	res, err := Run(t, sel, opts)
	if err != nil {
		return nil, err
	}
	attrs := make([]schema.Attribute, len(res.Columns))
	for i, c := range res.Columns {
		k := value.KindFloat
		if j, ok := t.Schema().Index(c); ok {
			k = t.Schema().At(j).Kind
		} else if len(res.Rows) > 0 {
			switch res.Rows[0][i].Kind() {
			case value.KindNull:
				k = value.KindFloat
			default:
				k = res.Rows[0][i].Kind()
			}
		}
		attrs[i] = schema.Attribute{Name: c, Kind: k}
	}
	sc, err := schema.New(attrs...)
	if err != nil {
		return nil, err
	}
	out := table.New(name, sc)
	for _, r := range res.Rows {
		if err := out.Append(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SumWeights returns Σ w over rows matching the predicate (nil matches all).
func SumWeights(t *table.Table, where expr.Expr) (float64, error) {
	snap := t.Snapshot()
	var total float64
	n := snap.Len()
	wts := snap.Weights()
	if k := compileFilter(where, snap, wts, 1); where == nil || k != nil {
		// Columnar path: one kernel pass, then a tight sum over survivors.
		if k == nil {
			for _, w := range wts {
				total += w
			}
		} else {
			tern := make([]int8, n)
			k.eval(tern, 0, n)
			for i, t := range tern {
				if t == ternErr {
					return 0, errDivisionByZero
				}
				if t == ternTrue {
					total += wts[i]
				}
			}
		}
	} else {
		env, _ := makeEnv(snap.Schema())
		for i := 0; i < n; i++ {
			w := wts[i]
			ok, err := expr.Truthy(where, env.bind(snap.Row(i), w))
			if err != nil {
				return 0, err
			}
			if !ok {
				continue
			}
			total += w
		}
	}
	if math.IsNaN(total) {
		return 0, fmt.Errorf("exec: NaN weight sum in %s", t.Name())
	}
	return total, nil
}

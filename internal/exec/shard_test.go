package exec

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mosaic/internal/sql"
	"mosaic/internal/value"
)

// TestShardBounds pins the partitioning function: contiguous, 64-row-aligned
// (except the final bound), covering exactly [0, n), with empty trailing
// shards when n is small.
func TestShardBounds(t *testing.T) {
	for _, tc := range []struct {
		n, s int
		want [][2]int
	}{
		{0, 2, [][2]int{{0, 0}, {0, 0}}},
		{1, 2, [][2]int{{0, 1}, {1, 1}}},
		{1, 4, [][2]int{{0, 1}, {1, 1}, {1, 1}, {1, 1}}},
		{64, 2, [][2]int{{0, 64}, {64, 64}}},
		{65, 2, [][2]int{{0, 64}, {64, 65}}},
		{128, 2, [][2]int{{0, 64}, {64, 128}}},
		{130, 4, [][2]int{{0, 64}, {64, 128}, {128, 130}, {130, 130}}},
		{500, 4, [][2]int{{0, 128}, {128, 256}, {256, 384}, {384, 500}}},
		{1000, 3, [][2]int{{0, 384}, {384, 768}, {768, 1000}}},
	} {
		got := shardBounds(tc.n, tc.s)
		if len(got) != len(tc.want) {
			t.Fatalf("shardBounds(%d, %d) = %v, want %v", tc.n, tc.s, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("shardBounds(%d, %d) = %v, want %v", tc.n, tc.s, got, tc.want)
			}
		}
	}
	// Invariants across a sweep: full coverage, contiguity, alignment.
	for n := 0; n <= 700; n += 37 {
		for s := 1; s <= 9; s++ {
			b := shardBounds(n, s)
			if len(b) != s {
				t.Fatalf("shardBounds(%d, %d): %d bounds", n, s, len(b))
			}
			prev := 0
			for i, lh := range b {
				if lh[0] != prev || lh[1] < lh[0] {
					t.Fatalf("shardBounds(%d, %d): shard %d = %v not contiguous from %d", n, s, i, lh, prev)
				}
				if lh[0] < n && lh[0]%64 != 0 {
					t.Fatalf("shardBounds(%d, %d): shard %d starts at unaligned %d", n, s, i, lh[0])
				}
				prev = lh[1]
			}
			if prev != n {
				t.Fatalf("shardBounds(%d, %d): covers [0, %d), want [0, %d)", n, s, prev, n)
			}
		}
	}
}

// TestSliceRangeView pins the zero-copy slicing the sharded path depends on:
// every row and weight of the slice equals the corresponding row of the full
// snapshot, including NULLs in every column and across 64-row word
// boundaries.
func TestSliceRangeView(t *testing.T) {
	tbl := diffTable(t, 200, 13)
	snap := tbl.Snapshot()
	for _, lh := range [][2]int{{0, 200}, {0, 64}, {64, 128}, {128, 200}, {64, 200}, {192, 200}, {128, 128}} {
		sub := snap.SliceRange(lh[0], lh[1])
		if sub.Len() != lh[1]-lh[0] {
			t.Fatalf("SliceRange%v: len %d", lh, sub.Len())
		}
		for i := 0; i < sub.Len(); i++ {
			gi := lh[0] + i
			if sub.Weight(i) != snap.Weight(gi) {
				t.Fatalf("SliceRange%v row %d: weight %v != %v", lh, i, sub.Weight(i), snap.Weight(gi))
			}
			want, got := snap.Row(gi), sub.Row(i)
			for j := range want {
				if want[j].Kind() != got[j].Kind() || !value.Equal(want[j], got[j]) {
					t.Fatalf("SliceRange%v row %d col %d: %v != %v", lh, i, j, got[j], want[j])
				}
			}
		}
	}
}

// shardStressQueries are aggregate shapes that cannot raise per-row errors,
// so a mid-mutation scan must always answer cleanly.
var shardStressQueries = []string{
	"SELECT COUNT(*), SUM(x), AVG(y), MIN(x), MAX(y) FROM t",
	"SELECT c, COUNT(*), AVG(y) FROM t GROUP BY c",
	"SELECT c, b, COUNT(*) AS cnt, SUM(WEIGHT) FROM t WHERE x > 0 GROUP BY c, b ORDER BY cnt DESC LIMIT 5",
	"SELECT n, SUM(y) FROM t GROUP BY n HAVING n IS NOT NULL",
}

// TestShardConcurrentMutation races sharded scatter-gather queries against
// concurrent AppendWeighted and Truncate on the same table. Snapshot
// isolation makes each query see one frozen prefix; the test (run under
// -race in CI as its own step) asserts no data race and no spurious error —
// answer values are unpinnable mid-mutation, so correctness of the scan
// machinery, not the numbers, is the assertion.
func TestShardConcurrentMutation(t *testing.T) {
	tbl := diffTable(t, 300, 21)
	sels := make([]*sql.Select, len(shardStressQueries))
	for i, q := range shardStressQueries {
		sel, err := sql.ParseQuery(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		sels[i] = sel
	}
	done := make(chan struct{})
	var mutator, queriers sync.WaitGroup
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%500 == 499 {
				tbl.Truncate()
				continue
			}
			row := []value.Value{
				value.Text(fmt.Sprintf("g%d", rng.Intn(6))),
				value.Int(int64(rng.Intn(1000) - 500)),
				value.Float(rng.Float64() * 100),
				value.Bool(rng.Intn(2) == 0),
				value.Int(int64(rng.Intn(4))),
			}
			if err := tbl.AppendWeighted(row, rng.Float64()*2); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	for g := 0; g < 4; g++ {
		queriers.Add(1)
		go func(g int) {
			defer queriers.Done()
			shards := []int{2, 4}[g%2]
			for i := 0; i < 60; i++ {
				sel := sels[(g+i)%len(sels)]
				if _, err := Run(tbl, sel, Options{Weighted: true, Workers: 2, Shards: shards}); err != nil {
					t.Errorf("query %d (goroutine %d, %d shards): %v", i, g, shards, err)
					return
				}
			}
		}(g)
	}
	queriers.Wait()
	close(done)
	mutator.Wait()
}

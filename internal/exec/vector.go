// Vectorized query execution over columnar snapshots.
//
// The WHERE clause compiles once into a tree of selection kernels that
// evaluate SQL's three-valued logic over typed column vectors (one int8
// truth value per row: false/true/null). Group-by keys densify into small
// integer ids built from dictionary codes and NaN-canonical float bits —
// never from per-row strings — and aggregates run as tight loops over typed
// slices with the weight vector.
//
// Determinism contract: the vectorized path is byte-identical to the row
// interpreter on every query it accepts. Group output order is
// first-appearance order (dense ids are assigned in scan order), float
// accumulation happens in row order with the same operation sequence the
// row path uses, and value identity for grouping matches value.HashKey
// exactly (see value.ScalarBits). Queries using operators the kernels do
// not cover fall back: unsupported WHERE shapes drop to the interpreted
// expression tree (per-row) while grouping and aggregation stay columnar,
// and unsupported aggregate shapes drop to the row path entirely.
package exec

import (
	"context"
	"math"
	"strings"

	"mosaic/internal/expr"
	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// Ternary truth encoding of the filter kernels, extended with a fourth
// "error" state for the arithmetic kernels. Rows marked ternErr are rows
// where the interpreter would raise a runtime error mid-scan; the scan
// surfaces that error (see selectRows) instead of producing a result.
const (
	ternFalse int8 = 0
	ternTrue  int8 = 1
	ternNull  int8 = 2
	ternErr   int8 = 3
)

// kernel computes a ternary truth vector over a row range of the snapshot.
// eval fills dst with the outcomes of rows [lo, hi), where dst[i] is row
// lo+i (len(dst) == hi-lo); the morsel scheduler hands each worker its own
// sub-slice of the full truth vector, and a serial caller passes the whole
// vector with lo=0. Row outcomes are independent, so evaluating by morsel is
// trivially byte-identical to one full-range pass.
//
// Kernels never return Go errors: expression shapes whose errors are decided
// by static column kinds (text truthiness, arithmetic on BOOL, unknown
// columns) are rejected at compile time and handled by the interpreted
// fallback, while the single dynamic error the kernel set can raise —
// division by zero, the only runtime error arithmetic over numeric columns
// admits — is tracked per row as ternErr and propagated through the logic
// kernels with the interpreter's exact short-circuit rules (a FALSE left arm
// of an AND suppresses errors in the right arm, etc.).
type kernel interface {
	eval(dst []int8, lo, hi int)
}

// colRef is a resolved column operand: either a schema column or the WEIGHT
// pseudo-column (the effective per-row weight vector, which is never NULL).
type colRef struct {
	kind     value.Kind
	col      *table.Column // nil for WEIGHT
	isWeight bool
	weight   []float64 // the effective weight vector when isWeight (may be nil for an empty table)
}

func (r *colRef) nulls() *table.Column { return r.col }

// class buckets a kind the way value.Compare ranks it.
func classOf(k value.Kind) value.Class {
	switch k {
	case value.KindBool:
		return value.ClassBool
	case value.KindInt, value.KindFloat:
		return value.ClassNum
	case value.KindText:
		return value.ClassText
	default:
		return value.ClassNull
	}
}

type kernelCompiler struct {
	snap    *table.Snapshot
	weights []float64
	n       int
	workers int // parallelism for eager vector materialization (numArith fills)
}

// compileFilter compiles e into a selection kernel, or returns nil when any
// node falls outside the kernel set (the caller then uses the interpreted
// evaluator). e may be nil (no filter), which also returns nil. workers
// drives the arithmetic kernels' eager vector fills; it never changes the
// compiled result.
func compileFilter(e expr.Expr, snap *table.Snapshot, weights []float64, workers int) kernel {
	if e == nil {
		return nil
	}
	c := &kernelCompiler{snap: snap, weights: weights, n: snap.Len(), workers: workers}
	return c.compile(e)
}

func (c *kernelCompiler) resolve(name string) (colRef, bool) {
	if j, ok := c.snap.Schema().Index(name); ok {
		return colRef{kind: c.snap.Schema().At(j).Kind, col: c.snap.Col(j)}, true
	}
	if strings.EqualFold(name, "WEIGHT") {
		return colRef{kind: value.KindFloat, isWeight: true, weight: c.weights}, true
	}
	return colRef{}, false
}

// ternTruth converts a constant value to its ternary truth, mirroring
// expr.Truthy's inner truth() plus NULL propagation. Text is not a boolean
// (the interpreter raises an error per row), so it is not compilable.
func ternTruth(v value.Value) (int8, bool) {
	switch v.Kind() {
	case value.KindNull:
		return ternNull, true
	case value.KindBool:
		return ternOf(v.AsBool()), true
	case value.KindInt:
		return ternOf(v.AsInt() != 0), true
	case value.KindFloat:
		return ternOf(v.AsFloat() != 0), true
	default:
		return ternFalse, false
	}
}

func ternOf(b bool) int8 {
	if b {
		return ternTrue
	}
	return ternFalse
}

// foldConst evaluates a column-free subexpression to a constant. Expressions
// that error (e.g. division by zero) are not foldable; the row interpreter
// then reproduces the error lazily, per scanned row, exactly as before.
func foldConst(e expr.Expr) (value.Value, bool) {
	if len(e.Columns(nil)) != 0 {
		return value.Null(), false
	}
	v, err := e.Eval(nil)
	if err != nil {
		return value.Null(), false
	}
	return v, true
}

func (c *kernelCompiler) compile(e expr.Expr) kernel {
	if v, ok := foldConst(e); ok {
		t, ok := ternTruth(v)
		if !ok {
			return nil
		}
		return &constKernel{v: t}
	}
	switch ex := e.(type) {
	case *expr.Column:
		return c.compileColTruth(ex.Name)
	case *expr.Unary:
		if ex.Neg {
			// truth(-x) == truth(x) for numeric columns; the negation cannot
			// change zero-ness and NULL propagates identically.
			if col, ok := ex.Child.(*expr.Column); ok {
				if ref, ok := c.resolve(col.Name); ok && classOf(ref.kind) == value.ClassNum {
					return c.compileColTruth(col.Name)
				}
			}
			if v := c.compileNum(ex); v != nil {
				return &truthNumKernel{v: v.full(c.n)}
			}
			return nil
		}
		child := c.compile(ex.Child)
		if child == nil {
			return nil
		}
		return &notKernel{child: child}
	case *expr.Binary:
		switch ex.Op {
		case expr.OpAnd, expr.OpOr:
			l := c.compile(ex.Left)
			if l == nil {
				return nil
			}
			r := c.compile(ex.Right)
			if r == nil {
				return nil
			}
			return &logicKernel{l: l, r: r, and: ex.Op == expr.OpAnd}
		case expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe:
			return c.compileCompare(ex.Op, ex.Left, ex.Right)
		default:
			// Arithmetic used as a boolean: WHERE x + y.
			if v := c.compileNum(ex); v != nil {
				return &truthNumKernel{v: v.full(c.n)}
			}
			return nil
		}
	case *expr.In:
		return c.compileIn(ex)
	case *expr.Between:
		return c.compileBetween(ex)
	case *expr.IsNull:
		return c.compileIsNull(ex)
	default:
		return nil
	}
}

func (c *kernelCompiler) compileColTruth(name string) kernel {
	ref, ok := c.resolve(name)
	if !ok {
		return nil
	}
	switch {
	case ref.isWeight:
		return &truthFloatKernel{xs: ref.weight}
	case ref.kind == value.KindInt:
		return &truthIntKernel{xs: ref.col.Ints, col: ref.col}
	case ref.kind == value.KindFloat:
		return &truthFloatKernel{xs: ref.col.Floats, col: ref.col}
	case ref.kind == value.KindBool:
		return &truthBoolKernel{xs: ref.col.Bools, col: ref.col}
	default:
		return nil // truth of TEXT errors per row in the interpreter
	}
}

// cmpLUT maps a comparison result c ∈ {-1,0,1} (index c+1) to the ternary
// outcome of the operator.
func cmpLUT(op expr.BinOp) [3]int8 {
	switch op {
	case expr.OpEq:
		return [3]int8{0, 1, 0}
	case expr.OpNe:
		return [3]int8{1, 0, 1}
	case expr.OpLt:
		return [3]int8{1, 0, 0}
	case expr.OpLe:
		return [3]int8{1, 1, 0}
	case expr.OpGt:
		return [3]int8{0, 0, 1}
	default: // OpGe
		return [3]int8{0, 1, 1}
	}
}

func mirrorOp(op expr.BinOp) expr.BinOp {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	default:
		return op
	}
}

func (c *kernelCompiler) compileCompare(op expr.BinOp, left, right expr.Expr) kernel {
	lcol, lIsCol := left.(*expr.Column)
	rcol, rIsCol := right.(*expr.Column)
	switch {
	case lIsCol && rIsCol:
		lr, lok := c.resolve(lcol.Name)
		rr, rok := c.resolve(rcol.Name)
		if lok && rok {
			return c.compileColCol(op, lr, rr)
		}
		return nil // unknown column: lazy per-row error on the fallback
	case lIsCol:
		if lr, ok := c.resolve(lcol.Name); ok {
			if v, ok := foldConst(right); ok {
				return c.compileColLit(op, lr, v)
			}
		}
	case rIsCol:
		if rr, ok := c.resolve(rcol.Name); ok {
			if v, ok := foldConst(left); ok {
				return c.compileColLit(mirrorOp(op), rr, v)
			}
		}
	}
	// At least one side is a computed expression: numeric vector compare.
	l := c.compileNum(left)
	if l == nil {
		return nil
	}
	r := c.compileNum(right)
	if r == nil {
		return nil
	}
	return newCmpNumNum(l, r, cmpLUT(op))
}

func (c *kernelCompiler) compileColLit(op expr.BinOp, ref colRef, lit value.Value) kernel {
	if lit.IsNull() {
		// Comparison with NULL is NULL for every row, NULL rows included.
		return &constKernel{v: ternNull}
	}
	lut := cmpLUT(op)
	refCls, litCls := classOf(ref.kind), classOf(lit.Kind())
	if refCls != litCls {
		// Cross-class comparison is decided by the kind rank alone
		// (value.Compare): constant for every non-null row.
		cc := -1
		if refCls > litCls {
			cc = 1
		}
		return &constNullableKernel{v: lut[cc+1], col: ref.nulls()}
	}
	switch refCls {
	case value.ClassNum:
		if ref.isWeight {
			lf, _ := lit.Float64()
			return &cmpFloatLitKernel{xs: ref.weight, lit: lf, lut: lut}
		}
		if ref.kind == value.KindInt && lit.Kind() == value.KindInt {
			// INT vs INT compares exactly (value.Compare avoids float
			// rounding on large ints).
			return &cmpIntLitKernel{xs: ref.col.Ints, lit: lit.AsInt(), lut: lut, col: ref.col}
		}
		lf, _ := lit.Float64()
		if ref.kind == value.KindInt {
			return &cmpIntFloatLitKernel{xs: ref.col.Ints, lit: lf, lut: lut, col: ref.col}
		}
		return &cmpFloatLitKernel{xs: ref.col.Floats, lit: lf, lut: lut, col: ref.col}
	case value.ClassBool:
		return &cmpBoolLitKernel{xs: ref.col.Bools, lit: lit.AsBool(), lut: lut, col: ref.col}
	case value.ClassText:
		ls := lit.AsText()
		if op == expr.OpEq || op == expr.OpNe {
			code, found := c.snap.DictLookup(ls)
			return &cmpTextEqLitKernel{xs: ref.col.Codes, code: code, found: found, eq: op == expr.OpEq, col: ref.col}
		}
		// Ordering against a text literal: precompute the outcome per
		// dictionary code once, then the scan is a table lookup per row.
		strs := c.snap.DictStrings()
		tbl := make([]int8, len(strs))
		for i, s := range strs {
			tbl[i] = lut[sign(strings.Compare(s, ls))+1]
		}
		return &cmpTextTableKernel{xs: ref.col.Codes, tbl: tbl, col: ref.col}
	default:
		return nil
	}
}

func (c *kernelCompiler) compileColCol(op expr.BinOp, a, b colRef) kernel {
	lut := cmpLUT(op)
	ca, cb := classOf(a.kind), classOf(b.kind)
	if ca != cb {
		cc := -1
		if ca > cb {
			cc = 1
		}
		return &constNullable2Kernel{v: lut[cc+1], a: a.nulls(), b: b.nulls()}
	}
	switch ca {
	case value.ClassNum:
		if a.kind == value.KindInt && b.kind == value.KindInt {
			return &cmpIntIntColKernel{a: a.col.Ints, b: b.col.Ints, lut: lut, ca: a.col, cb: b.col}
		}
		return &cmpFloatFloatColKernel{a: numFloats(a, c.n), b: numFloats(b, c.n), lut: lut, ca: a.nulls(), cb: b.nulls()}
	case value.ClassBool:
		return &cmpBoolBoolColKernel{a: a.col.Bools, b: b.col.Bools, lut: lut, ca: a.col, cb: b.col}
	case value.ClassText:
		if op == expr.OpEq || op == expr.OpNe {
			return &cmpTextTextEqColKernel{a: a.col.Codes, b: b.col.Codes, eq: op == expr.OpEq, ca: a.col, cb: b.col}
		}
		return &cmpTextTextOrdColKernel{a: a.col.Codes, b: b.col.Codes, strs: c.snap.DictStrings(), lut: lut, ca: a.col, cb: b.col}
	default:
		return nil
	}
}

// numFloats materializes a numeric operand as a float64 slice (the weight
// vector, the float column, or a converted int column).
func numFloats(r colRef, n int) []float64 {
	if r.isWeight {
		return r.weight
	}
	if r.kind == value.KindFloat {
		return r.col.Floats
	}
	out := make([]float64, n)
	for i, x := range r.col.Ints {
		out[i] = float64(x)
	}
	return out
}

func (c *kernelCompiler) compileIn(ex *expr.In) kernel {
	vals := make([]value.Value, 0, len(ex.List))
	sawNull := false
	for _, item := range ex.List {
		v, ok := foldConst(item)
		if !ok {
			return nil
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		vals = append(vals, v)
	}
	col, ok := ex.Child.(*expr.Column)
	if !ok {
		// Computed membership test: (x*2) IN (4, 8).
		v := c.compileNum(ex.Child)
		if v == nil {
			return nil
		}
		v = v.full(c.n) // inNumKernel indexes per row
		k := &inNumKernel{v: v, sawNull: sawNull, negate: ex.Negate, floats: map[uint64]bool{}}
		if v.isInt {
			k.ints = map[int64]bool{}
			for _, item := range vals {
				switch item.Kind() {
				case value.KindInt:
					k.ints[item.AsInt()] = true
				case value.KindFloat:
					k.floats[eqBits(item.AsFloat())] = true
				}
			}
		} else {
			for _, item := range vals {
				if classOf(item.Kind()) == value.ClassNum {
					f, _ := item.Float64()
					k.floats[eqBits(f)] = true
				}
			}
		}
		k.anyNum, k.nanItem = numListTraits(vals)
		return k
	}
	ref, ok := c.resolve(col.Name)
	if !ok {
		return nil
	}
	switch classOf(ref.kind) {
	case value.ClassNum:
		// Other classes can never equal a numeric value (kind rank), so
		// only numeric list items enter the sets. NaN needs its own flags:
		// under value.Equal a NaN equals EVERY numeric (Compare finds
		// neither smaller), so a NaN child matches any numeric item and a
		// NaN item matches any numeric child — hash sets alone cannot say
		// that (see numListTraits).
		anyNum, nanItem := numListTraits(vals)
		if ref.kind == value.KindInt && !ref.isWeight {
			// value.Equal compares INT against INT exactly (no float64
			// rounding on large ints), so INT items get their own exact
			// set; FLOAT items compare through float64 as the row path
			// does.
			intSet := make(map[int64]bool, len(vals))
			floatSet := make(map[uint64]bool, len(vals))
			for _, v := range vals {
				switch v.Kind() {
				case value.KindInt:
					intSet[v.AsInt()] = true
				case value.KindFloat:
					floatSet[eqBits(v.AsFloat())] = true
				}
			}
			return &inIntKernel{xs: ref.col.Ints, ints: intSet, floats: floatSet, nanItem: nanItem, sawNull: sawNull, negate: ex.Negate, col: ref.col}
		}
		set := make(map[uint64]bool, len(vals))
		for _, v := range vals {
			if classOf(v.Kind()) == value.ClassNum {
				f, _ := v.Float64()
				set[eqBits(f)] = true
			}
		}
		if ref.isWeight {
			return &inFloatKernel{xs: ref.weight, set: set, anyNum: anyNum, nanItem: nanItem, sawNull: sawNull, negate: ex.Negate}
		}
		return &inFloatKernel{xs: ref.col.Floats, set: set, anyNum: anyNum, nanItem: nanItem, sawNull: sawNull, negate: ex.Negate, col: ref.col}
	case value.ClassBool:
		wantT, wantF := false, false
		for _, v := range vals {
			if v.Kind() == value.KindBool {
				if v.AsBool() {
					wantT = true
				} else {
					wantF = true
				}
			}
		}
		return &inBoolKernel{xs: ref.col.Bools, wantT: wantT, wantF: wantF, sawNull: sawNull, negate: ex.Negate, col: ref.col}
	case value.ClassText:
		set := make(map[uint32]bool, len(vals))
		for _, v := range vals {
			if v.Kind() == value.KindText {
				if code, found := c.snap.DictLookup(v.AsText()); found {
					set[code] = true
				}
			}
		}
		return &inTextKernel{xs: ref.col.Codes, set: set, sawNull: sawNull, negate: ex.Negate, col: ref.col}
	default:
		return nil
	}
}

func (c *kernelCompiler) compileBetween(ex *expr.Between) kernel {
	lo, ok := foldConst(ex.Lo)
	if !ok {
		return nil
	}
	hi, ok := foldConst(ex.Hi)
	if !ok {
		return nil
	}
	if col, ok := ex.Child.(*expr.Column); ok {
		ref, ok := c.resolve(col.Name)
		if !ok {
			return nil
		}
		if lo.IsNull() || hi.IsNull() {
			// Any NULL bound makes every row NULL (the interpreter checks
			// the three operands together before comparing).
			return &constKernel{v: ternNull}
		}
		ge := c.compileColLit(expr.OpGe, ref, lo)
		le := c.compileColLit(expr.OpLe, ref, hi)
		if ge == nil || le == nil {
			return nil
		}
		var k kernel = &logicKernel{l: ge, r: le, and: true}
		if ex.Negate {
			k = &notKernel{child: k}
		}
		return k
	}
	// Computed child: x*2 BETWEEN 10 AND 100. The child evaluates before the
	// NULL-bound check, so its division errors still surface. The child
	// materializes (it is read by two comparisons and its error bitmap by
	// the NULL-bound shortcut); the bounds stay scalar.
	v := c.compileNum(ex.Child)
	if v == nil {
		return nil
	}
	v = v.full(c.n)
	if lo.IsNull() || hi.IsNull() {
		return &constWithErrsKernel{v: ternNull, errs: v.errs}
	}
	lv, hv := c.numConst(lo), c.numConst(hi)
	if lv == nil || hv == nil {
		return nil // non-numeric bound on a computed child: interpreted fallback
	}
	ge := newCmpNumNum(v, lv, cmpLUT(expr.OpGe))
	le := newCmpNumNum(v, hv, cmpLUT(expr.OpLe))
	var k kernel = &logicKernel{l: ge, r: le, and: true}
	if ex.Negate {
		k = &notKernel{child: k}
	}
	return k
}

func (c *kernelCompiler) compileIsNull(ex *expr.IsNull) kernel {
	col, ok := ex.Child.(*expr.Column)
	if !ok {
		// Computed child: x + y IS NULL.
		v := c.compileNum(ex.Child)
		if v == nil {
			return nil
		}
		return &isNullNumKernel{v: v.full(c.n), negate: ex.Negate}
	}
	ref, ok := c.resolve(col.Name)
	if !ok {
		return nil
	}
	return &isNullKernel{col: ref.nulls(), negate: ex.Negate}
}

// eqBits maps a float64 onto the code space used for IN-list membership:
// value.Equal semantics, where -0 equals +0 and every NaN equals every NaN
// (value.Compare returns 0 when neither operand is smaller).
func eqBits(f float64) uint64 {
	if f == 0 {
		return math.Float64bits(0)
	}
	return value.NumBits(f)
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	default:
		return 0
	}
}

// --- kernel implementations ---

type constKernel struct{ v int8 }

func (k *constKernel) eval(dst []int8, lo, hi int) {
	for i := range dst {
		dst[i] = k.v
	}
}

// constNullableKernel is a constant outcome except on NULL rows.
type constNullableKernel struct {
	v   int8
	col *table.Column // nil: no null source
}

func (k *constNullableKernel) eval(dst []int8, lo, hi int) {
	for i := range dst {
		dst[i] = k.v
	}
	overlayNulls(dst, k.col, lo)
}

type constNullable2Kernel struct {
	v    int8
	a, b *table.Column
}

func (k *constNullable2Kernel) eval(dst []int8, lo, hi int) {
	for i := range dst {
		dst[i] = k.v
	}
	overlayNulls(dst, k.a, lo)
	overlayNulls(dst, k.b, lo)
}

// overlayNulls marks NULL rows in dst, which covers rows [lo, lo+len(dst)).
func overlayNulls(dst []int8, col *table.Column, lo int) {
	if col == nil || !col.HasNulls() {
		return
	}
	for i := range dst {
		if col.Null(lo + i) {
			dst[i] = ternNull
		}
	}
}

type truthIntKernel struct {
	xs  []int64
	col *table.Column
}

func (k *truthIntKernel) eval(dst []int8, lo, hi int) {
	for i, x := range k.xs[lo:hi] {
		dst[i] = ternOf(x != 0)
	}
	overlayNulls(dst, k.col, lo)
}

type truthFloatKernel struct {
	xs  []float64
	col *table.Column
}

func (k *truthFloatKernel) eval(dst []int8, lo, hi int) {
	for i, x := range k.xs[lo:hi] {
		dst[i] = ternOf(x != 0)
	}
	overlayNulls(dst, k.col, lo)
}

type truthBoolKernel struct {
	xs  []bool
	col *table.Column
}

func (k *truthBoolKernel) eval(dst []int8, lo, hi int) {
	for i, x := range k.xs[lo:hi] {
		dst[i] = ternOf(x)
	}
	overlayNulls(dst, k.col, lo)
}

type notKernel struct{ child kernel }

func (k *notKernel) eval(dst []int8, lo, hi int) {
	k.child.eval(dst, lo, hi)
	for i, t := range dst {
		if t == ternFalse || t == ternTrue {
			dst[i] = 1 - t
		}
	}
}

// logicKernel is three-valued AND/OR, with error rows following the
// interpreter's left-to-right short-circuit: a FALSE left arm of AND (TRUE
// for OR) short-circuits before the right arm is evaluated, so right-arm
// errors are suppressed on those rows; everywhere else an error in either
// arm aborts, left arm first.
type logicKernel struct {
	l, r kernel
	and  bool
}

func (k *logicKernel) eval(dst []int8, lo, hi int) {
	k.l.eval(dst, lo, hi)
	tmp := make([]int8, len(dst))
	k.r.eval(tmp, lo, hi)
	if k.and {
		for i, a := range dst {
			b := tmp[i]
			switch {
			case a == ternErr:
				dst[i] = ternErr
			case a == ternFalse:
				dst[i] = ternFalse
			case b == ternErr:
				dst[i] = ternErr
			case b == ternFalse:
				dst[i] = ternFalse
			case a == ternNull || b == ternNull:
				dst[i] = ternNull
			default:
				dst[i] = ternTrue
			}
		}
		return
	}
	for i, a := range dst {
		b := tmp[i]
		switch {
		case a == ternErr:
			dst[i] = ternErr
		case a == ternTrue:
			dst[i] = ternTrue
		case b == ternErr:
			dst[i] = ternErr
		case b == ternTrue:
			dst[i] = ternTrue
		case a == ternNull || b == ternNull:
			dst[i] = ternNull
		default:
			dst[i] = ternFalse
		}
	}
}

type cmpIntLitKernel struct {
	xs  []int64
	lit int64
	lut [3]int8
	col *table.Column
}

func (k *cmpIntLitKernel) eval(dst []int8, lo, hi int) {
	tl, te, tg := k.lut[0], k.lut[1], k.lut[2]
	for i, x := range k.xs[lo:hi] {
		switch {
		case x < k.lit:
			dst[i] = tl
		case x > k.lit:
			dst[i] = tg
		default:
			dst[i] = te
		}
	}
	overlayNulls(dst, k.col, lo)
}

type cmpIntFloatLitKernel struct {
	xs  []int64
	lit float64
	lut [3]int8
	col *table.Column
}

func (k *cmpIntFloatLitKernel) eval(dst []int8, lo, hi int) {
	tl, te, tg := k.lut[0], k.lut[1], k.lut[2]
	for i, x := range k.xs[lo:hi] {
		f := float64(x)
		switch {
		case f < k.lit:
			dst[i] = tl
		case f > k.lit:
			dst[i] = tg
		default:
			dst[i] = te
		}
	}
	overlayNulls(dst, k.col, lo)
}

type cmpFloatLitKernel struct {
	xs  []float64
	lit float64
	lut [3]int8
	col *table.Column
}

func (k *cmpFloatLitKernel) eval(dst []int8, lo, hi int) {
	tl, te, tg := k.lut[0], k.lut[1], k.lut[2]
	for i, x := range k.xs[lo:hi] {
		// NaN takes the eq branch, matching value.Compare's "neither
		// smaller" result of 0.
		switch {
		case x < k.lit:
			dst[i] = tl
		case x > k.lit:
			dst[i] = tg
		default:
			dst[i] = te
		}
	}
	overlayNulls(dst, k.col, lo)
}

type cmpBoolLitKernel struct {
	xs  []bool
	lit bool
	lut [3]int8
	col *table.Column
}

func (k *cmpBoolLitKernel) eval(dst []int8, lo, hi int) {
	for i, x := range k.xs[lo:hi] {
		dst[i] = k.lut[boolCmp(x, k.lit)+1]
	}
	overlayNulls(dst, k.col, lo)
}

func boolCmp(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

type cmpTextEqLitKernel struct {
	xs    []uint32
	code  uint32
	found bool
	eq    bool
	col   *table.Column
}

func (k *cmpTextEqLitKernel) eval(dst []int8, lo, hi int) {
	miss := ternOf(!k.eq) // literal absent from the dictionary: never equal
	if !k.found {
		for i := range dst {
			dst[i] = miss
		}
	} else {
		hit, other := ternOf(k.eq), ternOf(!k.eq)
		for i, c := range k.xs[lo:hi] {
			if c == k.code {
				dst[i] = hit
			} else {
				dst[i] = other
			}
		}
	}
	overlayNulls(dst, k.col, lo)
}

type cmpTextTableKernel struct {
	xs  []uint32
	tbl []int8 // outcome per dictionary code
	col *table.Column
}

func (k *cmpTextTableKernel) eval(dst []int8, lo, hi int) {
	for i, c := range k.xs[lo:hi] {
		dst[i] = k.tbl[c]
	}
	overlayNulls(dst, k.col, lo)
}

type cmpIntIntColKernel struct {
	a, b   []int64
	lut    [3]int8
	ca, cb *table.Column
}

func (k *cmpIntIntColKernel) eval(dst []int8, lo, hi int) {
	tl, te, tg := k.lut[0], k.lut[1], k.lut[2]
	b := k.b[lo:hi]
	for i, x := range k.a[lo:hi] {
		y := b[i]
		switch {
		case x < y:
			dst[i] = tl
		case x > y:
			dst[i] = tg
		default:
			dst[i] = te
		}
	}
	overlayNulls(dst, k.ca, lo)
	overlayNulls(dst, k.cb, lo)
}

type cmpFloatFloatColKernel struct {
	a, b   []float64
	lut    [3]int8
	ca, cb *table.Column
}

func (k *cmpFloatFloatColKernel) eval(dst []int8, lo, hi int) {
	tl, te, tg := k.lut[0], k.lut[1], k.lut[2]
	b := k.b[lo:hi]
	for i, x := range k.a[lo:hi] {
		y := b[i]
		switch {
		case x < y:
			dst[i] = tl
		case x > y:
			dst[i] = tg
		default:
			dst[i] = te
		}
	}
	overlayNulls(dst, k.ca, lo)
	overlayNulls(dst, k.cb, lo)
}

type cmpBoolBoolColKernel struct {
	a, b   []bool
	lut    [3]int8
	ca, cb *table.Column
}

func (k *cmpBoolBoolColKernel) eval(dst []int8, lo, hi int) {
	b := k.b[lo:hi]
	for i, x := range k.a[lo:hi] {
		dst[i] = k.lut[boolCmp(x, b[i])+1]
	}
	overlayNulls(dst, k.ca, lo)
	overlayNulls(dst, k.cb, lo)
}

type cmpTextTextEqColKernel struct {
	a, b   []uint32
	eq     bool
	ca, cb *table.Column
}

func (k *cmpTextTextEqColKernel) eval(dst []int8, lo, hi int) {
	hit, other := ternOf(k.eq), ternOf(!k.eq)
	b := k.b[lo:hi]
	for i, x := range k.a[lo:hi] {
		if x == b[i] {
			dst[i] = hit
		} else {
			dst[i] = other
		}
	}
	overlayNulls(dst, k.ca, lo)
	overlayNulls(dst, k.cb, lo)
}

type cmpTextTextOrdColKernel struct {
	a, b   []uint32
	strs   []string
	lut    [3]int8
	ca, cb *table.Column
}

func (k *cmpTextTextOrdColKernel) eval(dst []int8, lo, hi int) {
	b := k.b[lo:hi]
	for i, x := range k.a[lo:hi] {
		y := b[i]
		if x == y {
			dst[i] = k.lut[1]
			continue
		}
		dst[i] = k.lut[sign(strings.Compare(k.strs[x], k.strs[y]))+1]
	}
	overlayNulls(dst, k.ca, lo)
	overlayNulls(dst, k.cb, lo)
}

type isNullKernel struct {
	col    *table.Column // nil: WEIGHT, never null
	negate bool
}

func (k *isNullKernel) eval(dst []int8, lo, hi int) {
	base := ternOf(k.negate) // IS NULL on a non-null row
	for i := range dst {
		dst[i] = base
	}
	if k.col == nil || !k.col.HasNulls() {
		return
	}
	hit := ternOf(!k.negate)
	for i := range dst {
		if k.col.Null(lo + i) {
			dst[i] = hit
		}
	}
}

// numListTraits inspects the numeric items of an IN list: whether any
// exist at all, and whether one of them is NaN (which, under value.Equal,
// matches every numeric child).
func numListTraits(vals []value.Value) (anyNum, nanItem bool) {
	for _, v := range vals {
		if classOf(v.Kind()) != value.ClassNum {
			continue
		}
		anyNum = true
		f, _ := v.Float64()
		if math.IsNaN(f) {
			nanItem = true
		}
	}
	return anyNum, nanItem
}

// inIntKernel tests INT-column membership with value.Equal semantics: INT
// list items match exactly on int64, FLOAT items through float64 (exactly
// the asymmetry value.Compare has), and a NaN item matches every child
// (value.Compare(x, NaN) finds neither smaller, so Equal is true).
type inIntKernel struct {
	xs      []int64
	ints    map[int64]bool
	floats  map[uint64]bool
	nanItem bool
	sawNull bool
	negate  bool
	col     *table.Column
}

func (k *inIntKernel) eval(dst []int8, lo, hi int) {
	match, miss := ternOf(!k.negate), ternOf(k.negate)
	if k.sawNull {
		miss = ternNull
	}
	for i, x := range k.xs[lo:hi] {
		hit := k.nanItem || k.ints[x]
		if !hit && len(k.floats) > 0 {
			hit = k.floats[eqBits(float64(x))]
		}
		if hit {
			dst[i] = match
		} else {
			dst[i] = miss
		}
	}
	overlayNulls(dst, k.col, lo)
}

type inFloatKernel struct {
	xs      []float64
	set     map[uint64]bool
	anyNum  bool // a NaN child matches as soon as any numeric item exists
	nanItem bool // a NaN item matches every child
	sawNull bool
	negate  bool
	col     *table.Column
}

func (k *inFloatKernel) eval(dst []int8, lo, hi int) {
	match, miss := ternOf(!k.negate), ternOf(k.negate)
	if k.sawNull {
		miss = ternNull
	}
	for i, x := range k.xs[lo:hi] {
		if k.nanItem || k.set[eqBits(x)] || (k.anyNum && math.IsNaN(x)) {
			dst[i] = match
		} else {
			dst[i] = miss
		}
	}
	overlayNulls(dst, k.col, lo)
}

type inBoolKernel struct {
	xs           []bool
	wantT, wantF bool
	sawNull      bool
	negate       bool
	col          *table.Column
}

func (k *inBoolKernel) eval(dst []int8, lo, hi int) {
	match, miss := ternOf(!k.negate), ternOf(k.negate)
	if k.sawNull {
		miss = ternNull
	}
	for i, x := range k.xs[lo:hi] {
		if (x && k.wantT) || (!x && k.wantF) {
			dst[i] = match
		} else {
			dst[i] = miss
		}
	}
	overlayNulls(dst, k.col, lo)
}

type inTextKernel struct {
	xs      []uint32
	set     map[uint32]bool
	sawNull bool
	negate  bool
	col     *table.Column
}

func (k *inTextKernel) eval(dst []int8, lo, hi int) {
	match, miss := ternOf(!k.negate), ternOf(k.negate)
	if k.sawNull {
		miss = ternNull
	}
	for i, x := range k.xs[lo:hi] {
		if k.set[x] {
			dst[i] = match
		} else {
			dst[i] = miss
		}
	}
	overlayNulls(dst, k.col, lo)
}

// --- vectorized aggregation ---

// vecAgg is one vectorizable aggregate: its input is the WEIGHT pseudo
// column (col == -1), a schema column, a compiled arithmetic expression
// (vec != nil), or nothing (COUNT(*)).
type vecAgg struct {
	kind sql.AggKind
	star bool
	col  int
	vec  *numVec
}

// planVectorAggs decides whether every aggregate item is kernel-shaped:
// a plain column, WEIGHT, COUNT(*), or an arithmetic expression the numeric
// compiler covers. Shapes whose runtime errors the kernels cannot reproduce
// (SUM/AVG over TEXT, unknown columns, non-arithmetic expressions — all of
// which the row path reports lazily, per scanned row) are declined so the
// row path keeps its exact semantics; a compiled arithmetic input's only
// dynamic error is division by zero, which the accumulator surfaces for
// selected rows (see checkAggErrs).
func planVectorAggs(comp *kernelCompiler, sel *sql.Select) ([]vecAgg, bool) {
	sc := comp.snap.Schema()
	out := make([]vecAgg, 0, len(sel.Items))
	for _, it := range sel.Items {
		if it.Agg == sql.AggNone {
			continue
		}
		if it.Star {
			out = append(out, vecAgg{kind: it.Agg, star: true})
			continue
		}
		if colEx, ok := it.Expr.(*expr.Column); ok {
			if j, ok := sc.Index(colEx.Name); ok {
				if (it.Agg == sql.AggSum || it.Agg == sql.AggAvg) && sc.At(j).Kind == value.KindText {
					return nil, false
				}
				out = append(out, vecAgg{kind: it.Agg, col: j})
				continue
			}
			if strings.EqualFold(colEx.Name, "WEIGHT") {
				out = append(out, vecAgg{kind: it.Agg, col: -1})
				continue
			}
			return nil, false
		}
		v := comp.compileNum(it.Expr)
		if v == nil {
			return nil, false
		}
		// The accumulators index per row; scalars (e.g. SUM(2) under an
		// unfoldable parent) materialize here, off the hot path.
		out = append(out, vecAgg{kind: it.Agg, vec: v.full(comp.n)})
	}
	return out, true
}

// aggsCanErr reports whether any compiled aggregate input has a
// division-by-zero bit set on any row.
func aggsCanErr(vaggs []vecAgg, n int) bool {
	for _, a := range vaggs {
		if a.vec == nil || a.vec.errs == nil {
			continue
		}
		for i := 0; i < n; i++ {
			if bitGet(a.vec.errs, i) {
				return true
			}
		}
	}
	return false
}

// checkAggErrs surfaces the division-by-zero error of a compiled aggregate
// input, exactly when the row path would: on the first selected row whose
// input expression errors (rows filtered out by WHERE never evaluate).
func checkAggErrs(vaggs []vecAgg, selRows []int32) error {
	for _, a := range vaggs {
		if a.vec == nil || a.vec.errs == nil {
			continue
		}
		for _, ri := range selRows {
			if bitGet(a.vec.errs, int(ri)) {
				return errDivisionByZero
			}
		}
	}
	return nil
}

// selectRows computes the selection vector: the indices of rows WHERE keeps,
// in scan order. The compiled kernel handles the common operators, evaluated
// morsel by morsel across the worker pool; anything else runs the
// interpreted expression per row on one goroutine (callers ensure the rest
// of the query cannot error, so interpreted-filter errors surface at the
// same row they would on the row path).
func selectRows(ctx context.Context, snap *table.Snapshot, where expr.Expr, rawW []float64, workers int) ([]int32, error) {
	n := snap.Len()
	if where == nil {
		sel := make([]int32, n)
		if err := forEachMorsel(ctx, n, workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				sel[i] = int32(i)
			}
		}); err != nil {
			return nil, err
		}
		return sel, nil
	}
	if k := compileFilter(where, snap, rawW, workers); k != nil {
		tern, err := evalTern(ctx, k, n, workers)
		if err != nil {
			return nil, err
		}
		sel, sawErr, err := ternSelection(ctx, tern, workers)
		if err != nil {
			return nil, err
		}
		if sawErr {
			// The row interpreter evaluates WHERE over every row in scan
			// order and aborts at the first error; the only dynamic error
			// the kernel set admits is division by zero.
			return nil, errDivisionByZero
		}
		return sel, nil
	}
	sel := make([]int32, 0, n)
	env, _ := makeEnv(snap.Schema())
	for i := 0; i < n; i++ {
		if i%cancelCheckRows == 0 {
			if err := checkCtx(ctx); err != nil {
				return nil, err
			}
		}
		ok, err := expr.Truthy(where, env.bind(snap.Row(i), rawW[i]))
		if err != nil {
			return nil, err
		}
		if ok {
			sel = append(sel, int32(i))
		}
	}
	return sel, nil
}

// densifyColumn assigns each selected row a dense id for one key column, in
// first-appearance order. Identity follows HashKey: dictionary code for
// TEXT, NaN-canonical float64 bits for numerics (so an INT column groups by
// float64 value, exactly as HashKey formats it), 0/1 for BOOL, one id for
// NULL.
func densifyColumn(snap *table.Snapshot, col int, selRows []int32) ([]int32, int32) {
	c := snap.Col(col)
	dense := make([]int32, len(selRows))
	var next int32
	switch c.Kind {
	case value.KindText:
		remap := make([]int32, len(snap.DictStrings())+1)
		for i := range remap {
			remap[i] = -1
		}
		for k, ri := range selRows {
			idx := 0 // NULL
			if !c.Null(int(ri)) {
				idx = int(c.Codes[ri]) + 1
			}
			id := remap[idx]
			if id < 0 {
				id = next
				next++
				remap[idx] = id
			}
			dense[k] = id
		}
	case value.KindBool:
		remap := [3]int32{-1, -1, -1} // null, false, true
		for k, ri := range selRows {
			idx := 0
			if !c.Null(int(ri)) {
				idx = 1
				if c.Bools[ri] {
					idx = 2
				}
			}
			id := remap[idx]
			if id < 0 {
				id = next
				next++
				remap[idx] = id
			}
			dense[k] = id
		}
	case value.KindInt:
		m := make(map[uint64]int32)
		nullID := int32(-1)
		for k, ri := range selRows {
			if c.Null(int(ri)) {
				if nullID < 0 {
					nullID = next
					next++
				}
				dense[k] = nullID
				continue
			}
			bits := value.NumBits(float64(c.Ints[ri]))
			id, ok := m[bits]
			if !ok {
				id = next
				next++
				m[bits] = id
			}
			dense[k] = id
		}
	case value.KindFloat:
		m := make(map[uint64]int32)
		nullID := int32(-1)
		for k, ri := range selRows {
			if c.Null(int(ri)) {
				if nullID < 0 {
					nullID = next
					next++
				}
				dense[k] = nullID
				continue
			}
			bits := value.NumBits(c.Floats[ri])
			id, ok := m[bits]
			if !ok {
				id = next
				next++
				m[bits] = id
			}
			dense[k] = id
		}
	}
	return dense, next
}

// groupIDs assigns each selected row its final group id, folding multi-key
// composites pairwise through uint64-keyed maps. Ids are dense and ordered
// by first appearance, which is exactly the row path's group output order.
//
// With workers > 1 and enough rows, each key column densifies in parallel:
// morsels build local id tables independently, then a serial morsel-ordered
// merge assigns global ids (see denseFromKeys). Dense first-appearance ids
// are a pure function of the key sequence, so the parallel path's output is
// byte-identical to the serial maps.
func groupIDs(snap *table.Snapshot, keyIdx []int, selRows []int32, workers int) (gids []int32, ngroups int, firstRow []int32) {
	m := len(selRows)
	if len(keyIdx) == 0 {
		if m == 0 {
			return nil, 0, nil
		}
		return make([]int32, m), 1, []int32{selRows[0]}
	}
	if workers > 1 && m > morselRows {
		gids = groupIDsParallel(snap, keyIdx, selRows, workers)
	} else {
		gids, _ = densifyColumn(snap, keyIdx[0], selRows)
		for _, kc := range keyIdx[1:] {
			d, _ := densifyColumn(snap, kc, selRows)
			pair := make(map[uint64]int32)
			out := make([]int32, m)
			var next int32
			for k := 0; k < m; k++ {
				key := uint64(uint32(gids[k]))<<32 | uint64(uint32(d[k]))
				id, ok := pair[key]
				if !ok {
					id = next
					next++
					pair[key] = id
				}
				out[k] = id
			}
			gids = out
		}
	}
	for k, g := range gids {
		if int(g) == len(firstRow) {
			firstRow = append(firstRow, selRows[k])
		}
	}
	return gids, len(firstRow), firstRow
}

// groupIDsParallel is groupIDs' morsel-parallel body: per key column it
// materializes canonical uint64 keys in parallel, densifies them with the
// morsel-ordered merge, and folds composites pairwise through the same
// machinery.
func groupIDsParallel(snap *table.Snapshot, keyIdx []int, selRows []int32, workers int) []int32 {
	m := len(selRows)
	rk := make([]uint64, m)
	columnKeys(snap, keyIdx[0], selRows, rk, workers)
	gids, _ := denseFromKeys(rk, workers)
	for _, kc := range keyIdx[1:] {
		columnKeys(snap, kc, selRows, rk, workers)
		d, _ := denseFromKeys(rk, workers)
		_ = forEachMorsel(nil, m, workers, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				rk[k] = uint64(uint32(gids[k]))<<32 | uint64(uint32(d[k]))
			}
		})
		gids, _ = denseFromKeys(rk, workers)
	}
	return gids
}

// nullKeyBits marks NULL in a canonical numeric key stream. It is a
// non-canonical NaN bit pattern, which value.NumBits can never produce (it
// folds every NaN onto the one canonical pattern), so NULL cannot collide
// with any real value.
var nullKeyBits = math.Float64bits(math.NaN()) ^ 1

// columnKeys materializes the canonical grouping key of one column for every
// selected row: dictionary code + 1 for TEXT (0 = NULL), 0/1/2 for BOOL
// (0 = NULL), and value.NumBits with the nullKeyBits sentinel for numerics —
// the same identities densifyColumn uses, flattened to one uint64 per row so
// morsels can build them independently.
func columnKeys(snap *table.Snapshot, col int, selRows []int32, rk []uint64, workers int) {
	c := snap.Col(col)
	m := len(selRows)
	switch c.Kind {
	case value.KindText:
		_ = forEachMorsel(nil, m, workers, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				ri := int(selRows[k])
				if c.Null(ri) {
					rk[k] = 0
				} else {
					rk[k] = uint64(c.Codes[ri]) + 1
				}
			}
		})
	case value.KindBool:
		_ = forEachMorsel(nil, m, workers, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				ri := int(selRows[k])
				switch {
				case c.Null(ri):
					rk[k] = 0
				case c.Bools[ri]:
					rk[k] = 2
				default:
					rk[k] = 1
				}
			}
		})
	case value.KindInt:
		_ = forEachMorsel(nil, m, workers, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				ri := int(selRows[k])
				if c.Null(ri) {
					rk[k] = nullKeyBits
				} else {
					rk[k] = value.NumBits(float64(c.Ints[ri]))
				}
			}
		})
	case value.KindFloat:
		_ = forEachMorsel(nil, m, workers, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				ri := int(selRows[k])
				if c.Null(ri) {
					rk[k] = nullKeyBits
				} else {
					rk[k] = value.NumBits(c.Floats[ri])
				}
			}
		})
	}
}

// denseFromKeys assigns first-appearance dense ids over a key sequence.
// Parallel morsels build local tables (local id = local first-appearance
// order), then one serial pass merges the per-morsel key lists **in morsel
// order** into the global table — a key's global id is therefore assigned at
// its earliest occurrence in scan order, exactly like the serial map loop —
// and a final parallel pass rewrites local ids through each morsel's remap.
func denseFromKeys(rk []uint64, workers int) ([]int32, int32) {
	m := len(rk)
	ids := make([]int32, m)
	nMorsels := (m + morselRows - 1) / morselRows
	if workers <= 1 || nMorsels <= 1 {
		mp := make(map[uint64]int32)
		var next int32
		for k, key := range rk {
			id, ok := mp[key]
			if !ok {
				id = next
				next++
				mp[key] = id
			}
			ids[k] = id
		}
		return ids, next
	}
	localKeys := make([][]uint64, nMorsels)
	_ = forEachMorsel(nil, m, workers, func(lo, hi int) {
		mp := make(map[uint64]int32)
		var order []uint64
		for k := lo; k < hi; k++ {
			key := rk[k]
			id, ok := mp[key]
			if !ok {
				id = int32(len(order))
				mp[key] = id
				order = append(order, key)
			}
			ids[k] = id
		}
		localKeys[lo/morselRows] = order
	})
	global := make(map[uint64]int32)
	var next int32
	remaps := make([][]int32, nMorsels)
	for mi, order := range localKeys {
		remap := make([]int32, len(order))
		for li, key := range order {
			id, ok := global[key]
			if !ok {
				id = next
				next++
				global[key] = id
			}
			remap[li] = id
		}
		remaps[mi] = remap
	}
	_ = forEachMorsel(nil, m, workers, func(lo, hi int) {
		remap := remaps[lo/morselRows]
		for k := lo; k < hi; k++ {
			ids[k] = remap[ids[k]]
		}
	})
	return ids, next
}

// accumulate runs one aggregate's tight loop over the selected rows,
// writing the shared partial-state arrays (PartialStates). Accumulation
// order is scan order and the operation sequence matches AggState.Accumulate
// exactly, so float results are bit-identical to the row path.
func accumulate(a vecAgg, st *PartialStates, snap *table.Snapshot, selRows, gids []int32, selW, rawW []float64) {
	switch a.kind {
	case sql.AggCount:
		if a.star || (a.col == -1 && a.vec == nil) {
			// COUNT(*) has no input; COUNT(WEIGHT) inputs are never null.
			for k := range selRows {
				st.Count[gids[k]] += selW[k]
			}
			return
		}
		if a.vec != nil {
			for k, ri := range selRows {
				if bitGet(a.vec.nulls, int(ri)) {
					continue
				}
				st.Count[gids[k]] += selW[k]
			}
			return
		}
		c := snap.Col(a.col)
		if !c.HasNulls() {
			for k := range selRows {
				st.Count[gids[k]] += selW[k]
			}
			return
		}
		for k, ri := range selRows {
			if c.Null(int(ri)) {
				continue
			}
			st.Count[gids[k]] += selW[k]
		}
	case sql.AggSum, sql.AggAvg:
		if a.vec != nil {
			for k, ri := range selRows {
				if bitGet(a.vec.nulls, int(ri)) {
					continue
				}
				g, w := gids[k], selW[k]
				x := 0.0
				if a.vec.isInt {
					x = float64(a.vec.ints[ri])
				} else {
					x = a.vec.floats[ri]
				}
				st.SumW[g] += w
				st.SumWX[g] += w * x
				st.Seen[g] = true
			}
			return
		}
		if a.col == -1 {
			for k := range selRows {
				g, w := gids[k], selW[k]
				st.SumW[g] += w
				st.SumWX[g] += w * rawW[selRows[k]]
				st.Seen[g] = true
			}
			return
		}
		c := snap.Col(a.col)
		switch c.Kind {
		case value.KindInt:
			for k, ri := range selRows {
				if c.Null(int(ri)) {
					continue
				}
				g, w := gids[k], selW[k]
				st.SumW[g] += w
				st.SumWX[g] += w * float64(c.Ints[ri])
				st.Seen[g] = true
			}
		case value.KindFloat:
			for k, ri := range selRows {
				if c.Null(int(ri)) {
					continue
				}
				g, w := gids[k], selW[k]
				st.SumW[g] += w
				st.SumWX[g] += w * c.Floats[ri]
				st.Seen[g] = true
			}
		case value.KindBool:
			for k, ri := range selRows {
				if c.Null(int(ri)) {
					continue
				}
				g, w := gids[k], selW[k]
				x := 0.0
				if c.Bools[ri] {
					x = 1
				}
				st.SumW[g] += w
				st.SumWX[g] += w * x // full multiply keeps NaN/±0 flow identical
				st.Seen[g] = true
			}
		}
	case sql.AggMin, sql.AggMax:
		wantLess := a.kind == sql.AggMin
		for k, ri := range selRows {
			var v value.Value
			switch {
			case a.vec != nil:
				if bitGet(a.vec.nulls, int(ri)) {
					continue
				}
				if a.vec.isInt {
					v = value.Int(a.vec.ints[ri])
				} else {
					v = value.Float(a.vec.floats[ri])
				}
			case a.col == -1:
				v = value.Float(rawW[ri])
			default:
				v = snap.Row(int(ri))[a.col]
			}
			if v.IsNull() {
				continue
			}
			g := gids[k]
			if !st.Seen[g] {
				st.MinMax[g] = v
				st.Seen[g] = true
				continue
			}
			c := value.Compare(v, st.MinMax[g])
			if (wantLess && c < 0) || (!wantLess && c > 0) {
				st.MinMax[g] = v
			}
		}
	}
}

// accumulateStates runs every aggregate's accumulation pass over one
// selection, producing the shared partial states (nst groups each).
// Aggregates parallelize ACROSS items, never across morsels: float
// accumulation is order-sensitive (IEEE 754 addition does not reassociate),
// so each aggregate's pass walks the selection in scan order on one
// goroutine — splitting one sum across workers would change low-order bits.
// Independent aggregates touch disjoint states, so a multi-aggregate query
// (weighted-global has five) still fans out. Chunked calls on
// position-aligned sub-slices keep per-morsel cancellation checkpoints
// without changing accumulation order.
func accumulateStates(ctx context.Context, vaggs []vecAgg, snap *table.Snapshot, selRows, gids []int32, selW, rawW []float64, nst, workers int) ([]*PartialStates, error) {
	states := make([]*PartialStates, len(vaggs))
	err := forEachTask(ctx, len(vaggs), workers, func(i int) error {
		a := vaggs[i]
		st := NewPartialStates(a.kind, nst)
		for lo := 0; lo < len(selRows); lo += morselRows {
			if err := checkCtx(ctx); err != nil {
				return err
			}
			hi := lo + morselRows
			if hi > len(selRows) {
				hi = len(selRows)
			}
			accumulate(a, st, snap, selRows[lo:hi], gids[lo:hi], selW[lo:hi], rawW)
		}
		states[i] = st
		return nil
	})
	if err != nil {
		return nil, err
	}
	return states, nil
}

// runAggregateVector answers an aggregate query on the columnar path.
// handled=false means the shape is not kernel-covered and the caller must
// use the row path.
func runAggregateVector(ctx context.Context, snap *table.Snapshot, sel *sql.Select, opts Options) (res *Result, handled bool, err error) {
	keyIdx, err := resolveGroupKeys(snap, sel)
	if err != nil {
		// Eager validation errors are identical on both paths.
		return nil, true, err
	}
	rawW := snap.Weights()
	if opts.WeightOverride != nil {
		rawW = opts.WeightOverride
	}
	workers := opts.workers()
	comp := &kernelCompiler{snap: snap, weights: rawW, n: snap.Len(), workers: workers}
	vaggs, ok := planVectorAggs(comp, sel)
	if !ok {
		return nil, false, nil
	}
	// When a compiled aggregate input can error (division-by-zero bits) AND
	// the filter needs the interpreted fallback, only the row path's
	// interleaved evaluation (WHERE row i, then aggregate row i) can decide
	// whether the filter's error or the aggregate's surfaces first — an
	// interpreted filter can raise errors other than division by zero, so
	// the messages differ. A kernel filter's only error is the same
	// division-by-zero, making the order indistinguishable.
	if sel.Where != nil && aggsCanErr(vaggs, snap.Len()) && compileFilter(sel.Where, snap, rawW, 1) == nil {
		return nil, false, nil
	}
	selRows, err := selectRows(ctx, snap, sel.Where, rawW, workers)
	if err != nil {
		return nil, true, err
	}
	if err := checkAggErrs(vaggs, selRows); err != nil {
		return nil, true, err
	}
	selW := make([]float64, len(selRows))
	if opts.Weighted {
		for k, ri := range selRows {
			selW[k] = rawW[ri]
		}
	} else {
		for k := range selW {
			selW[k] = 1
		}
	}
	gids, ngroups, firstRow := groupIDs(snap, keyIdx, selRows, workers)
	// A global aggregate over zero selected rows still yields one row of
	// empty aggregates.
	emptyGlobal := ngroups == 0 && len(sel.GroupBy) == 0
	nst := ngroups
	if emptyGlobal {
		nst = 1
	}
	states, err := accumulateStates(ctx, vaggs, snap, selRows, gids, selW, rawW, nst, workers)
	if err != nil {
		return nil, true, err
	}

	res = &Result{}
	for _, it := range sel.Items {
		res.Columns = append(res.Columns, it.Name())
	}
	outSchema := outputSchema(res.Columns)
	keyPos := itemKeyPositions(sel)
	total := ngroups
	if emptyGlobal {
		total = 1
	}
	for g := 0; g < total; g++ {
		row := make([]value.Value, 0, len(sel.Items))
		ai := 0
		for ii, it := range sel.Items {
			if it.Agg == sql.AggNone {
				row = append(row, snap.Row(int(firstRow[g]))[keyIdx[keyPos[ii]]])
			} else {
				row = append(row, states[ai].Finalize(g))
				ai++
			}
		}
		if sel.Having != nil {
			ok, err := expr.Truthy(sel.Having, &expr.Binding{Schema: outSchema, Row: row})
			if err != nil {
				return nil, true, err
			}
			if !ok {
				continue
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if err := orderAndLimit(ctx, res, sel, outSchema); err != nil {
		return nil, true, err
	}
	return res, true, nil
}

// runProjectionVector answers a non-aggregate query on the columnar path:
// the WHERE compiles into selection kernels, DISTINCT densifies through the
// group-id machinery, and ORDER BY permutes row indices over typed columns —
// with a bounded top-K heap when LIMIT is present — so only the surviving
// rows ever materialize. Item evaluation stays row-at-a-time (outputs are
// materialized rows either way).
//
// Engagement rules keep error semantics exactly row-identical:
//   - Computed select items can raise per-row errors in materialization
//     order, so the sort-first / limit-first shortcuts (which would skip
//     materializing some rows) require every item to be a star, a plain
//     column, or WEIGHT.
//   - When the filter kernel flags a division-by-zero row AND a computed
//     item exists, only the interleaved row path can decide which error
//     comes first, so the whole query falls back.
//   - An interpreted (non-kernel) filter evaluates all rows before any
//     materialization; it engages only via the DISTINCT/sort conditions,
//     which imply error-free items.
func runProjectionVector(ctx context.Context, snap *table.Snapshot, sel *sql.Select, opts Options) (res *Result, handled bool, err error) {
	rawW := snap.Weights()
	if opts.WeightOverride != nil {
		rawW = opts.WeightOverride
	}
	n := snap.Len()

	outCols, sources := projectionSources(snap, sel)
	errFree := true
	for _, s := range sources {
		if s == srcComputed {
			errFree = false
		}
	}

	// Which post-processing steps can run columnar?
	var sortKeys []vecSortKey
	sortOK := false
	if len(sel.OrderBy) > 0 && errFree {
		sortKeys, sortOK = resolveVecSortKeys(snap, sel, outCols, sources, rawW)
	}
	distinctOK := sel.Distinct
	for _, s := range sources {
		if s < 0 {
			distinctOK = false
		}
	}
	sortFirst := sortOK && (!sel.Distinct || distinctOK)

	workers := opts.workers()
	var k kernel
	if sel.Where != nil {
		k = compileFilter(sel.Where, snap, rawW, workers)
	}
	switch {
	case sel.Where != nil && k != nil:
		// Kernel filter: always worth the columnar path.
	case (sel.Distinct && distinctOK) || sortFirst:
		// Columnar DISTINCT/sort still pays off over an interpreted (or
		// absent) filter. Both conditions imply error-free items (distinctOK
		// excludes computed sources; sortFirst requires sortOK, computed
		// only under errFree), so evaluating the whole WHERE before any
		// materialization cannot reorder errors.
	default:
		return nil, false, nil // the row path is equivalent
	}

	// Selection vector.
	var selRows []int32
	if k != nil {
		tern, err := evalTern(ctx, k, n, workers)
		if err != nil {
			return nil, true, err
		}
		sel32, sawErr, err := ternSelection(ctx, tern, workers)
		if err != nil {
			return nil, true, err
		}
		if sawErr {
			if !errFree {
				return nil, false, nil
			}
			return nil, true, errDivisionByZero
		}
		selRows = sel32
	} else {
		selRows, err = selectRows(ctx, snap, sel.Where, rawW, workers)
		if err != nil {
			return nil, true, err
		}
	}

	// DISTINCT: densify the item columns to group ids; the first-appearance
	// representatives are exactly dedupRows' first occurrences.
	cand := selRows
	if sel.Distinct && distinctOK {
		_, _, cand = groupIDs(snap, sources, selRows, workers)
	}

	// ORDER BY / LIMIT on row indices, before materialization.
	postDone := false
	if sortFirst {
		// Sort boundary.
		if err := checkCtx(ctx); err != nil {
			return nil, true, err
		}
		switch {
		case sel.Limit == 0:
			cand = nil
		case sel.Limit > 0 && sel.Limit < len(cand) && keysTotalOrder(sortKeys, cand):
			cand = topKCandidates(sortKeys, cand, sel.Limit)
		default:
			if err := sortCandidates(ctx, sortKeys, cand, workers); err != nil {
				return nil, true, err
			}
			if sel.Limit >= 0 && len(cand) > sel.Limit {
				cand = cand[:sel.Limit]
			}
		}
		postDone = true
	} else if len(sel.OrderBy) == 0 && errFree && sel.Limit >= 0 && (!sel.Distinct || distinctOK) {
		// LIMIT without ORDER BY: keep the first k candidates.
		if len(cand) > sel.Limit {
			cand = cand[:sel.Limit]
		}
		postDone = true
	}

	// Bindings only need the WEIGHT extension when a select item actually
	// references it; otherwise rows bind in place with zero copying.
	needW := false
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		for _, cn := range it.Expr.Columns(nil) {
			if strings.EqualFold(cn, "WEIGHT") {
				needW = true
			}
		}
	}
	env, _ := makeEnv(snap.Schema())
	res = &Result{Columns: outCols}
	for ci, ri := range cand {
		if ci%cancelCheckRows == 0 {
			if err := checkCtx(ctx); err != nil {
				return nil, true, err
			}
		}
		row := snap.Row(int(ri))
		var b *expr.Binding
		if needW {
			b = env.bind(row, rawW[ri])
		} else {
			b = &expr.Binding{Schema: snap.Schema(), Row: row}
		}
		out, err := projectRow(sel, row, b)
		if err != nil {
			return nil, true, err
		}
		res.Rows = append(res.Rows, out)
	}
	if sel.Distinct && !distinctOK {
		res.Rows = dedupRows(res.Rows)
	}
	if postDone {
		return res, true, nil
	}
	if err := orderAndLimit(ctx, res, sel, snap.Schema()); err != nil {
		return nil, true, err
	}
	return res, true, nil
}

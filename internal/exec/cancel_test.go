package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"mosaic/internal/schema"
	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// TestRunContextCancelled: both executor paths honor an already-cancelled
// context on every query shape (projection, aggregate, sort).
func TestRunContextCancelled(t *testing.T) {
	sc := schema.MustNew(
		schema.Attribute{Name: "g", Kind: value.KindText},
		schema.Attribute{Name: "x", Kind: value.KindInt},
	)
	tbl := table.New("t", sc)
	for i := 0; i < 20000; i++ {
		if err := tbl.Append([]value.Value{value.Text(fmt.Sprintf("g%d", i%7)), value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	queries := []string{
		"SELECT g, x FROM t WHERE x > 10",
		"SELECT g, COUNT(*), SUM(x) FROM t GROUP BY g",
		"SELECT g, x FROM t ORDER BY x DESC LIMIT 5",
		"SELECT DISTINCT g FROM t",
	}
	for _, q := range queries {
		sel, err := sql.ParseQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, forceRow := range []bool{false, true} {
			if _, err := RunContext(ctx, tbl, sel, Options{Weighted: true, ForceRow: forceRow}); !errors.Is(err, context.Canceled) {
				t.Errorf("%q (forceRow=%v) = %v, want context.Canceled", q, forceRow, err)
			}
		}
		// And the nil-context wrappers still work.
		if _, err := Run(tbl, sel, Options{Weighted: true}); err != nil {
			t.Errorf("%q uncancelled: %v", q, err)
		}
	}
}

// Columnar ORDER BY: an index permutation over typed column vectors instead
// of a generic-comparator sort of materialized rows, plus a bounded heap for
// ORDER BY ... LIMIT k so a 1M-row top-10 never sorts the full result.
//
// Tie-break contract (shared with the row engine, orderAndLimit, and
// exec.ApplyPostAggregation): sorting is STABLE — rows whose ORDER BY keys
// compare equal under value.Compare keep their pre-sort order, which is scan
// order for projections, first-occurrence order for DISTINCT, and group
// first-appearance order for aggregates. The permutation sort reproduces the
// row engine bit for bit because it runs the same sort.SliceStable algorithm
// with a comparator that returns the same answer for every pair; the top-K
// heap reproduces it by totalizing the order with the pre-sort position as
// the final tie-break, which is exactly what a stable sort does when the key
// comparator is a strict weak order. value.Compare is NOT a strict weak
// order when NaN is present (NaN compares equal to everything), so the heap
// path is guarded by a NaN scan and falls back to the full stable sort.
package exec

import (
	"context"
	"math"
	"math/bits"
	"sort"
	"strings"

	"mosaic/internal/expr"
	"mosaic/internal/schema"
	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// Output-column source markers (see projectionSources).
const (
	srcWeight   = -1 // the effective per-row weight vector
	srcComputed = -2 // a computed expression: must be evaluated per row
)

// projectionSources resolves the output columns of a projection together
// with each column's source: a schema column index, srcWeight for the WEIGHT
// pseudo-column, or srcComputed for anything that needs per-row evaluation
// (and can therefore raise per-row errors). The names slice is identical to
// projectionColumns.
func projectionSources(snap *table.Snapshot, sel *sql.Select) (names []string, src []int) {
	sc := snap.Schema()
	for _, it := range sel.Items {
		if it.Star {
			for i, n := range sc.Names() {
				names = append(names, n)
				src = append(src, i)
			}
			continue
		}
		names = append(names, it.Name())
		s := srcComputed
		if col, ok := it.Expr.(*expr.Column); ok {
			if j, ok := sc.Index(col.Name); ok {
				s = j
			} else if strings.EqualFold(col.Name, "WEIGHT") {
				s = srcWeight
			}
		}
		src = append(src, s)
	}
	return names, src
}

// vecSortKey is one resolved ORDER BY key over snapshot columns.
type vecSortKey struct {
	desc bool
	src  int
	col  *table.Column // nil for WEIGHT
	w    []float64     // the effective weight vector when src == srcWeight
	rank []int32       // TEXT: dictionary code → collation rank
}

// resolveVecSortKeys maps every ORDER BY item onto a typed column source.
// ok=false means some key is not a plain reference to a column-backed output
// column (a computed output, an expression key, or an unresolvable name) and
// the caller must fall back to the generic materialized sort.
func resolveVecSortKeys(snap *table.Snapshot, sel *sql.Select, outCols []string, src []int, rawW []float64) ([]vecSortKey, bool) {
	keys := make([]vecSortKey, 0, len(sel.OrderBy))
	var ranks []int32 // built once, shared by every TEXT key of this query
	for _, o := range sel.OrderBy {
		col, isCol := o.Expr.(*expr.Column)
		if !isCol {
			return nil, false
		}
		// First output-column match, exactly like orderKey.
		ci := -1
		for i, name := range outCols {
			if strings.EqualFold(name, col.Name) {
				ci = i
				break
			}
		}
		if ci < 0 || src[ci] == srcComputed {
			return nil, false
		}
		k := vecSortKey{desc: o.Desc, src: src[ci]}
		if k.src == srcWeight {
			k.w = rawW
		} else {
			k.col = snap.Col(k.src)
			if k.col.Kind == value.KindText {
				if ranks == nil {
					ranks = textRanks(snap)
				}
				k.rank = ranks
			}
		}
		keys = append(keys, k)
	}
	return keys, true
}

// textRanks builds the dictionary-code → collation-rank table: rank order is
// byte order of the interned strings, matching value.Compare on TEXT.
func textRanks(snap *table.Snapshot) []int32 {
	strs := snap.DictStrings()
	idx := make([]int32, len(strs))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool { return strs[idx[a]] < strs[idx[b]] })
	rank := make([]int32, len(strs))
	for r, code := range idx {
		rank[code] = int32(r)
	}
	return rank
}

// cmp compares rows ri and rj under this key with value.Compare semantics:
// NULL below everything, exact int64, float64 with NaN comparing equal to
// everything, byte-ordered TEXT via the rank table.
func (k *vecSortKey) cmp(ri, rj int32) int {
	if k.src == srcWeight {
		x, y := k.w[ri], k.w[rj]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	}
	c := k.col
	ni, nj := c.Null(int(ri)), c.Null(int(rj))
	if ni || nj {
		switch {
		case ni && nj:
			return 0
		case ni:
			return -1
		default:
			return 1
		}
	}
	switch c.Kind {
	case value.KindInt:
		x, y := c.Ints[ri], c.Ints[rj]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case value.KindFloat:
		x, y := c.Floats[ri], c.Floats[rj]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	case value.KindBool:
		return boolCmp(c.Bools[ri], c.Bools[rj])
	default: // TEXT
		x, y := k.rank[c.Codes[ri]], k.rank[c.Codes[rj]]
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	}
}

// rowLess is the multi-key "less" over two row ids; its answer equals the
// row engine's comparator over the materialized rows, pair for pair.
func rowLess(keys []vecSortKey, ra, rb int32) bool {
	for kk := range keys {
		c := keys[kk].cmp(ra, rb)
		if c == 0 {
			continue
		}
		if keys[kk].desc {
			return c > 0
		}
		return c < 0
	}
	return false
}

// vecKeysLess is rowLess over candidate positions a and b.
func vecKeysLess(keys []vecSortKey, cand []int32, a, b int) bool {
	return rowLess(keys, cand[a], cand[b])
}

// sortCandidates stable-sorts the candidate row ids in place. Running the
// same sort.SliceStable algorithm with a pairwise-identical comparator makes
// the resulting permutation byte-identical to the row engine's sort of the
// materialized rows — including under NaN keys, where value.Compare is not
// a strict weak order and the outcome is algorithm-defined.
//
// With workers and a strict weak order (no NaN keys) the sort runs as a
// parallel stable merge sort instead: under a strict weak order the stably
// sorted permutation is UNIQUE — any stable algorithm produces it — so
// chunk-sorting morsels and merging adjacent runs with left preference
// yields byte-identical output to sort.SliceStable. NaN keys void the
// uniqueness argument (the outcome becomes algorithm-defined), so they take
// the serial path, exactly like the top-K heap guard.
func sortCandidates(ctx context.Context, keys []vecSortKey, cand []int32, workers int) error {
	if err := checkCtx(ctx); err != nil {
		return err
	}
	totalOrder := keysTotalOrder(keys, cand)
	// Multi-key sorts re-run the whole key chain on every comparison; under a
	// strict weak order the chain collapses into one precomputed composite
	// rank word per candidate, shared by every subsequent comparison.
	if totalOrder && len(keys) >= 2 {
		if comp := compositeRanks(keys, cand); comp != nil {
			return sortByComposite(ctx, cand, comp, workers)
		}
	}
	if workers > 1 && len(cand) > morselRows && totalOrder {
		return parallelSortCandidates(ctx, keys, cand, workers)
	}
	sort.SliceStable(cand, func(a, b int) bool { return vecKeysLess(keys, cand, a, b) })
	return nil
}

// compositeRanks collapses a multi-key ORDER BY into one packed uint64 per
// candidate: each key's values densify into order-preserving ranks (DESC keys
// invert theirs), and the per-key ranks concatenate most-significant-first,
// so a single uint64 compare answers exactly what the full key chain would —
// comp[a] < comp[b] ⟺ rowLess(keys, cand[a], cand[b]), and equality means
// every key ties (stability then falls to pre-sort position, as always).
// Requires keysTotalOrder (dense ranks are meaningless when NaN compares
// equal to everything). Returns nil — caller keeps the per-comparison chain —
// for single-key sorts, empty candidate sets, or when the combined rank
// widths exceed 64 bits (keys whose distinct-value product tops 2^64).
func compositeRanks(keys []vecSortKey, cand []int32) []uint64 {
	if len(keys) < 2 || len(cand) == 0 {
		return nil
	}
	m := len(cand)
	perm := make([]int32, m)
	ranks := make([][]uint64, len(keys))
	widths := make([]uint, len(keys))
	var total uint
	for ki := range keys {
		k := &keys[ki]
		for i := range perm {
			perm[i] = int32(i)
		}
		// Unstable single-key sort: equal values land on equal ranks no
		// matter how they permute, so stability is irrelevant here.
		sort.Slice(perm, func(a, b int) bool { return k.cmp(cand[perm[a]], cand[perm[b]]) < 0 })
		r := make([]uint64, m)
		var cur uint64
		prev := perm[0]
		for i, p := range perm {
			if i > 0 && k.cmp(cand[prev], cand[p]) != 0 {
				cur++
			}
			r[p] = cur
			prev = p
		}
		if k.desc {
			for i := range r {
				r[i] = cur - r[i]
			}
		}
		ranks[ki] = r
		widths[ki] = uint(bits.Len64(cur)) // 0 when the key never discriminates
		total += widths[ki]
		if total > 64 {
			return nil
		}
	}
	comp := make([]uint64, m)
	for ki := range keys {
		w := widths[ki]
		if w == 0 {
			continue
		}
		r := ranks[ki]
		for i := range comp {
			comp[i] = comp[i]<<w | r[i]
		}
	}
	return comp
}

// candComposite stable-sorts candidate row ids and their composite rank
// words as one unit.
type candComposite struct {
	cand []int32
	comp []uint64
}

func (s candComposite) Len() int           { return len(s.cand) }
func (s candComposite) Less(a, b int) bool { return s.comp[a] < s.comp[b] }
func (s candComposite) Swap(a, b int) {
	s.cand[a], s.cand[b] = s.cand[b], s.cand[a]
	s.comp[a], s.comp[b] = s.comp[b], s.comp[a]
}

// sortByComposite stable-sorts cand by its composite rank vector: serial
// sort.Stable below the parallel threshold, otherwise the same morsel-sort +
// doubling-merge scheme as parallelSortCandidates with the rank words riding
// along. Both produce the unique stable permutation of the strict weak order
// the composite encodes, hence byte-identical output to the key-chain paths.
func sortByComposite(ctx context.Context, cand []int32, comp []uint64, workers int) error {
	m := len(cand)
	if workers <= 1 || m <= morselRows {
		sort.Stable(candComposite{cand, comp})
		return nil
	}
	if err := forEachMorsel(ctx, m, workers, func(lo, hi int) {
		sort.Stable(candComposite{cand[lo:hi], comp[lo:hi]})
	}); err != nil {
		return err
	}
	bufC := make([]int32, m)
	bufK := make([]uint64, m)
	srcC, dstC := cand, bufC
	srcK, dstK := comp, bufK
	for width := morselRows; width < m; width *= 2 {
		pairs := (m + 2*width - 1) / (2 * width)
		w := width
		sc, dc, sk, dk := srcC, dstC, srcK, dstK
		if err := forEachTask(ctx, pairs, workers, func(p int) error {
			if err := checkCtx(ctx); err != nil {
				return err
			}
			lo := p * 2 * w
			mid, hi := lo+w, lo+2*w
			if mid > m {
				mid = m
			}
			if hi > m {
				hi = m
			}
			mergeCompositeRuns(sc[lo:mid], sk[lo:mid], sc[mid:hi], sk[mid:hi], dc[lo:hi], dk[lo:hi])
			return nil
		}); err != nil {
			return err
		}
		srcC, dstC = dstC, srcC
		srcK, dstK = dstK, srcK
	}
	if &srcC[0] != &cand[0] {
		copy(cand, srcC)
	}
	return nil
}

// mergeCompositeRuns merges two adjacent sorted runs, taking from b only when
// its head rank is strictly less (left preference = stability), moving the
// rank words alongside the row ids.
func mergeCompositeRuns(aC []int32, aK []uint64, bC []int32, bK []uint64, outC []int32, outK []uint64) {
	i, j, k := 0, 0, 0
	for i < len(aC) && j < len(bC) {
		if bK[j] < aK[i] {
			outC[k], outK[k] = bC[j], bK[j]
			j++
		} else {
			outC[k], outK[k] = aC[i], aK[i]
			i++
		}
		k++
	}
	for ; i < len(aC); i, k = i+1, k+1 {
		outC[k], outK[k] = aC[i], aK[i]
	}
	for ; j < len(bC); j, k = j+1, k+1 {
		outC[k], outK[k] = bC[j], bK[j]
	}
}

// parallelSortCandidates: stable-sort each morsel-sized run concurrently,
// then merge adjacent run pairs in passes of doubling width. Left preference
// on equal keys at every merge preserves stability end to end.
func parallelSortCandidates(ctx context.Context, keys []vecSortKey, cand []int32, workers int) error {
	m := len(cand)
	if err := forEachMorsel(ctx, m, workers, func(lo, hi int) {
		run := cand[lo:hi]
		sort.SliceStable(run, func(a, b int) bool { return rowLess(keys, run[a], run[b]) })
	}); err != nil {
		return err
	}
	buf := make([]int32, m)
	src, dst := cand, buf
	for width := morselRows; width < m; width *= 2 {
		pairs := (m + 2*width - 1) / (2 * width)
		w := width
		s, d := src, dst
		if err := forEachTask(ctx, pairs, workers, func(p int) error {
			if err := checkCtx(ctx); err != nil {
				return err
			}
			lo := p * 2 * w
			mid, hi := lo+w, lo+2*w
			if mid > m {
				mid = m
			}
			if hi > m {
				hi = m
			}
			mergeRuns(keys, s[lo:mid], s[mid:hi], d[lo:hi])
			return nil
		}); err != nil {
			return err
		}
		src, dst = dst, src
	}
	if &src[0] != &cand[0] {
		copy(cand, src)
	}
	return nil
}

// mergeRuns merges two adjacent sorted runs into out, taking from b only
// when its head is strictly less than a's head (left preference = stability).
func mergeRuns(keys []vecSortKey, a, b, out []int32) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if rowLess(keys, b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	k += copy(out[k:], a[i:])
	copy(out[k:], b[j:])
}

// keysTotalOrder reports whether the keys impose a strict weak order over
// the candidate rows, i.e. no float key value is NaN. Only then may the
// heap-based top-K replace the full stable sort.
func keysTotalOrder(keys []vecSortKey, cand []int32) bool {
	for ki := range keys {
		k := &keys[ki]
		switch {
		case k.src == srcWeight:
			for _, ri := range cand {
				if math.IsNaN(k.w[ri]) {
					return false
				}
			}
		case k.col.Kind == value.KindFloat:
			for _, ri := range cand {
				if !k.col.Null(int(ri)) && math.IsNaN(k.col.Floats[ri]) {
					return false
				}
			}
		}
	}
	return true
}

// topKCandidates returns the first k candidates of the full stable sort
// without sorting the whole slice: a bounded max-heap keeps the best k under
// the totalized order (keys, then pre-sort position). Requires
// keysTotalOrder — under a strict weak order, stable sort equals sorting by
// that total order, so the heap's answer is exactly the k-prefix.
func topKCandidates(keys []vecSortKey, cand []int32, k int) []int32 {
	less := func(a, b int) bool {
		for kk := range keys {
			c := keys[kk].cmp(cand[a], cand[b])
			if c == 0 {
				continue
			}
			if keys[kk].desc {
				return c > 0
			}
			return c < 0
		}
		return a < b
	}
	// Multi-key heaps compare O(k log k · n) times; the shared composite rank
	// vector turns each of those into one uint64 compare. Identical order by
	// construction (see compositeRanks), so the heap's answer is unchanged.
	if comp := compositeRanks(keys, cand); comp != nil {
		less = func(a, b int) bool {
			if comp[a] != comp[b] {
				return comp[a] < comp[b]
			}
			return a < b
		}
	}
	top := boundedTopK(len(cand), k, less)
	out := make([]int32, len(top))
	for i, p := range top {
		out[i] = cand[p]
	}
	return out
}

// boundedTopK returns the k smallest positions of [0, n) under less, in
// ascending order. less must be a total order (ties broken by position).
// The heap holds at most k entries, so memory and comparisons stay O(k) per
// pushed element instead of O(n log n) for a full sort.
func boundedTopK(n, k int, less func(a, b int) bool) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	h := make([]int, 0, k)
	// Max-heap: h[0] is the worst of the current best k.
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if less(h[p], h[i]) {
				h[p], h[i] = h[i], h[p]
				i = p
				continue
			}
			break
		}
	}
	siftDown := func() {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(h) && less(h[big], h[l]) {
				big = l
			}
			if r < len(h) && less(h[big], h[r]) {
				big = r
			}
			if big == i {
				return
			}
			h[i], h[big] = h[big], h[i]
			i = big
		}
	}
	for p := 0; p < n; p++ {
		if len(h) < k {
			h = append(h, p)
			siftUp(len(h) - 1)
			continue
		}
		if less(p, h[0]) {
			h[0] = p
			siftDown()
		}
	}
	sort.Slice(h, func(a, b int) bool { return less(h[a], h[b]) })
	return h
}

// topKRows is the generic (materialized-result) top-K used by orderAndLimit
// for aggregate outputs: keys are pre-extracted once per row, then a bounded
// heap selects the k-prefix of the stable sort. It reports false — leaving
// res untouched — whenever the legacy lazy comparator must run instead:
// a key that fails to extract (the lazy path may not error at all on 0/1-row
// results) or a NaN key value (no strict weak order).
func topKRows(res *Result, sel *sql.Select, in, out *schema.Schema) bool {
	n := len(res.Rows)
	keys := make([][]value.Value, n)
	for i := 0; i < n; i++ {
		row := make([]value.Value, len(sel.OrderBy))
		for oi, o := range sel.OrderBy {
			vi, _, err := orderKey(o.Expr, res, in, out, i, i)
			if err != nil {
				return false
			}
			if vi.Kind() == value.KindFloat && math.IsNaN(vi.AsFloat()) {
				return false
			}
			row[oi] = vi
		}
		keys[i] = row
	}
	less := func(a, b int) bool {
		for oi := range sel.OrderBy {
			c := value.Compare(keys[a][oi], keys[b][oi])
			if c == 0 {
				continue
			}
			if sel.OrderBy[oi].Desc {
				return c > 0
			}
			return c < 0
		}
		return a < b
	}
	top := boundedTopK(n, sel.Limit, less)
	rows := make([][]value.Value, len(top))
	for i, p := range top {
		rows[i] = res.Rows[p]
	}
	res.Rows = rows
	return true
}

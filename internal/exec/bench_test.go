package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

func benchTable(n int) *table.Table {
	rng := rand.New(rand.NewSource(1))
	tbl := table.New("t", sc)
	for i := 0; i < n; i++ {
		_ = tbl.AppendWeighted([]value.Value{
			value.Text(fmt.Sprintf("g%d", rng.Intn(20))),
			value.Int(int64(rng.Intn(1000))),
			value.Float(rng.Float64() * 100),
		}, rng.Float64()+0.5)
	}
	return tbl
}

func benchQuery(b *testing.B, src string) *sql.Select {
	b.Helper()
	sel, err := sql.ParseQuery(src)
	if err != nil {
		b.Fatal(err)
	}
	return sel
}

func BenchmarkFilterProject100k(b *testing.B) {
	tbl := benchTable(100000)
	sel := benchQuery(b, "SELECT x, y FROM t WHERE x > 500")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tbl, sel, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeightedGroupBy100k(b *testing.B) {
	tbl := benchTable(100000)
	sel := benchQuery(b, "SELECT c, COUNT(*), AVG(y) FROM t GROUP BY c")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tbl, sel, Options{Weighted: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGlobalAggregate100k(b *testing.B) {
	tbl := benchTable(100000)
	sel := benchQuery(b, "SELECT COUNT(*), SUM(x), AVG(y), MIN(x), MAX(y) FROM t")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(tbl, sel, Options{Weighted: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// Package mechanism implements sampling mechanisms (paper Sec 3): the
// probability Pr_S(t) that a global-population tuple enters a sample. A
// known mechanism lets SEMI-OPEN queries reweight tuples by 1/Pr_S(t)
// (Horvitz–Thompson weighting, the paper's standard approach, Sec 4.1).
//
// The package also provides samplers that draw biased samples from a known
// population table — used by the experiment harness to construct the paper's
// workloads (e.g. the 95 %-biased flights sample of Sec 5.3).
package mechanism

import (
	"fmt"
	"math/rand"

	"mosaic/internal/expr"
	"mosaic/internal/schema"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// Mechanism yields the inclusion probability of a tuple.
type Mechanism interface {
	// Name identifies the mechanism for display and catalogs.
	Name() string
	// InclusionProb returns Pr_S(t) in (0,1] for the given row.
	InclusionProb(row []value.Value, s *schema.Schema) (float64, error)
}

// Uniform includes every tuple with the same probability (paper:
// "UNIFORM PERCENT 10" is a 10 percent uniform sample).
type Uniform struct {
	Percent float64 // in (0,100]
}

// Name implements Mechanism.
func (u Uniform) Name() string { return fmt.Sprintf("UNIFORM PERCENT %g", u.Percent) }

// InclusionProb implements Mechanism.
func (u Uniform) InclusionProb([]value.Value, *schema.Schema) (float64, error) {
	if u.Percent <= 0 || u.Percent > 100 {
		return 0, fmt.Errorf("mechanism: uniform percent %g out of (0,100]", u.Percent)
	}
	return u.Percent / 100, nil
}

// Stratified samples each stratum (distinct value of Attr) with its own
// probability so that the overall sample is Percent of the population and
// strata are equally represented (paper: "STRATIFIED ON A1 PERCENT 20").
// The per-stratum probabilities are fixed when the sample is drawn from a
// known population (see SampleStratified) or supplied by the user.
type Stratified struct {
	Attr    string
	Percent float64
	// Probs maps stratum value (HashKey) to inclusion probability.
	Probs map[string]float64
}

// Name implements Mechanism.
func (s Stratified) Name() string {
	return fmt.Sprintf("STRATIFIED ON %s PERCENT %g", s.Attr, s.Percent)
}

// InclusionProb implements Mechanism.
func (s Stratified) InclusionProb(row []value.Value, sc *schema.Schema) (float64, error) {
	i, ok := sc.Index(s.Attr)
	if !ok {
		return 0, fmt.Errorf("mechanism: stratified attribute %q not in schema", s.Attr)
	}
	p, ok := s.Probs[row[i].HashKey()]
	if !ok {
		return 0, fmt.Errorf("mechanism: no inclusion probability for stratum %s", row[i])
	}
	return p, nil
}

// Biased includes tuples satisfying Pred with probability PTrue and the rest
// with PFalse. This models the paper's flights sample: "95 percent of the
// tuples have a long flight time" is a biased mechanism on E > 200.
type Biased struct {
	Label  string
	Pred   expr.Expr
	PTrue  float64
	PFalse float64
}

// Name implements Mechanism.
func (b Biased) Name() string {
	if b.Label != "" {
		return b.Label
	}
	return fmt.Sprintf("BIASED ON %s (p=%g else %g)", b.Pred, b.PTrue, b.PFalse)
}

// InclusionProb implements Mechanism.
func (b Biased) InclusionProb(row []value.Value, sc *schema.Schema) (float64, error) {
	ok, err := expr.Truthy(b.Pred, &expr.Binding{Schema: sc, Row: row})
	if err != nil {
		return 0, err
	}
	if ok {
		return b.PTrue, nil
	}
	return b.PFalse, nil
}

// InverseWeights computes Horvitz–Thompson weights 1/Pr_S(t) for every tuple
// of the sample table.
func InverseWeights(t *table.Table, m Mechanism) ([]float64, error) {
	out := make([]float64, 0, t.Len())
	var scanErr error
	t.Scan(func(row []value.Value, _ float64) bool {
		p, err := m.InclusionProb(row, t.Schema())
		if err != nil {
			scanErr = err
			return false
		}
		if p <= 0 || p > 1 {
			scanErr = fmt.Errorf("mechanism %s: inclusion probability %g out of (0,1]", m.Name(), p)
			return false
		}
		out = append(out, 1/p)
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return out, nil
}

// ApplyInverseWeights reweights the sample in place by 1/Pr_S(t).
func ApplyInverseWeights(t *table.Table, m Mechanism) error {
	w, err := InverseWeights(t, m)
	if err != nil {
		return err
	}
	return t.SetWeights(w)
}

// Sample draws a Bernoulli sample from pop: each tuple enters independently
// with its mechanism probability. Weights in the result are 1.
func Sample(pop *table.Table, m Mechanism, name string, rng *rand.Rand) (*table.Table, error) {
	out := table.New(name, pop.Schema())
	var scanErr error
	pop.Scan(func(row []value.Value, _ float64) bool {
		p, err := m.InclusionProb(row, pop.Schema())
		if err != nil {
			scanErr = err
			return false
		}
		if rng.Float64() < p {
			if err := out.Append(row); err != nil {
				scanErr = err
				return false
			}
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	return out, nil
}

// StratifiedFor builds a Stratified mechanism whose per-stratum probabilities
// realize an equal-allocation stratified design over the given population:
// with k strata and target sample fraction f, every stratum contributes
// f·N/k expected tuples, so stratum h with N_h tuples has probability
// min(1, f·N/(k·N_h)).
func StratifiedFor(pop *table.Table, attr string, percent float64) (Stratified, error) {
	if percent <= 0 || percent > 100 {
		return Stratified{}, fmt.Errorf("mechanism: percent %g out of (0,100]", percent)
	}
	i, ok := pop.Schema().Index(attr)
	if !ok {
		return Stratified{}, fmt.Errorf("mechanism: population has no attribute %q", attr)
	}
	counts := map[string]float64{}
	pop.Scan(func(row []value.Value, _ float64) bool {
		counts[row[i].HashKey()]++
		return true
	})
	if len(counts) == 0 {
		return Stratified{}, fmt.Errorf("mechanism: empty population for stratification on %q", attr)
	}
	n := float64(pop.Len()) * percent / 100
	per := n / float64(len(counts))
	probs := make(map[string]float64, len(counts))
	for k, nh := range counts {
		p := per / nh
		if p > 1 {
			p = 1
		}
		probs[k] = p
	}
	return Stratified{Attr: attr, Percent: percent, Probs: probs}, nil
}

package mechanism

import (
	"math"
	"math/rand"
	"testing"

	"mosaic/internal/schema"
	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

var sc = schema.MustNew(
	schema.Attribute{Name: "g", Kind: value.KindText},
	schema.Attribute{Name: "x", Kind: value.KindInt},
)

func pop(t *testing.T, n int) *table.Table {
	t.Helper()
	tbl := table.New("pop", sc)
	groups := []string{"a", "b", "c", "d"}
	for i := 0; i < n; i++ {
		// Skewed strata: group i%4 weighted by position.
		g := groups[i%4]
		if i%10 < 6 {
			g = "a" // a gets ~60%
		}
		if err := tbl.Append([]value.Value{value.Text(g), value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestUniformProbability(t *testing.T) {
	u := Uniform{Percent: 10}
	p, err := u.InclusionProb(nil, nil)
	if err != nil || p != 0.1 {
		t.Errorf("uniform prob = %g, %v", p, err)
	}
	if _, err := (Uniform{Percent: 0}).InclusionProb(nil, nil); err == nil {
		t.Error("percent 0 should fail")
	}
	if _, err := (Uniform{Percent: 150}).InclusionProb(nil, nil); err == nil {
		t.Error("percent 150 should fail")
	}
	if got := u.Name(); got != "UNIFORM PERCENT 10" {
		t.Errorf("Name = %q", got)
	}
}

func TestStratifiedForEqualAllocation(t *testing.T) {
	p := pop(t, 1000)
	st, err := StratifiedFor(p, "g", 20)
	if err != nil {
		t.Fatal(err)
	}
	// Expected sample size = 200, split equally over the strata: each
	// stratum contributes 200/k expected tuples.
	counts := map[string]float64{}
	gi, _ := p.Schema().Index("g")
	p.Scan(func(row []value.Value, _ float64) bool {
		counts[row[gi].HashKey()]++
		return true
	})
	k := float64(len(counts))
	var expected float64
	for key, nh := range counts {
		prob := st.Probs[key]
		if prob <= 0 || prob > 1 {
			t.Errorf("stratum %q prob %g out of range", key, prob)
		}
		expected += prob * nh
		if prob < 1 && math.Abs(prob*nh-200/k) > 1e-9 {
			t.Errorf("stratum %q expected count %g, want %g", key, prob*nh, 200/k)
		}
	}
	if math.Abs(expected-200) > k {
		t.Errorf("total expected sample %g, want ≈200", expected)
	}
	if _, err := StratifiedFor(p, "nope", 20); err == nil {
		t.Error("missing attribute should fail")
	}
	if _, err := StratifiedFor(p, "g", 0); err == nil {
		t.Error("percent 0 should fail")
	}
}

func TestStratifiedInclusionProb(t *testing.T) {
	st := Stratified{Attr: "g", Percent: 10, Probs: map[string]float64{
		value.Text("a").HashKey(): 0.05,
	}}
	row := []value.Value{value.Text("a"), value.Int(1)}
	prob, err := st.InclusionProb(row, sc)
	if err != nil || prob != 0.05 {
		t.Errorf("prob = %g, %v", prob, err)
	}
	row[0] = value.Text("unknown")
	if _, err := st.InclusionProb(row, sc); err == nil {
		t.Error("unknown stratum should fail")
	}
}

func TestBiasedMechanism(t *testing.T) {
	pred, err := sql.ParseExpr("x > 100")
	if err != nil {
		t.Fatal(err)
	}
	b := Biased{Pred: pred, PTrue: 0.9, PFalse: 0.1}
	hi := []value.Value{value.Text("a"), value.Int(200)}
	lo := []value.Value{value.Text("a"), value.Int(50)}
	if p, _ := b.InclusionProb(hi, sc); p != 0.9 {
		t.Errorf("pred-true prob = %g", p)
	}
	if p, _ := b.InclusionProb(lo, sc); p != 0.1 {
		t.Errorf("pred-false prob = %g", p)
	}
	if b.Name() == "" {
		t.Error("Name should not be empty")
	}
	if (Biased{Label: "L", Pred: pred}).Name() != "L" {
		t.Error("label should override name")
	}
}

func TestInverseWeightsHorvitzThompson(t *testing.T) {
	p := pop(t, 100)
	u := Uniform{Percent: 25}
	w, err := InverseWeights(p, u)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range w {
		if x != 4 {
			t.Fatalf("weight = %g, want 4", x)
		}
	}
	if err := ApplyInverseWeights(p, u); err != nil {
		t.Fatal(err)
	}
	if got := p.TotalWeight(); got != 400 {
		t.Errorf("reweighted total = %g, want 400", got)
	}
}

func TestInverseWeightsRejectBadProbs(t *testing.T) {
	p := pop(t, 10)
	st := Stratified{Attr: "g", Probs: map[string]float64{}}
	if _, err := InverseWeights(p, st); err == nil {
		t.Error("missing stratum probs should fail")
	}
}

func TestSampleDrawsExpectedFraction(t *testing.T) {
	p := pop(t, 20000)
	rng := rand.New(rand.NewSource(1))
	s, err := Sample(p, Uniform{Percent: 10}, "s", rng)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(s.Len()) / float64(p.Len())
	if math.Abs(frac-0.1) > 0.01 {
		t.Errorf("sample fraction = %g, want ≈0.10", frac)
	}
}

func TestSampleThenReweightRecoversPopulation(t *testing.T) {
	// End-to-end Horvitz–Thompson: biased draw + inverse weights ≈ truth.
	p := pop(t, 30000)
	pred, _ := sql.ParseExpr("x > 15000")
	mech := Biased{Pred: pred, PTrue: 0.3, PFalse: 0.05}
	rng := rand.New(rand.NewSource(2))
	s, err := Sample(p, mech, "s", rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyInverseWeights(s, mech); err != nil {
		t.Fatal(err)
	}
	got := s.TotalWeight()
	if math.Abs(got-30000)/30000 > 0.05 {
		t.Errorf("HT total = %g, want ≈30000", got)
	}
}

func TestStratifiedSampleCoversSmallStrata(t *testing.T) {
	// Equal allocation oversamples small strata; every stratum must appear.
	p := pop(t, 10000)
	st, err := StratifiedFor(p, "g", 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	s, err := Sample(p, st, "s", rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	gi, _ := s.Schema().Index("g")
	s.Scan(func(row []value.Value, _ float64) bool {
		seen[row[gi].AsText()] = true
		return true
	})
	for _, g := range []string{"a", "b", "c", "d"} {
		if !seen[g] {
			t.Errorf("stratum %q missing from stratified sample", g)
		}
	}
}

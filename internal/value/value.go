// Package value defines the typed scalar values stored in Mosaic relations.
//
// Mosaic stores four scalar kinds: 64-bit integers, 64-bit floats, strings,
// and booleans, plus NULL. Values are small immutable structs passed by
// value; they support the total order used by ORDER BY, the equality used by
// GROUP BY hashing, and the numeric coercions used by the expression engine.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the scalar types Mosaic supports.
type Kind uint8

// The supported value kinds. KindNull is the type of the SQL NULL literal.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindText
	KindBool
)

// String returns the SQL-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind maps a SQL type name to a Kind. It accepts the common aliases
// (INTEGER, BIGINT, DOUBLE, REAL, VARCHAR, STRING, BOOLEAN).
func ParseKind(name string) (Kind, error) {
	switch name {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL", "NUMERIC", "DECIMAL":
		return KindFloat, nil
	case "TEXT", "STRING", "VARCHAR", "CHAR":
		return KindText, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("value: unknown type name %q", name)
	}
}

// Value is a single typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an INT value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a FLOAT value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Text returns a TEXT value.
func Text(v string) Value { return Value{kind: KindText, s: v} }

// Bool returns a BOOL value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the int64 payload. It panics unless Kind is KindInt.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: AsInt on %s", v.kind))
	}
	return v.i
}

// AsFloat returns the float64 payload. It panics unless Kind is KindFloat.
func (v Value) AsFloat() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("value: AsFloat on %s", v.kind))
	}
	return v.f
}

// AsText returns the string payload. It panics unless Kind is KindText.
func (v Value) AsText() string {
	if v.kind != KindText {
		panic(fmt.Sprintf("value: AsText on %s", v.kind))
	}
	return v.s
}

// AsBool returns the bool payload. It panics unless Kind is KindBool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: AsBool on %s", v.kind))
	}
	return v.b
}

// Numeric reports whether the value is INT or FLOAT.
func (v Value) Numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Float64 coerces a numeric or boolean value to float64. NULL coerces to NaN.
// Text values return an error.
func (v Value) Float64() (float64, error) {
	switch v.kind {
	case KindInt:
		return float64(v.i), nil
	case KindFloat:
		return v.f, nil
	case KindBool:
		if v.b {
			return 1, nil
		}
		return 0, nil
	case KindNull:
		return math.NaN(), nil
	default:
		return 0, fmt.Errorf("value: cannot coerce %s to float", v.kind)
	}
}

// String renders the value in SQL-literal form.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		// SQL-literal form: embedded quotes double so the rendering is
		// re-parseable (dump/restore depends on this).
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	default:
		return "?"
	}
}

// Raw returns the Go-native payload (int64, float64, string, bool, or nil).
func (v Value) Raw() any {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return v.f
	case KindText:
		return v.s
	case KindBool:
		return v.b
	default:
		return nil
	}
}

// FromRaw builds a Value from a Go-native scalar. Supported inputs: nil,
// int, int32, int64, float32, float64, string, bool.
func FromRaw(x any) (Value, error) {
	switch t := x.(type) {
	case nil:
		return Null(), nil
	case int:
		return Int(int64(t)), nil
	case int32:
		return Int(int64(t)), nil
	case int64:
		return Int(t), nil
	case float32:
		return Float(float64(t)), nil
	case float64:
		return Float(t), nil
	case string:
		return Text(t), nil
	case bool:
		return Bool(t), nil
	default:
		return Null(), fmt.Errorf("value: unsupported Go type %T", x)
	}
}

// Compare imposes a total order: NULL < BOOL < numerics < TEXT. INT and FLOAT
// compare numerically against each other. It returns -1, 0, or +1.
func Compare(a, b Value) int {
	ra, rb := rank(a.kind), rank(b.kind)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch {
	case a.kind == KindNull:
		return 0
	case a.kind == KindBool:
		return boolCmp(a.b, b.b)
	case a.Numeric():
		af, _ := a.Float64()
		bf, _ := b.Float64()
		// Exact int-int comparison avoids float rounding on large ints.
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			default:
				return 0
			}
		}
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	default: // text
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	}
}

func rank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	default:
		return 3
	}
}

func boolCmp(a, b bool) int {
	switch {
	case a == b:
		return 0
	case !a:
		return -1
	default:
		return 1
	}
}

// Equal reports SQL equality under the numeric coercions of Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// HashKey returns a string that is equal for equal values (under Equal) and
// is suitable as a Go map key for GROUP BY hashing. INT and FLOAT values that
// compare equal produce the same key.
func (v Value) HashKey() string {
	switch v.kind {
	case KindNull:
		return "\x00"
	case KindBool:
		if v.b {
			return "\x01t"
		}
		return "\x01f"
	case KindInt:
		return "\x02" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case KindFloat:
		return "\x02" + strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return "\x03" + v.s
	}
}

// Class partitions kinds the way HashKey's leading tag byte does: NULL,
// BOOL, numeric (INT and FLOAT share a class because they hash and compare
// as float64), and TEXT. The columnar executor keys group-by hash tables on
// (Class, ScalarBits) pairs instead of HashKey strings.
type Class uint8

// The value classes, in HashKey tag order.
const (
	ClassNull Class = iota
	ClassBool
	ClassNum
	ClassText
)

// canonicalNaN is the single bit pattern all NaNs normalize to, mirroring
// HashKey where every NaN formats as "NaN" and lands in one group.
var canonicalNaN = math.Float64bits(math.NaN())

// NumBits maps a float64 onto the 64-bit code space used by ScalarBits:
// the raw IEEE bits with every NaN collapsed to one pattern. Distinct
// non-NaN floats keep distinct codes (including -0 vs +0, which HashKey
// also separates: "-0" vs "0").
func NumBits(f float64) uint64 {
	if math.IsNaN(f) {
		return canonicalNaN
	}
	return math.Float64bits(f)
}

// ScalarBits returns a (class, bits) code such that two non-text values have
// equal codes if and only if their HashKeys are equal. TEXT values return
// ok=false — string identity needs a dictionary (see table.Dict); the caller
// keys text by dictionary code instead.
//
// INT values code through float64(i), exactly like HashKey formats them, so
// an INT and a FLOAT that compare equal share a code (and two huge ints that
// collapse to the same float64 share a group, as they always have).
func (v Value) ScalarBits() (cls Class, bits uint64, ok bool) {
	switch v.kind {
	case KindNull:
		return ClassNull, 0, true
	case KindBool:
		if v.b {
			return ClassBool, 1, true
		}
		return ClassBool, 0, true
	case KindInt:
		return ClassNum, NumBits(float64(v.i)), true
	case KindFloat:
		return ClassNum, NumBits(v.f), true
	default:
		return ClassText, 0, false
	}
}

// Coerce converts v to the target kind if a lossless/sane conversion exists:
// INT↔FLOAT, anything→its own kind, NULL→any. Other conversions error.
func Coerce(v Value, k Kind) (Value, error) {
	if v.kind == k || v.kind == KindNull {
		return v, nil
	}
	switch {
	case v.kind == KindInt && k == KindFloat:
		return Float(float64(v.i)), nil
	case v.kind == KindFloat && k == KindInt:
		return Int(int64(v.f)), nil
	default:
		return Null(), fmt.Errorf("value: cannot coerce %s to %s", v.kind, k)
	}
}

package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindText: "TEXT", KindBool: "BOOL",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKindAliases(t *testing.T) {
	cases := map[string]Kind{
		"INT": KindInt, "INTEGER": KindInt, "BIGINT": KindInt,
		"FLOAT": KindFloat, "DOUBLE": KindFloat, "REAL": KindFloat,
		"TEXT": KindText, "VARCHAR": KindText, "STRING": KindText,
		"BOOL": KindBool, "BOOLEAN": KindBool,
	}
	for name, want := range cases {
		got, err := ParseKind(name)
		if err != nil {
			t.Errorf("ParseKind(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("ParseKind(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseKind("BLOB"); err == nil {
		t.Error("ParseKind(BLOB) should fail")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 {
		t.Errorf("Int(42) broken: %v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float(2.5) broken: %v", v)
	}
	if v := Text("abc"); v.Kind() != KindText || v.AsText() != "abc" {
		t.Errorf("Text broken: %v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() {
		t.Errorf("Bool broken: %v", v)
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull broken")
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AsInt on Text should panic")
		}
	}()
	Text("x").AsInt()
}

func TestFloat64Coercions(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
	}{
		{Int(3), 3}, {Float(1.5), 1.5}, {Bool(true), 1}, {Bool(false), 0},
	}
	for _, c := range cases {
		got, err := c.v.Float64()
		if err != nil || got != c.want {
			t.Errorf("%v.Float64() = %v, %v; want %v", c.v, got, err, c.want)
		}
	}
	if f, err := Null().Float64(); err != nil || !math.IsNaN(f) {
		t.Errorf("Null().Float64() = %v, %v; want NaN", f, err)
	}
	if _, err := Text("x").Float64(); err == nil {
		t.Error("Text.Float64() should fail")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	// NULL < BOOL < numeric < TEXT
	ordered := []Value{
		Null(), Bool(false), Bool(true), Int(-5), Float(-1.5), Int(0),
		Float(0.5), Int(1), Int(7), Text(""), Text("a"), Text("b"),
	}
	for i := range ordered {
		for j := range ordered {
			c := Compare(ordered[i], ordered[j])
			switch {
			case i < j && c >= 0 && Compare(ordered[j], ordered[i]) <= 0:
				t.Errorf("Compare(%v,%v) = %d, want <0", ordered[i], ordered[j], c)
			case i == j && c != 0:
				t.Errorf("Compare(%v,%v) = %d, want 0", ordered[i], ordered[j], c)
			}
		}
	}
}

func TestCompareIntFloatMix(t *testing.T) {
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("Int(2) should equal Float(2.0)")
	}
	if Compare(Int(2), Float(2.5)) >= 0 {
		t.Error("Int(2) should be < Float(2.5)")
	}
	if Compare(Float(3.5), Int(3)) <= 0 {
		t.Error("Float(3.5) should be > Int(3)")
	}
	// Large ints compare exactly.
	big := int64(1) << 62
	if Compare(Int(big), Int(big+1)) != -1 {
		t.Error("large int comparison lost precision")
	}
}

func TestHashKeyEqualValuesEqualKeys(t *testing.T) {
	if Int(2).HashKey() != Float(2.0).HashKey() {
		t.Error("Int(2) and Float(2.0) must share a hash key")
	}
	if Int(2).HashKey() == Int(3).HashKey() {
		t.Error("distinct ints must differ")
	}
	if Text("2").HashKey() == Int(2).HashKey() {
		t.Error("Text(\"2\") must not collide with Int(2)")
	}
	if Null().HashKey() == Bool(false).HashKey() {
		t.Error("NULL must not collide with FALSE")
	}
}

func TestCompareConsistentWithHashKey(t *testing.T) {
	// Property: Equal(a,b) ⟺ same HashKey, over random numeric values.
	f := func(a int32, b float32) bool {
		va, vb := Int(int64(a)), Float(float64(b))
		return Equal(va, vb) == (va.HashKey() == vb.HashKey())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitivityProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		va, vb, vc := Float(a), Float(b), Float(c)
		if Compare(va, vb) <= 0 && Compare(vb, vc) <= 0 {
			return Compare(va, vc) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Int(-7), "-7"},
		{Float(2.5), "2.5"},
		{Text("hi"), "'hi'"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestRawRoundTrip(t *testing.T) {
	ins := []any{nil, int(5), int32(6), int64(7), float32(1.5), float64(2.5), "s", true}
	for _, in := range ins {
		v, err := FromRaw(in)
		if err != nil {
			t.Errorf("FromRaw(%v): %v", in, err)
			continue
		}
		switch x := in.(type) {
		case nil:
			if !v.IsNull() {
				t.Error("nil should round-trip to NULL")
			}
		case int:
			if v.Raw() != int64(x) {
				t.Errorf("int round trip: %v", v.Raw())
			}
		case int32:
			if v.Raw() != int64(x) {
				t.Errorf("int32 round trip: %v", v.Raw())
			}
		case float32:
			if v.Raw() != float64(x) {
				t.Errorf("float32 round trip: %v", v.Raw())
			}
		default:
			if v.Raw() != in {
				t.Errorf("round trip %v -> %v", in, v.Raw())
			}
		}
	}
	if _, err := FromRaw(struct{}{}); err == nil {
		t.Error("FromRaw(struct{}{}) should fail")
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce(Int(3), KindFloat)
	if err != nil || v.AsFloat() != 3 {
		t.Errorf("Coerce int->float: %v, %v", v, err)
	}
	v, err = Coerce(Float(3.9), KindInt)
	if err != nil || v.AsInt() != 3 {
		t.Errorf("Coerce float->int: %v, %v", v, err)
	}
	if v, err := Coerce(Null(), KindText); err != nil || !v.IsNull() {
		t.Errorf("NULL coerces to anything: %v, %v", v, err)
	}
	if _, err := Coerce(Text("x"), KindInt); err == nil {
		t.Error("text->int must fail")
	}
	if v, err := Coerce(Text("x"), KindText); err != nil || v.AsText() != "x" {
		t.Errorf("identity coerce: %v, %v", v, err)
	}
}

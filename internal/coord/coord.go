// Package coord implements the mosaic fleet coordinator: an HTTP process
// that owns a static shard membership list and answers the mosaic-serve wire
// protocol by fanning work out to N independent mosaic-serve shard
// processes.
//
// Topology: replicated data, partitioned compute. Every shard process holds
// the FULL dataset — /v1/exec scripts fan out to all shards under a
// generation handshake — and a scatter asks shard i for the partial
// aggregate states of slice i of N over its own copy (POST /v1/partial).
// The coordinator gathers the decoded partials in fixed shard order through
// the same exec.GatherPartials the in-process engine uses, so a fleet of N
// shards answers bit-identically to one engine opened with Options.Shards: N
// — and a fleet of 1 byte-identically to the row engine.
//
// Queries the partial plan cannot serve (OPEN visibility, non-aggregate
// shapes) pass through whole to shard 0, whose answer is relayed verbatim —
// valid precisely because every shard holds the full data.
//
// # Read replicas
//
// Each shard slot may additionally register follower replicas
// (Config.Replicas): mosaic-serve processes in -follow mode that tail that
// shard's primary. Reads — pass-through and scatter alike — then balance
// across the slot's primary and its caught-up replicas by EWMA latency,
// and fail over between them: a backend that cannot answer is skipped and
// the next candidate tried, so a dead follower degrades capacity, never
// availability. Replica answers are generation-gated twice: the
// coordinator only considers replicas whose last-polled generation equals
// the fleet's, and every request routed to a replica carries
// CheckGeneration so the follower itself refuses (409) if it lags or moves
// mid-query. A caught-up follower answers bit-identically to its primary
// at the same generation (the replication contract, internal/repl), so
// routing is invisible in answers. Writes (/v1/exec) fan out to primaries
// only; followers reject DDL/DML by design.
//
// Failure contract: a shard slot where NO backend can answer — primary and
// every caught-up replica unreachable, diverged, or mid-crash — turns the
// whole query into a 503 with a Retry-After hint. The coordinator never
// synthesizes an answer from a subset of shards: a wrong answer is worse
// than no answer.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mosaic/client"
	"mosaic/internal/exec"
	"mosaic/internal/sql"
	"mosaic/internal/value"
	"mosaic/internal/wire"
)

// deadlineHeader mirrors the mosaic-serve header: the client's remaining
// budget in milliseconds, intersected with the coordinator's own
// RequestTimeout and re-propagated to every shard call.
const deadlineHeader = "X-Mosaic-Deadline-Ms"

// Config configures a Coordinator.
type Config struct {
	// Shards are the shard primary base URLs, e.g. "http://127.0.0.1:7181".
	// The order is the fan-out order and part of the answer contract:
	// partial aggregate states merge in this order, and float addition does
	// not reassociate.
	Shards []string
	// Replicas maps a shard index to the base URLs of follower processes
	// replicating that shard's primary (mosaic-serve -follow). Replicas
	// serve reads only, and only while caught up to the fleet generation.
	Replicas map[int][]string
	// ReplicaPollInterval is how often replica generations are re-probed
	// for read eligibility. Default 250ms.
	ReplicaPollInterval time.Duration
	// Retry is the per-backend retry policy for idempotent calls (scatter,
	// pass-through, health). Zero-valued fields take client defaults.
	Retry client.RetryPolicy
	// RequestTimeout bounds every request end to end, intersected with any
	// client-propagated X-Mosaic-Deadline-Ms. Default 30s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ReplicaPollInterval <= 0 {
		c.ReplicaPollInterval = 250 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ValidateTopology checks a fleet layout before any process is dialed:
// every URL must parse with an http(s) scheme and a host, replica shard
// indices must address a configured shard, and no URL may appear twice
// across the primary and replica roles (one process cannot be both, and a
// duplicate primary would double-apply every exec).
func ValidateTopology(shards []string, replicas map[int][]string) error {
	if len(shards) == 0 {
		return errors.New("coord: no shards configured")
	}
	role := make(map[string]string, len(shards))
	for i, u := range shards {
		if err := validateURL(u); err != nil {
			return fmt.Errorf("coord: shard %d: %v", i, err)
		}
		if prev, dup := role[u]; dup {
			return fmt.Errorf("coord: %q is both %s and shard %d primary — every backend must be a distinct process", u, prev, i)
		}
		role[u] = fmt.Sprintf("shard %d primary", i)
	}
	for shard, urls := range replicas {
		if shard < 0 || shard >= len(shards) {
			return fmt.Errorf("coord: replicas configured for shard %d, but the fleet has shards 0..%d", shard, len(shards)-1)
		}
		for _, u := range urls {
			if err := validateURL(u); err != nil {
				return fmt.Errorf("coord: replica of shard %d: %v", shard, err)
			}
			if prev, dup := role[u]; dup {
				return fmt.Errorf("coord: %q is both %s and a replica of shard %d — every backend must be a distinct process", u, prev, shard)
			}
			role[u] = fmt.Sprintf("shard %d replica", shard)
		}
	}
	return nil
}

func validateURL(raw string) error {
	u, err := url.Parse(raw)
	if err != nil {
		return fmt.Errorf("bad URL %q: %v", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("URL %q must use an http or https scheme", raw)
	}
	if u.Host == "" {
		return fmt.Errorf("URL %q has no host", raw)
	}
	return nil
}

// backend is one read-serving process: a shard slot's primary or one of its
// follower replicas. The generation fields are the poller's last view (a
// replica is a read candidate only when its generation equals the fleet's);
// primaries are authoritative by definition and skip the poll.
type backend struct {
	url     string
	shard   int
	replica bool
	cli     *client.Client

	gen      atomic.Uint64 // last polled replicated generation (replicas)
	genKnown atomic.Bool   // false until the poller has reached it

	ewmaNs    atomic.Int64 // smoothed read latency, the balancing signal
	reads     atomic.Int64 // successful reads served
	failovers atomic.Int64 // reads that failed here and moved on
}

// observe folds one successful read's latency into the EWMA (α = 0.2).
// Lost updates under concurrency only soften the smoothing.
func (b *backend) observe(d time.Duration) {
	n := d.Nanoseconds()
	if old := b.ewmaNs.Load(); old > 0 {
		n = old + (n-old)/5
	}
	b.ewmaNs.Store(n)
}

// Coordinator fans the mosaic wire protocol over a fixed shard fleet.
type Coordinator struct {
	cfg      Config
	backends [][]*backend // [shard][0] = primary, rest replicas
	started  time.Time
	mux      *http.ServeMux

	// gen is the coordinator's view of the fleet's DDL/DML generation
	// counter. Every scatter carries it and every shard refuses (409) on
	// mismatch, so a shard that restarted empty or was mutated behind the
	// coordinator's back can never contribute a partial to an answer.
	gen atomic.Uint64
	// fleetMu serializes mutations against queries: exec fan-out holds the
	// write lock (the generation moves), reads hold the read lock.
	fleetMu sync.RWMutex

	queries      atomic.Int64
	scattered    atomic.Int64
	passThrough  atomic.Int64
	execs        atomic.Int64
	explains     atomic.Int64
	unavail      atomic.Int64
	shardErrors  atomic.Int64
	primaryReads atomic.Int64
	replicaReads atomic.Int64
	failovers    atomic.Int64

	closeOnce sync.Once
	pollStop  chan struct{}
	pollDone  chan struct{}
}

// New creates a Coordinator over cfg.Shards (+ cfg.Replicas). Call Sync
// before serving to adopt the fleet's current generation, and Close to stop
// the replica poller.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if err := ValidateTopology(cfg.Shards, cfg.Replicas); err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, started: time.Now()}
	replicas := 0
	for i, base := range cfg.Shards {
		slot := []*backend{{url: base, shard: i, cli: client.New(base, client.WithRetry(cfg.Retry))}}
		for _, ru := range cfg.Replicas[i] {
			slot = append(slot, &backend{url: ru, shard: i, replica: true, cli: client.New(ru, client.WithRetry(cfg.Retry))})
			replicas++
		}
		c.backends = append(c.backends, slot)
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/v1/query", c.handleQuery)
	c.mux.HandleFunc("/v1/exec", c.handleExec)
	c.mux.HandleFunc("/v1/explain", c.handleExplain)
	c.mux.HandleFunc("/healthz", c.handleHealth)
	c.mux.HandleFunc("/statsz", c.handleStats)
	if replicas > 0 {
		c.pollStop = make(chan struct{})
		c.pollDone = make(chan struct{})
		go c.pollReplicas()
	}
	return c, nil
}

// Close stops the replica generation poller (a no-op for replica-less
// fleets). In-flight requests are unaffected.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		if c.pollStop != nil {
			close(c.pollStop)
			<-c.pollDone
		}
	})
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Generation returns the coordinator's view of the fleet generation.
func (c *Coordinator) Generation() uint64 { return c.gen.Load() }

// Sync probes every primary's generation and adopts it when the fleet
// agrees. It is the boot handshake — a coordinator must not serve ahead of
// it — and the recovery path after a degraded exec.
func (c *Coordinator) Sync(ctx context.Context) error {
	c.fleetMu.Lock()
	defer c.fleetMu.Unlock()
	gens, err := c.probeGenerations(ctx)
	if err != nil {
		return err
	}
	for i, g := range gens {
		if g != gens[0] {
			return fmt.Errorf("coord: shard generations diverged: shard 0 at %d, shard %d at %d", gens[0], i, g)
		}
	}
	c.gen.Store(gens[0])
	return nil
}

// probeGenerations fetches every primary's /statsz generation in parallel.
// Callers hold fleetMu.
func (c *Coordinator) probeGenerations(ctx context.Context) ([]uint64, error) {
	gens := make([]uint64, len(c.backends))
	errs := make([]error, len(c.backends))
	var wg sync.WaitGroup
	for i := range c.backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.backends[i][0].cli.StatsContext(ctx)
			if err != nil {
				errs[i] = err
				return
			}
			gens[i] = st.Generation
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("coord: shard %d (%s): %v", i, c.cfg.Shards[i], err)
		}
	}
	return gens, nil
}

// pollReplicas keeps every replica's replicated generation fresh: a replica
// is a read candidate only while its last-polled generation matches the
// fleet's, so a lagging or unreachable follower silently leaves the rotation
// and rejoins once caught up. Polling is advisory — the authoritative gate
// is the CheckGeneration handshake on every routed request.
func (c *Coordinator) pollReplicas() {
	defer close(c.pollDone)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		var wg sync.WaitGroup
		for _, slot := range c.backends {
			for _, b := range slot[1:] {
				wg.Add(1)
				go func(b *backend) {
					defer wg.Done()
					st, err := b.cli.StatsContext(ctx)
					if err != nil {
						b.genKnown.Store(false)
						return
					}
					b.gen.Store(st.Generation)
					b.genKnown.Store(true)
				}(b)
			}
		}
		wg.Wait()
		cancel()
		select {
		case <-c.pollStop:
			return
		case <-time.After(c.cfg.ReplicaPollInterval):
		}
	}
}

// readCandidates returns the backends eligible to serve a read for one
// shard slot, cheapest EWMA first: the primary (always — it is the
// authority of last resort) plus every replica whose polled generation
// matches the fleet's. A replica that lags is never consulted at all.
func (c *Coordinator) readCandidates(shard int) []*backend {
	gen := c.gen.Load()
	slot := c.backends[shard]
	cands := make([]*backend, 0, len(slot))
	for _, b := range slot {
		if b.replica && !(b.genKnown.Load() && b.gen.Load() == gen) {
			continue
		}
		cands = append(cands, b)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].ewmaNs.Load() < cands[j].ewmaNs.Load()
	})
	return cands
}

// countRead tallies a successful routed read on b.
func (c *Coordinator) countRead(b *backend) {
	b.reads.Add(1)
	if b.replica {
		c.replicaReads.Add(1)
	} else {
		c.primaryReads.Add(1)
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, wire.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeUnavailable answers 503 with a Retry-After hint — the coordinator's
// only failure answer for shard trouble; it never serves a partial result.
func (c *Coordinator) writeUnavailable(w http.ResponseWriter, hint time.Duration, format string, args ...any) {
	c.unavail.Add(1)
	secs := int(hint.Round(time.Second).Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusServiceUnavailable, format, args...)
}

// decodeBody decodes a JSON body under the MaxBodyBytes cap (413 oversized,
// 400 malformed), reporting success.
func (c *Coordinator) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	body := http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds the %d-byte limit", mbe.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// requestCtx derives the request's end-to-end deadline: RequestTimeout
// intersected with any propagated X-Mosaic-Deadline-Ms. The remaining budget
// re-propagates to every shard call through the client's own header logic.
func (c *Coordinator) requestCtx(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	timeout := c.cfg.RequestTimeout
	if raw := r.Header.Get(deadlineHeader); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad %s %q: want integer milliseconds", deadlineHeader, raw)
			return nil, nil, false
		}
		budget := time.Duration(ms) * time.Millisecond
		if budget <= 0 {
			c.writeUnavailable(w, time.Second, "deadline already expired (budget %s)", budget)
			return nil, nil, false
		}
		if budget < timeout {
			timeout = budget
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, true
}

// relayRemote relays a backend's answer for non-routed paths: deterministic
// engine answers (4xx) travel verbatim; everything else — transport
// failures, backend 5xx — becomes the coordinator's own 503.
func (c *Coordinator) relayRemote(w http.ResponseWriter, err error, what string) {
	c.shardErrors.Add(1)
	var re *client.RemoteError
	if errors.As(err, &re) {
		if re.StatusCode/100 == 4 {
			writeError(w, re.StatusCode, "%s", re.Message)
			return
		}
		c.writeUnavailable(w, re.RetryAfter, "%s unavailable: %s", what, re.Message)
		return
	}
	c.writeUnavailable(w, 0, "%s unreachable: %v", what, err)
}

// readUnavailable turns the LAST failover error for a shard slot into the
// coordinator's 503 — reached only after every candidate backend failed.
func (c *Coordinator) readUnavailable(w http.ResponseWriter, err error, shard int) {
	var re *client.RemoteError
	if errors.As(err, &re) {
		if re.StatusCode == http.StatusConflict {
			c.writeUnavailable(w, re.RetryAfter, "shard %d diverged from fleet generation %d: %s", shard, c.gen.Load(), re.Message)
			return
		}
		c.writeUnavailable(w, re.RetryAfter, "shard %d unavailable on every backend: %s", shard, re.Message)
		return
	}
	c.writeUnavailable(w, 0, "shard %d unreachable on every backend: %v", shard, err)
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req wire.QueryRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	sel, err := sql.ParseQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, ok := c.requestCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	c.queries.Add(1)
	c.fleetMu.RLock()
	defer c.fleetMu.RUnlock()
	// OPEN queries train generative models on the unified view and
	// non-aggregate shapes return raw tuples — neither decomposes into
	// mergeable partial states. Both pass through whole; every shard holds
	// the full data, so shard 0's answer IS the fleet's answer.
	if sel.Visibility == sql.VisibilityOpen || !sel.HasAggregates() {
		c.passQueryLocked(ctx, w, &req)
		return
	}
	c.scatterQueryLocked(ctx, w, &req, sel)
}

// passQueryLocked relays the whole query to shard slot 0 — primary or any
// caught-up replica, cheapest first — and the winning answer verbatim,
// failing over until a backend answers. Callers hold fleetMu.RLock.
func (c *Coordinator) passQueryLocked(ctx context.Context, w http.ResponseWriter, req *wire.QueryRequest) {
	gen := c.gen.Load()
	var lastErr error
	for _, b := range c.readCandidates(0) {
		rq := *req
		if b.replica {
			// Pin the replica to the fleet generation: a follower that lags
			// or catches up mid-query refuses instead of answering from a
			// different state than the primary's.
			rq.Generation = gen
			rq.CheckGeneration = true
		}
		start := time.Now()
		res, err := b.cli.QueryRawContext(ctx, &rq)
		if err == nil {
			b.observe(time.Since(start))
			c.countRead(b)
			c.passThrough.Add(1)
			writeJSON(w, http.StatusOK, res)
			return
		}
		c.shardErrors.Add(1)
		var re *client.RemoteError
		if errors.As(err, &re) && re.StatusCode/100 == 4 && re.StatusCode != http.StatusConflict {
			// Deterministic engine errors answer identically on every
			// backend: relay, don't fail over.
			writeError(w, re.StatusCode, "%s", re.Message)
			return
		}
		b.failovers.Add(1)
		c.failovers.Add(1)
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	c.readUnavailable(w, lastErr, 0)
}

// shardPartial runs one shard slot's scatter leg with failover: try every
// eligible backend (cheapest EWMA first) until one returns the slot's
// partial states. Deterministic engine errors (4xx except the generation
// 409) return immediately — they answer identically everywhere.
func (c *Coordinator) shardPartial(ctx context.Context, shard int, req *wire.PartialRequest) (*wire.PartialResponse, error) {
	var lastErr error
	for _, b := range c.readCandidates(shard) {
		start := time.Now()
		resp, err := b.cli.PartialContext(ctx, req)
		if err == nil {
			b.observe(time.Since(start))
			c.countRead(b)
			return resp, nil
		}
		c.shardErrors.Add(1)
		lastErr = err
		var re *client.RemoteError
		if errors.As(err, &re) && re.StatusCode/100 == 4 && re.StatusCode != http.StatusConflict {
			return nil, err
		}
		b.failovers.Add(1)
		c.failovers.Add(1)
		if ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

// scatterQueryLocked fans the partial plan over every shard slot, gathers
// the states in fixed shard order, and finishes the aggregation (merge,
// HAVING, ORDER BY, LIMIT) locally. Each slot fails over across its
// backends; a slot where every backend fails, declines, or answers at the
// wrong generation aborts the whole answer. Callers hold fleetMu.RLock.
func (c *Coordinator) scatterQueryLocked(ctx context.Context, w http.ResponseWriter, req *wire.QueryRequest, sel *sql.Select) {
	gen := c.gen.Load()
	n := len(c.backends)
	resps := make([]*wire.PartialResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = c.shardPartial(ctx, i, &wire.PartialRequest{
				Query:           req.Query,
				Params:          req.Params,
				Shard:           i,
				Shards:          n,
				Generation:      gen,
				CheckGeneration: true,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue
		}
		var re *client.RemoteError
		if errors.As(err, &re) {
			switch {
			case re.StatusCode == http.StatusConflict:
				// Every backend of the slot answered from a diverged or
				// moving generation: refusing is the whole point of the
				// handshake — never answer from it.
				c.writeUnavailable(w, re.RetryAfter, "shard %d diverged from fleet generation %d: %s", i, gen, re.Message)
			case re.StatusCode/100 == 4:
				// Deterministic engine errors (unknown relation, unanswerable
				// visibility) fail identically on every shard; relay the first.
				writeError(w, re.StatusCode, "%s", re.Message)
			default:
				c.writeUnavailable(w, re.RetryAfter, "shard %d unavailable on every backend: %s", i, re.Message)
			}
		} else {
			c.writeUnavailable(w, 0, "shard %d unreachable on every backend: %v", i, err)
		}
		return
	}
	for _, resp := range resps {
		if !resp.Handled {
			// The plan shape is not partial-executable on this engine (e.g.
			// row-path only). Every shard runs the same engine version, so
			// fall back to one whole pass-through query.
			c.passQueryLocked(ctx, w, req)
			return
		}
	}
	partials := make([]*exec.ShardPartial, n)
	for i, resp := range resps {
		p, err := wire.DecodePartial(resp)
		if err != nil {
			c.shardErrors.Add(1)
			writeError(w, http.StatusBadGateway, "shard %d answer undecodable: %v", i, err)
			return
		}
		partials[i] = p
	}
	vals, err := wire.DecodeValues(req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad parameters: %v", err)
		return
	}
	bound, err := sql.BindParams(sel, vals)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := exec.GatherPartials(ctx, bound, partials)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	c.scattered.Add(1)
	writeJSON(w, http.StatusOK, wire.EncodeResult(res))
}

func (c *Coordinator) handleExec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req wire.ExecRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	ctx, cancel, ok := c.requestCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	c.execs.Add(1)
	// The generation moves: hold the write lock so no read consults a
	// half-updated fleet. Writes go to primaries ONLY — followers replicate
	// them through the statement log and reject direct DDL/DML.
	c.fleetMu.Lock()
	defer c.fleetMu.Unlock()
	n := len(c.backends)
	resps := make([]*wire.ExecResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = c.backends[i][0].cli.ExecRawContext(ctx, req.Script)
		}(i)
	}
	wg.Wait()
	var firstErr error
	failed := false
	for _, err := range errs {
		if err != nil {
			failed = true
			if firstErr == nil {
				firstErr = err
			}
			c.shardErrors.Add(1)
		}
	}
	if !failed {
		for i, resp := range resps {
			if resp.Generation != resps[0].Generation {
				// All shards applied the script yet disagree on the counter:
				// they were divergent before this exec. Do NOT adopt either
				// side — the stale coordinator generation makes every future
				// scatter 409 into a clean 503 until an operator intervenes.
				c.cfg.Logf("coord: exec left shards diverged: shard 0 at %d, shard %d at %d", resps[0].Generation, i, resp.Generation)
				writeError(w, http.StatusBadGateway, "fleet degraded: shard generations diverged after exec (shard 0 at %d, shard %d at %d)", resps[0].Generation, i, resp.Generation)
				return
			}
		}
		c.gen.Store(resps[0].Generation)
		writeJSON(w, http.StatusOK, resps[0])
		return
	}
	// At least one shard failed. A deterministic script error (bad SQL,
	// unknown table) fails identically everywhere and still bumps each
	// shard's generation identically — probe to confirm the fleet converged,
	// adopt the agreed counter, and relay the engine's error. Anything else
	// leaves the coordinator's generation stale on purpose: divergent shards
	// must answer 409, not wrong partials.
	probeCtx, probeCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer probeCancel()
	gens, perr := c.probeGenerations(probeCtx)
	if perr == nil {
		agreed := true
		for _, g := range gens {
			if g != gens[0] {
				agreed = false
				break
			}
		}
		if agreed {
			c.gen.Store(gens[0])
			c.relayRemote(w, firstErr, "exec fan-out")
			return
		}
	}
	c.cfg.Logf("coord: exec fan-out degraded the fleet: %v (probe: %v)", firstErr, perr)
	writeError(w, http.StatusBadGateway, "fleet degraded: exec failed on some shards and generations diverged: %v", firstErr)
}

func (c *Coordinator) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	sel, err := sql.ParseQuery(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, ok := c.requestCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	c.explains.Add(1)
	c.fleetMu.RLock()
	defer c.fleetMu.RUnlock()
	shardPlan, err := c.backends[0][0].cli.ExplainContext(ctx, q)
	if err != nil {
		c.relayRemote(w, err, "shard 0")
		return
	}
	mode := fmt.Sprintf("scatter-gather over %d shard processes, partial states merged in shard order", len(c.backends))
	if sel.Visibility == sql.VisibilityOpen || !sel.HasAggregates() {
		mode = "pass-through to shard 0 (not partial-executable; every shard holds the full data)"
	}
	res := &exec.Result{Columns: []string{"property", "value"}}
	res.Rows = append(res.Rows,
		[]value.Value{value.Text("fleet"), value.Text(mode)},
		[]value.Value{value.Text("fleet generation"), value.Text(strconv.FormatUint(c.gen.Load(), 10))},
	)
	if nr, eligible := c.replicaCounts(); nr > 0 {
		res.Rows = append(res.Rows, []value.Value{
			value.Text("replicas"),
			value.Text(fmt.Sprintf("reads fan out over %d follower replicas (%d caught up to generation %d) plus primaries, balanced by EWMA latency with failover", nr, eligible, c.gen.Load())),
		})
	}
	res.Rows = append(res.Rows, shardPlan.Rows...)
	writeJSON(w, http.StatusOK, wire.EncodeResult(res))
}

// replicaCounts reports how many replicas are configured and how many are
// currently caught up to the fleet generation.
func (c *Coordinator) replicaCounts() (total, caughtUp int) {
	gen := c.gen.Load()
	for _, slot := range c.backends {
		for _, b := range slot[1:] {
			total++
			if b.genKnown.Load() && b.gen.Load() == gen {
				caughtUp++
			}
		}
	}
	return total, caughtUp
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	out := wire.CoordHealthResponse{
		Status:     "ok",
		UptimeSecs: time.Since(c.started).Seconds(),
		Shards:     make(map[string]bool, len(c.backends)),
	}
	type probe struct {
		b     *backend
		alive bool
	}
	var probes []*probe
	for _, slot := range c.backends {
		for _, b := range slot {
			probes = append(probes, &probe{b: b})
		}
	}
	var wg sync.WaitGroup
	for _, p := range probes {
		wg.Add(1)
		go func(p *probe) {
			defer wg.Done()
			_, err := p.b.cli.HealthContext(ctx)
			p.alive = err == nil
		}(p)
	}
	wg.Wait()
	for _, p := range probes {
		if p.b.replica {
			if out.Replicas == nil {
				out.Replicas = make(map[string]bool)
			}
			out.Replicas[fmt.Sprintf("%d/%s", p.b.shard, p.b.url)] = p.alive
		} else {
			out.Shards[p.b.url] = p.alive
		}
		if !p.alive {
			out.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	gen := c.gen.Load()
	out := wire.CoordStatsResponse{
		UptimeSecs:   time.Since(c.started).Seconds(),
		Shards:       append([]string(nil), c.cfg.Shards...),
		Generation:   gen,
		Queries:      c.queries.Load(),
		Scattered:    c.scattered.Load(),
		PassThrough:  c.passThrough.Load(),
		Execs:        c.execs.Load(),
		Explains:     c.explains.Load(),
		Unavailable:  c.unavail.Load(),
		ShardErrors:  c.shardErrors.Load(),
		PrimaryReads: c.primaryReads.Load(),
		ReplicaReads: c.replicaReads.Load(),
		Failovers:    c.failovers.Load(),
	}
	for _, slot := range c.backends {
		for _, b := range slot {
			bs := wire.BackendStats{
				Shard:     b.shard,
				URL:       b.url,
				Role:      "primary",
				Reads:     b.reads.Load(),
				Failovers: b.failovers.Load(),
				EWMAMs:    float64(b.ewmaNs.Load()) / 1e6,
			}
			if b.replica {
				bs.Role = "replica"
				if b.genKnown.Load() {
					bs.Generation = b.gen.Load()
					if bs.Generation <= gen {
						bs.Lag = gen - bs.Generation
					}
					bs.CaughtUp = bs.Generation == gen
				}
			} else {
				bs.Generation = gen
				bs.CaughtUp = true
			}
			out.Backends = append(out.Backends, bs)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

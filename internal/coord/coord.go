// Package coord implements the mosaic fleet coordinator: an HTTP process
// that owns a static shard membership list and answers the mosaic-serve wire
// protocol by fanning work out to N independent mosaic-serve shard
// processes.
//
// Topology: replicated data, partitioned compute. Every shard process holds
// the FULL dataset — /v1/exec scripts fan out to all shards under a
// generation handshake — and a scatter asks shard i for the partial
// aggregate states of slice i of N over its own copy (POST /v1/partial).
// The coordinator gathers the decoded partials in fixed shard order through
// the same exec.GatherPartials the in-process engine uses, so a fleet of N
// shards answers bit-identically to one engine opened with Options.Shards: N
// — and a fleet of 1 byte-identically to the row engine.
//
// Queries the partial plan cannot serve (OPEN visibility, non-aggregate
// shapes) pass through whole to shard 0, whose answer is relayed verbatim —
// valid precisely because every shard holds the full data.
//
// Failure contract: a shard that cannot answer — unreachable after retries,
// at a diverged generation, or mid-crash — turns the whole query into a 503
// with a Retry-After hint. The coordinator never synthesizes an answer from
// a subset of shards: a wrong answer is worse than no answer.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mosaic/client"
	"mosaic/internal/exec"
	"mosaic/internal/sql"
	"mosaic/internal/value"
	"mosaic/internal/wire"
)

// deadlineHeader mirrors the mosaic-serve header: the client's remaining
// budget in milliseconds, intersected with the coordinator's own
// RequestTimeout and re-propagated to every shard call.
const deadlineHeader = "X-Mosaic-Deadline-Ms"

// Config configures a Coordinator.
type Config struct {
	// Shards are the shard base URLs, e.g. "http://127.0.0.1:7181". The order
	// is the fan-out order and part of the answer contract: partial aggregate
	// states merge in this order, and float addition does not reassociate.
	Shards []string
	// Retry is the per-shard retry policy for idempotent calls (scatter,
	// pass-through, health). Zero-valued fields take client defaults.
	Retry client.RetryPolicy
	// RequestTimeout bounds every request end to end, intersected with any
	// client-propagated X-Mosaic-Deadline-Ms. Default 30s.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies. Default 1 MiB.
	MaxBodyBytes int64
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Coordinator fans the mosaic wire protocol over a fixed shard fleet.
type Coordinator struct {
	cfg     Config
	shards  []*client.Client
	started time.Time
	mux     *http.ServeMux

	// gen is the coordinator's view of the fleet's DDL/DML generation
	// counter. Every scatter carries it and every shard refuses (409) on
	// mismatch, so a shard that restarted empty or was mutated behind the
	// coordinator's back can never contribute a partial to an answer.
	gen atomic.Uint64
	// fleetMu serializes mutations against queries: exec fan-out holds the
	// write lock (the generation moves), scatters hold the read lock.
	fleetMu sync.RWMutex

	queries     atomic.Int64
	scattered   atomic.Int64
	passThrough atomic.Int64
	execs       atomic.Int64
	explains    atomic.Int64
	unavail     atomic.Int64
	shardErrors atomic.Int64
}

// New creates a Coordinator over cfg.Shards. Call Sync before serving to
// adopt the fleet's current generation.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("coord: no shards configured")
	}
	c := &Coordinator{cfg: cfg, started: time.Now()}
	for _, base := range cfg.Shards {
		u, err := url.Parse(base)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("coord: bad shard URL %q", base)
		}
		c.shards = append(c.shards, client.New(base, client.WithRetry(cfg.Retry)))
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("/v1/query", c.handleQuery)
	c.mux.HandleFunc("/v1/exec", c.handleExec)
	c.mux.HandleFunc("/v1/explain", c.handleExplain)
	c.mux.HandleFunc("/healthz", c.handleHealth)
	c.mux.HandleFunc("/statsz", c.handleStats)
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Generation returns the coordinator's view of the fleet generation.
func (c *Coordinator) Generation() uint64 { return c.gen.Load() }

// Sync probes every shard's generation and adopts it when the fleet agrees.
// It is the boot handshake — a coordinator must not serve ahead of it — and
// the recovery path after a degraded exec.
func (c *Coordinator) Sync(ctx context.Context) error {
	c.fleetMu.Lock()
	defer c.fleetMu.Unlock()
	gens, err := c.probeGenerations(ctx)
	if err != nil {
		return err
	}
	for i, g := range gens {
		if g != gens[0] {
			return fmt.Errorf("coord: shard generations diverged: shard 0 at %d, shard %d at %d", gens[0], i, g)
		}
	}
	c.gen.Store(gens[0])
	return nil
}

// probeGenerations fetches every shard's /statsz generation in parallel.
// Callers hold fleetMu.
func (c *Coordinator) probeGenerations(ctx context.Context) ([]uint64, error) {
	gens := make([]uint64, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.shards[i].StatsContext(ctx)
			if err != nil {
				errs[i] = err
				return
			}
			gens[i] = st.Generation
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("coord: shard %d (%s): %v", i, c.cfg.Shards[i], err)
		}
	}
	return gens, nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, wire.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeUnavailable answers 503 with a Retry-After hint — the coordinator's
// only failure answer for shard trouble; it never serves a partial result.
func (c *Coordinator) writeUnavailable(w http.ResponseWriter, hint time.Duration, format string, args ...any) {
	c.unavail.Add(1)
	secs := int(hint.Round(time.Second).Seconds())
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusServiceUnavailable, format, args...)
}

// decodeBody decodes a JSON body under the MaxBodyBytes cap (413 oversized,
// 400 malformed), reporting success.
func (c *Coordinator) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	body := http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds the %d-byte limit", mbe.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// requestCtx derives the request's end-to-end deadline: RequestTimeout
// intersected with any propagated X-Mosaic-Deadline-Ms. The remaining budget
// re-propagates to every shard call through the client's own header logic.
func (c *Coordinator) requestCtx(w http.ResponseWriter, r *http.Request) (context.Context, context.CancelFunc, bool) {
	timeout := c.cfg.RequestTimeout
	if raw := r.Header.Get(deadlineHeader); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad %s %q: want integer milliseconds", deadlineHeader, raw)
			return nil, nil, false
		}
		budget := time.Duration(ms) * time.Millisecond
		if budget <= 0 {
			c.writeUnavailable(w, time.Second, "deadline already expired (budget %s)", budget)
			return nil, nil, false
		}
		if budget < timeout {
			timeout = budget
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, true
}

// relayRemote relays a shard's answer for pass-through paths: deterministic
// engine answers (4xx) travel verbatim; everything else — transport
// failures, shard 5xx — becomes the coordinator's own 503.
func (c *Coordinator) relayRemote(w http.ResponseWriter, err error, what string) {
	c.shardErrors.Add(1)
	var re *client.RemoteError
	if errors.As(err, &re) {
		if re.StatusCode/100 == 4 {
			writeError(w, re.StatusCode, "%s", re.Message)
			return
		}
		c.writeUnavailable(w, re.RetryAfter, "%s unavailable: %s", what, re.Message)
		return
	}
	c.writeUnavailable(w, 0, "%s unreachable: %v", what, err)
}

func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req wire.QueryRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	sel, err := sql.ParseQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, ok := c.requestCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	c.queries.Add(1)
	// OPEN queries train generative models on the unified view and
	// non-aggregate shapes return raw tuples — neither decomposes into
	// mergeable partial states. Both pass through whole; every shard holds
	// the full data, so shard 0's answer IS the fleet's answer.
	if sel.Visibility == sql.VisibilityOpen || !sel.HasAggregates() {
		c.passQuery(ctx, w, &req)
		return
	}
	c.scatterQuery(ctx, w, &req, sel)
}

// passQuery relays the whole query to shard 0 and its answer verbatim.
func (c *Coordinator) passQuery(ctx context.Context, w http.ResponseWriter, req *wire.QueryRequest) {
	c.fleetMu.RLock()
	defer c.fleetMu.RUnlock()
	res, err := c.shards[0].QueryRawContext(ctx, req)
	if err != nil {
		c.relayRemote(w, err, "shard 0")
		return
	}
	c.passThrough.Add(1)
	writeJSON(w, http.StatusOK, res)
}

// scatterQuery fans the partial plan over every shard, gathers the states in
// fixed shard order, and finishes the aggregation (merge, HAVING, ORDER BY,
// LIMIT) locally. Any shard failing, declining, or answering at the wrong
// generation aborts the whole answer.
func (c *Coordinator) scatterQuery(ctx context.Context, w http.ResponseWriter, req *wire.QueryRequest, sel *sql.Select) {
	c.fleetMu.RLock()
	defer c.fleetMu.RUnlock()
	gen := c.gen.Load()
	n := len(c.shards)
	resps := make([]*wire.PartialResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = c.shards[i].PartialContext(ctx, &wire.PartialRequest{
				Query:           req.Query,
				Params:          req.Params,
				Shard:           i,
				Shards:          n,
				Generation:      gen,
				CheckGeneration: true,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			continue
		}
		c.shardErrors.Add(1)
		var re *client.RemoteError
		if errors.As(err, &re) {
			switch {
			case re.StatusCode == http.StatusConflict:
				// The shard's data diverged from the fleet: refusing is the
				// whole point of the handshake — never answer from it.
				c.writeUnavailable(w, re.RetryAfter, "shard %d diverged from fleet generation %d: %s", i, gen, re.Message)
			case re.StatusCode/100 == 4:
				// Deterministic engine errors (unknown relation, unanswerable
				// visibility) fail identically on every shard; relay the first.
				writeError(w, re.StatusCode, "%s", re.Message)
			default:
				c.writeUnavailable(w, re.RetryAfter, "shard %d unavailable: %s", i, re.Message)
			}
		} else {
			c.writeUnavailable(w, 0, "shard %d unreachable: %v", i, err)
		}
		return
	}
	for _, resp := range resps {
		if !resp.Handled {
			// The plan shape is not partial-executable on this engine (e.g.
			// row-path only). Every shard runs the same engine version, so
			// fall back to one whole pass-through query.
			c.passQuery(ctx, w, req)
			return
		}
	}
	partials := make([]*exec.ShardPartial, n)
	for i, resp := range resps {
		p, err := wire.DecodePartial(resp)
		if err != nil {
			c.shardErrors.Add(1)
			writeError(w, http.StatusBadGateway, "shard %d answer undecodable: %v", i, err)
			return
		}
		partials[i] = p
	}
	vals, err := wire.DecodeValues(req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad parameters: %v", err)
		return
	}
	bound, err := sql.BindParams(sel, vals)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := exec.GatherPartials(ctx, bound, partials)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	c.scattered.Add(1)
	writeJSON(w, http.StatusOK, wire.EncodeResult(res))
}

func (c *Coordinator) handleExec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req wire.ExecRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	ctx, cancel, ok := c.requestCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	c.execs.Add(1)
	// The generation moves: hold the write lock so no scatter reads a
	// half-updated fleet.
	c.fleetMu.Lock()
	defer c.fleetMu.Unlock()
	n := len(c.shards)
	resps := make([]*wire.ExecResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = c.shards[i].ExecRawContext(ctx, req.Script)
		}(i)
	}
	wg.Wait()
	var firstErr error
	failed := false
	for _, err := range errs {
		if err != nil {
			failed = true
			if firstErr == nil {
				firstErr = err
			}
			c.shardErrors.Add(1)
		}
	}
	if !failed {
		for i, resp := range resps {
			if resp.Generation != resps[0].Generation {
				// All shards applied the script yet disagree on the counter:
				// they were divergent before this exec. Do NOT adopt either
				// side — the stale coordinator generation makes every future
				// scatter 409 into a clean 503 until an operator intervenes.
				c.cfg.Logf("coord: exec left shards diverged: shard 0 at %d, shard %d at %d", resps[0].Generation, i, resp.Generation)
				writeError(w, http.StatusBadGateway, "fleet degraded: shard generations diverged after exec (shard 0 at %d, shard %d at %d)", resps[0].Generation, i, resp.Generation)
				return
			}
		}
		c.gen.Store(resps[0].Generation)
		writeJSON(w, http.StatusOK, resps[0])
		return
	}
	// At least one shard failed. A deterministic script error (bad SQL,
	// unknown table) fails identically everywhere and still bumps each
	// shard's generation identically — probe to confirm the fleet converged,
	// adopt the agreed counter, and relay the engine's error. Anything else
	// leaves the coordinator's generation stale on purpose: divergent shards
	// must answer 409, not wrong partials.
	probeCtx, probeCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer probeCancel()
	gens, perr := c.probeGenerations(probeCtx)
	if perr == nil {
		agreed := true
		for _, g := range gens {
			if g != gens[0] {
				agreed = false
				break
			}
		}
		if agreed {
			c.gen.Store(gens[0])
			c.relayRemote(w, firstErr, "exec fan-out")
			return
		}
	}
	c.cfg.Logf("coord: exec fan-out degraded the fleet: %v (probe: %v)", firstErr, perr)
	writeError(w, http.StatusBadGateway, "fleet degraded: exec failed on some shards and generations diverged: %v", firstErr)
}

func (c *Coordinator) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	sel, err := sql.ParseQuery(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel, ok := c.requestCtx(w, r)
	if !ok {
		return
	}
	defer cancel()
	c.explains.Add(1)
	c.fleetMu.RLock()
	defer c.fleetMu.RUnlock()
	shardPlan, err := c.shards[0].ExplainContext(ctx, q)
	if err != nil {
		c.relayRemote(w, err, "shard 0")
		return
	}
	mode := fmt.Sprintf("scatter-gather over %d shard processes, partial states merged in shard order", len(c.shards))
	if sel.Visibility == sql.VisibilityOpen || !sel.HasAggregates() {
		mode = "pass-through to shard 0 (not partial-executable; every shard holds the full data)"
	}
	res := &exec.Result{Columns: []string{"property", "value"}}
	res.Rows = append(res.Rows,
		[]value.Value{value.Text("fleet"), value.Text(mode)},
		[]value.Value{value.Text("fleet generation"), value.Text(strconv.FormatUint(c.gen.Load(), 10))},
	)
	res.Rows = append(res.Rows, shardPlan.Rows...)
	writeJSON(w, http.StatusOK, wire.EncodeResult(res))
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
	defer cancel()
	out := wire.CoordHealthResponse{
		Status:     "ok",
		UptimeSecs: time.Since(c.started).Seconds(),
		Shards:     make(map[string]bool, len(c.shards)),
	}
	alive := make([]bool, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			alive[i] = c.shards[i].HealthContext(ctx) == nil
		}(i)
	}
	wg.Wait()
	for i, ok := range alive {
		out.Shards[c.cfg.Shards[i]] = ok
		if !ok {
			out.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, wire.CoordStatsResponse{
		UptimeSecs:  time.Since(c.started).Seconds(),
		Shards:      append([]string(nil), c.cfg.Shards...),
		Generation:  c.gen.Load(),
		Queries:     c.queries.Load(),
		Scattered:   c.scattered.Load(),
		PassThrough: c.passThrough.Load(),
		Execs:       c.execs.Load(),
		Explains:    c.explains.Load(),
		Unavailable: c.unavail.Load(),
		ShardErrors: c.shardErrors.Load(),
	})
}

package coord_test

import (
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mosaic"
	"mosaic/client"
)

// TestReplicationProcessSmoke is the replication story with real processes:
// a primary mosaic-serve, a `mosaic-serve -follow` replica that bootstraps
// over real HTTP, and a coordinator registered with both. Routed reads must
// answer byte-identical bytes, writes must replicate to the follower within
// its poll interval, and a SIGKILL of the follower must never produce a
// wrong, partial, or unnecessarily failed read while the primary survives.
func TestReplicationProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots real processes")
	}
	script, opts := worldScript(t)
	dir := t.TempDir()
	serveBin := filepath.Join(dir, "mosaic-serve")
	coordBin := filepath.Join(dir, "mosaic-coord")
	for bin, pkg := range map[string]string{serveBin: "mosaic/cmd/mosaic-serve", coordBin: "mosaic/cmd/mosaic-coord"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	init := filepath.Join(dir, "world.sql")
	if err := os.WriteFile(init, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}

	primaryAddr := procAddr(t)
	startProc(t, serveBin, "-addr", primaryAddr, "-seed", "1", init)
	waitUp(t, client.New("http://"+primaryAddr))

	// The follower bootstraps its whole state from the primary over HTTP —
	// no init script, same engine options (the replay determinism contract).
	followerAddr := procAddr(t)
	followerProc := startProc(t, serveBin,
		"-addr", followerAddr,
		"-seed", "1",
		"-follow", "http://"+primaryAddr,
		"-follow-interval", "50ms")
	waitUp(t, client.New("http://"+followerAddr))

	// The follower is read-only: DDL/DML straight at it answers 403.
	var re *client.RemoteError
	if err := client.New("http://"+followerAddr).Exec("CREATE TABLE Nope (v INT)"); !asRemote(err, &re) || re.StatusCode != http.StatusForbidden {
		t.Fatalf("exec on the follower process: %v, want 403", err)
	}

	coordAddr := procAddr(t)
	coordProc := startProc(t, coordBin,
		"-addr", coordAddr,
		"-shards", "http://"+primaryAddr,
		"-replicas", "0=http://"+followerAddr,
		"-replica-poll", "50ms",
		"-boot-timeout", "30s")
	coordURL := "http://" + coordAddr
	cc := client.New(coordURL)
	waitUp(t, cc)
	waitCaughtUp(t, coordURL, 1)

	ref := mosaic.Open(opts)
	if err := ref.Restore(script); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT CLOSED carrier, AVG(distance) FROM Flights GROUP BY carrier ORDER BY carrier",
		"SELECT SEMI-OPEN AVG(taxi_in) FROM Flights WHERE elapsed_time < 200",
		"SELECT COUNT(*) FROM FlightsSample",
	}
	check := func(stage string) {
		t.Helper()
		for _, q := range queries {
			want, err := ref.Query(q)
			if err != nil {
				t.Fatalf("%s: reference %q: %v", stage, q, err)
			}
			got, err := cc.Query(q)
			if err != nil {
				t.Fatalf("%s: fleet %q: %v", stage, q, err)
			}
			if render(got) != render(want) {
				t.Errorf("%s: %q diverged from the in-process reference\nfleet: %q\nref:   %q", stage, q, render(got), render(want))
			}
		}
	}
	check("boot")

	// Writes go to the primary; the follower must tail them and rejoin read
	// routing at the new generation within its poll interval.
	const dml = "CREATE TABLE Smoke (v INT); INSERT INTO Smoke VALUES (1), (2), (3)"
	if err := cc.Exec(dml); err != nil {
		t.Fatal(err)
	}
	if err := ref.Exec(dml); err != nil {
		t.Fatal(err)
	}
	queries = append(queries, "SELECT COUNT(*), SUM(v) FROM Smoke")
	waitCaughtUp(t, coordURL, 1)
	check("post-exec")

	// Keep reading until the routing split proves the replica served some of
	// the traffic — the read-scaling point of the whole subsystem.
	deadline := time.Now().Add(15 * time.Second)
	for coordStats(t, coordURL).ReplicaReads == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no read was ever routed to the follower process")
		}
		check("routing-split")
	}

	// SIGKILL the follower — the TCP peer vanishes mid-fleet. Every read
	// afterwards must still answer, correctly, from the primary.
	if err := followerProc.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = waitProcExit(followerProc, 10*time.Second)
	for i := 0; i < 5; i++ {
		check("post-kill")
	}

	// The coordinator reports the dead replica but keeps serving.
	resp, err := http.Get(coordURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 8192)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), `"status":"degraded"`) {
		t.Errorf("healthz after follower death = %s, want degraded", body[:n])
	}

	_ = coordProc.Process.Signal(syscall.SIGTERM)
	_ = waitProcExit(coordProc, 10*time.Second)
}

package coord_test

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mosaic"
	"mosaic/client"
)

// TestFleetProcessSmoke is the fleet story with real processes: build
// cmd/mosaic-serve and cmd/mosaic-coord, boot two shard processes seeded
// with the same script, front them with a coordinator process, and require
// byte-identical answers to the in-process Options.Shards: 2 reference —
// through real HTTP, real process boundaries, and a real SIGKILL of one
// shard (which must surface as 503 + Retry-After, never a partial answer).
func TestFleetProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots real processes")
	}
	script, opts := worldScript(t)
	dir := t.TempDir()
	serveBin := filepath.Join(dir, "mosaic-serve")
	coordBin := filepath.Join(dir, "mosaic-coord")
	for bin, pkg := range map[string]string{serveBin: "mosaic/cmd/mosaic-serve", coordBin: "mosaic/cmd/mosaic-coord"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	init := filepath.Join(dir, "world.sql")
	if err := os.WriteFile(init, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}

	// Two shard processes booted from the identical script: replicated data.
	addrs := []string{procAddr(t), procAddr(t)}
	procs := make([]*exec.Cmd, 2)
	for i, addr := range addrs {
		procs[i] = startProc(t, serveBin, "-addr", addr, "-seed", "1", init)
	}
	for _, addr := range addrs {
		waitUp(t, client.New("http://"+addr))
	}

	coordAddr := procAddr(t)
	coordProc := startProc(t, coordBin,
		"-addr", coordAddr,
		"-shards", "http://"+addrs[0]+",http://"+addrs[1],
		"-boot-timeout", "30s")
	cc := client.New("http://" + coordAddr)
	waitUp(t, cc)

	refOpts := *opts
	refOpts.Shards = 2
	ref := mosaic.Open(&refOpts)
	if err := ref.Restore(script); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT CLOSED carrier, AVG(distance) FROM Flights GROUP BY carrier ORDER BY carrier",
		"SELECT SEMI-OPEN AVG(taxi_in) FROM Flights WHERE elapsed_time < 200",
		"SELECT COUNT(*) FROM FlightsSample",
	}
	check := func(stage string) {
		t.Helper()
		for _, q := range queries {
			want, err := ref.Query(q)
			if err != nil {
				t.Fatalf("%s: reference %q: %v", stage, q, err)
			}
			got, err := cc.Query(q)
			if err != nil {
				t.Fatalf("%s: fleet %q: %v", stage, q, err)
			}
			if render(got) != render(want) {
				t.Errorf("%s: %q diverged from the in-process reference\nfleet: %q\nref:   %q", stage, q, render(got), render(want))
			}
		}
	}
	check("boot")

	// DDL/DML through the coordinator fans to both real processes.
	const dml = "CREATE TABLE Smoke (v INT); INSERT INTO Smoke VALUES (1), (2), (3)"
	if err := cc.Exec(dml); err != nil {
		t.Fatal(err)
	}
	if err := ref.Exec(dml); err != nil {
		t.Fatal(err)
	}
	queries = append(queries, "SELECT COUNT(*), SUM(v) FROM Smoke")
	check("post-exec")

	// SIGKILL shard 1 — no graceful shutdown, the TCP peer just vanishes.
	if err := procs[1].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = waitProcExit(procs[1], 10*time.Second)
	var re *client.RemoteError
	for i := 0; i < 3; i++ {
		_, err := cc.Query(queries[0])
		if err == nil {
			t.Fatalf("aggregate %d after SIGKILL answered — a partial answer escaped", i)
		}
		if !asRemote(err, &re) || re.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("aggregate %d after SIGKILL: %v, want 503", i, err)
		}
		if re.RetryAfter <= 0 {
			t.Errorf("aggregate %d: 503 lacks Retry-After", i)
		}
	}
	// The coordinator reports the fleet as degraded but stays up itself.
	resp, err := http.Get("http://" + coordAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 4096)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), `"status":"degraded"`) {
		t.Errorf("healthz after shard death = %s, want degraded", body[:n])
	}

	_ = coordProc.Process.Signal(syscall.SIGTERM)
	_ = waitProcExit(coordProc, 10*time.Second)
}

func asRemote(err error, re **client.RemoteError) bool {
	r, ok := err.(*client.RemoteError)
	if ok {
		*re = r
	}
	return ok
}

func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill() })
	return cmd
}

func procAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitUp(t *testing.T, c *client.Client) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if err := c.Health(); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("process never became healthy")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func waitProcExit(cmd *exec.Cmd, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		return fmt.Errorf("timeout after %s", timeout)
	}
}

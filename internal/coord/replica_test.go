// Replica fleet tests: coordinators routing reads across primaries plus
// snapshot-shipped followers must stay bit-identical to the in-process
// reference for every replica count, survive any single follower's death
// without a wrong, partial, or failed read, and never consult a lagging
// replica.
package coord_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mosaic"
	"mosaic/client"
	"mosaic/internal/coord"
	"mosaic/internal/repl"
	"mosaic/internal/server"
	"mosaic/internal/wire"
)

// followerProc is one in-process stand-in for a `mosaic-serve -follow` replica.
type followerProc struct {
	db *mosaic.DB
	f  *repl.Follower
	ts *httptest.Server
}

// startFollower boots a follower of primary: a fresh same-Options DB
// bootstrapped over HTTP from the primary's snapshot, tailing its statement
// log, served behind the read-only follower handler.
func startFollower(t *testing.T, primary string, opts *mosaic.Options, poll time.Duration) *followerProc {
	t.Helper()
	db := mosaic.Open(opts)
	f, err := repl.NewFollower(repl.Config{
		Primary:      primary,
		DB:           db,
		PollInterval: poll,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{DB: db, RequestTimeout: time.Minute, Follower: f})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		f.Close()
	})
	return &followerProc{db: db, f: f, ts: ts}
}

// replicaFleet is a running fleet of primaries + followers + coordinator.
type replicaFleet struct {
	cc        *client.Client
	primaries []*shardProc
	followers [][]*followerProc // [shard][replica]
	c         *coord.Coordinator
	url       string
}

// startReplicaFleet boots n primary shards, r followers per shard (already
// caught up — Start bootstraps synchronously), and a coordinator registered
// with every follower.
func startReplicaFleet(t *testing.T, n, r int, script string, opts *mosaic.Options, followerPoll, coordPoll time.Duration) *replicaFleet {
	t.Helper()
	fl := &replicaFleet{
		primaries: make([]*shardProc, n),
		followers: make([][]*followerProc, n),
	}
	urls := make([]string, n)
	replicas := make(map[int][]string)
	for i := range fl.primaries {
		fl.primaries[i] = startShard(t, script, opts)
		urls[i] = fl.primaries[i].ts.URL
		for j := 0; j < r; j++ {
			fp := startFollower(t, urls[i], opts, followerPoll)
			fl.followers[i] = append(fl.followers[i], fp)
			replicas[i] = append(replicas[i], fp.ts.URL)
		}
	}
	c, err := coord.New(coord.Config{
		Shards:              urls,
		Replicas:            replicas,
		ReplicaPollInterval: coordPoll,
		Retry:               client.RetryPolicy{MaxRetries: 2, BaseBackoff: 10 * time.Millisecond, Budget: 5 * time.Second},
		RequestTimeout:      time.Minute,
		Logf:                t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if err := c.Sync(t.Context()); err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(c.Handler())
	t.Cleanup(cts.Close)
	fl.cc = client.New(cts.URL)
	fl.c = c
	fl.url = cts.URL
	return fl
}

func coordStats(t *testing.T, coordURL string) wire.CoordStatsResponse {
	t.Helper()
	resp, err := http.Get(coordURL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st wire.CoordStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// caughtUpReplicas counts replica backends the coordinator currently deems
// eligible for generation-gated reads.
func caughtUpReplicas(st wire.CoordStatsResponse) int {
	n := 0
	for _, b := range st.Backends {
		if b.Role == "replica" && b.CaughtUp {
			n++
		}
	}
	return n
}

// waitCaughtUp blocks until the coordinator's poller marks want replicas
// caught up (the poller is advisory and asynchronous; tests must not race it).
func waitCaughtUp(t *testing.T, coordURL string, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if caughtUpReplicas(coordStats(t, coordURL)) == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never saw %d caught-up replicas: %+v", want, coordStats(t, coordURL).Backends)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicaFleetBitIdenticalAcrossReplicaCounts is the tentpole answer
// contract: for replicas ∈ {0, 1, 2} per shard, every read through the
// coordinator — whichever backend serves it — answers bit-identically to
// the in-process Options.Shards reference, across repeated runs.
func TestReplicaFleetBitIdenticalAcrossReplicaCounts(t *testing.T) {
	script, opts := worldScript(t)
	for _, r := range []int{0, 1, 2} {
		t.Run(fmt.Sprintf("replicas=%d", r), func(t *testing.T) {
			fl := startReplicaFleet(t, 2, r, script, opts, 10*time.Millisecond, 5*time.Millisecond)
			waitCaughtUp(t, fl.url, 2*r)
			refOpts := *opts
			refOpts.Shards = 2
			ref := mosaic.Open(&refOpts)
			if err := ref.Restore(script); err != nil {
				t.Fatal(err)
			}
			for round := 0; round < 3; round++ {
				for _, q := range fleetQueries {
					want, err := ref.Query(q)
					if err != nil {
						t.Fatalf("%s: reference: %v", q, err)
					}
					got, err := fl.cc.Query(q)
					if err != nil {
						t.Fatalf("round %d %s: fleet: %v", round, q, err)
					}
					if render(got) != render(want) {
						t.Errorf("round %d %s: replicated fleet diverged\nfleet: %q\nref:   %q", round, q, render(got), render(want))
					}
				}
			}
			st := coordStats(t, fl.url)
			if r == 0 {
				if st.ReplicaReads != 0 {
					t.Errorf("replica_reads = %d with no replicas registered", st.ReplicaReads)
				}
				return
			}
			// EWMA balancing must actually spread reads onto followers: after
			// the first primary read establishes a nonzero latency estimate,
			// untouched replicas sort first.
			if st.ReplicaReads == 0 {
				t.Errorf("no reads routed to replicas: %+v", st.Backends)
			}
			if st.PrimaryReads == 0 {
				t.Errorf("no reads routed to primaries: %+v", st.Backends)
			}
			for _, b := range st.Backends {
				if b.Role == "replica" && b.Lag != 0 {
					t.Errorf("caught-up replica %s reports lag %d", b.URL, b.Lag)
				}
			}
		})
	}
}

// TestReplicaDeathNeverFailsReads is the failover acceptance criterion:
// kill one follower while reads flow — every read keeps answering
// bit-identical bytes (rerouted to the surviving backends), never a wrong,
// partial, or unnecessarily failed answer, and /healthz degrades.
func TestReplicaDeathNeverFailsReads(t *testing.T) {
	script, opts := worldScript(t)
	// A long coordinator poll interval freezes eligibility at boot: the dead
	// follower STAYS a read candidate, so the failover path itself (try,
	// fail, reroute) is exercised deterministically rather than the poller
	// quietly delisting the corpse first.
	fl := startReplicaFleet(t, 1, 2, script, opts, 10*time.Millisecond, time.Hour)
	waitCaughtUp(t, fl.url, 2)
	ref := mosaic.Open(opts)
	if err := ref.Restore(script); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT CLOSED carrier, AVG(distance) FROM Flights GROUP BY carrier ORDER BY carrier"
	want, err := ref.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// One read before the kill gives the primary a nonzero latency estimate,
	// so the untouched (soon-dead) replicas sort ahead of it afterwards.
	got, err := fl.cc.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if render(got) != render(want) {
		t.Fatal("fleet diverged before the kill — test setup broken")
	}

	fl.followers[0][0].ts.Close() // the follower process dies

	for i := 0; i < 10; i++ {
		got, err := fl.cc.Query(q)
		if err != nil {
			t.Fatalf("read %d after follower death failed: %v", i, err)
		}
		if render(got) != render(want) {
			t.Fatalf("read %d after follower death answered wrong bytes: %q", i, render(got))
		}
	}
	st := coordStats(t, fl.url)
	if st.Failovers == 0 {
		t.Error("no failovers recorded — the dead follower was never tried, so the reroute path went unexercised")
	}
	// Health must name the dead replica while the fleet stays serving.
	resp, err := http.Get(fl.url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h wire.CoordHealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	deadKey := fmt.Sprintf("0/%s", fl.followers[0][0].ts.URL)
	if alive, found := h.Replicas[deadKey]; !found || alive {
		t.Errorf("healthz replicas = %+v, want %q dead", h.Replicas, deadKey)
	}
	if h.Status != "degraded" {
		t.Errorf("healthz status = %q with a dead replica, want degraded", h.Status)
	}
}

// TestReplicaLaggingNeverConsulted: a follower that has not replicated the
// fleet's generation is invisible to read routing — reads stay on the
// primary and stay correct — and rejoins once it catches up.
func TestReplicaLaggingNeverConsulted(t *testing.T) {
	script, opts := worldScript(t)
	// Follower poll interval of an hour: it only syncs when the test says so.
	fl := startReplicaFleet(t, 1, 1, script, opts, time.Hour, 5*time.Millisecond)
	waitCaughtUp(t, fl.url, 1)

	// Writes go to primaries only; the follower now lags the fleet.
	if err := fl.cc.Exec("CREATE TABLE Lag (v INT); INSERT INTO Lag VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, fl.url, 0)
	st := coordStats(t, fl.url)
	for _, b := range st.Backends {
		if b.Role == "replica" && b.Lag == 0 {
			t.Errorf("lagging replica %s reports lag 0", b.URL)
		}
	}
	replicaReadsBefore := st.ReplicaReads
	for i := 0; i < 5; i++ {
		res, err := fl.cc.Query("SELECT COUNT(*), SUM(v) FROM Lag")
		if err != nil {
			t.Fatalf("read %d with a lagging replica: %v", i, err)
		}
		if n, _ := res.Rows[0][0].Float64(); n != 3 {
			t.Fatalf("read %d answered %g rows, want 3", i, n)
		}
	}
	st = coordStats(t, fl.url)
	if st.ReplicaReads != replicaReadsBefore {
		t.Errorf("a lagging replica served %d reads — stale data could have escaped", st.ReplicaReads-replicaReadsBefore)
	}

	// Catch the follower up; routing must start using it again.
	if err := fl.followers[0][0].f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitCaughtUp(t, fl.url, 1)
	for i := 0; i < 5; i++ {
		if _, err := fl.cc.Query("SELECT COUNT(*), SUM(v) FROM Lag"); err != nil {
			t.Fatalf("read %d after catch-up: %v", i, err)
		}
	}
	if st := coordStats(t, fl.url); st.ReplicaReads == replicaReadsBefore {
		t.Error("caught-up replica never rejoined read routing")
	}
}

// TestReplicaExplainNamesFanOut: EXPLAIN through a replicated fleet names
// the replica fan-out in the plan.
func TestReplicaExplainNamesFanOut(t *testing.T) {
	script, opts := worldScript(t)
	fl := startReplicaFleet(t, 1, 1, script, opts, 10*time.Millisecond, 5*time.Millisecond)
	waitCaughtUp(t, fl.url, 1)
	res, err := fl.cc.Explain("SELECT CLOSED AVG(distance) FROM Flights")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].String() != "'fleet'" {
		t.Fatalf("fleet EXPLAIN does not lead with the fleet row: %q", render(res))
	}
	found := false
	for _, row := range res.Rows {
		if strings.Contains(row[1].String(), "follower replicas") {
			found = true
		}
	}
	if !found {
		t.Errorf("no plan row names the follower replica fan-out: %q", render(res))
	}
}

// TestValidateTopology covers the boot-time validation satellite: clear
// errors for malformed URLs, duplicate registrations, and out-of-range
// shard indices.
func TestValidateTopology(t *testing.T) {
	good := []string{"http://a:1", "http://b:2"}
	cases := []struct {
		name     string
		shards   []string
		replicas map[int][]string
		wantErr  string
	}{
		{"ok", good, map[int][]string{0: {"http://r:3"}, 1: {"https://r:4"}}, ""},
		{"no shards", nil, nil, "no shards"},
		{"empty shard url", []string{""}, nil, "scheme"},
		{"bad scheme", []string{"ftp://a:1"}, nil, "scheme"},
		{"no host", []string{"http://"}, nil, "host"},
		{"duplicate shard", []string{"http://a:1", "http://a:1"}, nil, "is both"},
		{"replica bad url", good, map[int][]string{0: {"nope"}}, ""},
		{"replica duplicates shard", good, map[int][]string{1: {"http://a:1"}}, "is both"},
		{"replica duplicated", good, map[int][]string{0: {"http://r:3", "http://r:3"}}, "is both"},
		{"replica shard out of range", good, map[int][]string{2: {"http://r:3"}}, "fleet has shards"},
		{"replica negative shard", good, map[int][]string{-1: {"http://r:3"}}, "fleet has shards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := coord.ValidateTopology(tc.shards, tc.replicas)
			if tc.name == "ok" {
				if err != nil {
					t.Fatalf("valid topology rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid topology accepted")
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("err = %q, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// Fleet tests: a coordinator over N real internal/server shard instances
// must answer bit-identically to one in-process engine opened with
// Options.Shards: N — and must turn every shard failure into a clean 503,
// never a partial answer.
package coord_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mosaic"
	"mosaic/client"
	"mosaic/internal/bench"
	"mosaic/internal/coord"
	"mosaic/internal/faulty"
	"mosaic/internal/server"
	"mosaic/internal/wire"
)

// world builds the flights workload once and shares its dump script across
// every fleet test: restoring the same script into every shard and every
// reference engine is what makes byte-comparison meaningful.
var world struct {
	once   sync.Once
	script string
	cfg    bench.FlightsConfig
	err    error
}

func worldScript(t *testing.T) (string, *mosaic.Options) {
	t.Helper()
	world.once.Do(func() {
		setup, err := bench.BuildFlights(bench.FlightsConfig{PopN: 4000})
		if err != nil {
			world.err = err
			return
		}
		world.cfg = setup.Cfg
		world.script, world.err = setup.Engine.DumpScript()
	})
	if world.err != nil {
		t.Fatal(world.err)
	}
	return world.script, &mosaic.Options{
		Seed:        world.cfg.Seed,
		OpenSamples: world.cfg.OpenSamples,
		SWG:         world.cfg.SWG,
		IPF:         world.cfg.IPF,
	}
}

// fleetQueries exercises every mergeable aggregate kind plus HAVING,
// ORDER BY, and LIMIT post-aggregation, under both stored-weight paths.
var fleetQueries = []string{
	"SELECT CLOSED COUNT(*) FROM Flights",
	"SELECT CLOSED AVG(distance) FROM Flights WHERE elapsed_time > 200",
	"SELECT CLOSED SUM(distance), MIN(taxi_out), MAX(taxi_in) FROM Flights",
	"SELECT CLOSED carrier, AVG(distance) FROM Flights WHERE carrier IN ('WN', 'AA') GROUP BY carrier",
	"SELECT CLOSED carrier, COUNT(*) AS n, SUM(distance) FROM Flights GROUP BY carrier HAVING n > 10 ORDER BY carrier LIMIT 5",
	"SELECT SEMI-OPEN AVG(taxi_in) FROM Flights WHERE elapsed_time < 200",
	"SELECT SEMI-OPEN carrier, AVG(elapsed_time) FROM Flights WHERE distance > 1000 GROUP BY carrier ORDER BY carrier",
	"SELECT COUNT(*) FROM FlightsSample",
	"SELECT AVG(distance) FROM FlightsSample WHERE elapsed_time > 200",
}

// render serializes a result for exact byte comparison (columns + HashKey of
// every value — the same discipline internal/bench uses).
func render(res *mosaic.Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, ","))
	b.WriteByte('\n')
	for _, row := range res.Rows {
		for _, v := range row {
			b.WriteString(v.HashKey())
			b.WriteByte('\x1f')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// shardProc is one in-process stand-in for a mosaic-serve shard.
type shardProc struct {
	db *mosaic.DB
	ts *httptest.Server
}

func startShard(t *testing.T, script string, opts *mosaic.Options) *shardProc {
	t.Helper()
	db := mosaic.Open(opts)
	if err := db.Restore(script); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{DB: db, RequestTimeout: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &shardProc{db: db, ts: ts}
}

// startFleet boots n shards plus a synced coordinator and returns the
// coordinator's client, the shard handles, the coordinator itself, and its
// base URL.
func startFleet(t *testing.T, n int, script string, opts *mosaic.Options) (*client.Client, []*shardProc, *coord.Coordinator, string) {
	t.Helper()
	shards := make([]*shardProc, n)
	urls := make([]string, n)
	for i := range shards {
		shards[i] = startShard(t, script, opts)
		urls[i] = shards[i].ts.URL
	}
	c, err := coord.New(coord.Config{
		Shards:         urls,
		Retry:          client.RetryPolicy{MaxRetries: 2, BaseBackoff: 10 * time.Millisecond, Budget: 5 * time.Second},
		RequestTimeout: time.Minute,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(t.Context()); err != nil {
		t.Fatal(err)
	}
	cts := httptest.NewServer(c.Handler())
	t.Cleanup(cts.Close)
	return client.New(cts.URL), shards, c, cts.URL
}

// TestFleetBitIdenticalToInProcessShards is the tentpole's answer contract:
// for N ∈ {1, 2, 4}, a fleet of N shard processes answers every query
// bit-identically to a single engine opened with Options.Shards: N, and
// repeating a query through the fleet reproduces the same bytes. At N = 1
// the fleet also matches the forced row-at-a-time engine byte for byte.
func TestFleetBitIdenticalToInProcessShards(t *testing.T) {
	script, opts := worldScript(t)
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			cc, _, _, _ := startFleet(t, n, script, opts)
			refOpts := *opts
			refOpts.Shards = n
			ref := mosaic.Open(&refOpts)
			if err := ref.Restore(script); err != nil {
				t.Fatal(err)
			}
			var rowRef *mosaic.DB
			if n == 1 {
				rowOpts := *opts
				rowOpts.RowExec = true
				rowRef = mosaic.Open(&rowOpts)
				if err := rowRef.Restore(script); err != nil {
					t.Fatal(err)
				}
			}
			for _, q := range fleetQueries {
				want, err := ref.Query(q)
				if err != nil {
					t.Fatalf("%s: reference: %v", q, err)
				}
				got, err := cc.Query(q)
				if err != nil {
					t.Fatalf("%s: fleet: %v", q, err)
				}
				if render(got) != render(want) {
					t.Errorf("%s: fleet answer diverged from Options.Shards:%d\nfleet: %q\nref:   %q", q, n, render(got), render(want))
				}
				again, err := cc.Query(q)
				if err != nil {
					t.Fatalf("%s: fleet rerun: %v", q, err)
				}
				if render(again) != render(got) {
					t.Errorf("%s: fleet answer not reproducible across runs", q)
				}
				if rowRef != nil {
					rw, err := rowRef.Query(q)
					if err != nil {
						t.Fatalf("%s: row reference: %v", q, err)
					}
					if render(got) != render(rw) {
						t.Errorf("%s: 1-shard fleet diverged from the row engine", q)
					}
				}
			}
		})
	}
}

// TestFleetExecFansOutAndQueriesTrackMutations drives DDL/DML through the
// coordinator and checks that subsequent scattered answers track the
// mutation exactly as an in-process engine does — the generation handshake
// advancing along the way.
func TestFleetExecFansOutAndQueriesTrackMutations(t *testing.T) {
	script, opts := worldScript(t)
	cc, shards, c, _ := startFleet(t, 2, script, opts)
	refOpts := *opts
	refOpts.Shards = 2
	ref := mosaic.Open(&refOpts)
	if err := ref.Restore(script); err != nil {
		t.Fatal(err)
	}

	before := c.Generation()
	const ddl = "CREATE TABLE Fleet (k TEXT, v INT); INSERT INTO Fleet VALUES ('a', 1), ('a', 2), ('b', 3), ('b', 4), ('c', 5)"
	if err := cc.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	if err := ref.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	if c.Generation() == before {
		t.Error("exec fan-out did not advance the fleet generation")
	}
	for _, q := range []string{
		"SELECT COUNT(*), SUM(v) FROM Fleet",
		"SELECT k, AVG(v) FROM Fleet GROUP BY k ORDER BY k",
	} {
		want, err := ref.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cc.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if render(got) != render(want) {
			t.Errorf("%s: post-exec fleet answer diverged\nfleet: %q\nref:   %q", q, render(got), render(want))
		}
	}
	// Both shards really applied the script (replicated data, not routed).
	for i, sh := range shards {
		res, err := sh.db.Query("SELECT COUNT(*) FROM Fleet")
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if got, _ := res.Rows[0][0].Float64(); got != 5 {
			t.Errorf("shard %d holds %g Fleet rows, want 5", i, got)
		}
	}
}

// TestFleetPassThroughNonAggregate: non-aggregate shapes relay whole to
// shard 0 and answer byte-identically to a single engine.
func TestFleetPassThroughNonAggregate(t *testing.T) {
	script, opts := worldScript(t)
	cc, _, _, coordURL := startFleet(t, 2, script, opts)
	ref := mosaic.Open(opts)
	if err := ref.Restore(script); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"SELECT carrier, distance FROM FlightsSample WHERE distance > 2000",
		"SELECT DISTINCT carrier FROM FlightsSample",
	} {
		want, err := ref.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cc.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if render(got) != render(want) {
			t.Errorf("%s: pass-through diverged", q)
		}
	}
	var st wire.CoordStatsResponse
	resp, err := http.Get(coordURL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.PassThrough != 2 {
		t.Errorf("pass_through = %d, want 2", st.PassThrough)
	}
	if st.Scattered != 0 {
		t.Errorf("scattered = %d, want 0", st.Scattered)
	}
}

// TestFleetShardDeathIs503NeverPartial kills one shard process mid-fleet:
// every aggregate answer afterwards is a 503 with a Retry-After hint —
// never a partial or wrong answer — while pass-through to the surviving
// shard 0 keeps working.
func TestFleetShardDeathIs503NeverPartial(t *testing.T) {
	script, opts := worldScript(t)
	cc, shards, _, _ := startFleet(t, 2, script, opts)
	refOpts := *opts
	refOpts.Shards = 2
	ref := mosaic.Open(&refOpts)
	if err := ref.Restore(script); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT CLOSED carrier, AVG(distance) FROM Flights GROUP BY carrier ORDER BY carrier"
	want, err := ref.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cc.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if render(got) != render(want) {
		t.Fatal("fleet diverged before the kill — test setup broken")
	}

	shards[1].ts.Close() // the shard process dies

	for i := 0; i < 5; i++ {
		res, err := cc.Query(q)
		if err == nil {
			t.Fatalf("query %d after shard death answered %q — a partial answer escaped", i, render(res))
		}
		var re *client.RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("query %d: err = %v, want RemoteError", i, err)
		}
		if re.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("query %d: status %d, want 503", i, re.StatusCode)
		}
		if re.RetryAfter <= 0 {
			t.Errorf("query %d: 503 lacks a Retry-After hint", i)
		}
	}
	// Pass-through only needs shard 0 — still serving.
	if _, err := cc.Query("SELECT DISTINCT carrier FROM FlightsSample"); err != nil {
		t.Errorf("pass-through should survive a non-zero shard's death: %v", err)
	}
}

// TestFleetGenerationDivergenceIs503: a shard mutated behind the
// coordinator's back answers 409 to scatters, which the coordinator turns
// into a clean 503 — the handshake that keeps divergent data out of answers.
func TestFleetGenerationDivergenceIs503(t *testing.T) {
	script, opts := worldScript(t)
	cc, shards, c, _ := startFleet(t, 2, script, opts)

	// Side-channel mutation: shard 1 moves ahead of the fleet.
	rogue := client.New(shards[1].ts.URL)
	if err := rogue.Exec("CREATE TABLE Rogue (x INT)"); err != nil {
		t.Fatal(err)
	}

	_, err := cc.Query("SELECT CLOSED COUNT(*) FROM Flights")
	var re *client.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("scatter against a diverged shard: err = %v, want RemoteError", err)
	}
	if re.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", re.StatusCode)
	}
	if !strings.Contains(re.Message, "generation") {
		t.Errorf("503 message %q does not name the generation divergence", re.Message)
	}
	if err := c.Sync(t.Context()); err == nil {
		t.Error("Sync on a diverged fleet must fail")
	}
}

// TestFleetFlakyShardAbsorbedByRetries fronts one shard with the faulty
// proxy: dropped connections are transport errors on an idempotent path, so
// the coordinator's per-shard retries absorb them and answers stay
// bit-identical.
func TestFleetFlakyShardAbsorbedByRetries(t *testing.T) {
	script, opts := worldScript(t)
	sh0 := startShard(t, script, opts)
	sh1 := startShard(t, script, opts)
	proxy := &faulty.Proxy{Target: strings.TrimPrefix(sh1.ts.URL, "http://"), DropEvery: 3}
	addr, err := proxy.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	c, err := coord.New(coord.Config{
		Shards:         []string{sh0.ts.URL, "http://" + addr},
		Retry:          client.RetryPolicy{MaxRetries: 4, BaseBackoff: 5 * time.Millisecond, Budget: 10 * time.Second},
		RequestTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err = c.Sync(t.Context()); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Sync never succeeded through the flaky proxy: %v", err)
		}
	}
	cts := httptest.NewServer(c.Handler())
	t.Cleanup(cts.Close)
	cc := client.New(cts.URL)

	refOpts := *opts
	refOpts.Shards = 2
	ref := mosaic.Open(&refOpts)
	if err := ref.Restore(script); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT CLOSED carrier, AVG(distance) FROM Flights GROUP BY carrier ORDER BY carrier"
	want, err := ref.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent bursts force fresh connections through the proxy (a single
	// sequential client would ride one keep-alive connection past the
	// per-connection drop schedule).
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		errs := make([]error, 6)
		for i := range errs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, err := cc.Query(q)
				if err != nil {
					errs[i] = err
					return
				}
				if render(got) != render(want) {
					errs[i] = fmt.Errorf("flaky-path answer diverged: %q", render(got))
				}
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d query %d through flaky shard: %v", round, i, err)
			}
		}
	}
	if proxy.Dropped.Load() == 0 {
		t.Error("proxy dropped nothing — the fault injection never engaged")
	}
}

// TestFleetExplainPrependsFleetPlan: EXPLAIN through the coordinator carries
// the fleet topology ahead of the shard's own plan rows.
func TestFleetExplainPrependsFleetPlan(t *testing.T) {
	script, opts := worldScript(t)
	cc, _, _, _ := startFleet(t, 2, script, opts)
	res, err := cc.Explain("SELECT CLOSED AVG(distance) FROM Flights")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 || res.Rows[0][0].String() != "'fleet'" {
		t.Fatalf("fleet EXPLAIN does not lead with the fleet row: %q", render(res))
	}
	if !strings.Contains(res.Rows[0][1].String(), "2 shard processes") {
		t.Errorf("fleet plan row %q does not name the shard count", res.Rows[0][1].String())
	}
}

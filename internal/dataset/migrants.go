package dataset

import (
	"math/rand"

	"mosaic/internal/schema"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// MigrantsSchema models the paper's Sec 2 motivating example: European
// migrants with a country of residence and an email provider.
var MigrantsSchema = schema.MustNew(
	schema.Attribute{Name: "country", Kind: value.KindText},
	schema.Attribute{Name: "email", Kind: value.KindText},
	schema.Attribute{Name: "age", Kind: value.KindInt},
)

// MigrantCountries are the countries in the synthetic Eurostat reports.
var MigrantCountries = []string{"UK", "FR", "DE", "ES", "IT", "NL"}

// EmailProviders are the providers; Yahoo is the sampled one.
var EmailProviders = []string{"Yahoo", "Gmail", "AOL", "Outlook"}

// MigrantsConfig tunes the migrants generator.
type MigrantsConfig struct {
	N    int // population size (default 40000)
	Seed int64
}

func (c MigrantsConfig) withDefaults() MigrantsConfig {
	if c.N <= 0 {
		c.N = 40000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Migrants generates a population where provider share varies by country
// (the Internet-usage bias the example's data scientist must correct for):
// Yahoo is popular in the UK and FR, Gmail elsewhere, AOL is a light hitter
// everywhere.
func Migrants(cfg MigrantsConfig) *table.Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := table.New("europe_migrants", MigrantsSchema)

	countryShare := []float64{0.28, 0.22, 0.20, 0.12, 0.10, 0.08}
	// providerShare[country][provider]
	providerShare := [][]float64{
		{0.45, 0.35, 0.05, 0.15}, // UK: Yahoo-heavy
		{0.40, 0.40, 0.04, 0.16}, // FR
		{0.20, 0.55, 0.05, 0.20}, // DE: Gmail-heavy
		{0.25, 0.50, 0.05, 0.20}, // ES
		{0.30, 0.45, 0.06, 0.19}, // IT
		{0.22, 0.52, 0.06, 0.20}, // NL
	}
	pick := func(shares []float64) int {
		u := rng.Float64()
		var acc float64
		for i, s := range shares {
			acc += s
			if u <= acc {
				return i
			}
		}
		return len(shares) - 1
	}
	for i := 0; i < cfg.N; i++ {
		ci := pick(countryShare)
		pi := pick(providerShare[ci])
		age := 18 + rng.Intn(60)
		_ = t.Append([]value.Value{
			value.Text(MigrantCountries[ci]),
			value.Text(EmailProviders[pi]),
			value.Int(int64(age)),
		})
	}
	return t
}

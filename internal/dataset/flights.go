package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"mosaic/internal/expr"
	"mosaic/internal/schema"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// FlightsSchema matches the paper's Table 1: carrier (C, categorical, 14
// values), taxi_out (O), taxi_in (I), elapsed_time (E), and distance (D),
// the continuous attributes rounded to whole numbers.
var FlightsSchema = schema.MustNew(
	schema.Attribute{Name: "carrier", Kind: value.KindText},
	schema.Attribute{Name: "taxi_out", Kind: value.KindInt},
	schema.Attribute{Name: "taxi_in", Kind: value.KindInt},
	schema.Attribute{Name: "elapsed_time", Kind: value.KindInt},
	schema.Attribute{Name: "distance", Kind: value.KindInt},
)

// Carriers are the 14 carrier codes (Table 1's encoded dimensionality of
// 14). 'WN' (Southwest) and 'AA' (American) are the popular carriers the
// paper's queries 5–7 filter on; 'US' and 'F9' are the light hitters of
// query 8.
var Carriers = []string{
	"WN", "DL", "AA", "OO", "UA", "EV", "B6", "AS", "NK", "MQ", "US", "F9", "HA", "VX",
}

// carrierShares is a skewed share per carrier (the paper notes "the carriers
// attribute being categorical and having a skewed distribution in the
// data"). Shares roughly follow the real 2015–16 US domestic shares: WN
// dominates, HA/VX/F9/US are light hitters.
var carrierShares = []float64{
	0.22, 0.16, 0.15, 0.10, 0.09, 0.08, 0.05, 0.035, 0.025, 0.025, 0.02, 0.015, 0.008, 0.007,
}

// FlightsConfig tunes the flights generator.
type FlightsConfig struct {
	N    int // rows (default 50000; the paper used 426,411 — see DESIGN.md)
	Seed int64
}

func (c FlightsConfig) withDefaults() FlightsConfig {
	if c.N <= 0 {
		c.N = 50000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Flights generates a synthetic flights population with the correlation
// structure the experiments depend on: elapsed_time grows linearly with
// distance plus noise (so a long-flight-biased sample inflates AVG(E) and
// AVG(D)); taxi times are right-skewed and mildly carrier-dependent; carrier
// distance profiles differ (regional carriers fly shorter routes).
func Flights(cfg FlightsConfig) *table.Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := table.New("flights", FlightsSchema)

	cum := make([]float64, len(carrierShares))
	var acc float64
	for i, s := range carrierShares {
		acc += s
		cum[i] = acc
	}
	// Per-carrier route-length multiplier: majors fly longer stage lengths.
	routeLen := []float64{
		0.85, 1.15, 1.2, 0.6, 1.3, 0.55, 1.1, 1.0, 0.9, 0.6, 1.0, 0.9, 1.6, 1.2,
	}

	for i := 0; i < cfg.N; i++ {
		u := rng.Float64() * acc
		ci := 0
		for ci < len(cum)-1 && u > cum[ci] {
			ci++
		}
		// Distance: log-normal stage length scaled per carrier, clamped to
		// the contiguous-US range.
		d := math.Exp(rng.NormFloat64()*0.55+6.3) * routeLen[ci]
		if d < 100 {
			d = 100 + rng.Float64()*50
		}
		if d > 2800 {
			d = 2800 - rng.Float64()*200
		}
		// Elapsed: ~35 min overhead + cruise at ~7.6 miles/min with noise.
		e := 35 + d/7.6 + rng.NormFloat64()*14
		if e < 25 {
			e = 25
		}
		// Taxi out: right-skewed, 5–60 min.
		o := 8 + rng.ExpFloat64()*7
		if o > 60 {
			o = 60
		}
		// Taxi in: right-skewed, shorter.
		in := 4 + rng.ExpFloat64()*3.5
		if in > 40 {
			in = 40
		}
		_ = t.Append([]value.Value{
			value.Text(Carriers[ci]),
			value.Int(int64(math.Round(o))),
			value.Int(int64(math.Round(in))),
			value.Int(int64(math.Round(e))),
			value.Int(int64(math.Round(d))),
		})
	}
	return t
}

// BiasedSampleExact draws exactly n tuples where biasFrac of them satisfy
// pred (paper Sec 5.3: "a biased 5 percent sample … with a 95 percent bias,
// meaning 95 percent of the tuples have a long flight time"). If the
// population lacks enough pred-true tuples the sample takes all of them.
func BiasedSampleExact(pop *table.Table, pred expr.Expr, n int, biasFrac float64, name string, seed int64) (*table.Table, error) {
	if n <= 0 || n > pop.Len() {
		return nil, fmt.Errorf("dataset: sample size %d out of range (population %d)", n, pop.Len())
	}
	if biasFrac < 0 || biasFrac > 1 {
		return nil, fmt.Errorf("dataset: bias fraction %g out of [0,1]", biasFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	var trueIdx, falseIdx []int
	i := 0
	var evalErr error
	sc := pop.Schema()
	pop.Scan(func(row []value.Value, _ float64) bool {
		ok, err := expr.Truthy(pred, &expr.Binding{Schema: sc, Row: row})
		if err != nil {
			evalErr = err
			return false
		}
		if ok {
			trueIdx = append(trueIdx, i)
		} else {
			falseIdx = append(falseIdx, i)
		}
		i++
		return true
	})
	if evalErr != nil {
		return nil, evalErr
	}
	wantTrue := int(math.Round(float64(n) * biasFrac))
	if wantTrue > len(trueIdx) {
		wantTrue = len(trueIdx)
	}
	wantFalse := n - wantTrue
	if wantFalse > len(falseIdx) {
		return nil, fmt.Errorf("dataset: population has only %d pred-false tuples, need %d", len(falseIdx), wantFalse)
	}
	rng.Shuffle(len(trueIdx), func(a, b int) { trueIdx[a], trueIdx[b] = trueIdx[b], trueIdx[a] })
	rng.Shuffle(len(falseIdx), func(a, b int) { falseIdx[a], falseIdx[b] = falseIdx[b], falseIdx[a] })
	out := table.New(name, sc)
	for _, j := range trueIdx[:wantTrue] {
		if err := out.Append(pop.Row(j)); err != nil {
			return nil, err
		}
	}
	for _, j := range falseIdx[:wantFalse] {
		if err := out.Append(pop.Row(j)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// UniformSample draws n tuples uniformly without replacement.
func UniformSample(pop *table.Table, n int, name string, seed int64) (*table.Table, error) {
	return weightedSampleWithoutReplacement(pop, n, func([]value.Value) float64 { return 1 }, name, seed)
}

package dataset

import (
	"math"
	"testing"

	"mosaic/internal/sql"
	"mosaic/internal/stats"
	"mosaic/internal/value"
)

func TestSpiralShape(t *testing.T) {
	pop := Spiral(SpiralConfig{N: 5000, Seed: 2})
	if pop.Len() != 5000 {
		t.Fatalf("N = %d", pop.Len())
	}
	xs, err := pop.FloatColumn("x")
	if err != nil {
		t.Fatal(err)
	}
	ys, err := pop.FloatColumn("y")
	if err != nil {
		t.Fatal(err)
	}
	// Roughly in the unit square (Fig 5 axes).
	for i := range xs {
		if xs[i] < -0.3 || xs[i] > 1.3 || ys[i] < -0.5 || ys[i] > 1.3 {
			t.Fatalf("point (%g,%g) far outside plot range", xs[i], ys[i])
		}
	}
	// Spiral is hollow: few points near the center (0.5, 0.4).
	near := 0
	for i := range xs {
		dx, dy := xs[i]-0.5, ys[i]-0.4
		if math.Sqrt(dx*dx+dy*dy) < 0.03 {
			near++
		}
	}
	if frac := float64(near) / float64(len(xs)); frac > 0.05 {
		t.Errorf("center density %g too high for a spiral", frac)
	}
}

func TestSpiralDeterministicPerSeed(t *testing.T) {
	a := Spiral(SpiralConfig{N: 100, Seed: 5})
	b := Spiral(SpiralConfig{N: 100, Seed: 5})
	for i := 0; i < 100; i++ {
		if value.Compare(a.Row(i)[0], b.Row(i)[0]) != 0 {
			t.Fatal("same seed, different spiral")
		}
	}
	c := Spiral(SpiralConfig{N: 100, Seed: 6})
	if value.Compare(a.Row(0)[0], c.Row(0)[0]) == 0 {
		t.Error("different seeds produced identical first row")
	}
}

func TestBiasedSpiralSampleIsBiased(t *testing.T) {
	pop := Spiral(SpiralConfig{N: 20000, Seed: 3})
	s, err := BiasedSpiralSample(pop, 5000, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 5000 {
		t.Fatalf("sample size = %d", s.Len())
	}
	frac := func(tb interface {
		FloatColumn(string) ([]float64, error)
	}) float64 {
		xs, _ := tb.FloatColumn("x")
		hi := 0
		for _, x := range xs {
			if x > 0.5 {
				hi++
			}
		}
		return float64(hi) / float64(len(xs))
	}
	popFrac := frac(pop)
	sampFrac := frac(s)
	if sampFrac <= popFrac+0.1 {
		t.Errorf("sample right-half fraction %.3f not biased above population %.3f", sampFrac, popFrac)
	}
	if _, err := BiasedSpiralSample(pop, 0, 8, 4); err == nil {
		t.Error("zero sample size should fail")
	}
	if _, err := BiasedSpiralSample(pop, 10, 0, 4); err == nil {
		t.Error("non-positive bias should fail")
	}
	if _, err := BiasedSpiralSample(pop, pop.Len()+1, 2, 4); err == nil {
		t.Error("oversized sample should fail")
	}
}

func TestFlightsSchemaAndRanges(t *testing.T) {
	f := Flights(FlightsConfig{N: 10000, Seed: 5})
	if f.Len() != 10000 {
		t.Fatalf("N = %d", f.Len())
	}
	if !f.Schema().Equal(FlightsSchema) {
		t.Error("schema mismatch")
	}
	carriers := map[string]bool{}
	for _, c := range Carriers {
		carriers[c] = true
	}
	ds, _ := f.FloatColumn("distance")
	es, _ := f.FloatColumn("elapsed_time")
	for i := 0; i < f.Len(); i++ {
		row := f.Row(i)
		if !carriers[row[0].AsText()] {
			t.Fatalf("unknown carrier %q", row[0].AsText())
		}
		if ds[i] < 50 || ds[i] > 3000 {
			t.Fatalf("distance %g out of range", ds[i])
		}
		if es[i] < 20 || es[i] > 700 {
			t.Fatalf("elapsed %g out of range", es[i])
		}
	}
}

func TestFlightsDistanceElapsedCorrelated(t *testing.T) {
	// The experiments depend on E growing with D (query 3's bias effect).
	f := Flights(FlightsConfig{N: 20000, Seed: 6})
	ds, _ := f.FloatColumn("distance")
	es, _ := f.FloatColumn("elapsed_time")
	md, me := stats.Mean(ds), stats.Mean(es)
	var cov, vd, ve float64
	for i := range ds {
		cov += (ds[i] - md) * (es[i] - me)
		vd += (ds[i] - md) * (ds[i] - md)
		ve += (es[i] - me) * (es[i] - me)
	}
	r := cov / math.Sqrt(vd*ve)
	if r < 0.8 {
		t.Errorf("corr(D,E) = %.3f, want strong positive", r)
	}
}

func TestFlightsCarrierSkew(t *testing.T) {
	// WN must be much more common than F9/HA (Table 1's skew).
	f := Flights(FlightsConfig{N: 30000, Seed: 7})
	counts := map[string]int{}
	ci, _ := f.Schema().Index("carrier")
	f.Scan(func(row []value.Value, _ float64) bool {
		counts[row[ci].AsText()]++
		return true
	})
	if counts["WN"] < 5*counts["F9"] {
		t.Errorf("WN=%d F9=%d: carrier skew too weak", counts["WN"], counts["F9"])
	}
	if counts["US"] == 0 || counts["F9"] == 0 {
		t.Error("light-hitter carriers absent; query 8 needs them")
	}
}

func TestBiasedSampleExactComposition(t *testing.T) {
	f := Flights(FlightsConfig{N: 20000, Seed: 8})
	pred, err := sql.ParseExpr("elapsed_time > 200")
	if err != nil {
		t.Fatal(err)
	}
	n := 1000
	s, err := BiasedSampleExact(f, pred, n, 0.95, "s", 9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != n {
		t.Fatalf("sample size = %d", s.Len())
	}
	long := 0
	ei, _ := s.Schema().Index("elapsed_time")
	s.Scan(func(row []value.Value, _ float64) bool {
		if row[ei].AsInt() > 200 {
			long++
		}
		return true
	})
	frac := float64(long) / float64(n)
	if math.Abs(frac-0.95) > 0.02 {
		t.Errorf("long-flight fraction = %.3f, want 0.95", frac)
	}
}

func TestBiasedSampleExactErrors(t *testing.T) {
	f := Flights(FlightsConfig{N: 100, Seed: 8})
	pred, _ := sql.ParseExpr("elapsed_time > 200")
	if _, err := BiasedSampleExact(f, pred, 0, 0.5, "s", 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := BiasedSampleExact(f, pred, 10, 1.5, "s", 1); err == nil {
		t.Error("bias > 1 should fail")
	}
	if _, err := BiasedSampleExact(f, pred, 1000, 0.5, "s", 1); err == nil {
		t.Error("oversized sample should fail")
	}
}

func TestUniformSample(t *testing.T) {
	f := Flights(FlightsConfig{N: 5000, Seed: 10})
	s, err := UniformSample(f, 500, "u", 11)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 500 {
		t.Fatalf("size = %d", s.Len())
	}
	// Means should be close to the population's.
	pm, _ := f.FloatColumn("distance")
	sm, _ := s.FloatColumn("distance")
	if d := stats.PercentDiff(stats.Mean(sm), stats.Mean(pm)); d > 0.1 {
		t.Errorf("uniform sample mean off by %.3f", d)
	}
}

func TestMigrantsComposition(t *testing.T) {
	m := Migrants(MigrantsConfig{N: 10000, Seed: 12})
	if m.Len() != 10000 {
		t.Fatalf("N = %d", m.Len())
	}
	countries := map[string]int{}
	providers := map[string]int{}
	m.Scan(func(row []value.Value, _ float64) bool {
		countries[row[0].AsText()]++
		providers[row[1].AsText()]++
		return true
	})
	for _, c := range MigrantCountries {
		if countries[c] == 0 {
			t.Errorf("country %q absent", c)
		}
	}
	for _, p := range EmailProviders {
		if providers[p] == 0 {
			t.Errorf("provider %q absent", p)
		}
	}
	// AOL is a light hitter everywhere.
	if providers["AOL"] >= providers["Yahoo"] {
		t.Errorf("AOL=%d Yahoo=%d: AOL should be rare", providers["AOL"], providers["Yahoo"])
	}
	// Yahoo share differs by country (the bias the example debiases).
	ukYahoo, deYahoo := 0, 0
	ukAll, deAll := 0, 0
	m.Scan(func(row []value.Value, _ float64) bool {
		switch row[0].AsText() {
		case "UK":
			ukAll++
			if row[1].AsText() == "Yahoo" {
				ukYahoo++
			}
		case "DE":
			deAll++
			if row[1].AsText() == "Yahoo" {
				deYahoo++
			}
		}
		return true
	})
	ukShare := float64(ukYahoo) / float64(ukAll)
	deShare := float64(deYahoo) / float64(deAll)
	if ukShare <= deShare {
		t.Errorf("UK Yahoo share %.3f should exceed DE's %.3f", ukShare, deShare)
	}
}

func TestDefaultsApplied(t *testing.T) {
	if got := Spiral(SpiralConfig{}).Len(); got != 50000 {
		t.Errorf("spiral default N = %d", got)
	}
	if got := Flights(FlightsConfig{N: 10}).Len(); got != 10 {
		t.Errorf("flights explicit N = %d", got)
	}
	if got := Migrants(MigrantsConfig{N: 10}).Len(); got != 10 {
		t.Errorf("migrants explicit N = %d", got)
	}
}

// Package dataset generates the paper's evaluation workloads: the synthetic
// 2-D spiral population (Sec 5.3 "Synthetic Data", following the paper's
// citation [9]), an IDEBench-style flights dataset (Sec 5.3 "Flights Data"),
// the migrants population of the motivating example (Sec 2), and the biased
// samplers that produce the experiments' skewed samples.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mosaic/internal/schema"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// SpiralSchema is the two-attribute schema of the synthetic population.
var SpiralSchema = schema.MustNew(
	schema.Attribute{Name: "x", Kind: value.KindFloat},
	schema.Attribute{Name: "y", Kind: value.KindFloat},
)

// SpiralConfig tunes the spiral population generator.
type SpiralConfig struct {
	N     int     // population size (default 50000)
	Turns float64 // spiral turns (default 2)
	Noise float64 // Gaussian noise on each coordinate (default 0.01)
	Seed  int64
}

func (c SpiralConfig) withDefaults() SpiralConfig {
	if c.N <= 0 {
		c.N = 50000
	}
	if c.Turns <= 0 {
		c.Turns = 2
	}
	if c.Noise <= 0 {
		c.Noise = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Spiral generates an Archimedean-spiral population scaled into roughly the
// unit square (matching Fig 5's axes), with Gaussian coordinate noise.
func Spiral(cfg SpiralConfig) *table.Table {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := table.New("spiral_population", SpiralSchema)
	for i := 0; i < cfg.N; i++ {
		// u in [0,1): position along the spiral.
		u := rng.Float64()
		theta := cfg.Turns * 2 * math.Pi * u
		r := 0.05 + 0.45*u
		x := 0.5 + r*math.Cos(theta) + rng.NormFloat64()*cfg.Noise
		y := 0.4 + r*math.Sin(theta) + rng.NormFloat64()*cfg.Noise
		// Appending to a fresh table with a matching schema cannot fail.
		_ = t.Append([]value.Value{value.Float(x), value.Float(y)})
	}
	return t
}

// BiasedSpiralSample draws n rows from the spiral population with spatial
// selection bias: tuples in the right half-plane (x > 0.5) are
// overrepresented by the odds factor bias (Fig 5a's sample concentrates on
// part of the spiral). bias = 1 is unbiased.
func BiasedSpiralSample(pop *table.Table, n int, bias float64, seed int64) (*table.Table, error) {
	if bias <= 0 {
		return nil, fmt.Errorf("dataset: bias factor must be positive, got %g", bias)
	}
	xi, ok := pop.Schema().Index("x")
	if !ok {
		return nil, fmt.Errorf("dataset: population lacks attribute x")
	}
	weight := func(row []value.Value) float64 {
		if row[xi].AsFloat() > 0.5 {
			return bias
		}
		return 1
	}
	return weightedSampleWithoutReplacement(pop, n, weight, "spiral_sample", seed)
}

// weightedSampleWithoutReplacement draws n rows without replacement with
// probability proportional to weight(row), using exponential-sort sampling
// (Efraimidis–Spirakis keys).
func weightedSampleWithoutReplacement(pop *table.Table, n int, weight func([]value.Value) float64, name string, seed int64) (*table.Table, error) {
	if n <= 0 || n > pop.Len() {
		return nil, fmt.Errorf("dataset: sample size %d out of range (population %d)", n, pop.Len())
	}
	rng := rand.New(rand.NewSource(seed))
	type keyed struct {
		idx int
		key float64
	}
	keys := make([]keyed, pop.Len())
	i := 0
	var werr error
	pop.Scan(func(row []value.Value, _ float64) bool {
		w := weight(row)
		if w <= 0 {
			werr = fmt.Errorf("dataset: non-positive sampling weight %g", w)
			return false
		}
		// key = -Exp(1)/w; taking the n largest keys realizes PPS sampling
		// without replacement.
		keys[i] = keyed{idx: i, key: -rng.ExpFloat64() / w}
		i++
		return true
	})
	if werr != nil {
		return nil, werr
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key > keys[b].key })
	out := table.New(name, pop.Schema())
	for _, k := range keys[:n] {
		if err := out.Append(pop.Row(k.idx)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

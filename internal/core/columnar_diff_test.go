package core

import (
	"math/rand"
	"testing"

	"mosaic/internal/sql"
	"mosaic/internal/swg"
)

// columnarWorld builds a three-attribute world with a biased sample, full
// metadata, a derived population, and an auxiliary table with NULLs —
// enough surface to drive every visibility through both executors.
func columnarWorld(t *testing.T, rowExec bool) *Engine {
	t.Helper()
	e := NewEngine(Options{
		Seed:        1,
		OpenSamples: 4,
		Workers:     2,
		RowExec:     rowExec,
		SWG: swg.Config{
			Hidden: []int{16, 16}, Latent: 2, Epochs: 4,
			BatchSize: 64, Projections: 8, StepsPerEpoch: 4,
		},
	})
	exec1(t, e, `
		CREATE GLOBAL POPULATION World (grp TEXT, v INT, z FLOAT);
		CREATE POPULATION Agroup AS (SELECT grp, v, z FROM World WHERE grp = 'a');
		CREATE SAMPLE S AS (SELECT * FROM World WHERE v <= 2);
		CREATE TABLE Truth (grp TEXT, v INT, z FLOAT, n INT);
		CREATE TABLE Aux (c TEXT, x INT, y FLOAT);
	`)
	if err := e.Ingest("Truth", [][]any{
		{"a", 1, 0.5, 40}, {"b", 2, 1.5, 60}, {"a", 2, 2.5, 30}, {"c", 1, 0.5, 20},
	}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `
		CREATE METADATA World_M1 AS (SELECT grp, n FROM Truth);
		CREATE METADATA World_M2 AS (SELECT v, n FROM Truth);
	`)
	rng := rand.New(rand.NewSource(5))
	rows := make([][]any, 0, 60)
	grps := []string{"a", "a", "a", "b", "c"}
	for i := 0; i < 60; i++ {
		rows = append(rows, []any{
			grps[rng.Intn(len(grps))],
			int64(1 + rng.Intn(2)),
			float64(rng.Intn(40)) / 4,
		})
	}
	if err := e.Ingest("S", rows); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `
		INSERT INTO Aux VALUES
			('p', 1, 0.25), ('q', 2, NULL), (NULL, 3, 1.5),
			('p', NULL, 2.5), ('q', 2, 0.25), ('p', 1, NULL);
	`)
	return e
}

// columnarDiffQueries spans the three visibilities, both population scopes,
// direct sample/table access, NULL handling, and the post-aggregation
// clauses.
var columnarDiffQueries = []string{
	`SELECT CLOSED grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp`,
	`SELECT CLOSED COUNT(*), AVG(z), MIN(v), MAX(z) FROM World WHERE grp != 'b'`,
	`SELECT CLOSED grp, v, COUNT(*) AS cnt FROM World GROUP BY grp, v ORDER BY cnt DESC, grp LIMIT 3`,
	`SELECT SEMI-OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp`,
	`SELECT SEMI-OPEN COUNT(*) FROM World WHERE z BETWEEN 1 AND 8`,
	`SELECT SEMI-OPEN v, SUM(WEIGHT) FROM World WHERE grp IN ('a', 'c') GROUP BY v ORDER BY v`,
	`SELECT SEMI-OPEN AVG(v) FROM World`,
	`SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp`,
	`SELECT OPEN AVG(v), COUNT(*) FROM World WHERE v >= 1`,
	`SELECT OPEN v, COUNT(*) AS cnt FROM World GROUP BY v HAVING cnt > 0 ORDER BY v DESC LIMIT 2`,
	`SELECT CLOSED grp, COUNT(*) FROM Agroup GROUP BY grp`,
	`SELECT SEMI-OPEN COUNT(*), AVG(z) FROM Agroup`,
	`SELECT OPEN COUNT(*) FROM Agroup`,
	`SELECT * FROM S WHERE v = 1 ORDER BY z LIMIT 5`,
	`SELECT grp, COUNT(*) FROM S GROUP BY grp ORDER BY grp`,
	`SELECT c, COUNT(x), SUM(y), MIN(y) FROM Aux GROUP BY c`,
	`SELECT c, x, COUNT(*) FROM Aux WHERE y IS NOT NULL GROUP BY c, x`,
	`SELECT DISTINCT c FROM Aux WHERE x > 1 OR y < 1`,
}

// TestColumnarVsRowAcrossVisibilities is the engine-level differential
// harness: identical scripts on two engines — one forced onto the row
// executor, one on the columnar path — must render byte-identical answers
// for CLOSED, SEMI-OPEN, and OPEN queries alike.
func TestColumnarVsRowAcrossVisibilities(t *testing.T) {
	rowEng := columnarWorld(t, true)
	vecEng := columnarWorld(t, false)
	for _, q := range columnarDiffQueries {
		sel, err := sql.ParseQuery(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		rres, rerr := rowEng.Query(sel)
		vres, verr := vecEng.Query(sel)
		switch {
		case rerr != nil && verr != nil:
			if rerr.Error() != verr.Error() {
				t.Errorf("%q: error mismatch\n  row: %v\n  vec: %v", q, rerr, verr)
			}
		case rerr != nil || verr != nil:
			t.Errorf("%q: one engine errored\n  row: %v\n  vec: %v", q, rerr, verr)
		default:
			if rs, vs := rres.String(), vres.String(); rs != vs {
				t.Errorf("%q: answer mismatch\n--- row engine ---\n%s\n--- columnar engine ---\n%s", q, rs, vs)
			}
		}
	}
}

// TestColumnarEngineStableUnderRepeat guards the snapshot machinery against
// cache interactions: repeated mixed-visibility queries on the columnar
// engine must not drift.
func TestColumnarEngineStableUnderRepeat(t *testing.T) {
	e := columnarWorld(t, false)
	for _, q := range []string{
		`SELECT SEMI-OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp`,
		`SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp`,
	} {
		sel, err := sql.ParseQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Query(sel)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		first := res.String()
		for i := 0; i < 3; i++ {
			again, err := e.Query(sel)
			if err != nil {
				t.Fatalf("%q rerun: %v", q, err)
			}
			if s := again.String(); s != first {
				t.Fatalf("%q drifted on rerun %d:\n%s\nvs\n%s", q, i+1, s, first)
			}
		}
	}
}

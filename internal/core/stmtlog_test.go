package core

import (
	"errors"
	"fmt"
	"testing"
)

// TestStmtLogDeltaReplaysToIdenticalDump: the delta contract end to end —
// the statement suffix between two generations, replayed against a copy at
// the older generation, lands on a byte-identical dump at the newer one.
func TestStmtLogDeltaReplaysToIdenticalDump(t *testing.T) {
	primary := NewEngine(Options{Seed: 3})
	exec1(t, primary, `CREATE TABLE T (k TEXT, v INT); INSERT INTO T VALUES ('a', 1), ('b', 2)`)

	// Follower boots from the full dump at generation G0.
	script, g0, err := primary.DumpWithGeneration()
	if err != nil {
		t.Fatal(err)
	}
	if g0 != primary.Generation() {
		t.Fatalf("DumpWithGeneration = %d, Generation = %d", g0, primary.Generation())
	}
	follower := restore(t, script)

	// Primary moves on.
	exec1(t, primary, `INSERT INTO T VALUES ('c', 3)`)
	exec1(t, primary, `CREATE TABLE U (x INT); INSERT INTO U VALUES (7)`)

	stmts, g1, err := primary.DeltaScript(g0)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != primary.Generation() {
		t.Fatalf("delta generation = %d, want %d", g1, primary.Generation())
	}
	if len(stmts) != 3 {
		t.Fatalf("delta has %d statements, want 3: %+v", len(stmts), stmts)
	}
	for i, st := range stmts {
		if st.Failed {
			t.Fatalf("statement %d marked failed: %+v", i, st)
		}
		if _, err := follower.ExecScript(st.Src); err != nil {
			t.Fatalf("replay %q: %v", st.Src, err)
		}
	}
	want, err := primary.DumpScript()
	if err != nil {
		t.Fatal(err)
	}
	got, err := follower.DumpScript()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("replayed follower dump differs from primary\nfollower:\n%s\nprimary:\n%s", got, want)
	}
}

// TestStmtLogCaughtUpDeltaIsEmpty: asking for the current generation's
// suffix returns no statements and no error.
func TestStmtLogCaughtUpDeltaIsEmpty(t *testing.T) {
	e := NewEngine(Options{})
	exec1(t, e, `CREATE TABLE T (v INT)`)
	stmts, gen, err := e.DeltaScript(e.Generation())
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 0 || gen != e.Generation() {
		t.Errorf("caught-up delta = %d stmts at gen %d, want 0 at %d", len(stmts), gen, e.Generation())
	}
}

// TestStmtLogFailedStatementsAreLogged: a failing statement still bumps the
// generation and appears in the delta with Failed set — the follower must
// replay it to reproduce any deterministic partial effects.
func TestStmtLogFailedStatementsAreLogged(t *testing.T) {
	e := NewEngine(Options{})
	exec1(t, e, `CREATE TABLE T (v INT)`)
	from := e.Generation()
	if _, err := e.ExecScript(`INSERT INTO Nonexistent VALUES (1)`); err == nil {
		t.Fatal("insert into a missing table succeeded")
	}
	stmts, gen, err := e.DeltaScript(from)
	if err != nil {
		t.Fatal(err)
	}
	if gen != from+1 {
		t.Fatalf("failed statement did not bump the generation: %d -> %d", from, gen)
	}
	if len(stmts) != 1 || !stmts[0].Failed {
		t.Fatalf("delta = %+v, want one Failed statement", stmts)
	}
}

// TestStmtLogTruncation: a bounded log drops its oldest entries; a delta
// reaching past the retained window answers ErrLogTruncated (the follower's
// signal to re-bootstrap), while a delta inside the window still works.
func TestStmtLogTruncation(t *testing.T) {
	e := NewEngine(Options{StmtLogSize: 4})
	exec1(t, e, `CREATE TABLE T (v INT)`)
	base := e.Generation()
	for i := 0; i < 8; i++ {
		exec1(t, e, fmt.Sprintf("INSERT INTO T VALUES (%d)", i))
	}
	if _, _, err := e.DeltaScript(base); !errors.Is(err, ErrLogTruncated) {
		t.Errorf("delta past the retained window: err = %v, want ErrLogTruncated", err)
	}
	// The newest 4 mutations are still retained.
	stmts, gen, err := e.DeltaScript(e.Generation() - 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 || gen != e.Generation() {
		t.Errorf("in-window delta = %d stmts at gen %d, want 4 at %d", len(stmts), gen, e.Generation())
	}
	// A "from" ahead of the log (a follower of a restarted primary) is
	// truncation too, never an empty success.
	if _, _, err := e.DeltaScript(e.Generation() + 10); !errors.Is(err, ErrLogTruncated) {
		t.Errorf("delta from the future: err = %v, want ErrLogTruncated", err)
	}
}

// TestStmtLogBarrierPoisonsDelta: mutations without SQL source (Go-API
// ingest) log barriers — any delta range crossing one refuses with
// ErrLogTruncated instead of silently skipping the mutation.
func TestStmtLogBarrierPoisonsDelta(t *testing.T) {
	e := NewEngine(Options{})
	exec1(t, e, `CREATE GLOBAL POPULATION P (g TEXT, v INT); CREATE SAMPLE S AS (SELECT * FROM P)`)
	from := e.Generation()
	if err := e.Ingest("S", [][]any{{"a", 1}}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `CREATE TABLE After (x INT)`)
	if _, _, err := e.DeltaScript(from); !errors.Is(err, ErrLogTruncated) {
		t.Errorf("delta across a Go-API barrier: err = %v, want ErrLogTruncated", err)
	}
	// A range strictly after the barrier is fine.
	stmts, _, err := e.DeltaScript(from + 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 {
		t.Errorf("post-barrier delta = %d stmts, want 1", len(stmts))
	}
}

// TestStmtLogDisabledRetainsNothing: StmtLogSize < 0 disables retention —
// every non-empty delta range answers ErrLogTruncated, forcing full
// snapshots, while the generation keeps advancing.
func TestStmtLogDisabledRetainsNothing(t *testing.T) {
	e := NewEngine(Options{StmtLogSize: -1})
	exec1(t, e, `CREATE TABLE T (v INT)`)
	from := e.Generation()
	exec1(t, e, `INSERT INTO T VALUES (1)`)
	if _, _, err := e.DeltaScript(from); !errors.Is(err, ErrLogTruncated) {
		t.Errorf("disabled log served a delta: err = %v, want ErrLogTruncated", err)
	}
	if stmts, _, err := e.DeltaScript(e.Generation()); err != nil || len(stmts) != 0 {
		t.Errorf("caught-up delta on a disabled log: %v, %d stmts", err, len(stmts))
	}
}

package core

import "errors"

// ErrLogTruncated is returned by DeltaScript when the requested generation
// predates the bounded statement log's retention window, lies in the future,
// or the requested range crosses a barrier (a mutation with no SQL source).
// In every such case the follower cannot catch up incrementally and must
// re-bootstrap from a full snapshot.
var ErrLogTruncated = errors.New("core: statement log truncated")

// LogStmt is one replicated statement: the exact SQL source the primary
// executed and whether that execution failed. Followers replay failed
// statements too — a failed mutation can leave partial effects behind
// (INSERT appends rows before erroring on a later one), and replaying the
// same source against the same state reproduces those effects and the
// failure deterministically. A follower whose replay outcome disagrees with
// Failed has diverged and must re-bootstrap.
type LogStmt struct {
	Src    string
	Failed bool
}

// stmtLog is the bounded per-generation statement log behind
// GET /v1/snapshot/delta. Entry i records the mutation that advanced the
// engine from generation base+i to base+i+1; once len(entries) reaches cap,
// the oldest entry is dropped and base advances. Mutations that have no SQL
// source (parsed-statement Exec, Go-API ingestion, mechanism and marginal
// installation) append barrier entries that poison any delta range crossing
// them.
//
// The log is guarded by the engine's mu: appends happen under the write lock
// (in the same critical section as the generation bump), reads under the
// read lock — so base+len(entries) always equals the generation counter.
type stmtLog struct {
	cap     int
	base    uint64
	entries []logEntry
}

type logEntry struct {
	src     string
	failed  bool
	barrier bool
}

// append records one sourced mutation.
func (l *stmtLog) append(src string, failed bool) {
	l.push(logEntry{src: src, failed: failed})
}

// appendBarrier records a mutation that cannot be replayed from SQL.
func (l *stmtLog) appendBarrier() {
	l.push(logEntry{barrier: true})
}

func (l *stmtLog) push(ent logEntry) {
	if l.cap <= 0 {
		// Retention disabled: keep base == generation so every delta request
		// answers ErrLogTruncated (full-snapshot-only replication).
		l.base++
		return
	}
	if len(l.entries) >= l.cap {
		drop := len(l.entries) - l.cap + 1
		n := copy(l.entries, l.entries[drop:])
		l.entries = l.entries[:n]
		l.base += uint64(drop)
	}
	l.entries = append(l.entries, ent)
}

// delta returns the statements advancing generation from → cur, or
// ErrLogTruncated when that range is unserviceable.
func (l *stmtLog) delta(from, cur uint64) ([]LogStmt, error) {
	if from == cur {
		return nil, nil
	}
	if from > cur || from < l.base {
		return nil, ErrLogTruncated
	}
	start := int(from - l.base)
	out := make([]LogStmt, 0, len(l.entries)-start)
	for _, ent := range l.entries[start:] {
		if ent.barrier {
			return nil, ErrLogTruncated
		}
		out = append(out, LogStmt{Src: ent.src, Failed: ent.failed})
	}
	return out, nil
}

package core

import (
	"context"
	"fmt"
	"testing"

	"mosaic/internal/sql"
	"mosaic/internal/value"
)

// bindOne binds a single value to a one-placeholder statement.
func bindOne(t *testing.T, sel *sql.Select, v value.Value) *sql.Select {
	t.Helper()
	bound, err := sql.BindParams(sel, []value.Value{v})
	if err != nil {
		t.Fatal(err)
	}
	return bound
}

// TestPreparedParamVsLiteralGrid: for every visibility, a prepared
// parameterized query must answer byte-identically to the same query with
// the literal inlined — both through Query and through QueryPrepared.
func TestPreparedParamVsLiteralGrid(t *testing.T) {
	cases := []struct {
		name    string
		param   string
		literal string
		bind    value.Value
	}{
		{
			"closed-int",
			"SELECT CLOSED grp, COUNT(*) FROM World WHERE v > ? GROUP BY grp ORDER BY grp",
			"SELECT CLOSED grp, COUNT(*) FROM World WHERE v > 0 GROUP BY grp ORDER BY grp",
			value.Int(0),
		},
		{
			"semiopen-int",
			"SELECT SEMI-OPEN grp, COUNT(*) FROM World WHERE v > ? GROUP BY grp ORDER BY grp",
			"SELECT SEMI-OPEN grp, COUNT(*) FROM World WHERE v > 0 GROUP BY grp ORDER BY grp",
			value.Int(0),
		},
		{
			"open-int",
			"SELECT OPEN grp, COUNT(*) FROM World WHERE v > ? GROUP BY grp ORDER BY grp",
			"SELECT OPEN grp, COUNT(*) FROM World WHERE v > 0 GROUP BY grp ORDER BY grp",
			value.Int(0),
		},
		{
			"closed-text",
			"SELECT CLOSED COUNT(*) FROM World WHERE grp = ?",
			"SELECT CLOSED COUNT(*) FROM World WHERE grp = 'a'",
			value.Text("a"),
		},
		{
			"open-float-arith",
			"SELECT OPEN grp, SUM(v) FROM World WHERE v * 2.0 > ? GROUP BY grp ORDER BY grp",
			"SELECT OPEN grp, SUM(v) FROM World WHERE v * 2.0 > 0.5 GROUP BY grp ORDER BY grp",
			value.Float(0.5),
		},
	}
	e := smallWorld(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := e.Query(mustParse(t, tc.literal))
			if err != nil {
				t.Fatalf("literal: %v", err)
			}
			skel := mustParse(t, tc.param)
			if skel.NumParams != 1 {
				t.Fatalf("NumParams = %d, want 1", skel.NumParams)
			}
			bound := bindOne(t, skel, tc.bind)
			got, err := e.Query(bound)
			if err != nil {
				t.Fatalf("bound: %v", err)
			}
			if got.String() != want.String() {
				t.Errorf("bound != literal:\n got: %s\nwant: %s", got, want)
			}
			pq := e.Prepare(skel)
			for i := 0; i < 2; i++ { // second run exercises the cached plan
				pres, err := e.QueryPrepared(context.Background(), pq, bound)
				if err != nil {
					t.Fatalf("prepared run %d: %v", i, err)
				}
				if pres.String() != want.String() {
					t.Errorf("prepared run %d != literal:\n got: %s\nwant: %s", i, pres, want)
				}
			}
		})
	}
}

// TestPreparedInvalidatesOnDDL: a prepared statement must observe every
// DDL/DML that happens after it was prepared — inserts into its relation,
// and even a new, larger sample that changes which table the planner picks.
func TestPreparedInvalidatesOnDDL(t *testing.T) {
	e := smallWorld(t)

	// Auxiliary-table route: counts track inserts.
	skel := mustParse(t, "SELECT COUNT(*) FROM Truth WHERE n > ?")
	pq := e.Prepare(skel)
	run := func() float64 {
		t.Helper()
		res, err := e.QueryPrepared(context.Background(), pq, bindOne(t, skel, value.Int(0)))
		if err != nil {
			t.Fatal(err)
		}
		f, err := res.Rows[0][0].Float64()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if got := run(); got != 2 {
		t.Fatalf("initial count = %g, want 2", got)
	}
	exec1(t, e, "INSERT INTO Truth VALUES ('c', 3, 10)")
	if got := run(); got != 3 {
		t.Fatalf("count after INSERT = %g, want 3 (stale plan?)", got)
	}

	// Population route: a new larger covering sample must be re-picked. The
	// invariant is that QueryPrepared always matches an unprepared Query.
	popSkel := mustParse(t, "SELECT CLOSED COUNT(*) FROM World WHERE v >= ?")
	popPq := e.Prepare(popSkel)
	bound := bindOne(t, popSkel, value.Int(0))
	check := func(stage string) {
		t.Helper()
		got, err := e.QueryPrepared(context.Background(), popPq, bound)
		if err != nil {
			t.Fatalf("%s: prepared: %v", stage, err)
		}
		want, err := e.Query(bound)
		if err != nil {
			t.Fatalf("%s: query: %v", stage, err)
		}
		if got.String() != want.String() {
			t.Errorf("%s: prepared diverged from query:\n got: %s\nwant: %s", stage, got, want)
		}
	}
	check("before new sample")
	exec1(t, e, "CREATE SAMPLE S2 AS (SELECT * FROM World)")
	rows := make([][]any, 0, 20)
	for i := 0; i < 20; i++ {
		rows = append(rows, []any{"b", 2})
	}
	if err := e.Ingest("S2", rows); err != nil {
		t.Fatal(err)
	}
	check("after larger sample S2")

	// Sanity: the larger sample really changed the answer (20 b-tuples).
	res, err := e.QueryPrepared(context.Background(), popPq, bound)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := res.Rows[0][0].Float64(); f != 20 {
		t.Errorf("count after S2 = %g, want 20 (planner did not re-pick)", f)
	}
}

// TestPreparedRejectsUnbound: executing with placeholders still in the tree
// fails loudly on both the plain and prepared paths.
func TestPreparedRejectsUnbound(t *testing.T) {
	e := smallWorld(t)
	skel := mustParse(t, "SELECT COUNT(*) FROM Truth WHERE n > ?")
	if _, err := e.Query(skel); err == nil {
		t.Error("Query with unbound params succeeded")
	}
	if _, err := e.QueryPrepared(context.Background(), e.Prepare(skel), skel); err == nil {
		t.Error("QueryPrepared with unbound params succeeded")
	}
	if _, err := sql.BindParams(skel, nil); err == nil {
		t.Error("BindParams with missing values succeeded")
	}
	if _, err := sql.BindParams(skel, []value.Value{value.Int(1), value.Int(2)}); err == nil {
		t.Error("BindParams with excess values succeeded")
	}
}

// TestPreparedWrongEngineRejected: a PreparedQuery is bound to its engine.
func TestPreparedWrongEngineRejected(t *testing.T) {
	e1, e2 := smallWorld(t), smallWorld(t)
	skel := mustParse(t, "SELECT COUNT(*) FROM Truth")
	pq := e1.Prepare(skel)
	if _, err := e2.QueryPrepared(context.Background(), pq, skel); err == nil {
		t.Error("foreign engine accepted another engine's prepared query")
	}
}

// TestGenerationAdvancesOnMutation pins the invalidation signal itself.
func TestGenerationAdvancesOnMutation(t *testing.T) {
	e := NewEngine(Options{})
	g0 := e.Generation()
	exec1(t, e, "CREATE TABLE T (a INT)")
	if e.Generation() == g0 {
		t.Error("CREATE TABLE did not advance the generation")
	}
	g1 := e.Generation()
	exec1(t, e, "INSERT INTO T VALUES (1)")
	if e.Generation() == g1 {
		t.Error("INSERT did not advance the generation")
	}
	g2 := e.Generation()
	if err := e.Ingest("T", [][]any{{int64(2)}}); err != nil {
		t.Fatal(err)
	}
	if e.Generation() == g2 {
		t.Error("Ingest did not advance the generation")
	}
	// Queries must not advance it.
	g3 := e.Generation()
	if _, err := e.Query(mustParse(t, "SELECT COUNT(*) FROM T")); err != nil {
		t.Fatal(err)
	}
	if e.Generation() != g3 {
		t.Error("SELECT advanced the generation")
	}
}

// TestParamRendersAndReparses: the ? placeholder round-trips through the
// expression renderer (the fuzz harness relies on this fixed point).
func TestParamRendersAndReparses(t *testing.T) {
	skel := mustParse(t, "SELECT COUNT(*) FROM T WHERE a > ? AND b IN (?, 3) AND c BETWEEN ? AND 9")
	if skel.NumParams != 3 {
		t.Fatalf("NumParams = %d, want 3", skel.NumParams)
	}
	rendered := fmt.Sprintf("SELECT COUNT(*) FROM T WHERE %s", skel.Where)
	again := mustParse(t, rendered)
	if again.NumParams != 3 {
		t.Fatalf("re-parsed NumParams = %d, want 3 (rendered: %s)", again.NumParams, rendered)
	}
}

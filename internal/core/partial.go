package core

import (
	"context"
	"fmt"

	"mosaic/internal/exec"
	"mosaic/internal/sql"
)

// PartialContext executes the scatter half of fleet execution: the per-shard
// partial aggregate plan for shard `shard` of `shards`, over this engine's
// full copy of the data (every fleet member holds the whole dataset; the
// shard index selects which contiguous slice this process scans). The weight
// resolution mirrors query() exactly — seed weights for CLOSED, mechanism /
// IPF weights for SEMI-OPEN — and every weight source is deterministic in
// the engine options and data, so identical fleet members produce
// bit-identical partials.
//
// It returns the generation counter observed under the engine read lock
// (mutations hold the write lock, so the partial is guaranteed to have
// executed at exactly that generation). handled=false means the query is not
// partial-executable — OPEN visibility, a non-aggregate query, or a shape
// only the row engine serves — and must be answered as one unified query
// instead; the fleet coordinator passes those through to shard 0.
func (e *Engine) PartialContext(ctx context.Context, sel *sql.Select, shard, shards int) (*exec.ShardPartial, uint64, bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	gen := e.gen.Load()
	p, handled, err := e.partial(ctx, sel, shard, shards)
	return p, gen, handled, err
}

func (e *Engine) partial(ctx context.Context, sel *sql.Select, shard, shards int) (*exec.ShardPartial, bool, error) {
	if sel.NumParams > 0 {
		return nil, true, fmt.Errorf("core: statement has %d unbound parameter(s); bind them with a prepared statement", sel.NumParams)
	}
	// partialOpts strips the ShardScan hook: fleet shard indices live in the
	// coordinator's space, not this engine's Options.Shards space, so they
	// must not feed the local per-shard scan counters.
	partialOpts := func(weighted bool, override []float64) exec.Options {
		o := e.execOpts(weighted, override)
		o.ShardScan = nil
		return o
	}
	switch e.cat.Resolve(sel.From) {
	case "table":
		if sel.Visibility == sql.VisibilitySemiOpen || sel.Visibility == sql.VisibilityOpen {
			return nil, true, fmt.Errorf("core: %s queries apply to populations; %q is an auxiliary table", sel.Visibility, sel.From)
		}
		t, _ := e.cat.Table(sel.From)
		return exec.PartialAggregate(ctx, t.Snapshot(), sel, partialOpts(false, nil), shard, shards)
	case "sample":
		if sel.Visibility == sql.VisibilitySemiOpen || sel.Visibility == sql.VisibilityOpen {
			return nil, true, fmt.Errorf("core: %s queries apply to populations; query the population %q was sampled from", sel.Visibility, sel.From)
		}
		s, _ := e.cat.Sample(sel.From)
		return exec.PartialAggregate(ctx, s.Table.Snapshot(), sel, partialOpts(true, nil), shard, shards)
	case "population":
		pop, _ := e.cat.Population(sel.From)
		sel = expandStars(sel, pop)
		vis := sel.Visibility
		if vis == sql.VisibilityDefault {
			vis = sql.VisibilitySemiOpen
		}
		if vis == sql.VisibilityOpen {
			// OPEN answers come from generated replicates of the unified
			// model — never sharded, in process or across the fleet.
			return nil, false, nil
		}
		pc, err := e.plan(pop, sel)
		if err != nil {
			return nil, true, err
		}
		switch vis {
		case sql.VisibilityClosed:
			q := *sel
			q.Where = andExpr(sel.Where, pc.viewPred)
			return exec.PartialAggregate(ctx, pc.sample.Table.Snapshot(), &q, partialOpts(true, pc.sample.SeedWeights()), shard, shards)
		case sql.VisibilitySemiOpen:
			if w, ok, err := e.knownMechanismWeights(pc.sample); err != nil {
				return nil, true, err
			} else if ok {
				q := *sel
				q.Where = andExpr(sel.Where, pc.viewPred)
				return exec.PartialAggregate(ctx, pc.sample.Table.Snapshot(), &q, partialOpts(true, w), shard, shards)
			}
			if len(pc.margs) == 0 {
				return nil, true, fmt.Errorf("core: SEMI-OPEN query on %q needs a known mechanism or population marginals", pc.pop.Name)
			}
			if pc.scope == "query" && pc.viewPred != nil {
				sub, err := e.ipfViewFit(ctx, pc)
				if err != nil {
					return nil, true, err
				}
				q := *sel
				return exec.PartialAggregate(ctx, sub.Snapshot(), &q, partialOpts(true, nil), shard, shards)
			}
			w, err := e.ipfGlobalFit(ctx, pc)
			if err != nil {
				return nil, true, err
			}
			q := *sel
			q.Where = andExpr(sel.Where, pc.viewPred)
			return exec.PartialAggregate(ctx, pc.sample.Table.Snapshot(), &q, partialOpts(true, w), shard, shards)
		default:
			return nil, true, fmt.Errorf("core: unsupported visibility %v", vis)
		}
	default:
		return nil, true, fmt.Errorf("core: unknown relation %q", sel.From)
	}
}

package core

import (
	"fmt"
	"strings"
	"testing"

	"mosaic/internal/sql"
	"mosaic/internal/swg"
	"mosaic/internal/value"
)

// determinismWorld builds a small two-attribute world with a biased sample
// and full metadata, parameterized by the engine worker count.
func determinismWorld(t *testing.T, workers int) *Engine {
	t.Helper()
	e := NewEngine(Options{
		Seed:        1,
		OpenSamples: 6,
		Workers:     workers,
		SWG: swg.Config{
			Hidden: []int{16, 16}, Latent: 2, Epochs: 6,
			BatchSize: 128, Projections: 12, StepsPerEpoch: 4,
		},
	})
	exec1(t, e, `
		CREATE GLOBAL POPULATION World (grp TEXT, v INT);
		CREATE SAMPLE S AS (SELECT * FROM World WHERE grp = 'a');
		CREATE TABLE Truth (grp TEXT, v INT, n INT);
	`)
	if err := e.Ingest("Truth", [][]any{
		{"a", 1, 40}, {"b", 2, 60},
	}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `
		CREATE METADATA World_M1 AS (SELECT grp, n FROM Truth);
		CREATE METADATA World_M2 AS (SELECT v, n FROM Truth);
	`)
	rows := make([][]any, 0, 10)
	for i := 0; i < 10; i++ {
		rows = append(rows, []any{"a", 1})
	}
	if err := e.Ingest("S", rows); err != nil {
		t.Fatal(err)
	}
	return e
}

// renderRows serializes full result rows (values and order) for equality
// comparison across engines.
func renderRows(rows [][]value.Value) string {
	out := ""
	for _, row := range rows {
		for _, v := range row {
			out += v.HashKey() + "|" + v.String() + "\x1f"
		}
		out += "\n"
	}
	return out
}

// TestResultsIdenticalAcrossWorkerCounts is the engine-level determinism
// guarantee: the same script with Seed 1 must produce identical OPEN and
// SEMI-OPEN results for Workers = 1, 4, 8. Replicate RNG streams depend only
// on (seed, replicate index) and training gradients reduce in a fixed shard
// order, so the worker count is purely a scheduling choice.
func TestResultsIdenticalAcrossWorkerCounts(t *testing.T) {
	queries := []string{
		`SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp`,
		`SELECT OPEN AVG(v) FROM World`,
		`SELECT OPEN COUNT(*) FROM World WHERE v >= 2`,
		`SELECT SEMI-OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp`,
		`SELECT SEMI-OPEN COUNT(*) FROM World`,
	}
	workerCounts := []int{1, 4, 8}
	// got[q][w] is the rendered result of query q at worker count w.
	got := make([][]string, len(queries))
	for qi := range queries {
		got[qi] = make([]string, len(workerCounts))
	}
	for wi, workers := range workerCounts {
		e := determinismWorld(t, workers)
		for qi, q := range queries {
			got[qi][wi] = renderRows(query(t, e, q))
		}
	}
	for qi, q := range queries {
		for wi := 1; wi < len(workerCounts); wi++ {
			if got[qi][wi] != got[qi][0] {
				t.Errorf("query %q: workers=%d result differs from workers=1:\n%s\nvs\n%s",
					q, workerCounts[wi], got[qi][wi], got[qi][0])
			}
		}
	}
}

// TestRepeatedOpenQueryIsStable: with the replicate streams keyed by index,
// re-running the same OPEN query on one engine must give the same answer
// (the model is cached and replicate seeds do not drift).
func TestRepeatedOpenQueryIsStable(t *testing.T) {
	e := determinismWorld(t, 4)
	q := `SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp`
	first := renderRows(query(t, e, q))
	for i := 0; i < 3; i++ {
		if again := renderRows(query(t, e, q)); again != first {
			t.Fatalf("run %d drifted:\n%s\nvs\n%s", i+2, again, first)
		}
	}
}

// TestSemiOpenCacheInvalidation: the IPF fit cache must be dropped by DML so
// reweighted answers track the data.
func TestSemiOpenCacheInvalidation(t *testing.T) {
	e := determinismWorld(t, 2)
	before := scalar(t, e, `SELECT SEMI-OPEN COUNT(*) FROM World`)
	if before < 99 || before > 101 {
		t.Fatalf("SEMI-OPEN count = %g, want ≈100", before)
	}
	// Repeat: served from the cache, must be identical.
	if again := scalar(t, e, `SELECT SEMI-OPEN COUNT(*) FROM World`); again != before {
		t.Fatalf("cached SEMI-OPEN count %g != first %g", again, before)
	}
	// Grow the truth table's metadata: re-derive marginals with doubled
	// counts and confirm the answer moves (stale cache would not).
	exec1(t, e, `
		DROP METADATA World_M1;
		DROP METADATA World_M2;
		INSERT INTO Truth VALUES ('a', 1, 40), ('b', 2, 60);
		CREATE METADATA World_M1B AS (SELECT grp, n FROM Truth);
		CREATE METADATA World_M2B AS (SELECT v, n FROM Truth);
	`)
	after := scalar(t, e, `SELECT SEMI-OPEN COUNT(*) FROM World`)
	if after < 199 || after > 201 {
		t.Fatalf("after metadata change SEMI-OPEN count = %g, want ≈200", after)
	}
}

// TestExplainReportsWorkers: EXPLAIN surfaces the fan-out plan.
func TestExplainReportsWorkers(t *testing.T) {
	e := determinismWorld(t, 4)
	sel, err := sql.ParseQuery(`SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Explain(sel)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].AsText() == "technique" {
			found = true
			want := fmt.Sprintf("across %d workers", 4)
			if s := row[1].AsText(); !strings.Contains(s, want) {
				t.Errorf("technique %q missing %q", s, want)
			}
		}
	}
	if !found {
		t.Fatal("no technique row in EXPLAIN output")
	}
}

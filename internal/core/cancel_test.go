package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mosaic/internal/sql"
	"mosaic/internal/swg"
)

// slowWorld is smallWorld with a deliberately expensive M-SWG schedule, so a
// short deadline reliably lands mid-training.
func slowWorld(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(Options{
		Seed:        3,
		OpenSamples: 3,
		SWG: swg.Config{
			Hidden: []int{64, 64}, Latent: 2, Epochs: 500,
			BatchSize: 256, Projections: 64, StepsPerEpoch: 20,
		},
	})
	seedWorld(t, e)
	return e
}

// seedWorld loads the two-attribute world of smallWorld into e.
func seedWorld(t *testing.T, e *Engine) {
	t.Helper()
	exec1(t, e, `
		CREATE GLOBAL POPULATION World (grp TEXT, v INT);
		CREATE SAMPLE S AS (SELECT * FROM World WHERE grp = 'a');
		CREATE TABLE Truth (grp TEXT, v INT, n INT);
		INSERT INTO Truth VALUES ('a', 1, 40), ('b', 2, 60);
		CREATE METADATA World_M1 AS (SELECT grp, n FROM Truth);
		CREATE METADATA World_M2 AS (SELECT v, n FROM Truth);
		INSERT INTO S VALUES ('a', 1), ('a', 1), ('a', 1), ('a', 1), ('a', 1),
		                     ('a', 1), ('a', 1), ('a', 1), ('a', 1), ('a', 1);
	`)
}

func mustParse(t *testing.T, src string) *sql.Select {
	t.Helper()
	sel, err := sql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return sel
}

// TestCancelledContextRejectsQuery: an already-expired context returns its
// error without doing any work, on every visibility.
func TestCancelledContextRejectsQuery(t *testing.T) {
	e := smallWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, q := range []string{
		"SELECT CLOSED COUNT(*) FROM World",
		"SELECT SEMI-OPEN COUNT(*) FROM World",
		"SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp",
	} {
		if _, err := e.QueryContext(ctx, mustParse(t, q)); !errors.Is(err, context.Canceled) {
			t.Errorf("%q with cancelled ctx = %v, want context.Canceled", q, err)
		}
	}
}

// TestCancelMidTrainingIsPromptAndDoesNotPoison: a deadline that lands in
// the middle of M-SWG training aborts promptly, and the next uncancelled
// query retrains from scratch to the byte-identical uncancelled answer (the
// cancelled attempt is never cached).
func TestCancelMidTrainingIsPromptAndDoesNotPoison(t *testing.T) {
	q := "SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp"
	e := slowWorld(t)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := e.QueryContext(ctx, mustParse(t, q))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-training deadline = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; checkpoints are not firing", elapsed)
	}

	// The full (uncancelled) run on the same engine must match a fresh
	// engine that never saw a cancellation — fast config so the test stays
	// quick; both engines share it.
	e2, ref := smallWorld(t), smallWorld(t)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	if _, err := e2.QueryContext(ctx2, mustParse(t, q)); err == nil {
		t.Log("cancellation missed the fast training window; determinism check still valid")
	}
	got, err := e2.Query(mustParse(t, q))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query(mustParse(t, q))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("answer after cancellation diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestCancelMidIPF: a deadline during the SEMI-OPEN IPF fit aborts with the
// context error, leaves no cached fit behind, and the next query fits
// cleanly to the byte-identical answer.
func TestCancelMidIPF(t *testing.T) {
	q := "SELECT SEMI-OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp"
	e := smallWorld(t)
	// A context that is already past its deadline: the fit's first sweep
	// checkpoint sees it.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := e.QueryContext(ctx, mustParse(t, q)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired ctx = %v, want context.DeadlineExceeded", err)
	}
	got, err := e.Query(mustParse(t, q))
	if err != nil {
		t.Fatal(err)
	}
	want, err := smallWorld(t).Query(mustParse(t, q))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("SEMI-OPEN after cancelled fit diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestCancelStressDeterministicAfterwards hammers one engine with queries
// under randomly-placed deadlines from many goroutines (run under -race in
// CI), then verifies the engine still answers every query byte-identically
// to a fresh engine: cancellation at any checkpoint must never corrupt the
// caches or the deterministic RNG streams.
func TestCancelStressDeterministicAfterwards(t *testing.T) {
	queries := []string{
		"SELECT CLOSED COUNT(*) FROM World",
		"SELECT SEMI-OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp",
		"SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp",
		"SELECT OPEN grp, AVG(v) FROM World WHERE v > 0 GROUP BY grp ORDER BY grp",
	}
	e := NewEngine(Options{
		Seed:        3,
		OpenSamples: 3,
		Workers:     2,
		SWG: swg.Config{
			Hidden: []int{16, 16}, Latent: 2, Epochs: 8,
			BatchSize: 128, Projections: 12, StepsPerEpoch: 4,
		},
	})
	seedWorld(t, e)

	const goroutines = 8
	const iters = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				q := queries[rng.Intn(len(queries))]
				sel, err := sql.ParseQuery(q)
				if err != nil {
					t.Error(err)
					return
				}
				// Deadlines from "already expired" to "usually survives".
				d := time.Duration(rng.Intn(40)) * time.Millisecond
				ctx, cancel := context.WithTimeout(context.Background(), d)
				_, err = e.QueryContext(ctx, sel)
				cancel()
				if err != nil && !isCtxErr(err) {
					t.Errorf("stress %q: unexpected error %v", q, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	ref := NewEngine(Options{
		Seed:        3,
		OpenSamples: 3,
		Workers:     2,
		SWG: swg.Config{
			Hidden: []int{16, 16}, Latent: 2, Epochs: 8,
			BatchSize: 128, Projections: 12, StepsPerEpoch: 4,
		},
	})
	seedWorld(t, ref)
	for _, q := range queries {
		got, err := e.Query(mustParse(t, q))
		if err != nil {
			t.Fatalf("post-stress %q: %v", q, err)
		}
		want, err := ref.Query(mustParse(t, q))
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		if got.String() != want.String() {
			t.Errorf("post-stress %q diverged:\n got: %s\nwant: %s", q, got, want)
		}
	}
}

// TestCancelWaiterDoesNotKillLeader: a short-deadline waiter blocked behind
// another query's in-flight training gives up with its own ctx error while
// the leader completes and caches normally.
func TestCancelWaiterDoesNotKillLeader(t *testing.T) {
	e := smallWorld(t)
	q := mustParse(t, "SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp")

	leaderDone := make(chan error, 1)
	go func() {
		_, err := e.Query(q)
		leaderDone <- err
	}()
	// The waiter's deadline is far shorter than training; whichever of the
	// two becomes the single-flight leader, the uncancelled caller must
	// still succeed.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, werr := e.QueryContext(ctx, q)
	if werr != nil && !isCtxErr(werr) {
		t.Errorf("waiter error = %v, want nil or a context error", werr)
	}
	if err := <-leaderDone; err != nil {
		t.Fatalf("uncancelled caller failed: %v", err)
	}
	// And the cache now serves instantly.
	start := time.Now()
	if _, err := e.Query(q); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("second query did not hit the model cache")
	}
}

// TestSfDoPanicReleasesSlot: a panicking compute must not wedge the
// single-flight slot — the panic propagates to its caller and the next
// caller gets to recompute (and cache) cleanly.
func TestSfDoPanicReleasesSlot(t *testing.T) {
	var mu sync.Mutex
	slots := map[string]*sfEntry[int]{}
	lookup := func() *sfEntry[int] {
		ent, ok := slots["k"]
		if !ok {
			ent = &sfEntry[int]{}
			slots["k"] = ent
		}
		return ent
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic in compute did not propagate")
			}
		}()
		_, _ = sfDo(context.Background(), &mu, lookup, func() (int, error) {
			panic("boom")
		})
	}()
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := sfDo(context.Background(), &mu, lookup, func() (int, error) { return 42, nil })
		if v != 42 || err != nil {
			t.Errorf("post-panic compute = (%d, %v), want (42, nil)", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("slot wedged: caller after a panicked compute blocked forever")
	}
}

// TestExecScriptContextStopsBetweenStatements: a cancelled script context
// stops execution between statements.
func TestExecScriptContextStopsBetweenStatements(t *testing.T) {
	e := NewEngine(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.ExecScriptContext(ctx, "CREATE TABLE T (a INT); INSERT INTO T VALUES (1)")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled script = %v, want context.Canceled", err)
	}
}

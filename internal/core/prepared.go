package core

import (
	"context"
	"fmt"
	"sync"

	"mosaic/internal/catalog"
	"mosaic/internal/exec"
	"mosaic/internal/sql"
	"mosaic/internal/table"
)

// PreparedQuery caches everything about one SELECT that does not depend on
// bound parameter values: the relation route and, for population queries,
// the resolved plan (chosen sample, marginal scope, view predicate). Plans
// are keyed by the engine's DDL/DML generation counter — any mutation
// invalidates them, and the next execution transparently re-resolves. A
// PreparedQuery is safe for concurrent use and belongs to one Engine.
//
// Parameter placeholders never reach the plan: binding replaces them with
// literals before execution, and the plan depends only on which columns a
// query references — identical for every binding — so one plan serves every
// parameterization.
type PreparedQuery struct {
	eng      *Engine
	skeleton *sql.Select // the statement as parsed, placeholders intact

	mu     sync.Mutex
	gen    uint64 // engine generation the cached resolution belongs to
	valid  bool
	route  string
	tbl    *table.Table    // route "table"
	smp    *catalog.Sample // route "sample"
	pop    *catalog.Population
	pc     *planContext // route "population"
	resErr error        // cached resolution error (also generation-keyed)
}

// Prepare readies sel for repeated execution against the engine. Resolution
// is lazy: the first execution (per DDL/DML generation) resolves the route
// and plan, later executions reuse them.
func (e *Engine) Prepare(sel *sql.Select) *PreparedQuery {
	return &PreparedQuery{eng: e, skeleton: sel}
}

// Statement returns the prepared statement as parsed (placeholders intact).
func (pq *PreparedQuery) Statement() *sql.Select { return pq.skeleton }

// QueryPrepared executes the prepared query with bound already substituted
// for the skeleton's placeholders (see sql.BindParams); pass the skeleton
// itself for parameterless statements. It holds the engine read lock for the
// whole execution, exactly like Query, and returns byte-identical answers —
// the only difference is that parsing and planning are amortized across
// executions.
func (e *Engine) QueryPrepared(ctx context.Context, pq *PreparedQuery, bound *sql.Select) (*exec.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if pq.eng != e {
		return nil, fmt.Errorf("core: prepared query belongs to a different engine")
	}
	if bound.NumParams > 0 {
		return nil, fmt.Errorf("core: statement has %d unbound parameter(s); bind them with sql.BindParams", bound.NumParams)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if err := pq.resolve(); err != nil {
		return nil, err
	}
	switch pq.route {
	case "table":
		if bound.Visibility == sql.VisibilitySemiOpen || bound.Visibility == sql.VisibilityOpen {
			return nil, fmt.Errorf("core: %s queries apply to populations; %q is an auxiliary table", bound.Visibility, bound.From)
		}
		return exec.RunContext(ctx, pq.tbl, bound, e.execOpts(false, nil))
	case "sample":
		if bound.Visibility == sql.VisibilitySemiOpen || bound.Visibility == sql.VisibilityOpen {
			return nil, fmt.Errorf("core: %s queries apply to populations; query the population %q was sampled from", bound.Visibility, bound.From)
		}
		return exec.RunContext(ctx, pq.smp.Table, bound, e.execOpts(true, nil))
	default: // population
		// Star expansion depends only on the item shapes, which binding
		// preserves, so expanding the bound statement matches the skeleton.
		return e.runVisibility(ctx, pq.pc, expandStars(bound, pq.pop))
	}
}

// resolve (re)computes the route and plan when the cached one is missing or
// from an older engine generation. Callers hold the engine read lock, so the
// catalog cannot change mid-resolution and the generation read is stable.
func (pq *PreparedQuery) resolve() error {
	e := pq.eng
	gen := e.gen.Load()
	pq.mu.Lock()
	defer pq.mu.Unlock()
	if pq.valid && pq.gen == gen {
		return pq.resErr
	}
	pq.gen = gen
	pq.valid = true
	pq.tbl, pq.smp, pq.pop, pq.pc, pq.resErr = nil, nil, nil, nil, nil
	switch pq.route = e.cat.Resolve(pq.skeleton.From); pq.route {
	case "table":
		pq.tbl, _ = e.cat.Table(pq.skeleton.From)
	case "sample":
		pq.smp, _ = e.cat.Sample(pq.skeleton.From)
	case "population":
		pop, _ := e.cat.Population(pq.skeleton.From)
		pq.pop = pop
		pc, err := e.plan(pop, expandStars(pq.skeleton, pop))
		if err != nil {
			pq.resErr = err
			return err
		}
		pq.pc = pc
	default:
		pq.resErr = fmt.Errorf("core: unknown relation %q", pq.skeleton.From)
	}
	return pq.resErr
}

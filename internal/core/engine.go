// Package core is Mosaic's open-world engine: it owns the catalog, executes
// the Mosaic SQL dialect, and routes population queries through the three
// visibility paths of the paper — CLOSED (samples as-is), SEMI-OPEN
// (mechanism or IPF reweighting), and OPEN (M-SWG tuple generation).
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"mosaic/internal/catalog"
	"mosaic/internal/exec"
	"mosaic/internal/expr"
	"mosaic/internal/ipf"
	"mosaic/internal/marginal"
	"mosaic/internal/mechanism"
	"mosaic/internal/schema"
	"mosaic/internal/sql"
	"mosaic/internal/swg"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// Options configures an Engine.
type Options struct {
	// Seed drives all engine randomness (model training, generation).
	// Default 1.
	Seed int64
	// OpenSamples is the number of generated samples averaged per OPEN query
	// (the paper generates 10, Sec 5.3). Default 10.
	OpenSamples int
	// GeneratedRows is the size of each generated sample; 0 means the size
	// of the source sample (the paper's protocol).
	GeneratedRows int
	// UnionSamples enables the Sec 7 "Multiple Samples" extension: instead
	// of answering from one optimal sample, all schema-covering samples of
	// the population are unioned and reweighted together.
	UnionSamples bool
	// Workers bounds the engine's intra-query parallelism: columnar kernels
	// run morsel-parallel across up to Workers goroutines, OPEN queries fan
	// their replicate generation across them, and M-SWG training uses Workers
	// loss workers unless SWG.Workers overrides it. Results are independent
	// of Workers — morsel states merge in scan order and each replicate draws
	// from an RNG stream derived only from (Seed, replicate index). 0 (the
	// default) means runtime.GOMAXPROCS(0), i.e. use every core; negative
	// values mean 1 (the true serial path).
	Workers int
	// RowExec forces the legacy row-at-a-time executor for every query,
	// bypassing the vectorized columnar path. Answers are byte-identical
	// either way — the differential harness and the exec benchmarks rely on
	// this switch; production engines leave it false.
	RowExec bool
	// Shards range-partitions every table scan into this many contiguous
	// slices and answers CLOSED/SEMI-OPEN aggregate queries by
	// scatter-gather: per-shard partial states merged in shard order. 1 (the
	// default) is byte-identical to the unsharded engine. For a fixed Shards
	// value answers are bit-identical across runs and Workers values; float
	// aggregates may differ in low-order bits between Shards values, so
	// Shards is part of the answer contract. OPEN queries always execute
	// against the unified view (generative models train on the full sample),
	// never sharded.
	Shards int
	// StmtLogSize bounds the per-generation statement log that backs
	// follower delta catch-up (GET /v1/snapshot/delta): the engine retains
	// the SQL source of the most recent StmtLogSize mutations. A follower
	// whose generation has fallen out of the window re-bootstraps from a
	// full snapshot. 0 (the default) means 1024; negative disables retention
	// entirely (every delta request forces a full snapshot).
	StmtLogSize int
	// IPF tunes the SEMI-OPEN fit.
	IPF ipf.Options
	// SWG is the base M-SWG configuration for OPEN queries; the engine
	// derives a per-model seed from Seed.
	SWG swg.Config
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.OpenSamples <= 0 {
		o.OpenSamples = 10
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 0 {
		o.Workers = 1
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.StmtLogSize == 0 {
		o.StmtLogSize = 1024
	}
	if o.StmtLogSize < 0 {
		o.StmtLogSize = -1
	}
	return o
}

// Engine executes Mosaic statements. It is safe for concurrent use: SELECT
// and EXPLAIN run under a shared read lock, so any number of queries proceed
// in parallel, while DDL/DML statements take the exclusive write lock and
// invalidate the derived-state caches. Trained M-SWG models and IPF fits are
// pure functions of (sample, marginals), so they are computed once per
// sample/population pair — under a single-flight gate, to keep concurrent
// first queries from training the same model twice — and served read-only
// thereafter.
type Engine struct {
	cat  *catalog.Catalog
	opts Options

	// mu serializes schema/data mutation (write side) against query
	// execution (read side).
	mu sync.RWMutex

	// gen counts DDL/DML generations: every mutation attempt advances it
	// (under the write lock), and prepared statements compare it to decide
	// whether their cached plan is still valid. Bumping on failed mutations
	// too costs only a spurious re-plan, never a stale one.
	gen atomic.Uint64

	// log is the bounded statement log paired with gen: every generation
	// bump appends the mutation's SQL source (or a barrier when it has
	// none), so followers can catch up by replaying the generation delta.
	// Guarded by mu — appends under the write lock, reads under the read
	// lock.
	log stmtLog

	// cacheMu guards the cache maps themselves; the entries carry their own
	// single-flight gates so cacheMu is never held across training or
	// fitting.
	cacheMu sync.Mutex
	models  map[string]*sfEntry[*swg.Model] // key: sample|population
	ipfFits map[string]*sfEntry[ipfFit]     // key: scope-prefixed sample|population

	// shardScans/shardRows count, per shard index, how many partial scans
	// the scatter-gather executor ran and how many rows they covered —
	// /statsz's per-shard counters. Fixed-size (Options.Shards entries), so
	// concurrent queries update them lock-free.
	shardScans []atomic.Int64
	shardRows  []atomic.Int64
}

// ipfFit is the cached outcome of a SEMI-OPEN IPF fit for one
// sample/population pair: the whole-sample weight vector for global-scope
// fits, or the fitted view-restricted sub-table for query-scope fits. Both
// are served read-only (exec never mutates weight overrides or scanned
// tables).
type ipfFit struct {
	weights []float64
	sub     *table.Table
}

// sfEntry is an interruptible single-flight cache slot. One computing caller
// runs the expensive work; concurrent callers wait on ready OR their own
// context — so a waiter with a short deadline is never held hostage by a
// slower leader. Completed outcomes (including non-context errors, which are
// pure functions of the engine state) stay cached until the next mutation
// invalidates the map; a cancelled attempt leaves the slot empty so the next
// caller recomputes from scratch.
type sfEntry[T any] struct {
	val   T
	err   error
	done  bool
	doing bool
	ready chan struct{} // non-nil while doing; closed when the attempt ends
}

// sfDo resolves one single-flight slot. lookup is called under mu and must
// return the slot to use (creating it if absent — and re-reading the map
// every time, so a concurrent invalidation hands out a fresh slot). compute
// runs without mu held and must honor ctx; a compute outcome that IS a
// context error (checked with errors.Is, so wrapped cancellations count) is
// returned to the caller but never cached.
func sfDo[T any](ctx context.Context, mu *sync.Mutex, lookup func() *sfEntry[T], compute func() (T, error)) (T, error) {
	var zero T
	for {
		mu.Lock()
		ent := lookup()
		if ent.done {
			v, err := ent.val, ent.err
			mu.Unlock()
			return v, err
		}
		if !ent.doing {
			ent.doing = true
			ent.ready = make(chan struct{})
			mu.Unlock()
			var v T
			var err error
			completed := false
			func() {
				defer func() {
					if completed {
						return
					}
					// compute panicked: release the slot so later callers
					// retry instead of blocking forever on ready; the panic
					// keeps unwinding past sfDo.
					mu.Lock()
					ent.doing = false
					close(ent.ready)
					ent.ready = nil
					mu.Unlock()
				}()
				v, err = compute()
				completed = true
			}()
			mu.Lock()
			ent.doing = false
			close(ent.ready)
			ent.ready = nil
			if isCtxErr(err) {
				mu.Unlock()
				return zero, err
			}
			ent.val, ent.err, ent.done = v, err, true
			mu.Unlock()
			return v, err
		}
		ready := ent.ready
		mu.Unlock()
		select {
		case <-ready:
			// The leader finished (or was cancelled); re-resolve the slot.
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// isCtxErr reports whether err is a cancellation outcome (context.Canceled
// or context.DeadlineExceeded, possibly wrapped).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// NewEngine creates an engine with an empty catalog.
func NewEngine(opts Options) *Engine {
	e := &Engine{
		cat:     catalog.New(),
		opts:    opts.withDefaults(),
		models:  make(map[string]*sfEntry[*swg.Model]),
		ipfFits: make(map[string]*sfEntry[ipfFit]),
	}
	e.shardScans = make([]atomic.Int64, e.opts.Shards)
	e.shardRows = make([]atomic.Int64, e.opts.Shards)
	e.log.cap = e.opts.StmtLogSize
	return e
}

// Shards returns the engine's shard count (≥ 1).
func (e *Engine) Shards() int { return e.opts.Shards }

// ShardScans returns, per shard index, how many scatter-gather partial scans
// have executed since the engine started. All zeros when Shards is 1 (the
// sharded path never engages).
func (e *Engine) ShardScans() []int64 {
	out := make([]int64, len(e.shardScans))
	for i := range e.shardScans {
		out[i] = e.shardScans[i].Load()
	}
	return out
}

// ShardRows returns, per shard index, how many rows those partial scans
// covered.
func (e *Engine) ShardRows() []int64 {
	out := make([]int64, len(e.shardRows))
	for i := range e.shardRows {
		out[i] = e.shardRows[i].Load()
	}
	return out
}

// recordShardScan is the exec.Options.ShardScan observability hook.
func (e *Engine) recordShardScan(shard, rows int) {
	if shard >= 0 && shard < len(e.shardScans) {
		e.shardScans[shard].Add(1)
		e.shardRows[shard].Add(int64(rows))
	}
}

// Catalog exposes the engine's catalog (for ingestion APIs and tests).
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Options returns the engine's effective options.
func (e *Engine) Options() Options { return e.opts }

// Generation returns the engine's DDL/DML generation counter. It advances on
// every mutation (CREATE/INSERT/DROP/COPY/UPDATE, ingestion, mechanism and
// marginal changes); prepared statements use it to detect stale plans.
func (e *Engine) Generation() uint64 { return e.gen.Load() }

// ExecScript parses and executes a semicolon-separated script, returning the
// result of each statement (nil for DDL/DML).
func (e *Engine) ExecScript(src string) ([]*exec.Result, error) {
	return e.ExecScriptContext(context.Background(), src)
}

// ExecScriptContext is ExecScript with a cancellation context, checked
// between statements and honored inside each SELECT. Statements already
// executed when the context expires stay executed (each statement is atomic;
// scripts are not).
func (e *Engine) ExecScriptContext(ctx context.Context, src string) ([]*exec.Result, error) {
	stmts, err := sql.ParseScript(src)
	if err != nil {
		return nil, err
	}
	out := make([]*exec.Result, 0, len(stmts))
	for i, st := range stmts {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		res, err := e.execScriptStmt(ctx, st)
		if err != nil {
			return out, fmt.Errorf("statement %d: %w", i+1, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// execScriptStmt executes one statement of a script, retaining its SQL
// source so mutations land in the replication log as replayable entries.
func (e *Engine) execScriptStmt(ctx context.Context, st sql.ScriptStmt) (*exec.Result, error) {
	switch s := st.Stmt.(type) {
	case *sql.Select:
		return e.QueryContext(ctx, s)
	case *sql.Explain:
		return e.Explain(s.Query)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, e.execMutation(st.Stmt, st.Source)
}

// Exec executes one parsed statement. SELECT and EXPLAIN run on the shared
// read path; every other statement takes the engine write lock.
func (e *Engine) Exec(st sql.Statement) (*exec.Result, error) {
	return e.ExecContext(context.Background(), st)
}

// ExecContext is Exec with a cancellation context. SELECTs honor it at every
// engine checkpoint; DDL/DML checks it before taking the write lock and then
// runs to completion (partial mutations are never left behind). A mutation
// executed through this parsed-statement entry point has no SQL source, so
// it lands in the replication log as a barrier — followers crossing it
// re-bootstrap from a full snapshot. Script execution (ExecScriptContext)
// retains each statement's source and replicates incrementally.
func (e *Engine) ExecContext(ctx context.Context, st sql.Statement) (*exec.Result, error) {
	switch s := st.(type) {
	case *sql.Select:
		return e.QueryContext(ctx, s)
	case *sql.Explain:
		return e.Explain(s.Query)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return nil, e.execMutation(st, "")
}

// execMutation runs one DDL/DML statement under the write lock, appending it
// to the replication log and advancing the generation in the same critical
// section — so a reader holding the read lock always observes a (state,
// generation, log) triple that agree. source is the statement's exact SQL
// text; "" logs a barrier entry.
func (e *Engine) execMutation(st sql.Statement, source string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	defer func() {
		if source == "" {
			e.log.appendBarrier()
		} else {
			e.log.append(source, err != nil)
		}
		e.gen.Add(1)
	}()
	switch s := st.(type) {
	case *sql.CreateTable:
		err = e.execCreateTable(s)
	case *sql.CreatePopulation:
		err = e.execCreatePopulation(s)
	case *sql.CreateSample:
		err = e.execCreateSample(s)
	case *sql.CreateMetadata:
		err = e.execCreateMetadata(s)
	case *sql.Insert:
		err = e.execInsert(s)
	case *sql.UpdateWeights:
		err = e.execUpdateWeights(s)
	case *sql.Drop:
		e.invalidateModels()
		err = e.cat.Drop(s.Kind, s.Name)
	case *sql.Copy:
		err = e.execCopy(s)
	default:
		err = fmt.Errorf("core: unsupported statement %T", st)
	}
	return err
}

// logBarrierAndBump records a non-replayable mutation (no SQL source) in
// the statement log and advances the generation. Callers hold the write
// lock.
func (e *Engine) logBarrierAndBump() {
	e.log.appendBarrier()
	e.gen.Add(1)
}

// DeltaScript returns the statements that advance this engine from
// generation `from` to the current generation, in execution order, plus the
// current generation itself. ErrLogTruncated means the range is
// unserviceable (fell out of the bounded log, lies in the future, or
// crosses a non-replayable barrier) and the follower must re-bootstrap from
// a full snapshot.
func (e *Engine) DeltaScript(from uint64) ([]LogStmt, uint64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	cur := e.gen.Load()
	stmts, err := e.log.delta(from, cur)
	return stmts, cur, err
}

// invalidateModels drops every cached M-SWG model and IPF fit. Callers must
// hold the engine write lock (all mutation paths do), so no query can be
// mid-flight with a stale cache entry.
func (e *Engine) invalidateModels() {
	e.cacheMu.Lock()
	e.models = make(map[string]*sfEntry[*swg.Model])
	e.ipfFits = make(map[string]*sfEntry[ipfFit])
	e.cacheMu.Unlock()
}

// sourceTable resolves a FROM name to a physical table (auxiliary table or
// sample backing store); populations have no physical table.
func (e *Engine) sourceTable(name string) (*table.Table, error) {
	if t, ok := e.cat.Table(name); ok {
		return t, nil
	}
	if s, ok := e.cat.Sample(name); ok {
		return s.Table, nil
	}
	return nil, fmt.Errorf("core: relation %q is not a table or sample", name)
}

func (e *Engine) execCreateTable(s *sql.CreateTable) error {
	if s.AsSelect != nil {
		src, err := e.sourceTable(s.AsSelect.From)
		if err != nil {
			return fmt.Errorf("core: CREATE TABLE %s AS: %v", s.Name, err)
		}
		t, err := exec.Materialize(src, s.AsSelect, exec.Options{Weighted: false}, s.Name)
		if err != nil {
			return err
		}
		if s.Schema != nil && !t.Schema().Equal(s.Schema) {
			return fmt.Errorf("core: CREATE TABLE %s: declared schema %s does not match SELECT schema %s",
				s.Name, s.Schema, t.Schema())
		}
		return e.cat.RegisterTable(t)
	}
	_, err := e.cat.CreateTable(s.Name, s.Schema)
	return err
}

func (e *Engine) execCreatePopulation(s *sql.CreatePopulation) error {
	if s.Global {
		sc := s.Schema
		if sc == nil {
			return fmt.Errorf("core: global population %s needs an explicit attribute list", s.Name)
		}
		_, err := e.cat.CreateGlobalPopulation(s.Name, sc)
		return err
	}
	sel := s.AsSelect
	var attrs []string
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		col, ok := it.Expr.(*expr.Column)
		if !ok || it.Agg != sql.AggNone {
			return fmt.Errorf("core: population %s definition must project plain columns", s.Name)
		}
		attrs = append(attrs, col.Name)
	}
	_, err := e.cat.CreatePopulation(s.Name, sel.From, sel.Where, attrs)
	return err
}

func (e *Engine) execCreateSample(s *sql.CreateSample) error {
	pop, ok := e.cat.Population(s.From)
	if !ok {
		return fmt.Errorf("core: population %q is not declared", s.From)
	}
	var sc *schema.Schema
	switch {
	case s.Schema != nil:
		sc = s.Schema
	case s.Star:
		sc = pop.Schema
	default:
		ps, _, err := pop.Schema.Project(s.Columns)
		if err != nil {
			return fmt.Errorf("core: sample %s: %v", s.Name, err)
		}
		sc = ps
	}
	var mech mechanism.Mechanism
	if s.Mechanism != nil {
		switch s.Mechanism.Kind {
		case "UNIFORM":
			mech = mechanism.Uniform{Percent: s.Mechanism.Percent}
		case "STRATIFIED":
			// Per-stratum probabilities depend on the (unknown) population
			// stratum sizes; the catalog records the design and the engine
			// treats the mechanism as known only after the user supplies the
			// probabilities via SetSampleMechanism. Until then SEMI-OPEN
			// falls back to IPF.
			mech = mechanism.Stratified{Attr: s.Mechanism.Attr, Percent: s.Mechanism.Percent}
		default:
			return fmt.Errorf("core: unknown mechanism %q", s.Mechanism.Kind)
		}
	}
	_, err := e.cat.CreateSample(s.Name, s.From, s.Where, sc, mech)
	return err
}

// SetSampleMechanism installs or replaces a sample's mechanism (the Go-API
// hook for mechanisms SQL cannot express, e.g. computed stratified
// probabilities or predicate-biased designs).
func (e *Engine) SetSampleMechanism(sample string, m mechanism.Mechanism) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.logBarrierAndBump()
	s, ok := e.cat.Sample(sample)
	if !ok {
		return fmt.Errorf("core: no sample %q", sample)
	}
	s.Mechanism = m
	e.invalidateModels()
	return nil
}

func (e *Engine) execCreateMetadata(s *sql.CreateMetadata) error {
	src, err := e.sourceTable(s.From)
	if err != nil {
		return fmt.Errorf("core: CREATE METADATA %s: %v", s.Name, err)
	}
	m, err := marginal.New(s.Name, s.Attrs)
	if err != nil {
		return err
	}
	for attr, w := range s.Bins {
		if err := m.SetBinWidth(attr, w); err != nil {
			return err
		}
	}
	idxs := make([]int, len(s.Attrs))
	for i, a := range s.Attrs {
		j, ok := src.Schema().Index(a)
		if !ok {
			return fmt.Errorf("core: CREATE METADATA %s: relation %s has no attribute %q", s.Name, s.From, a)
		}
		idxs[i] = j
	}
	env := src.Schema()
	var scanErr error
	src.Scan(func(row []value.Value, w float64) bool {
		if s.Where != nil {
			ok, err := expr.Truthy(s.Where, &expr.Binding{Schema: env, Row: row})
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				return true
			}
		}
		count := w
		if s.CountExpr != nil {
			v, err := s.CountExpr.Eval(&expr.Binding{Schema: env, Row: row})
			if err != nil {
				scanErr = err
				return false
			}
			f, err := v.Float64()
			if err != nil {
				scanErr = fmt.Errorf("core: CREATE METADATA %s: count column: %v", s.Name, err)
				return false
			}
			count = f
		}
		vals := make([]value.Value, len(idxs))
		for i, j := range idxs {
			vals[i] = row[j]
		}
		if err := m.Add(vals, count); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	e.invalidateModels()
	return e.cat.AddMarginal(s.TargetPopulation(), m)
}

// AddMarginal attaches a programmatically built marginal to a population.
func (e *Engine) AddMarginal(pop string, m *marginal.Marginal) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.logBarrierAndBump()
	e.invalidateModels()
	return e.cat.AddMarginal(pop, m)
}

func (e *Engine) execInsert(s *sql.Insert) error {
	t, err := e.sourceTable(s.Table)
	if err != nil {
		return fmt.Errorf("core: INSERT INTO %s: %v", s.Table, err)
	}
	sc := t.Schema()
	colIdx := make([]int, 0, sc.Len())
	if len(s.Columns) > 0 {
		for _, c := range s.Columns {
			j, ok := sc.Index(c)
			if !ok {
				return fmt.Errorf("core: INSERT INTO %s: no column %q", s.Table, c)
			}
			colIdx = append(colIdx, j)
		}
	}
	for ri, rexprs := range s.Rows {
		row := make([]value.Value, sc.Len())
		if len(s.Columns) == 0 {
			if len(rexprs) != sc.Len() {
				return fmt.Errorf("core: INSERT INTO %s row %d: %d values for %d columns", s.Table, ri+1, len(rexprs), sc.Len())
			}
			for i, ex := range rexprs {
				v, err := ex.Eval(nil)
				if err != nil {
					return fmt.Errorf("core: INSERT INTO %s row %d: %v", s.Table, ri+1, err)
				}
				row[i] = v
			}
		} else {
			if len(rexprs) != len(colIdx) {
				return fmt.Errorf("core: INSERT INTO %s row %d: %d values for %d columns", s.Table, ri+1, len(rexprs), len(colIdx))
			}
			for i, ex := range rexprs {
				v, err := ex.Eval(nil)
				if err != nil {
					return fmt.Errorf("core: INSERT INTO %s row %d: %v", s.Table, ri+1, err)
				}
				row[colIdx[i]] = v
			}
		}
		if err := t.Append(row); err != nil {
			return err
		}
	}
	// Ingesting into a sample invalidates trained models and recorded
	// initial weights (new rows default to weight 1).
	if smp, ok := e.cat.Sample(s.Table); ok {
		smp.InitialWeights = nil
		e.invalidateModels()
	}
	return nil
}

func (e *Engine) execUpdateWeights(s *sql.UpdateWeights) error {
	smp, ok := e.cat.Sample(s.Sample)
	if !ok {
		return fmt.Errorf("core: no sample %q", s.Sample)
	}
	t := smp.Table
	sc := t.Schema()
	w := t.Weights()
	i := 0
	var scanErr error
	t.Scan(func(row []value.Value, cur float64) bool {
		b := &expr.Binding{Schema: sc, Row: row}
		if s.Where != nil {
			ok, err := expr.Truthy(s.Where, b)
			if err != nil {
				scanErr = err
				return false
			}
			if !ok {
				i++
				return true
			}
		}
		v, err := s.Weight.Eval(b)
		if err != nil {
			scanErr = err
			return false
		}
		f, err := v.Float64()
		if err != nil {
			scanErr = fmt.Errorf("core: UPDATE SAMPLE %s: weight: %v", s.Sample, err)
			return false
		}
		if f < 0 {
			scanErr = fmt.Errorf("core: UPDATE SAMPLE %s: negative weight %g", s.Sample, f)
			return false
		}
		w[i] = f
		i++
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	if err := t.SetWeights(w); err != nil {
		return err
	}
	smp.InitialWeights = append([]float64(nil), w...)
	e.invalidateModels()
	return nil
}

// Ingest appends Go-native rows into a table or sample (the bulk-loading
// path the paper's "...Ingest Yahoo sample..." step implies).
func (e *Engine) Ingest(relation string, rows [][]any) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.logBarrierAndBump()
	t, err := e.sourceTable(relation)
	if err != nil {
		return err
	}
	for ri, raw := range rows {
		row := make([]value.Value, len(raw))
		for i, x := range raw {
			v, err := value.FromRaw(x)
			if err != nil {
				return fmt.Errorf("core: ingest %s row %d: %v", relation, ri+1, err)
			}
			row[i] = v
		}
		if err := t.Append(row); err != nil {
			return err
		}
	}
	if smp, ok := e.cat.Sample(relation); ok {
		smp.InitialWeights = nil
		e.invalidateModels()
	}
	return nil
}

// IngestTable bulk-copies all rows of src into the named relation.
func (e *Engine) IngestTable(relation string, src *table.Table) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.logBarrierAndBump()
	dst, err := e.sourceTable(relation)
	if err != nil {
		return err
	}
	var cpErr error
	src.Scan(func(row []value.Value, _ float64) bool {
		if err := dst.Append(row); err != nil {
			cpErr = err
			return false
		}
		return true
	})
	if cpErr != nil {
		return cpErr
	}
	if smp, ok := e.cat.Sample(relation); ok {
		smp.InitialWeights = nil
		e.invalidateModels()
	}
	return nil
}

func andExpr(a, b expr.Expr) expr.Expr {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return expr.Bin(expr.OpAnd, a, b)
	}
}

func modelKey(sample, pop string) string {
	return strings.ToLower(sample) + "|" + strings.ToLower(pop)
}

package core

import (
	"math"
	"strings"
	"testing"

	"mosaic/internal/sql"
	"mosaic/internal/swg"
	"mosaic/internal/value"
)

// closeWorld builds a world whose two groups have nearly equal population
// counts, so per-replicate OPEN answers disagree on which group is on top:
// exactly the regime where applying ORDER BY/LIMIT/HAVING per replicate
// (instead of after the combine) changes the answer.
func closeWorld(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(Options{
		Seed:          31,
		OpenSamples:   5,
		GeneratedRows: 512,
		SWG: swg.Config{
			Hidden: []int{16, 16}, Latent: 2, Epochs: 10,
			BatchSize: 128, Projections: 12, StepsPerEpoch: 4,
		},
	})
	exec1(t, e, `
		CREATE GLOBAL POPULATION World (grp TEXT, v INT);
		CREATE SAMPLE S AS (SELECT * FROM World);
		CREATE TABLE Truth (grp TEXT, v INT, n INT);
	`)
	if err := e.Ingest("Truth", [][]any{
		{"a", 1, 50}, {"b", 2, 50},
	}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `
		CREATE METADATA World_M1 AS (SELECT grp, n FROM Truth);
		CREATE METADATA World_M2 AS (SELECT v, n FROM Truth);
	`)
	rows := make([][]any, 0, 20)
	for i := 0; i < 10; i++ {
		rows = append(rows, []any{"a", 1}, []any{"b", 2})
	}
	if err := e.Ingest("S", rows); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestOpenOrderByLimitAppliesAfterCombine(t *testing.T) {
	e := closeWorld(t)
	full := query(t, e, "SELECT OPEN grp, COUNT(*) AS cnt FROM World GROUP BY grp ORDER BY cnt DESC")
	if len(full) < 2 {
		t.Fatalf("full OPEN answer has %d groups, want 2", len(full))
	}
	c0, _ := full[0][1].Float64()
	c1, _ := full[1][1].Float64()
	if c0 == c1 {
		t.Fatalf("degenerate workload: combined counts tie at %g; pick another seed", c0)
	}

	top := query(t, e, "SELECT OPEN grp, COUNT(*) AS cnt FROM World GROUP BY grp ORDER BY cnt DESC LIMIT 1")
	// LIMIT 1 must return exactly the top row of the combined answer. The
	// pre-fix code applied LIMIT per replicate, so replicates that disagreed
	// on the top group emptied (or biased) the intersection.
	if len(top) != 1 {
		t.Fatalf("LIMIT 1 returned %d rows, want 1 (per-replicate LIMIT drops combinable groups)", len(top))
	}
	if top[0][0].AsText() != full[0][0].AsText() {
		t.Errorf("LIMIT 1 top group = %s, want %s (the combined top)", top[0][0], full[0][0])
	}
	gotCnt, _ := top[0][1].Float64()
	if gotCnt != c0 {
		t.Errorf("LIMIT 1 count = %g, want combined average %g", gotCnt, c0)
	}
}

func TestOpenHavingAppliesAfterCombine(t *testing.T) {
	e := closeWorld(t)
	full := query(t, e, "SELECT OPEN grp, COUNT(*) AS cnt FROM World GROUP BY grp ORDER BY grp")
	// Threshold just under each group's combined average: every group whose
	// average passes must survive, even when some individual replicate's
	// count dips below the threshold (pre-fix, such groups vanished because
	// HAVING filtered them out of single replicates before the intersect).
	for _, row := range full {
		avg, _ := row[1].Float64()
		thresh := avg - 1e-9
		q := "SELECT OPEN grp, COUNT(*) AS cnt FROM World GROUP BY grp HAVING cnt > " +
			strings.TrimSpace(value.Float(thresh).String()) + " ORDER BY grp"
		got := query(t, e, q)
		found := false
		for _, g := range got {
			if g[0].AsText() == row[0].AsText() {
				found = true
				f, _ := g[1].Float64()
				if f != avg {
					t.Errorf("group %s count with HAVING = %g, want %g", row[0], f, avg)
				}
			}
		}
		if !found {
			t.Errorf("group %s (avg %g) missing under HAVING cnt > %g", row[0], avg, thresh)
		}
	}
}

func TestPlanCollectsOrderByColumns(t *testing.T) {
	e := NewEngine(Options{Seed: 1})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (a TEXT, b INT);
		CREATE SAMPLE Small (a TEXT) AS (SELECT a FROM P);
		CREATE SAMPLE Full AS (SELECT * FROM P);
	`)
	rowsSmall := make([][]any, 20)
	for i := range rowsSmall {
		rowsSmall[i] = []any{"x"}
	}
	if err := e.Ingest("Small", rowsSmall); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("Full", [][]any{{"x", 1}, {"y", 2}}); err != nil {
		t.Fatal(err)
	}
	pop, _ := e.Catalog().Population("P")

	plans := []struct {
		q    string
		want string
	}{
		// ORDER BY b requires a sample storing b, despite Small being larger.
		{"SELECT a, COUNT(*) AS cnt FROM P GROUP BY a ORDER BY b", "Full"},
		// HAVING referencing a non-output schema column constrains too.
		{"SELECT a, COUNT(*) AS cnt FROM P GROUP BY a HAVING b > 0", "Full"},
		// Output-column names (aliases) resolve against the result, not the
		// sample: they must NOT constrain the choice.
		{"SELECT a, COUNT(*) AS cnt FROM P GROUP BY a ORDER BY cnt DESC", "Small"},
		{"SELECT a, COUNT(*) AS cnt FROM P GROUP BY a HAVING cnt > 1", "Small"},
	}
	for _, tc := range plans {
		sel, err := sql.ParseQuery(tc.q)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.q, err)
		}
		ctx, err := e.plan(pop, sel)
		if err != nil {
			t.Fatalf("plan %q: %v", tc.q, err)
		}
		if ctx.sample.Name != tc.want {
			t.Errorf("plan %q chose sample %s, want %s", tc.q, ctx.sample.Name, tc.want)
		}
	}

	// A column no sample stores now fails at plan time with a clear error,
	// not deep in exec with "cannot resolve ORDER BY".
	sel, _ := sql.ParseQuery("SELECT a, COUNT(*) AS cnt FROM P GROUP BY a ORDER BY zz")
	if _, err := e.plan(pop, sel); err == nil || !strings.Contains(err.Error(), "covers") {
		t.Errorf("ORDER BY over uncovered column: err = %v, want early 'no sample ... covers' error", err)
	}
}

func TestStarOnGlobalPopulationIsSampleIndependent(t *testing.T) {
	e := NewEngine(Options{Seed: 1})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (a INT, b TEXT);
		CREATE SAMPLE Big (a INT) AS (SELECT a FROM P);
		CREATE SAMPLE Rev (b TEXT, a INT) AS (SELECT b, a FROM P);
	`)
	rowsBig := make([][]any, 20)
	for i := range rowsBig {
		rowsBig[i] = []any{i}
	}
	if err := e.Ingest("Big", rowsBig); err != nil {
		t.Fatal(err)
	}
	// Rev stores the population attributes in reversed column order.
	if err := e.Ingest("Rev", [][]any{{"x", 1}, {"y", 2}, {"z", 3}}); err != nil {
		t.Fatal(err)
	}

	sel, err := sql.ParseQuery("SELECT CLOSED * FROM P ORDER BY a")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(sel)
	if err != nil {
		t.Fatal(err)
	}
	// The answer shape is the population's schema — not Big's single column
	// (the pre-fix behavior: largest sample wins and dictates the shape) and
	// not Rev's reversed order.
	if got := strings.Join(res.Columns, ","); got != "a,b" {
		t.Fatalf("star columns = %q, want %q (population schema order)", got, "a,b")
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (only Rev covers the population schema)", len(res.Rows))
	}
	if res.Rows[0][0].AsInt() != 1 || res.Rows[0][1].AsText() != "x" {
		t.Errorf("row 0 = %v, want (1, 'x') — values must follow the population attribute order", res.Rows[0])
	}

	// COUNT(*) is not a projection star: it must still run on the largest
	// sample without requiring full schema coverage.
	if got := scalar(t, e, "SELECT CLOSED COUNT(*) FROM P"); got != 20 {
		t.Errorf("COUNT(*) = %g, want 20 (answered from Big)", got)
	}

	// With no covering sample at all, a star query fails up front.
	exec1(t, e, `DROP SAMPLE Rev`)
	if _, err := e.Query(sel); err == nil || !strings.Contains(err.Error(), "covers") {
		t.Errorf("star with no covering sample: err = %v, want 'no sample ... covers'", err)
	}
}

// TestOpenLimitMatchesUnlimitedPrefix pins the combine-then-limit contract on
// a workload with more groups: for every k, LIMIT k must be the k-prefix of
// the unlimited ordered answer.
func TestOpenLimitMatchesUnlimitedPrefix(t *testing.T) {
	e := NewEngine(Options{
		Seed:          42,
		OpenSamples:   4,
		GeneratedRows: 512,
		SWG: swg.Config{
			Hidden: []int{16, 16}, Latent: 2, Epochs: 10,
			BatchSize: 128, Projections: 12, StepsPerEpoch: 4,
		},
	})
	exec1(t, e, `
		CREATE GLOBAL POPULATION W (g TEXT, v INT);
		CREATE SAMPLE S AS (SELECT * FROM W);
		CREATE TABLE T (g TEXT, v INT, n INT);
	`)
	if err := e.Ingest("T", [][]any{
		{"a", 1, 30}, {"b", 2, 28}, {"c", 3, 26}, {"d", 4, 24},
	}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `
		CREATE METADATA W_M1 AS (SELECT g, n FROM T);
		CREATE METADATA W_M2 AS (SELECT v, n FROM T);
	`)
	var rows [][]any
	for i := 0; i < 8; i++ {
		rows = append(rows, []any{"a", 1}, []any{"b", 2}, []any{"c", 3}, []any{"d", 4})
	}
	if err := e.Ingest("S", rows); err != nil {
		t.Fatal(err)
	}

	full := query(t, e, "SELECT OPEN g, COUNT(*) AS cnt FROM W GROUP BY g ORDER BY cnt DESC, g")
	if len(full) < 3 {
		t.Fatalf("full answer has %d groups, want ≥3", len(full))
	}
	for k := 1; k <= len(full); k++ {
		limited := query(t, e, "SELECT OPEN g, COUNT(*) AS cnt FROM W GROUP BY g ORDER BY cnt DESC, g LIMIT "+itoa(k))
		if len(limited) != k {
			t.Fatalf("LIMIT %d returned %d rows", k, len(limited))
		}
		for i := 0; i < k; i++ {
			if limited[i][0].AsText() != full[i][0].AsText() {
				t.Errorf("LIMIT %d row %d group = %s, want %s", k, i, limited[i][0], full[i][0])
			}
			lf, _ := limited[i][1].Float64()
			ff, _ := full[i][1].Float64()
			if math.Abs(lf-ff) != 0 {
				t.Errorf("LIMIT %d row %d count = %g, want %g", k, i, lf, ff)
			}
		}
	}
}

func itoa(n int) string {
	return value.Int(int64(n)).String()
}

package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mosaic/internal/sql"
	"mosaic/internal/value"
)

func explainText(t *testing.T, e *Engine, q string) string {
	t.Helper()
	res, err := e.ExecScript("EXPLAIN " + q)
	if err != nil {
		t.Fatalf("explain %q: %v", q, err)
	}
	var b strings.Builder
	for _, row := range res[0].Rows {
		b.WriteString(row[0].AsText())
		b.WriteString("=")
		b.WriteString(row[1].AsText())
		b.WriteString("\n")
	}
	return b.String()
}

func TestExplainPopulationPlan(t *testing.T) {
	e := smallWorld(t)
	out := explainText(t, e, "SELECT SEMI-OPEN COUNT(*) FROM World")
	for _, want := range []string{
		"kind=global population",
		"visibility=SEMI-OPEN",
		"sample=S (10 tuples)",
		"mechanism=unknown",
		"marginal scope=query population",
		"technique=IPF reweighting against marginals",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	out = explainText(t, e, "SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp")
	if !strings.Contains(out, "technique=M-SWG generation") {
		t.Errorf("OPEN explain:\n%s", out)
	}
	out = explainText(t, e, "SELECT COUNT(*) FROM World")
	if !strings.Contains(out, "visibility=SEMI-OPEN (default)") {
		t.Errorf("default visibility explain:\n%s", out)
	}
}

func TestExplainTableAndSample(t *testing.T) {
	e := smallWorld(t)
	out := explainText(t, e, "SELECT grp FROM Truth")
	if !strings.Contains(out, "kind=auxiliary table") {
		t.Errorf("table explain:\n%s", out)
	}
	out = explainText(t, e, "SELECT CLOSED grp FROM S")
	if !strings.Contains(out, "kind=sample") {
		t.Errorf("sample explain:\n%s", out)
	}
	if _, err := e.ExecScript("EXPLAIN SELECT x FROM Missing"); err == nil {
		t.Error("explain over missing relation should fail")
	}
}

func TestExplainKnownMechanism(t *testing.T) {
	e := NewEngine(Options{})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (x INT);
		CREATE SAMPLE U AS (SELECT * FROM P USING MECHANISM UNIFORM PERCENT 10);
	`)
	if err := e.Ingest("U", [][]any{{1}}); err != nil {
		t.Fatal(err)
	}
	out := explainText(t, e, "SELECT SEMI-OPEN COUNT(*) FROM P")
	if !strings.Contains(out, "Horvitz") {
		t.Errorf("known-mechanism explain:\n%s", out)
	}
	if !strings.Contains(out, "mechanism=UNIFORM PERCENT 10") {
		t.Errorf("mechanism name missing:\n%s", out)
	}
}

func TestCopyCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	csvBody := "a,b,c\n1,hello,2.5\n2,world,\n"
	if err := os.WriteFile(path, []byte(csvBody), 0o644); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Options{})
	exec1(t, e, `CREATE TABLE T (a INT, b TEXT, c FLOAT)`)
	exec1(t, e, `COPY T FROM '`+path+`' WITH HEADER`)
	if got := scalar(t, e, "SELECT COUNT(*) FROM T"); got != 2 {
		t.Errorf("COPY loaded %g rows", got)
	}
	// Empty field loads as NULL.
	rows := query(t, e, "SELECT c FROM T WHERE a = 2")
	if len(rows) != 1 || !rows[0][0].IsNull() {
		t.Errorf("empty CSV field = %v, want NULL", rows)
	}
	// Without HEADER the header row fails type parsing.
	exec1(t, e, `CREATE TABLE T2 (a INT, b TEXT, c FLOAT)`)
	if _, err := e.ExecScript(`COPY T2 FROM '` + path + `'`); err == nil {
		t.Error("COPY without HEADER should choke on the header row")
	}
	if _, err := e.ExecScript(`COPY T FROM '/nonexistent/file.csv'`); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := e.ExecScript(`COPY Missing FROM '` + path + `'`); err == nil {
		t.Error("missing relation should fail")
	}
}

func TestCopyRejectsRaggedRows(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ragged.csv")
	if err := os.WriteFile(path, []byte("1,x\n2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(Options{})
	exec1(t, e, `CREATE TABLE T (a INT, b TEXT)`)
	if _, err := e.ExecScript(`COPY T FROM '` + path + `'`); err == nil {
		t.Error("ragged CSV should fail")
	}
}

func TestUnionSamplesCombinesCoverage(t *testing.T) {
	// Two disjoint samples each cover part of the population; the union
	// reaches marginal cells neither could alone.
	e := NewEngine(Options{UnionSamples: true})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (g TEXT);
		CREATE SAMPLE SA AS (SELECT * FROM P WHERE g = 'a');
		CREATE SAMPLE SB AS (SELECT * FROM P WHERE g = 'b');
		CREATE TABLE T (g TEXT, n INT);
	`)
	if err := e.Ingest("SA", [][]any{{"a"}, {"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("SB", [][]any{{"b"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("T", [][]any{{"a", 30}, {"b", 70}}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `CREATE METADATA P_M1 AS (SELECT g, n FROM T)`)
	rows := query(t, e, "SELECT SEMI-OPEN g, COUNT(*) FROM P GROUP BY g ORDER BY g")
	if len(rows) != 2 {
		t.Fatalf("union answered %d groups, want 2: %v", len(rows), rows)
	}
	av, _ := rows[0][1].Float64()
	bv, _ := rows[1][1].Float64()
	if av != 30 || bv != 70 {
		t.Errorf("union IPF = a:%g b:%g, want 30/70", av, bv)
	}
	// Without union, the larger sample (SA) answers alone and group b is a
	// false negative.
	e2 := NewEngine(Options{})
	exec1(t, e2, `
		CREATE GLOBAL POPULATION P (g TEXT);
		CREATE SAMPLE SA AS (SELECT * FROM P WHERE g = 'a');
		CREATE SAMPLE SB AS (SELECT * FROM P WHERE g = 'b');
		CREATE TABLE T (g TEXT, n INT);
	`)
	if err := e2.Ingest("SA", [][]any{{"a"}, {"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := e2.Ingest("SB", [][]any{{"b"}}); err != nil {
		t.Fatal(err)
	}
	if err := e2.Ingest("T", [][]any{{"a", 30}, {"b", 70}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.ExecScript(`CREATE METADATA P_M1 AS (SELECT g, n FROM T)`); err != nil {
		t.Fatal(err)
	}
	rows = query(t, e2, "SELECT SEMI-OPEN g, COUNT(*) FROM P GROUP BY g")
	if len(rows) != 1 || rows[0][0].AsText() != "a" {
		t.Errorf("single-sample answer = %v, want only group a", rows)
	}
}

func TestUnionSamplesProjectsToCommonSchema(t *testing.T) {
	e := NewEngine(Options{UnionSamples: true})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (g TEXT, v INT);
		CREATE SAMPLE Full AS (SELECT * FROM P);
		CREATE SAMPLE Slim (g TEXT) AS (SELECT g FROM P);
		CREATE TABLE T (g TEXT, n INT);
	`)
	if err := e.Ingest("Full", [][]any{{"a", 1}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("Slim", [][]any{{"b"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("T", [][]any{{"a", 10}, {"b", 20}}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `CREATE METADATA P_M1 AS (SELECT g, n FROM T)`)
	// Query over g only: both samples cover it; union projects to (g).
	rows := query(t, e, "SELECT SEMI-OPEN g, COUNT(*) FROM P GROUP BY g ORDER BY g")
	if len(rows) != 2 {
		t.Fatalf("projected union groups = %v", rows)
	}
	// Query over v: only Full covers it; union degrades to that member.
	if got := scalar(t, e, "SELECT SEMI-OPEN SUM(v) FROM P"); got == 0 {
		t.Error("v query should still answer from the covering sample")
	}
}

func TestUnionSeedWeightsConcatenate(t *testing.T) {
	e := NewEngine(Options{UnionSamples: true})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (g TEXT);
		CREATE SAMPLE SA AS (SELECT * FROM P);
		CREATE SAMPLE SB AS (SELECT * FROM P);
	`)
	if err := e.Ingest("SA", [][]any{{"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("SB", [][]any{{"b"}}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `UPDATE SAMPLE SB SET WEIGHT = 5`)
	// CLOSED over the union uses the concatenated seed weights: 1 + 5.
	if got := scalar(t, e, "SELECT CLOSED COUNT(*) FROM P"); got != 6 {
		t.Errorf("union CLOSED COUNT = %g, want 6", got)
	}
}

func TestExplainParsesThroughPublicScript(t *testing.T) {
	e := smallWorld(t)
	st, err := sql.ParseStatement("EXPLAIN SELECT OPEN COUNT(*) FROM World")
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Exec(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 || res.Rows[0][0].Kind() != value.KindText {
		t.Errorf("explain result malformed: %v", res.Rows)
	}
}

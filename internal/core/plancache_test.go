package core

import (
	"context"
	"fmt"
	"testing"
)

func TestPlanCacheHitMissEvict(t *testing.T) {
	e := NewEngine(Options{Seed: 1})
	exec1(t, e, "CREATE TABLE T (a INT); INSERT INTO T VALUES (1), (2)")
	pc := NewPlanCache(2)

	q1 := "SELECT COUNT(*) FROM T"
	if _, _, ok := pc.Lookup(e, q1); ok {
		t.Fatal("empty cache reported a hit")
	}
	pc.Store(e, q1, mustParse(t, q1))
	sel, pq, ok := pc.Lookup(e, q1)
	if !ok || sel == nil || pq == nil {
		t.Fatal("stored entry not found")
	}

	// Fill past capacity: the least recently used entry (q2) evicts.
	q2, q3 := "SELECT SUM(a) FROM T", "SELECT MIN(a) FROM T"
	pc.Store(e, q2, mustParse(t, q2))
	if _, _, ok := pc.Lookup(e, q1); !ok { // touch q1 → q2 becomes LRU
		t.Fatal("q1 missing before eviction")
	}
	pc.Store(e, q3, mustParse(t, q3))
	if _, _, ok := pc.Lookup(e, q2); ok {
		t.Error("LRU entry survived past capacity")
	}
	if _, _, ok := pc.Lookup(e, q1); !ok {
		t.Error("recently used entry evicted")
	}
	st := pc.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Size != 2 || st.Capacity != 2 {
		t.Errorf("size/capacity = %d/%d, want 2/2", st.Size, st.Capacity)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("hits=%d misses=%d, want both > 0", st.Hits, st.Misses)
	}
}

// TestPlanCacheEngineSwapMisses: entries are keyed by engine identity, so a
// lookup against a different engine (e.g. after Restore swapped it) misses
// instead of returning another engine's PreparedQuery.
func TestPlanCacheEngineSwapMisses(t *testing.T) {
	e1 := NewEngine(Options{Seed: 1})
	e2 := NewEngine(Options{Seed: 1})
	exec1(t, e1, "CREATE TABLE T (a INT)")
	exec1(t, e2, "CREATE TABLE T (a INT)")
	pc := NewPlanCache(4)
	const q = "SELECT COUNT(*) FROM T"
	pc.Store(e1, q, mustParse(t, q))
	if _, _, ok := pc.Lookup(e2, q); ok {
		t.Fatal("lookup against a different engine hit a foreign PreparedQuery")
	}
	// The stale-engine entry was dropped; re-storing against e2 works.
	pq := pc.Store(e2, q, mustParse(t, q))
	if _, err := e2.QueryPrepared(context.Background(), pq, pq.Statement()); err != nil {
		t.Fatalf("re-stored plan: %v", err)
	}
}

// TestPlanCachedAnswersTrackMutations: executing through cached plans across
// interleaved DML must always reflect the current data — the generation
// counter forces re-resolution, never a stale answer.
func TestPlanCachedAnswersTrackMutations(t *testing.T) {
	e := NewEngine(Options{Seed: 1})
	exec1(t, e, "CREATE TABLE T (a INT)")
	pc := NewPlanCache(4)
	const q = "SELECT COUNT(*) FROM T"
	pc.Store(e, q, mustParse(t, q))
	for i := 1; i <= 5; i++ {
		exec1(t, e, fmt.Sprintf("INSERT INTO T VALUES (%d)", i))
		_, pq, ok := pc.Lookup(e, q)
		if !ok {
			t.Fatal("cached plan vanished")
		}
		res, err := e.QueryPrepared(context.Background(), pq, pq.Statement())
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := res.Rows[0][0].Float64(); got != float64(i) {
			t.Fatalf("after %d inserts cached COUNT(*) = %g", i, got)
		}
	}
}

func TestPlanCacheConcurrentStoreSingleEntry(t *testing.T) {
	e := NewEngine(Options{Seed: 1})
	exec1(t, e, "CREATE TABLE T (a INT)")
	pc := NewPlanCache(8)
	const q = "SELECT COUNT(*) FROM T"
	done := make(chan *PreparedQuery, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- pc.Store(e, q, mustParse(t, q)) }()
	}
	for i := 0; i < 8; i++ {
		if pq := <-done; pq == nil {
			t.Fatal("Store returned nil")
		}
	}
	if st := pc.Stats(); st.Size != 1 {
		t.Errorf("8 concurrent stores of one text left %d entries", st.Size)
	}
}

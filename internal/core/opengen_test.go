package core

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

var updateOpenGolden = flag.Bool("update-open-golden", false, "rewrite testdata/opengen_golden.txt from the current engine output")

// openGenQueries drive every OPEN generation surface: grouped aggregates,
// global aggregates, a derived population, and the non-aggregate replicate
// path (which returns generated tuples directly, so any drift in the
// column-native generation bytes shows up immediately).
var openGenQueries = []string{
	`SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp`,
	`SELECT OPEN v, COUNT(*) AS cnt, AVG(z) FROM World GROUP BY v ORDER BY v`,
	`SELECT OPEN COUNT(*), AVG(z), MIN(v), MAX(z) FROM World WHERE grp != 'b'`,
	`SELECT OPEN COUNT(*) FROM Agroup`,
	`SELECT OPEN grp, v, z FROM World LIMIT 6`,
}

// renderOpenGen renders all OPEN answers of one engine into the golden
// format: bit-exact per-value rendering (renderRows), one block per query.
func renderOpenGen(t *testing.T, e *Engine) string {
	t.Helper()
	var b strings.Builder
	for _, q := range openGenQueries {
		b.WriteString("-- ")
		b.WriteString(q)
		b.WriteString("\n")
		b.WriteString(renderRows(query(t, e, q)))
		b.WriteString("\n")
	}
	return b.String()
}

// TestOpenGenerationGolden is the seeded-determinism regression gate for
// column-native OPEN generation: answers must be identical for every worker
// count AND identical to the committed golden file, which was produced by
// the pre-change row-append generation path. A diff here means generation
// bytes drifted across PRs — never acceptable for a fixed seed.
//
// The golden pins float-exact output and therefore assumes amd64 float
// semantics (the committed file and CI agree); other architectures only
// check cross-worker agreement.
func TestOpenGenerationGolden(t *testing.T) {
	rendered := map[int]string{}
	for _, workers := range []int{1, 2, 4} {
		e := columnarWorld(t, false)
		e.opts.Workers = workers
		rendered[workers] = renderOpenGen(t, e)
	}
	for _, workers := range []int{2, 4} {
		if rendered[workers] != rendered[1] {
			t.Fatalf("workers=%d OPEN generation differs from workers=1:\n%s\nvs\n%s",
				workers, rendered[workers], rendered[1])
		}
	}
	// The row executor must see the very same generated tables.
	eRow := columnarWorld(t, true)
	if got := renderOpenGen(t, eRow); got != rendered[1] {
		t.Fatalf("row-executor engine renders different OPEN answers:\n%s\nvs\n%s", got, rendered[1])
	}

	goldenPath := filepath.Join("testdata", "opengen_golden.txt")
	if *updateOpenGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(rendered[1]), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update-open-golden to create): %v", err)
	}
	if runtime.GOARCH != "amd64" {
		t.Skipf("golden comparison pinned to amd64 float semantics, running on %s", runtime.GOARCH)
	}
	if string(want) != rendered[1] {
		t.Fatalf("OPEN generation drifted from committed golden:\n--- got ---\n%s\n--- want ---\n%s", rendered[1], want)
	}
}

package core

import (
	"container/list"
	"sync"

	"mosaic/internal/sql"
)

// PlanCache is a bounded LRU of prepared queries keyed by query text. It is
// the server-side half of the prepared-statement story: every client that
// sends the same query text gets amortized parse + plan without holding a
// Stmt handle, because the cache maps text → (parsed skeleton, PreparedQuery)
// and the PreparedQuery re-resolves itself whenever the engine's DDL/DML
// generation counter moves — so a cached plan can be stale-checked but never
// stale-served. Entries are additionally keyed by engine identity: after a
// Restore swaps engines, lookups against the new engine miss and re-prepare
// (a PreparedQuery belongs to exactly one Engine).
//
// A PlanCache is safe for concurrent use.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used

	hits      int64
	misses    int64
	evictions int64
}

// planEntry is one cached (text → skeleton + prepared plan) binding.
type planEntry struct {
	text string
	eng  *Engine
	sel  *sql.Select
	pq   *PreparedQuery
}

// PlanCacheStats is a point-in-time snapshot of the cache counters.
type PlanCacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Size      int
	Capacity  int
}

// NewPlanCache creates a cache holding at most capacity prepared queries
// (capacity must be positive).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &PlanCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		lru:     list.New(),
	}
}

// Lookup returns the cached skeleton and prepared query for text against eng.
// A hit requires the entry to belong to eng: entries surviving from a
// pre-Restore engine are dropped and reported as misses.
func (c *PlanCache) Lookup(eng *Engine, text string) (*sql.Select, *PreparedQuery, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[text]
	if !ok {
		c.misses++
		return nil, nil, false
	}
	ent := el.Value.(*planEntry)
	if ent.eng != eng {
		c.lru.Remove(el)
		delete(c.entries, text)
		c.misses++
		return nil, nil, false
	}
	c.lru.MoveToFront(el)
	c.hits++
	return ent.sel, ent.pq, true
}

// Store caches sel (already parsed from text) as a prepared query against
// eng, evicting the least recently used entry when full, and returns the
// PreparedQuery to execute. Resolution stays lazy: Store does no planning
// work itself, the first execution (per DDL/DML generation) does.
func (c *PlanCache) Store(eng *Engine, text string, sel *sql.Select) *PreparedQuery {
	pq := eng.Prepare(sel)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[text]; ok {
		// A concurrent Store beat us; keep the winner, refresh staleness.
		ent := el.Value.(*planEntry)
		if ent.eng == eng {
			c.lru.MoveToFront(el)
			return ent.pq
		}
		ent.eng, ent.sel, ent.pq = eng, sel, pq
		c.lru.MoveToFront(el)
		return pq
	}
	for c.lru.Len() >= c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.entries, last.Value.(*planEntry).text)
		c.evictions++
	}
	c.entries[text] = c.lru.PushFront(&planEntry{text: text, eng: eng, sel: sel, pq: pq})
	return pq
}

// Stats snapshots the cache counters.
func (c *PlanCache) Stats() PlanCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PlanCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.lru.Len(),
		Capacity:  c.cap,
	}
}

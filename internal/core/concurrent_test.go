package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"mosaic/internal/sql"
	"mosaic/internal/swg"
)

// TestConcurrentQueriesAndMutations hammers one engine with goroutines
// mixing every visibility of Query against Ingest, CREATE/DROP METADATA, and
// UPDATE SAMPLE. Run under -race this is the engine's central safety test:
// readers share the engine read lock while each mutation takes the write
// lock and invalidates the model/IPF caches. Queries may legitimately error
// while metadata is mid-swap (e.g. "needs population marginals"); the test
// asserts freedom from races, panics, and deadlocks, and that a quiesced
// engine answers correctly afterwards.
func TestConcurrentQueriesAndMutations(t *testing.T) {
	e := NewEngine(Options{
		Seed:        1,
		OpenSamples: 3,
		Workers:     4,
		SWG: swg.Config{
			Hidden: []int{8, 8}, Latent: 2, Epochs: 2,
			BatchSize: 64, Projections: 6, StepsPerEpoch: 2,
		},
	})
	exec1(t, e, `
		CREATE GLOBAL POPULATION World (grp TEXT, v INT);
		CREATE SAMPLE S AS (SELECT * FROM World WHERE grp = 'a');
		CREATE TABLE Truth (grp TEXT, v INT, n INT);
	`)
	if err := e.Ingest("Truth", [][]any{{"a", 1, 40}, {"b", 2, 60}}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `
		CREATE METADATA World_M1 AS (SELECT grp, n FROM Truth);
		CREATE METADATA World_M2 AS (SELECT v, n FROM Truth);
	`)
	if err := e.Ingest("S", [][]any{
		{"a", 1}, {"a", 1}, {"a", 1}, {"a", 1}, {"a", 1},
		{"a", 1}, {"a", 1}, {"a", 1}, {"a", 1}, {"a", 1},
	}); err != nil {
		t.Fatal(err)
	}

	queries := []string{
		`SELECT SEMI-OPEN COUNT(*) FROM World`,
		`SELECT SEMI-OPEN grp, COUNT(*) FROM World GROUP BY grp`,
		`SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp`,
		`SELECT CLOSED COUNT(*) FROM World`,
		`SELECT COUNT(*) FROM S`,
		`EXPLAIN SELECT OPEN COUNT(*) FROM World`,
	}
	parsed := make([]sql.Statement, len(queries))
	for i, q := range queries {
		stmts, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		parsed[i] = stmts[0]
	}

	const (
		readers   = 8
		mutators  = 4
		iterEach  = 25
		mutations = 10
	)
	var answered, errored atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterEach; i++ {
				st := parsed[(g+i)%len(parsed)]
				if _, err := e.Exec(st); err != nil {
					// Transient planning errors are expected while metadata
					// is mid-swap; data races and panics are not.
					errored.Add(1)
				} else {
					answered.Add(1)
				}
			}
		}(g)
	}
	for g := 0; g < mutators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < mutations; i++ {
				switch i % 3 {
				case 0:
					if err := e.Ingest("S", [][]any{{"a", 1}}); err != nil {
						t.Errorf("ingest: %v", err)
					}
				case 1:
					name := fmt.Sprintf("Churn%dx%d", g, i)
					if _, err := e.ExecScript(fmt.Sprintf(
						`CREATE METADATA %s FOR World AS (SELECT grp, n FROM Truth); DROP METADATA %s;`, name, name)); err != nil {
						t.Errorf("metadata churn: %v", err)
					}
				case 2:
					if _, err := e.ExecScript(`UPDATE SAMPLE S SET WEIGHT = 1;`); err != nil {
						t.Errorf("update weights: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	if answered.Load() == 0 {
		t.Fatal("no query succeeded under concurrency")
	}
	t.Logf("answered=%d transient-errors=%d", answered.Load(), errored.Load())

	// Quiesced engine still answers correctly: 10 original + 4 mutators ×
	// ceil(10/3) ingests of one row each.
	n := scalar(t, e, `SELECT COUNT(*) FROM S`)
	want := 10.0 + float64(mutators)*4
	if n != want {
		t.Errorf("sample size after stress = %g, want %g", n, want)
	}
	c := scalar(t, e, `SELECT SEMI-OPEN COUNT(*) FROM World`)
	if c < 99 || c > 101 {
		t.Errorf("SEMI-OPEN count after stress = %g, want ≈100", c)
	}
}

// TestConcurrentOpenQueriesShareOneModel asserts the single-flight model
// cache: many concurrent first OPEN queries on a cold engine must all
// succeed and agree (training happened once; replicate streams are seeded by
// index, not by arrival order).
func TestConcurrentOpenQueriesShareOneModel(t *testing.T) {
	e := determinismWorld(t, 2)
	q, err := sql.ParseQuery(`SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	results := make([]string, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res, err := e.Query(q)
			if err != nil {
				errs[c] = err
				return
			}
			results[c] = renderRows(res.Rows)
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	for c := 1; c < clients; c++ {
		if results[c] != results[0] {
			t.Errorf("client %d answer differs:\n%s\nvs\n%s", c, results[c], results[0])
		}
	}
}

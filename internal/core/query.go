package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"mosaic/internal/catalog"
	"mosaic/internal/exec"
	"mosaic/internal/expr"
	"mosaic/internal/ipf"
	"mosaic/internal/marginal"
	"mosaic/internal/mechanism"
	"mosaic/internal/sql"
	"mosaic/internal/swg"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// Query answers a SELECT. Auxiliary tables and samples answer directly;
// population queries route through the visibility machinery (paper Sec 4).
// It holds the engine read lock for its whole duration, so any number of
// Query calls run concurrently while DDL/DML waits.
func (e *Engine) Query(sel *sql.Select) (*exec.Result, error) {
	return e.QueryContext(context.Background(), sel)
}

// QueryContext is Query with a cancellation context. The engine checks the
// context at every expensive boundary — M-SWG training steps, per-replicate
// OPEN generation, IPF raking sweeps, and executor kernel/sort/row-batch
// boundaries — so a cancelled query returns ctx.Err() promptly. Cancellation
// never corrupts state: caches only ever store completed work (a cancelled
// training or fit leaves its slot empty for the next caller), so a re-run of
// the same query returns the byte-identical uncancelled answer.
func (e *Engine) QueryContext(ctx context.Context, sel *sql.Select) (*exec.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.query(ctx, sel)
}

// execOpts assembles the executor options for every CLOSED/SEMI-OPEN (and
// auxiliary-table) scan: these are the sharded-eligible call sites, so they
// carry the engine's shard count and the per-shard scan counters. OPEN
// replicate scans use their own unsharded options (see openReplicate).
func (e *Engine) execOpts(weighted bool, override []float64) exec.Options {
	return exec.Options{
		Weighted:       weighted,
		WeightOverride: override,
		ForceRow:       e.opts.RowExec,
		Workers:        e.opts.Workers,
		Shards:         e.opts.Shards,
		ShardScan:      e.recordShardScan,
	}
}

func (e *Engine) query(ctx context.Context, sel *sql.Select) (*exec.Result, error) {
	if sel.NumParams > 0 {
		return nil, fmt.Errorf("core: statement has %d unbound parameter(s); bind them with a prepared statement", sel.NumParams)
	}
	switch e.cat.Resolve(sel.From) {
	case "table":
		if sel.Visibility == sql.VisibilitySemiOpen || sel.Visibility == sql.VisibilityOpen {
			return nil, fmt.Errorf("core: %s queries apply to populations; %q is an auxiliary table", sel.Visibility, sel.From)
		}
		t, _ := e.cat.Table(sel.From)
		return exec.RunContext(ctx, t, sel, e.execOpts(false, nil))
	case "sample":
		if sel.Visibility == sql.VisibilitySemiOpen || sel.Visibility == sql.VisibilityOpen {
			return nil, fmt.Errorf("core: %s queries apply to populations; query the population %q was sampled from", sel.Visibility, sel.From)
		}
		s, _ := e.cat.Sample(sel.From)
		// Direct sample queries honor the stored (user-initialized) weights.
		return exec.RunContext(ctx, s.Table, sel, e.execOpts(true, nil))
	case "population":
		pop, _ := e.cat.Population(sel.From)
		return e.queryPopulation(ctx, pop, sel)
	default:
		return nil, fmt.Errorf("core: unknown relation %q", sel.From)
	}
}

// planContext is everything resolved before executing a population query.
type planContext struct {
	pop      *catalog.Population
	gp       *catalog.Population
	sample   *catalog.Sample
	viewPred expr.Expr            // non-nil for non-global populations
	margs    []*marginal.Marginal // chosen marginal set
	scope    string               // "query" or "global" (Fig 3's two paths)
}

func (e *Engine) queryPopulation(ctx context.Context, pop *catalog.Population, sel *sql.Select) (*exec.Result, error) {
	sel = expandStars(sel, pop)
	pc, err := e.plan(pop, sel)
	if err != nil {
		return nil, err
	}
	return e.runVisibility(ctx, pc, sel)
}

// runVisibility dispatches an expanded population query to its visibility
// path against an already-resolved plan.
func (e *Engine) runVisibility(ctx context.Context, pc *planContext, sel *sql.Select) (*exec.Result, error) {
	vis := sel.Visibility
	if vis == sql.VisibilityDefault {
		vis = sql.VisibilitySemiOpen
	}
	switch vis {
	case sql.VisibilityClosed:
		return e.runClosed(ctx, pc, sel)
	case sql.VisibilitySemiOpen:
		return e.runSemiOpen(ctx, pc, sel)
	case sql.VisibilityOpen:
		return e.runOpen(ctx, pc, sel)
	default:
		return nil, fmt.Errorf("core: unsupported visibility %v", vis)
	}
}

// expandStars rewrites each bare * select item into the population's own
// attributes, so the answer shape is a function of the queried population,
// never of whichever sample the planner happens to pick (a global-population
// star query used to return whatever columns the largest sample stored).
// COUNT(*) and other aggregate stars are left alone.
func expandStars(sel *sql.Select, pop *catalog.Population) *sql.Select {
	hasStar := false
	for _, it := range sel.Items {
		if it.Star && it.Agg == sql.AggNone {
			hasStar = true
			break
		}
	}
	if !hasStar {
		return sel
	}
	q := *sel
	q.Items = make([]sql.SelectItem, 0, len(sel.Items)+pop.Schema.Len())
	for _, it := range sel.Items {
		if !it.Star || it.Agg != sql.AggNone {
			q.Items = append(q.Items, it)
			continue
		}
		for _, n := range pop.Schema.Names() {
			q.Items = append(q.Items, sql.SelectItem{Expr: &expr.Column{Name: n}})
		}
	}
	return &q
}

// plan resolves the GP, picks the sample (paper Sec 4 assumption 2: "the
// query engine receives a single, optimal sample"; the engine picks the
// largest schema-compatible one), and selects the marginal scope: the query
// population's own marginals when present, otherwise the global
// population's (Fig 3's bottom vs. left dashed paths).
func (e *Engine) plan(pop *catalog.Population, sel *sql.Select) (*planContext, error) {
	pc := &planContext{pop: pop}
	if pop.Global {
		pc.gp = pop
	} else {
		gp, ok := e.cat.Population(pop.From)
		if !ok {
			return nil, fmt.Errorf("core: population %q references missing global population %q", pop.Name, pop.From)
		}
		pc.gp = gp
		pc.viewPred = pop.Where
	}

	// Required attributes: everything the query and the view predicate
	// reference (assumption 1: population attrs ⊆ sample attrs).
	need := map[string]bool{}
	collect := func(ex expr.Expr) {
		if ex == nil {
			return
		}
		for _, c := range ex.Columns(nil) {
			need[strings.ToLower(c)] = true
		}
	}
	for _, it := range sel.Items {
		if it.Expr != nil {
			collect(it.Expr)
		}
		if it.Star && it.Agg == sql.AggNone {
			// A bare * projects the population's schema (global included), so
			// the sample must store every population attribute.
			for _, n := range pop.Schema.Names() {
				need[strings.ToLower(n)] = true
			}
		}
	}
	collect(sel.Where)
	collect(pc.viewPred)
	for _, g := range sel.GroupBy {
		need[strings.ToLower(g)] = true
	}
	// ORDER BY and HAVING columns constrain the sample too — except names
	// that are output columns (aliases, aggregate display names), which
	// resolve against the result rather than the sample.
	outNames := map[string]bool{}
	for _, it := range sel.Items {
		if !it.Star || it.Agg != sql.AggNone {
			outNames[strings.ToLower(it.Name())] = true
		}
	}
	collectNonOutput := func(ex expr.Expr) {
		if ex == nil {
			return
		}
		for _, c := range ex.Columns(nil) {
			if !outNames[strings.ToLower(c)] {
				need[strings.ToLower(c)] = true
			}
		}
	}
	for _, o := range sel.OrderBy {
		collectNonOutput(o.Expr)
	}
	collectNonOutput(sel.Having)
	delete(need, "weight") // pseudo-column

	if e.opts.UnionSamples {
		union, err := e.unionCoveringSamples(pc.gp, need)
		if err != nil {
			return nil, err
		}
		pc.sample = union
	} else {
		var best *catalog.Sample
		for _, s := range e.cat.SamplesOf(pc.gp.Name) {
			ok := true
			for a := range need {
				if _, has := s.Table.Schema().Index(a); !has {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if best == nil || s.Table.Len() > best.Table.Len() {
				best = s
			}
		}
		if best == nil {
			return nil, fmt.Errorf("core: no sample of population %q covers the query attributes", pc.gp.Name)
		}
		pc.sample = best
	}

	switch {
	case len(pop.Marginals) > 0:
		pc.margs = pop.MarginalList()
		pc.scope = "query"
	case len(pc.gp.Marginals) > 0:
		pc.margs = pc.gp.MarginalList()
		pc.scope = "global"
	}
	// Keep only marginals whose attributes the sample stores.
	kept := pc.margs[:0:0]
	for _, m := range pc.margs {
		ok := true
		for _, a := range m.Attrs {
			if _, has := pc.sample.Table.Schema().Index(a); !has {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, m)
		}
	}
	pc.margs = kept
	return pc, nil
}

// runClosed answers with the sample as-is (standard LAV-style view
// answering): user-initialized weights, no debiasing.
func (e *Engine) runClosed(ctx context.Context, pc *planContext, sel *sql.Select) (*exec.Result, error) {
	q := *sel
	q.Where = andExpr(sel.Where, pc.viewPred)
	return exec.RunContext(ctx, pc.sample.Table, &q, e.execOpts(true, pc.sample.SeedWeights()))
}

// runSemiOpen reweights the sample: inverse inclusion probability when the
// mechanism is known, IPF against the marginal scope otherwise (Sec 4.1).
func (e *Engine) runSemiOpen(ctx context.Context, pc *planContext, sel *sql.Select) (*exec.Result, error) {
	if w, ok, err := e.knownMechanismWeights(pc.sample); err != nil {
		return nil, err
	} else if ok {
		q := *sel
		q.Where = andExpr(sel.Where, pc.viewPred)
		return exec.RunContext(ctx, pc.sample.Table, &q, e.execOpts(true, w))
	}

	if len(pc.margs) == 0 {
		return nil, fmt.Errorf("core: SEMI-OPEN query on %q needs a known mechanism or population marginals", pc.pop.Name)
	}

	if pc.scope == "query" && pc.viewPred != nil {
		// Fit the view-restricted sub-sample directly to the query
		// population's marginals (Fig 3, bottom dashed path).
		sub, err := e.ipfViewFit(ctx, pc)
		if err != nil {
			return nil, err
		}
		q := *sel
		return exec.RunContext(ctx, sub, &q, e.execOpts(true, nil))
	}

	// Global scope: fit the whole sample to the GP marginals, then answer
	// through the view (Fig 3, left dashed path).
	w, err := e.ipfGlobalFit(ctx, pc)
	if err != nil {
		return nil, err
	}
	q := *sel
	q.Where = andExpr(sel.Where, pc.viewPred)
	return exec.RunContext(ctx, pc.sample.Table, &q, e.execOpts(true, w))
}

// ipfViewFit returns the view-restricted sub-sample fitted to the query
// population's marginals, cached per (sample, population) so repeated
// SEMI-OPEN queries skip refitting. The cached table is served read-only.
func (e *Engine) ipfViewFit(ctx context.Context, pc *planContext) (*table.Table, error) {
	key := "view|" + modelKey(pc.sample.Name, pc.pop.Name)
	fit, err := sfDo(ctx, &e.cacheMu, e.ipfSlot(key), func() (ipfFit, error) {
		sub, err := filterTable(ctx, pc.sample.Table, pc.viewPred, pc.sample.SeedWeights())
		if err != nil {
			return ipfFit{}, err
		}
		if sub.Len() == 0 {
			return ipfFit{}, fmt.Errorf("core: sample %q has no tuples in population %q", pc.sample.Name, pc.pop.Name)
		}
		if _, err := ipf.ApplyContext(ctx, sub, pc.margs, e.opts.IPF); err != nil {
			return ipfFit{}, err
		}
		return ipfFit{sub: sub}, nil
	})
	return fit.sub, err
}

// ipfGlobalFit returns the whole-sample IPF weight vector against the scope
// marginals, cached per (sample, scope population): global-scope fits are
// independent of the view (the predicate applies afterwards), so every
// derived population over one GP shares a single fit. The slice is shared by
// concurrent queries; exec treats weight overrides as read-only.
func (e *Engine) ipfGlobalFit(ctx context.Context, pc *planContext) ([]float64, error) {
	scopePop := pc.pop
	if pc.scope == "global" {
		scopePop = pc.gp
	}
	key := "global|" + modelKey(pc.sample.Name, scopePop.Name)
	fit, err := sfDo(ctx, &e.cacheMu, e.ipfSlot(key), func() (ipfFit, error) {
		w, _, err := ipf.FitContext(ctx, pc.sample.Table, pc.margs, e.opts.IPF)
		return ipfFit{weights: w}, err
	})
	return fit.weights, err
}

// ipfSlot returns a lookup closure for one IPF cache key; sfDo calls it
// under cacheMu, and re-reading e.ipfFits on every call means a concurrent
// invalidation hands out a fresh slot.
func (e *Engine) ipfSlot(key string) func() *sfEntry[ipfFit] {
	return func() *sfEntry[ipfFit] {
		ent, ok := e.ipfFits[key]
		if !ok {
			ent = &sfEntry[ipfFit]{}
			e.ipfFits[key] = ent
		}
		return ent
	}
}

// knownMechanismWeights returns inverse-probability weights when the
// sample's mechanism is usable (a stratified design without computed
// probabilities is treated as unknown).
func (e *Engine) knownMechanismWeights(s *catalog.Sample) ([]float64, bool, error) {
	if s.Mechanism == nil {
		return nil, false, nil
	}
	if st, ok := s.Mechanism.(mechanism.Stratified); ok && st.Probs == nil {
		return nil, false, nil
	}
	w, err := mechanism.InverseWeights(s.Table, s.Mechanism)
	if err != nil {
		return nil, false, err
	}
	return w, true, nil
}

// runOpen trains (or reuses) the M-SWG for this sample/population pair,
// generates OpenSamples samples, uniformly reweights each to the population
// size, answers the query on each, and combines per the paper's protocol:
// groups appearing in all answers are returned with averaged aggregates
// (Sec 5.3).
func (e *Engine) runOpen(ctx context.Context, pc *planContext, sel *sql.Select) (*exec.Result, error) {
	if len(pc.margs) == 0 {
		return nil, fmt.Errorf("core: OPEN query on %q needs population marginals to train a generator", pc.pop.Name)
	}
	scopePop := pc.pop
	viewPred := expr.Expr(nil)
	if pc.scope == "global" {
		scopePop = pc.gp
		viewPred = pc.viewPred
	}
	model, err := e.openModel(ctx, pc.sample, scopePop, pc.margs)
	if err != nil {
		return nil, err
	}
	popTotal := pc.margs[0].Total()
	n := e.opts.GeneratedRows
	if n <= 0 {
		n = pc.sample.Table.Len()
	}
	if n <= 0 {
		return nil, fmt.Errorf("core: sample %q is empty", pc.sample.Name)
	}
	q := *sel
	q.Where = andExpr(sel.Where, viewPred)
	if !sel.HasAggregates() && len(sel.GroupBy) == 0 {
		// Non-aggregate OPEN query: return one generated sample's
		// qualifying tuples (materializing missing tuples).
		return e.openReplicate(ctx, pc, model, &q, 0, n, popTotal)
	}
	// Post-aggregation clauses apply to the *combined* answer, never per
	// replicate: a per-replicate LIMIT k (or HAVING) would drop groups
	// before the intersect-and-average protocol sees them, biasing both the
	// surviving group set and the averages.
	q.OrderBy = nil
	q.Having = nil
	q.Limit = -1
	reps := e.opts.OpenSamples
	results := make([]*exec.Result, reps)
	errs := make([]error, reps)
	workers := e.opts.Workers
	if workers > reps {
		workers = reps
	}
	if workers <= 1 {
		for r := 0; r < reps; r++ {
			// Per-replicate cancellation checkpoint: stop generating new
			// replicates as soon as the context expires.
			if err := ctx.Err(); err != nil {
				errs[r] = err
				break
			}
			results[r], errs[r] = e.openReplicate(ctx, pc, model, &q, r, n, popTotal)
		}
	} else {
		// Fan the replicates across a worker pool. Each replicate's RNG
		// stream depends only on (Seed, r), so the partition is purely a
		// scheduling choice: answers are bit-identical for any Workers.
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := w; r < reps; r += workers {
					if err := ctx.Err(); err != nil {
						errs[r] = err
						return
					}
					results[r], errs[r] = e.openReplicate(ctx, pc, model, &q, r, n, popTotal)
				}
			}(w)
		}
		wg.Wait()
	}
	// Cancellation first: a cancelled run leaves later results/errs slots nil
	// (the loops above stop scheduling replicates the moment ctx expires), so
	// the partial replicate set must never reach combineOpenResults — and the
	// surfaced error must be ctx.Err() itself, not whichever replicate
	// happened to observe the cancellation first.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for r, err := range errs {
		if err != nil {
			return nil, err
		}
		if results[r] == nil {
			// Unreachable defensively: every slot either erred or produced a
			// result once the loops finish uncancelled.
			return nil, fmt.Errorf("core: OPEN replicate %d produced no result", r)
		}
	}
	res, err := combineOpenResults(results, sel)
	if err != nil {
		return nil, err
	}
	if err := exec.ApplyPostAggregation(ctx, res, sel); err != nil {
		return nil, err
	}
	return res, nil
}

// openReplicate generates OPEN replicate r and answers q over it. Eval-mode
// generation is read-only on the model, so replicates run concurrently.
// Generation is column-native: sampled tuples decode straight into typed
// column builders at their final uniform weight popTotal/n ("uniformly
// reweight the generated sample to match the size of the population"), so
// the replicate table is born columnar with no per-row append and no second
// reweighting pass.
func (e *Engine) openReplicate(ctx context.Context, pc *planContext, model *swg.Model, q *sql.Select, r, n int, popTotal float64) (*exec.Result, error) {
	gen, err := model.GenerateSeededWeightedContext(ctx, fmt.Sprintf("%s_gen%d", pc.sample.Name, r), n, replicateSeed(e.opts.Seed, r), popTotal/float64(n))
	if err != nil {
		return nil, err
	}
	// OPEN scans are deliberately unsharded (no Shards in these options): the
	// generative model trains on the unified sample and each replicate is
	// already a partition of the OPEN combine, so sharding replicate scans is
	// future work — the engine must never silently shard an OPEN answer.
	return exec.RunContext(ctx, gen, q, exec.Options{Weighted: true, ForceRow: e.opts.RowExec, Workers: e.opts.Workers})
}

// replicateSeed derives the RNG seed of OPEN replicate r from the engine
// seed with a splitmix64 finalizer, decorrelating adjacent streams.
func replicateSeed(base int64, r int) int64 {
	x := uint64(base) + 0x9E3779B97F4A7C15*(uint64(r)+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// openModel returns a cached or freshly trained M-SWG for the pair, training
// at most once per (sample, population) even under concurrent first queries.
// A cancelled training is never cached: the slot stays empty, the canceller
// gets ctx.Err(), and the next query retrains from scratch — bit-identically,
// since training is deterministic in (sample, marginals, seed).
func (e *Engine) openModel(ctx context.Context, s *catalog.Sample, pop *catalog.Population, margs []*marginal.Marginal) (*swg.Model, error) {
	key := modelKey(s.Name, pop.Name)
	lookup := func() *sfEntry[*swg.Model] {
		ent, ok := e.models[key]
		if !ok {
			ent = &sfEntry[*swg.Model]{}
			e.models[key] = ent
		}
		return ent
	}
	return sfDo(ctx, &e.cacheMu, lookup, func() (*swg.Model, error) {
		return e.trainOpenModel(ctx, s, margs)
	})
}

// trainOpenModel compiles and trains the M-SWG for a sample against the
// augmented marginal set.
func (e *Engine) trainOpenModel(ctx context.Context, s *catalog.Sample, margs []*marginal.Marginal) (*swg.Model, error) {
	full, err := AugmentMarginals(s.Table, margs)
	if err != nil {
		return nil, err
	}
	cfg := e.opts.SWG
	if cfg.Seed == 0 {
		cfg.Seed = e.opts.Seed
	}
	if cfg.Workers == 0 {
		cfg.Workers = e.opts.Workers
	}
	model, err := swg.New(s.Table, full, cfg)
	if err != nil {
		return nil, err
	}
	if err := model.TrainContext(ctx); err != nil {
		return nil, err
	}
	return model, nil
}

// AugmentMarginals implements Sec 5.2's coverage rule: "if the population
// marginals do not cover all d attributes … we add marginals from the sample
// into the set of population marginals for those uncovered attributes",
// scaled to the population total so the marginal set stays consistent.
func AugmentMarginals(sample *table.Table, margs []*marginal.Marginal) ([]*marginal.Marginal, error) {
	covered := map[string]bool{}
	for _, a := range marginal.CoveredAttrs(margs) {
		covered[strings.ToLower(a)] = true
	}
	out := append([]*marginal.Marginal(nil), margs...)
	if len(margs) == 0 {
		return nil, fmt.Errorf("core: cannot augment an empty marginal set")
	}
	popTotal := margs[0].Total()
	sc := sample.Schema()
	for i := 0; i < sc.Len(); i++ {
		name := sc.At(i).Name
		if covered[strings.ToLower(name)] {
			continue
		}
		m, err := marginal.FromTable(sample.Name()+"_sample_"+name, sample, []string{name})
		if err != nil {
			return nil, err
		}
		tot := m.Total()
		if tot <= 0 {
			return nil, fmt.Errorf("core: sample marginal over %q has zero mass", name)
		}
		if err := m.Scale(popTotal / tot); err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// combineOpenResults merges replicate answers: group keys must appear in
// every replicate; numeric (aggregate) columns are averaged. It is a driver
// of the shared partial-state algebra: averaging across replicates is AVG
// accumulation at weight 1 per replicate, merged in replicate order (the
// fixed partition order that keeps OPEN answers bit-identical for any
// Workers). The replicate-intersection protocol and null handling stay here:
// a group must appear in every replicate, and a NULL aggregate cell in any
// replicate poisons that cell to NULL (unlike AVG's skip-null semantics over
// rows).
func combineOpenResults(results []*exec.Result, sel *sql.Select) (*exec.Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("core: no OPEN replicates")
	}
	first := results[0]
	// Identify which output columns are group keys vs aggregates.
	isAgg := make([]bool, len(sel.Items))
	for i, it := range sel.Items {
		isAgg[i] = it.Agg != sql.AggNone
	}
	type acc struct {
		keys  []value.Value
		sts   []exec.AggState
		nulls []bool
		seen  int
	}
	accs := map[string]*acc{}
	var order []string
	for ri, res := range results {
		seenThis := map[string]bool{}
		for _, row := range res.Rows {
			var kb strings.Builder
			for ci := range row {
				if !isAgg[ci] {
					kb.WriteString(row[ci].HashKey())
					kb.WriteByte('\x1f')
				}
			}
			k := kb.String()
			if seenThis[k] {
				continue
			}
			seenThis[k] = true
			a, ok := accs[k]
			if !ok {
				if ri != 0 {
					continue // group absent from replicate 0: cannot appear in all
				}
				a = &acc{
					keys:  append([]value.Value(nil), row...),
					sts:   make([]exec.AggState, len(row)),
					nulls: make([]bool, len(row)),
				}
				accs[k] = a
				order = append(order, k)
			}
			if a.seen != ri {
				continue // missed an earlier replicate
			}
			for ci := range row {
				if !isAgg[ci] {
					continue
				}
				if row[ci].IsNull() {
					a.nulls[ci] = true
					continue
				}
				if err := a.sts[ci].Accumulate(sql.AggAvg, row[ci], 1); err != nil {
					return nil, fmt.Errorf("core: non-numeric aggregate in OPEN combine: %v", err)
				}
			}
			a.seen = ri + 1
		}
	}
	out := &exec.Result{Columns: first.Columns}
	for _, k := range order {
		a := accs[k]
		if a.seen != len(results) {
			continue // not in every replicate
		}
		row := make([]value.Value, len(a.keys))
		for ci := range row {
			switch {
			case !isAgg[ci]:
				row[ci] = a.keys[ci]
			case a.nulls[ci]:
				row[ci] = value.Null()
			default:
				row[ci] = a.sts[ci].Finalize(sql.AggAvg)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// filterTable copies rows satisfying pred into a new table, carrying the
// supplied per-row weights. It scans a snapshot (one lock acquisition)
// instead of locking per row.
func filterTable(ctx context.Context, t *table.Table, pred expr.Expr, weights []float64) (*table.Table, error) {
	snap := t.Snapshot()
	out := table.New(t.Name()+"_view", t.Schema())
	sc := snap.Schema()
	n := snap.Len()
	for i := 0; i < n; i++ {
		if i%8192 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := snap.Row(i)
		if pred != nil {
			ok, err := expr.Truthy(pred, &expr.Binding{Schema: sc, Row: row})
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		if err := out.AppendWeighted(row, weights[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

package core

import (
	"fmt"
	"sort"
	"strings"

	"mosaic/internal/catalog"
	"mosaic/internal/schema"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// DumpScript serializes the whole database as a Mosaic SQL script that
// recreates it when executed against an empty engine: auxiliary tables with
// their rows, the global population, derived populations, metadata (via
// temporary staging tables, with bin widths), samples with their rows, and
// per-tuple weights that differ from 1.
//
// Known limitations, noted as comments in the output: mechanisms other than
// UNIFORM cannot be expressed in SQL (stratified probabilities and
// predicate-biased designs are Go-API objects), so those samples dump as
// mechanism-less.
func (e *Engine) DumpScript() (string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.dumpScriptLocked()
}

// DumpWithGeneration returns the dump script together with the generation it
// captures, read under one lock acquisition — the pair GET /v1/snapshot
// ships to bootstrapping followers. Replaying the script reproduces the
// engine state at exactly that generation.
func (e *Engine) DumpWithGeneration() (string, uint64, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	script, err := e.dumpScriptLocked()
	return script, e.gen.Load(), err
}

func (e *Engine) dumpScriptLocked() (string, error) {
	var b strings.Builder
	b.WriteString("-- Mosaic dump; replay with mosaic.DB.Exec or cmd/mosaic.\n")

	// Auxiliary tables (sorted for determinism).
	names := e.auxTableNames()
	for _, n := range names {
		t, _ := e.cat.Table(n)
		fmt.Fprintf(&b, "CREATE TABLE %s %s;\n", n, schemaDDL(t.Schema()))
		dumpRows(&b, n, t, nil)
	}

	// Populations: the GP first, then derived ones.
	gp, hasGP := e.cat.GlobalPopulation()
	if hasGP {
		fmt.Fprintf(&b, "CREATE GLOBAL POPULATION %s %s;\n", gp.Name, schemaDDL(gp.Schema))
		for _, p := range e.derivedPopulations() {
			fmt.Fprintf(&b, "CREATE POPULATION %s AS (SELECT %s FROM %s",
				p.Name, strings.Join(p.Schema.Names(), ", "), p.From)
			if p.Where != nil {
				fmt.Fprintf(&b, " WHERE %s", p.Where)
			}
			b.WriteString(");\n")
		}
		// Metadata for every population, via staging tables.
		pops := append([]*catalog.Population{gp}, e.derivedPopulations()...)
		for _, p := range pops {
			for _, m := range p.MarginalList() {
				staging := "__meta_" + sanitize(m.Name)
				cols := make([]string, len(m.Attrs))
				for i, a := range m.Attrs {
					k, err := p.Schema.Kind(a)
					if err != nil {
						return "", err
					}
					// Binned numeric cells hold midpoints, which may be
					// fractional even for INT attributes.
					if m.BinWidth(i) > 0 && k == value.KindInt {
						k = value.KindFloat
					}
					cols[i] = fmt.Sprintf("%s %s", a, k)
				}
				fmt.Fprintf(&b, "CREATE TEMPORARY TABLE %s (%s, mcount FLOAT);\n",
					staging, strings.Join(cols, ", "))
				var lines []string
				for _, c := range m.SortedCells() {
					vals := make([]string, 0, len(c.Vals)+1)
					for _, v := range c.Vals {
						vals = append(vals, v.String())
					}
					vals = append(vals, fmt.Sprintf("%g", c.Count))
					lines = append(lines, "("+strings.Join(vals, ", ")+")")
				}
				if len(lines) > 0 {
					fmt.Fprintf(&b, "INSERT INTO %s VALUES %s;\n", staging, strings.Join(lines, ", "))
				}
				fmt.Fprintf(&b, "CREATE METADATA %s FOR %s", m.Name, p.Name)
				var bins []string
				for i, a := range m.Attrs {
					if w := m.BinWidth(i); w > 0 {
						bins = append(bins, fmt.Sprintf("%s %g", a, w))
					}
				}
				if len(bins) > 0 {
					fmt.Fprintf(&b, " WITH BINS (%s)", strings.Join(bins, ", "))
				}
				fmt.Fprintf(&b, " AS (SELECT %s, mcount FROM %s);\n",
					strings.Join(m.Attrs, ", "), staging)
				fmt.Fprintf(&b, "DROP TABLE %s;\n", staging)
			}
		}
	}

	// Samples.
	for _, s := range e.sortedSamples() {
		fmt.Fprintf(&b, "CREATE SAMPLE %s %s AS (SELECT %s FROM %s",
			s.Name, schemaDDL(s.Table.Schema()),
			strings.Join(s.Table.Schema().Names(), ", "), s.From)
		if s.Where != nil {
			fmt.Fprintf(&b, " WHERE %s", s.Where)
		}
		if s.Mechanism != nil {
			if mn := s.Mechanism.Name(); strings.HasPrefix(mn, "UNIFORM PERCENT ") {
				fmt.Fprintf(&b, " USING MECHANISM %s", mn)
				b.WriteString(");\n")
			} else {
				fmt.Fprintf(&b, "); -- mechanism %q is not expressible in SQL; restore via SetMechanism\n", mn)
			}
		} else {
			b.WriteString(");\n")
		}
		dumpRows(&b, s.Name, s.Table, s.InitialWeights)
	}
	return b.String(), nil
}

func (e *Engine) auxTableNames() []string {
	var names []string
	// The catalog has no listing API for tables by design; rebuild the list
	// through Resolve by tracking registrations would be invasive, so the
	// catalog exposes AllTables below.
	for _, t := range e.cat.AllTables() {
		names = append(names, t.Name())
	}
	sort.Strings(names)
	return names
}

func (e *Engine) derivedPopulations() []*catalog.Population {
	var out []*catalog.Population
	for _, p := range e.cat.AllPopulations() {
		if !p.Global {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (e *Engine) sortedSamples() []*catalog.Sample {
	out := e.cat.AllSamples()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func schemaDDL(s *schema.Schema) string {
	parts := make([]string, s.Len())
	for i := 0; i < s.Len(); i++ {
		a := s.At(i)
		parts[i] = fmt.Sprintf("%s %s", a.Name, a.Kind)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// dumpRows emits INSERT statements in batches, followed by per-weight
// UPDATE SAMPLE statements for non-unit initial weights (grouped by weight
// value and matched by full-tuple predicates).
func dumpRows(b *strings.Builder, name string, t *table.Table, seedWeights []float64) {
	const batch = 500
	var lines []string
	flush := func() {
		if len(lines) == 0 {
			return
		}
		fmt.Fprintf(b, "INSERT INTO %s VALUES %s;\n", name, strings.Join(lines, ", "))
		lines = lines[:0]
	}
	t.Scan(func(row []value.Value, _ float64) bool {
		vals := make([]string, len(row))
		for i, v := range row {
			vals[i] = v.String()
		}
		lines = append(lines, "("+strings.Join(vals, ", ")+")")
		if len(lines) >= batch {
			flush()
		}
		return true
	})
	flush()
	if seedWeights == nil {
		return
	}
	// Group rows by weight; emit one UPDATE per distinct non-unit weight
	// with a disjunction of full-tuple matches. Rows with identical tuples
	// share a weight under this scheme — acceptable for dump fidelity since
	// identical tuples are statistically exchangeable.
	byWeight := map[float64][]string{}
	var order []float64
	i := 0
	sc := t.Schema()
	t.Scan(func(row []value.Value, _ float64) bool {
		w := seedWeights[i]
		i++
		if w == 1 {
			return true
		}
		var conj []string
		for ci, v := range row {
			if v.IsNull() {
				conj = append(conj, fmt.Sprintf("%s IS NULL", sc.At(ci).Name))
			} else {
				conj = append(conj, fmt.Sprintf("%s = %s", sc.At(ci).Name, v))
			}
		}
		pred := "(" + strings.Join(conj, " AND ") + ")"
		if _, ok := byWeight[w]; !ok {
			order = append(order, w)
		}
		byWeight[w] = append(byWeight[w], pred)
		return true
	})
	for _, w := range order {
		preds := dedupStrings(byWeight[w])
		fmt.Fprintf(b, "UPDATE SAMPLE %s SET WEIGHT = %g WHERE %s;\n",
			name, w, strings.Join(preds, " OR "))
	}
}

func dedupStrings(in []string) []string {
	seen := map[string]bool{}
	out := in[:0:0]
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == '_' {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

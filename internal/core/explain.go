package core

import (
	"encoding/csv"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mosaic/internal/catalog"
	"mosaic/internal/exec"
	"mosaic/internal/sql"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// Explain describes how a SELECT would be answered without running it: the
// relation kind, the resolved visibility, the chosen sample, the marginal
// scope (Fig 3's two paths), and the debiasing technique. Like Query it runs
// on the engine's shared read path.
func (e *Engine) Explain(sel *sql.Select) (*exec.Result, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	res := &exec.Result{Columns: []string{"property", "value"}}
	add := func(k, v string) {
		res.Rows = append(res.Rows, []value.Value{value.Text(k), value.Text(v)})
	}
	kind := e.cat.Resolve(sel.From)
	add("relation", sel.From)
	switch kind {
	case "":
		return nil, fmt.Errorf("core: unknown relation %q", sel.From)
	case "table":
		add("kind", "auxiliary table")
		add("technique", "direct scan (closed world)")
		add("execution", e.execPlan())
		if p := e.shardPlan(sql.VisibilityClosed); p != "" {
			add("sharding", p)
		}
		return res, nil
	case "sample":
		add("kind", "sample")
		add("technique", "direct scan over stored weights")
		add("execution", e.execPlan())
		if p := e.shardPlan(sql.VisibilityClosed); p != "" {
			add("sharding", p)
		}
		return res, nil
	}
	pop, _ := e.cat.Population(sel.From)
	if pop.Global {
		add("kind", "global population")
	} else {
		add("kind", fmt.Sprintf("population (view over %s)", pop.From))
	}
	vis := sel.Visibility
	if vis == sql.VisibilityDefault {
		vis = sql.VisibilitySemiOpen
		add("visibility", vis.String()+" (default)")
	} else {
		add("visibility", vis.String())
	}
	ctx, err := e.plan(pop, sel)
	if err != nil {
		return nil, err
	}
	add("sample", fmt.Sprintf("%s (%d tuples)", ctx.sample.Name, ctx.sample.Table.Len()))
	if ctx.sample.Mechanism != nil {
		add("mechanism", ctx.sample.Mechanism.Name())
	} else {
		add("mechanism", "unknown")
	}
	if len(ctx.margs) > 0 {
		names := make([]string, len(ctx.margs))
		for i, m := range ctx.margs {
			names[i] = m.Name
		}
		add("marginal scope", ctx.scope+" population")
		add("marginals", strings.Join(names, ", "))
	} else {
		add("marginals", "none")
	}
	switch vis {
	case sql.VisibilityClosed:
		add("technique", "sample as stored (user-initialized weights)")
	case sql.VisibilitySemiOpen:
		if _, usable, _ := e.knownMechanismWeights(ctx.sample); usable {
			add("technique", "inverse inclusion probability (Horvitz–Thompson)")
		} else if len(ctx.margs) > 0 {
			add("technique", "IPF reweighting against marginals")
		} else {
			add("technique", "UNANSWERABLE: no mechanism and no marginals")
		}
	case sql.VisibilityOpen:
		if len(ctx.margs) == 0 {
			add("technique", "UNANSWERABLE: OPEN needs marginals")
		} else {
			n := e.opts.GeneratedRows
			if n <= 0 {
				n = ctx.sample.Table.Len()
			}
			if !sel.HasAggregates() && len(sel.GroupBy) == 0 {
				// Non-aggregate OPEN queries answer from a single replicate.
				add("technique", fmt.Sprintf("M-SWG generation: 1 replicate × %d tuples", n))
			} else {
				workers := e.opts.Workers
				if workers > e.opts.OpenSamples {
					workers = e.opts.OpenSamples
				}
				add("technique", fmt.Sprintf("M-SWG generation: %d replicates × %d tuples across %d workers, group-intersect + average",
					e.opts.OpenSamples, n, workers))
			}
		}
	}
	add("execution", e.execPlan())
	if p := e.shardPlan(vis); p != "" {
		add("sharding", p)
	}
	return res, nil
}

// execPlan describes the physical scan plan: which executor serves the query
// and how it partitions the table. Answers never depend on this — the
// morsel merge is deterministic and the row path is byte-identical — so the
// row is purely informational.
func (e *Engine) execPlan() string {
	if e.opts.RowExec {
		return "row-at-a-time interpreter (forced)"
	}
	if e.opts.Workers <= 1 {
		return fmt.Sprintf("vectorized kernels, serial scan (%d-row morsels, 1 worker)", exec.MorselRows)
	}
	return fmt.Sprintf("vectorized kernels, morsel-parallel scan (%d-row morsels × %d workers, deterministic morsel-order merge)",
		exec.MorselRows, e.opts.Workers)
}

// shardPlan describes the scatter-gather shard plan alongside the morsel
// plan; empty when sharding is off (Shards ≤ 1) so single-shard EXPLAIN
// output stays byte-identical to the pre-sharding engine. Unlike the morsel
// plan, the shard plan is part of the answer contract: float aggregates may
// differ in low-order bits between Shards values (partial-state merges
// reassociate addition), though for a fixed Shards value answers stay
// bit-identical across runs and Workers.
func (e *Engine) shardPlan(vis sql.Visibility) string {
	if e.opts.Shards <= 1 || e.opts.RowExec {
		return ""
	}
	if vis == sql.VisibilityOpen {
		return fmt.Sprintf("disabled for OPEN: replicates scan the unified view (models train on the full sample); %d shards serve CLOSED/SEMI-OPEN aggregates only", e.opts.Shards)
	}
	return fmt.Sprintf("scatter-gather over %d contiguous range shards (64-row-aligned bounds), partial aggregate states merged in shard order", e.opts.Shards)
}

// execCopy bulk-loads a CSV file into a table or sample, coercing each field
// to the target column's kind. Empty fields load as NULL.
func (e *Engine) execCopy(c *sql.Copy) error {
	t, err := e.sourceTable(c.Table)
	if err != nil {
		return fmt.Errorf("core: COPY %s: %v", c.Table, err)
	}
	f, err := os.Open(c.Path)
	if err != nil {
		return fmt.Errorf("core: COPY %s: %v", c.Table, err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.FieldsPerRecord = t.Schema().Len()
	records, err := r.ReadAll()
	if err != nil {
		return fmt.Errorf("core: COPY %s: %v", c.Table, err)
	}
	if c.Header && len(records) > 0 {
		records = records[1:]
	}
	sc := t.Schema()
	for ri, rec := range records {
		row := make([]value.Value, sc.Len())
		for i, field := range rec {
			v, err := parseCSVField(field, sc.At(i).Kind)
			if err != nil {
				return fmt.Errorf("core: COPY %s row %d column %q: %v", c.Table, ri+1, sc.At(i).Name, err)
			}
			row[i] = v
		}
		if err := t.Append(row); err != nil {
			return fmt.Errorf("core: COPY %s row %d: %v", c.Table, ri+1, err)
		}
	}
	if smp, ok := e.cat.Sample(c.Table); ok {
		smp.InitialWeights = nil
		e.invalidateModels()
	}
	return nil
}

func parseCSVField(s string, k value.Kind) (value.Value, error) {
	if s == "" {
		return value.Null(), nil
	}
	switch k {
	case value.KindInt:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return value.Null(), err
		}
		return value.Int(i), nil
	case value.KindFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return value.Null(), err
		}
		return value.Float(f), nil
	case value.KindBool:
		b, err := strconv.ParseBool(strings.TrimSpace(strings.ToLower(s)))
		if err != nil {
			return value.Null(), err
		}
		return value.Bool(b), nil
	default:
		return value.Text(s), nil
	}
}

// unionCoveringSamples implements the Sec 7 "Multiple Samples" extension:
// rather than picking one optimal sample, union every schema-covering sample
// of the population and let IPF or the M-SWG reweight the combined tuples.
// The union's mechanism is unknown (the members may have different designs),
// and seed weights concatenate the members' seed weights.
func (e *Engine) unionCoveringSamples(gp *catalog.Population, need map[string]bool) (*catalog.Sample, error) {
	var members []*catalog.Sample
	for _, s := range e.cat.SamplesOf(gp.Name) {
		ok := true
		for a := range need {
			if _, has := s.Table.Schema().Index(a); !has {
				ok = false
				break
			}
		}
		if ok && s.Table.Len() > 0 {
			members = append(members, s)
		}
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("core: no sample of population %q covers the query attributes", gp.Name)
	}
	if len(members) == 1 {
		return members[0], nil
	}
	// Use the narrowest member schema all members share: project each
	// member down to the intersection of attributes so heterogeneous
	// samples can still union (Sec 7 "Data Integration" relaxation is out
	// of scope; attribute subsets suffice).
	common := members[0].Table.Schema()
	for _, m := range members[1:] {
		var keep []string
		for _, a := range common.Names() {
			if _, ok := m.Table.Schema().Index(a); ok {
				keep = append(keep, a)
			}
		}
		var err error
		common, _, err = common.Project(keep)
		if err != nil {
			return nil, err
		}
	}
	names := make([]string, len(members))
	union := table.New("union", common)
	for i, m := range members {
		names[i] = m.Name
		_, idxs, err := m.Table.Schema().Project(common.Names())
		if err != nil {
			return nil, err
		}
		seed := m.SeedWeights()
		var appErr error
		j := 0
		m.Table.Scan(func(row []value.Value, _ float64) bool {
			proj := make([]value.Value, len(idxs))
			for pi, src := range idxs {
				proj[pi] = row[src]
			}
			if err := union.AppendWeighted(proj, seed[j]); err != nil {
				appErr = err
				return false
			}
			j++
			return true
		})
		if appErr != nil {
			return nil, appErr
		}
	}
	su := &catalog.Sample{
		Name:  "union(" + strings.Join(names, "+") + ")",
		Table: union,
		From:  gp.Name,
	}
	su.InitialWeights = union.Weights()
	return su, nil
}

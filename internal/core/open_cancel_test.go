package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"mosaic/internal/swg"
)

// countdownCtx is a context that reports cancellation after a fixed number
// of Err() checks, landing the cancellation deterministically at the k-th
// checkpoint instead of wherever a wall-clock deadline happens to fall.
// With limit 0 it never cancels and just counts the checkpoints.
type countdownCtx struct {
	context.Context
	calls atomic.Int64
	limit int64
}

func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.limit && c.limit > 0 {
		return context.Canceled
	}
	return c.Context.Err()
}

func serialOpenEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(Options{
		Seed:        3,
		OpenSamples: 3,
		Workers:     1, // the true serial replicate loop
		SWG: swg.Config{
			Hidden: []int{16, 16}, Latent: 2, Epochs: 8,
			BatchSize: 128, Projections: 12, StepsPerEpoch: 4,
		},
	})
	seedWorld(t, e)
	return e
}

// TestCancelMidReplicateSerial pins the serial OPEN replicate loop's
// cancellation contract (the existing cancel tests only exercise Workers 2):
// when the context expires at ANY checkpoint — including between replicates,
// where the loop breaks out leaving later results/errs slots nil — the query
// must surface ctx.Err() and must never combine a partial replicate set. The
// countdown context sweeps every region of the run deterministically.
func TestCancelMidReplicateSerial(t *testing.T) {
	q := mustParse(t, "SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp")
	e := serialOpenEngine(t)

	// Warm the model cache so the cancelled attempts below land in the
	// replicate loop (generation + per-replicate exec), not in training.
	want, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	// Count the checkpoints of one full cached-model run.
	probe := &countdownCtx{Context: context.Background()}
	if _, err := e.QueryContext(probe, q); err != nil {
		t.Fatal(err)
	}
	total := probe.calls.Load()
	if total < 4 {
		t.Fatalf("only %d ctx checkpoints in a %d-replicate OPEN run; per-replicate checks are gone", total, 3)
	}

	// Cancel at checkpoints spread across the whole run: early, inside each
	// replicate's work, and at the very end (limit total-1 cancels the final
	// checkpoint; limit total would let the run complete).
	for k := int64(1); k < total; k += max64(1, total/16) {
		ctx := &countdownCtx{Context: context.Background(), limit: k}
		res, err := e.QueryContext(ctx, q)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel at checkpoint %d/%d: err = %v (res %v), want context.Canceled", k, total, err, res)
		}
	}

	// The engine is unpoisoned: the next uncancelled query still matches the
	// pre-cancellation answer byte for byte.
	got, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("answer after cancellations diverged:\n got: %s\nwant: %s", got, want)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package core

import (
	"math"
	"strings"
	"testing"

	"mosaic/internal/exec"
	"mosaic/internal/marginal"
	"mosaic/internal/mechanism"
	"mosaic/internal/schema"
	"mosaic/internal/sql"
	"mosaic/internal/swg"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

func exec1(t *testing.T, e *Engine, src string) {
	t.Helper()
	if _, err := e.ExecScript(src); err != nil {
		t.Fatalf("exec %q: %v", src, err)
	}
}

func query(t *testing.T, e *Engine, src string) [][]value.Value {
	t.Helper()
	sel, err := sql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	res, err := e.Query(sel)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return res.Rows
}

func scalar(t *testing.T, e *Engine, src string) float64 {
	t.Helper()
	rows := query(t, e, src)
	if len(rows) != 1 || len(rows[0]) != 1 {
		t.Fatalf("query %q: not scalar: %v", src, rows)
	}
	f, err := rows[0][0].Float64()
	if err != nil {
		t.Fatalf("scalar: %v", err)
	}
	return f
}

// smallWorld sets up a two-attribute world with a predicate-biased sample
// and full 2-D metadata.
func smallWorld(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(Options{
		Seed:        3,
		OpenSamples: 3,
		SWG: swg.Config{
			Hidden: []int{16, 16}, Latent: 2, Epochs: 8,
			BatchSize: 128, Projections: 12, StepsPerEpoch: 4,
		},
	})
	exec1(t, e, `
		CREATE GLOBAL POPULATION World (grp TEXT, v INT);
		CREATE SAMPLE S AS (SELECT * FROM World WHERE grp = 'a');
		CREATE TABLE Truth (grp TEXT, v INT, n INT);
	`)
	// Population truth: group a has 40 tuples at v=1, group b 60 at v=2.
	if err := e.Ingest("Truth", [][]any{
		{"a", 1, 40}, {"b", 2, 60},
	}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `
		CREATE METADATA World_M1 AS (SELECT grp, n FROM Truth);
		CREATE METADATA World_M2 AS (SELECT v, n FROM Truth);
	`)
	// The sample: only group a tuples.
	rows := make([][]any, 0, 10)
	for i := 0; i < 10; i++ {
		rows = append(rows, []any{"a", 1})
	}
	if err := e.Ingest("S", rows); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestClosedUsesRawSample(t *testing.T) {
	e := smallWorld(t)
	if got := scalar(t, e, "SELECT CLOSED COUNT(*) FROM World"); got != 10 {
		t.Errorf("CLOSED COUNT(*) = %g, want 10 (raw sample)", got)
	}
}

func TestSemiOpenFitsMarginals(t *testing.T) {
	e := smallWorld(t)
	if got := scalar(t, e, "SELECT SEMI-OPEN COUNT(*) FROM World"); math.Abs(got-100) > 0.5 {
		t.Errorf("SEMI-OPEN COUNT(*) = %g, want 100", got)
	}
	// Default visibility for population queries is SEMI-OPEN.
	if got := scalar(t, e, "SELECT COUNT(*) FROM World"); math.Abs(got-100) > 0.5 {
		t.Errorf("default-visibility COUNT(*) = %g, want 100", got)
	}
}

func TestSemiOpenCannotCreateGroups(t *testing.T) {
	e := smallWorld(t)
	rows := query(t, e, "SELECT SEMI-OPEN grp, COUNT(*) FROM World GROUP BY grp")
	if len(rows) != 1 || rows[0][0].AsText() != "a" {
		t.Errorf("SEMI-OPEN groups = %v; reweighting must not invent group b", rows)
	}
}

func TestOpenGeneratesMissingGroups(t *testing.T) {
	e := smallWorld(t)
	rows := query(t, e, "SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp")
	groups := map[string]float64{}
	for _, r := range rows {
		f, _ := r[1].Float64()
		groups[r[0].AsText()] = f
	}
	if _, ok := groups["b"]; !ok {
		t.Errorf("OPEN did not generate group b: %v", groups)
	}
}

func TestKnownMechanismShortCircuitsIPF(t *testing.T) {
	e := NewEngine(Options{Seed: 1})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (x INT);
		CREATE SAMPLE U AS (SELECT * FROM P USING MECHANISM UNIFORM PERCENT 10);
	`)
	rows := make([][]any, 50)
	for i := range rows {
		rows[i] = []any{i}
	}
	if err := e.Ingest("U", rows); err != nil {
		t.Fatal(err)
	}
	// No marginals exist; the known mechanism still answers SEMI-OPEN:
	// 50 tuples / 0.10 = 500.
	if got := scalar(t, e, "SELECT SEMI-OPEN COUNT(*) FROM P"); got != 500 {
		t.Errorf("HT COUNT(*) = %g, want 500", got)
	}
}

func TestSemiOpenWithoutMechanismOrMarginalsFails(t *testing.T) {
	e := NewEngine(Options{})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (x INT);
		CREATE SAMPLE S AS (SELECT * FROM P);
	`)
	if err := e.Ingest("S", [][]any{{1}}); err != nil {
		t.Fatal(err)
	}
	sel, _ := sql.ParseQuery("SELECT SEMI-OPEN COUNT(*) FROM P")
	if _, err := e.Query(sel); err == nil {
		t.Error("SEMI-OPEN without mechanism or marginals should fail")
	}
}

func TestQueryPopulationMarginalScope(t *testing.T) {
	// A derived population with its own marginals is fitted directly
	// (Fig 3 bottom path).
	e := NewEngine(Options{Seed: 1})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (region TEXT, kind TEXT);
		CREATE POPULATION North AS (SELECT * FROM P WHERE region = 'n');
		CREATE SAMPLE S AS (SELECT * FROM P);
		CREATE TABLE NT (kind TEXT, n INT);
	`)
	if err := e.Ingest("S", [][]any{
		{"n", "x"}, {"n", "y"}, {"s", "x"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("NT", [][]any{{"x", 30}, {"y", 10}}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `CREATE METADATA North_M1 AS (SELECT kind, n FROM NT)`)
	// Query the derived population: the sub-sample {(n,x),(n,y)} is IPF'd
	// to the North marginal {x:30, y:10}.
	if got := scalar(t, e, "SELECT SEMI-OPEN COUNT(*) FROM North"); math.Abs(got-40) > 0.5 {
		t.Errorf("North COUNT(*) = %g, want 40", got)
	}
	rows := query(t, e, "SELECT SEMI-OPEN kind, COUNT(*) FROM North GROUP BY kind ORDER BY kind")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	x, _ := rows[0][1].Float64()
	y, _ := rows[1][1].Float64()
	if math.Abs(x-30) > 0.5 || math.Abs(y-10) > 0.5 {
		t.Errorf("North per-kind = %g, %g; want 30, 10", x, y)
	}
}

func TestGlobalMarginalScopeWithView(t *testing.T) {
	// A derived population without its own marginals uses the GP's and
	// filters through the view (Fig 3 left path).
	e := NewEngine(Options{Seed: 1})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (region TEXT, kind TEXT);
		CREATE POPULATION North AS (SELECT * FROM P WHERE region = 'n');
		CREATE SAMPLE S AS (SELECT * FROM P);
		CREATE TABLE GT (region TEXT, n INT);
	`)
	if err := e.Ingest("S", [][]any{
		{"n", "x"}, {"s", "x"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("GT", [][]any{{"n", 70}, {"s", 30}}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `CREATE METADATA P_M1 AS (SELECT region, n FROM GT)`)
	if got := scalar(t, e, "SELECT SEMI-OPEN COUNT(*) FROM North"); math.Abs(got-70) > 0.5 {
		t.Errorf("North via GP marginals = %g, want 70", got)
	}
}

func TestSampleSelectionPrefersCoveringSchema(t *testing.T) {
	e := NewEngine(Options{Seed: 1})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (a TEXT, b INT);
		CREATE SAMPLE Small (a TEXT) AS (SELECT a FROM P);
		CREATE SAMPLE Full AS (SELECT * FROM P);
		CREATE TABLE T (a TEXT, n INT);
	`)
	// Small has more rows but lacks attribute b.
	rowsSmall := make([][]any, 20)
	for i := range rowsSmall {
		rowsSmall[i] = []any{"x"}
	}
	if err := e.Ingest("Small", rowsSmall); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("Full", [][]any{{"x", 1}, {"x", 2}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("T", [][]any{{"x", 10}}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `CREATE METADATA P_M1 AS (SELECT a, n FROM T)`)
	// A query touching b must route to Full despite Small being larger.
	if got := scalar(t, e, "SELECT SEMI-OPEN SUM(b) FROM P"); math.Abs(got-15) > 0.5 {
		t.Errorf("SUM(b) = %g, want 15 (10 total weight × mean 1.5)", got)
	}
	// A query touching only a routes to the bigger sample (same answer
	// either way here, but it must not error).
	_ = scalar(t, e, "SELECT SEMI-OPEN COUNT(*) FROM P")

	sel, _ := sql.ParseQuery("SELECT SEMI-OPEN c FROM P")
	if _, err := e.Query(sel); err == nil {
		t.Error("query over attribute no sample covers should fail")
	}
}

func TestVisibilityOnNonPopulationsRejected(t *testing.T) {
	e := NewEngine(Options{})
	exec1(t, e, `CREATE TABLE T (a INT); CREATE GLOBAL POPULATION P (a INT); CREATE SAMPLE S AS (SELECT * FROM P)`)
	for _, q := range []string{
		"SELECT OPEN a FROM T",
		"SELECT SEMI-OPEN a FROM T",
		"SELECT OPEN a FROM S",
		"SELECT SEMI-OPEN a FROM S",
	} {
		sel, _ := sql.ParseQuery(q)
		if _, err := e.Query(sel); err == nil {
			t.Errorf("%q should be rejected", q)
		}
	}
	// CLOSED on table/sample is fine.
	for _, q := range []string{"SELECT CLOSED a FROM T", "SELECT CLOSED a FROM S"} {
		sel, _ := sql.ParseQuery(q)
		if _, err := e.Query(sel); err != nil {
			t.Errorf("%q: %v", q, err)
		}
	}
}

func TestUpdateWeightsAffectsClosedQueries(t *testing.T) {
	e := smallWorld(t)
	exec1(t, e, `UPDATE SAMPLE S SET WEIGHT = 3`)
	if got := scalar(t, e, "SELECT CLOSED COUNT(*) FROM World"); got != 30 {
		t.Errorf("CLOSED after UPDATE WEIGHT = %g, want 30", got)
	}
	// Conditional update.
	exec1(t, e, `UPDATE SAMPLE S SET WEIGHT = 1 WHERE v = 1`)
	if got := scalar(t, e, "SELECT CLOSED COUNT(*) FROM World"); got != 10 {
		t.Errorf("CLOSED after conditional update = %g, want 10", got)
	}
	// Negative weights rejected.
	if _, err := e.ExecScript(`UPDATE SAMPLE S SET WEIGHT = -1`); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestInsertAndCreateTableAsSelect(t *testing.T) {
	e := NewEngine(Options{})
	exec1(t, e, `CREATE TABLE T (a INT, b TEXT)`)
	exec1(t, e, `INSERT INTO T VALUES (1, 'x'), (2, 'y')`)
	exec1(t, e, `INSERT INTO T (b, a) VALUES ('z', 3)`)
	if got := scalar(t, e, "SELECT COUNT(*) FROM T"); got != 3 {
		t.Errorf("COUNT = %g", got)
	}
	exec1(t, e, `CREATE TABLE T2 AS (SELECT a FROM T WHERE a > 1)`)
	if got := scalar(t, e, "SELECT COUNT(*) FROM T2"); got != 2 {
		t.Errorf("CTAS COUNT = %g", got)
	}
	// Arity and column errors.
	if _, err := e.ExecScript(`INSERT INTO T VALUES (1)`); err == nil {
		t.Error("short insert should fail")
	}
	if _, err := e.ExecScript(`INSERT INTO T (a, zz) VALUES (1, 2)`); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := e.ExecScript(`INSERT INTO Missing VALUES (1)`); err == nil {
		t.Error("insert into missing relation should fail")
	}
}

func TestOpenCombineProtocol(t *testing.T) {
	// Directly exercise combineOpenResults: a group must appear in all
	// replicates to be returned, aggregates are averaged.
	sel, _ := sql.ParseQuery("SELECT g, COUNT(*) FROM x GROUP BY g")
	mk := func(rows ...[]value.Value) *exec.Result {
		return &exec.Result{Columns: []string{"g", "COUNT(*)"}, Rows: rows}
	}
	r1 := mk(
		[]value.Value{value.Text("a"), value.Float(10)},
		[]value.Value{value.Text("b"), value.Float(4)},
	)
	r2 := mk(
		[]value.Value{value.Text("a"), value.Float(20)},
	)
	out, err := combineOpenResults([]*exec.Result{r1, r2}, sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 {
		t.Fatalf("combined rows = %v", out.Rows)
	}
	if out.Rows[0][0].AsText() != "a" {
		t.Errorf("surviving group = %v", out.Rows[0][0])
	}
	if got, _ := out.Rows[0][1].Float64(); got != 15 {
		t.Errorf("averaged count = %g, want 15", got)
	}
}

func TestAugmentMarginalsAddsUncoveredAttrs(t *testing.T) {
	sc := schema.MustNew(
		schema.Attribute{Name: "grp", Kind: value.KindText},
		schema.Attribute{Name: "v", Kind: value.KindInt},
	)
	tbl := table.New("s", sc)
	for i := 0; i < 4; i++ {
		if err := tbl.Append([]value.Value{value.Text("a"), value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := marginal.New("m", []string{"grp"})
	_ = m.Add([]value.Value{value.Text("a")}, 100)
	out, err := AugmentMarginals(tbl, []*marginal.Marginal{m})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("augmented set size = %d, want 2", len(out))
	}
	// The sample-derived v marginal is scaled to the population total.
	if math.Abs(out[1].Total()-100) > 1e-9 {
		t.Errorf("augmented marginal total = %g, want 100", out[1].Total())
	}
	if _, err := AugmentMarginals(tbl, nil); err == nil {
		t.Error("empty marginal set should fail")
	}
}

func TestSetSampleMechanism(t *testing.T) {
	e := NewEngine(Options{})
	exec1(t, e, `CREATE GLOBAL POPULATION P (x INT); CREATE SAMPLE S AS (SELECT * FROM P)`)
	if err := e.Ingest("S", [][]any{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetSampleMechanism("S", mechanism.Uniform{Percent: 50}); err != nil {
		t.Fatal(err)
	}
	if got := scalar(t, e, "SELECT SEMI-OPEN COUNT(*) FROM P"); got != 4 {
		t.Errorf("after SetSampleMechanism COUNT = %g, want 4", got)
	}
	if err := e.SetSampleMechanism("Missing", mechanism.Uniform{Percent: 50}); err == nil {
		t.Error("missing sample should fail")
	}
}

func TestStratifiedDeclaredMechanismFallsBackToIPF(t *testing.T) {
	// STRATIFIED declared via SQL has no computed probabilities: SEMI-OPEN
	// must fall back to IPF when marginals exist.
	e := NewEngine(Options{})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (g TEXT);
		CREATE SAMPLE S AS (SELECT * FROM P USING MECHANISM STRATIFIED ON g PERCENT 10);
		CREATE TABLE T (g TEXT, n INT);
	`)
	if err := e.Ingest("S", [][]any{{"a"}, {"b"}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Ingest("T", [][]any{{"a", 25}, {"b", 75}}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `CREATE METADATA P_M1 AS (SELECT g, n FROM T)`)
	if got := scalar(t, e, "SELECT SEMI-OPEN COUNT(*) FROM P"); math.Abs(got-100) > 0.5 {
		t.Errorf("IPF fallback COUNT = %g, want 100", got)
	}
}

func TestDropInvalidatesAndRemoves(t *testing.T) {
	e := smallWorld(t)
	exec1(t, e, `DROP METADATA World_M2`)
	// Still works with the remaining marginal.
	if got := scalar(t, e, "SELECT SEMI-OPEN COUNT(*) FROM World"); math.Abs(got-100) > 0.5 {
		t.Errorf("after drop COUNT = %g", got)
	}
	exec1(t, e, `DROP SAMPLE S`)
	sel, _ := sql.ParseQuery("SELECT SEMI-OPEN COUNT(*) FROM World")
	if _, err := e.Query(sel); err == nil {
		t.Error("query without any sample should fail")
	}
}

func TestExecScriptReportsStatementIndex(t *testing.T) {
	e := NewEngine(Options{})
	_, err := e.ExecScript(`CREATE TABLE T (a INT); INSERT INTO T VALUES ('x')`)
	if err == nil || !strings.Contains(err.Error(), "statement 2") {
		t.Errorf("error should name the failing statement: %v", err)
	}
}

func TestIngestTypeMismatch(t *testing.T) {
	e := NewEngine(Options{})
	exec1(t, e, `CREATE TABLE T (a INT)`)
	if err := e.Ingest("T", [][]any{{"not an int"}}); err == nil {
		t.Error("type mismatch should fail")
	}
	if err := e.Ingest("Missing", [][]any{{1}}); err == nil {
		t.Error("missing relation should fail")
	}
}

package core

import (
	"math"
	"strings"
	"testing"

	"mosaic/internal/marginal"
	"mosaic/internal/schema"
	"mosaic/internal/value"
)

// restore executes a dump against a fresh engine.
func restore(t *testing.T, script string) *Engine {
	t.Helper()
	e := NewEngine(Options{Seed: 3})
	if _, err := e.ExecScript(script); err != nil {
		t.Fatalf("restore failed: %v\nscript:\n%s", err, script)
	}
	return e
}

func TestDumpRestoreRoundTrip(t *testing.T) {
	e := smallWorld(t)
	script, err := e.DumpScript()
	if err != nil {
		t.Fatal(err)
	}
	e2 := restore(t, script)

	// Same auxiliary table contents.
	for _, q := range []string{
		"SELECT COUNT(*) FROM Truth",
		"SELECT SUM(n) FROM Truth",
	} {
		if a, b := scalar(t, e, q), scalar(t, e2, q); a != b {
			t.Errorf("%s: %g vs %g after restore", q, a, b)
		}
	}
	// Same sample contents and same SEMI-OPEN answers (marginals survive).
	if a, b := scalar(t, e, "SELECT CLOSED COUNT(*) FROM World"), scalar(t, e2, "SELECT CLOSED COUNT(*) FROM World"); a != b {
		t.Errorf("CLOSED counts differ after restore: %g vs %g", a, b)
	}
	a := scalar(t, e, "SELECT SEMI-OPEN COUNT(*) FROM World")
	b := scalar(t, e2, "SELECT SEMI-OPEN COUNT(*) FROM World")
	if math.Abs(a-b) > 1e-6 {
		t.Errorf("SEMI-OPEN counts differ after restore: %g vs %g", a, b)
	}
}

func TestDumpPreservesWeightsAndPredicates(t *testing.T) {
	e := NewEngine(Options{})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (g TEXT, v INT);
		CREATE SAMPLE S AS (SELECT * FROM P WHERE g = 'a');
	`)
	if err := e.Ingest("S", [][]any{{"a", 1}, {"a", 2}}); err != nil {
		t.Fatal(err)
	}
	exec1(t, e, `UPDATE SAMPLE S SET WEIGHT = 2.5 WHERE v = 2`)
	script, err := e.DumpScript()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script, "WHERE (g = 'a')") {
		t.Errorf("sample predicate missing from dump:\n%s", script)
	}
	if !strings.Contains(script, "UPDATE SAMPLE S SET WEIGHT = 2.5") {
		t.Errorf("weight update missing from dump:\n%s", script)
	}
	e2 := restore(t, script)
	if got := scalar(t, e2, "SELECT CLOSED COUNT(*) FROM P"); got != 3.5 {
		t.Errorf("restored weighted count = %g, want 3.5 (1 + 2.5)", got)
	}
}

func TestDumpPreservesUniformMechanism(t *testing.T) {
	e := NewEngine(Options{})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (x INT);
		CREATE SAMPLE U AS (SELECT * FROM P USING MECHANISM UNIFORM PERCENT 20);
	`)
	if err := e.Ingest("U", [][]any{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	script, err := e.DumpScript()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script, "USING MECHANISM UNIFORM PERCENT 20") {
		t.Errorf("mechanism missing:\n%s", script)
	}
	e2 := restore(t, script)
	if got := scalar(t, e2, "SELECT SEMI-OPEN COUNT(*) FROM P"); got != 10 {
		t.Errorf("restored HT count = %g, want 10", got)
	}
}

func TestDumpPreservesBinnedMarginals(t *testing.T) {
	e := NewEngine(Options{})
	exec1(t, e, `
		CREATE GLOBAL POPULATION P (e INT);
		CREATE SAMPLE S AS (SELECT * FROM P);
	`)
	if err := e.Ingest("S", [][]any{{203}, {212}}); err != nil {
		t.Fatal(err)
	}
	m, err := marginal.New("P_e", []string{"e"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetBinWidth("e", 10); err != nil {
		t.Fatal(err)
	}
	_ = m.Add([]value.Value{value.Int(203)}, 30) // bin [200,210)
	_ = m.Add([]value.Value{value.Int(212)}, 70) // bin [210,220)
	if err := e.AddMarginal("P", m); err != nil {
		t.Fatal(err)
	}
	script, err := e.DumpScript()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script, "WITH BINS (e 10)") {
		t.Errorf("bin clause missing:\n%s", script)
	}
	e2 := restore(t, script)
	// Binning must survive: tuples at 203/212 map into the restored bins,
	// so IPF hits the marginal exactly.
	got := scalar(t, e2, "SELECT SEMI-OPEN COUNT(*) FROM P")
	if math.Abs(got-100) > 1e-6 {
		t.Errorf("restored binned-marginal count = %g, want 100", got)
	}
	rows := query(t, e2, "SELECT SEMI-OPEN e, COUNT(*) FROM P GROUP BY e ORDER BY e")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	lo, _ := rows[0][1].Float64()
	hi, _ := rows[1][1].Float64()
	if math.Abs(lo-30) > 1e-6 || math.Abs(hi-70) > 1e-6 {
		t.Errorf("restored bin masses = %g/%g, want 30/70", lo, hi)
	}
}

func TestDumpQuotesEmbeddedQuotes(t *testing.T) {
	e := NewEngine(Options{})
	exec1(t, e, `CREATE TABLE T (s TEXT)`)
	if err := e.Ingest("T", [][]any{{"O'Hare"}}); err != nil {
		t.Fatal(err)
	}
	script, err := e.DumpScript()
	if err != nil {
		t.Fatal(err)
	}
	e2 := restore(t, script)
	rows := query(t, e2, "SELECT s FROM T")
	if len(rows) != 1 || rows[0][0].AsText() != "O'Hare" {
		t.Errorf("quote round trip = %v", rows)
	}
}

func TestDumpNotesInexpressibleMechanism(t *testing.T) {
	e := smallWorld(t)
	s, _ := e.Catalog().Sample("S")
	s.Mechanism = fakeMech{}
	script, err := e.DumpScript()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(script, "not expressible in SQL") {
		t.Errorf("dump should note inexpressible mechanism:\n%s", script)
	}
	// The script must still restore cleanly (mechanism-less).
	restore(t, script)
}

type fakeMech struct{}

func (fakeMech) Name() string { return "CUSTOM" }
func (fakeMech) InclusionProb([]value.Value, *schema.Schema) (float64, error) {
	return 1, nil
}

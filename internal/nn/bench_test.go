package nn

import (
	"math/rand"
	"testing"
)

func benchNet(b *testing.B) (*Network, [][]float64, *Adam) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	// The paper's flights generator topology: 5×50 hidden, 18-dim output.
	net := NewMLP(18, []int{50, 50, 50, 50, 50}, 18, [][2]int{{0, 14}}, rng)
	in := make([][]float64, 500)
	for i := range in {
		in[i] = make([]float64, 18)
		for j := range in[i] {
			in[i][j] = rng.NormFloat64()
		}
	}
	return net, in, NewAdam(0.001)
}

func BenchmarkForwardEval(b *testing.B) {
	net, in, _ := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(in, false)
	}
}

func BenchmarkTrainStep(b *testing.B) {
	net, in, adam := benchNet(b)
	grad := make([][]float64, len(in))
	for i := range grad {
		grad[i] = make([]float64, 18)
		for j := range grad[i] {
			grad[i][j] = 0.01
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(in, true)
		net.Backward(grad)
		adam.Step(net.Params())
	}
}

// Package nn is Mosaic's from-scratch neural-network substrate: dense
// layers, ReLU, batch normalization, softmax heads, Xavier initialization,
// and the Adam optimizer, all with hand-written backpropagation. It replaces
// the PyTorch stack the paper's prototype used (Sec 5.3 footnote 3) — the
// M-SWG's losses have closed-form subgradients, so a generic autodiff engine
// is unnecessary; each layer implements Forward/Backward explicitly.
//
// Data layout: batches are [][]float64 with shape batch×dim. Layers cache
// forward activations and consume them during Backward; a layer must see
// Backward exactly once per Forward in training mode.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Param is one trainable tensor with its gradient accumulator and Adam
// moment buffers.
type Param struct {
	Data []float64
	Grad []float64
	m, v []float64
}

// NewParam allocates a parameter of size n initialized to zero.
func NewParam(n int) *Param {
	return &Param{
		Data: make([]float64, n),
		Grad: make([]float64, n),
		m:    make([]float64, n),
		v:    make([]float64, n),
	}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward maps a batch through the layer. train selects training
	// behaviour (batch statistics, activation caching).
	Forward(x [][]float64, train bool) [][]float64
	// Backward consumes ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients.
	Backward(grad [][]float64) [][]float64
	// Params returns the layer's trainable parameters.
	Params() []*Param
}

func alloc(batch, dim int) [][]float64 {
	flat := make([]float64, batch*dim)
	out := make([][]float64, batch)
	for i := range out {
		out[i] = flat[i*dim : (i+1)*dim]
	}
	return out
}

// Dense is a fully connected layer y = xW + b.
type Dense struct {
	In, Out int
	W, B    *Param
	lastX   [][]float64
}

// NewDense creates a Dense layer with Xavier/Glorot-uniform weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{In: in, Out: out, W: NewParam(in * out), B: NewParam(out)}
	bound := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W.Data {
		d.W.Data[i] = (rng.Float64()*2 - 1) * bound
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(x [][]float64, train bool) [][]float64 {
	if train {
		d.lastX = x
	}
	y := alloc(len(x), d.Out)
	for r, row := range x {
		yr := y[r]
		copy(yr, d.B.Data)
		for i, xi := range row {
			if xi == 0 {
				continue
			}
			wRow := d.W.Data[i*d.Out : (i+1)*d.Out]
			for j, w := range wRow {
				yr[j] += xi * w
			}
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(grad [][]float64) [][]float64 {
	if d.lastX == nil {
		panic("nn: Dense.Backward without training Forward")
	}
	gx := alloc(len(grad), d.In)
	for r, g := range grad {
		xr := d.lastX[r]
		gxr := gx[r]
		for j, gj := range g {
			d.B.Grad[j] += gj
		}
		for i, xi := range xr {
			wRow := d.W.Data[i*d.Out : (i+1)*d.Out]
			gRow := d.W.Grad[i*d.Out : (i+1)*d.Out]
			var s float64
			for j, gj := range g {
				gRow[j] += xi * gj
				s += wRow[j] * gj
			}
			gxr[i] = s
		}
	}
	d.lastX = nil
	return gx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// ReLU is the rectifier activation.
type ReLU struct {
	mask [][]bool
}

// NewReLU creates a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x [][]float64, train bool) [][]float64 {
	y := alloc(len(x), dimOf(x))
	if train {
		r.mask = make([][]bool, len(x))
	}
	for i, row := range x {
		var m []bool
		if train {
			m = make([]bool, len(row))
			r.mask[i] = m
		}
		for j, v := range row {
			if v > 0 {
				y[i][j] = v
				if train {
					m[j] = true
				}
			}
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(grad [][]float64) [][]float64 {
	if r.mask == nil {
		panic("nn: ReLU.Backward without training Forward")
	}
	gx := alloc(len(grad), dimOf(grad))
	for i, g := range grad {
		for j, v := range g {
			if r.mask[i][j] {
				gx[i][j] = v
			}
		}
	}
	r.mask = nil
	return gx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// BatchNorm normalizes each feature over the batch, then applies a learned
// affine transform (the paper applies batch normalization after each layer).
type BatchNorm struct {
	Dim         int
	Gamma, Beta *Param
	Momentum    float64
	Eps         float64

	runMean, runVar []float64
	// training caches
	xhat   [][]float64
	std    []float64
	center [][]float64
}

// NewBatchNorm creates a BatchNorm over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	bn := &BatchNorm{
		Dim:      dim,
		Gamma:    NewParam(dim),
		Beta:     NewParam(dim),
		Momentum: 0.9,
		Eps:      1e-5,
		runMean:  make([]float64, dim),
		runVar:   make([]float64, dim),
	}
	for i := range bn.Gamma.Data {
		bn.Gamma.Data[i] = 1
		bn.runVar[i] = 1
	}
	return bn
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x [][]float64, train bool) [][]float64 {
	n := len(x)
	y := alloc(n, b.Dim)
	if !train || n == 1 {
		for i, row := range x {
			for j, v := range row {
				xh := (v - b.runMean[j]) / math.Sqrt(b.runVar[j]+b.Eps)
				y[i][j] = b.Gamma.Data[j]*xh + b.Beta.Data[j]
			}
		}
		return y
	}
	mean := make([]float64, b.Dim)
	for _, row := range x {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	variance := make([]float64, b.Dim)
	center := alloc(n, b.Dim)
	for i, row := range x {
		for j, v := range row {
			c := v - mean[j]
			center[i][j] = c
			variance[j] += c * c
		}
	}
	std := make([]float64, b.Dim)
	for j := range variance {
		variance[j] /= float64(n)
		std[j] = math.Sqrt(variance[j] + b.Eps)
		b.runMean[j] = b.Momentum*b.runMean[j] + (1-b.Momentum)*mean[j]
		b.runVar[j] = b.Momentum*b.runVar[j] + (1-b.Momentum)*variance[j]
	}
	xhat := alloc(n, b.Dim)
	for i := range x {
		for j := 0; j < b.Dim; j++ {
			xh := center[i][j] / std[j]
			xhat[i][j] = xh
			y[i][j] = b.Gamma.Data[j]*xh + b.Beta.Data[j]
		}
	}
	b.xhat, b.std, b.center = xhat, std, center
	return y
}

// Backward implements Layer.
func (b *BatchNorm) Backward(grad [][]float64) [][]float64 {
	if b.xhat == nil {
		panic("nn: BatchNorm.Backward without training Forward")
	}
	n := len(grad)
	fn := float64(n)
	gx := alloc(n, b.Dim)
	sumG := make([]float64, b.Dim)
	sumGX := make([]float64, b.Dim)
	for i, g := range grad {
		for j, gj := range g {
			b.Beta.Grad[j] += gj
			b.Gamma.Grad[j] += gj * b.xhat[i][j]
			sumG[j] += gj
			sumGX[j] += gj * b.xhat[i][j]
		}
	}
	for i, g := range grad {
		for j, gj := range g {
			// dL/dx = gamma/std * (g - mean(g) - xhat*mean(g*xhat))
			gx[i][j] = b.Gamma.Data[j] / b.std[j] *
				(gj - sumG[j]/fn - b.xhat[i][j]*sumGX[j]/fn)
		}
	}
	b.xhat, b.std, b.center = nil, nil, nil
	return gx
}

// Params implements Layer.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// SoftmaxBlocks applies softmax independently over designated column ranges
// and passes the remaining columns through unchanged. The M-SWG uses one
// block per categorical attribute ("we add a softmax layer for the
// categorical variable", Sec 5.3).
type SoftmaxBlocks struct {
	Blocks [][2]int // [start,end) column ranges
	lastY  [][]float64
}

// NewSoftmaxBlocks creates the head; blocks must be disjoint and in range.
func NewSoftmaxBlocks(blocks [][2]int) *SoftmaxBlocks {
	return &SoftmaxBlocks{Blocks: blocks}
}

// Forward implements Layer.
func (s *SoftmaxBlocks) Forward(x [][]float64, train bool) [][]float64 {
	y := alloc(len(x), dimOf(x))
	for i, row := range x {
		copy(y[i], row)
	}
	for _, blk := range s.Blocks {
		for i := range y {
			softmaxInPlace(y[i][blk[0]:blk[1]])
		}
	}
	if train {
		s.lastY = y
	}
	return y
}

// Backward implements Layer.
func (s *SoftmaxBlocks) Backward(grad [][]float64) [][]float64 {
	if s.lastY == nil {
		panic("nn: SoftmaxBlocks.Backward without training Forward")
	}
	gx := alloc(len(grad), dimOf(grad))
	for i, g := range grad {
		copy(gx[i], g)
	}
	for _, blk := range s.Blocks {
		for i := range grad {
			y := s.lastY[i][blk[0]:blk[1]]
			g := grad[i][blk[0]:blk[1]]
			var dot float64
			for j := range y {
				dot += y[j] * g[j]
			}
			out := gx[i][blk[0]:blk[1]]
			for j := range y {
				out[j] = y[j] * (g[j] - dot)
			}
		}
	}
	s.lastY = nil
	return gx
}

// Params implements Layer.
func (s *SoftmaxBlocks) Params() []*Param { return nil }

func softmaxInPlace(v []float64) {
	if len(v) == 0 {
		return
	}
	max := v[0]
	for _, x := range v[1:] {
		if x > max {
			max = x
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(x - max)
		v[i] = e
		sum += e
	}
	for i := range v {
		v[i] /= sum
	}
}

// Network is a sequential stack of layers.
type Network struct {
	Layers []Layer
}

// Forward implements Layer for the whole stack.
func (n *Network) Forward(x [][]float64, train bool) [][]float64 {
	for _, l := range n.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer for the whole stack.
func (n *Network) Backward(grad [][]float64) [][]float64 {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrad clears all parameter gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.ZeroGrad()
	}
}

// NewMLP builds the paper's generator topology: hidden Dense→BatchNorm→ReLU
// blocks ("we use 3 ReLU FC layers … and apply batch normalization after
// each layer"), then a final Dense to out dims, optionally followed by
// softmax blocks for categorical attributes.
func NewMLP(in int, hidden []int, out int, softmaxBlocks [][2]int, rng *rand.Rand) *Network {
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h, rng), NewBatchNorm(h), NewReLU())
		prev = h
	}
	layers = append(layers, NewDense(prev, out, rng))
	if len(softmaxBlocks) > 0 {
		layers = append(layers, NewSoftmaxBlocks(softmaxBlocks))
	}
	return &Network{Layers: layers}
}

// Adam is the Adam optimizer with PyTorch-default hyperparameters
// (the paper uses "Pytorch's Adam optimizer with the default settings").
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	t     int
}

// NewAdam creates an Adam optimizer with the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update to every parameter and clears gradients.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		for i, g := range p.Grad {
			p.m[i] = a.Beta1*p.m[i] + (1-a.Beta1)*g
			p.v[i] = a.Beta2*p.v[i] + (1-a.Beta2)*g*g
			mhat := p.m[i] / bc1
			vhat := p.v[i] / bc2
			p.Data[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
			p.Grad[i] = 0
		}
	}
}

func dimOf(x [][]float64) int {
	if len(x) == 0 {
		return 0
	}
	return len(x[0])
}

// CheckShapes validates that a batch is rectangular with the expected width.
func CheckShapes(x [][]float64, dim int) error {
	for i, row := range x {
		if len(row) != dim {
			return fmt.Errorf("nn: row %d has %d columns, want %d", i, len(row), dim)
		}
	}
	return nil
}

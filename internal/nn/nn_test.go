package nn

import (
	"math"
	"math/rand"
	"testing"
)

// quadLoss is L = Σ (y - target)² / batch, with gradient 2(y-target)/batch,
// used to drive gradient checks end-to-end.
func quadLoss(y [][]float64, target [][]float64) (float64, [][]float64) {
	var loss float64
	grad := make([][]float64, len(y))
	inv := 1 / float64(len(y))
	for i := range y {
		grad[i] = make([]float64, len(y[i]))
		for j := range y[i] {
			d := y[i][j] - target[i][j]
			loss += d * d * inv
			grad[i][j] = 2 * d * inv
		}
	}
	return loss, grad
}

func randBatch(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64()
		}
	}
	return out
}

// gradCheck verifies parameter gradients of a network against central finite
// differences for a fixed input and quadratic loss.
func gradCheck(t *testing.T, net *Network, in, target [][]float64, tol float64) {
	t.Helper()
	run := func() float64 {
		y := net.Forward(in, true)
		loss, grad := quadLoss(y, target)
		net.Backward(grad)
		return loss
	}
	net.ZeroGrad()
	_ = run()
	// Snapshot analytic gradients.
	var analytic []float64
	for _, p := range net.Params() {
		analytic = append(analytic, p.Grad...)
	}
	// Finite differences.
	const h = 1e-5
	k := 0
	for _, p := range net.Params() {
		for i := range p.Data {
			old := p.Data[i]
			p.Data[i] = old + h
			net.ZeroGrad()
			lp := lossOnly(net, in, target)
			p.Data[i] = old - h
			lm := lossOnly(net, in, target)
			p.Data[i] = old
			num := (lp - lm) / (2 * h)
			if math.Abs(num-analytic[k]) > tol*math.Max(1, math.Abs(num)) {
				t.Errorf("param grad %d: analytic %g vs numeric %g", k, analytic[k], num)
			}
			k++
		}
	}
}

func lossOnly(net *Network, in, target [][]float64) float64 {
	y := net.Forward(in, true)
	loss, grad := quadLoss(y, target)
	net.Backward(grad) // consume caches; grads ignored
	net.ZeroGrad()
	return loss
}

func TestDenseForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, rng)
	y := d.Forward(randBatch(rng, 5, 3), false)
	if len(y) != 5 || len(y[0]) != 2 {
		t.Fatalf("shape = %dx%d", len(y), len(y[0]))
	}
}

func TestDenseIsAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(2, 2, rng)
	x0 := [][]float64{{0, 0}}
	b := d.Forward(x0, false)[0]
	// y(e1) - y(0) gives the first weight row.
	e1 := [][]float64{{1, 0}}
	y1 := d.Forward(e1, false)[0]
	for j := 0; j < 2; j++ {
		if math.Abs(y1[j]-b[j]-d.W.Data[0*2+j]) > 1e-12 {
			t.Errorf("column %d: affine identity broken", j)
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := &Network{Layers: []Layer{NewDense(3, 2, rng)}}
	in := randBatch(rng, 4, 3)
	target := randBatch(rng, 4, 2)
	gradCheck(t, net, in, target, 1e-4)
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	y := r.Forward([][]float64{{-1, 2, 0}}, true)
	if y[0][0] != 0 || y[0][1] != 2 || y[0][2] != 0 {
		t.Errorf("ReLU forward = %v", y[0])
	}
	g := r.Backward([][]float64{{5, 5, 5}})
	if g[0][0] != 0 || g[0][1] != 5 || g[0][2] != 0 {
		t.Errorf("ReLU backward = %v", g[0])
	}
}

func TestMLPGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	net := NewMLP(3, []int{5}, 2, nil, rng)
	in := randBatch(rng, 6, 3)
	target := randBatch(rng, 6, 2)
	// ReLU kinks make exact finite differences noisy; nudge inputs away
	// from zero activations by using a generous tolerance.
	gradCheck(t, net, in, target, 5e-3)
}

func TestBatchNormNormalizes(t *testing.T) {
	bn := NewBatchNorm(2)
	rng := rand.New(rand.NewSource(5))
	x := randBatch(rng, 64, 2)
	for i := range x {
		x[i][0] = x[i][0]*3 + 10 // mean 10, sd 3
	}
	y := bn.Forward(x, true)
	var mean, sq float64
	for i := range y {
		mean += y[i][0]
	}
	mean /= float64(len(y))
	for i := range y {
		d := y[i][0] - mean
		sq += d * d
	}
	sd := math.Sqrt(sq / float64(len(y)))
	if math.Abs(mean) > 1e-9 || math.Abs(sd-1) > 1e-2 {
		t.Errorf("batchnorm output mean=%g sd=%g", mean, sd)
	}
	bn.Backward(y) // release caches
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := &Network{Layers: []Layer{NewDense(2, 3, rng), NewBatchNorm(3)}}
	in := randBatch(rng, 8, 2)
	target := randBatch(rng, 8, 3)
	gradCheck(t, net, in, target, 1e-3)
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm(1)
	rng := rand.New(rand.NewSource(7))
	// Train on shifted data to move the running mean.
	for step := 0; step < 200; step++ {
		x := randBatch(rng, 32, 1)
		for i := range x {
			x[i][0] += 5
		}
		y := bn.Forward(x, true)
		bn.Backward(y)
		bn.Gamma.ZeroGrad()
		bn.Beta.ZeroGrad()
	}
	// Eval on a single centered input: running mean ≈ 5 should subtract.
	y := bn.Forward([][]float64{{5}}, false)
	if math.Abs(y[0][0]) > 0.2 {
		t.Errorf("eval-mode output %g, want ≈0 (running mean)", y[0][0])
	}
}

func TestSoftmaxBlocks(t *testing.T) {
	s := NewSoftmaxBlocks([][2]int{{0, 3}})
	y := s.Forward([][]float64{{1, 1, 1, 42}}, false)
	for j := 0; j < 3; j++ {
		if math.Abs(y[0][j]-1.0/3) > 1e-12 {
			t.Errorf("softmax uniform = %v", y[0])
		}
	}
	if y[0][3] != 42 {
		t.Errorf("pass-through column modified: %g", y[0][3])
	}
	// Probabilities sum to 1 even with extreme inputs (stability shift).
	y = s.Forward([][]float64{{1000, -1000, 0, 0}}, false)
	var sum float64
	for j := 0; j < 3; j++ {
		sum += y[0][j]
	}
	if math.Abs(sum-1) > 1e-9 || math.IsNaN(sum) {
		t.Errorf("softmax extreme sum = %g", sum)
	}
}

func TestSoftmaxGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := &Network{Layers: []Layer{
		NewDense(2, 4, rng),
		NewSoftmaxBlocks([][2]int{{0, 3}}),
	}}
	in := randBatch(rng, 5, 2)
	target := randBatch(rng, 5, 4)
	gradCheck(t, net, in, target, 1e-3)
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)² with Adam: w must approach 3.
	p := NewParam(1)
	adam := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		p.Grad[0] = 2 * (p.Data[0] - 3)
		adam.Step([]*Param{p})
	}
	if math.Abs(p.Data[0]-3) > 1e-2 {
		t.Errorf("Adam converged to %g, want 3", p.Data[0])
	}
}

func TestAdamStepClearsGradients(t *testing.T) {
	p := NewParam(2)
	p.Grad[0], p.Grad[1] = 1, -1
	NewAdam(0.01).Step([]*Param{p})
	if p.Grad[0] != 0 || p.Grad[1] != 0 {
		t.Error("Step must clear gradients")
	}
}

func TestNetworkTrainingReducesLoss(t *testing.T) {
	// End-to-end: a small MLP learns a fixed target mapping.
	rng := rand.New(rand.NewSource(9))
	net := NewMLP(2, []int{16}, 1, nil, rng)
	adam := NewAdam(0.01)
	in := randBatch(rng, 32, 2)
	target := make([][]float64, 32)
	for i := range target {
		target[i] = []float64{in[i][0]*2 - in[i][1]}
	}
	first := -1.0
	var last float64
	for step := 0; step < 300; step++ {
		y := net.Forward(in, true)
		loss, grad := quadLoss(y, target)
		if first < 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		adam.Step(net.Params())
	}
	if last > first/10 {
		t.Errorf("loss %g -> %g; training failed to reduce by 10x", first, last)
	}
}

func TestBackwardWithoutForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := NewDense(2, 2, rng)
	defer func() {
		if recover() == nil {
			t.Error("Backward without Forward should panic")
		}
	}()
	d.Backward([][]float64{{1, 1}})
}

func TestCheckShapes(t *testing.T) {
	if err := CheckShapes([][]float64{{1, 2}, {3, 4}}, 2); err != nil {
		t.Errorf("valid shapes rejected: %v", err)
	}
	if err := CheckShapes([][]float64{{1, 2}, {3}}, 2); err == nil {
		t.Error("ragged batch should fail")
	}
}

func TestXavierInitBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDense(100, 100, rng)
	bound := math.Sqrt(6.0 / 200)
	for _, w := range d.W.Data {
		if math.Abs(w) > bound {
			t.Fatalf("weight %g exceeds Xavier bound %g", w, bound)
		}
	}
	for _, b := range d.B.Data {
		if b != 0 {
			t.Fatal("biases must start at zero")
		}
	}
}

package catalog

import (
	"strings"
	"testing"

	"mosaic/internal/marginal"
	"mosaic/internal/schema"
	"mosaic/internal/sql"
	"mosaic/internal/value"
)

var popSchema = schema.MustNew(
	schema.Attribute{Name: "country", Kind: value.KindText},
	schema.Attribute{Name: "email", Kind: value.KindText},
	schema.Attribute{Name: "age", Kind: value.KindInt},
)

func freshWithGP(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	if _, err := c.CreateGlobalPopulation("GP", popSchema); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSingleGlobalPopulation(t *testing.T) {
	c := freshWithGP(t)
	if _, err := c.CreateGlobalPopulation("GP2", popSchema); err == nil {
		t.Error("second global population should fail")
	}
	gp, ok := c.GlobalPopulation()
	if !ok || gp.Name != "GP" || !gp.Global {
		t.Errorf("GlobalPopulation = %+v, %v", gp, ok)
	}
}

func TestNameCollisionAcrossKinds(t *testing.T) {
	c := freshWithGP(t)
	if _, err := c.CreateTable("gp", popSchema); err == nil {
		t.Error("table name colliding with population should fail (case-insensitive)")
	}
	if _, err := c.CreateTable("aux", popSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSample("AUX", "GP", nil, nil, nil); err == nil {
		t.Error("sample name colliding with table should fail")
	}
}

func TestDerivedPopulation(t *testing.T) {
	c := freshWithGP(t)
	pred, _ := sql.ParseExpr("age > 30")
	p, err := c.CreatePopulation("Old", "GP", pred, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Global || p.From != "GP" || p.Where == nil {
		t.Errorf("derived population: %+v", p)
	}
	// Projected attribute list.
	p2, err := c.CreatePopulation("Slim", "GP", nil, []string{"country"})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Schema.Len() != 1 {
		t.Errorf("projected schema: %s", p2.Schema)
	}
	// Populations must chain from the GP only.
	if _, err := c.CreatePopulation("Bad", "Old", nil, nil); err == nil {
		t.Error("population over non-global population should fail")
	}
	if _, err := c.CreatePopulation("Bad", "Missing", nil, nil); err == nil {
		t.Error("population over missing relation should fail")
	}
}

func TestSampleSchemaContainment(t *testing.T) {
	c := freshWithGP(t)
	sub := schema.MustNew(
		schema.Attribute{Name: "country", Kind: value.KindText},
	)
	s, err := c.CreateSample("S", "GP", nil, sub, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Table.Schema().Len() != 1 {
		t.Errorf("sample schema: %s", s.Table.Schema())
	}
	// Attributes outside the population are rejected.
	bad := schema.MustNew(schema.Attribute{Name: "zzz", Kind: value.KindText})
	if _, err := c.CreateSample("S2", "GP", nil, bad, nil); err == nil {
		t.Error("sample with foreign attribute should fail")
	}
	// nil schema inherits the population schema.
	s3, err := c.CreateSample("S3", "GP", nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s3.Table.Schema().Equal(popSchema) {
		t.Error("nil sample schema should inherit population schema")
	}
	if _, err := c.CreateSample("S4", "Missing", nil, nil, nil); err == nil {
		t.Error("sample over missing population should fail")
	}
}

func TestSamplesOf(t *testing.T) {
	c := freshWithGP(t)
	if _, err := c.CreateSample("A", "GP", nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSample("B", "GP", nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := len(c.SamplesOf("gp")); got != 2 {
		t.Errorf("SamplesOf = %d", got)
	}
	if got := len(c.SamplesOf("other")); got != 0 {
		t.Errorf("SamplesOf(other) = %d", got)
	}
	if got := len(c.AllSamples()); got != 2 {
		t.Errorf("AllSamples = %d", got)
	}
}

func TestSeedWeights(t *testing.T) {
	c := freshWithGP(t)
	s, err := c.CreateSample("S", "GP", nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Table.Append([]value.Value{value.Text("UK"), value.Text("Yahoo"), value.Int(30)}); err != nil {
		t.Fatal(err)
	}
	w := s.SeedWeights()
	if len(w) != 1 || w[0] != 1 {
		t.Errorf("default seed weights = %v", w)
	}
	s.InitialWeights = []float64{2.5}
	w = s.SeedWeights()
	if w[0] != 2.5 {
		t.Errorf("custom seed weights = %v", w)
	}
	// Must be a copy.
	w[0] = 9
	if s.InitialWeights[0] != 2.5 {
		t.Error("SeedWeights must copy")
	}
}

func TestMarginalRegistration(t *testing.T) {
	c := freshWithGP(t)
	m, _ := marginal.New("GP_M1", []string{"country"})
	_ = m.Add([]value.Value{value.Text("UK")}, 10)
	if err := c.AddMarginal("GP", m); err != nil {
		t.Fatal(err)
	}
	gp, _ := c.Population("GP")
	if len(gp.MarginalList()) != 1 {
		t.Errorf("marginal list = %v", gp.MarginalList())
	}
	// Duplicate metadata name rejected.
	m2, _ := marginal.New("GP_M1", []string{"email"})
	_ = m2.Add([]value.Value{value.Text("Yahoo")}, 10)
	if err := c.AddMarginal("GP", m2); err == nil {
		t.Error("duplicate metadata name should fail")
	}
	// Foreign attribute rejected.
	bad, _ := marginal.New("GP_M9", []string{"zzz"})
	_ = bad.Add([]value.Value{value.Text("x")}, 1)
	if err := c.AddMarginal("GP", bad); err == nil {
		t.Error("marginal over missing attribute should fail")
	}
	if err := c.AddMarginal("Missing", m2); err == nil {
		t.Error("marginal on missing population should fail")
	}
	// Registration order preserved.
	m3, _ := marginal.New("GP_M2", []string{"email"})
	_ = m3.Add([]value.Value{value.Text("Yahoo")}, 10)
	if err := c.AddMarginal("GP", m3); err != nil {
		t.Fatal(err)
	}
	list := gp.MarginalList()
	if list[0].Name != "GP_M1" || list[1].Name != "GP_M2" {
		t.Errorf("marginal order = %v, %v", list[0].Name, list[1].Name)
	}
}

func TestResolve(t *testing.T) {
	c := freshWithGP(t)
	_, _ = c.CreateTable("t", popSchema)
	_, _ = c.CreateSample("s", "GP", nil, nil, nil)
	cases := map[string]string{
		"t": "table", "GP": "population", "s": "sample", "nope": "",
	}
	for name, want := range cases {
		if got := c.Resolve(name); got != want {
			t.Errorf("Resolve(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestDropLifecycle(t *testing.T) {
	c := freshWithGP(t)
	_, _ = c.CreateTable("t", popSchema)
	s, _ := c.CreateSample("s", "GP", nil, nil, nil)
	_ = s
	m, _ := marginal.New("GP_M1", []string{"country"})
	_ = m.Add([]value.Value{value.Text("UK")}, 1)
	_ = c.AddMarginal("GP", m)

	// GP cannot be dropped while dependents exist.
	if err := c.Drop("POPULATION", "GP"); err == nil {
		t.Error("dropping GP with a dependent sample should fail")
	}
	if err := c.Drop("SAMPLE", "s"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("METADATA", "GP_M1"); err != nil {
		t.Fatal(err)
	}
	gp, _ := c.Population("GP")
	if len(gp.MarginalList()) != 0 {
		t.Error("metadata not removed")
	}
	if err := c.Drop("TABLE", "t"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("POPULATION", "GP"); err != nil {
		t.Fatalf("dropping GP after dependents removed: %v", err)
	}
	if _, ok := c.GlobalPopulation(); ok {
		t.Error("GP still registered after drop")
	}
	// A new GP can now be declared.
	if _, err := c.CreateGlobalPopulation("GP2", popSchema); err != nil {
		t.Errorf("re-declaring GP: %v", err)
	}
	// Unknown names and kinds error.
	for kind, name := range map[string]string{
		"TABLE": "x", "POPULATION": "x", "SAMPLE": "x", "METADATA": "x",
	} {
		if err := c.Drop(kind, name); err == nil {
			t.Errorf("Drop(%s, x) should fail", kind)
		}
	}
	if err := c.Drop("INDEX", "x"); err == nil || !strings.Contains(err.Error(), "unknown relation kind") {
		t.Errorf("Drop INDEX error = %v", err)
	}
}

func TestDropGlobalPopulationBlockedByDerivedPopulation(t *testing.T) {
	c := freshWithGP(t)
	if _, err := c.CreatePopulation("Sub", "GP", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("POPULATION", "GP"); err == nil {
		t.Error("dropping GP with a derived population should fail")
	}
}

func TestRegisterTable(t *testing.T) {
	c := New()
	tbl, err := c.CreateTable("t", popSchema)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTable(tbl); err == nil {
		t.Error("re-registering the same name should fail")
	}
	got, ok := c.Table("T")
	if !ok || got != tbl {
		t.Error("case-insensitive table lookup failed")
	}
}

// Package catalog is Mosaic's registry of relations: auxiliary tables,
// population relations, sample relations, and population metadata
// (marginals). It enforces the paper's data-model rules: a single global
// population, non-global populations defined as views over it, and samples
// drawn from it with optional mechanisms (Sec 3.1).
package catalog

import (
	"fmt"
	"strings"
	"sync"

	"mosaic/internal/expr"
	"mosaic/internal/marginal"
	"mosaic/internal/mechanism"
	"mosaic/internal/schema"
	"mosaic/internal/table"
)

// Population is a (possibly global) population relation: a set of tuples
// that could exist but are not fully known to Mosaic.
type Population struct {
	Name   string
	Global bool
	Schema *schema.Schema
	// From/Where define a non-global population as a view over the global
	// population (CREATE POPULATION ... AS SELECT ... FROM gp WHERE pred).
	From  string
	Where expr.Expr
	// Marginals is the population's ground-truth metadata, keyed by
	// metadata name.
	Marginals map[string]*marginal.Marginal
	// marginalOrder preserves registration order for deterministic plans.
	marginalOrder []string
}

// MarginalList returns the population's marginals in registration order.
func (p *Population) MarginalList() []*marginal.Marginal {
	out := make([]*marginal.Marginal, 0, len(p.marginalOrder))
	for _, n := range p.marginalOrder {
		out = append(out, p.Marginals[n])
	}
	return out
}

// Sample is a sample relation: tuples that do exist in the global population
// and that Mosaic stores, with per-tuple weights and an optional mechanism.
type Sample struct {
	Name  string
	Table *table.Table
	// From is the population the sample was declared over (the GP).
	From  string
	Where expr.Expr
	// Mechanism is non-nil when the sampling mechanism is known.
	Mechanism mechanism.Mechanism
	// InitialWeights preserves the user-set weights for CLOSED queries and
	// for reseeding IPF. nil means all ones.
	InitialWeights []float64
}

// SeedWeights returns a fresh copy of the user-initialized weights
// (all ones when never set).
func (s *Sample) SeedWeights() []float64 {
	n := s.Table.Len()
	w := make([]float64, n)
	if s.InitialWeights == nil {
		for i := range w {
			w[i] = 1
		}
		return w
	}
	copy(w, s.InitialWeights)
	return w
}

// Catalog stores all relations. Methods are safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*table.Table
	pops   map[string]*Population
	samps  map[string]*Sample
	global string // name of the global population ("" when undeclared)
	// metaIndex maps metadata name -> population name for DROP METADATA.
	metaIndex map[string]string
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:    make(map[string]*table.Table),
		pops:      make(map[string]*Population),
		samps:     make(map[string]*Sample),
		metaIndex: make(map[string]string),
	}
}

func key(name string) string { return strings.ToLower(name) }

func (c *Catalog) nameTaken(name string) error {
	k := key(name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("catalog: relation %q already exists (table)", name)
	}
	if _, ok := c.pops[k]; ok {
		return fmt.Errorf("catalog: relation %q already exists (population)", name)
	}
	if _, ok := c.samps[k]; ok {
		return fmt.Errorf("catalog: relation %q already exists (sample)", name)
	}
	return nil
}

// --- auxiliary tables ---

// CreateTable registers a new auxiliary table.
func (c *Catalog) CreateTable(name string, s *schema.Schema) (*table.Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.nameTaken(name); err != nil {
		return nil, err
	}
	t := table.New(name, s)
	c.tables[key(name)] = t
	return t, nil
}

// RegisterTable adds an existing table under its own name.
func (c *Catalog) RegisterTable(t *table.Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.nameTaken(t.Name()); err != nil {
		return err
	}
	c.tables[key(t.Name())] = t
	return nil
}

// Table looks up an auxiliary table.
func (c *Catalog) Table(name string) (*table.Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	return t, ok
}

// --- populations ---

// CreateGlobalPopulation declares the global population. Only one may exist.
func (c *Catalog) CreateGlobalPopulation(name string, s *schema.Schema) (*Population, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.global != "" {
		return nil, fmt.Errorf("catalog: global population %q already declared", c.global)
	}
	if err := c.nameTaken(name); err != nil {
		return nil, err
	}
	p := &Population{Name: name, Global: true, Schema: s, Marginals: map[string]*marginal.Marginal{}}
	c.pops[key(name)] = p
	c.global = name
	return p, nil
}

// CreatePopulation declares a non-global population as a view over the GP.
func (c *Catalog) CreatePopulation(name, from string, where expr.Expr, attrs []string) (*Population, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.nameTaken(name); err != nil {
		return nil, err
	}
	gp, ok := c.pops[key(from)]
	if !ok {
		return nil, fmt.Errorf("catalog: population %q is not declared", from)
	}
	if !gp.Global {
		return nil, fmt.Errorf("catalog: populations must be defined over the global population, not %q", from)
	}
	var s *schema.Schema
	if len(attrs) == 0 {
		s = gp.Schema
	} else {
		ps, _, err := gp.Schema.Project(attrs)
		if err != nil {
			return nil, err
		}
		s = ps
	}
	p := &Population{Name: name, Schema: s, From: gp.Name, Where: where, Marginals: map[string]*marginal.Marginal{}}
	c.pops[key(name)] = p
	return p, nil
}

// Population looks up a population.
func (c *Catalog) Population(name string) (*Population, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	p, ok := c.pops[key(name)]
	return p, ok
}

// GlobalPopulation returns the declared global population, if any.
func (c *Catalog) GlobalPopulation() (*Population, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.global == "" {
		return nil, false
	}
	return c.pops[key(c.global)], true
}

// --- samples ---

// CreateSample registers a sample relation over population from.
func (c *Catalog) CreateSample(name, from string, where expr.Expr, s *schema.Schema, mech mechanism.Mechanism) (*Sample, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.nameTaken(name); err != nil {
		return nil, err
	}
	pop, ok := c.pops[key(from)]
	if !ok {
		return nil, fmt.Errorf("catalog: population %q is not declared", from)
	}
	if s == nil {
		s = pop.Schema
	}
	// Paper Sec 4 assumption 1: population attributes ⊆ sample attributes is
	// checked at query time; at declaration the sample schema must be a
	// subset of the population schema.
	if !pop.Schema.Contains(s) {
		return nil, fmt.Errorf("catalog: sample %q schema %s is not contained in population %q schema %s",
			name, s, from, pop.Schema)
	}
	sm := &Sample{Name: name, Table: table.New(name, s), From: pop.Name, Where: where, Mechanism: mech}
	c.samps[key(name)] = sm
	return sm, nil
}

// Sample looks up a sample.
func (c *Catalog) Sample(name string) (*Sample, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.samps[key(name)]
	return s, ok
}

// SamplesOf returns all samples declared over the given population, in name
// order-independent registration order.
func (c *Catalog) SamplesOf(pop string) []*Sample {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Sample
	for _, s := range c.samps {
		if strings.EqualFold(s.From, pop) {
			out = append(out, s)
		}
	}
	return out
}

// AllTables returns every auxiliary table (unordered).
func (c *Catalog) AllTables() []*table.Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*table.Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}

// AllPopulations returns every population (unordered).
func (c *Catalog) AllPopulations() []*Population {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Population, 0, len(c.pops))
	for _, p := range c.pops {
		out = append(out, p)
	}
	return out
}

// AllSamples returns every registered sample.
func (c *Catalog) AllSamples() []*Sample {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Sample, 0, len(c.samps))
	for _, s := range c.samps {
		out = append(out, s)
	}
	return out
}

// --- metadata ---

// AddMarginal attaches metadata to a population. The marginal's attributes
// must exist in the population schema.
func (c *Catalog) AddMarginal(pop string, m *marginal.Marginal) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pops[key(pop)]
	if !ok {
		return fmt.Errorf("catalog: population %q is not declared", pop)
	}
	for _, a := range m.Attrs {
		if _, ok := p.Schema.Index(a); !ok {
			return fmt.Errorf("catalog: marginal %s attribute %q not in population %q schema", m.Name, a, pop)
		}
	}
	if _, dup := c.metaIndex[key(m.Name)]; dup {
		return fmt.Errorf("catalog: metadata %q already exists", m.Name)
	}
	p.Marginals[m.Name] = m
	p.marginalOrder = append(p.marginalOrder, m.Name)
	c.metaIndex[key(m.Name)] = p.Name
	return nil
}

// Resolve reports what kind of relation a name refers to:
// "table", "population", "sample", or "" when unknown.
func (c *Catalog) Resolve(name string) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	k := key(name)
	switch {
	case c.tables[k] != nil:
		return "table"
	case c.pops[k] != nil:
		return "population"
	case c.samps[k] != nil:
		return "sample"
	default:
		return ""
	}
}

// Drop removes a relation or metadata entry.
func (c *Catalog) Drop(kind, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	switch kind {
	case "TABLE":
		if _, ok := c.tables[k]; !ok {
			return fmt.Errorf("catalog: no table %q", name)
		}
		delete(c.tables, k)
	case "POPULATION":
		p, ok := c.pops[k]
		if !ok {
			return fmt.Errorf("catalog: no population %q", name)
		}
		if p.Global {
			for _, other := range c.pops {
				if !other.Global {
					return fmt.Errorf("catalog: cannot drop global population %q while population %q depends on it", name, other.Name)
				}
			}
			for _, s := range c.samps {
				if strings.EqualFold(s.From, name) {
					return fmt.Errorf("catalog: cannot drop global population %q while sample %q depends on it", name, s.Name)
				}
			}
			c.global = ""
		}
		for mn := range p.Marginals {
			delete(c.metaIndex, key(mn))
		}
		delete(c.pops, k)
	case "SAMPLE":
		if _, ok := c.samps[k]; !ok {
			return fmt.Errorf("catalog: no sample %q", name)
		}
		delete(c.samps, k)
	case "METADATA":
		popName, ok := c.metaIndex[k]
		if !ok {
			return fmt.Errorf("catalog: no metadata %q", name)
		}
		p := c.pops[key(popName)]
		for mn := range p.Marginals {
			if key(mn) == k {
				delete(p.Marginals, mn)
				for i, on := range p.marginalOrder {
					if key(on) == k {
						p.marginalOrder = append(p.marginalOrder[:i], p.marginalOrder[i+1:]...)
						break
					}
				}
				break
			}
		}
		delete(c.metaIndex, k)
	default:
		return fmt.Errorf("catalog: unknown relation kind %q", kind)
	}
	return nil
}

package server

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"time"

	"mosaic/internal/sql"
	"mosaic/internal/wire"
)

// latencyBuckets are the histogram upper bounds. The last bucket is
// unbounded (+Inf).
var latencyBuckets = []time.Duration{
	500 * time.Microsecond,
	1 * time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2500 * time.Millisecond,
	10 * time.Second,
}

// histogram is a fixed-bucket latency histogram with lock-free recording.
type histogram struct {
	counts [9]atomic.Int64 // len(latencyBuckets)+1, last = +Inf
	sumNs  atomic.Int64
	n      atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if d <= latencyBuckets[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.n.Add(1)
}

func (h *histogram) snapshot() wire.HistogramSnapshot {
	out := wire.HistogramSnapshot{Buckets: make(map[string]int64, len(latencyBuckets)+1)}
	for i := range h.counts {
		label := "+Inf"
		if i < len(latencyBuckets) {
			label = "le_" + strings.ReplaceAll(latencyBuckets[i].String(), ".", "_")
		}
		out.Buckets[label] = h.counts[i].Load()
	}
	out.Count = h.n.Load()
	if n := out.Count; n > 0 {
		out.MeanMs = float64(h.sumNs.Load()) / float64(n) / 1e6
	}
	return out
}

// stats aggregates per-visibility query counters and latency histograms plus
// whole-server request accounting.
type stats struct {
	started time.Time

	queries  [4]atomic.Int64 // indexed by sql.Visibility
	errors   atomic.Int64
	execs    atomic.Int64
	explains atomic.Int64
	rejected  atomic.Int64 // admission-gate rejections
	timeouts  atomic.Int64 // per-request deadline expiries
	cancelled atomic.Int64 // engine calls aborted by context cancellation
	inflight  atomic.Int64

	latency [4]histogram // per visibility

	snapshots        atomic.Int64
	lastSnapshotUnix atomic.Int64
	lastSnapshotSize atomic.Int64
}

func newStats() *stats { return &stats{started: time.Now()} }

func (s *stats) recordQuery(vis sql.Visibility, d time.Duration, err error) {
	if err != nil {
		if isCancellation(err) {
			s.cancelled.Add(1)
		} else {
			s.errors.Add(1)
		}
		return
	}
	s.queries[vis].Add(1)
	s.latency[vis].observe(d)
}

// recordCancelled counts err when it is a context cancellation (non-query
// paths call it; query errors route through recordQuery).
func (s *stats) recordCancelled(err error) {
	if isCancellation(err) {
		s.cancelled.Add(1)
	}
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (s *stats) snapshot() wire.StatsResponse {
	out := wire.StatsResponse{
		UptimeSecs:       time.Since(s.started).Seconds(),
		Inflight:         s.inflight.Load(),
		Execs:            s.execs.Load(),
		Explains:         s.explains.Load(),
		QueryErrors:      s.errors.Load(),
		Rejected:         s.rejected.Load(),
		Timeouts:         s.timeouts.Load(),
		Cancelled:        s.cancelled.Load(),
		Visibilities:     make(map[string]wire.VisibilityStats, 4),
		Snapshots:        s.snapshots.Load(),
		LastSnapshotUnix: s.lastSnapshotUnix.Load(),
		LastSnapshotSize: s.lastSnapshotSize.Load(),
	}
	for vis := sql.VisibilityDefault; vis <= sql.VisibilityOpen; vis++ {
		name := strings.ToLower(vis.String())
		out.Visibilities[name] = wire.VisibilityStats{
			Queries: s.queries[vis].Load(),
			Latency: s.latency[vis].snapshot(),
		}
	}
	return out
}

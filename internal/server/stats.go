package server

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"time"

	"mosaic/internal/core"
	"mosaic/internal/sql"
	"mosaic/internal/wire"
)

// latencyBuckets are the histogram upper bounds. The last bucket is
// unbounded (+Inf).
var latencyBuckets = []time.Duration{
	500 * time.Microsecond,
	1 * time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	2500 * time.Millisecond,
	10 * time.Second,
}

// histogram is a fixed-bucket latency histogram with lock-free recording.
type histogram struct {
	counts [9]atomic.Int64 // len(latencyBuckets)+1, last = +Inf
	sumNs  atomic.Int64
	n      atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if d <= latencyBuckets[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
	h.n.Add(1)
}

func (h *histogram) snapshot() wire.HistogramSnapshot {
	out := wire.HistogramSnapshot{Buckets: make(map[string]int64, len(latencyBuckets)+1)}
	for i := range h.counts {
		label := "+Inf"
		if i < len(latencyBuckets) {
			label = "le_" + strings.ReplaceAll(latencyBuckets[i].String(), ".", "_")
		}
		out.Buckets[label] = h.counts[i].Load()
	}
	out.Count = h.n.Load()
	if n := out.Count; n > 0 {
		out.MeanMs = float64(h.sumNs.Load()) / float64(n) / 1e6
	}
	return out
}

// ewmaAlphaInv is the inverse smoothing factor of the per-class latency
// EWMA (α = 1/8): slow enough that one outlier does not trip the shedder,
// fast enough to track a saturation within a handful of requests.
const ewmaAlphaInv = 8

// classStats aggregates one priority class's admission counters, latency
// histogram, and the EWMA latency estimate the shedder consults.
type classStats struct {
	admitted atomic.Int64 // granted an execution slot
	shed     atomic.Int64 // refused up front: deadline unmeetable (503 + Retry-After)
	rejected atomic.Int64 // no slot within the deadline (503 + Retry-After)
	timeouts atomic.Int64 // admitted but deadline expired mid-execution (504)
	ewmaNs   atomic.Int64 // EWMA of completed-request latency
	latency  histogram
}

// observe records one completed request's latency into the histogram and the
// EWMA estimate.
func (cs *classStats) observe(d time.Duration) {
	cs.latency.observe(d)
	for {
		old := cs.ewmaNs.Load()
		nw := int64(d)
		if old != 0 {
			nw = old + (int64(d)-old)/ewmaAlphaInv
		}
		if cs.ewmaNs.CompareAndSwap(old, nw) {
			return
		}
	}
}

// estimate returns the current EWMA latency estimate (0 = no data yet).
func (cs *classStats) estimate() time.Duration {
	return time.Duration(cs.ewmaNs.Load())
}

// stats aggregates per-visibility query counters, per-class admission
// accounting, and whole-server request accounting.
type stats struct {
	started time.Time

	queries   [4]atomic.Int64 // indexed by sql.Visibility
	errors    atomic.Int64
	execs     atomic.Int64
	explains  atomic.Int64
	partials  atomic.Int64 // /v1/partial plans served (fleet shard duty)
	rejected  atomic.Int64 // admission-gate rejections (all classes)
	shed      atomic.Int64 // deadline-unmeetable sheds (all classes)
	timeouts  atomic.Int64 // per-request deadline expiries (all classes)
	cancelled atomic.Int64 // engine calls aborted by context cancellation
	inflight  atomic.Int64

	latency [4]histogram // per visibility
	classes [numClasses]classStats

	snapshots        atomic.Int64
	lastSnapshotUnix atomic.Int64
	lastSnapshotSize atomic.Int64
}

func newStats() *stats { return &stats{started: time.Now()} }

func (s *stats) recordQuery(vis sql.Visibility, d time.Duration, err error) {
	if err != nil {
		if isCancellation(err) {
			s.cancelled.Add(1)
		} else {
			s.errors.Add(1)
		}
		return
	}
	s.queries[vis].Add(1)
	s.latency[vis].observe(d)
}

// recordCancelled counts err when it is a context cancellation (non-query
// paths call it; query errors route through recordQuery).
func (s *stats) recordCancelled(err error) {
	if isCancellation(err) {
		s.cancelled.Add(1)
	}
}

// recordShed counts one up-front shed for cl.
func (s *stats) recordShed(cl class) {
	s.shed.Add(1)
	s.classes[cl].shed.Add(1)
}

// recordRejected counts one admission-gate rejection for cl.
func (s *stats) recordRejected(cl class) {
	s.rejected.Add(1)
	s.classes[cl].rejected.Add(1)
}

// recordTimeout counts one mid-execution deadline expiry for cl.
func (s *stats) recordTimeout(cl class) {
	s.timeouts.Add(1)
	s.classes[cl].timeouts.Add(1)
}

func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func (s *stats) snapshot(adm *admission, plans *core.PlanCache) wire.StatsResponse {
	out := wire.StatsResponse{
		UptimeSecs:       time.Since(s.started).Seconds(),
		Inflight:         s.inflight.Load(),
		Execs:            s.execs.Load(),
		Explains:         s.explains.Load(),
		Partials:         s.partials.Load(),
		QueryErrors:      s.errors.Load(),
		Rejected:         s.rejected.Load(),
		Shed:             s.shed.Load(),
		Timeouts:         s.timeouts.Load(),
		Cancelled:        s.cancelled.Load(),
		Visibilities:     make(map[string]wire.VisibilityStats, 4),
		Classes:          make(map[string]wire.ClassStats, numClasses),
		Snapshots:        s.snapshots.Load(),
		LastSnapshotUnix: s.lastSnapshotUnix.Load(),
		LastSnapshotSize: s.lastSnapshotSize.Load(),
	}
	for vis := sql.VisibilityDefault; vis <= sql.VisibilityOpen; vis++ {
		name := strings.ToLower(vis.String())
		out.Visibilities[name] = wire.VisibilityStats{
			Queries: s.queries[vis].Load(),
			Latency: s.latency[vis].snapshot(),
		}
	}
	for cl := classInteractive; cl < numClasses; cl++ {
		cs := &s.classes[cl]
		out.Classes[cl.String()] = wire.ClassStats{
			Admitted:   cs.admitted.Load(),
			Shed:       cs.shed.Load(),
			Rejected:   cs.rejected.Load(),
			Timeouts:   cs.timeouts.Load(),
			Inflight:   int64(adm.inflightCount(cl)),
			QueueDepth: int64(adm.queueDepth(cl)),
			EWMAMs:     float64(cs.ewmaNs.Load()) / 1e6,
			Latency:    cs.latency.snapshot(),
		}
	}
	if plans != nil {
		ps := plans.Stats()
		out.PlanCache = &wire.PlanCacheStats{
			Hits:      ps.Hits,
			Misses:    ps.Misses,
			Evictions: ps.Evictions,
			Size:      ps.Size,
			Capacity:  ps.Capacity,
		}
	}
	return out
}

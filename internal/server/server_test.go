package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mosaic"
	"mosaic/client"
	"mosaic/internal/value"
)

func testOpts() *mosaic.Options {
	return &mosaic.Options{
		Seed:        3,
		OpenSamples: 3,
		SWG: mosaic.SWGConfig{
			Hidden: []int{16, 16}, Latent: 2, Epochs: 8,
			BatchSize: 128, Projections: 12, StepsPerEpoch: 4,
		},
	}
}

const worldScript = `
	CREATE GLOBAL POPULATION World (grp TEXT, v INT);
	CREATE SAMPLE S AS (SELECT * FROM World WHERE grp = 'a');
	CREATE TABLE Truth (grp TEXT, v INT, n INT);
	INSERT INTO Truth VALUES ('a', 1, 40), ('b', 2, 60);
	CREATE METADATA World_M1 AS (SELECT grp, n FROM Truth);
	CREATE METADATA World_M2 AS (SELECT v, n FROM Truth);
	INSERT INTO S VALUES ('a', 1), ('a', 1), ('a', 1), ('a', 1), ('a', 1),
	                     ('a', 1), ('a', 1), ('a', 1), ('a', 1), ('a', 1);
`

var worldQueries = []string{
	"SELECT CLOSED COUNT(*) FROM World",
	"SELECT SEMI-OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp",
	"SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp ORDER BY grp",
}

func render(res *mosaic.Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, ","))
	for _, row := range res.Rows {
		b.WriteByte('\n')
		for _, v := range row {
			b.WriteString(v.HashKey())
			b.WriteByte('\x1f')
		}
	}
	return b.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *client.Client) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = mosaic.Open(testOpts())
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, client.New(ts.URL)
}

func TestNetworkAnswersMatchInProcess(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if err := c.Exec(worldScript); err != nil {
		t.Fatal(err)
	}
	// The reference engine: identical options, identical statement stream.
	ref := mosaic.Open(testOpts())
	if err := ref.Exec(worldScript); err != nil {
		t.Fatal(err)
	}
	for _, q := range worldQueries {
		got, err := c.Query(q)
		if err != nil {
			t.Fatalf("network %q: %v", q, err)
		}
		want, err := ref.Query(q)
		if err != nil {
			t.Fatalf("in-process %q: %v", q, err)
		}
		if render(got) != render(want) {
			t.Errorf("%q over HTTP diverged:\n got %q\nwant %q", q, render(got), render(want))
		}
	}
}

func TestRunReturnsPerStatementResults(t *testing.T) {
	_, c := newTestServer(t, Config{})
	results, err := c.Run(`
		CREATE TABLE T (a INT);
		INSERT INTO T VALUES (1), (2), (3);
		SELECT COUNT(*) FROM T;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || results[0] != nil || results[1] != nil || results[2] == nil {
		t.Fatalf("results = %v, want [nil nil result]", results)
	}
	if results[2].Rows[0][0].HashKey() != value.Float(3).HashKey() {
		t.Errorf("COUNT(*) over exec = %s, want 3", results[2].Rows[0][0])
	}
}

func TestExplainHealthStats(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if err := c.Health(); err != nil {
		t.Fatalf("health: %v", err)
	}
	if err := c.Exec(worldScript); err != nil {
		t.Fatal(err)
	}
	plan, err := c.Explain("SELECT OPEN COUNT(*) FROM World")
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	var found bool
	for _, row := range plan.Rows {
		if row[0].AsText() == "technique" && strings.Contains(row[1].AsText(), "M-SWG") {
			found = true
		}
	}
	if !found {
		t.Errorf("explain plan lacks M-SWG technique row: %v", plan.Rows)
	}

	for _, q := range worldQueries {
		if _, err := c.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Query("SELECT nope FROM Nowhere"); err == nil {
		t.Error("query on missing relation should fail")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, vis := range []string{"closed", "semi-open", "open"} {
		v := st.Visibilities[vis]
		if v.Queries != 1 {
			t.Errorf("stats[%s].Queries = %d, want 1", vis, v.Queries)
		}
		if v.Latency.Count != 1 {
			t.Errorf("stats[%s].Latency.Count = %d, want 1", vis, v.Latency.Count)
		}
	}
	if st.QueryErrors != 1 {
		t.Errorf("QueryErrors = %d, want 1", st.QueryErrors)
	}
	if st.Execs != 1 {
		t.Errorf("Execs = %d, want 1", st.Execs)
	}
	if st.Explains != 1 {
		t.Errorf("Explains = %d, want 1", st.Explains)
	}
}

// TestStatsShardCounters pins the /statsz sharding block: absent on an
// unsharded engine, and populated with per-shard scan counters once a
// sharded engine has served a CLOSED aggregate.
func TestStatsShardCounters(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if st, err := c.Stats(); err != nil {
		t.Fatal(err)
	} else if st.Sharding != nil {
		t.Errorf("unsharded /statsz reports sharding block %+v", st.Sharding)
	}

	opts := testOpts()
	opts.Shards = 2
	_, c = newTestServer(t, Config{DB: mosaic.Open(opts)})
	if err := c.Exec(`
		CREATE TABLE T (a INT);
		INSERT INTO T VALUES (1), (2), (3);
	`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT COUNT(*), SUM(a) FROM T"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sharding == nil {
		t.Fatal("sharded /statsz lacks the sharding block")
	}
	if st.Sharding.Shards != 2 || len(st.Sharding.Scans) != 2 || len(st.Sharding.Rows) != 2 {
		t.Fatalf("sharding block = %+v, want 2 shards with 2 counter slots each", st.Sharding)
	}
	var scans, rows int64
	for i := range st.Sharding.Scans {
		scans += st.Sharding.Scans[i]
		rows += st.Sharding.Rows[i]
	}
	if scans == 0 || rows != 3 {
		t.Errorf("sharding counters scans=%d rows=%d, want scans>0 rows=3", scans, rows)
	}
}

func TestBadRequests(t *testing.T) {
	_, c := newTestServer(t, Config{})
	// Parse errors arrive as 400s before touching the engine.
	if _, err := c.Query("SELEKT banana"); err == nil {
		t.Error("parse error should fail")
	} else if re, ok := err.(*client.RemoteError); !ok || re.StatusCode != http.StatusBadRequest {
		t.Errorf("parse error = %v, want 400 RemoteError", err)
	}
	if err := c.Exec("CREATE NONSENSE"); err == nil {
		t.Error("bad script should fail")
	}
	if _, err := c.Explain(""); err == nil {
		t.Error("empty explain should fail")
	}
}

func TestAdmissionGateRejectsWhenSaturated(t *testing.T) {
	s, c := newTestServer(t, Config{MaxConcurrent: 1, RequestTimeout: 100 * time.Millisecond})
	if err := c.Exec(`CREATE TABLE T (a INT)`); err != nil {
		t.Fatal(err)
	}
	// Saturate the single slot out-of-band.
	if !s.adm.acquire(context.Background(), classInteractive) {
		t.Fatal("could not take the only slot")
	}
	defer s.adm.release(classInteractive)
	_, err := c.Query("SELECT COUNT(*) FROM T")
	re, ok := err.(*client.RemoteError)
	if !ok || re.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated query = %v, want 503 RemoteError", err)
	}
	if re.RetryAfter <= 0 {
		t.Errorf("503 without Retry-After hint: %+v", re)
	}
	st, _ := c.Stats()
	if st.Rejected == 0 {
		t.Error("Rejected counter did not move")
	}
	if st.Classes["interactive"].Rejected == 0 {
		t.Error("per-class Rejected counter did not move")
	}
}

func TestRequestTimeoutAnswers504(t *testing.T) {
	s, _ := newTestServer(t, Config{RequestTimeout: 30 * time.Millisecond})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	s.run(rec, req, classInteractive, func(context.Context) (any, int) {
		time.Sleep(300 * time.Millisecond)
		return "late", http.StatusOK
	})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("slow request code = %d, want 504", rec.Code)
	}
	if s.stats.timeouts.Load() != 1 {
		t.Errorf("timeouts = %d, want 1", s.stats.timeouts.Load())
	}
}

func TestSnapshotLoopAndBootRestore(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.sql")

	db := mosaic.Open(testOpts())
	s, err := New(Config{DB: db, SnapshotPath: path, SnapshotInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(worldScript); err != nil {
		t.Fatal(err)
	}
	ref, err := db.Query(worldQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	// The background loop must write without being asked.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no snapshot appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A new server over an empty DB boots from the snapshot.
	db2 := mosaic.Open(testOpts())
	s2, err := New(Config{DB: db2, SnapshotPath: path, SnapshotInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := db2.Query(worldQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	if render(got) != render(ref) {
		t.Errorf("boot-restored answer diverged:\n got %q\nwant %q", render(got), render(ref))
	}
}

package server

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"mosaic/client"
)

// TestServeSIGHUPReloadSmoke drives the live-reload path with a real
// process: boot mosaic-serve with a QoS config file, start a query, rewrite
// the file and SIGHUP mid-flight, and require (a) the in-flight request
// completes, (b) the server keeps serving afterward under the new limits —
// SIGHUP must never be treated as a shutdown signal.
func TestServeSIGHUPReloadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots real processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mosaic-serve")
	build := exec.Command("go", "build", "-o", bin, "mosaic/cmd/mosaic-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	init := filepath.Join(dir, "world.sql")
	if err := os.WriteFile(init, []byte(worldScript), 0o644); err != nil {
		t.Fatal(err)
	}
	qos := filepath.Join(dir, "qos.json")
	if err := os.WriteFile(qos, []byte(`{"max_concurrent": 2, "batch_max_concurrent": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	addr := freeAddr(t)
	proc := startServe(t, bin, []string{
		"-addr", addr,
		"-qos-config", qos,
		"-seed", "3",
		"-open-samples", "3",
		"-swg-epochs", "6",
		init,
	})
	defer func() {
		_ = proc.Process.Signal(syscall.SIGTERM)
		_ = waitExit(proc, 15*time.Second)
	}()
	c := client.New("http://" + addr)
	waitHealthy(t, c)

	// Launch a query, then reload while it may still be in flight.
	type answer struct {
		got string
		err error
	}
	inflight := make(chan answer, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		res, err := c.QueryContext(ctx, worldQueries[2]) // OPEN: the slow one
		if err != nil {
			inflight <- answer{"", err}
			return
		}
		inflight <- answer{render(res), nil}
	}()
	time.Sleep(100 * time.Millisecond)
	if err := os.WriteFile(qos, []byte(`{"max_concurrent": 8, "batch_max_concurrent": 4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := proc.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}

	// The in-flight request survives the reload.
	select {
	case a := <-inflight:
		if a.err != nil {
			t.Fatalf("in-flight query across SIGHUP: %v", a.err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("in-flight query never completed after SIGHUP")
	}

	// The process is still serving (SIGHUP ≠ shutdown) and answers match a
	// pre-reload run of the same deterministic query.
	want, err := c.Query(worldQueries[0])
	if err != nil {
		t.Fatalf("query after SIGHUP: %v", err)
	}
	got, err := c.Query(worldQueries[0])
	if err != nil {
		t.Fatalf("second query after SIGHUP: %v", err)
	}
	if render(got) != render(want) {
		t.Errorf("answers diverged after reload:\n got %q\nwant %q", render(got), render(want))
	}
	// A second SIGHUP with a broken file must not kill the server either.
	if err := os.WriteFile(qos, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := proc.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if err := c.Health(); err != nil {
		t.Errorf("server unhealthy after SIGHUP with a bad config: %v", err)
	}
}

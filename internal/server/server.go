// Package server wraps a mosaic.DB with an HTTP/JSON API: the network front
// door of the engine. Endpoints:
//
//	POST /v1/query   {"query": "SELECT ..."}    → {"columns": [...], "rows": [[...]]}
//	POST /v1/exec    {"script": "CREATE ...;"}  → {"results": [null | result, ...]}
//	GET  /v1/explain?q=SELECT ...               → plan description result
//	GET  /healthz                               → liveness
//	GET  /statsz                                → per-visibility counters + latency histograms
//
// Every /v1 request passes a configurable admission gate (at most
// MaxConcurrent requests execute at once; the rest wait, then 503) and a
// per-request timeout (504). The request context threads into the engine, so
// a timed-out or client-cancelled request actually aborts the server-side
// work — M-SWG training, OPEN replicate generation, IPF fitting, and
// executor scans all checkpoint the context — and the admission slot frees
// as soon as the engine unwinds (/statsz counts these under "cancelled").
// Values travel in the exact wire encoding of internal/wire, so a client
// decodes answers byte-for-byte identical to an in-process engine's.
//
// When SnapshotPath is set the server restores it on boot (if present),
// rewrites it atomically every SnapshotInterval, and again on Close — the
// crash-recovery story of mosaic-serve.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"mosaic"
	"mosaic/internal/sql"
	"mosaic/internal/wire"
)

// Config configures a Server.
type Config struct {
	// DB is the engine to serve. Required.
	DB *mosaic.DB
	// MaxConcurrent bounds the number of /v1 requests executing at once;
	// excess requests wait for a slot until their timeout. Default 64.
	MaxConcurrent int
	// RequestTimeout bounds each /v1 request (admission wait + execution).
	// Default 30s.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies. Default 8 MiB.
	MaxBodyBytes int64
	// SnapshotPath, when non-empty, enables persistence: restored on boot,
	// written atomically every SnapshotInterval and on Close.
	SnapshotPath string
	// SnapshotInterval is the background snapshot period. Default 30s
	// (only meaningful with SnapshotPath).
	SnapshotInterval time.Duration
	// Logf receives operational log lines. Default: discard.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the HTTP front end of one mosaic.DB.
type Server struct {
	cfg   Config
	db    *mosaic.DB
	stats *stats
	gate  chan struct{}
	mux   *http.ServeMux

	stopOnce sync.Once
	stopSnap chan struct{}
	snapWG   sync.WaitGroup
	snapMu   sync.Mutex // serializes SnapshotNow against the background loop

	restored bool // a boot snapshot was loaded
}

// Restored reports whether New loaded an existing snapshot on boot. Callers
// that seed a fresh instance (e.g. mosaic-serve's positional init scripts)
// should skip seeding when true — the snapshot already contains it.
func (s *Server) Restored() bool { return s.restored }

// New builds a Server, restoring cfg.SnapshotPath first when it exists, and
// starts the background snapshot loop when persistence is configured.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DB == nil {
		return nil, fmt.Errorf("server: Config.DB is required")
	}
	s := &Server{
		cfg:      cfg,
		db:       cfg.DB,
		stats:    newStats(),
		gate:     make(chan struct{}, cfg.MaxConcurrent),
		mux:      http.NewServeMux(),
		stopSnap: make(chan struct{}),
	}
	if cfg.SnapshotPath != "" {
		if _, err := os.Stat(cfg.SnapshotPath); err == nil {
			if err := s.db.LoadSnapshot(cfg.SnapshotPath); err != nil {
				return nil, fmt.Errorf("server: boot restore: %w", err)
			}
			s.restored = true
			cfg.Logf("restored snapshot %s", cfg.SnapshotPath)
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("server: snapshot path: %w", err)
		}
		s.snapWG.Add(1)
		go s.snapshotLoop()
	}
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/exec", s.handleExec)
	s.mux.HandleFunc("/v1/explain", s.handleExplain)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/statsz", s.handleStats)
	return s, nil
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the snapshot loop and writes a final snapshot (when
// persistence is configured).
func (s *Server) Close() error {
	var err error
	s.stopOnce.Do(func() {
		close(s.stopSnap)
		s.snapWG.Wait()
		if s.cfg.SnapshotPath != "" {
			err = s.SnapshotNow()
		}
	})
	return err
}

// SnapshotNow writes one atomic snapshot immediately.
func (s *Server) SnapshotNow() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if err := s.db.SaveSnapshot(s.cfg.SnapshotPath); err != nil {
		return err
	}
	s.stats.snapshots.Add(1)
	s.stats.lastSnapshotUnix.Store(time.Now().Unix())
	if fi, err := os.Stat(s.cfg.SnapshotPath); err == nil {
		s.stats.lastSnapshotSize.Store(fi.Size())
	}
	return nil
}

func (s *Server) snapshotLoop() {
	defer s.snapWG.Done()
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.SnapshotNow(); err != nil {
				s.cfg.Logf("snapshot: %v", err)
			}
		case <-s.stopSnap:
			return
		}
	}
}

// admit reserves an execution slot, waiting until the request context
// expires. It reports whether the slot was granted; the caller must release
// on true.
func (s *Server) admit(ctx context.Context) bool {
	select {
	case s.gate <- struct{}{}:
		return true
	default:
	}
	select {
	case s.gate <- struct{}{}:
		return true
	case <-ctx.Done():
		s.stats.rejected.Add(1)
		return false
	}
}

func (s *Server) release() { <-s.gate }

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, wire.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// run executes fn under the admission gate and the per-request timeout,
// answering 503 (never admitted) or 504 (admitted but over deadline). The
// request context (bounded by RequestTimeout) is handed to fn, which must
// pass it into the engine: on 504 the statement is cancelled server-side —
// the engine unwinds at its next checkpoint, the admission slot frees, and
// no work keeps burning CPU for an answer nobody will read.
func (s *Server) run(w http.ResponseWriter, r *http.Request, fn func(ctx context.Context) (any, int)) {
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	if !s.admit(ctx) {
		writeError(w, http.StatusServiceUnavailable, "server overloaded: no slot within timeout")
		return
	}
	s.stats.inflight.Add(1)
	type outcome struct {
		body   any
		status int
	}
	done := make(chan outcome, 1)
	go func() {
		defer s.release()
		defer s.stats.inflight.Add(-1)
		body, status := fn(ctx)
		done <- outcome{body, status}
	}()
	select {
	case out := <-done:
		if out.status >= 400 {
			if msg, ok := out.body.(string); ok {
				writeError(w, out.status, "%s", msg)
				return
			}
		}
		writeJSON(w, out.status, out.body)
	case <-ctx.Done():
		s.stats.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, "request exceeded %s (the statement was cancelled server-side)", s.cfg.RequestTimeout)
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req wire.QueryRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	sel, err := sql.ParseQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	params, err := wire.DecodeValues(req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	bound, err := sql.BindParams(sel, params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	vis := bound.Visibility
	s.run(w, r, func(ctx context.Context) (any, int) {
		start := time.Now()
		// Query the engine with the already-parsed statement (db.Query would
		// re-parse the string).
		res, err := s.db.Engine().QueryContext(ctx, bound)
		s.stats.recordQuery(vis, time.Since(start), err)
		if err != nil {
			return err.Error(), http.StatusUnprocessableEntity
		}
		return wire.EncodeResult(res), http.StatusOK
	})
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req wire.ExecRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	s.run(w, r, func(ctx context.Context) (any, int) {
		s.stats.execs.Add(1)
		results, err := s.db.RunContext(ctx, req.Script)
		if err != nil {
			s.stats.recordCancelled(err)
			return err.Error(), http.StatusUnprocessableEntity
		}
		out := wire.ExecResponse{Results: make([]*wire.Result, len(results))}
		for i, res := range results {
			out.Results[i] = wire.EncodeResult(res)
		}
		return out, http.StatusOK
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing ?q=SELECT ...")
		return
	}
	sel, err := sql.ParseQuery(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.run(w, r, func(ctx context.Context) (any, int) {
		_ = ctx // EXPLAIN plans without executing; nothing long-running to cancel
		s.stats.explains.Add(1)
		res, err := s.db.Engine().Explain(sel)
		if err != nil {
			return err.Error(), http.StatusUnprocessableEntity
		}
		return wire.EncodeResult(res), http.StatusOK
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"uptime_secs": time.Since(s.stats.started).Seconds(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	out := s.stats.snapshot()
	// Per-shard scan counters live on the engine (the server has no view of
	// scatter-gather execution); merge them in when sharding is on.
	if eng := s.db.Engine(); eng.Shards() > 1 {
		out.Sharding = &wire.ShardStats{
			Shards: eng.Shards(),
			Scans:  eng.ShardScans(),
			Rows:   eng.ShardRows(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// Package server wraps a mosaic.DB with an HTTP/JSON API: the network front
// door of the engine. Endpoints:
//
//	POST /v1/query   {"query": "SELECT ..."}    → {"columns": [...], "rows": [[...]]}
//	POST /v1/exec    {"script": "CREATE ...;"}  → {"results": [null | result, ...]}
//	GET  /v1/explain?q=SELECT ...               → plan description result
//	GET  /healthz                               → liveness
//	GET  /statsz                                → per-visibility and per-class counters + latency histograms
//
// Every /v1 request passes a priority-aware admission controller before any
// work starts. Requests carry a priority class (X-Mosaic-Priority:
// interactive|batch; queries default by visibility — OPEN is batch,
// everything else interactive) and optionally a propagated client deadline
// (X-Mosaic-Deadline-Ms), intersected with RequestTimeout. The controller:
//
//   - sheds work it cannot finish — budget already spent, or the per-class
//     EWMA latency estimate exceeds the remaining budget — with
//     503 + Retry-After BEFORE execution starts (zero engine work);
//   - bounds per-class concurrency (batch can never occupy every slot) and
//     hands freed slots to interactive waiters first;
//   - answers 503 + Retry-After when no slot frees within the deadline, and
//     504 when an admitted request exceeds it mid-execution.
//
// Every rejection is a distinct counter in /statsz, split by class. The
// request context threads into the engine, so a timed-out or
// client-cancelled request actually aborts the server-side work — M-SWG
// training, OPEN replicate generation, IPF fitting, and executor scans all
// checkpoint the context — and the admission slot frees as soon as the
// engine unwinds (/statsz counts these under "cancelled").
//
// A bounded LRU plan cache keyed by query text gives every client amortized
// parse + plan without holding a Stmt: cached plans self-invalidate via the
// engine's DDL/DML generation counter, so a hit is never stale. Values
// travel in the exact wire encoding of internal/wire, so a client decodes
// answers byte-for-byte identical to an in-process engine's.
//
// The admission limits and shed threshold reload at runtime (ApplyQoS —
// mosaic-serve wires it to SIGHUP) without dropping in-flight requests.
//
// When SnapshotPath is set the server restores it on boot (if present),
// rewrites it atomically every SnapshotInterval, and again on Close — the
// crash-recovery story of mosaic-serve.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mosaic"
	"mosaic/internal/core"
	"mosaic/internal/exec"
	"mosaic/internal/sql"
	"mosaic/internal/wire"
)

// Config configures a Server.
type Config struct {
	// DB is the engine to serve. Required.
	DB *mosaic.DB
	// MaxConcurrent bounds the number of /v1 requests executing at once;
	// excess requests wait for a slot until their timeout. Default 64.
	MaxConcurrent int
	// BatchMaxConcurrent bounds concurrently executing batch-class requests
	// (OPEN queries, exec scripts) so batch work can never occupy every
	// slot. Default max(1, MaxConcurrent/2); clamped below MaxConcurrent.
	BatchMaxConcurrent int
	// ShedMargin scales the per-class EWMA latency estimate when deciding
	// whether a request's deadline is worth admitting: the request is shed
	// (503 + Retry-After, before any engine work) when estimate×margin
	// exceeds its remaining budget. Default 1.0; negative disables
	// estimate-based shedding (already-expired deadlines still shed).
	ShedMargin float64
	// RequestTimeout bounds each /v1 request (admission wait + execution),
	// intersected with any client-propagated X-Mosaic-Deadline-Ms. Default 30s.
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (413 beyond it). Default 8 MiB.
	MaxBodyBytes int64
	// PlanCacheSize bounds the server-side prepared-plan cache (distinct
	// query texts). Default 256; negative disables the cache.
	PlanCacheSize int
	// SnapshotPath, when non-empty, enables persistence: restored on boot,
	// written atomically every SnapshotInterval and on Close.
	SnapshotPath string
	// SnapshotInterval is the background snapshot period. Default 30s
	// (only meaningful with SnapshotPath).
	SnapshotInterval time.Duration
	// Follower, when non-nil, runs the server in read-only follower mode:
	// DDL/DML (/v1/exec) answers 403, the snapshot endpoints are refused
	// (a follower is not a replication source), and generation-checked
	// reads gate on the replicated primary generation this hook reports
	// instead of the local engine counter. internal/repl's Follower
	// implements it.
	Follower FollowerState
	// Logf receives operational log lines. Default: discard.
	Logf func(format string, args ...any)
}

// FollowerState is the replication view a follower-mode server consults on
// every generation-checked read and when reporting /statsz and /healthz.
type FollowerState interface {
	// ReplicatedGeneration returns the primary generation the local state
	// corresponds to, and false while a delta is mid-apply (the state is
	// between generations and must not serve generation-checked reads).
	ReplicatedGeneration() (uint64, bool)
	// Stats reports replication progress.
	Stats() wire.FollowerStats
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.PlanCacheSize == 0 {
		c.PlanCacheSize = 256
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// qos extracts the live-reloadable slice of the configuration.
func (c Config) qos() QoSConfig {
	return QoSConfig{
		MaxConcurrent:      c.MaxConcurrent,
		BatchMaxConcurrent: c.BatchMaxConcurrent,
		ShedMargin:         c.ShedMargin,
	}.withDefaults()
}

// Server is the HTTP front end of one mosaic.DB.
type Server struct {
	cfg   Config
	db    *mosaic.DB
	stats *stats
	adm   *admission
	plans *core.PlanCache // nil when disabled
	mux   *http.ServeMux

	qosMu      sync.Mutex
	qosCur     QoSConfig
	shedMargin atomic64f

	stopOnce sync.Once
	stopSnap chan struct{}
	snapWG   sync.WaitGroup
	snapMu   sync.Mutex // serializes SnapshotNow against the background loop

	restored bool // a boot snapshot was loaded
}

// atomic64f is a float64 stored in a uint64 atomic (the shed margin is read
// on every request and swapped by ApplyQoS).
type atomic64f struct{ bits atomic.Uint64 }

func (a *atomic64f) store(f float64) { a.bits.Store(math.Float64bits(f)) }
func (a *atomic64f) load() float64   { return math.Float64frombits(a.bits.Load()) }

// Restored reports whether New loaded an existing snapshot on boot. Callers
// that seed a fresh instance (e.g. mosaic-serve's positional init scripts)
// should skip seeding when true — the snapshot already contains it.
func (s *Server) Restored() bool { return s.restored }

// New builds a Server, restoring cfg.SnapshotPath first when it exists, and
// starts the background snapshot loop when persistence is configured.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DB == nil {
		return nil, fmt.Errorf("server: Config.DB is required")
	}
	qos := cfg.qos()
	s := &Server{
		cfg:      cfg,
		db:       cfg.DB,
		stats:    newStats(),
		adm:      newAdmission(qos),
		mux:      http.NewServeMux(),
		qosCur:   qos,
		stopSnap: make(chan struct{}),
	}
	s.shedMargin.store(qos.ShedMargin)
	if cfg.PlanCacheSize > 0 {
		s.plans = core.NewPlanCache(cfg.PlanCacheSize)
	}
	if cfg.SnapshotPath != "" {
		if _, err := os.Stat(cfg.SnapshotPath); err == nil {
			if err := s.db.LoadSnapshot(cfg.SnapshotPath); err != nil {
				return nil, fmt.Errorf("server: boot restore: %w", err)
			}
			s.restored = true
			cfg.Logf("restored snapshot %s", cfg.SnapshotPath)
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("server: snapshot path: %w", err)
		}
		s.snapWG.Add(1)
		go s.snapshotLoop()
	}
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/partial", s.handlePartial)
	s.mux.HandleFunc("/v1/exec", s.handleExec)
	s.mux.HandleFunc("/v1/explain", s.handleExplain)
	s.mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/v1/snapshot/delta", s.handleSnapshotDelta)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/statsz", s.handleStats)
	return s, nil
}

// fleetGen returns the generation that generation-checked reads gate on: the
// replicated primary generation in follower mode (ok=false while a delta is
// mid-apply), the local engine generation otherwise.
func (s *Server) fleetGen() (uint64, bool) {
	if s.cfg.Follower != nil {
		return s.cfg.Follower.ReplicatedGeneration()
	}
	return s.db.Engine().Generation(), true
}

// Handler returns the root HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ApplyQoS swaps the admission limits and shed threshold at runtime without
// dropping in-flight requests: work already admitted runs to completion, a
// raised limit wakes waiters immediately, a lowered one only throttles new
// admissions. mosaic-serve calls this on SIGHUP.
func (s *Server) ApplyQoS(q QoSConfig) {
	q = q.withDefaults()
	s.qosMu.Lock()
	s.qosCur = q
	s.qosMu.Unlock()
	s.shedMargin.store(q.ShedMargin)
	s.adm.setLimits(q)
	s.cfg.Logf("qos: max_concurrent=%d batch_max_concurrent=%d shed_margin=%g",
		q.MaxConcurrent, q.BatchMaxConcurrent, q.ShedMargin)
}

// QoS returns the currently effective admission configuration.
func (s *Server) QoS() QoSConfig {
	s.qosMu.Lock()
	defer s.qosMu.Unlock()
	return s.qosCur
}

// Close stops the snapshot loop and writes a final snapshot (when
// persistence is configured).
func (s *Server) Close() error {
	var err error
	s.stopOnce.Do(func() {
		close(s.stopSnap)
		s.snapWG.Wait()
		if s.cfg.SnapshotPath != "" {
			err = s.SnapshotNow()
		}
	})
	return err
}

// SnapshotNow writes one atomic snapshot immediately.
func (s *Server) SnapshotNow() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if err := s.db.SaveSnapshot(s.cfg.SnapshotPath); err != nil {
		return err
	}
	s.stats.snapshots.Add(1)
	s.stats.lastSnapshotUnix.Store(time.Now().Unix())
	if fi, err := os.Stat(s.cfg.SnapshotPath); err == nil {
		s.stats.lastSnapshotSize.Store(fi.Size())
	}
	return nil
}

func (s *Server) snapshotLoop() {
	defer s.snapWG.Done()
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := s.SnapshotNow(); err != nil {
				s.cfg.Logf("snapshot: %v", err)
			}
		case <-s.stopSnap:
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, wire.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSecs derives the Retry-After hint from the class's latency
// estimate: roughly one expected request duration, at least one second.
func (s *Server) retryAfterSecs(cl class) int {
	secs := int(math.Ceil(s.stats.classes[cl].estimate().Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// writeUnavailable answers 503 with a Retry-After hint — the contract for
// both shed (deadline unmeetable) and rejected (no slot) outcomes.
func (s *Server) writeUnavailable(w http.ResponseWriter, cl class, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs(cl)))
	writeError(w, http.StatusServiceUnavailable, format, args...)
}

// run executes fn for priority class cl under the admission controller and
// the per-request deadline (RequestTimeout intersected with any propagated
// X-Mosaic-Deadline-Ms). Outcomes:
//
//	503 + Retry-After — shed before any work: the budget is already spent,
//	                    or the class's EWMA latency estimate says the
//	                    deadline cannot be met;
//	503 + Retry-After — no slot freed within the deadline;
//	504               — admitted but the deadline expired mid-execution; the
//	                    statement is cancelled server-side (the engine
//	                    unwinds at its next checkpoint and the slot frees).
//
// fn receives the request context and must pass it into the engine.
func (s *Server) run(w http.ResponseWriter, r *http.Request, cl class, fn func(ctx context.Context) (any, int)) {
	timeout := s.cfg.RequestTimeout
	budget, ok, err := deadlineFromHeader(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if ok {
		if budget <= 0 {
			s.stats.recordShed(cl)
			s.writeUnavailable(w, cl, "deadline already expired (budget %s); shed before execution", budget)
			return
		}
		if budget < timeout {
			timeout = budget
		}
	}
	// Estimate-based shedding: admitting work whose deadline the recent
	// latency EWMA says cannot be met only burns CPU toward a guaranteed
	// 504 — refuse it up front instead, with a Retry-After hint.
	if margin := s.shedMargin.load(); margin > 0 {
		if est := s.stats.classes[cl].estimate(); est > 0 && time.Duration(float64(est)*margin) > timeout {
			s.stats.recordShed(cl)
			s.writeUnavailable(w, cl, "%s budget %s below the estimated latency %s; shed before execution",
				cl, timeout.Round(time.Millisecond), est.Round(time.Millisecond))
			return
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	if !s.adm.acquire(ctx, cl) {
		s.stats.recordRejected(cl)
		s.writeUnavailable(w, cl, "server overloaded: no %s slot within %s", cl, timeout)
		return
	}
	s.stats.classes[cl].admitted.Add(1)
	s.stats.inflight.Add(1)
	start := time.Now()
	type outcome struct {
		body   any
		status int
	}
	done := make(chan outcome, 1)
	go func() {
		defer s.adm.release(cl)
		defer s.stats.inflight.Add(-1)
		body, status := fn(ctx)
		done <- outcome{body, status}
	}()
	select {
	case out := <-done:
		s.stats.classes[cl].observe(time.Since(start))
		if out.status >= 400 {
			if msg, ok := out.body.(string); ok {
				writeError(w, out.status, "%s", msg)
				return
			}
		}
		writeJSON(w, out.status, out.body)
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			// The class estimate must reflect expiries too, or a saturated
			// class keeps a rosy EWMA and the shedder never engages. Client
			// cancellations must NOT feed it: a cancel storm of fast aborts
			// would drag the EWMA down and disarm the shedder exactly when
			// real completions are slow.
			s.stats.classes[cl].observe(time.Since(start))
			s.stats.recordTimeout(cl)
			writeError(w, http.StatusGatewayTimeout, "request exceeded %s (the statement was cancelled server-side)", timeout)
			return
		}
		// Client went away: nobody reads the response; the engine-side
		// unwinding records the cancellation (recordQuery/recordCancelled).
		writeError(w, http.StatusServiceUnavailable, "client cancelled")
	}
}

// decodeBody decodes a JSON request body under the MaxBodyBytes cap,
// answering 413 for oversized bodies and 400 for malformed ones. It reports
// whether decoding succeeded; on false the response has been written.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, into any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(into); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", mbe.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// classForVisibility derives the default priority class of a query: OPEN
// queries train and sample generative models — batch; CLOSED and SEMI-OPEN
// answer from stored samples — interactive.
func classForVisibility(vis sql.Visibility) class {
	if vis == sql.VisibilityOpen {
		return classBatch
	}
	return classInteractive
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req wire.QueryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// Plan-cache lookup before parsing: a hit skips parse + plan entirely
	// (the PreparedQuery re-resolves itself if DDL/DML moved the generation
	// counter, so hits are never stale).
	eng := s.db.Engine()
	var sel *sql.Select
	var pq *core.PreparedQuery
	if s.plans != nil {
		sel, pq, _ = s.plans.Lookup(eng, req.Query)
	}
	if sel == nil {
		parsed, err := sql.ParseQuery(req.Query)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		sel = parsed
		if s.plans != nil {
			pq = s.plans.Store(eng, req.Query, sel)
		}
	}
	params, err := wire.DecodeValues(req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	bound, err := sql.BindParams(sel, params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	vis := bound.Visibility
	cl, err := classFromHeader(r, classForVisibility(vis))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.run(w, r, cl, func(ctx context.Context) (any, int) {
		// Generation-checked reads bracket execution: refuse before starting
		// when the serving state is not at the requested generation, and
		// refuse the computed answer when the generation moved (or a follower
		// delta was mid-apply) underneath it. Any query that could have
		// observed a different or intermediate state fails one of the two
		// checks — the gate that makes replica answers bit-identical to the
		// primary's at the same generation.
		if req.CheckGeneration {
			if g, ok := s.fleetGen(); !ok || g != req.Generation {
				return fmt.Sprintf("serving generation %d, coordinator expected %d: state diverged from the fleet", g, req.Generation), http.StatusConflict
			}
			// Re-capture the engine AFTER the generation check: a follower
			// re-bootstrap (Restore) swaps the engine pointer, and executing
			// against the pre-swap engine would pass both generation checks
			// while reading outdated state. Captured after g1, any later swap
			// moves the generation and the post-execution check refuses.
			if cur := s.db.Engine(); cur != eng {
				eng, pq = cur, nil
			}
		}
		start := time.Now()
		// Query the engine with the already-parsed statement (db.Query would
		// re-parse the string); through the prepared plan when cached.
		var res *exec.Result
		var qerr error
		if pq != nil {
			res, qerr = eng.QueryPrepared(ctx, pq, bound)
		} else {
			res, qerr = eng.QueryContext(ctx, bound)
		}
		s.stats.recordQuery(vis, time.Since(start), qerr)
		if qerr != nil {
			return qerr.Error(), http.StatusUnprocessableEntity
		}
		if req.CheckGeneration {
			if g, ok := s.fleetGen(); !ok || g != req.Generation {
				return fmt.Sprintf("generation moved to %d during a generation-%d read: answer discarded", g, req.Generation), http.StatusConflict
			}
		}
		return wire.EncodeResult(res), http.StatusOK
	})
}

// handlePartial serves one shard's half of a fleet scatter: it executes the
// per-shard partial aggregate plan over this process's full data copy and
// returns the serialized partial states. With check_generation set, the
// request carries the coordinator's view of the fleet's DDL/DML generation;
// a mismatch answers 409 Conflict — this shard's data diverged from the
// fleet, and serving a partial from it could silently corrupt a merged
// answer. The generation is read under the engine lock the partial executes
// under, so the check cannot race a concurrent mutation.
func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req wire.PartialRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Shards < 1 || req.Shard < 0 || req.Shard >= req.Shards {
		writeError(w, http.StatusBadRequest, "shard %d of %d out of range", req.Shard, req.Shards)
		return
	}
	sel, err := sql.ParseQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	params, err := wire.DecodeValues(req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	bound, err := sql.BindParams(sel, params)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Partials serve only CLOSED/SEMI-OPEN aggregates (OPEN is unhandled),
	// so the default class is interactive, like the equivalent /v1/query.
	cl, err := classFromHeader(r, classInteractive)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.run(w, r, cl, func(ctx context.Context) (any, int) {
		// In follower mode the local engine counter is meaningless (replay
		// renumbers it); generation-checked partials bracket execution on the
		// replicated generation instead, and the engine is captured after the
		// first check so a concurrent re-bootstrap cannot slip an outdated
		// engine past both checks.
		if req.CheckGeneration && s.cfg.Follower != nil {
			if g, ok := s.fleetGen(); !ok || g != req.Generation {
				return fmt.Sprintf("follower at generation %d, coordinator expected %d: replica state diverged from the fleet", g, req.Generation), http.StatusConflict
			}
		}
		eng := s.db.Engine()
		p, gen, handled, perr := eng.PartialContext(ctx, bound, req.Shard, req.Shards)
		if s.cfg.Follower != nil {
			g, ok := s.fleetGen()
			if req.CheckGeneration && (!ok || g != req.Generation) {
				return fmt.Sprintf("follower generation moved to %d during a generation-%d partial: answer discarded", g, req.Generation), http.StatusConflict
			}
			gen = g // report the replicated generation, not the local counter
		}
		if req.CheckGeneration && gen != req.Generation {
			return fmt.Sprintf("shard at generation %d, coordinator expected %d: shard state diverged from the fleet", gen, req.Generation), http.StatusConflict
		}
		if perr != nil {
			s.stats.recordCancelled(perr)
			return perr.Error(), http.StatusUnprocessableEntity
		}
		if !handled {
			return &wire.PartialResponse{Handled: false, Generation: gen}, http.StatusOK
		}
		s.stats.partials.Add(1)
		resp, eerr := wire.EncodePartial(p, gen)
		if eerr != nil {
			return eerr.Error(), http.StatusInternalServerError
		}
		return resp, http.StatusOK
	})
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.cfg.Follower != nil {
		writeError(w, http.StatusForbidden,
			"read-only follower replicating from %s: DDL/DML is not accepted here — write to the primary", s.cfg.Follower.Stats().Primary)
		return
	}
	var req wire.ExecRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// Scripts can carry arbitrary DDL/DML and heavy SELECTs: batch class
	// unless the client says otherwise.
	cl, err := classFromHeader(r, classBatch)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.run(w, r, cl, func(ctx context.Context) (any, int) {
		s.stats.execs.Add(1)
		results, err := s.db.RunContext(ctx, req.Script)
		if err != nil {
			s.stats.recordCancelled(err)
			return err.Error(), http.StatusUnprocessableEntity
		}
		out := wire.ExecResponse{Results: make([]*wire.Result, len(results))}
		for i, res := range results {
			out.Results[i] = wire.EncodeResult(res)
		}
		// The post-script generation is the fleet coordinator's handshake:
		// every shard must land on the same counter after a fanned-out exec.
		out.Generation = s.db.Engine().Generation()
		return out, http.StatusOK
	})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing ?q=SELECT ...")
		return
	}
	sel, err := sql.ParseQuery(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cl, err := classFromHeader(r, classInteractive)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.run(w, r, cl, func(ctx context.Context) (any, int) {
		_ = ctx // EXPLAIN plans without executing; nothing long-running to cancel
		s.stats.explains.Add(1)
		res, err := s.db.Engine().Explain(sel)
		if err != nil {
			return err.Error(), http.StatusUnprocessableEntity
		}
		return wire.EncodeResult(res), http.StatusOK
	})
}

// handleSnapshot serves GET /v1/snapshot: the full dump script plus the
// generation it captures, for follower bootstrap. It bypasses admission —
// replication is control-plane traffic, and shedding a bootstrap during
// overload would wedge the replica fleet exactly when read capacity is
// needed most.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.cfg.Follower != nil {
		writeError(w, http.StatusForbidden, "followers are not replication sources: snapshot from the primary")
		return
	}
	script, gen, err := s.db.Engine().DumpWithGeneration()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, wire.SnapshotResponse{Script: script, Generation: gen})
}

// handleSnapshotDelta serves GET /v1/snapshot/delta?from=G: the statement
// suffix advancing generation G to the current one. 410 Gone means G fell
// out of the bounded statement log (or the range crosses a non-replayable
// mutation) and the follower must re-bootstrap from /v1/snapshot.
func (s *Server) handleSnapshotDelta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.cfg.Follower != nil {
		writeError(w, http.StatusForbidden, "followers are not replication sources: snapshot from the primary")
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "missing or malformed ?from=GENERATION: %v", err)
		return
	}
	stmts, cur, err := s.db.Engine().DeltaScript(from)
	if err != nil {
		if errors.Is(err, core.ErrLogTruncated) {
			writeError(w, http.StatusGone,
				"generation %d is outside the statement log (current %d): re-bootstrap from /v1/snapshot", from, cur)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := wire.DeltaResponse{From: from, Generation: cur}
	if len(stmts) > 0 {
		out.Stmts = make([]wire.DeltaStmt, len(stmts))
		for i, st := range stmts {
			out.Stmts[i] = wire.DeltaStmt{Src: st.Src, Failed: st.Failed}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	out := wire.HealthResponse{
		Status:     "ok",
		UptimeSecs: time.Since(s.stats.started).Seconds(),
	}
	if s.cfg.Follower != nil {
		fs := s.cfg.Follower.Stats()
		out.Follower = &fs
		if fs.Stale {
			out.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	out := s.stats.snapshot(s.adm, s.plans)
	out.Generation = s.db.Engine().Generation()
	if s.cfg.Follower != nil {
		// Report the replicated primary generation — the value the
		// coordinator's replica poller gates read routing on — not the local
		// replay counter.
		fs := s.cfg.Follower.Stats()
		out.Follower = &fs
		out.Generation = fs.Generation
	}
	// Per-shard scan counters live on the engine (the server has no view of
	// scatter-gather execution); merge them in when sharding is on.
	if eng := s.db.Engine(); eng.Shards() > 1 {
		out.Sharding = &wire.ShardStats{
			Shards: eng.Shards(),
			Scans:  eng.ShardScans(),
			Rows:   eng.ShardRows(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

package server

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"mosaic/client"
)

// TestServeKillRestartSmoke is the end-to-end serving story with real
// processes: build cmd/mosaic-serve, boot it on a scratch snapshot, load a
// world and answer a CLOSED, SEMI-OPEN, and OPEN query through the client,
// SIGTERM the process (which writes a final snapshot), restart from that
// snapshot, and require byte-identical answers.
func TestServeKillRestartSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots real processes")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "mosaic-serve")
	build := exec.Command("go", "build", "-o", bin, "mosaic/cmd/mosaic-serve")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	init := filepath.Join(dir, "world.sql")
	if err := os.WriteFile(init, []byte(worldScript), 0o644); err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(dir, "state.sql")
	addr := freeAddr(t)
	// The init script seeds the first boot; the restart must skip it (the
	// snapshot already contains the world — replaying would fail on the
	// CREATEs) even though the command line is identical.
	args := []string{
		"-addr", addr,
		"-snapshot", snap,
		"-snapshot-interval", "10s", // rely on the shutdown snapshot, not the loop
		"-seed", "3",
		"-open-samples", "3",
		"-swg-epochs", "6",
		init,
	}

	proc := startServe(t, bin, args)
	c := client.New("http://" + addr)
	waitHealthy(t, c)
	before := map[string]string{}
	for _, q := range worldQueries {
		res, err := c.Query(q)
		if err != nil {
			t.Fatalf("first run %q: %v", q, err)
		}
		before[q] = render(res)
	}

	// Kill. SIGTERM triggers the final snapshot before exit.
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := waitExit(proc, 15*time.Second); err != nil {
		t.Fatalf("mosaic-serve did not exit cleanly: %v", err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("no snapshot after shutdown: %v", err)
	}

	// Restart from the snapshot; catalog, weights, and answers must survive.
	proc2 := startServe(t, bin, args)
	defer func() {
		_ = proc2.Process.Signal(syscall.SIGTERM)
		_ = waitExit(proc2, 15*time.Second)
	}()
	waitHealthy(t, c)
	for _, q := range worldQueries {
		res, err := c.Query(q)
		if err != nil {
			t.Fatalf("after restart %q: %v", q, err)
		}
		if got := render(res); got != before[q] {
			t.Errorf("%q diverged across kill+restart:\n got %q\nwant %q", q, got, before[q])
		}
	}
	// The restarted server serves the restored catalog, not an empty one.
	if n, err := c.Scalar("SELECT COUNT(*) FROM Truth"); err != nil || n != 2 {
		t.Errorf("restored Truth rows = %g, %v; want 2", n, err)
	}
}

func startServe(t *testing.T, bin string, args []string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill() })
	return cmd
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func waitHealthy(t *testing.T, c *client.Client) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := c.Health(); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("server never became healthy")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func waitExit(cmd *exec.Cmd, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		return fmt.Errorf("timeout after %s", timeout)
	}
}

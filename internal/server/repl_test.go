// Replication-surface tests: the snapshot endpoints a follower bootstraps
// and catches up from, and the follower-mode serving contract (read-only,
// generation-gated reads against the replicated counter).
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mosaic"
	"mosaic/client"
	"mosaic/internal/wire"
)

// TestSnapshotEndpointBootstrapsIdenticalState: GET /v1/snapshot returns a
// script + generation pair; restoring the script into a fresh same-Options
// DB answers byte-identically, and the generation matches /statsz.
func TestSnapshotEndpointBootstrapsIdenticalState(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if err := c.Exec(worldScript); err != nil {
		t.Fatal(err)
	}
	snap, err := c.SnapshotContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != st.Generation {
		t.Errorf("snapshot generation %d != statsz generation %d", snap.Generation, st.Generation)
	}
	replica := mosaic.Open(testOpts())
	if err := replica.Restore(snap.Script); err != nil {
		t.Fatalf("restore snapshot: %v", err)
	}
	for _, q := range worldQueries {
		want, err := c.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := replica.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if render(got) != render(want) {
			t.Errorf("%s: bootstrapped replica diverged from primary", q)
		}
	}
}

// TestSnapshotDeltaTruncationIs410 is the satellite regression: a follower
// asking for a generation the bounded log no longer retains gets 410 Gone
// (the re-bootstrap signal), never a wrong or empty suffix — while a range
// inside the window serves the exact statement suffix.
func TestSnapshotDeltaTruncationIs410(t *testing.T) {
	opts := testOpts()
	opts.StmtLogSize = 3
	_, c := newTestServer(t, Config{DB: mosaic.Open(opts)})
	if err := c.Exec("CREATE TABLE T (v INT)"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	base := st.Generation
	for i := 0; i < 6; i++ {
		if err := c.Exec(fmt.Sprintf("INSERT INTO T VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	_, err = c.SnapshotDeltaContext(context.Background(), base)
	var re *client.RemoteError
	if !errors.As(err, &re) || re.StatusCode != http.StatusGone {
		t.Fatalf("delta past the window: err = %v, want 410 Gone", err)
	}
	delta, err := c.SnapshotDeltaContext(context.Background(), base+3)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Stmts) != 3 || delta.Generation != base+6 {
		t.Errorf("in-window delta = %d stmts to gen %d, want 3 to %d", len(delta.Stmts), delta.Generation, base+6)
	}
	for i, s := range delta.Stmts {
		want := fmt.Sprintf("INSERT INTO T VALUES (%d)", i+3)
		if s.Src != want || s.Failed {
			t.Errorf("delta[%d] = %+v, want Src %q", i, s, want)
		}
	}
}

// TestSnapshotNowRacesExecAndSnapshotFetch hammers one server with
// concurrent /v1/exec mutations, persistence snapshots (SnapshotNow), and
// replication snapshot fetches under -race: the engine write lock plus the
// dump read lock must keep every observed (script, generation) pair
// consistent — a fetched script restored elsewhere must replay cleanly.
func TestSnapshotNowRacesExecAndSnapshotFetch(t *testing.T) {
	dir := t.TempDir()
	s, c := newTestServer(t, Config{
		SnapshotPath:     filepath.Join(dir, "state.sql"),
		SnapshotInterval: time.Hour, // only explicit SnapshotNow calls
	})
	if err := c.Exec("CREATE TABLE R (v INT)"); err != nil {
		t.Fatal(err)
	}
	const rounds = 25
	var wg sync.WaitGroup
	errs := make([]error, 3)
	wg.Add(3)
	go func() { // writer
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := c.Exec(fmt.Sprintf("INSERT INTO R VALUES (%d)", i)); err != nil {
				errs[0] = err
				return
			}
		}
	}()
	go func() { // persistence snapshots
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := s.SnapshotNow(); err != nil {
				errs[1] = err
				return
			}
		}
	}()
	go func() { // replication bootstraps
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			snap, err := c.SnapshotContext(context.Background())
			if err != nil {
				errs[2] = err
				return
			}
			replica := mosaic.Open(testOpts())
			if err := replica.Restore(snap.Script); err != nil {
				errs[2] = fmt.Errorf("snapshot at generation %d does not replay: %v", snap.Generation, err)
				return
			}
		}
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}

// stubFollower is a canned server.FollowerState for serving-layer tests.
type stubFollower struct {
	gen   uint64
	ok    bool
	stats wire.FollowerStats
}

func (f *stubFollower) ReplicatedGeneration() (uint64, bool) { return f.gen, f.ok }
func (f *stubFollower) Stats() wire.FollowerStats            { return f.stats }

// TestFollowerModeRefusesWritesAndSnapshotServing: a follower-mode server
// answers 403 to /v1/exec (read-only) and to the snapshot endpoints (not a
// replication source), reports the replicated generation in /statsz, and
// refuses generation-checked reads at the wrong generation with 409.
func TestFollowerModeRefusesWritesAndSnapshotServing(t *testing.T) {
	db := mosaic.Open(testOpts())
	if err := db.Exec(worldScript); err != nil {
		t.Fatal(err)
	}
	fs := &stubFollower{gen: 42, ok: true, stats: wire.FollowerStats{Primary: "http://primary:7171", Generation: 42}}
	_, c := newTestServer(t, Config{DB: db, Follower: fs})

	var re *client.RemoteError
	if err := c.Exec("CREATE TABLE W (v INT)"); !errors.As(err, &re) || re.StatusCode != http.StatusForbidden {
		t.Errorf("exec on a follower: err = %v, want 403", err)
	}
	if _, err := c.SnapshotContext(context.Background()); !errors.As(err, &re) || re.StatusCode != http.StatusForbidden {
		t.Errorf("snapshot from a follower: err = %v, want 403", err)
	}
	if _, err := c.SnapshotDeltaContext(context.Background(), 0); !errors.As(err, &re) || re.StatusCode != http.StatusForbidden {
		t.Errorf("delta from a follower: err = %v, want 403", err)
	}

	// Plain reads still serve.
	if _, err := c.Query("SELECT CLOSED COUNT(*) FROM World"); err != nil {
		t.Errorf("read on a follower: %v", err)
	}
	// /statsz reports the REPLICATED generation, not the local counter.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Generation != 42 || st.Follower == nil || st.Follower.Primary != "http://primary:7171" {
		t.Errorf("follower statsz = gen %d, follower %+v; want replicated gen 42", st.Generation, st.Follower)
	}

	// Generation-checked reads: right generation answers, wrong answers 409,
	// and mid-apply (not-ok) answers 409 regardless.
	q := &wire.QueryRequest{Query: "SELECT CLOSED COUNT(*) FROM World", Generation: 42, CheckGeneration: true}
	if _, err := c.QueryRawContext(context.Background(), q); err != nil {
		t.Errorf("generation-checked read at the replicated generation: %v", err)
	}
	q.Generation = 41
	if _, err := c.QueryRawContext(context.Background(), q); !errors.As(err, &re) || re.StatusCode != http.StatusConflict {
		t.Errorf("read at a stale generation: err = %v, want 409", err)
	}
	fs.ok = false
	q.Generation = 42
	if _, err := c.QueryRawContext(context.Background(), q); !errors.As(err, &re) || re.StatusCode != http.StatusConflict {
		t.Errorf("read while a delta is mid-apply: err = %v, want 409", err)
	}
}

// TestFollowerHealthReportsStaleness: /healthz on a follower carries the
// replication stats and flips to degraded when the follower is stale.
func TestFollowerHealthReportsStaleness(t *testing.T) {
	fs := &stubFollower{gen: 7, ok: true, stats: wire.FollowerStats{Primary: "http://p", Generation: 7}}
	_, c := newTestServer(t, Config{Follower: fs})
	h, err := c.HealthContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Degraded() || h.Follower == nil || h.Follower.Generation != 7 {
		t.Errorf("healthy follower health = %+v", h)
	}
	fs.stats.Stale = true
	h, err = c.HealthContext(context.Background())
	if err != nil {
		t.Fatalf("a stale follower must still answer health: %v", err)
	}
	if !h.Degraded() {
		t.Errorf("stale follower not reported degraded: %+v", h)
	}
}

package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// class is a request priority class. Interactive requests (cheap CLOSED /
// SEMI-OPEN lookups by default) must never starve behind batch work (OPEN
// model-training queries, bulk exec scripts): the admission controller caps
// batch concurrency below the total slot count and hands freed slots to
// interactive waiters first.
type class int

const (
	classInteractive class = iota
	classBatch
	numClasses
)

func (c class) String() string {
	if c == classBatch {
		return "batch"
	}
	return "interactive"
}

// priorityHeader carries an explicit class; absent, the server derives one
// (queries: from visibility — OPEN is batch, everything else interactive;
// exec scripts default to batch; explain to interactive).
const priorityHeader = "X-Mosaic-Priority"

// deadlineHeader carries the client's remaining budget in milliseconds. The
// server intersects it with RequestTimeout and sheds the request up front
// when the budget is already spent or provably insufficient (per-class EWMA
// estimate) — a 503 with Retry-After before any engine work, instead of
// burning CPU toward a guaranteed 504.
const deadlineHeader = "X-Mosaic-Deadline-Ms"

// classFromHeader resolves the explicit priority header, falling back to def.
func classFromHeader(r *http.Request, def class) (class, error) {
	switch strings.ToLower(r.Header.Get(priorityHeader)) {
	case "":
		return def, nil
	case "interactive":
		return classInteractive, nil
	case "batch":
		return classBatch, nil
	default:
		return def, fmt.Errorf("bad %s %q: want interactive or batch", priorityHeader, r.Header.Get(priorityHeader))
	}
}

// deadlineFromHeader parses the propagated client deadline. ok reports
// whether the header was present; a present-but-unparseable header is an
// error. Zero or negative budgets are valid (and doomed — the caller sheds).
func deadlineFromHeader(r *http.Request) (time.Duration, bool, error) {
	raw := r.Header.Get(deadlineHeader)
	if raw == "" {
		return 0, false, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad %s %q: want integer milliseconds", deadlineHeader, raw)
	}
	return time.Duration(ms) * time.Millisecond, true, nil
}

// QoSConfig is the live-reloadable slice of the server configuration: the
// admission limits and the shed threshold. ApplyQoS swaps it atomically —
// in-flight requests are never dropped (a shrunk limit only throttles new
// admissions; work already admitted runs to completion).
type QoSConfig struct {
	// MaxConcurrent is the total execution slot count.
	MaxConcurrent int `json:"max_concurrent"`
	// BatchMaxConcurrent caps batch-class slots. It is clamped below
	// MaxConcurrent so batch work can never occupy every slot; 0 means
	// max(1, MaxConcurrent/2).
	BatchMaxConcurrent int `json:"batch_max_concurrent"`
	// ShedMargin scales the per-class EWMA latency estimate when deciding
	// whether a deadline is worth admitting: shed when estimate×margin
	// exceeds the remaining budget. 0 means 1.0; negative disables
	// estimate-based shedding (already-expired deadlines still shed).
	ShedMargin float64 `json:"shed_margin"`
}

func (q QoSConfig) withDefaults() QoSConfig {
	if q.MaxConcurrent <= 0 {
		q.MaxConcurrent = 64
	}
	if q.BatchMaxConcurrent <= 0 {
		q.BatchMaxConcurrent = q.MaxConcurrent / 2
	}
	if q.BatchMaxConcurrent < 1 {
		q.BatchMaxConcurrent = 1
	}
	// Batch may never own every slot: interactive work must always have
	// headroom. The sole exception is MaxConcurrent == 1, where there is
	// only one slot to share.
	if q.BatchMaxConcurrent >= q.MaxConcurrent && q.MaxConcurrent > 1 {
		q.BatchMaxConcurrent = q.MaxConcurrent - 1
	}
	if q.ShedMargin == 0 {
		q.ShedMargin = 1.0
	}
	return q
}

// admission is a priority-aware two-class admission controller. Unlike a
// channel semaphore its limits are mutable at runtime (SIGHUP reload), and
// freed slots go to interactive waiters before batch waiters — the priority
// inversion a single shared gate cannot avoid.
type admission struct {
	mu       sync.Mutex
	total    int
	limit    [numClasses]int
	inflight [numClasses]int
	waiting  [numClasses][]chan struct{}
}

func newAdmission(q QoSConfig) *admission {
	a := &admission{}
	a.setLimits(q)
	return a
}

// setLimits swaps the concurrency limits and wakes any waiters the new
// limits can now admit. In-flight counts above a shrunk limit simply drain
// naturally; nothing is interrupted.
func (a *admission) setLimits(q QoSConfig) {
	q = q.withDefaults()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.total = q.MaxConcurrent
	a.limit[classInteractive] = q.MaxConcurrent
	a.limit[classBatch] = q.BatchMaxConcurrent
	a.grantLocked()
}

func (a *admission) canAdmitLocked(cl class) bool {
	return a.inflight[classInteractive]+a.inflight[classBatch] < a.total &&
		a.inflight[cl] < a.limit[cl]
}

// grantLocked hands free slots to waiters, interactive first, in FIFO order
// within a class. The slot transfers under the lock (inflight is incremented
// here, not by the waiter), so a granted waiter that has concurrently timed
// out can detect the grant and release it.
func (a *admission) grantLocked() {
	for {
		var cl class = classInteractive
		if len(a.waiting[cl]) == 0 || !a.canAdmitLocked(cl) {
			cl = classBatch
			if len(a.waiting[cl]) == 0 || !a.canAdmitLocked(cl) {
				return
			}
		}
		ch := a.waiting[cl][0]
		a.waiting[cl] = a.waiting[cl][1:]
		a.inflight[cl]++
		ch <- struct{}{} // buffered: never blocks
	}
}

// acquire reserves a slot for cl, waiting until ctx expires. It reports
// whether the slot was granted; the caller must release(cl) on true.
func (a *admission) acquire(ctx context.Context, cl class) bool {
	a.mu.Lock()
	if a.canAdmitLocked(cl) {
		a.inflight[cl]++
		a.mu.Unlock()
		return true
	}
	ch := make(chan struct{}, 1)
	a.waiting[cl] = append(a.waiting[cl], ch)
	a.mu.Unlock()
	select {
	case <-ch:
		return true
	case <-ctx.Done():
		a.mu.Lock()
		removed := false
		for i, w := range a.waiting[cl] {
			if w == ch {
				a.waiting[cl] = append(a.waiting[cl][:i], a.waiting[cl][i+1:]...)
				removed = true
				break
			}
		}
		a.mu.Unlock()
		if !removed {
			// A grant raced the cancellation: the slot is ours (the granter
			// already incremented inflight and buffered the signal under the
			// lock) — hand it back.
			<-ch
			a.release(cl)
		}
		return false
	}
}

// release frees a slot previously acquired for cl and re-grants.
func (a *admission) release(cl class) {
	a.mu.Lock()
	a.inflight[cl]--
	a.grantLocked()
	a.mu.Unlock()
}

// queueDepth reports how many requests of cl are waiting for a slot.
func (a *admission) queueDepth(cl class) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiting[cl])
}

// inflightCount reports how many requests of cl hold a slot.
func (a *admission) inflightCount(cl class) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight[cl]
}

package server

import (
	"strings"
	"testing"
	"time"

	"mosaic"
	"mosaic/client"
	"mosaic/internal/value"
	"mosaic/internal/wire"
)

// slowOpts makes M-SWG training take far longer than the request timeout.
func slowOpts() *mosaic.Options {
	return &mosaic.Options{
		Seed:        3,
		OpenSamples: 3,
		SWG: mosaic.SWGConfig{
			Hidden: []int{64, 64}, Latent: 2, Epochs: 1000,
			BatchSize: 256, Projections: 64, StepsPerEpoch: 20,
		},
	}
}

// TestTimeoutCancelsWorkAndFreesSlot is the regression test for the old 504
// behavior ("the statement keeps running server-side"): a timed-out OPEN
// query must actually stop server-side — the admission slot frees, the
// in-flight gauge drops to zero (the engine goroutine unwound instead of
// burning CPU to completion), and /statsz counts the cancellation.
func TestTimeoutCancelsWorkAndFreesSlot(t *testing.T) {
	db := mosaic.Open(slowOpts())
	if err := db.Exec(worldScript); err != nil {
		t.Fatal(err)
	}
	s, c := newTestServer(t, Config{DB: db, MaxConcurrent: 1, RequestTimeout: 150 * time.Millisecond})

	_, err := c.Query("SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp")
	re, ok := err.(*client.RemoteError)
	if !ok || re.StatusCode != 504 {
		t.Fatalf("slow OPEN query = %v, want 504 RemoteError", err)
	}
	if got := re.Message; !strings.Contains(got, "cancelled") {
		t.Errorf("504 message %q does not say the statement was cancelled", got)
	}

	// The cancelled engine call must unwind promptly: with MaxConcurrent=1,
	// a follow-up query only runs once the slot is back, and the inflight
	// gauge must hit zero without waiting for the training to "finish".
	deadline := time.Now().Add(10 * time.Second)
	for s.stats.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("inflight never dropped to 0: the engine kept running after the 504")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Query("SELECT CLOSED COUNT(*) FROM World"); err != nil {
		t.Fatalf("follow-up query after 504: %v (admission slot not freed?)", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cancelled == 0 {
		t.Error("/statsz cancelled counter did not move")
	}
	if st.Timeouts == 0 {
		t.Error("/statsz timeouts counter did not move")
	}
}

// TestHTTPParamQueryByteIdentical runs one parameterized query through the
// real HTTP path and requires the answer byte-identical to the same query
// with the literal inlined — the wire-level half of the prepared-statement
// guarantee. CI runs this alongside the exec smoke.
func TestHTTPParamQueryByteIdentical(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if err := c.Exec(worldScript); err != nil {
		t.Fatal(err)
	}
	for _, q := range []struct {
		param   string
		literal string
		args    []any
	}{
		{
			"SELECT SEMI-OPEN grp, COUNT(*) FROM World WHERE v > ? GROUP BY grp ORDER BY grp",
			"SELECT SEMI-OPEN grp, COUNT(*) FROM World WHERE v > 0 GROUP BY grp ORDER BY grp",
			[]any{0},
		},
		{
			"SELECT CLOSED COUNT(*) FROM World WHERE grp = ?",
			"SELECT CLOSED COUNT(*) FROM World WHERE grp = 'a'",
			[]any{"a"},
		},
		{
			"SELECT OPEN grp, COUNT(*) FROM World WHERE v >= ? GROUP BY grp ORDER BY grp",
			"SELECT OPEN grp, COUNT(*) FROM World WHERE v >= 0 GROUP BY grp ORDER BY grp",
			[]any{0},
		},
	} {
		want, err := c.Query(q.literal)
		if err != nil {
			t.Fatalf("literal %q: %v", q.literal, err)
		}
		got, err := c.QueryParams(q.param, q.args...)
		if err != nil {
			t.Fatalf("param %q: %v", q.param, err)
		}
		if render(got) != render(want) {
			t.Errorf("param query diverged from literal:\n got %q\nwant %q", render(got), render(want))
		}
		// The prepared-style handle sends the identical request.
		sres, err := c.Prepare(q.param).Query(q.args...)
		if err != nil {
			t.Fatalf("stmt %q: %v", q.param, err)
		}
		if render(sres) != render(want) {
			t.Errorf("client Stmt diverged from literal:\n got %q\nwant %q", render(sres), render(want))
		}
	}
}

// TestParamCountMismatchIs400: binding errors surface as 400s, not engine
// errors.
func TestParamCountMismatchIs400(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if err := c.Exec("CREATE TABLE T (a INT)"); err != nil {
		t.Fatal(err)
	}
	_, err := c.QueryParams("SELECT COUNT(*) FROM T WHERE a > ?") // 1 placeholder, 0 params
	re, ok := err.(*client.RemoteError)
	if !ok || re.StatusCode != 400 {
		t.Fatalf("unbound param = %v, want 400 RemoteError", err)
	}
	_, err = c.QueryParams("SELECT COUNT(*) FROM T", 1, 2)
	re, ok = err.(*client.RemoteError)
	if !ok || re.StatusCode != 400 {
		t.Fatalf("excess params = %v, want 400 RemoteError", err)
	}
}

// TestWireParamRoundTrip pins the tagged-cell param encoding (bit-exact
// floats, big int64s, NULL).
func TestWireParamRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Int(1<<62 + 7),
		value.Float(0.1 + 0.2),
		value.Text("O'Neil"),
		value.Bool(true),
		value.Null(),
	}
	dec, err := wire.DecodeValues(wire.EncodeValues(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if dec[i].Kind() != v.Kind() || (v.Kind() != value.KindNull && !value.Equal(dec[i], v)) {
			t.Errorf("param %d: %v round-tripped to %v", i, v, dec[i])
		}
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mosaic"
	"mosaic/internal/wire"
)

// newRawServer is newTestServer without the client wrapper, for tests that
// need to craft raw HTTP requests (headers, oversized bodies).
func newRawServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = mosaic.Open(testOpts())
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// blockIn occupies one admission slot of cl with a request parked inside fn
// until the returned release func is called. It waits for the slot to be
// held before returning.
func blockIn(t *testing.T, s *Server, cl class) (release func(), done chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	done = make(chan struct{})
	before := s.adm.inflightCount(cl)
	go func() {
		defer close(done)
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/x", nil)
		s.run(rec, req, cl, func(ctx context.Context) (any, int) {
			<-gate
			return "ok", http.StatusOK
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.inflightCount(cl) <= before {
		if time.Now().After(deadline) {
			t.Fatalf("%s request never occupied a slot", cl)
		}
		time.Sleep(time.Millisecond)
	}
	var once sync.Once
	return func() { once.Do(func() { close(gate) }) }, done
}

// TestBatchCannotStarveInteractive is the deterministic half of the overload
// experiment: with every batch slot occupied AND batch work queued, an
// interactive query still completes within its deadline — the batch cap
// leaves interactive headroom by construction.
func TestBatchCannotStarveInteractive(t *testing.T) {
	s, c := newTestServer(t, Config{MaxConcurrent: 2, BatchMaxConcurrent: 1, RequestTimeout: 5 * time.Second})
	if err := c.Exec("CREATE TABLE T (a INT); INSERT INTO T VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}

	// Saturate the batch class: one holder, one waiter.
	release1, done1 := blockIn(t, s, classBatch)
	defer release1()
	waiterDone := make(chan bool, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		waiterDone <- s.adm.acquire(ctx, classBatch)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.queueDepth(classBatch) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second batch request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Interactive work sails through the remaining slot.
	start := time.Now()
	res, err := c.Query("SELECT COUNT(*) FROM T")
	if err != nil {
		t.Fatalf("interactive query under batch saturation: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("interactive query took %s under batch saturation", elapsed)
	}
	if got, _ := res.Rows[0][0].Float64(); got != 2 {
		t.Errorf("interactive answer = %g, want 2", got)
	}

	// Nothing was dropped: releasing the holder admits the queued waiter.
	release1()
	<-done1
	if granted := <-waiterDone; !granted {
		t.Error("queued batch waiter was not granted after the holder released")
	}
	s.adm.release(classBatch)
}

// TestDoomedDeadlineShedsBeforeEngine pins the shed contract: a request whose
// propagated deadline is already spent answers 503 with a Retry-After hint
// and ZERO engine work — no query counter moves.
func TestDoomedDeadlineShedsBeforeEngine(t *testing.T) {
	s, ts := newRawServer(t, Config{})
	body, _ := json.Marshal(wire.QueryRequest{Query: "SELECT COUNT(*) FROM T"})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(deadlineHeader, "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("doomed request answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed 503 lacks a Retry-After hint")
	}
	if got := s.stats.shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	if got := s.stats.classes[classInteractive].shed.Load(); got != 1 {
		t.Errorf("interactive shed counter = %d, want 1", got)
	}
	for vis := range s.stats.queries {
		if n := s.stats.queries[vis].Load(); n != 0 {
			t.Errorf("doomed request reached the engine: queries[%d] = %d", vis, n)
		}
	}
	if got := s.stats.classes[classInteractive].admitted.Load(); got != 0 {
		t.Errorf("doomed request was admitted (%d), want shed before admission", got)
	}
}

// TestEstimateSheddingRefusesUnmeetableDeadlines: once the class EWMA says a
// deadline cannot be met, the request sheds up front; disabling the margin
// via ApplyQoS admits it again.
func TestEstimateSheddingRefusesUnmeetableDeadlines(t *testing.T) {
	s, ts := newRawServer(t, Config{})
	// Prime the interactive estimate at ~10s.
	for i := 0; i < 8; i++ {
		s.stats.classes[classInteractive].observe(10 * time.Second)
	}
	doomed := func() *http.Response {
		body, _ := json.Marshal(wire.QueryRequest{Query: "SELECT COUNT(*) FROM Nowhere"})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(deadlineHeader, "50") // 50ms budget vs ~10s estimate
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := doomed(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unmeetable deadline answered %d, want 503", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Error("estimate shed lacks Retry-After")
	}
	if s.stats.shed.Load() == 0 {
		t.Error("estimate shed not counted")
	}

	// A negative margin disables estimate-based shedding: the same request
	// is admitted (and fails on the missing relation instead — the engine
	// DID see it).
	s.ApplyQoS(QoSConfig{ShedMargin: -1})
	if resp := doomed(); resp.StatusCode == http.StatusServiceUnavailable {
		t.Errorf("margin<0 still shed (status %d)", resp.StatusCode)
	}
}

// TestApplyQoSMidFlightDropsNothing reloads the limits while a request is
// executing and another is queued: the in-flight request completes, the
// queued one is granted by the raised limit — nothing is dropped.
func TestApplyQoSMidFlightDropsNothing(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxConcurrent: 1, RequestTimeout: 5 * time.Second})
	release, done := blockIn(t, s, classInteractive)
	defer release()

	waiterDone := make(chan bool, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		waiterDone <- s.adm.acquire(ctx, classInteractive)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.queueDepth(classInteractive) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Reload mid-flight: the raised limit must admit the waiter immediately,
	// without the in-flight request releasing first.
	s.ApplyQoS(QoSConfig{MaxConcurrent: 4, BatchMaxConcurrent: 2})
	select {
	case granted := <-waiterDone:
		if !granted {
			t.Fatal("queued waiter dropped across the reload")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter not granted after the limit was raised")
	}
	s.adm.release(classInteractive)

	// The request admitted under the old limit completes untouched.
	release()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request did not complete after the reload")
	}
	if got := s.QoS().MaxConcurrent; got != 4 {
		t.Errorf("QoS().MaxConcurrent = %d, want 4", got)
	}

	// Shrinking below the current in-flight count must not panic or drop:
	// admissions throttle, drains proceed.
	s.ApplyQoS(QoSConfig{MaxConcurrent: 1})
	if got := s.QoS().MaxConcurrent; got != 1 {
		t.Errorf("QoS().MaxConcurrent = %d, want 1", got)
	}
}

// TestClientCancelCountsCancelledNotTimeout pins the counter taxonomy: a
// client abandoning /v1/query mid-execution lands in "cancelled", never in
// "timeouts" (which is reserved for server-side deadline expiry).
func TestClientCancelCountsCancelledNotTimeout(t *testing.T) {
	db := mosaic.Open(slowOpts())
	if err := db.Exec(worldScript); err != nil {
		t.Fatal(err)
	}
	s, c := newTestServer(t, Config{DB: db, RequestTimeout: time.Minute})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	if _, err := c.QueryContext(ctx, "SELECT OPEN grp, COUNT(*) FROM World GROUP BY grp"); err == nil {
		t.Fatal("cancelled query should fail")
	}
	// The engine unwinds asynchronously; the cancellation is counted when it
	// does.
	deadline := time.Now().Add(10 * time.Second)
	for s.stats.cancelled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancelled counter never moved")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.stats.timeouts.Load(); got != 0 {
		t.Errorf("client cancellation counted as %d timeout(s)", got)
	}
}

// TestOversizedBodyAnswers413: a body over MaxBodyBytes is a clear 413, not
// a confusing 400 decode error.
func TestOversizedBodyAnswers413(t *testing.T) {
	_, ts := newRawServer(t, Config{MaxBodyBytes: 128})
	big, _ := json.Marshal(wire.QueryRequest{Query: "SELECT " + strings.Repeat("1+", 400) + "1"})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body answered %d, want 413", resp.StatusCode)
	}
	var werr wire.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&werr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(werr.Error, "128-byte limit") {
		t.Errorf("413 message %q does not name the limit", werr.Error)
	}
}

// TestInvalidPriorityHeaderIs400: a malformed class is the client's bug and
// must not be silently coerced.
func TestInvalidPriorityHeaderIs400(t *testing.T) {
	_, ts := newRawServer(t, Config{})
	body, _ := json.Marshal(wire.QueryRequest{Query: "SELECT COUNT(*) FROM T"})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(priorityHeader, "urgent")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority answered %d, want 400", resp.StatusCode)
	}
}

// TestPlanCacheHitsAndDDLInvalidation: repeated identical query texts hit the
// server-side plan cache (visible in /statsz), and a DML between executions
// yields a fresh, correct answer — the generation counter invalidates the
// cached resolution, never the correctness.
func TestPlanCacheHitsAndDDLInvalidation(t *testing.T) {
	_, c := newTestServer(t, Config{})
	if err := c.Exec("CREATE TABLE T (a INT); INSERT INTO T VALUES (1), (2), (3)"); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT COUNT(*) FROM T"
	for i := 0; i < 3; i++ {
		res, err := c.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := res.Rows[0][0].Float64(); got != 3 {
			t.Fatalf("run %d: COUNT(*) = %g, want 3", i, got)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanCache == nil {
		t.Fatal("/statsz lacks the plan_cache block")
	}
	if st.PlanCache.Hits < 2 {
		t.Errorf("plan cache hits = %d after 3 identical queries, want ≥ 2", st.PlanCache.Hits)
	}
	if st.PlanCache.Size == 0 {
		t.Error("plan cache reports size 0 after caching a query")
	}

	// Mutate between cached executions: the answer must track the data.
	if err := c.Exec("INSERT INTO T VALUES (4), (5)"); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Rows[0][0].Float64(); got != 5 {
		t.Errorf("post-DML cached query = %g, want 5 (stale plan served?)", got)
	}

	// DDL between cached executions (generation bump): still fresh.
	if err := c.Exec("CREATE TABLE U (b INT); INSERT INTO U VALUES (9)"); err != nil {
		t.Fatal(err)
	}
	res, err = c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Rows[0][0].Float64(); got != 5 {
		t.Errorf("query after unrelated DDL = %g, want 5", got)
	}
}

// TestCancelStormDoesNotPolluteEWMA pins the shedder's blind spot fix: a
// storm of fast client cancellations must NOT be recorded as completions.
// Each abandoned request unwinds in milliseconds, so feeding those into the
// class EWMA drags the estimate toward zero and disarms estimate-based
// shedding exactly when real completions are slow. Before the fix, run()'s
// ctx.Done branch observed every cancellation; this test fails there.
func TestCancelStormDoesNotPolluteEWMA(t *testing.T) {
	s, _ := newRawServer(t, Config{RequestTimeout: time.Minute})
	cl := classInteractive

	// Seed the estimate with healthy-but-slow completions at ~80ms.
	const seed = 80 * time.Millisecond
	for i := 0; i < 16; i++ {
		s.stats.classes[cl].observe(seed)
	}
	before := s.stats.classes[cl].estimate()
	if before < seed/2 {
		t.Fatalf("seeded estimate = %s, want ≈%s", before, seed)
	}

	// Storm: 32 requests admitted, then cancelled by the client within
	// milliseconds while the handler is still parked.
	for i := 0; i < 32; i++ {
		gate := make(chan struct{})
		cctx, cancel := context.WithCancel(context.Background())
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/query", nil).WithContext(cctx)
		go func() {
			deadline := time.Now().Add(5 * time.Second)
			for s.adm.inflightCount(cl) == 0 {
				if time.Now().After(deadline) {
					return
				}
				time.Sleep(100 * time.Microsecond)
			}
			cancel()
		}()
		s.run(rec, req, cl, func(ctx context.Context) (any, int) {
			<-gate
			return "ok", http.StatusOK
		})
		close(gate)
		cancel()
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("storm request %d answered %d, want 503 (client cancelled)", i, rec.Code)
		}
		// Let the parked handler goroutine release its slot before the next
		// iteration's watcher polls inflight.
		deadline := time.Now().Add(5 * time.Second)
		for s.adm.inflightCount(cl) != 0 {
			if time.Now().After(deadline) {
				t.Fatal("storm slot never released")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	after := s.stats.classes[cl].estimate()
	if after < before/2 {
		t.Fatalf("cancel storm dragged the EWMA from %s to %s — the shedder is disarmed", before, after)
	}
	if got := s.stats.classes[cl].timeouts.Load(); got != 0 {
		t.Errorf("client cancellations counted as %d timeout(s)", got)
	}
}

// TestQoSConfigDefaults pins the clamping rules the reload path relies on.
func TestQoSConfigDefaults(t *testing.T) {
	q := QoSConfig{}.withDefaults()
	if q.MaxConcurrent != 64 || q.BatchMaxConcurrent != 32 || q.ShedMargin != 1.0 {
		t.Errorf("zero config defaults = %+v", q)
	}
	q = QoSConfig{MaxConcurrent: 4, BatchMaxConcurrent: 9}.withDefaults()
	if q.BatchMaxConcurrent != 3 {
		t.Errorf("batch limit not clamped below total: %+v", q)
	}
	q = QoSConfig{MaxConcurrent: 1}.withDefaults()
	if q.BatchMaxConcurrent != 1 {
		t.Errorf("single-slot config = %+v, want batch 1", q)
	}
	q = QoSConfig{ShedMargin: -1}.withDefaults()
	if q.ShedMargin >= 0 {
		t.Errorf("negative margin must survive defaults: %+v", q)
	}
}

// Package stats provides the small statistical helpers the experiment
// harness uses: percent differences (the paper's error metric), quantiles,
// and box-plot summaries (Fig 6 reports 3rd/97th-percentile whiskers with
// the mean marked).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// PercentDiff returns |est − truth| / |truth| (the paper's "average percent
// difference", reported as a fraction: Fig 6's y-axis runs 0–2.0). A zero
// truth with a zero estimate is 0; a zero truth with a non-zero estimate is
// +Inf.
func PercentDiff(est, truth float64) float64 {
	if truth == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-truth) / math.Abs(truth)
}

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-th quantile (0..1) by linear interpolation over the
// sorted sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Box is a box-plot summary matching Fig 6's rendering: whiskers at the 3rd
// and 97th percentiles, box at the quartiles, with median and mean.
type Box struct {
	P3, P25, Median, Mean, P75, P97 float64
	N                               int
}

// BoxOf summarizes a sample.
func BoxOf(xs []float64) Box {
	return Box{
		P3:     Quantile(xs, 0.03),
		P25:    Quantile(xs, 0.25),
		Median: Quantile(xs, 0.50),
		Mean:   Mean(xs),
		P75:    Quantile(xs, 0.75),
		P97:    Quantile(xs, 0.97),
		N:      len(xs),
	}
}

// String renders the box compactly.
func (b Box) String() string {
	return fmt.Sprintf("p3=%.4f p25=%.4f med=%.4f mean=%.4f p75=%.4f p97=%.4f (n=%d)",
		b.P3, b.P25, b.Median, b.Mean, b.P75, b.P97, b.N)
}

// Finite filters out NaN and ±Inf entries (empty-answer queries are excluded
// from averages, as in the paper's "not-empty" filter).
func Finite(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	return out
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPercentDiff(t *testing.T) {
	cases := []struct {
		est, truth, want float64
	}{
		{110, 100, 0.1},
		{90, 100, 0.1},
		{100, 100, 0},
		{0, 0, 0},
		{-50, 100, 1.5},
		{50, -100, 1.5},
	}
	for _, c := range cases {
		if got := PercentDiff(c.est, c.truth); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PercentDiff(%g,%g) = %g, want %g", c.est, c.truth, got, c.want)
		}
	}
	if !math.IsInf(PercentDiff(1, 0), 1) {
		t.Error("nonzero estimate of zero truth should be +Inf")
	}
}

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %g", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2", s)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Error("empty input should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if q := Quantile(xs, 0); q != 1 {
		t.Errorf("Q(0) = %g", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Errorf("Q(1) = %g", q)
	}
	if q := Quantile(xs, 0.5); q != 3 {
		t.Errorf("median = %g", q)
	}
	// Interpolation between order statistics.
	if q := Quantile([]float64{0, 10}, 0.25); q != 2.5 {
		t.Errorf("interpolated Q(0.25) = %g", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, a, b uint8) bool {
		clean := Finite(xs)
		if len(clean) == 0 {
			return true
		}
		qa := float64(a%101) / 100
		qb := float64(b%101) / 100
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(clean, qa) <= Quantile(clean, qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBoxOf(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	b := BoxOf(xs)
	if b.Median != 50 || b.Mean != 50 || b.N != 101 {
		t.Errorf("Box = %+v", b)
	}
	if b.P3 != 3 || b.P97 != 97 {
		t.Errorf("whiskers = %g, %g", b.P3, b.P97)
	}
	if b.P25 != 25 || b.P75 != 75 {
		t.Errorf("quartiles = %g, %g", b.P25, b.P75)
	}
	if s := b.String(); s == "" {
		t.Error("String empty")
	}
}

func TestFinite(t *testing.T) {
	in := []float64{1, math.NaN(), 2, math.Inf(1), math.Inf(-1), 3}
	out := Finite(in)
	if len(out) != 3 || out[0] != 1 || out[2] != 3 {
		t.Errorf("Finite = %v", out)
	}
}

func TestBoxOrderingProperty(t *testing.T) {
	// Property: box statistics are ordered p3 ≤ p25 ≤ median ≤ p75 ≤ p97.
	f := func(xs []float64) bool {
		clean := Finite(xs)
		if len(clean) == 0 {
			return true
		}
		b := BoxOf(clean)
		return b.P3 <= b.P25 && b.P25 <= b.Median && b.Median <= b.P75 && b.P75 <= b.P97
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Package expr defines the scalar-expression AST shared by the SQL parser,
// the planner, and the executor, together with a row-at-a-time evaluator.
//
// Supported forms: column references, literals, unary minus/NOT, binary
// arithmetic (+ - * / %), comparisons (= != < <= > >=), AND/OR, IN (value
// list), and BETWEEN. Three-valued NULL logic follows SQL: any comparison
// with NULL is NULL, NULL AND FALSE is FALSE, NULL OR TRUE is TRUE.
package expr

import (
	"fmt"
	"math"
	"strings"

	"mosaic/internal/schema"
	"mosaic/internal/value"
)

// Expr is a scalar expression node.
type Expr interface {
	// Eval computes the expression over one row described by binding.
	Eval(b *Binding) (value.Value, error)
	// String renders the expression in SQL-ish syntax.
	String() string
	// Columns appends the column names referenced by the expression.
	Columns(dst []string) []string
}

// Binding supplies column values for one row during evaluation.
type Binding struct {
	Schema *schema.Schema
	Row    []value.Value
}

// Column is a reference to a named attribute.
type Column struct{ Name string }

// Eval implements Expr.
func (c *Column) Eval(b *Binding) (value.Value, error) {
	if b == nil || b.Schema == nil {
		return value.Null(), fmt.Errorf("expr: column %q evaluated without a row", c.Name)
	}
	i, ok := b.Schema.Index(c.Name)
	if !ok {
		return value.Null(), fmt.Errorf("expr: unknown column %q", c.Name)
	}
	return b.Row[i], nil
}

func (c *Column) String() string { return c.Name }

// Columns implements Expr.
func (c *Column) Columns(dst []string) []string { return append(dst, c.Name) }

// Literal is a constant value.
type Literal struct{ Val value.Value }

// Eval implements Expr.
func (l *Literal) Eval(*Binding) (value.Value, error) { return l.Val, nil }

func (l *Literal) String() string { return l.Val.String() }

// Columns implements Expr.
func (l *Literal) Columns(dst []string) []string { return dst }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// String returns the SQL spelling of the operator.
func (op BinOp) String() string { return binOpNames[op] }

// Binary applies op to Left and Right.
type Binary struct {
	Op          BinOp
	Left, Right Expr
}

// Eval implements Expr.
func (e *Binary) Eval(b *Binding) (value.Value, error) {
	switch e.Op {
	case OpAnd, OpOr:
		return e.evalLogical(b)
	}
	lv, err := e.Left.Eval(b)
	if err != nil {
		return value.Null(), err
	}
	rv, err := e.Right.Eval(b)
	if err != nil {
		return value.Null(), err
	}
	switch e.Op {
	case OpAdd, OpSub, OpMul, OpDiv, OpMod:
		return evalArith(e.Op, lv, rv)
	default:
		return evalCompare(e.Op, lv, rv)
	}
}

func (e *Binary) evalLogical(b *Binding) (value.Value, error) {
	lv, err := e.Left.Eval(b)
	if err != nil {
		return value.Null(), err
	}
	// Short-circuit where 3VL permits.
	if !lv.IsNull() {
		lb, err := truth(lv)
		if err != nil {
			return value.Null(), err
		}
		if e.Op == OpAnd && !lb {
			return value.Bool(false), nil
		}
		if e.Op == OpOr && lb {
			return value.Bool(true), nil
		}
	}
	rv, err := e.Right.Eval(b)
	if err != nil {
		return value.Null(), err
	}
	if rv.IsNull() || lv.IsNull() {
		// Remaining NULL cases: NULL AND TRUE, NULL OR FALSE, NULL op NULL,
		// and the symmetric ones where rv decides.
		if !rv.IsNull() {
			rb, err := truth(rv)
			if err != nil {
				return value.Null(), err
			}
			if e.Op == OpAnd && !rb {
				return value.Bool(false), nil
			}
			if e.Op == OpOr && rb {
				return value.Bool(true), nil
			}
		}
		return value.Null(), nil
	}
	rb, err := truth(rv)
	if err != nil {
		return value.Null(), err
	}
	lb, _ := truth(lv)
	if e.Op == OpAnd {
		return value.Bool(lb && rb), nil
	}
	return value.Bool(lb || rb), nil
}

func (e *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}

// Columns implements Expr.
func (e *Binary) Columns(dst []string) []string {
	return e.Right.Columns(e.Left.Columns(dst))
}

// Unary is unary minus or NOT.
type Unary struct {
	Neg   bool // true: numeric negation; false: logical NOT
	Child Expr
}

// Eval implements Expr.
func (e *Unary) Eval(b *Binding) (value.Value, error) {
	v, err := e.Child.Eval(b)
	if err != nil {
		return value.Null(), err
	}
	if v.IsNull() {
		return value.Null(), nil
	}
	if e.Neg {
		switch v.Kind() {
		case value.KindInt:
			return value.Int(-v.AsInt()), nil
		case value.KindFloat:
			return value.Float(-v.AsFloat()), nil
		default:
			return value.Null(), fmt.Errorf("expr: cannot negate %s", v.Kind())
		}
	}
	tb, err := truth(v)
	if err != nil {
		return value.Null(), err
	}
	return value.Bool(!tb), nil
}

func (e *Unary) String() string {
	if e.Neg {
		return "(-" + e.Child.String() + ")"
	}
	return "(NOT " + e.Child.String() + ")"
}

// Columns implements Expr.
func (e *Unary) Columns(dst []string) []string { return e.Child.Columns(dst) }

// In tests membership of Child in a literal list.
type In struct {
	Child  Expr
	List   []Expr
	Negate bool
}

// Eval implements Expr.
func (e *In) Eval(b *Binding) (value.Value, error) {
	cv, err := e.Child.Eval(b)
	if err != nil {
		return value.Null(), err
	}
	if cv.IsNull() {
		return value.Null(), nil
	}
	sawNull := false
	for _, item := range e.List {
		iv, err := item.Eval(b)
		if err != nil {
			return value.Null(), err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if value.Equal(cv, iv) {
			return value.Bool(!e.Negate), nil
		}
	}
	if sawNull {
		return value.Null(), nil
	}
	return value.Bool(e.Negate), nil
}

func (e *In) String() string {
	parts := make([]string, len(e.List))
	for i, it := range e.List {
		parts[i] = it.String()
	}
	op := "IN"
	if e.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", e.Child, op, strings.Join(parts, ", "))
}

// Columns implements Expr.
func (e *In) Columns(dst []string) []string {
	dst = e.Child.Columns(dst)
	for _, it := range e.List {
		dst = it.Columns(dst)
	}
	return dst
}

// Between tests Lo <= Child <= Hi.
type Between struct {
	Child, Lo, Hi Expr
	Negate        bool
}

// Eval implements Expr.
func (e *Between) Eval(b *Binding) (value.Value, error) {
	cv, err := e.Child.Eval(b)
	if err != nil {
		return value.Null(), err
	}
	lo, err := e.Lo.Eval(b)
	if err != nil {
		return value.Null(), err
	}
	hi, err := e.Hi.Eval(b)
	if err != nil {
		return value.Null(), err
	}
	if cv.IsNull() || lo.IsNull() || hi.IsNull() {
		return value.Null(), nil
	}
	in := value.Compare(cv, lo) >= 0 && value.Compare(cv, hi) <= 0
	return value.Bool(in != e.Negate), nil
}

func (e *Between) String() string {
	op := "BETWEEN"
	if e.Negate {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("(%s %s %s AND %s)", e.Child, op, e.Lo, e.Hi)
}

// Columns implements Expr.
func (e *Between) Columns(dst []string) []string {
	return e.Hi.Columns(e.Lo.Columns(e.Child.Columns(dst)))
}

// IsNull tests Child IS [NOT] NULL.
type IsNull struct {
	Child  Expr
	Negate bool
}

// Eval implements Expr.
func (e *IsNull) Eval(b *Binding) (value.Value, error) {
	v, err := e.Child.Eval(b)
	if err != nil {
		return value.Null(), err
	}
	return value.Bool(v.IsNull() != e.Negate), nil
}

func (e *IsNull) String() string {
	if e.Negate {
		return "(" + e.Child.String() + " IS NOT NULL)"
	}
	return "(" + e.Child.String() + " IS NULL)"
}

// Columns implements Expr.
func (e *IsNull) Columns(dst []string) []string { return e.Child.Columns(dst) }

func truth(v value.Value) (bool, error) {
	switch v.Kind() {
	case value.KindBool:
		return v.AsBool(), nil
	case value.KindInt:
		return v.AsInt() != 0, nil
	case value.KindFloat:
		return v.AsFloat() != 0, nil
	default:
		return false, fmt.Errorf("expr: %s is not a boolean", v.Kind())
	}
}

// Truthy evaluates e and reports whether the result is TRUE (NULL and FALSE
// both report false, matching WHERE semantics).
func Truthy(e Expr, b *Binding) (bool, error) {
	v, err := e.Eval(b)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	return truth(v)
}

func evalArith(op BinOp, a, b value.Value) (value.Value, error) {
	if a.IsNull() || b.IsNull() {
		return value.Null(), nil
	}
	if !a.Numeric() || !b.Numeric() {
		return value.Null(), fmt.Errorf("expr: arithmetic on %s and %s", a.Kind(), b.Kind())
	}
	if a.Kind() == value.KindInt && b.Kind() == value.KindInt && op != OpDiv {
		ai, bi := a.AsInt(), b.AsInt()
		switch op {
		case OpAdd:
			return value.Int(ai + bi), nil
		case OpSub:
			return value.Int(ai - bi), nil
		case OpMul:
			return value.Int(ai * bi), nil
		case OpMod:
			if bi == 0 {
				return value.Null(), fmt.Errorf("expr: division by zero")
			}
			return value.Int(ai % bi), nil
		}
	}
	af, _ := a.Float64()
	bf, _ := b.Float64()
	switch op {
	case OpAdd:
		return value.Float(af + bf), nil
	case OpSub:
		return value.Float(af - bf), nil
	case OpMul:
		return value.Float(af * bf), nil
	case OpDiv:
		if bf == 0 {
			return value.Null(), fmt.Errorf("expr: division by zero")
		}
		return value.Float(af / bf), nil
	case OpMod:
		if bf == 0 {
			return value.Null(), fmt.Errorf("expr: division by zero")
		}
		return value.Float(math.Mod(af, bf)), nil
	default:
		return value.Null(), fmt.Errorf("expr: %s is not arithmetic", op)
	}
}

func evalCompare(op BinOp, a, b value.Value) (value.Value, error) {
	if a.IsNull() || b.IsNull() {
		return value.Null(), nil
	}
	c := value.Compare(a, b)
	switch op {
	case OpEq:
		return value.Bool(c == 0), nil
	case OpNe:
		return value.Bool(c != 0), nil
	case OpLt:
		return value.Bool(c < 0), nil
	case OpLe:
		return value.Bool(c <= 0), nil
	case OpGt:
		return value.Bool(c > 0), nil
	case OpGe:
		return value.Bool(c >= 0), nil
	default:
		return value.Null(), fmt.Errorf("expr: %s is not a comparison", op)
	}
}

// Col is shorthand for a column reference.
func Col(name string) Expr { return &Column{Name: name} }

// Lit is shorthand for a literal.
func Lit(v value.Value) Expr { return &Literal{Val: v} }

// Bin is shorthand for a binary node.
func Bin(op BinOp, l, r Expr) Expr { return &Binary{Op: op, Left: l, Right: r} }

package expr

import (
	"math"
	"testing"

	"mosaic/internal/value"
)

func TestModulo(t *testing.T) {
	b := bind(7, 2.5, "x", true)
	if got := eval(t, Bin(OpMod, Col("i"), Lit(value.Int(4))), b); got.Kind() != value.KindInt || got.AsInt() != 3 {
		t.Errorf("7 %% 4 = %v", got)
	}
	if got := eval(t, Bin(OpMod, Lit(value.Int(-7)), Lit(value.Int(4))), b); got.AsInt() != -3 {
		t.Errorf("-7 %% 4 = %v (Go truncated semantics expected)", got)
	}
	if got := eval(t, Bin(OpMod, Col("f"), Lit(value.Int(2))), b); got.Kind() != value.KindFloat || got.AsFloat() != math.Mod(2.5, 2) {
		t.Errorf("2.5 %% 2 = %v", got)
	}
	if got := eval(t, Bin(OpMod, Col("i"), Lit(value.Null())), b); !got.IsNull() {
		t.Errorf("7 %% NULL = %v, want NULL", got)
	}
	for _, zero := range []Expr{Lit(value.Int(0)), Lit(value.Float(0))} {
		if _, err := Bin(OpMod, Col("i"), zero).Eval(b); err == nil || err.Error() != "expr: division by zero" {
			t.Errorf("i %% %s error = %v, want division by zero", zero, err)
		}
	}
	if _, err := Bin(OpMod, Col("s"), Lit(value.Int(2))).Eval(b); err == nil {
		t.Error("TEXT %% INT should error")
	}
}

func TestFoldConstants(t *testing.T) {
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{Bin(OpAdd, Lit(value.Int(2)), Lit(value.Int(3))), value.Int(5)},
		{Bin(OpMul, Lit(value.Float(1.5)), Lit(value.Int(4))), value.Float(6)},
		{Bin(OpMod, Lit(value.Int(9)), Lit(value.Int(4))), value.Int(1)},
		{Bin(OpGt, Lit(value.Int(2)), Lit(value.Int(1))), value.Bool(true)},
		{&Unary{Neg: true, Child: Bin(OpAdd, Lit(value.Int(1)), Lit(value.Int(2)))}, value.Int(-3)},
		{&IsNull{Child: Lit(value.Null())}, value.Bool(true)},
		{&Between{Child: Lit(value.Int(2)), Lo: Lit(value.Int(1)), Hi: Lit(value.Int(3))}, value.Bool(true)},
		{&In{Child: Lit(value.Int(2)), List: []Expr{Lit(value.Int(1)), Lit(value.Int(2))}}, value.Bool(true)},
		// A column-free AND folds through Eval's own short-circuit: the
		// erroring right side is never evaluated, exactly as at runtime.
		{Bin(OpAnd, Lit(value.Bool(false)), Bin(OpGt, Bin(OpDiv, Lit(value.Int(1)), Lit(value.Int(0))), Lit(value.Int(1)))), value.Bool(false)},
	}
	for _, c := range cases {
		got := Fold(c.e)
		lit, ok := got.(*Literal)
		if !ok {
			t.Errorf("Fold(%s) = %s, want literal", c.e, got)
			continue
		}
		if !value.Equal(lit.Val, c.want) || lit.Val.Kind() != c.want.Kind() {
			t.Errorf("Fold(%s) = %s, want %s", c.e, lit.Val, c.want)
		}
	}
}

func TestFoldPreservesErrorsAndColumns(t *testing.T) {
	// Erroring constants stay unfolded so the error surfaces lazily.
	divZero := Bin(OpDiv, Lit(value.Int(1)), Lit(value.Int(0)))
	if _, ok := Fold(divZero).(*Literal); ok {
		t.Error("1/0 must not fold")
	}
	// Column references are untouched (pointer-identical when nothing folds).
	e := Bin(OpGt, Col("x"), Col("y"))
	if Fold(e) != e {
		t.Error("no-op fold should return the same node")
	}
	// Constant subtrees under a column comparison fold in place.
	folded := Fold(Bin(OpGt, Col("x"), Bin(OpAdd, Lit(value.Int(1)), Lit(value.Int(2)))))
	bin := folded.(*Binary)
	if lit, ok := bin.Right.(*Literal); !ok || lit.Val.AsInt() != 3 {
		t.Errorf("right side should fold to 3, got %s", bin.Right)
	}
	if _, ok := bin.Left.(*Column); !ok {
		t.Errorf("left column should survive, got %s", bin.Left)
	}
	// Folding is semantics-preserving on a mixed tree.
	b := bind(10, 0.5, "x", true)
	orig := Bin(OpAnd, Bin(OpGt, Col("i"), Bin(OpMul, Lit(value.Int(2)), Lit(value.Int(3)))), Lit(value.Bool(true)))
	v1, err1 := orig.Eval(b)
	v2, err2 := Fold(orig).Eval(b)
	if err1 != nil || err2 != nil || !value.Equal(v1, v2) {
		t.Errorf("fold changed semantics: %v/%v vs %v/%v", v1, err1, v2, err2)
	}
}

package expr

// Fold returns e with every column-free subexpression that evaluates without
// error replaced by its literal value. Folding is purely an evaluation-time
// optimization and never changes semantics: subtrees that would raise a
// runtime error (e.g. 1/0, arithmetic on TEXT) are left in place so the
// error still surfaces lazily, per evaluated row, exactly as before — and a
// column-free AND/OR folds only as a whole, through Eval's own short-circuit
// rules, so 3VL outcomes are preserved bit for bit. Nodes without foldable
// children are returned unchanged (pointer-identical), letting callers detect
// no-op folds cheaply.
func Fold(e Expr) Expr {
	folded, _ := fold(e)
	return folded
}

// fold rewrites bottom-up and reports whether the result is column-free.
// Column-freeness (not fold success) is what propagates upward: a column-free
// subtree that errors stays unfolded, but its parent may still fold — e.g.
// FALSE AND 1/0 > 1 short-circuits to FALSE under Eval's own rules.
func fold(e Expr) (Expr, bool) {
	switch ex := e.(type) {
	case *Literal:
		return ex, true
	case *Column:
		return ex, false
	case *Unary:
		child, constC := fold(ex.Child)
		out := e
		if child != ex.Child {
			out = &Unary{Neg: ex.Neg, Child: child}
		}
		return tryEval(out, constC)
	case *Binary:
		l, constL := fold(ex.Left)
		r, constR := fold(ex.Right)
		out := e
		if l != ex.Left || r != ex.Right {
			out = &Binary{Op: ex.Op, Left: l, Right: r}
		}
		return tryEval(out, constL && constR)
	case *In:
		child, constC := fold(ex.Child)
		list := ex.List
		constList := true
		copied := false
		for i, item := range ex.List {
			fi, ci := fold(item)
			constList = constList && ci
			if fi != item {
				if !copied {
					list = append([]Expr(nil), ex.List...)
					copied = true
				}
				list[i] = fi
			}
		}
		out := e
		if child != ex.Child || copied {
			out = &In{Child: child, List: list, Negate: ex.Negate}
		}
		return tryEval(out, constC && constList)
	case *Between:
		child, constC := fold(ex.Child)
		lo, constLo := fold(ex.Lo)
		hi, constHi := fold(ex.Hi)
		out := e
		if child != ex.Child || lo != ex.Lo || hi != ex.Hi {
			out = &Between{Child: child, Lo: lo, Hi: hi, Negate: ex.Negate}
		}
		return tryEval(out, constC && constLo && constHi)
	case *IsNull:
		child, constC := fold(ex.Child)
		out := e
		if child != ex.Child {
			out = &IsNull{Child: child, Negate: ex.Negate}
		}
		return tryEval(out, constC)
	default:
		return e, false
	}
}

// tryEval collapses a column-free node to a literal when evaluation succeeds.
func tryEval(e Expr, isConst bool) (Expr, bool) {
	if !isConst {
		return e, false
	}
	if _, already := e.(*Literal); already {
		return e, true
	}
	v, err := e.Eval(nil)
	if err != nil {
		// Erroring constants (division by zero, arithmetic on TEXT) stay
		// unfolded — the evaluator must keep raising the error lazily — but
		// they remain column-free, so an enclosing short-circuit can fold.
		return e, true
	}
	return &Literal{Val: v}, true
}

package expr

import (
	"fmt"

	"mosaic/internal/value"
)

// Param is a positional `?` placeholder. Placeholders are numbered
// left-to-right from 0 by the parser and carry no value of their own:
// executing an expression that still contains one is an error, and the
// prepared-statement layer replaces every Param with a Literal (via
// ReplaceParams) before the tree reaches an evaluator — so a bound query is
// structurally identical to the same query with the literal spelled inline.
type Param struct{ Index int }

// Eval implements Expr. A Param that survives to evaluation was never bound.
func (p *Param) Eval(*Binding) (value.Value, error) {
	return value.Null(), fmt.Errorf("expr: unbound parameter ?%d (bind values with a prepared statement)", p.Index+1)
}

func (p *Param) String() string { return "?" }

// Columns implements Expr.
func (p *Param) Columns(dst []string) []string { return dst }

// ReplaceParams returns e with every Param node replaced by the literal at
// its index. Nodes without params are returned unchanged (pointer-identical),
// so unparameterized trees cost nothing to bind.
func ReplaceParams(e Expr, vals []value.Value) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	switch ex := e.(type) {
	case *Param:
		if ex.Index < 0 || ex.Index >= len(vals) {
			return nil, fmt.Errorf("expr: parameter ?%d out of range (%d bound)", ex.Index+1, len(vals))
		}
		return &Literal{Val: vals[ex.Index]}, nil
	case *Literal, *Column:
		return e, nil
	case *Unary:
		child, err := ReplaceParams(ex.Child, vals)
		if err != nil {
			return nil, err
		}
		if child == ex.Child {
			return e, nil
		}
		return &Unary{Neg: ex.Neg, Child: child}, nil
	case *Binary:
		l, err := ReplaceParams(ex.Left, vals)
		if err != nil {
			return nil, err
		}
		r, err := ReplaceParams(ex.Right, vals)
		if err != nil {
			return nil, err
		}
		if l == ex.Left && r == ex.Right {
			return e, nil
		}
		return &Binary{Op: ex.Op, Left: l, Right: r}, nil
	case *In:
		child, err := ReplaceParams(ex.Child, vals)
		if err != nil {
			return nil, err
		}
		list := ex.List
		copied := false
		for i, item := range ex.List {
			fi, err := ReplaceParams(item, vals)
			if err != nil {
				return nil, err
			}
			if fi != item {
				if !copied {
					list = append([]Expr(nil), ex.List...)
					copied = true
				}
				list[i] = fi
			}
		}
		if child == ex.Child && !copied {
			return e, nil
		}
		return &In{Child: child, List: list, Negate: ex.Negate}, nil
	case *Between:
		child, err := ReplaceParams(ex.Child, vals)
		if err != nil {
			return nil, err
		}
		lo, err := ReplaceParams(ex.Lo, vals)
		if err != nil {
			return nil, err
		}
		hi, err := ReplaceParams(ex.Hi, vals)
		if err != nil {
			return nil, err
		}
		if child == ex.Child && lo == ex.Lo && hi == ex.Hi {
			return e, nil
		}
		return &Between{Child: child, Lo: lo, Hi: hi, Negate: ex.Negate}, nil
	case *IsNull:
		child, err := ReplaceParams(ex.Child, vals)
		if err != nil {
			return nil, err
		}
		if child == ex.Child {
			return e, nil
		}
		return &IsNull{Child: child, Negate: ex.Negate}, nil
	default:
		return e, nil
	}
}

// CountParams returns the number of distinct parameter positions e references
// (the highest Param index + 1).
func CountParams(e Expr) int {
	max := 0
	countParams(e, &max)
	return max
}

func countParams(e Expr, max *int) {
	switch ex := e.(type) {
	case *Param:
		if ex.Index+1 > *max {
			*max = ex.Index + 1
		}
	case *Unary:
		countParams(ex.Child, max)
	case *Binary:
		countParams(ex.Left, max)
		countParams(ex.Right, max)
	case *In:
		countParams(ex.Child, max)
		for _, item := range ex.List {
			countParams(item, max)
		}
	case *Between:
		countParams(ex.Child, max)
		countParams(ex.Lo, max)
		countParams(ex.Hi, max)
	case *IsNull:
		countParams(ex.Child, max)
	}
}

package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"mosaic/internal/schema"
	"mosaic/internal/value"
)

var sc = schema.MustNew(
	schema.Attribute{Name: "i", Kind: value.KindInt},
	schema.Attribute{Name: "f", Kind: value.KindFloat},
	schema.Attribute{Name: "s", Kind: value.KindText},
	schema.Attribute{Name: "b", Kind: value.KindBool},
)

func bind(i int64, f float64, s string, b bool) *Binding {
	return &Binding{Schema: sc, Row: []value.Value{
		value.Int(i), value.Float(f), value.Text(s), value.Bool(b),
	}}
}

func eval(t *testing.T, e Expr, b *Binding) value.Value {
	t.Helper()
	v, err := e.Eval(b)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestColumnLookup(t *testing.T) {
	b := bind(7, 1.5, "x", true)
	if got := eval(t, Col("i"), b); got.AsInt() != 7 {
		t.Errorf("i = %v", got)
	}
	if got := eval(t, Col("S"), b); got.AsText() != "x" {
		t.Errorf("case-insensitive column: %v", got)
	}
	if _, err := Col("nope").Eval(b); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := Col("i").Eval(nil); err == nil {
		t.Error("column without binding should fail")
	}
}

func TestArithmetic(t *testing.T) {
	b := bind(6, 2.5, "", false)
	cases := []struct {
		e    Expr
		want value.Value
	}{
		{Bin(OpAdd, Col("i"), Lit(value.Int(2))), value.Int(8)},
		{Bin(OpSub, Col("i"), Lit(value.Int(10))), value.Int(-4)},
		{Bin(OpMul, Col("i"), Lit(value.Int(3))), value.Int(18)},
		{Bin(OpDiv, Col("i"), Lit(value.Int(4))), value.Float(1.5)},
		{Bin(OpAdd, Col("f"), Lit(value.Float(0.5))), value.Float(3.0)},
		{Bin(OpMul, Col("i"), Col("f")), value.Float(15)},
	}
	for _, c := range cases {
		got := eval(t, c.e, b)
		if value.Compare(got, c.want) != 0 {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
	if _, err := Bin(OpDiv, Col("i"), Lit(value.Int(0))).Eval(b); err == nil {
		t.Error("division by zero should fail")
	}
	if _, err := Bin(OpAdd, Col("s"), Lit(value.Int(1))).Eval(b); err == nil {
		t.Error("text arithmetic should fail")
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	b := bind(1, 1, "", false)
	e := Bin(OpAdd, Lit(value.Null()), Col("i"))
	if got := eval(t, e, b); !got.IsNull() {
		t.Errorf("NULL + i = %v, want NULL", got)
	}
}

func TestComparisons(t *testing.T) {
	b := bind(5, 2.5, "abc", true)
	trueCases := []Expr{
		Bin(OpEq, Col("i"), Lit(value.Int(5))),
		Bin(OpNe, Col("i"), Lit(value.Int(6))),
		Bin(OpLt, Col("f"), Lit(value.Float(3))),
		Bin(OpLe, Col("i"), Lit(value.Float(5.0))),
		Bin(OpGt, Col("s"), Lit(value.Text("ab"))),
		Bin(OpGe, Col("i"), Lit(value.Int(5))),
	}
	for _, e := range trueCases {
		if got := eval(t, e, b); !got.AsBool() {
			t.Errorf("%s = %v, want TRUE", e, got)
		}
	}
	if got := eval(t, Bin(OpEq, Col("i"), Lit(value.Null())), b); !got.IsNull() {
		t.Errorf("comparison with NULL should be NULL, got %v", got)
	}
}

func TestThreeValuedLogic(t *testing.T) {
	b := bind(1, 1, "", true)
	null := Lit(value.Null())
	tru := Lit(value.Bool(true))
	fls := Lit(value.Bool(false))

	cases := []struct {
		e    Expr
		want value.Value
	}{
		{Bin(OpAnd, null, fls), value.Bool(false)},
		{Bin(OpAnd, fls, null), value.Bool(false)},
		{Bin(OpAnd, null, tru), value.Null()},
		{Bin(OpAnd, tru, null), value.Null()},
		{Bin(OpOr, null, tru), value.Bool(true)},
		{Bin(OpOr, tru, null), value.Bool(true)},
		{Bin(OpOr, null, fls), value.Null()},
		{Bin(OpOr, fls, null), value.Null()},
		{Bin(OpAnd, null, null), value.Null()},
	}
	for _, c := range cases {
		got := eval(t, c.e, b)
		if got.IsNull() != c.want.IsNull() || (!got.IsNull() && got.AsBool() != c.want.AsBool()) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestLogicShortCircuit(t *testing.T) {
	// The right side errors, but short-circuiting must avoid evaluating it.
	b := bind(1, 1, "", true)
	bad := Bin(OpDiv, Lit(value.Int(1)), Lit(value.Int(0)))
	e := Bin(OpAnd, Lit(value.Bool(false)), bad)
	if got := eval(t, e, b); got.AsBool() {
		t.Error("FALSE AND err should be FALSE")
	}
	e = Bin(OpOr, Lit(value.Bool(true)), bad)
	if got := eval(t, e, b); !got.AsBool() {
		t.Error("TRUE OR err should be TRUE")
	}
}

func TestUnary(t *testing.T) {
	b := bind(5, -2.5, "", false)
	if got := eval(t, &Unary{Neg: true, Child: Col("i")}, b); got.AsInt() != -5 {
		t.Errorf("-i = %v", got)
	}
	if got := eval(t, &Unary{Neg: true, Child: Col("f")}, b); got.AsFloat() != 2.5 {
		t.Errorf("-f = %v", got)
	}
	if got := eval(t, &Unary{Neg: false, Child: Col("b")}, b); !got.AsBool() {
		t.Errorf("NOT false-col = %v, want TRUE", got)
	}
	if got := eval(t, &Unary{Neg: false, Child: Lit(value.Null())}, b); !got.IsNull() {
		t.Errorf("NOT NULL = %v", got)
	}
	if _, err := (&Unary{Neg: true, Child: Col("s")}).Eval(b); err == nil {
		t.Error("negating text should fail")
	}
}

func TestIn(t *testing.T) {
	b := bind(2, 0, "WN", false)
	in := &In{Child: Col("s"), List: []Expr{Lit(value.Text("WN")), Lit(value.Text("AA"))}}
	if got := eval(t, in, b); !got.AsBool() {
		t.Error("'WN' IN ('WN','AA') should be TRUE")
	}
	notIn := &In{Child: Col("s"), List: in.List, Negate: true}
	if got := eval(t, notIn, b); got.AsBool() {
		t.Error("NOT IN should be FALSE")
	}
	miss := &In{Child: Col("i"), List: []Expr{Lit(value.Int(9))}}
	if got := eval(t, miss, b); got.AsBool() {
		t.Error("2 IN (9) should be FALSE")
	}
	// NULL member with no match: NULL result.
	withNull := &In{Child: Col("i"), List: []Expr{Lit(value.Int(9)), Lit(value.Null())}}
	if got := eval(t, withNull, b); !got.IsNull() {
		t.Errorf("IN with NULL member = %v, want NULL", got)
	}
	// NULL member with a match: TRUE.
	withNullHit := &In{Child: Col("i"), List: []Expr{Lit(value.Int(2)), Lit(value.Null())}}
	if got := eval(t, withNullHit, b); !got.AsBool() {
		t.Error("IN with NULL member but a match should be TRUE")
	}
}

func TestBetween(t *testing.T) {
	b := bind(5, 0, "", false)
	e := &Between{Child: Col("i"), Lo: Lit(value.Int(1)), Hi: Lit(value.Int(5))}
	if got := eval(t, e, b); !got.AsBool() {
		t.Error("5 BETWEEN 1 AND 5 should be TRUE (inclusive)")
	}
	e = &Between{Child: Col("i"), Lo: Lit(value.Int(6)), Hi: Lit(value.Int(9))}
	if got := eval(t, e, b); got.AsBool() {
		t.Error("5 BETWEEN 6 AND 9 should be FALSE")
	}
	e = &Between{Child: Col("i"), Lo: Lit(value.Int(6)), Hi: Lit(value.Int(9)), Negate: true}
	if got := eval(t, e, b); !got.AsBool() {
		t.Error("NOT BETWEEN should be TRUE")
	}
	e = &Between{Child: Col("i"), Lo: Lit(value.Null()), Hi: Lit(value.Int(9))}
	if got := eval(t, e, b); !got.IsNull() {
		t.Error("BETWEEN with NULL bound should be NULL")
	}
}

func TestIsNull(t *testing.T) {
	b := bind(1, 1, "", false)
	if got := eval(t, &IsNull{Child: Lit(value.Null())}, b); !got.AsBool() {
		t.Error("NULL IS NULL should be TRUE")
	}
	if got := eval(t, &IsNull{Child: Col("i"), Negate: true}, b); !got.AsBool() {
		t.Error("i IS NOT NULL should be TRUE")
	}
}

func TestTruthyWhereSemantics(t *testing.T) {
	b := bind(1, 1, "", false)
	// NULL predicates filter rows out (Truthy false, no error).
	ok, err := Truthy(Lit(value.Null()), b)
	if err != nil || ok {
		t.Errorf("Truthy(NULL) = %v, %v", ok, err)
	}
	ok, err = Truthy(Lit(value.Int(3)), b)
	if err != nil || !ok {
		t.Errorf("Truthy(3) = %v, %v; nonzero ints are truthy", ok, err)
	}
	if _, err := Truthy(Lit(value.Text("x")), b); err == nil {
		t.Error("Truthy over text should fail")
	}
}

func TestColumnsCollection(t *testing.T) {
	e := Bin(OpAnd,
		Bin(OpGt, Col("a"), Lit(value.Int(1))),
		&In{Child: Col("b"), List: []Expr{Col("c")}},
	)
	cols := e.Columns(nil)
	joined := strings.Join(cols, ",")
	if joined != "a,b,c" {
		t.Errorf("Columns = %v", cols)
	}
	be := &Between{Child: Col("x"), Lo: Col("y"), Hi: Col("z")}
	if got := strings.Join(be.Columns(nil), ","); got != "x,y,z" {
		t.Errorf("Between.Columns = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	e := Bin(OpAnd, Bin(OpGt, Col("E"), Lit(value.Int(200))), Col("b"))
	if got := e.String(); got != "((E > 200) AND b)" {
		t.Errorf("String = %q", got)
	}
}

func TestComparisonMatchesValueCompareProperty(t *testing.T) {
	// Property: OpLt agrees with value.Compare for random int pairs.
	f := func(a, b int64) bool {
		bnd := bind(0, 0, "", false)
		e := Bin(OpLt, Lit(value.Int(a)), Lit(value.Int(b)))
		v, err := e.Eval(bnd)
		if err != nil {
			return false
		}
		return v.AsBool() == (value.Compare(value.Int(a), value.Int(b)) < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithCommutativityProperty(t *testing.T) {
	f := func(a, b int32) bool {
		bnd := bind(0, 0, "", false)
		e1 := Bin(OpAdd, Lit(value.Int(int64(a))), Lit(value.Int(int64(b))))
		e2 := Bin(OpAdd, Lit(value.Int(int64(b))), Lit(value.Int(int64(a))))
		v1, err1 := e1.Eval(bnd)
		v2, err2 := e2.Eval(bnd)
		if err1 != nil || err2 != nil {
			return false
		}
		return value.Equal(v1, v2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllNodeStringRenderings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Lit(value.Null()), "NULL"},
		{Lit(value.Bool(true)), "TRUE"},
		{&In{Child: Col("c"), List: []Expr{Lit(value.Int(1)), Lit(value.Int(2))}}, "(c IN (1, 2))"},
		{&In{Child: Col("c"), List: []Expr{Lit(value.Int(1))}, Negate: true}, "(c NOT IN (1))"},
		{&Between{Child: Col("x"), Lo: Lit(value.Int(1)), Hi: Lit(value.Int(5))}, "(x BETWEEN 1 AND 5)"},
		{&Between{Child: Col("x"), Lo: Lit(value.Int(1)), Hi: Lit(value.Int(5)), Negate: true}, "(x NOT BETWEEN 1 AND 5)"},
		{&IsNull{Child: Col("x")}, "(x IS NULL)"},
		{&IsNull{Child: Col("x"), Negate: true}, "(x IS NOT NULL)"},
		{&Unary{Neg: true, Child: Col("x")}, "(-x)"},
		{&Unary{Neg: false, Child: Col("x")}, "(NOT x)"},
		{Bin(OpDiv, Col("a"), Col("b")), "(a / b)"},
		{Bin(OpSub, Col("a"), Col("b")), "(a - b)"},
		{Bin(OpLe, Col("a"), Col("b")), "(a <= b)"},
		{Bin(OpGe, Col("a"), Col("b")), "(a >= b)"},
		{Bin(OpNe, Col("a"), Col("b")), "(a != b)"},
		{Bin(OpOr, Col("a"), Col("b")), "(a OR b)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestEvalErrorPropagation(t *testing.T) {
	b := bind(1, 1, "", true)
	boom := Bin(OpDiv, Lit(value.Int(1)), Lit(value.Int(0)))
	// Errors propagate through every container node.
	containers := []Expr{
		Bin(OpAdd, boom, Col("i")),
		Bin(OpEq, Col("i"), boom),
		Bin(OpAnd, Lit(value.Bool(true)), boom),
		Bin(OpOr, Lit(value.Bool(false)), boom),
		&Unary{Neg: true, Child: boom},
		&In{Child: boom, List: []Expr{Lit(value.Int(1))}},
		&In{Child: Col("i"), List: []Expr{boom}},
		&Between{Child: boom, Lo: Lit(value.Int(0)), Hi: Lit(value.Int(2))},
		&Between{Child: Col("i"), Lo: boom, Hi: Lit(value.Int(2))},
		&Between{Child: Col("i"), Lo: Lit(value.Int(0)), Hi: boom},
		&IsNull{Child: boom},
	}
	for _, e := range containers {
		if _, err := e.Eval(b); err == nil {
			t.Errorf("%s should propagate the division error", e)
		}
	}
	if _, err := Truthy(boom, b); err == nil {
		t.Error("Truthy should propagate errors")
	}
}

func TestLogicalErrorOnNonBoolean(t *testing.T) {
	b := bind(1, 1, "txt", true)
	if _, err := Bin(OpAnd, Col("s"), Lit(value.Bool(true))).Eval(b); err == nil {
		t.Error("AND over text should fail")
	}
	if _, err := Bin(OpOr, Lit(value.Bool(false)), Col("s")).Eval(b); err == nil {
		t.Error("OR over text should fail")
	}
}

func TestBinOpStringCoverage(t *testing.T) {
	for _, op := range []BinOp{OpAdd, OpSub, OpMul, OpDiv, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr} {
		if op.String() == "" {
			t.Errorf("op %d has empty string", op)
		}
	}
}

func TestIntArithmeticStaysInt(t *testing.T) {
	b := bind(0, 0, "", false)
	v, err := Bin(OpMul, Lit(value.Int(3)), Lit(value.Int(4))).Eval(b)
	if err != nil || v.Kind() != value.KindInt || v.AsInt() != 12 {
		t.Errorf("int*int = %v (%v), want INT 12", v, err)
	}
	// Division always yields FLOAT.
	v, err = Bin(OpDiv, Lit(value.Int(8)), Lit(value.Int(2))).Eval(b)
	if err != nil || v.Kind() != value.KindFloat || v.AsFloat() != 4 {
		t.Errorf("int/int = %v (%v), want FLOAT 4", v, err)
	}
}

// Package faulty provides deterministic fault injection for robustness
// testing of the serving path: a failing/latency-injecting http.RoundTripper
// for client-side tests, and a flaky TCP reverse proxy that drops, delays,
// and truncates responses for end-to-end harnesses (the overload
// experiment). All fault schedules are counter-based — "every Nth request" —
// so tests are exactly reproducible: no RNG, no timing races in the
// fault decisions themselves.
package faulty

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is the transport error injected by RoundTripper: it
// mimics a connection reset before any response byte arrived, the failure
// mode a retrying client must treat as "request may never have reached the
// server".
var ErrInjectedReset = errors.New("faulty: injected connection reset")

// RoundTripper wraps a base transport, deterministically failing every Nth
// request and/or delaying every forwarded one. The zero value forwards
// everything unchanged through http.DefaultTransport.
type RoundTripper struct {
	// Base is the wrapped transport; nil means http.DefaultTransport.
	Base http.RoundTripper
	// FailEvery injects ErrInjectedReset on request numbers n where
	// n % FailEvery == 0 (1-indexed). 0 disables failures; 1 fails every
	// request.
	FailEvery int
	// Latency is added before every forwarded request.
	Latency time.Duration

	n atomic.Int64 // requests seen

	// Failed counts injected failures, Forwarded successful hand-offs.
	Failed    atomic.Int64
	Forwarded atomic.Int64
}

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	n := rt.n.Add(1)
	if rt.FailEvery > 0 && n%int64(rt.FailEvery) == 0 {
		rt.Failed.Add(1)
		// Drain and close the body like a real transport would on failure.
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		return nil, ErrInjectedReset
	}
	if rt.Latency > 0 {
		select {
		case <-time.After(rt.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	base := rt.Base
	if base == nil {
		base = http.DefaultTransport
	}
	rt.Forwarded.Add(1)
	return base.RoundTrip(req)
}

// Proxy is a flaky TCP reverse proxy in front of Target. Per accepted
// connection (1-indexed counter, deterministic):
//
//   - every DropEvery-th connection is closed immediately (connection
//     reset from the client's point of view);
//   - every TruncateEvery-th connection forwards only TruncateBytes of the
//     server's response bytes, then closes (a cut-off mid-body);
//   - every connection's server→client bytes are delayed by Delay.
//
// Drop and truncate schedules are independent; a connection matching both
// drops. HTTP keep-alive means one connection can carry several requests —
// a truncated or dropped connection surfaces to the client as a transport
// error on whichever request was in flight, exactly the failure a retry
// policy must absorb.
type Proxy struct {
	// Target is the backend address ("127.0.0.1:port"). Required.
	Target string
	// DropEvery drops every Nth accepted connection (0 = never).
	DropEvery int
	// TruncateEvery truncates the response stream of every Nth accepted
	// connection after TruncateBytes bytes (0 = never).
	TruncateEvery int
	// TruncateBytes is the response byte budget of a truncated connection.
	// Default 64.
	TruncateBytes int
	// Delay postpones server→client bytes per connection.
	Delay time.Duration

	ln     net.Listener
	n      atomic.Int64 // connections accepted
	closed atomic.Bool
	wg     sync.WaitGroup
	connMu sync.Mutex
	conns  map[net.Conn]struct{} // live client+backend conns, closed by Close

	// Dropped and Truncated count injected connection faults.
	Dropped   atomic.Int64
	Truncated atomic.Int64
}

// Start listens on a loopback port and begins proxying. It returns the
// address clients should dial.
func (p *Proxy) Start() (string, error) {
	if p.Target == "" {
		return "", fmt.Errorf("faulty: Proxy.Target is required")
	}
	if p.TruncateBytes <= 0 {
		p.TruncateBytes = 64
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	p.ln = ln
	p.conns = make(map[net.Conn]struct{})
	p.wg.Add(1)
	go p.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops accepting, severs live connections (idle keep-alive
// connections would otherwise pin the proxy until a transport timeout), and
// waits for the forwarding goroutines to unwind.
func (p *Proxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	if p.ln != nil {
		_ = p.ln.Close()
	}
	p.connMu.Lock()
	for c := range p.conns {
		_ = c.Close()
	}
	p.connMu.Unlock()
	p.wg.Wait()
}

// track registers c for force-close on Close; untrack forgets it.
func (p *Proxy) track(c net.Conn) {
	p.connMu.Lock()
	p.conns[c] = struct{}{}
	p.connMu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.connMu.Lock()
	delete(p.conns, c)
	p.connMu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n := p.n.Add(1)
		if p.DropEvery > 0 && n%int64(p.DropEvery) == 0 {
			p.Dropped.Add(1)
			_ = conn.Close()
			continue
		}
		truncate := p.TruncateEvery > 0 && n%int64(p.TruncateEvery) == 0
		p.wg.Add(1)
		go p.serve(conn, truncate)
	}
}

func (p *Proxy) serve(client net.Conn, truncate bool) {
	defer p.wg.Done()
	p.track(client)
	defer p.untrack(client)
	defer client.Close()
	backend, err := net.Dial("tcp", p.Target)
	if err != nil {
		return
	}
	p.track(backend)
	defer p.untrack(backend)
	defer backend.Close()
	done := make(chan struct{}, 2)
	// client → backend: forwarded verbatim.
	go func() {
		_, _ = io.Copy(backend, client)
		// Half-close so the backend sees EOF on its read side.
		if tc, ok := backend.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// backend → client: optionally delayed and truncated.
	go func() {
		if p.Delay > 0 {
			time.Sleep(p.Delay)
		}
		if truncate {
			_, _ = io.CopyN(client, backend, int64(p.TruncateBytes))
			p.Truncated.Add(1)
			// Cut the connection mid-response: the client sees an
			// unexpected EOF / reset on the in-flight request.
			_ = client.Close()
			_ = backend.Close()
		} else {
			_, _ = io.Copy(client, backend)
			if tc, ok := client.(*net.TCPConn); ok {
				_ = tc.CloseWrite()
			}
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}

package faulty

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRoundTripperFailsEveryNth(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	rt := &RoundTripper{FailEvery: 3}
	c := &http.Client{Transport: rt}
	var failed, okCount int
	for i := 0; i < 9; i++ {
		resp, err := c.Get(ts.URL)
		if err != nil {
			if !errors.Is(err, ErrInjectedReset) {
				t.Fatalf("request %d: unexpected error %v", i, err)
			}
			failed++
			continue
		}
		resp.Body.Close()
		okCount++
	}
	if failed != 3 || okCount != 6 {
		t.Errorf("failed=%d ok=%d, want 3/6 (deterministic every-3rd schedule)", failed, okCount)
	}
	if rt.Failed.Load() != 3 || rt.Forwarded.Load() != 6 {
		t.Errorf("counters failed=%d forwarded=%d, want 3/6", rt.Failed.Load(), rt.Forwarded.Load())
	}
}

func TestProxyDropsAndTruncatesDeterministically(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 4096))
	}))
	defer ts.Close()
	p := &Proxy{
		Target:        strings.TrimPrefix(ts.URL, "http://"),
		DropEvery:     4,
		TruncateEvery: 3,
	}
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var transportErrs, okCount int
	for i := 0; i < 12; i++ {
		// One connection per request: disable keep-alive so the per-connection
		// fault schedule maps 1:1 onto requests.
		c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
		resp, err := c.Get("http://" + addr)
		if err != nil {
			transportErrs++
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || len(body) != 4096 {
			transportErrs++
			continue
		}
		okCount++
	}
	// Connections 3,6,9,12 truncate; 4,8,12 drop (12 matches both → drop
	// takes precedence). 6 faulted connections, 6 clean.
	if p.Dropped.Load() != 3 {
		t.Errorf("dropped = %d, want 3", p.Dropped.Load())
	}
	if p.Truncated.Load() != 3 {
		t.Errorf("truncated = %d, want 3", p.Truncated.Load())
	}
	if okCount != 6 || transportErrs != 6 {
		t.Errorf("ok=%d errs=%d, want 6/6", okCount, transportErrs)
	}
}

func TestProxyForwardsCleanlyWithoutFaults(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(w, r.Body)
	}))
	defer ts.Close()
	p := &Proxy{Target: strings.TrimPrefix(ts.URL, "http://")}
	addr, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	resp, err := http.Post("http://"+addr, "text/plain", strings.NewReader("echo me"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "echo me" {
		t.Errorf("proxied echo = %q", body)
	}
}

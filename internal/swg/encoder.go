// Package swg implements the paper's marginal-constrained sliced Wasserstein
// generator (M-SWG, Sec 5): a generator network trained to produce
// population tuples whose marginals match the ground-truth population
// marginals while staying on the manifold described by the biased sample.
//
// The loss (paper Eq. 1) is
//
//	Σ_{i∈I1} W(P_i, Q_i)                       exact 1-D Wasserstein terms
//	+ (1/p) Σ_{{i,j}∈I2} Σ_{ω∈Ω} W(P^{ij}_ω, Q^{ij}_ω)   sliced 2-D terms
//	+ λ E_{x∼G} min_{y∈S} ‖x − y‖²              sample-proximity term
//
// where the projection set Ω is fixed at model construction ("assume we have
// a set of p linear projections ω ∈ Ω randomly generated and normalized to
// be on the unit sphere"). Because Ω is fixed and the batch size is fixed,
// every projected target quantile vector is precomputed once, making each
// training step sorting-dominated.
package swg

import (
	"fmt"
	"math"
	"strings"

	"mosaic/internal/marginal"
	"mosaic/internal/schema"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// AttrSpec describes how one attribute is encoded into generator dimensions:
// continuous attributes scale to [0,1] in one dimension; categorical
// attributes one-hot encode into one dimension per distinct value (paper
// Sec 5.3: "we one-hot encode the categorical variables and scale all
// attributes to be between 0 and 1").
type AttrSpec struct {
	Name        string
	Kind        value.Kind
	Categorical bool
	Min, Max    float64       // continuous scaling range
	Cats        []value.Value // categorical levels, in first-seen order
	catIdx      map[string]int
	Offset      int // first encoded column
	Width       int // 1 for continuous, len(Cats) for categorical
}

// Encoder maps sample rows to encoded vectors and generated vectors back to
// rows.
type Encoder struct {
	Schema *schema.Schema
	Attrs  []AttrSpec
	Dim    int
}

// BuildEncoder derives encodings from the sample schema, widening continuous
// ranges and categorical levels with every value observed in the marginals
// (the generator must be able to emit population values absent from the
// biased sample — e.g. the AOL tuples of the paper's Sec 2 example).
func BuildEncoder(s *table.Table, marginals []*marginal.Marginal) (*Encoder, error) {
	sc := s.Schema()
	enc := &Encoder{Schema: sc}
	specs := make([]AttrSpec, sc.Len())
	for i := 0; i < sc.Len(); i++ {
		a := sc.At(i)
		specs[i] = AttrSpec{
			Name:        a.Name,
			Kind:        a.Kind,
			Categorical: a.Kind == value.KindText || a.Kind == value.KindBool,
			Min:         math.Inf(1),
			Max:         math.Inf(-1),
			catIdx:      map[string]int{},
		}
	}
	observe := func(i int, v value.Value) error {
		sp := &specs[i]
		if v.IsNull() {
			return fmt.Errorf("swg: NULL in attribute %q; M-SWG requires complete tuples", sp.Name)
		}
		if sp.Categorical {
			k := v.HashKey()
			if _, ok := sp.catIdx[k]; !ok {
				sp.catIdx[k] = len(sp.Cats)
				sp.Cats = append(sp.Cats, v)
			}
			return nil
		}
		f, err := v.Float64()
		if err != nil {
			return fmt.Errorf("swg: attribute %q: %v", sp.Name, err)
		}
		if f < sp.Min {
			sp.Min = f
		}
		if f > sp.Max {
			sp.Max = f
		}
		return nil
	}
	var scanErr error
	s.Scan(func(row []value.Value, _ float64) bool {
		for i, v := range row {
			if err := observe(i, v); err != nil {
				scanErr = err
				return false
			}
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	for _, m := range marginals {
		idxs := make([]int, len(m.Attrs))
		for ai, a := range m.Attrs {
			j, ok := sc.Index(a)
			if !ok {
				return nil, fmt.Errorf("swg: marginal %s attribute %q not in sample schema", m.Name, a)
			}
			idxs[ai] = j
		}
		for _, c := range m.Cells() {
			for ai, v := range c.Vals {
				if err := observe(idxs[ai], v); err != nil {
					return nil, err
				}
			}
		}
	}
	off := 0
	for i := range specs {
		sp := &specs[i]
		if sp.Categorical {
			if len(sp.Cats) == 0 {
				return nil, fmt.Errorf("swg: categorical attribute %q has no observed values", sp.Name)
			}
			sp.Width = len(sp.Cats)
		} else {
			if math.IsInf(sp.Min, 1) {
				return nil, fmt.Errorf("swg: continuous attribute %q has no observed values", sp.Name)
			}
			if sp.Max == sp.Min {
				sp.Max = sp.Min + 1 // degenerate range: encode constantly at 0
			}
			sp.Width = 1
		}
		sp.Offset = off
		off += sp.Width
	}
	enc.Attrs = specs
	enc.Dim = off
	return enc, nil
}

// AttrSpecFor returns the spec for the named attribute.
func (e *Encoder) AttrSpecFor(name string) (*AttrSpec, error) {
	for i := range e.Attrs {
		if strings.EqualFold(e.Attrs[i].Name, name) {
			return &e.Attrs[i], nil
		}
	}
	return nil, fmt.Errorf("swg: no attribute %q in encoder", name)
}

// EncodeValue writes the encoding of v for spec sp into dst[sp.Offset:].
func (e *Encoder) EncodeValue(sp *AttrSpec, v value.Value, dst []float64) error {
	if sp.Categorical {
		idx, ok := sp.catIdx[v.HashKey()]
		if !ok {
			return fmt.Errorf("swg: unseen categorical value %s for %q", v, sp.Name)
		}
		for j := 0; j < sp.Width; j++ {
			dst[sp.Offset+j] = 0
		}
		dst[sp.Offset+idx] = 1
		return nil
	}
	f, err := v.Float64()
	if err != nil {
		return err
	}
	dst[sp.Offset] = (f - sp.Min) / (sp.Max - sp.Min)
	return nil
}

// EncodeRow encodes a full sample row.
func (e *Encoder) EncodeRow(row []value.Value) ([]float64, error) {
	out := make([]float64, e.Dim)
	for i := range e.Attrs {
		if err := e.EncodeValue(&e.Attrs[i], row[i], out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EncodeTable encodes every row of the sample. It runs column-at-a-time
// over the table's snapshot: categorical TEXT attributes one-hot directly
// from dictionary codes through a precomputed code→level table instead of
// re-hashing strings per row, and continuous attributes scale straight off
// the typed column vectors. Results are element-identical to encoding each
// row with EncodeRow.
func (e *Encoder) EncodeTable(t *table.Table) ([][]float64, error) {
	snap := t.Snapshot()
	n := snap.Len()
	out := make([][]float64, n)
	flat := make([]float64, n*e.Dim)
	for i := range out {
		out[i] = flat[i*e.Dim : (i+1)*e.Dim : (i+1)*e.Dim]
	}
	for ai := range e.Attrs {
		sp := &e.Attrs[ai]
		col := snap.Col(ai)
		if err := e.encodeColumn(sp, snap, col, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// encodeColumn fills one attribute's encoded block for every row.
func (e *Encoder) encodeColumn(sp *AttrSpec, snap *table.Snapshot, col *table.Column, out [][]float64) error {
	n := len(out)
	if !sp.Categorical {
		// Continuous: (f − Min)/(Max − Min), NULL scaling to NaN exactly as
		// value.Float64 coerces NULL.
		for i := 0; i < n; i++ {
			var f float64
			switch {
			case col.Null(i):
				f = math.NaN()
			case col.Kind == value.KindInt:
				f = float64(col.Ints[i])
			default:
				f = col.Floats[i]
			}
			out[i][sp.Offset] = (f - sp.Min) / (sp.Max - sp.Min)
		}
		return nil
	}
	if col.Kind == value.KindBool {
		tIdx, tOK := sp.catIdx[value.Bool(true).HashKey()]
		fIdx, fOK := sp.catIdx[value.Bool(false).HashKey()]
		for i := 0; i < n; i++ {
			if col.Null(i) {
				return fmt.Errorf("swg: unseen categorical value %s for %q", value.Null(), sp.Name)
			}
			if col.Bools[i] {
				if !tOK {
					return fmt.Errorf("swg: unseen categorical value %s for %q", value.Bool(true), sp.Name)
				}
				out[i][sp.Offset+tIdx] = 1
			} else {
				if !fOK {
					return fmt.Errorf("swg: unseen categorical value %s for %q", value.Bool(false), sp.Name)
				}
				out[i][sp.Offset+fIdx] = 1
			}
		}
		return nil
	}
	// TEXT: resolve every dictionary code to its one-hot level once.
	strs := snap.DictStrings()
	codeToCat := make([]int32, len(strs))
	for c, s := range strs {
		if idx, ok := sp.catIdx[value.Text(s).HashKey()]; ok {
			codeToCat[c] = int32(idx)
		} else {
			codeToCat[c] = -1
		}
	}
	for i := 0; i < n; i++ {
		if col.Null(i) {
			return fmt.Errorf("swg: unseen categorical value %s for %q", value.Null(), sp.Name)
		}
		code := col.Codes[i]
		cat := codeToCat[code]
		if cat < 0 {
			return fmt.Errorf("swg: unseen categorical value %s for %q", value.Text(strs[code]), sp.Name)
		}
		out[i][sp.Offset+int(cat)] = 1
	}
	return nil
}

// DecodeRow converts one generated vector back into a tuple, forcing
// categorical blocks to their argmax level ("we … only force the output to
// be binary for data generation") and clamping/unscaling continuous values.
// Integer attributes round to the nearest whole number (the flights data's
// continuous attributes "have been rounded to whole numbers").
func (e *Encoder) DecodeRow(vec []float64) ([]value.Value, error) {
	if len(vec) != e.Dim {
		return nil, fmt.Errorf("swg: vector has %d dims, encoder has %d", len(vec), e.Dim)
	}
	out := make([]value.Value, len(e.Attrs))
	for i := range e.Attrs {
		sp := &e.Attrs[i]
		if sp.Categorical {
			best, bestV := 0, math.Inf(-1)
			for j := 0; j < sp.Width; j++ {
				if v := vec[sp.Offset+j]; v > bestV {
					bestV = v
					best = j
				}
			}
			out[i] = sp.Cats[best]
			continue
		}
		f := vec[sp.Offset]
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		raw := sp.Min + f*(sp.Max-sp.Min)
		if sp.Kind == value.KindInt {
			out[i] = value.Int(int64(math.Round(raw)))
		} else {
			out[i] = value.Float(raw)
		}
	}
	return out, nil
}

// SubspaceCols returns the encoded column indices spanned by the given
// attributes (a marginal's encoded subspace).
func (e *Encoder) SubspaceCols(attrs []string) ([]int, error) {
	var cols []int
	for _, a := range attrs {
		sp, err := e.AttrSpecFor(a)
		if err != nil {
			return nil, err
		}
		for j := 0; j < sp.Width; j++ {
			cols = append(cols, sp.Offset+j)
		}
	}
	return cols, nil
}

// SoftmaxBlocks returns the [start,end) encoded ranges of all categorical
// attributes, for the generator's softmax head.
func (e *Encoder) SoftmaxBlocks() [][2]int {
	var out [][2]int
	for i := range e.Attrs {
		sp := &e.Attrs[i]
		if sp.Categorical {
			out = append(out, [2]int{sp.Offset, sp.Offset + sp.Width})
		}
	}
	return out
}

// EncodeCellPoint encodes one marginal cell into the marginal's subspace
// coordinates (in the order produced by SubspaceCols for m.Attrs).
func (e *Encoder) EncodeCellPoint(attrs []string, vals []value.Value) ([]float64, error) {
	var out []float64
	for ai, a := range attrs {
		sp, err := e.AttrSpecFor(a)
		if err != nil {
			return nil, err
		}
		buf := make([]float64, e.Dim)
		if err := e.EncodeValue(sp, vals[ai], buf); err != nil {
			return nil, err
		}
		out = append(out, buf[sp.Offset:sp.Offset+sp.Width]...)
	}
	return out, nil
}

package swg

import (
	"math"
	"math/rand"
	"testing"

	"mosaic/internal/marginal"
	"mosaic/internal/schema"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// parallelWorld builds a model over a 2-D world with a 2-D marginal so the
// sliced (multi-projection) path is exercised.
func parallelWorld(t testing.TB, workers int) *Model {
	sc := schema.MustNew(
		schema.Attribute{Name: "x", Kind: value.KindFloat},
		schema.Attribute{Name: "y", Kind: value.KindFloat},
	)
	rng := rand.New(rand.NewSource(3))
	tbl := table.New("s", sc)
	for i := 0; i < 300; i++ {
		x := rng.Float64()
		_ = tbl.Append([]value.Value{value.Float(x), value.Float(x*0.5 + rng.Float64()*0.1)})
	}
	m, err := marginal.FromTableBinned("m", tbl, []string{"x", "y"},
		map[string]float64{"x": 0.1, "y": 0.1})
	if err != nil {
		t.Fatal(err)
	}
	model, err := New(tbl, []*marginal.Marginal{m}, Config{
		Hidden: []int{16, 16}, Latent: 2, BatchSize: 128,
		Projections: 24, Epochs: 2, StepsPerEpoch: 2,
		Lambda: 0.05, Workers: workers, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestParallelLossMatchesSerial(t *testing.T) {
	// The shard partition is fixed and reduced in shard order, so the loss
	// and gradient must be BIT-identical — not merely close — for every
	// worker count.
	serial := parallelWorld(t, 1)
	z := serial.latentBatch(serial.cfg.BatchSize)
	out := serial.Net.Forward(z, false)
	l1, g1, err := serial.lossAndGrad(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		parallel := parallelWorld(t, workers)
		// Same seed → identical nets and identical latent draws.
		z2 := parallel.latentBatch(parallel.cfg.BatchSize)
		out2 := parallel.Net.Forward(z2, false)
		l2, g2, err := parallel.lossAndGrad(out2)
		if err != nil {
			t.Fatal(err)
		}
		if l1 != l2 {
			t.Errorf("workers=%d: loss %v differs from serial %v", workers, l2, l1)
		}
		for r := range g1 {
			for c := range g1[r] {
				if g1[r][c] != g2[r][c] {
					t.Fatalf("workers=%d: grad[%d][%d] %v differs from serial %v", workers, r, c, g2[r][c], g1[r][c])
				}
			}
		}
	}
}

func TestTrainedModelIdenticalAcrossWorkerCounts(t *testing.T) {
	// Full pipeline determinism: training and seeded generation give
	// bit-identical outputs for Workers = 1, 4, 8.
	ref := parallelWorld(t, 1)
	if err := ref.Train(); err != nil {
		t.Fatal(err)
	}
	refGen := ref.GenerateEncodedSeeded(64, 99)
	for _, workers := range []int{4, 8} {
		m := parallelWorld(t, workers)
		if err := m.Train(); err != nil {
			t.Fatal(err)
		}
		for i := range ref.History {
			if ref.History[i] != m.History[i] {
				t.Fatalf("workers=%d: epoch %d loss %v differs from serial %v", workers, i, m.History[i], ref.History[i])
			}
		}
		gen := m.GenerateEncodedSeeded(64, 99)
		for r := range refGen {
			for c := range refGen[r] {
				if refGen[r][c] != gen[r][c] {
					t.Fatalf("workers=%d: generated[%d][%d] %v differs from serial %v", workers, r, c, gen[r][c], refGen[r][c])
				}
			}
		}
	}
}

func TestGenerateSeededIndependentOfTrainingRNG(t *testing.T) {
	m := parallelWorld(t, 1)
	if err := m.Train(); err != nil {
		t.Fatal(err)
	}
	a := m.GenerateEncodedSeeded(32, 7)
	// Advancing the model's own RNG stream must not change seeded output.
	_ = m.GenerateEncoded(32)
	b := m.GenerateEncodedSeeded(32, 7)
	for r := range a {
		for c := range a[r] {
			if a[r][c] != b[r][c] {
				t.Fatalf("seeded generation drifted at [%d][%d]: %v vs %v", r, c, a[r][c], b[r][c])
			}
		}
	}
	if math.IsNaN(a[0][0]) {
		t.Fatal("NaN in generated output")
	}
}

func TestParallelTrainingIsDeterministic(t *testing.T) {
	a := parallelWorld(t, 4)
	b := parallelWorld(t, 4)
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(); err != nil {
		t.Fatal(err)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("epoch %d: history %g vs %g (parallel run nondeterministic)", i, a.History[i], b.History[i])
		}
	}
}

func BenchmarkTrainStepSerial(b *testing.B) {
	model := parallelWorld(b, 1)
	z := model.latentBatch(model.cfg.BatchSize)
	out := model.Net.Forward(z, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := model.lossAndGrad(out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainStepParallel4(b *testing.B) {
	model := parallelWorld(b, 4)
	z := model.latentBatch(model.cfg.BatchSize)
	out := model.Net.Forward(z, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := model.lossAndGrad(out); err != nil {
			b.Fatal(err)
		}
	}
}

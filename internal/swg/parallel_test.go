package swg

import (
	"math"
	"math/rand"
	"testing"

	"mosaic/internal/marginal"
	"mosaic/internal/schema"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// parallelWorld builds a model over a 2-D world with a 2-D marginal so the
// sliced (multi-projection) path is exercised.
func parallelWorld(t testing.TB, workers int) *Model {
	sc := schema.MustNew(
		schema.Attribute{Name: "x", Kind: value.KindFloat},
		schema.Attribute{Name: "y", Kind: value.KindFloat},
	)
	rng := rand.New(rand.NewSource(3))
	tbl := table.New("s", sc)
	for i := 0; i < 300; i++ {
		x := rng.Float64()
		_ = tbl.Append([]value.Value{value.Float(x), value.Float(x*0.5 + rng.Float64()*0.1)})
	}
	m, err := marginal.FromTableBinned("m", tbl, []string{"x", "y"},
		map[string]float64{"x": 0.1, "y": 0.1})
	if err != nil {
		t.Fatal(err)
	}
	model, err := New(tbl, []*marginal.Marginal{m}, Config{
		Hidden: []int{16, 16}, Latent: 2, BatchSize: 128,
		Projections: 24, Epochs: 2, StepsPerEpoch: 2,
		Lambda: 0.05, Workers: workers, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestParallelLossMatchesSerial(t *testing.T) {
	serial := parallelWorld(t, 1)
	parallel := parallelWorld(t, 4)
	// Same seed → identical nets and identical latent draws.
	z := serial.latentBatch(serial.cfg.BatchSize)
	out := serial.Net.Forward(z, false)
	l1, g1, err := serial.lossAndGrad(out)
	if err != nil {
		t.Fatal(err)
	}
	z2 := parallel.latentBatch(parallel.cfg.BatchSize)
	out2 := parallel.Net.Forward(z2, false)
	l2, g2, err := parallel.lossAndGrad(out2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l1-l2) > 1e-9*math.Max(1, math.Abs(l1)) {
		t.Errorf("loss serial %g vs parallel %g", l1, l2)
	}
	for r := range g1 {
		for c := range g1[r] {
			if math.Abs(g1[r][c]-g2[r][c]) > 1e-9 {
				t.Fatalf("grad[%d][%d] serial %g vs parallel %g", r, c, g1[r][c], g2[r][c])
			}
		}
	}
}

func TestParallelTrainingIsDeterministic(t *testing.T) {
	a := parallelWorld(t, 4)
	b := parallelWorld(t, 4)
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	if err := b.Train(); err != nil {
		t.Fatal(err)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("epoch %d: history %g vs %g (parallel run nondeterministic)", i, a.History[i], b.History[i])
		}
	}
}

func BenchmarkTrainStepSerial(b *testing.B) {
	model := parallelWorld(b, 1)
	z := model.latentBatch(model.cfg.BatchSize)
	out := model.Net.Forward(z, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := model.lossAndGrad(out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainStepParallel4(b *testing.B) {
	model := parallelWorld(b, 4)
	z := model.latentBatch(model.cfg.BatchSize)
	out := model.Net.Forward(z, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := model.lossAndGrad(out); err != nil {
			b.Fatal(err)
		}
	}
}

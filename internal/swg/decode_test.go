package swg

import (
	"testing"

	"mosaic/internal/marginal"
	"mosaic/internal/schema"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// decodeWorld builds a model over every column kind (TEXT, FLOAT, INT, BOOL)
// so the columnar decode path exercises all of its branches. The net is
// untrained — decode fidelity does not depend on training.
func decodeWorld(t *testing.T) *Model {
	t.Helper()
	sc := schema.MustNew(
		schema.Attribute{Name: "c", Kind: value.KindText},
		schema.Attribute{Name: "x", Kind: value.KindFloat},
		schema.Attribute{Name: "k", Kind: value.KindInt},
		schema.Attribute{Name: "b", Kind: value.KindBool},
		// A second TEXT attribute: the two decode paths intern dictionary
		// levels in different orders once several TEXT columns exist, and
		// the equivalence must hold regardless.
		schema.Attribute{Name: "d", Kind: value.KindText},
	)
	tbl := table.New("s", sc)
	rows := []struct {
		c string
		x float64
		k int64
		b bool
		d string
	}{
		{"a", 0.1, 3, true, "u"}, {"b", 0.9, 7, false, "v"}, {"a", 0.4, 5, true, "w"},
		{"c", 0.6, 1, false, "u"}, {"b", 0.2, 9, true, "v"},
	}
	for _, r := range rows {
		if err := tbl.Append([]value.Value{value.Text(r.c), value.Float(r.x), value.Int(r.k), value.Bool(r.b), value.Text(r.d)}); err != nil {
			t.Fatal(err)
		}
	}
	mc := catMarginal(t, "mc", "c", map[string]float64{"a": 5, "b": 3, "c": 2, "z": 4})
	mx := oneDMarginal(t, "mx", "x", map[float64]float64{0: 7, 1: 7})
	m, err := New(tbl, []*marginal.Marginal{mc, mx}, Config{
		Hidden: []int{6}, Latent: 2, Projections: 2, Epochs: 1, BatchSize: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// requireTablesIdentical asserts two tables agree on schema, rows (values
// and kinds), weights, typed columns, and dictionary codes.
func requireTablesIdentical(t *testing.T, a, b *table.Table) {
	t.Helper()
	if !a.Schema().Equal(b.Schema()) {
		t.Fatalf("schema mismatch: %s vs %s", a.Schema(), b.Schema())
	}
	if a.Len() != b.Len() {
		t.Fatalf("length mismatch: %d vs %d", a.Len(), b.Len())
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	for i := 0; i < sa.Len(); i++ {
		if sa.Weight(i) != sb.Weight(i) {
			t.Fatalf("row %d: weight %g vs %g", i, sa.Weight(i), sb.Weight(i))
		}
		ra, rb := sa.Row(i), sb.Row(i)
		for j := range ra {
			if ra[j].Kind() != rb[j].Kind() || !value.Equal(ra[j], rb[j]) {
				t.Fatalf("row %d col %d: %s (%s) vs %s (%s)", i, j, ra[j], ra[j].Kind(), rb[j], rb[j].Kind())
			}
		}
	}
	for j := 0; j < sa.Schema().Len(); j++ {
		ca, cb := sa.Col(j), sb.Col(j)
		if ca.Kind != cb.Kind || ca.HasNulls() != cb.HasNulls() {
			t.Fatalf("col %d: kind/null mismatch", j)
		}
		for i := 0; i < sa.Len(); i++ {
			same := true
			switch ca.Kind {
			case value.KindInt:
				same = ca.Ints[i] == cb.Ints[i]
			case value.KindFloat:
				same = ca.Floats[i] == cb.Floats[i]
			case value.KindBool:
				same = ca.Bools[i] == cb.Bools[i]
			case value.KindText:
				// Compare resolved strings, not raw codes: code NUMBERING is
				// allowed to differ across the two paths when the schema has
				// several TEXT attributes (per-attribute vs row-major
				// interning order); the stored VALUES must match exactly.
				same = sa.DictStr(ca.Codes[i]) == sb.DictStr(cb.Codes[i])
			}
			if !same {
				t.Fatalf("col %d row %d: typed value mismatch", j, i)
			}
		}
	}
}

// TestDecodeTableMatchesRowAppend pins the column-native generation path to
// the retired row-append reference, value for value, code for code.
func TestDecodeTableMatchesRowAppend(t *testing.T) {
	m := decodeWorld(t)
	enc := m.GenerateEncodedSeeded(300, 42)
	colT, err := m.DecodeTable("g", enc, 1)
	if err != nil {
		t.Fatal(err)
	}
	rowT, err := m.DecodeTableRowAppend("g", enc)
	if err != nil {
		t.Fatal(err)
	}
	requireTablesIdentical(t, colT, rowT)
}

// TestGenerateSeededWeightedMatchesResetWeights pins build-time weighting to
// the old generate-then-ResetWeights sequence.
func TestGenerateSeededWeightedMatchesResetWeights(t *testing.T) {
	m := decodeWorld(t)
	got, err := m.GenerateSeededWeighted("g", 120, 7, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.DecodeTableRowAppend("g", m.GenerateEncodedSeeded(120, 7))
	if err != nil {
		t.Fatal(err)
	}
	if err := want.ResetWeights(2.5); err != nil {
		t.Fatal(err)
	}
	requireTablesIdentical(t, got, want)

	if _, err := m.GenerateSeededWeighted("g", 3, 7, -1); err == nil {
		t.Fatal("negative weight must be rejected")
	}
}

// TestDecodeTableUncoercibleLevel pins the lazy error behavior: a
// categorical level that cannot coerce to the attribute kind errors on both
// paths with the same message, and only when some row actually selects it.
func TestDecodeTableUncoercibleLevel(t *testing.T) {
	sc := schema.MustNew(schema.Attribute{Name: "c", Kind: value.KindText})
	tbl := table.New("s", sc)
	for _, s := range []string{"a", "b"} {
		if err := tbl.Append([]value.Value{value.Text(s)}); err != nil {
			t.Fatal(err)
		}
	}
	// The marginal smuggles an INT level into the TEXT attribute; decoding a
	// row that argmaxes it must fail exactly like row-append validation did.
	mBad, err := marginal.New("mc", []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []value.Value{value.Text("a"), value.Text("b"), value.Int(99)} {
		if err := mBad.Add([]value.Value{v}, 1); err != nil {
			t.Fatal(err)
		}
	}
	m, err := New(tbl, []*marginal.Marginal{mBad}, Config{Hidden: []int{4}, Latent: 2, Projections: 2, Epochs: 1, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := m.Enc.AttrSpecFor("c")
	if err != nil {
		t.Fatal(err)
	}
	badIdx := -1
	for i, cv := range sp.Cats {
		if cv.Kind() == value.KindInt {
			badIdx = i
		}
	}
	if badIdx < 0 {
		t.Fatal("INT level not in encoder cats")
	}
	goodVec := make([]float64, m.Enc.Dim)
	goodVec[sp.Offset] = 5 // argmax at a coercible level
	badVec := make([]float64, m.Enc.Dim)
	badVec[sp.Offset+badIdx] = 5

	// Good rows only: both paths succeed identically.
	colT, errCol := m.DecodeTable("g", [][]float64{goodVec, goodVec}, 1)
	rowT, errRow := m.DecodeTableRowAppend("g", [][]float64{goodVec, goodVec})
	if errCol != nil || errRow != nil {
		t.Fatalf("good rows errored: col=%v row=%v", errCol, errRow)
	}
	requireTablesIdentical(t, colT, rowT)

	// A row selecting the bad level: both paths fail with the same message.
	_, errCol = m.DecodeTable("g", [][]float64{goodVec, badVec}, 1)
	_, errRow = m.DecodeTableRowAppend("g", [][]float64{goodVec, badVec})
	if errCol == nil || errRow == nil {
		t.Fatalf("bad level should error: col=%v row=%v", errCol, errRow)
	}
	if errCol.Error() != errRow.Error() {
		t.Fatalf("error mismatch:\n  col: %v\n  row: %v", errCol, errRow)
	}
}

// TestDecodeTableRejectsMalformedVector: a wrong-width encoded vector must
// error (as the row-append path always did), never panic.
func TestDecodeTableRejectsMalformedVector(t *testing.T) {
	m := decodeWorld(t)
	bad := [][]float64{make([]float64, m.Enc.Dim), {0.5}}
	_, errCol := m.DecodeTable("g", bad, 1)
	_, errRow := m.DecodeTableRowAppend("g", bad)
	if errCol == nil || errRow == nil {
		t.Fatalf("short vector should error: col=%v row=%v", errCol, errRow)
	}
	if errCol.Error() != errRow.Error() {
		t.Fatalf("error mismatch:\n  col: %v\n  row: %v", errCol, errRow)
	}
}

package swg

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"mosaic/internal/marginal"
	"mosaic/internal/nn"
	"mosaic/internal/table"
	"mosaic/internal/value"
	"mosaic/internal/wasserstein"
)

// Config tunes an M-SWG. Zero fields take the paper's defaults where the
// paper gives one.
type Config struct {
	// Hidden layer widths. Default: three layers of 100 (the paper's
	// synthetic-data topology).
	Hidden []int
	// Latent is the generator input dimension ℓ. Default 2; the flights
	// experiment sets it to the encoded dimensionality.
	Latent int
	// Lambda trades off marginal fit against sample structure (Eq. 1).
	// Default 0.04 (the paper's synthetic-data setting).
	Lambda float64
	// Projections is p, the number of fixed random projections per ≥2-D
	// marginal subspace. Default 100.
	Projections int
	// BatchSize is the training batch. Default 500.
	BatchSize int
	// LR is the initial Adam learning rate. Default 0.001.
	LR float64
	// Epochs is the number of training epochs. Default 20.
	Epochs int
	// StepsPerEpoch is training steps per epoch; default max(1, |S|/batch)
	// ("each epoch is one pass over the population marginals").
	StepsPerEpoch int
	// ProximitySubsample caps the encoded sample rows scanned per batch for
	// the λ term; 0 means 1024. The term is an expectation over G, so a
	// random subsample is an unbiased stochastic estimate.
	ProximitySubsample int
	// OneDWeight is the coefficient on the exact 1-D terms (the paper's k).
	// Default 1.
	OneDWeight float64
	// PlateauPatience is the number of epochs without loss improvement
	// before the learning rate decays by 10× ("decreases by a factor of 10
	// if a plateau is reached"). Default 5.
	PlateauPatience int
	// Workers parallelizes the loss computation over projections and
	// proximity rows. 0/1 = serial. Work is partitioned into a fixed number
	// of shards reduced in shard order, so losses, gradients, and trained
	// weights are bit-identical for every Workers value and scheduling.
	Workers int
	// Seed drives all model randomness. Default 1.
	Seed int64
}

func (c Config) withDefaults(enc *Encoder) Config {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{100, 100, 100}
	}
	if c.Latent <= 0 {
		c.Latent = 2
	}
	if c.Lambda == 0 {
		c.Lambda = 0.04
	}
	if c.Projections <= 0 {
		c.Projections = 100
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 500
	}
	if c.LR <= 0 {
		c.LR = 0.001
	}
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.ProximitySubsample <= 0 {
		c.ProximitySubsample = 1024
	}
	if c.OneDWeight == 0 {
		c.OneDWeight = 1
	}
	if c.PlateauPatience <= 0 {
		c.PlateauPatience = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	_ = enc
	return c
}

// lossTerm is one precompiled marginal constraint: the encoded subspace
// columns, the fixed projection directions, and — because both Ω and the
// batch size are fixed — the precomputed target quantiles per direction.
type lossTerm struct {
	name    string
	cols    []int
	dirs    [][]float64
	targets [][]float64 // [dir][batch] target quantiles
	weight  float64     // applied after averaging over dirs
}

// Model is a trained or trainable M-SWG.
type Model struct {
	Enc    *Encoder
	Net    *nn.Network
	cfg    Config
	rng    *rand.Rand
	terms  []lossTerm
	sample [][]float64 // encoded sample rows (the manifold anchor set)
	adam   *nn.Adam
	// History records per-epoch mean training loss.
	History []float64
	trained bool
}

// New compiles an M-SWG for the sample and marginal set. Marginals whose
// encoded subspace is one-dimensional get exact W1 terms; wider subspaces
// (2-D marginals, or 1-D marginals over one-hot categorical attributes) get
// sliced terms with cfg.Projections fixed unit directions.
func New(sample *table.Table, marginals []*marginal.Marginal, cfg Config) (*Model, error) {
	if sample.Len() == 0 {
		return nil, fmt.Errorf("swg: empty sample %s", sample.Name())
	}
	if len(marginals) == 0 {
		return nil, fmt.Errorf("swg: no marginals; the M-SWG needs population metadata")
	}
	enc, err := BuildEncoder(sample, marginals)
	if err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(enc)
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{
		Enc: enc,
		cfg: cfg,
		rng: rng,
	}
	m.sample, err = enc.EncodeTable(sample)
	if err != nil {
		return nil, err
	}
	if cfg.StepsPerEpoch <= 0 {
		cfg.StepsPerEpoch = len(m.sample) / cfg.BatchSize
		if cfg.StepsPerEpoch < 1 {
			cfg.StepsPerEpoch = 1
		}
		m.cfg = cfg
	}
	for _, mg := range marginals {
		term, err := m.compileTerm(mg)
		if err != nil {
			return nil, err
		}
		m.terms = append(m.terms, term)
	}
	m.Net = nn.NewMLP(cfg.Latent, cfg.Hidden, enc.Dim, enc.SoftmaxBlocks(), rng)
	m.adam = nn.NewAdam(cfg.LR)
	return m, nil
}

func (m *Model) compileTerm(mg *marginal.Marginal) (lossTerm, error) {
	cols, err := m.Enc.SubspaceCols(mg.Attrs)
	if err != nil {
		return lossTerm{}, err
	}
	cells := mg.Cells()
	points := make([][]float64, len(cells))
	weights := make([]float64, len(cells))
	for i, c := range cells {
		p, err := m.Enc.EncodeCellPoint(mg.Attrs, c.Vals)
		if err != nil {
			return lossTerm{}, err
		}
		points[i] = p
		weights[i] = c.Count
	}
	t := lossTerm{name: mg.Name, cols: cols}
	var dirs [][]float64
	if len(cols) == 1 {
		dirs = [][]float64{{1}}
		t.weight = m.cfg.OneDWeight
	} else {
		dirs = make([][]float64, m.cfg.Projections)
		for i := range dirs {
			dirs[i] = wasserstein.RandomUnitVector(m.rng, len(cols))
		}
		t.weight = 1 // the 1/p factor is the average over dirs
	}
	t.dirs = dirs
	t.targets = make([][]float64, len(dirs))
	for di, d := range dirs {
		proj := make([]float64, len(points))
		for pi, p := range points {
			var s float64
			for j, dj := range d {
				s += p[j] * dj
			}
			proj[pi] = s
		}
		wd, err := wasserstein.NewWeighted(proj, weights)
		if err != nil {
			return lossTerm{}, fmt.Errorf("swg: marginal %s: %v", mg.Name, err)
		}
		t.targets[di] = wd.Quantiles(m.cfg.BatchSize)
	}
	return t, nil
}

// latentBatch draws a batch of N(0, I_ℓ) latent vectors from the model's
// training RNG stream.
func (m *Model) latentBatch(n int) [][]float64 {
	return latentBatchFrom(m.rng, n, m.cfg.Latent)
}

// latentBatchFrom draws a batch of N(0, I_ℓ) latent vectors from rng.
func latentBatchFrom(rng *rand.Rand, n, latent int) [][]float64 {
	z := make([][]float64, n)
	for i := range z {
		row := make([]float64, latent)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		z[i] = row
	}
	return z
}

// gradShards is the fixed number of gradient accumulation partitions in
// lossAndGrad. The partition count does not depend on cfg.Workers and the
// shard buffers are always reduced in shard order, so the floating-point
// accumulation order — and therefore the loss, the gradient, and every
// downstream trained weight — is bit-identical for every worker count.
const gradShards = 16

// lossAndGrad computes Eq. 1 and its subgradient with respect to the
// generator output batch. With cfg.Workers > 1 the projection terms and the
// proximity rows are processed in parallel; the shard partition is static
// and independent of the worker count, so the result is bit-identical
// regardless of cfg.Workers and goroutine scheduling.
func (m *Model) lossAndGrad(out [][]float64) (float64, [][]float64, error) {
	n := len(out)
	grad := make([][]float64, n)
	for i := range grad {
		grad[i] = make([]float64, m.Enc.Dim)
	}

	// Flatten (term, dir) pairs into independent work items.
	type item struct {
		t  *lossTerm
		di int
	}
	var items []item
	for ti := range m.terms {
		t := &m.terms[ti]
		for di := range t.dirs {
			items = append(items, item{t: t, di: di})
		}
	}

	shards := gradShards
	if shards > len(items) {
		shards = len(items)
	}
	workers := m.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}

	itemLoss := make([]float64, len(items))
	shardErr := make([]error, shards)
	shardGrads := make([][][]float64, shards)
	process := func(s int) {
		dst := shardGrads[s]
		for ii := s; ii < len(items); ii += shards {
			it := items[ii]
			scale := it.t.weight / float64(len(it.t.dirs))
			dir := it.t.dirs[it.di]
			proj := wasserstein.ProjectCols(out, it.t.cols, dir)
			d, g, err := wasserstein.W1ToUniform(proj, it.t.targets[it.di])
			if err != nil {
				shardErr[s] = err
				return
			}
			itemLoss[ii] = scale * d
			for r, gr := range g {
				if gr == 0 {
					continue
				}
				gs := scale * gr
				row := dst[r]
				for j, c := range it.t.cols {
					row[c] += gs * dir[j]
				}
			}
		}
	}
	for s := 0; s < shards; s++ {
		buf := make([][]float64, n)
		flat := make([]float64, n*m.Enc.Dim)
		for i := range buf {
			buf[i] = flat[i*m.Enc.Dim : (i+1)*m.Enc.Dim]
		}
		shardGrads[s] = buf
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			process(s)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for s := w; s < shards; s += workers {
					process(s)
				}
			}(w)
		}
		wg.Wait()
	}
	for _, err := range shardErr {
		if err != nil {
			return 0, nil, err
		}
	}
	// Reduce in shard order: the same additions in the same order no matter
	// how many workers ran the shards.
	for s := 0; s < shards; s++ {
		for r := range grad {
			dst, src := grad[r], shardGrads[s][r]
			for c := range dst {
				dst[c] += src[c]
			}
		}
	}
	var loss float64
	for _, l := range itemLoss {
		loss += l
	}

	// Sample-proximity term: λ E_x min_y ||x − y||², estimated over a
	// random subsample of the encoded sample. Rows write disjoint gradient
	// entries, so row-parallelism is exact.
	if m.cfg.Lambda > 0 && len(m.sample) > 0 {
		sub := m.sample
		if len(sub) > m.cfg.ProximitySubsample {
			sub = make([][]float64, m.cfg.ProximitySubsample)
			for i := range sub {
				sub[i] = m.sample[m.rng.Intn(len(m.sample))]
			}
		}
		inv := 1 / float64(n)
		rowLoss := make([]float64, n)
		proxRow := func(r int) {
			x := out[r]
			best := math.Inf(1)
			var bestY []float64
			for _, y := range sub {
				var d float64
				for j := range x {
					diff := x[j] - y[j]
					d += diff * diff
					if d >= best {
						break
					}
				}
				if d < best {
					best = d
					bestY = y
				}
			}
			rowLoss[r] = m.cfg.Lambda * best * inv
			row := grad[r]
			for j := range x {
				row[j] += m.cfg.Lambda * 2 * (x[j] - bestY[j]) * inv
			}
		}
		if workers <= 1 {
			for r := range out {
				proxRow(r)
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := w; r < n; r += workers {
						proxRow(r)
					}
				}(w)
			}
			wg.Wait()
		}
		for _, l := range rowLoss {
			loss += l
		}
	}
	return loss, grad, nil
}

// Train runs the full training schedule: Adam with the paper's plateau
// learning-rate decay. It is idempotent to call once; further calls continue
// training from the current parameters.
func (m *Model) Train() error {
	return m.TrainContext(context.Background())
}

// TrainContext is Train with a cancellation context, checked before every
// training step (the finest deterministic unit of work). A cancelled training
// run returns ctx.Err() with the model left partially trained; callers that
// cache trained models must discard a cancelled model and retrain from a
// fresh one — training is a pure function of (sample, marginals, Config), so
// a from-scratch retrain reproduces the uncancelled weights bit for bit.
func (m *Model) TrainContext(ctx context.Context) error {
	best := math.Inf(1)
	sinceBest := 0
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		var sum float64
		for step := 0; step < m.cfg.StepsPerEpoch; step++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			z := m.latentBatch(m.cfg.BatchSize)
			out := m.Net.Forward(z, true)
			loss, grad, err := m.lossAndGrad(out)
			if err != nil {
				return err
			}
			m.Net.Backward(grad)
			m.adam.Step(m.Net.Params())
			sum += loss
		}
		mean := sum / float64(m.cfg.StepsPerEpoch)
		m.History = append(m.History, mean)
		if mean < best-1e-9 {
			best = mean
			sinceBest = 0
		} else {
			sinceBest++
			if sinceBest >= m.cfg.PlateauPatience {
				m.adam.LR /= 10
				sinceBest = 0
				if m.adam.LR < 1e-7 {
					break
				}
			}
		}
	}
	m.trained = true
	return nil
}

// Trained reports whether Train has completed at least once.
func (m *Model) Trained() bool { return m.trained }

// generateEncodedFrom produces n encoded vectors drawing latents from rng
// (eval-mode forward: batch norm uses running statistics, no caching). The
// context is checked once per generated batch; a nil ctx never cancels.
func (m *Model) generateEncodedFrom(ctx context.Context, rng *rand.Rand, n int) ([][]float64, error) {
	out := make([][]float64, 0, n)
	for len(out) < n {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		b := m.cfg.BatchSize
		if rem := n - len(out); rem < b {
			b = rem
		}
		z := latentBatchFrom(rng, b, m.cfg.Latent)
		y := m.Net.Forward(z, false)
		out = append(out, y...)
	}
	return out, nil
}

// DecodeTableRowAppend materializes encoded vectors as a weight-1 tuple
// table by decoding and appending one row at a time. It is the retired
// generation path, kept as the reference implementation: DecodeTable must
// produce byte-identical tables (the swg and core test suites pin this),
// and the executor benchmarks race the two.
func (m *Model) DecodeTableRowAppend(name string, enc [][]float64) (*table.Table, error) {
	t := table.New(name, m.Enc.Schema)
	for _, v := range enc {
		row, err := m.Enc.DecodeRow(v)
		if err != nil {
			return nil, err
		}
		if err := t.Append(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// DecodeTable materializes encoded vectors as a tuple table with every row
// at weight w, writing sampled tuples straight into typed column builders
// (dictionary codes for TEXT levels, payload slices for continuous
// attributes) so replicate tables are born columnar: no per-row validation,
// no per-row locking, no per-row dictionary map lookups. Each categorical
// level coerces and interns exactly once, on first use — preserving the
// row-append path's lazy coercion-error behavior — and the row view is
// assembled from those shared level values, so the resulting table is
// value-identical to DecodeTableRowAppend (rows, kinds, weights, typed
// columns). Dictionary code NUMBERING may differ when the schema has two or
// more TEXT attributes (this path interns per attribute, row-append interns
// row-major); codes are snapshot-internal, so no query output can observe
// the difference.
func (m *Model) DecodeTable(name string, enc [][]float64, w float64) (*table.Table, error) {
	if w < 0 {
		return nil, fmt.Errorf("table %s: negative weight %g", name, w)
	}
	for _, v := range enc {
		// Same validation (and message) DecodeRow applies per row.
		if len(v) != m.Enc.Dim {
			return nil, fmt.Errorf("swg: vector has %d dims, encoder has %d", len(v), m.Enc.Dim)
		}
	}
	sc := m.Enc.Schema
	n := len(enc)
	rows := make([][]value.Value, n)
	flat := make([]value.Value, n*sc.Len())
	for i := range rows {
		rows[i] = flat[i*sc.Len() : (i+1)*sc.Len() : (i+1)*sc.Len()]
	}
	cols := make([]table.Column, sc.Len())
	dict := table.NewDict()
	for ai := range m.Enc.Attrs {
		sp := &m.Enc.Attrs[ai]
		kind := sc.At(ai).Kind
		cols[ai].Kind = kind
		if err := decodeColumn(sp, ai, kind, enc, rows, &cols[ai], dict, name); err != nil {
			return nil, err
		}
	}
	wts := make([]float64, n)
	for i := range wts {
		wts[i] = w
	}
	return table.FromColumns(name, sc, cols, rows, wts, dict)
}

// decodeColumn fills one attribute's typed column and row-view slot for
// every generated row, mirroring Encoder.DecodeRow exactly: categorical
// blocks force to their argmax level, continuous values clamp to [0,1] and
// unscale, INT attributes round to the nearest whole number.
func decodeColumn(sp *AttrSpec, pos int, kind value.Kind, enc [][]float64, rows [][]value.Value, col *table.Column, dict *table.Dict, name string) error {
	n := len(enc)
	if sp.Categorical {
		// Per-level caches, filled on first argmax hit: the coerced value
		// (the same coercion Append's schema validation applied) and, for
		// TEXT, the dictionary code. Lazy filling keeps the coercion-error
		// surface identical to the row-append path — a bad level only errors
		// if some row actually selects it. Codes intern in this attribute's
		// first-use order (see the DecodeTable doc on code numbering).
		levels := make([]value.Value, len(sp.Cats))
		haveLevel := make([]bool, len(sp.Cats))
		codes := make([]uint32, len(sp.Cats))
		switch kind {
		case value.KindText:
			col.Codes = make([]uint32, n)
		case value.KindBool:
			col.Bools = make([]bool, n)
		case value.KindInt:
			col.Ints = make([]int64, n)
		case value.KindFloat:
			col.Floats = make([]float64, n)
		}
		for i, vec := range enc {
			best, bestV := 0, math.Inf(-1)
			for j := 0; j < sp.Width; j++ {
				if v := vec[sp.Offset+j]; v > bestV {
					bestV = v
					best = j
				}
			}
			if !haveLevel[best] {
				cv, err := value.Coerce(sp.Cats[best], kind)
				if err != nil {
					return fmt.Errorf("table %s: schema: attribute %q: %v", name, sp.Name, err)
				}
				levels[best] = cv
				if kind == value.KindText {
					codes[best] = dict.Code(cv.AsText())
				}
				haveLevel[best] = true
			}
			cv := levels[best]
			rows[i][pos] = cv
			switch kind {
			case value.KindText:
				col.Codes[i] = codes[best]
			case value.KindBool:
				col.Bools[i] = cv.AsBool()
			case value.KindInt:
				col.Ints[i] = cv.AsInt()
			case value.KindFloat:
				col.Floats[i] = cv.AsFloat()
			}
		}
		return nil
	}
	// Continuous: clamp, unscale, and (for INT) round — DecodeRow's exact
	// arithmetic, always yielding the schema kind, so no coercion applies.
	if kind == value.KindInt {
		col.Ints = make([]int64, n)
		for i, vec := range enc {
			f := vec[sp.Offset]
			if f < 0 {
				f = 0
			}
			if f > 1 {
				f = 1
			}
			x := int64(math.Round(sp.Min + f*(sp.Max-sp.Min)))
			col.Ints[i] = x
			rows[i][pos] = value.Int(x)
		}
		return nil
	}
	col.Floats = make([]float64, n)
	for i, vec := range enc {
		f := vec[sp.Offset]
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		x := sp.Min + f*(sp.Max-sp.Min)
		col.Floats[i] = x
		rows[i][pos] = value.Float(x)
	}
	return nil
}

// GenerateEncoded produces n encoded vectors from the trained generator,
// advancing the model's training RNG stream.
func (m *Model) GenerateEncoded(n int) [][]float64 {
	out, _ := m.generateEncodedFrom(nil, m.rng, n)
	return out
}

// Generate produces a generated sample table of n tuples with weight 1.
func (m *Model) Generate(name string, n int) (*table.Table, error) {
	return m.DecodeTable(name, m.GenerateEncoded(n), 1)
}

// GenerateEncodedSeeded produces n encoded vectors from an independent RNG
// stream derived from seed, leaving the model's training RNG untouched.
// Eval-mode forward passes are read-only, so concurrent calls on a trained
// model are safe; equal seeds give bit-identical output regardless of what
// other goroutines generate.
func (m *Model) GenerateEncodedSeeded(n int, seed int64) [][]float64 {
	out, _ := m.generateEncodedFrom(nil, rand.New(rand.NewSource(seed)), n)
	return out
}

// GenerateSeeded produces a generated sample table of n tuples with weight 1
// using an independent RNG stream derived from seed. Unlike Generate it does
// not advance the model's training RNG, so replicate r of an OPEN query can
// be generated on any goroutine in any order and still be deterministic.
func (m *Model) GenerateSeeded(name string, n int, seed int64) (*table.Table, error) {
	return m.GenerateSeededWeighted(name, n, seed, 1)
}

// GenerateSeededWeighted is GenerateSeeded with every generated tuple at
// weight w instead of 1 — the OPEN path's uniform reweighting to the
// population size happens at build time rather than as a second pass over
// the replicate table.
func (m *Model) GenerateSeededWeighted(name string, n int, seed int64, w float64) (*table.Table, error) {
	return m.GenerateSeededWeightedContext(context.Background(), name, n, seed, w)
}

// GenerateSeededWeightedContext is GenerateSeededWeighted with a cancellation
// context, checked once per generated batch. A cancelled generation returns
// ctx.Err() and discards the partial replicate; the model itself is untouched
// (eval-mode forward passes are read-only), so re-running with the same seed
// reproduces the uncancelled replicate bit for bit.
func (m *Model) GenerateSeededWeightedContext(ctx context.Context, name string, n int, seed int64, w float64) (*table.Table, error) {
	enc, err := m.generateEncodedFrom(ctx, rand.New(rand.NewSource(seed)), n)
	if err != nil {
		return nil, err
	}
	return m.DecodeTable(name, enc, w)
}

// Loss evaluates Eq. 1 on a fresh eval-mode batch (no parameter update);
// useful for model selection and tests.
func (m *Model) Loss() (float64, error) {
	z := m.latentBatch(m.cfg.BatchSize)
	out := m.Net.Forward(z, false)
	l, _, err := m.lossAndGrad(out)
	return l, err
}

// Config returns the effective (defaulted) configuration.
func (m *Model) Config() Config { return m.cfg }

package swg

import (
	"math"
	"testing"

	"mosaic/internal/marginal"
	"mosaic/internal/schema"
	"mosaic/internal/stats"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

var mixedSchema = schema.MustNew(
	schema.Attribute{Name: "c", Kind: value.KindText},
	schema.Attribute{Name: "x", Kind: value.KindFloat},
)

func mixedSample(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.New("s", mixedSchema)
	rows := []struct {
		c string
		x float64
	}{
		{"a", 0.1}, {"a", 0.2}, {"b", 0.8}, {"b", 0.9}, {"a", 0.15},
	}
	for _, r := range rows {
		if err := tbl.Append([]value.Value{value.Text(r.c), value.Float(r.x)}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func oneDMarginal(t *testing.T, name, attr string, cells map[float64]float64) *marginal.Marginal {
	t.Helper()
	m, err := marginal.New(name, []string{attr})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range cells {
		if err := m.Add([]value.Value{value.Float(v)}, c); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func catMarginal(t *testing.T, name, attr string, cells map[string]float64) *marginal.Marginal {
	t.Helper()
	m, err := marginal.New(name, []string{attr})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range cells {
		if err := m.Add([]value.Value{value.Text(v)}, c); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestBuildEncoderMixed(t *testing.T) {
	tbl := mixedSample(t)
	mx := oneDMarginal(t, "mx", "x", map[float64]float64{0.0: 10, 1.0: 10})
	mc := catMarginal(t, "mc", "c", map[string]float64{"a": 5, "b": 5, "z": 10})
	enc, err := BuildEncoder(tbl, []*marginal.Marginal{mx, mc})
	if err != nil {
		t.Fatal(err)
	}
	// c has 3 levels (a, b from the sample; z from the marginal) → 3 dims;
	// x is continuous → 1 dim.
	if enc.Dim != 4 {
		t.Fatalf("Dim = %d, want 4", enc.Dim)
	}
	spC, err := enc.AttrSpecFor("c")
	if err != nil || !spC.Categorical || spC.Width != 3 {
		t.Errorf("c spec: %+v, %v", spC, err)
	}
	spX, err := enc.AttrSpecFor("x")
	if err != nil || spX.Categorical {
		t.Errorf("x spec: %+v, %v", spX, err)
	}
	// Continuous range widened by the marginal values 0 and 1.
	if spX.Min != 0 || spX.Max != 1 {
		t.Errorf("x range [%g,%g], want [0,1]", spX.Min, spX.Max)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tbl := mixedSample(t)
	mx := oneDMarginal(t, "mx", "x", map[float64]float64{0.0: 1, 1.0: 1})
	enc, err := BuildEncoder(tbl, []*marginal.Marginal{mx})
	if err != nil {
		t.Fatal(err)
	}
	row := []value.Value{value.Text("b"), value.Float(0.8)}
	v, err := enc.EncodeRow(row)
	if err != nil {
		t.Fatal(err)
	}
	back, err := enc.DecodeRow(v)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].AsText() != "b" {
		t.Errorf("categorical round trip: %v", back[0])
	}
	if math.Abs(back[1].AsFloat()-0.8) > 1e-9 {
		t.Errorf("continuous round trip: %v", back[1])
	}
}

func TestDecodeClampsAndArgmaxes(t *testing.T) {
	tbl := mixedSample(t)
	mx := oneDMarginal(t, "mx", "x", map[float64]float64{0.0: 1, 1.0: 1})
	enc, err := BuildEncoder(tbl, []*marginal.Marginal{mx})
	if err != nil {
		t.Fatal(err)
	}
	// Soft categorical scores: argmax wins; out-of-range continuous clamps.
	vec := make([]float64, enc.Dim)
	spC, _ := enc.AttrSpecFor("c")
	vec[spC.Offset+0] = 0.3
	vec[spC.Offset+1] = 0.7
	spX, _ := enc.AttrSpecFor("x")
	vec[spX.Offset] = 1.7 // beyond [0,1]
	row, err := enc.DecodeRow(vec)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].AsText() != "b" {
		t.Errorf("argmax decode = %v", row[0])
	}
	if row[1].AsFloat() != spX.Max {
		t.Errorf("clamp decode = %v, want %g", row[1], spX.Max)
	}
}

func TestEncoderRejectsNulls(t *testing.T) {
	tbl := table.New("s", mixedSchema)
	if err := tbl.Append([]value.Value{value.Null(), value.Float(1)}); err != nil {
		t.Fatal(err)
	}
	mx := oneDMarginal(t, "mx", "x", map[float64]float64{1: 1})
	if _, err := BuildEncoder(tbl, []*marginal.Marginal{mx}); err == nil {
		t.Error("NULLs should be rejected")
	}
}

func TestSubspaceColsAndSoftmaxBlocks(t *testing.T) {
	tbl := mixedSample(t)
	mx := oneDMarginal(t, "mx", "x", map[float64]float64{0: 1})
	enc, err := BuildEncoder(tbl, []*marginal.Marginal{mx})
	if err != nil {
		t.Fatal(err)
	}
	cols, err := enc.SubspaceCols([]string{"c", "x"})
	if err != nil || len(cols) != 3 {
		t.Errorf("SubspaceCols = %v, %v", cols, err)
	}
	blocks := enc.SoftmaxBlocks()
	if len(blocks) != 1 || blocks[0][1]-blocks[0][0] != 2 {
		t.Errorf("SoftmaxBlocks = %v", blocks)
	}
}

// trainTiny builds a quick model over a 1-D continuous dataset whose
// marginal differs from the sample distribution.
func trainTiny(t *testing.T, seed int64) (*Model, *table.Table) {
	t.Helper()
	sc := schema.MustNew(schema.Attribute{Name: "x", Kind: value.KindFloat})
	tbl := table.New("s", sc)
	// Biased sample: clustered near 0.2 with a few points near 0.8 — the
	// manifold spans both regions.
	for i := 0; i < 80; i++ {
		_ = tbl.Append([]value.Value{value.Float(0.15 + 0.1*float64(i%5)/5)})
	}
	for i := 0; i < 20; i++ {
		_ = tbl.Append([]value.Value{value.Float(0.75 + 0.1*float64(i%5)/5)})
	}
	// Population marginal: half the mass at each cluster.
	m := oneDMarginal(t, "mx", "x", map[float64]float64{
		0.15: 250, 0.2: 250, 0.75: 250, 0.8: 250,
	})
	model, err := New(tbl, []*marginal.Marginal{m}, Config{
		Hidden:      []int{24, 24},
		Latent:      2,
		Epochs:      12,
		BatchSize:   128,
		Projections: 8,
		Lambda:      0.05,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Train(); err != nil {
		t.Fatal(err)
	}
	return model, tbl
}

func TestTrainingReducesLoss(t *testing.T) {
	model, _ := trainTiny(t, 3)
	h := model.History
	if len(h) == 0 {
		t.Fatal("no training history")
	}
	if h[len(h)-1] >= h[0] {
		t.Errorf("loss did not decrease: %g -> %g", h[0], h[len(h)-1])
	}
	if !model.Trained() {
		t.Error("Trained() should be true")
	}
}

func TestGeneratedMarginalBeatsBiasedSample(t *testing.T) {
	model, tbl := trainTiny(t, 4)
	gen, err := model.Generate("g", 400)
	if err != nil {
		t.Fatal(err)
	}
	if gen.Len() != 400 {
		t.Fatalf("generated %d rows", gen.Len())
	}
	// The generated upper-cluster share must sit between the biased sample's
	// (0.2) and the population's (0.5), and closer to the population.
	share := func(tb *table.Table) float64 {
		var hi, n float64
		tb.Scan(func(row []value.Value, _ float64) bool {
			if row[0].AsFloat() > 0.5 {
				hi++
			}
			n++
			return true
		})
		return hi / n
	}
	genShare := share(gen)
	sampleShare := share(tbl)
	if math.Abs(genShare-0.5) >= math.Abs(sampleShare-0.5) {
		t.Errorf("generated upper share %.3f no closer to 0.5 than sample %.3f", genShare, sampleShare)
	}
}

func TestGenerateIsDeterministicPerSeed(t *testing.T) {
	m1, _ := trainTiny(t, 9)
	m2, _ := trainTiny(t, 9)
	g1 := m1.GenerateEncoded(16)
	g2 := m2.GenerateEncoded(16)
	for i := range g1 {
		for j := range g1[i] {
			if g1[i][j] != g2[i][j] {
				t.Fatalf("same-seed models diverge at [%d][%d]: %g vs %g", i, j, g1[i][j], g2[i][j])
			}
		}
	}
	m3, _ := trainTiny(t, 10)
	g3 := m3.GenerateEncoded(16)
	same := true
	for i := range g1 {
		for j := range g1[i] {
			if g1[i][j] != g3[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical output")
	}
}

func TestCategoricalGeneration(t *testing.T) {
	tbl := mixedSample(t)
	mc := catMarginal(t, "mc", "c", map[string]float64{"a": 30, "b": 70})
	mx := oneDMarginal(t, "mx", "x", map[float64]float64{0.1: 50, 0.9: 50})
	model, err := New(tbl, []*marginal.Marginal{mc, mx}, Config{
		Hidden:      []int{16, 16},
		Latent:      3,
		Epochs:      10,
		BatchSize:   64,
		Projections: 8,
		Lambda:      0.01,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Train(); err != nil {
		t.Fatal(err)
	}
	gen, err := model.Generate("g", 200)
	if err != nil {
		t.Fatal(err)
	}
	// Every generated categorical value must be a known level.
	gen.Scan(func(row []value.Value, _ float64) bool {
		if c := row[0].AsText(); c != "a" && c != "b" {
			t.Errorf("generated unknown level %q", c)
			return false
		}
		return true
	})
}

func TestNewRejectsBadInput(t *testing.T) {
	empty := table.New("s", mixedSchema)
	mc := catMarginal(t, "mc", "c", map[string]float64{"a": 1})
	if _, err := New(empty, []*marginal.Marginal{mc}, Config{}); err == nil {
		t.Error("empty sample should fail")
	}
	tbl := mixedSample(t)
	if _, err := New(tbl, nil, Config{}); err == nil {
		t.Error("no marginals should fail")
	}
	badAttr, _ := marginal.New("bad", []string{"zzz"})
	_ = badAttr.Add([]value.Value{value.Int(1)}, 1)
	if _, err := New(tbl, []*marginal.Marginal{badAttr}, Config{}); err == nil {
		t.Error("marginal over missing attribute should fail")
	}
}

func TestLossEvaluates(t *testing.T) {
	model, _ := trainTiny(t, 6)
	l, err := model.Loss()
	if err != nil || math.IsNaN(l) || l < 0 {
		t.Errorf("Loss = %g, %v", l, err)
	}
}

func TestConfigDefaults(t *testing.T) {
	model, _ := trainTiny(t, 7)
	cfg := model.Config()
	if cfg.OneDWeight != 1 || cfg.PlateauPatience != 5 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestLambdaKeepsGeneratedNearSample(t *testing.T) {
	// With a large λ the generated points must hug the sample manifold
	// even where the marginal pulls away.
	sc := schema.MustNew(schema.Attribute{Name: "x", Kind: value.KindFloat})
	tbl := table.New("s", sc)
	for i := 0; i < 100; i++ {
		_ = tbl.Append([]value.Value{value.Float(0.5)})
	}
	m := oneDMarginal(t, "mx", "x", map[float64]float64{0.0: 100, 1.0: 100})
	model, err := New(tbl, []*marginal.Marginal{m}, Config{
		Hidden: []int{8}, Latent: 1, Epochs: 40, StepsPerEpoch: 5, BatchSize: 64,
		Lambda: 50, LR: 0.01, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Train(); err != nil {
		t.Fatal(err)
	}
	enc := model.GenerateEncoded(100)
	var vals []float64
	for _, v := range enc {
		vals = append(vals, v[0])
	}
	// The sample sits at scaled position (0.5-0)/(1-0)=0.5.
	if mean := stats.Mean(vals); math.Abs(mean-0.5) > 0.2 {
		t.Errorf("λ-dominated mean = %.3f, want ≈0.5", mean)
	}
}

// Package marginal implements Mosaic's population metadata: 1- and
// 2-dimensional marginal histograms (paper Sec 3.2). A marginal records, for
// each observed combination of one or two attribute values, the ground-truth
// population count. Marginals drive both IPF reweighting (SEMI-OPEN) and
// M-SWG training (OPEN).
package marginal

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mosaic/internal/table"
	"mosaic/internal/value"
)

// Cell is one histogram bucket: a value combination and its count.
type Cell struct {
	Vals  []value.Value
	Count float64
}

// Marginal is a named histogram over one or two attributes of a population.
//
// Numeric attributes may be binned: with a bin width w, values snap to bin
// midpoints (⌊v/w⌋+0.5)·w before keying, so a marginal over continuous data
// is a proper histogram (the "1- or 2-dimensional histograms … commonly
// released by corporations or governments" of Sec 3.2) rather than a set of
// exact-value singletons.
type Marginal struct {
	Name  string
	Attrs []string  // 1 or 2 attribute names
	bins  []float64 // bin width per attribute; 0 = exact values
	cells map[string]*Cell
	order []string // cell keys in insertion order for deterministic iteration
}

// New creates an empty marginal over the given attributes.
func New(name string, attrs []string) (*Marginal, error) {
	if len(attrs) < 1 || len(attrs) > 2 {
		return nil, fmt.Errorf("marginal %s: %d attributes; only 1- and 2-dimensional marginals are supported", name, len(attrs))
	}
	seen := map[string]bool{}
	for _, a := range attrs {
		la := strings.ToLower(a)
		if seen[la] {
			return nil, fmt.Errorf("marginal %s: duplicate attribute %q", name, a)
		}
		seen[la] = true
	}
	return &Marginal{
		Name:  name,
		Attrs: append([]string(nil), attrs...),
		bins:  make([]float64, len(attrs)),
		cells: make(map[string]*Cell),
	}, nil
}

// SetBinWidth enables binning for the named numeric attribute. It must be
// called before any cells are added.
func (m *Marginal) SetBinWidth(attr string, width float64) error {
	if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) {
		return fmt.Errorf("marginal %s: invalid bin width %g", m.Name, width)
	}
	if len(m.cells) > 0 {
		return fmt.Errorf("marginal %s: SetBinWidth after cells were added", m.Name)
	}
	for i, a := range m.Attrs {
		if strings.EqualFold(a, attr) {
			m.bins[i] = width
			return nil
		}
	}
	return fmt.Errorf("marginal %s: no attribute %q", m.Name, attr)
}

// BinWidth returns the bin width for attribute position i (0 = exact).
func (m *Marginal) BinWidth(i int) float64 { return m.bins[i] }

// SnapVals maps a value tuple onto the marginal's bin grid: numeric values
// of binned attributes become their bin midpoint; everything else passes
// through. The result indexes the same cell that Add would have used.
func (m *Marginal) SnapVals(vals []value.Value) ([]value.Value, error) {
	if len(vals) != len(m.Attrs) {
		return nil, fmt.Errorf("marginal %s: %d values for %d attributes", m.Name, len(vals), len(m.Attrs))
	}
	out := make([]value.Value, len(vals))
	for i, v := range vals {
		w := m.bins[i]
		if w == 0 || v.IsNull() || !v.Numeric() {
			out[i] = v
			continue
		}
		f, err := v.Float64()
		if err != nil {
			return nil, err
		}
		mid := (math.Floor(f/w) + 0.5) * w
		out[i] = value.Float(mid)
	}
	return out, nil
}

// Dim returns 1 or 2.
func (m *Marginal) Dim() int { return len(m.Attrs) }

func cellKey(vals []value.Value) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteString(v.HashKey())
		b.WriteByte('\x1f')
	}
	return b.String()
}

// Add accumulates count into the cell for vals (snapped to the bin grid).
func (m *Marginal) Add(vals []value.Value, count float64) error {
	if count < 0 {
		return fmt.Errorf("marginal %s: negative count %g", m.Name, count)
	}
	snapped, err := m.SnapVals(vals)
	if err != nil {
		return err
	}
	k := cellKey(snapped)
	if c, ok := m.cells[k]; ok {
		c.Count += count
		return nil
	}
	m.cells[k] = &Cell{Vals: snapped, Count: count}
	m.order = append(m.order, k)
	return nil
}

// Count returns the cell count for vals (0 when absent).
func (m *Marginal) Count(vals []value.Value) float64 {
	snapped, err := m.SnapVals(vals)
	if err != nil {
		return 0
	}
	if c, ok := m.cells[cellKey(snapped)]; ok {
		return c.Count
	}
	return 0
}

// KeyFor returns the internal cell key a tuple maps to; IPF uses it to
// bucket sample tuples consistently with the marginal's binning.
func (m *Marginal) KeyFor(vals []value.Value) (string, error) {
	snapped, err := m.SnapVals(vals)
	if err != nil {
		return "", err
	}
	return cellKey(snapped), nil
}

// CellKeys returns the internal keys of all cells in insertion order,
// parallel to Cells().
func (m *Marginal) CellKeys() []string {
	return append([]string(nil), m.order...)
}

// Total returns the sum of all cell counts — the represented population size.
func (m *Marginal) Total() float64 {
	var s float64
	for _, k := range m.order {
		s += m.cells[k].Count
	}
	return s
}

// Len returns the number of non-empty cells.
func (m *Marginal) Len() int { return len(m.order) }

// Cells returns all cells in insertion order. The returned cells must not be
// modified.
func (m *Marginal) Cells() []Cell {
	out := make([]Cell, 0, len(m.order))
	for _, k := range m.order {
		out = append(out, *m.cells[k])
	}
	return out
}

// SortedCells returns the cells ordered by value (for stable display).
func (m *Marginal) SortedCells() []Cell {
	out := m.Cells()
	sort.Slice(out, func(i, j int) bool {
		for d := range out[i].Vals {
			c := value.Compare(out[i].Vals[d], out[j].Vals[d])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	return out
}

// Project reduces a 2-D marginal to the 1-D marginal of attribute attr.
func (m *Marginal) Project(attr string) (*Marginal, error) {
	idx := -1
	for i, a := range m.Attrs {
		if strings.EqualFold(a, attr) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("marginal %s: no attribute %q", m.Name, attr)
	}
	out, err := New(m.Name+"_proj_"+attr, []string{m.Attrs[idx]})
	if err != nil {
		return nil, err
	}
	if m.bins[idx] > 0 {
		if err := out.SetBinWidth(m.Attrs[idx], m.bins[idx]); err != nil {
			return nil, err
		}
	}
	for _, k := range m.order {
		c := m.cells[k]
		if err := out.Add([]value.Value{c.Vals[idx]}, c.Count); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Scale multiplies every cell count by f (>0); used to renormalize marginals
// from a query population against global-population marginals.
func (m *Marginal) Scale(f float64) error {
	if f <= 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return fmt.Errorf("marginal %s: invalid scale factor %g", m.Name, f)
	}
	for _, k := range m.order {
		m.cells[k].Count *= f
	}
	return nil
}

// Clone deep-copies the marginal, including bin widths.
func (m *Marginal) Clone() *Marginal {
	out, _ := New(m.Name, m.Attrs)
	copy(out.bins, m.bins)
	for _, k := range m.order {
		c := m.cells[k]
		_ = out.Add(c.Vals, c.Count)
	}
	return out
}

// FromTable builds a marginal by grouping a relation on attrs and summing
// tuple weights (weight 1 rows give plain counts).
func FromTable(name string, t *table.Table, attrs []string) (*Marginal, error) {
	return FromTableBinned(name, t, attrs, nil)
}

// FromTableBinned is FromTable with per-attribute bin widths (attribute name
// → width; attributes absent from the map use exact values).
//
// It groups rows into cells by value-code tuples over the table's columnar
// snapshot (dictionary codes for TEXT, NaN-canonical float bits for
// numerics) instead of building a cellKey string per row; cell order,
// values, and counts are identical to per-row Add calls — counts accumulate
// per cell in the same row order.
func FromTableBinned(name string, t *table.Table, attrs []string, widths map[string]float64) (*Marginal, error) {
	m, err := New(name, attrs)
	if err != nil {
		return nil, err
	}
	for a, w := range widths {
		if err := m.SetBinWidth(a, w); err != nil {
			return nil, err
		}
	}
	idxs := make([]int, len(attrs))
	for i, a := range attrs {
		j, ok := t.Schema().Index(a)
		if !ok {
			return nil, fmt.Errorf("marginal %s: relation %s has no attribute %q", name, t.Name(), a)
		}
		idxs[i] = j
	}
	snap := t.Snapshot()
	n := snap.Len()
	rowCls := make([][]value.Class, len(idxs))
	rowBits := make([][]uint64, len(idxs))
	for ai, j := range idxs {
		rowCls[ai], rowBits[ai] = snap.BinnedCodes(j, m.bins[ai])
	}
	byCode := make(map[table.CellCode]int)
	var cellVals [][]value.Value
	var counts []float64
	wts := snap.Weights()
	rawVals := make([]value.Value, len(idxs))
	for i := 0; i < n; i++ {
		key := table.CellCode{C0: rowCls[0][i], B0: rowBits[0][i]}
		if len(idxs) == 2 {
			key.C1, key.B1 = rowCls[1][i], rowBits[1][i]
		}
		ci, ok := byCode[key]
		if !ok {
			row := snap.Row(i)
			for ai, j := range idxs {
				rawVals[ai] = row[j]
			}
			snapped, err := m.SnapVals(rawVals)
			if err != nil {
				return nil, err
			}
			ci = len(cellVals)
			byCode[key] = ci
			cellVals = append(cellVals, snapped)
			counts = append(counts, 0)
		}
		counts[ci] += wts[i]
	}
	for ci, vals := range cellVals {
		k := cellKey(vals)
		m.cells[k] = &Cell{Vals: vals, Count: counts[ci]}
		m.order = append(m.order, k)
	}
	return m, nil
}

// ConsistentTotals checks that all marginals agree on the population size to
// within relative tolerance tol; IPF requires consistent totals to converge.
func ConsistentTotals(ms []*Marginal, tol float64) error {
	if len(ms) < 2 {
		return nil
	}
	t0 := ms[0].Total()
	for _, m := range ms[1:] {
		t := m.Total()
		ref := math.Max(math.Abs(t0), math.Abs(t))
		if ref == 0 {
			continue
		}
		if math.Abs(t-t0)/ref > tol {
			return fmt.Errorf("marginal: inconsistent totals %s=%.6g vs %s=%.6g", ms[0].Name, t0, m.Name, t)
		}
	}
	return nil
}

// CoveredAttrs returns the distinct (lower-cased) attribute names covered by
// the marginal set, in first-seen order.
func CoveredAttrs(ms []*Marginal) []string {
	var out []string
	seen := map[string]bool{}
	for _, m := range ms {
		for _, a := range m.Attrs {
			la := strings.ToLower(a)
			if !seen[la] {
				seen[la] = true
				out = append(out, a)
			}
		}
	}
	return out
}

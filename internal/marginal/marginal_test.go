package marginal

import (
	"math"
	"testing"
	"testing/quick"

	"mosaic/internal/schema"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

func TestNewValidates(t *testing.T) {
	if _, err := New("m", nil); err == nil {
		t.Error("0 attributes should fail")
	}
	if _, err := New("m", []string{"a", "b", "c"}); err == nil {
		t.Error("3 attributes should fail")
	}
	if _, err := New("m", []string{"a", "A"}); err == nil {
		t.Error("duplicate attributes should fail")
	}
	m, err := New("m", []string{"a", "b"})
	if err != nil || m.Dim() != 2 {
		t.Errorf("New: %v, dim=%d", err, m.Dim())
	}
}

func TestAddAndCount(t *testing.T) {
	m, _ := New("m", []string{"country"})
	if err := m.Add([]value.Value{value.Text("UK")}, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Add([]value.Value{value.Text("UK")}, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Add([]value.Value{value.Text("FR")}, 7); err != nil {
		t.Fatal(err)
	}
	if got := m.Count([]value.Value{value.Text("UK")}); got != 15 {
		t.Errorf("UK count = %g", got)
	}
	if got := m.Count([]value.Value{value.Text("DE")}); got != 0 {
		t.Errorf("missing cell count = %g", got)
	}
	if m.Total() != 22 || m.Len() != 2 {
		t.Errorf("Total=%g Len=%d", m.Total(), m.Len())
	}
	if err := m.Add([]value.Value{value.Text("X")}, -1); err == nil {
		t.Error("negative count should fail")
	}
	if err := m.Add([]value.Value{value.Text("X"), value.Text("Y")}, 1); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestCellsPreserveInsertionOrder(t *testing.T) {
	m, _ := New("m", []string{"a"})
	for _, s := range []string{"z", "a", "m"} {
		if err := m.Add([]value.Value{value.Text(s)}, 1); err != nil {
			t.Fatal(err)
		}
	}
	cells := m.Cells()
	if cells[0].Vals[0].AsText() != "z" || cells[2].Vals[0].AsText() != "m" {
		t.Errorf("insertion order lost: %v", cells)
	}
	sorted := m.SortedCells()
	if sorted[0].Vals[0].AsText() != "a" || sorted[2].Vals[0].AsText() != "z" {
		t.Errorf("sorted order wrong: %v", sorted)
	}
}

func TestProject(t *testing.T) {
	m, _ := New("m", []string{"c", "e"})
	add := func(c, e string, n float64) {
		if err := m.Add([]value.Value{value.Text(c), value.Text(e)}, n); err != nil {
			t.Fatal(err)
		}
	}
	add("UK", "Yahoo", 10)
	add("UK", "AOL", 2)
	add("FR", "Yahoo", 5)
	p, err := m.Project("c")
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() != 1 {
		t.Errorf("projected dim = %d", p.Dim())
	}
	if got := p.Count([]value.Value{value.Text("UK")}); got != 12 {
		t.Errorf("projected UK = %g", got)
	}
	if p.Total() != m.Total() {
		t.Errorf("projection changed total: %g vs %g", p.Total(), m.Total())
	}
	if _, err := m.Project("zzz"); err == nil {
		t.Error("projecting missing attribute should fail")
	}
}

func TestScale(t *testing.T) {
	m, _ := New("m", []string{"a"})
	_ = m.Add([]value.Value{value.Int(1)}, 10)
	if err := m.Scale(2.5); err != nil {
		t.Fatal(err)
	}
	if m.Total() != 25 {
		t.Errorf("scaled total = %g", m.Total())
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := m.Scale(bad); err == nil {
			t.Errorf("Scale(%g) should fail", bad)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m, _ := New("m", []string{"a"})
	_ = m.Add([]value.Value{value.Int(1)}, 10)
	c := m.Clone()
	_ = c.Add([]value.Value{value.Int(1)}, 5)
	if m.Total() != 10 || c.Total() != 15 {
		t.Errorf("clone not deep: %g vs %g", m.Total(), c.Total())
	}
}

func TestFromTable(t *testing.T) {
	sc := schema.MustNew(
		schema.Attribute{Name: "c", Kind: value.KindText},
		schema.Attribute{Name: "x", Kind: value.KindInt},
	)
	tbl := table.New("t", sc)
	rows := []struct {
		c string
		x int64
		w float64
	}{
		{"a", 1, 1}, {"a", 1, 2}, {"b", 2, 1.5},
	}
	for _, r := range rows {
		if err := tbl.AppendWeighted([]value.Value{value.Text(r.c), value.Int(r.x)}, r.w); err != nil {
			t.Fatal(err)
		}
	}
	m, err := FromTable("m", tbl, []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Count([]value.Value{value.Text("a")}); got != 3 {
		t.Errorf("weighted count a = %g", got)
	}
	// 2-D from table.
	m2, err := FromTable("m2", tbl, []string{"c", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 2 {
		t.Errorf("2-D cells = %d", m2.Len())
	}
	if _, err := FromTable("bad", tbl, []string{"nope"}); err == nil {
		t.Error("missing attribute should fail")
	}
}

func TestConsistentTotals(t *testing.T) {
	a, _ := New("a", []string{"x"})
	b, _ := New("b", []string{"y"})
	_ = a.Add([]value.Value{value.Int(1)}, 100)
	_ = b.Add([]value.Value{value.Int(2)}, 100.0001)
	if err := ConsistentTotals([]*Marginal{a, b}, 1e-3); err != nil {
		t.Errorf("near-equal totals should pass: %v", err)
	}
	_ = b.Add([]value.Value{value.Int(3)}, 50)
	if err := ConsistentTotals([]*Marginal{a, b}, 1e-3); err == nil {
		t.Error("inconsistent totals should fail")
	}
	if err := ConsistentTotals([]*Marginal{a}, 1e-3); err != nil {
		t.Error("single marginal is trivially consistent")
	}
}

func TestCoveredAttrs(t *testing.T) {
	a, _ := New("a", []string{"C", "E"})
	b, _ := New("b", []string{"e", "d"})
	got := CoveredAttrs([]*Marginal{a, b})
	if len(got) != 3 {
		t.Errorf("covered = %v", got)
	}
}

func TestTotalEqualsCellSumProperty(t *testing.T) {
	f := func(counts []uint16) bool {
		m, _ := New("m", []string{"a"})
		var want float64
		for i, c := range counts {
			if err := m.Add([]value.Value{value.Int(int64(i))}, float64(c)); err != nil {
				return false
			}
			want += float64(c)
		}
		return math.Abs(m.Total()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestProjectPreservesTotalProperty(t *testing.T) {
	f := func(cells []struct {
		A, B uint8
		N    uint16
	}) bool {
		m, _ := New("m", []string{"a", "b"})
		for _, c := range cells {
			if err := m.Add([]value.Value{value.Int(int64(c.A)), value.Int(int64(c.B))}, float64(c.N)); err != nil {
				return false
			}
		}
		if m.Len() == 0 {
			return true
		}
		pa, err := m.Project("a")
		if err != nil {
			return false
		}
		pb, err := m.Project("b")
		if err != nil {
			return false
		}
		return math.Abs(pa.Total()-m.Total()) < 1e-6 && math.Abs(pb.Total()-m.Total()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNumericCellKeysCoincide(t *testing.T) {
	// Int and Float cells that compare equal merge into one cell.
	m, _ := New("m", []string{"x"})
	_ = m.Add([]value.Value{value.Int(2)}, 1)
	_ = m.Add([]value.Value{value.Float(2.0)}, 3)
	if m.Len() != 1 || m.Total() != 4 {
		t.Errorf("numeric key merge: len=%d total=%g", m.Len(), m.Total())
	}
}

func TestBinnedMarginal(t *testing.T) {
	m, _ := New("m", []string{"e"})
	if err := m.SetBinWidth("e", 10); err != nil {
		t.Fatal(err)
	}
	// 203 and 207 share the [200,210) bin with midpoint 205.
	_ = m.Add([]value.Value{value.Int(203)}, 1)
	_ = m.Add([]value.Value{value.Int(207)}, 2)
	_ = m.Add([]value.Value{value.Int(212)}, 4)
	if m.Len() != 2 {
		t.Fatalf("binned cells = %d, want 2", m.Len())
	}
	if got := m.Count([]value.Value{value.Int(209)}); got != 3 {
		t.Errorf("bin [200,210) count = %g, want 3", got)
	}
	cells := m.SortedCells()
	if cells[0].Vals[0].AsFloat() != 205 {
		t.Errorf("bin midpoint = %v, want 205", cells[0].Vals[0])
	}
	// KeyFor agrees with Add's keying.
	k1, err := m.KeyFor([]value.Value{value.Int(201)})
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := m.KeyFor([]value.Value{value.Float(209.9)})
	if k1 != k2 {
		t.Error("values in the same bin must share a key")
	}
}

func TestSetBinWidthValidation(t *testing.T) {
	m, _ := New("m", []string{"e"})
	if err := m.SetBinWidth("e", 0); err == nil {
		t.Error("zero width should fail")
	}
	if err := m.SetBinWidth("zz", 5); err == nil {
		t.Error("missing attribute should fail")
	}
	_ = m.Add([]value.Value{value.Int(1)}, 1)
	if err := m.SetBinWidth("e", 5); err == nil {
		t.Error("SetBinWidth after Add should fail")
	}
}

func TestBinnedProjectionCarriesWidth(t *testing.T) {
	m, _ := New("m", []string{"c", "e"})
	if err := m.SetBinWidth("e", 10); err != nil {
		t.Fatal(err)
	}
	_ = m.Add([]value.Value{value.Text("a"), value.Int(203)}, 1)
	_ = m.Add([]value.Value{value.Text("b"), value.Int(207)}, 1)
	p, err := m.Project("e")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Errorf("projected binned cells = %d, want 1", p.Len())
	}
	if p.BinWidth(0) != 10 {
		t.Errorf("projected bin width = %g", p.BinWidth(0))
	}
}

func TestFromTableBinned(t *testing.T) {
	sc := schema.MustNew(schema.Attribute{Name: "e", Kind: value.KindInt})
	tbl := table.New("t", sc)
	for _, v := range []int64{1, 2, 3, 11, 12} {
		if err := tbl.Append([]value.Value{value.Int(v)}); err != nil {
			t.Fatal(err)
		}
	}
	m, err := FromTableBinned("m", tbl, []string{"e"}, map[string]float64{"e": 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 || m.Count([]value.Value{value.Int(5)}) != 3 {
		t.Errorf("binned from-table: len=%d", m.Len())
	}
}

// TestFromTableBinnedMatchesPerRowAdd: the code-tuple grouping in
// FromTableBinned must reproduce the per-row Add construction exactly —
// same cell keys, same order, same snapped values, same counts.
func TestFromTableBinnedMatchesPerRowAdd(t *testing.T) {
	sc := schema.MustNew(
		schema.Attribute{Name: "g", Kind: value.KindText},
		schema.Attribute{Name: "v", Kind: value.KindFloat},
	)
	tbl := table.New("t", sc)
	vals := []struct {
		g string
		v float64
		w float64
	}{
		{"a", 0.1, 1}, {"b", 0.49, 2}, {"a", 0.51, 0.5}, {"a", 0.1, 3},
		{"c", -0.2, 1.5}, {"b", 0.49, 1}, {"a", 1.9, 2.5},
	}
	for _, r := range vals {
		if err := tbl.AppendWeighted([]value.Value{value.Text(r.g), value.Float(r.v)}, r.w); err != nil {
			t.Fatal(err)
		}
	}
	// Add a NULL-bearing row: both constructions must key it identically.
	if err := tbl.AppendWeighted([]value.Value{value.Null(), value.Null()}, 2); err != nil {
		t.Fatal(err)
	}
	widths := map[string]float64{"v": 0.5}

	got, err := FromTableBinned("m", tbl, []string{"g", "v"}, widths)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the historical construction, one Add per row.
	want, err := New("m", []string{"g", "v"})
	if err != nil {
		t.Fatal(err)
	}
	if err := want.SetBinWidth("v", 0.5); err != nil {
		t.Fatal(err)
	}
	snap := tbl.Snapshot()
	for i := 0; i < snap.Len(); i++ {
		row := snap.Row(i)
		if err := want.Add([]value.Value{row[0], row[1]}, snap.Weight(i)); err != nil {
			t.Fatal(err)
		}
	}

	gk, wk := got.CellKeys(), want.CellKeys()
	if len(gk) != len(wk) {
		t.Fatalf("cell count %d != %d", len(gk), len(wk))
	}
	gc, wc := got.Cells(), want.Cells()
	for i := range gk {
		if gk[i] != wk[i] {
			t.Errorf("cell %d: key order diverged", i)
		}
		if gc[i].Count != wc[i].Count {
			t.Errorf("cell %d: count %g != %g", i, gc[i].Count, wc[i].Count)
		}
		for d := range gc[i].Vals {
			if gc[i].Vals[d].HashKey() != wc[i].Vals[d].HashKey() {
				t.Errorf("cell %d dim %d: value %s != %s", i, d, gc[i].Vals[d], wc[i].Vals[d])
			}
		}
	}
}

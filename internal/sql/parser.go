package sql

import (
	"fmt"
	"strconv"
	"strings"

	"mosaic/internal/expr"
	"mosaic/internal/schema"
	"mosaic/internal/value"
)

// Parse tokenizes and parses a script of semicolon-separated statements.
func Parse(src string) ([]Statement, error) {
	scr, err := ParseScript(src)
	if err != nil {
		return nil, err
	}
	out := make([]Statement, len(scr))
	for i, s := range scr {
		out[i] = s.Stmt
	}
	return out, nil
}

// ScriptStmt is one parsed statement paired with its exact source text
// (leading/trailing whitespace trimmed, terminator excluded). The source is
// what replication logs: replaying it on a follower reproduces the statement
// byte-for-byte.
type ScriptStmt struct {
	Stmt   Statement
	Source string
}

// ParseScript parses a script of semicolon-separated statements, retaining
// each statement's source text.
func ParseScript(src string) ([]ScriptStmt, error) {
	toks, err := newLexer(src).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []ScriptStmt
	for {
		for p.acceptSymbol(";") {
		}
		if p.peek().kind == tokEOF {
			return out, nil
		}
		start := p.peek().off
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		end := p.peek().off // the terminator (';' or EOF) starts here
		out = append(out, ScriptStmt{Stmt: st, Source: strings.TrimSpace(src[start:end])})
		if !p.acceptSymbol(";") && p.peek().kind != tokEOF {
			return nil, p.errf("expected ';' or end of input, found %s", p.peek())
		}
	}
}

// ParseStatement parses exactly one statement.
func ParseStatement(src string) (Statement, error) {
	sts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(sts) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, got %d", len(sts))
	}
	return sts[0], nil
}

// ParseQuery parses one SELECT statement.
func ParseQuery(src string) (*Select, error) {
	st, err := ParseStatement(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*Select)
	if !ok {
		return nil, fmt.Errorf("sql: not a SELECT statement")
	}
	return sel, nil
}

// ParseExpr parses a standalone scalar expression (used by the Go API for
// predicates).
func ParseExpr(src string) (expr.Expr, error) {
	toks, err := newLexer(src).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input after expression: %s", p.peek())
	}
	return e, nil
}

type parser struct {
	toks []token
	pos  int
	// params counts `?` placeholders seen so far in the current statement;
	// placeholders are numbered left-to-right from 0.
	params int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) peekAt(n int) token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("sql: line %d col %d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errf("expected %q, found %s", s, p.peek())
	}
	return nil
}

// identifier accepts an identifier or a non-reserved keyword usable as a name
// (e.g. a column literally named "count" is not supported, but WEIGHT is).
func (p *parser) identifier() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.advance()
		return t.text, nil
	}
	// Allow a few keywords in name position where unambiguous.
	if t.kind == tokKeyword {
		switch t.text {
		case "WEIGHT", "SAMPLE", "POPULATION", "COUNT", "MIN", "MAX", "SUM", "AVG":
			p.advance()
			return t.text, nil
		}
	}
	return "", p.errf("expected identifier, found %s", t)
}

func (p *parser) parseStatement() (Statement, error) {
	p.params = 0 // placeholders number per statement
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errf("expected statement, found %s", t)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdateWeights()
	case "DROP":
		return p.parseDrop()
	case "EXPLAIN":
		p.advance()
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Explain{Query: sel}, nil
	case "COPY":
		return p.parseCopy()
	default:
		return nil, p.errf("unexpected keyword %s at statement start", t.text)
	}
}

// parseCopy parses COPY <relation> FROM '<path>' [WITH HEADER].
func (p *parser) parseCopy() (Statement, error) {
	if err := p.expectKeyword("COPY"); err != nil {
		return nil, err
	}
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind != tokString {
		return nil, p.errf("expected quoted file path, found %s", t)
	}
	p.advance()
	c := &Copy{Table: name, Path: t.text}
	if p.acceptKeyword("WITH") {
		if err := p.expectKeyword("HEADER"); err != nil {
			return nil, err
		}
		c.Header = true
	}
	return c, nil
}

// parseVisibility handles the optional CLOSED | SEMI-OPEN | OPEN keyword
// following SELECT. SEMI-OPEN lexes as SEMI '-' OPEN; SEMIOPEN and
// SEMI_OPEN (an identifier) are accepted as aliases.
func (p *parser) parseVisibility() (Visibility, error) {
	t := p.peek()
	switch {
	case t.kind == tokKeyword && t.text == "CLOSED":
		p.advance()
		return VisibilityClosed, nil
	case t.kind == tokKeyword && t.text == "OPEN":
		p.advance()
		return VisibilityOpen, nil
	case t.kind == tokKeyword && t.text == "SEMIOPEN":
		p.advance()
		return VisibilitySemiOpen, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "SEMI_OPEN"):
		p.advance()
		return VisibilitySemiOpen, nil
	case t.kind == tokKeyword && t.text == "SEMI":
		p.advance()
		if !p.acceptSymbol("-") {
			return VisibilityDefault, p.errf("expected '-' after SEMI")
		}
		if err := p.expectKeyword("OPEN"); err != nil {
			return VisibilityDefault, err
		}
		return VisibilitySemiOpen, nil
	default:
		return VisibilityDefault, nil
	}
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	vis, err := p.parseVisibility()
	if err != nil {
		return nil, err
	}
	sel := &Select{Visibility: vis, Limit: -1}
	sel.Distinct = p.acceptKeyword("DISTINCT")
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.identifier()
	if err != nil {
		return nil, err
	}
	sel.From = from
	if p.acceptKeyword("WHERE") {
		sel.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			name, err := p.identifier()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, name)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		sel.Having, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errf("expected LIMIT count, found %s", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT %q", t.text)
		}
		p.advance()
		sel.Limit = n
	}
	sel.NumParams = p.params
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.peek()
	// Aggregate?
	if t.kind == tokKeyword {
		var agg AggKind
		switch t.text {
		case "COUNT":
			agg = AggCount
		case "SUM":
			agg = AggSum
		case "AVG":
			agg = AggAvg
		case "MIN":
			agg = AggMin
		case "MAX":
			agg = AggMax
		}
		if agg != AggNone && p.peekAt(1).kind == tokSymbol && p.peekAt(1).text == "(" {
			p.advance() // agg keyword
			p.advance() // (
			item := SelectItem{Agg: agg}
			if p.acceptSymbol("*") {
				if agg != AggCount {
					return SelectItem{}, p.errf("%s(*) is not supported; only COUNT(*)", agg)
				}
				item.Star = true
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return SelectItem{}, err
				}
				item.Expr = e
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			if p.acceptKeyword("AS") {
				a, err := p.identifier()
				if err != nil {
					return SelectItem{}, err
				}
				item.Alias = a
			}
			return item, nil
		}
	}
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.identifier()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	}
	return item, nil
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKeyword("TEMPORARY"), p.acceptKeyword("TEMP"):
		if err := p.expectKeyword("TABLE"); err != nil {
			return nil, err
		}
		return p.parseCreateTable(true)
	case p.acceptKeyword("TABLE"):
		return p.parseCreateTable(false)
	case p.acceptKeyword("GLOBAL"):
		if err := p.expectKeyword("POPULATION"); err != nil {
			return nil, err
		}
		return p.parseCreatePopulation(true)
	case p.acceptKeyword("POPULATION"):
		return p.parseCreatePopulation(false)
	case p.acceptKeyword("SAMPLE"):
		return p.parseCreateSample()
	case p.acceptKeyword("METADATA"):
		return p.parseCreateMetadata()
	default:
		return nil, p.errf("expected TABLE, POPULATION, SAMPLE, or METADATA after CREATE")
	}
}

// parseAttrList parses "(a INT, b TEXT, ...)".
func (p *parser) parseAttrList() (*schema.Schema, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var attrs []schema.Attribute
	for {
		name, err := p.identifier()
		if err != nil {
			return nil, err
		}
		tt := p.peek()
		if tt.kind != tokIdent && tt.kind != tokKeyword {
			return nil, p.errf("expected type name for attribute %q, found %s", name, tt)
		}
		p.advance()
		k, err := value.ParseKind(strings.ToUpper(tt.text))
		if err != nil {
			return nil, p.errf("%v", err)
		}
		attrs = append(attrs, schema.Attribute{Name: name, Kind: k})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return schema.New(attrs...)
}

// looksLikeAttrList distinguishes "(a INT, ...)" from "(SELECT ...)".
func (p *parser) looksLikeAttrList() bool {
	if !(p.peek().kind == tokSymbol && p.peek().text == "(") {
		return false
	}
	n := p.peekAt(1)
	return n.kind == tokIdent || (n.kind == tokKeyword && n.text != "SELECT")
}

// parseParenSelect parses "(SELECT ...)" or a bare SELECT.
func (p *parser) parseParenSelect() (*Select, error) {
	paren := p.acceptSymbol("(")
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if paren {
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	return sel, nil
}

func (p *parser) parseCreateTable(temp bool) (Statement, error) {
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name, Temporary: temp}
	if p.looksLikeAttrList() {
		ct.Schema, err = p.parseAttrList()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("AS") {
		ct.AsSelect, err = p.parseParenSelect()
		if err != nil {
			return nil, err
		}
	}
	if ct.Schema == nil && ct.AsSelect == nil {
		return nil, p.errf("CREATE TABLE %s needs an attribute list or AS SELECT", name)
	}
	return ct, nil
}

func (p *parser) parseCreatePopulation(global bool) (Statement, error) {
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	cp := &CreatePopulation{Name: name, Global: global}
	if p.looksLikeAttrList() {
		cp.Schema, err = p.parseAttrList()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("AS") {
		cp.AsSelect, err = p.parseParenSelect()
		if err != nil {
			return nil, err
		}
	}
	if !global && cp.AsSelect == nil {
		return nil, p.errf("non-global population %s must be defined AS (SELECT ... FROM <global population>)", name)
	}
	if global && cp.Schema == nil && cp.AsSelect == nil {
		return nil, p.errf("global population %s needs an attribute list", name)
	}
	return cp, nil
}

// parseCreateSample parses
//
//	CREATE SAMPLE s [(attrs)] AS
//	  (SELECT cols FROM gp [WHERE pred] [USING MECHANISM m PERCENT x]);
func (p *parser) parseCreateSample() (Statement, error) {
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	cs := &CreateSample{Name: name}
	if p.looksLikeAttrList() {
		cs.Schema, err = p.parseAttrList()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	paren := p.acceptSymbol("(")
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if p.acceptSymbol("*") {
		cs.Star = true
	} else {
		for {
			col, err := p.identifier()
			if err != nil {
				return nil, err
			}
			cs.Columns = append(cs.Columns, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	cs.From, err = p.identifier()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		cs.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("USING") {
		if err := p.expectKeyword("MECHANISM"); err != nil {
			return nil, err
		}
		mech := &MechanismSpec{}
		switch {
		case p.acceptKeyword("UNIFORM"):
			mech.Kind = "UNIFORM"
		case p.acceptKeyword("STRATIFIED"):
			mech.Kind = "STRATIFIED"
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			mech.Attr, err = p.identifier()
			if err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("expected UNIFORM or STRATIFIED mechanism, found %s", p.peek())
		}
		if err := p.expectKeyword("PERCENT"); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errf("expected PERCENT value, found %s", t)
		}
		pct, err := strconv.ParseFloat(t.text, 64)
		if err != nil || pct <= 0 || pct > 100 {
			return nil, p.errf("invalid PERCENT value %q", t.text)
		}
		p.advance()
		mech.Percent = pct
		cs.Mechanism = mech
	}
	if paren {
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	return cs, nil
}

// parseCreateMetadata parses
//
//	CREATE METADATA m [FOR pop] AS
//	  (SELECT a [, b], COUNT(*) FROM aux [WHERE pred] GROUP BY a [, b]);
//
// The last select item may also be a plain column holding precomputed counts
// (the Eurostat reported_count form from the paper's Sec 2), in which case no
// GROUP BY is required.
func (p *parser) parseCreateMetadata() (Statement, error) {
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	cm := &CreateMetadata{Name: name}
	if p.acceptKeyword("FOR") {
		cm.Population, err = p.identifier()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("WITH") {
		if err := p.expectKeyword("BINS"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		cm.Bins = map[string]float64{}
		for {
			attr, err := p.identifier()
			if err != nil {
				return nil, err
			}
			t := p.peek()
			if t.kind != tokNumber {
				return nil, p.errf("expected bin width for %q, found %s", attr, t)
			}
			w, err := strconv.ParseFloat(t.text, 64)
			if err != nil || w <= 0 {
				return nil, p.errf("invalid bin width %q", t.text)
			}
			p.advance()
			cm.Bins[attr] = w
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	paren := p.acceptSymbol("(")
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	// Parse items: leading group attributes, then COUNT(*) or a count column.
	var items []SelectItem
	for {
		it, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if len(items) < 2 || len(items) > 3 {
		return nil, p.errf("CREATE METADATA select list must be (attr [, attr], count)")
	}
	last := items[len(items)-1]
	for _, it := range items[:len(items)-1] {
		col, ok := it.Expr.(*expr.Column)
		if !ok || it.Agg != AggNone {
			return nil, p.errf("CREATE METADATA group attributes must be plain columns")
		}
		cm.Attrs = append(cm.Attrs, col.Name)
	}
	switch {
	case last.Agg == AggCount && last.Star:
		cm.CountExpr = nil // COUNT(*)
	case last.Agg == AggSum && last.Expr != nil:
		cm.CountExpr = last.Expr // SUM(weight-like column)
	case last.Agg == AggNone && last.Expr != nil:
		cm.CountExpr = last.Expr // precomputed count column
	default:
		return nil, p.errf("CREATE METADATA last item must be COUNT(*), SUM(col), or a count column")
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	cm.From, err = p.identifier()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		cm.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		var groups []string
		for {
			g, err := p.identifier()
			if err != nil {
				return nil, err
			}
			groups = append(groups, g)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if len(groups) != len(cm.Attrs) {
			return nil, p.errf("GROUP BY must list the same attributes as the select list")
		}
		for i, g := range groups {
			if !strings.EqualFold(g, cm.Attrs[i]) {
				return nil, p.errf("GROUP BY attribute %q does not match select attribute %q", g, cm.Attrs[i])
			}
		}
	}
	if paren {
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	return cm, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.advance()
		for {
			col, err := p.identifier()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdateWeights() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SAMPLE"); err != nil {
		return nil, err
	}
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("WEIGHT"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("="); err != nil {
		return nil, err
	}
	uw := &UpdateWeights{Sample: name}
	uw.Weight, err = p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("WHERE") {
		uw.Where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return uw, nil
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	var kind string
	switch {
	case p.acceptKeyword("TABLE"):
		kind = "TABLE"
	case p.acceptKeyword("POPULATION"):
		kind = "POPULATION"
	case p.acceptKeyword("SAMPLE"):
		kind = "SAMPLE"
	case p.acceptKeyword("METADATA"):
		kind = "METADATA"
	default:
		return nil, p.errf("expected TABLE, POPULATION, SAMPLE, or METADATA after DROP")
	}
	name, err := p.identifier()
	if err != nil {
		return nil, err
	}
	return &Drop{Kind: kind, Name: name}, nil
}

// ---- expression parsing (precedence climbing) ----

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.Bin(expr.OpOr, left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		// AND binds predicates, but inside BETWEEN the AND belongs to the
		// range; parseNot/parsePredicate consume that form before returning.
		if t := p.peek(); t.kind == tokKeyword && t.text == "AND" {
			p.advance()
			right, err := p.parseNot()
			if err != nil {
				return nil, err
			}
			left = expr.Bin(expr.OpAnd, left, right)
			continue
		}
		return left, nil
	}
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		child, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Unary{Neg: false, Child: child}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (expr.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	negate := false
	if t := p.peek(); t.kind == tokKeyword && t.text == "NOT" {
		// Lookahead for NOT IN / NOT BETWEEN.
		n := p.peekAt(1)
		if n.kind == tokKeyword && (n.text == "IN" || n.text == "BETWEEN") {
			p.advance()
			negate = true
		}
	}
	switch t := p.peek(); {
	case t.kind == tokKeyword && t.text == "IN":
		p.advance()
		// Accept both IN ('a','b') and the paper's IN ['a','b'] rendering is
		// not lexable (no brackets); parens only.
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var list []expr.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &expr.In{Child: left, List: list, Negate: negate}, nil
	case t.kind == tokKeyword && t.text == "BETWEEN":
		p.advance()
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &expr.Between{Child: left, Lo: lo, Hi: hi, Negate: negate}, nil
	case t.kind == tokKeyword && t.text == "IS":
		p.advance()
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &expr.IsNull{Child: left, Negate: neg}, nil
	case t.kind == tokSymbol:
		var op expr.BinOp
		ok := true
		switch t.text {
		case "=":
			op = expr.OpEq
		case "!=":
			op = expr.OpNe
		case "<":
			op = expr.OpLt
		case "<=":
			op = expr.OpLe
		case ">":
			op = expr.OpGt
		case ">=":
			op = expr.OpGe
		default:
			ok = false
		}
		if ok {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return expr.Bin(op, left, right), nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "+" && t.text != "-") {
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		op := expr.OpAdd
		if t.text == "-" {
			op = expr.OpSub
		}
		left = expr.Bin(op, left, right)
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/" && t.text != "%") {
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		op := expr.OpMul
		switch t.text {
		case "/":
			op = expr.OpDiv
		case "%":
			op = expr.OpMod
		}
		left = expr.Bin(op, left, right)
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.acceptSymbol("-") {
		child, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals for cleaner ASTs.
		if lit, ok := child.(*expr.Literal); ok {
			switch lit.Val.Kind() {
			case value.KindInt:
				return expr.Lit(value.Int(-lit.Val.AsInt())), nil
			case value.KindFloat:
				return expr.Lit(value.Float(-lit.Val.AsFloat())), nil
			}
		}
		return &expr.Unary{Neg: true, Child: child}, nil
	}
	p.acceptSymbol("+")
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("invalid number %q", t.text)
			}
			return expr.Lit(value.Float(f)), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			// Integer overflow: fall back to float.
			f, ferr := strconv.ParseFloat(t.text, 64)
			if ferr != nil {
				return nil, p.errf("invalid number %q", t.text)
			}
			return expr.Lit(value.Float(f)), nil
		}
		return expr.Lit(value.Int(i)), nil
	case tokString:
		p.advance()
		return expr.Lit(value.Text(t.text)), nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return expr.Lit(value.Null()), nil
		case "TRUE":
			p.advance()
			return expr.Lit(value.Bool(true)), nil
		case "FALSE":
			p.advance()
			return expr.Lit(value.Bool(false)), nil
		case "WEIGHT":
			// WEIGHT is addressable as a pseudo-column in predicates.
			p.advance()
			return expr.Col("WEIGHT"), nil
		}
		return nil, p.errf("unexpected keyword %s in expression", t.text)
	case tokIdent:
		p.advance()
		return expr.Col(t.text), nil
	case tokSymbol:
		if t.text == "?" {
			p.advance()
			idx := p.params
			p.params++
			return &expr.Param{Index: idx}, nil
		}
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

package sql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

// token is one lexical token with its source position (1-based line/col)
// and the byte offset of its first character in the source — the offset is
// what lets ParseScript slice each statement's exact source text back out.
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; idents keep original case
	line int
	col  int
	off  int // byte offset of the token's first character
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// keywords recognized by the dialect. Everything else is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "BETWEEN": true,
	"IS": true, "NULL": true, "TRUE": true, "FALSE": true, "AS": true,
	"CREATE": true, "TABLE": true, "TEMPORARY": true, "TEMP": true,
	"POPULATION": true, "GLOBAL": true, "SAMPLE": true, "METADATA": true,
	"USING": true, "MECHANISM": true, "PERCENT": true, "ON": true,
	"UNIFORM": true, "STRATIFIED": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "WEIGHT": true,
	"DROP": true, "FOR": true,
	"EXPLAIN": true, "COPY": true, "WITH": true, "HEADER": true, "BINS": true,
	"CLOSED": true, "OPEN": true, "SEMI": true, "SEMIOPEN": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"DISTINCT": true,
}

// lexer turns SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// lex tokenizes the whole input.
func (l *lexer) lex() ([]token, error) {
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			start := l.line
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peekByte() == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return fmt.Errorf("sql: unterminated block comment starting at line %d", start)
			}
		default:
			return nil
		}
	}
	return nil
}

func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col, off: l.pos}, nil
	}
	line, col, off := l.line, l.col, l.pos
	c := l.peekByte()
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	var t token
	var err error
	switch {
	case isIdentStart(r):
		start := l.pos
		for l.pos < len(l.src) {
			nr, sz := utf8.DecodeRuneInString(l.src[l.pos:])
			if !isIdentPart(nr) {
				break
			}
			for i := 0; i < sz; i++ {
				l.advance()
			}
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			t = token{kind: tokKeyword, text: upper, line: line, col: col}
		} else {
			t = token{kind: tokIdent, text: word, line: line, col: col}
		}
	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		t, err = l.lexNumber(line, col)
	case c == '\'':
		t, err = l.lexString(line, col)
	default:
		t, err = l.lexSymbol(line, col)
	}
	t.off = off
	return t, err
}

func (l *lexer) lexNumber(line, col int) (token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case isDigit(c):
			l.advance()
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.advance()
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.advance()
			if l.pos < len(l.src) && (l.peekByte() == '+' || l.peekByte() == '-') {
				l.advance()
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	if text == "." {
		return token{}, fmt.Errorf("sql: stray '.' at line %d col %d", line, col)
	}
	return token{kind: tokNumber, text: text, line: line, col: col}, nil
}

func (l *lexer) lexString(line, col int) (token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.advance()
		if c == '\'' {
			// '' escapes a quote
			if l.pos < len(l.src) && l.peekByte() == '\'' {
				l.advance()
				b.WriteByte('\'')
				continue
			}
			return token{kind: tokString, text: b.String(), line: line, col: col}, nil
		}
		b.WriteByte(c)
	}
	return token{}, fmt.Errorf("sql: unterminated string at line %d col %d", line, col)
}

func (l *lexer) lexSymbol(line, col int) (token, error) {
	c := l.advance()
	two := ""
	if l.pos < len(l.src) {
		two = string(c) + string(l.peekByte())
	}
	switch two {
	case "<=", ">=", "!=", "<>":
		l.advance()
		if two == "<>" {
			two = "!="
		}
		return token{kind: tokSymbol, text: two, line: line, col: col}, nil
	}
	switch c {
	case '(', ')', ',', ';', '*', '+', '-', '/', '=', '<', '>', '.', '%', '?':
		return token{kind: tokSymbol, text: string(c), line: line, col: col}, nil
	}
	return token{}, fmt.Errorf("sql: unexpected character %q at line %d col %d", c, line, col)
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

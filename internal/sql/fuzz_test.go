package sql

import (
	"fmt"
	"strings"
	"testing"
)

// fuzzSeedCorpus mixes every statement form the dialect accepts with
// near-miss and adversarial inputs, so coverage-guided fuzzing starts from
// deep parser states.
var fuzzSeedCorpus = []string{
	// Valid statements across the dialect.
	`SELECT * FROM t`,
	`SELECT DISTINCT a, b AS bee FROM t WHERE a > 1 AND b < 2`,
	`SELECT OPEN country, email, COUNT(*) FROM EuropeMigrants GROUP BY country, email`,
	`SELECT SEMI-OPEN AVG(v) FROM World WHERE grp = 'a' HAVING AVG(v) > 0`,
	`SELECT SEMIOPEN COUNT(*) FROM p`,
	`SELECT CLOSED a FROM s ORDER BY a DESC, b LIMIT 10`,
	`SELECT a + b * -c, SUM(x) FROM t GROUP BY a`,
	`SELECT a FROM t WHERE x IN (1, 2, 3) OR y NOT BETWEEN 0 AND 1`,
	`SELECT a FROM t WHERE s = 'it''s' AND n IS NOT NULL`,
	`SELECT a FROM t WHERE f > 1.5e-7 LIMIT 0`,
	`SELECT WEIGHT FROM s`,
	`CREATE TABLE t (a INT, b TEXT, c FLOAT, d BOOL)`,
	`CREATE TABLE t2 AS (SELECT a, b FROM t WHERE a > 0)`,
	`CREATE GLOBAL POPULATION P (x INT, y TEXT)`,
	`CREATE POPULATION Q AS (SELECT x, y FROM P WHERE x > 1)`,
	`CREATE SAMPLE S AS (SELECT * FROM P)`,
	`CREATE SAMPLE S2 (x) AS (SELECT x FROM P WHERE x = 2) USING MECHANISM UNIFORM PERCENT 5`,
	`CREATE METADATA P_m AS (SELECT x, COUNT(*) FROM aux GROUP BY x)`,
	`CREATE METADATA m FOR P AS (SELECT x, n FROM truth)`,
	`INSERT INTO t VALUES (1, 'a', 2.5, TRUE), (2, NULL, 0.0, FALSE)`,
	`INSERT INTO t (a, b) VALUES (1, 'x')`,
	`UPDATE SAMPLE S SET WEIGHT = 2 WHERE x > 1`,
	`DROP TABLE t`,
	`DROP METADATA m`,
	`EXPLAIN SELECT OPEN COUNT(*) FROM P`,
	`COPY t FROM 'file.csv' WITH HEADER`,
	`SELECT a FROM t; SELECT b FROM u;`,
	// Adversarial / malformed.
	``,
	`;`,
	`;;;`,
	`SELECT`,
	`SELECT FROM`,
	`SELECT * FROM`,
	`SELECT * FROM t WHERE`,
	`SELECT (((((((((a`,
	`SELECT * FROM t LIMIT -1`,
	`SELECT 'unterminated FROM t`,
	`SELECT "double" FROM t`,
	`CREATE`,
	`CREATE TABLE`,
	`CREATE METADATA`,
	`INSERT INTO`,
	`SEMI-`,
	`SELECT SEMI OPEN a FROM t`,
	`SELECT a FROM t WHERE x = 1e999999`,
	`SELECT a FROM t WHERE x = .`,
	`SELECT -- comment`,
	"SELECT \x00 FROM t",
	"SELECT \xff\xfe FROM t",
	`SELECT ☃ FROM ☃`,
	strings.Repeat("(", 500),
	strings.Repeat("SELECT * FROM t;", 100),
	`SELECT a FROM t WHERE ` + strings.Repeat("NOT ", 500) + `x`,
}

// FuzzParse is the parser's no-panic and round-trip guarantee: Parse must
// never panic on arbitrary bytes, and any SELECT it accepts must re-render
// to SQL that parses back to the same rendering (a fixed point after one
// round). The corpus seeds every statement form plus malformed inputs.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeedCorpus {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := Parse(src) // must not panic
		if err != nil {
			return
		}
		for _, st := range stmts {
			sel, ok := st.(*Select)
			if !ok {
				continue
			}
			r1 := renderSelect(sel)
			again, err := ParseQuery(r1)
			if err != nil {
				t.Fatalf("round-trip: %q (from %q) failed to re-parse: %v", r1, src, err)
			}
			if r2 := renderSelect(again); r2 != r1 {
				t.Fatalf("round-trip not a fixed point:\n  first:  %q\n  second: %q\n  input:  %q", r1, r2, src)
			}
		}
	})
}

// FuzzLex asserts the lexer alone never panics and always terminates.
func FuzzLex(f *testing.F) {
	for _, s := range fuzzSeedCorpus {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := newLexer(src).lex()
		if err != nil {
			return
		}
		if len(toks) == 0 {
			t.Fatal("lex returned no tokens (EOF token expected)")
		}
		if toks[len(toks)-1].kind != tokEOF {
			t.Fatalf("token stream does not end with EOF: %v", toks[len(toks)-1])
		}
	})
}

// renderSelect reconstructs the SQL text of a parsed SELECT. Expressions
// render fully parenthesized via expr.String, which keeps precedence exact.
func renderSelect(sel *Select) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if sel.Visibility != VisibilityDefault {
		b.WriteString(sel.Visibility.String())
		b.WriteByte(' ')
	}
	if sel.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range sel.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Agg != AggNone:
			inner := "*"
			if !it.Star && it.Expr != nil {
				inner = it.Expr.String()
			}
			b.WriteString(it.Agg.String() + "(" + inner + ")")
		case it.Star:
			b.WriteByte('*')
		default:
			b.WriteString(it.Expr.String())
		}
		if it.Alias != "" {
			b.WriteString(" AS " + it.Alias)
		}
	}
	b.WriteString(" FROM " + sel.From)
	if sel.Where != nil {
		b.WriteString(" WHERE " + sel.Where.String())
	}
	if len(sel.GroupBy) > 0 {
		b.WriteString(" GROUP BY " + strings.Join(sel.GroupBy, ", "))
	}
	if sel.Having != nil {
		b.WriteString(" HAVING " + sel.Having.String())
	}
	if len(sel.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range sel.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if sel.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", sel.Limit)
	}
	return b.String()
}

// TestRenderSelectRoundTripsCorpus pins the round-trip property on the valid
// corpus entries even when fuzzing is not running (plain `go test` executes
// the seed corpus only).
func TestRenderSelectRoundTripsCorpus(t *testing.T) {
	for _, src := range fuzzSeedCorpus {
		stmts, err := Parse(src)
		if err != nil {
			continue
		}
		for _, st := range stmts {
			if sel, ok := st.(*Select); ok {
				r1 := renderSelect(sel)
				again, err := ParseQuery(r1)
				if err != nil {
					t.Errorf("%q: rendering %q does not re-parse: %v", src, r1, err)
					continue
				}
				if r2 := renderSelect(again); r2 != r1 {
					t.Errorf("%q: not a fixed point: %q vs %q", src, r1, r2)
				}
			}
		}
	}
}

package sql

import (
	"strings"
	"testing"

	"mosaic/internal/expr"
	"mosaic/internal/value"
)

func TestParamPlaceholdersParseAndCount(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"SELECT COUNT(*) FROM t", 0},
		{"SELECT COUNT(*) FROM t WHERE a > ?", 1},
		{"SELECT a + ? FROM t WHERE b IN (?, ?, 3) AND c BETWEEN ? AND ?", 5},
		{"SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING n > ? ORDER BY g", 1},
		{"SELECT COUNT(*) FROM t WHERE a = -?", 1},
	}
	for _, tc := range cases {
		sel, err := ParseQuery(tc.src)
		if err != nil {
			t.Errorf("parse %q: %v", tc.src, err)
			continue
		}
		if sel.NumParams != tc.want {
			t.Errorf("%q: NumParams = %d, want %d", tc.src, sel.NumParams, tc.want)
		}
	}
}

func TestParamsNumberPerStatement(t *testing.T) {
	stmts, err := Parse("SELECT COUNT(*) FROM t WHERE a > ?; SELECT COUNT(*) FROM t WHERE b < ?")
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range stmts {
		sel := st.(*Select)
		if sel.NumParams != 1 {
			t.Errorf("statement %d: NumParams = %d, want 1 (numbering must reset per statement)", i, sel.NumParams)
		}
		p, ok := sel.Where.(*expr.Binary).Right.(*expr.Param)
		if !ok || p.Index != 0 {
			t.Errorf("statement %d: placeholder index = %+v, want Param{0}", i, sel.Where)
		}
	}
}

// TestBindParamsMatchesInlineLiteral: binding must produce the identical
// rendered statement the inlined spelling parses to — the structural half of
// the byte-identical answer guarantee.
func TestBindParamsMatchesInlineLiteral(t *testing.T) {
	param, err := ParseQuery("SELECT g, COUNT(*) AS n FROM t WHERE x > ? AND g = ? GROUP BY g HAVING n > ? ORDER BY g")
	if err != nil {
		t.Fatal(err)
	}
	lit, err := ParseQuery("SELECT g, COUNT(*) AS n FROM t WHERE x > 5 AND g = 'a' GROUP BY g HAVING n > 1.5 ORDER BY g")
	if err != nil {
		t.Fatal(err)
	}
	bound, err := BindParams(param, []value.Value{value.Int(5), value.Text("a"), value.Float(1.5)})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := bound.Where.String(), lit.Where.String(); got != want {
		t.Errorf("bound WHERE %q != literal WHERE %q", got, want)
	}
	if got, want := bound.Having.String(), lit.Having.String(); got != want {
		t.Errorf("bound HAVING %q != literal HAVING %q", got, want)
	}
	// The skeleton must be untouched (reusable for the next binding).
	if param.NumParams != 3 || !strings.Contains(param.Where.String(), "?") {
		t.Errorf("BindParams mutated the skeleton: %s", param.Where)
	}
	if bound.NumParams != 0 {
		t.Errorf("bound statement still claims %d params", bound.NumParams)
	}
}

func TestBindParamsCountMismatch(t *testing.T) {
	sel, err := ParseQuery("SELECT COUNT(*) FROM t WHERE a > ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BindParams(sel, nil); err == nil {
		t.Error("missing values accepted")
	}
	if _, err := BindParams(sel, []value.Value{value.Int(1), value.Int(2)}); err == nil {
		t.Error("excess values accepted")
	}
	zero, err := ParseQuery("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if bound, err := BindParams(zero, nil); err != nil || bound != zero {
		t.Errorf("zero-param bind = (%v, %v), want the identical statement back", bound, err)
	}
}

package sql

import (
	"strings"
	"testing"

	"mosaic/internal/expr"
	"mosaic/internal/value"
)

func parseOne(t *testing.T, src string) Statement {
	t.Helper()
	st, err := ParseStatement(src)
	if err != nil {
		t.Fatalf("ParseStatement(%q): %v", src, err)
	}
	return st
}

func TestParseSimpleSelect(t *testing.T) {
	sel := parseOne(t, "SELECT a, b FROM t WHERE a > 1").(*Select)
	if sel.From != "t" || len(sel.Items) != 2 {
		t.Fatalf("select parse: %+v", sel)
	}
	if sel.Visibility != VisibilityDefault {
		t.Errorf("visibility = %v", sel.Visibility)
	}
	if sel.Where == nil || sel.Where.String() != "(a > 1)" {
		t.Errorf("where = %v", sel.Where)
	}
	if sel.Limit != -1 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseVisibilities(t *testing.T) {
	cases := map[string]Visibility{
		"SELECT CLOSED a FROM t":    VisibilityClosed,
		"SELECT SEMI-OPEN a FROM t": VisibilitySemiOpen,
		"SELECT SEMIOPEN a FROM t":  VisibilitySemiOpen,
		"SELECT SEMI_OPEN a FROM t": VisibilitySemiOpen,
		"SELECT OPEN a FROM t":      VisibilityOpen,
		"SELECT a FROM t":           VisibilityDefault,
	}
	for src, want := range cases {
		sel := parseOne(t, src).(*Select)
		if sel.Visibility != want {
			t.Errorf("%q visibility = %v, want %v", src, sel.Visibility, want)
		}
	}
	if _, err := ParseStatement("SELECT SEMI OPEN a FROM t"); err == nil {
		t.Error("SEMI without dash should fail")
	}
}

func TestParseAggregates(t *testing.T) {
	sel := parseOne(t, "SELECT COUNT(*), SUM(x), AVG(y) AS m, MIN(z), MAX(z) FROM t").(*Select)
	wantAggs := []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax}
	for i, w := range wantAggs {
		if sel.Items[i].Agg != w {
			t.Errorf("item %d agg = %v, want %v", i, sel.Items[i].Agg, w)
		}
	}
	if !sel.Items[0].Star {
		t.Error("COUNT(*) star flag missing")
	}
	if sel.Items[2].Alias != "m" {
		t.Errorf("alias = %q", sel.Items[2].Alias)
	}
	if !sel.HasAggregates() {
		t.Error("HasAggregates should be true")
	}
	if _, err := ParseStatement("SELECT SUM(*) FROM t"); err == nil {
		t.Error("SUM(*) should fail")
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	sel := parseOne(t, `
		SELECT c, COUNT(*) AS n FROM t
		WHERE x > 0 GROUP BY c HAVING n > 5
		ORDER BY n DESC, c LIMIT 10`).(*Select)
	if len(sel.GroupBy) != 1 || sel.GroupBy[0] != "c" {
		t.Errorf("group by = %v", sel.GroupBy)
	}
	if sel.Having == nil {
		t.Error("having missing")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c - d / 2")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.String(); got != "((a + (b * c)) - (d / 2))" {
		t.Errorf("precedence = %s", got)
	}
	e, err = ParseExpr("a > 1 AND b < 2 OR NOT c = 3")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.String(); got != "(((a > 1) AND (b < 2)) OR (NOT (c = 3)))" {
		t.Errorf("logic precedence = %s", got)
	}
	// Modulo binds like * and /.
	e, err = ParseExpr("a + b % 3 * c")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.String(); got != "(a + ((b % 3) * c))" {
		t.Errorf("modulo precedence = %s", got)
	}
}

func TestParseInBetween(t *testing.T) {
	e, err := ParseExpr("c IN ('WN', 'AA') AND e BETWEEN 1 AND 5")
	if err != nil {
		t.Fatal(err)
	}
	s := e.String()
	if !strings.Contains(s, "IN") || !strings.Contains(s, "BETWEEN") {
		t.Errorf("parse = %s", s)
	}
	e, err = ParseExpr("c NOT IN (1) AND e NOT BETWEEN 2 AND 3")
	if err != nil {
		t.Fatal(err)
	}
	s = e.String()
	if !strings.Contains(s, "NOT IN") || !strings.Contains(s, "NOT BETWEEN") {
		t.Errorf("negated parse = %s", s)
	}
}

func TestParseIsNull(t *testing.T) {
	e, err := ParseExpr("a IS NULL OR b IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	if got := e.String(); got != "((a IS NULL) OR (b IS NOT NULL))" {
		t.Errorf("IS NULL parse = %s", got)
	}
}

func TestParseLiterals(t *testing.T) {
	e, err := ParseExpr("-3")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := e.(*expr.Literal)
	if !ok || lit.Val.AsInt() != -3 {
		t.Errorf("negative literal folding: %v", e)
	}
	e, err = ParseExpr("-2.5")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok = e.(*expr.Literal)
	if !ok || lit.Val.AsFloat() != -2.5 {
		t.Errorf("negative float folding: %v", e)
	}
	for src, want := range map[string]value.Value{
		"TRUE": value.Bool(true), "FALSE": value.Bool(false), "NULL": value.Null(),
	} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		lit := e.(*expr.Literal)
		if lit.Val.Kind() != want.Kind() {
			t.Errorf("%s parsed as %v", src, lit.Val)
		}
	}
	// 1e-7-style scientific literals (the paper's λ = 1e-7).
	e, err = ParseExpr("0.0000001")
	if err != nil {
		t.Fatal(err)
	}
	if e.(*expr.Literal).Val.AsFloat() != 1e-7 {
		t.Errorf("tiny float literal: %v", e)
	}
}

func TestParseCreateTable(t *testing.T) {
	ct := parseOne(t, "CREATE TEMPORARY TABLE Eurostat (country TEXT, reported_count INT)").(*CreateTable)
	if !ct.Temporary || ct.Name != "Eurostat" || ct.Schema.Len() != 2 {
		t.Errorf("create table parse: %+v", ct)
	}
	ct = parseOne(t, "CREATE TABLE t2 AS (SELECT a FROM t)").(*CreateTable)
	if ct.AsSelect == nil || ct.AsSelect.From != "t" {
		t.Errorf("create table as select: %+v", ct)
	}
	if _, err := ParseStatement("CREATE TABLE bare"); err == nil {
		t.Error("CREATE TABLE without schema or AS should fail")
	}
}

func TestParseCreatePopulation(t *testing.T) {
	cp := parseOne(t, "CREATE GLOBAL POPULATION P (a INT, b TEXT)").(*CreatePopulation)
	if !cp.Global || cp.Schema.Len() != 2 {
		t.Errorf("global population parse: %+v", cp)
	}
	cp = parseOne(t, "CREATE POPULATION Q AS (SELECT a FROM P WHERE a > 3)").(*CreatePopulation)
	if cp.Global || cp.AsSelect == nil || cp.AsSelect.Where == nil {
		t.Errorf("derived population parse: %+v", cp)
	}
	if _, err := ParseStatement("CREATE POPULATION Bare (a INT)"); err == nil {
		t.Error("non-global population without AS should fail")
	}
}

func TestParseCreateSample(t *testing.T) {
	cs := parseOne(t, `CREATE SAMPLE S AS (SELECT * FROM P WHERE email = 'Yahoo')`).(*CreateSample)
	if cs.Name != "S" || !cs.Star || cs.From != "P" || cs.Where == nil {
		t.Errorf("sample parse: %+v", cs)
	}
	cs = parseOne(t, `CREATE SAMPLE S2 AS (SELECT a, b FROM P USING MECHANISM UNIFORM PERCENT 10)`).(*CreateSample)
	if cs.Mechanism == nil || cs.Mechanism.Kind != "UNIFORM" || cs.Mechanism.Percent != 10 {
		t.Errorf("uniform mechanism parse: %+v", cs.Mechanism)
	}
	if len(cs.Columns) != 2 {
		t.Errorf("sample columns: %v", cs.Columns)
	}
	cs = parseOne(t, `CREATE SAMPLE S3 AS (SELECT * FROM P USING MECHANISM STRATIFIED ON a PERCENT 20)`).(*CreateSample)
	if cs.Mechanism.Kind != "STRATIFIED" || cs.Mechanism.Attr != "a" {
		t.Errorf("stratified mechanism parse: %+v", cs.Mechanism)
	}
	if _, err := ParseStatement(`CREATE SAMPLE Bad AS (SELECT * FROM P USING MECHANISM UNIFORM PERCENT 0)`); err == nil {
		t.Error("PERCENT 0 should fail")
	}
	if _, err := ParseStatement(`CREATE SAMPLE Bad AS (SELECT * FROM P USING MECHANISM UNIFORM PERCENT 101)`); err == nil {
		t.Error("PERCENT 101 should fail")
	}
}

func TestParseCreateMetadata(t *testing.T) {
	cm := parseOne(t, `CREATE METADATA P_M1 AS (SELECT country, COUNT(*) FROM aux GROUP BY country)`).(*CreateMetadata)
	if cm.TargetPopulation() != "P" {
		t.Errorf("target population = %q", cm.TargetPopulation())
	}
	if len(cm.Attrs) != 1 || cm.Attrs[0] != "country" || cm.CountExpr != nil {
		t.Errorf("metadata parse: %+v", cm)
	}
	cm = parseOne(t, `CREATE METADATA M2 FOR Pop AS (SELECT a, b, COUNT(*) FROM aux GROUP BY a, b)`).(*CreateMetadata)
	if cm.TargetPopulation() != "Pop" || len(cm.Attrs) != 2 {
		t.Errorf("explicit FOR parse: %+v", cm)
	}
	// Precomputed count column (the Eurostat reported_count form).
	cm = parseOne(t, `CREATE METADATA P_M3 AS (SELECT country, reported_count FROM Eurostat)`).(*CreateMetadata)
	if cm.CountExpr == nil {
		t.Error("count column should be recorded")
	}
	// SUM form.
	cm = parseOne(t, `CREATE METADATA P_M4 AS (SELECT c, SUM(n) FROM aux GROUP BY c)`).(*CreateMetadata)
	if cm.CountExpr == nil {
		t.Error("SUM count expression should be recorded")
	}
	if _, err := ParseStatement(`CREATE METADATA Bad AS (SELECT COUNT(*) FROM aux)`); err == nil {
		t.Error("metadata without group attributes should fail")
	}
	if _, err := ParseStatement(`CREATE METADATA Bad AS (SELECT a, b, c, COUNT(*) FROM aux GROUP BY a, b, c)`); err == nil {
		t.Error("3-dimensional metadata should fail")
	}
	if _, err := ParseStatement(`CREATE METADATA Bad AS (SELECT a, COUNT(*) FROM aux GROUP BY b)`); err == nil {
		t.Error("GROUP BY mismatch should fail")
	}
}

func TestParseInsert(t *testing.T) {
	ins := parseOne(t, `INSERT INTO t VALUES (1, 'x'), (2, 'y')`).(*Insert)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 2 {
		t.Errorf("insert parse: %+v", ins)
	}
	ins = parseOne(t, `INSERT INTO t (a, b) VALUES (1, 2)`).(*Insert)
	if len(ins.Columns) != 2 {
		t.Errorf("insert columns: %v", ins.Columns)
	}
}

func TestParseUpdateWeights(t *testing.T) {
	uw := parseOne(t, `UPDATE SAMPLE s SET WEIGHT = 2.5 WHERE a > 1`).(*UpdateWeights)
	if uw.Sample != "s" || uw.Weight == nil || uw.Where == nil {
		t.Errorf("update weights parse: %+v", uw)
	}
	uw = parseOne(t, `UPDATE SAMPLE s SET WEIGHT = WEIGHT * 2`).(*UpdateWeights)
	if uw.Where != nil {
		t.Error("optional WHERE should be nil")
	}
	if !strings.Contains(uw.Weight.String(), "WEIGHT") {
		t.Errorf("WEIGHT pseudo-column lost: %s", uw.Weight)
	}
}

func TestParseDrop(t *testing.T) {
	for kind, src := range map[string]string{
		"TABLE":      "DROP TABLE t",
		"POPULATION": "DROP POPULATION p",
		"SAMPLE":     "DROP SAMPLE s",
		"METADATA":   "DROP METADATA m",
	} {
		d := parseOne(t, src).(*Drop)
		if d.Kind != kind {
			t.Errorf("%q kind = %q", src, d.Kind)
		}
	}
	if _, err := ParseStatement("DROP INDEX i"); err == nil {
		t.Error("DROP INDEX should fail")
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := Parse(`
		CREATE TABLE t (a INT);
		INSERT INTO t VALUES (1);
		SELECT a FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
	// Trailing semicolons and empty statements are tolerated.
	stmts, err = Parse(";;SELECT a FROM t;;")
	if err != nil || len(stmts) != 1 {
		t.Errorf("semicolon handling: %d stmts, %v", len(stmts), err)
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	_, err := Parse("SELECT FROM t")
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error should carry position: %v", err)
	}
}

func TestParseQueryRejectsNonSelect(t *testing.T) {
	if _, err := ParseQuery("CREATE TABLE t (a INT)"); err == nil {
		t.Error("ParseQuery on DDL should fail")
	}
	if _, err := ParseQuery("SELECT a FROM t; SELECT b FROM t"); err == nil {
		t.Error("ParseQuery on two statements should fail")
	}
}

func TestSelectItemNames(t *testing.T) {
	sel := parseOne(t, "SELECT COUNT(*), AVG(d) AS avg_d, c FROM t GROUP BY c").(*Select)
	if got := sel.Items[0].Name(); got != "COUNT(*)" {
		t.Errorf("item 0 name = %q", got)
	}
	if got := sel.Items[1].Name(); got != "avg_d" {
		t.Errorf("item 1 name = %q", got)
	}
	if got := sel.Items[2].Name(); got != "c" {
		t.Errorf("item 2 name = %q", got)
	}
}

func TestVisibilityStrings(t *testing.T) {
	if VisibilityClosed.String() != "CLOSED" ||
		VisibilitySemiOpen.String() != "SEMI-OPEN" ||
		VisibilityOpen.String() != "OPEN" ||
		VisibilityDefault.String() != "DEFAULT" {
		t.Error("visibility strings wrong")
	}
}

func TestParsePaperExampleScript(t *testing.T) {
	// The full Sec 2 example (modulo ingestion comments) must parse.
	src := `
	CREATE TEMPORARY TABLE Eurostat (country TEXT, email TEXT, reported_count INT);
	CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT, age INT);
	CREATE METADATA EuropeMigrants_M1 AS
		(SELECT country, reported_count FROM Eurostat);
	CREATE METADATA EuropeMigrants_M2 AS
		(SELECT email, reported_count FROM Eurostat);
	CREATE SAMPLE YahooMigrants AS
		(SELECT * FROM EuropeMigrants WHERE email = 'Yahoo');
	SELECT SEMI-OPEN country, email, COUNT(*)
		FROM EuropeMigrants GROUP BY country, email;
	SELECT OPEN country, email, COUNT(*)
		FROM EuropeMigrants GROUP BY country, email;
	`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatalf("paper example should parse: %v", err)
	}
	if len(stmts) != 7 {
		t.Errorf("got %d statements, want 7", len(stmts))
	}
}

func TestParseExplain(t *testing.T) {
	st := parseOne(t, "EXPLAIN SELECT OPEN COUNT(*) FROM P")
	ex, ok := st.(*Explain)
	if !ok || ex.Query == nil || ex.Query.Visibility != VisibilityOpen {
		t.Errorf("explain parse: %+v", st)
	}
	if _, err := ParseStatement("EXPLAIN INSERT INTO t VALUES (1)"); err == nil {
		t.Error("EXPLAIN of non-SELECT should fail")
	}
}

func TestParseCopy(t *testing.T) {
	st := parseOne(t, "COPY flights FROM '/data/f.csv' WITH HEADER")
	c, ok := st.(*Copy)
	if !ok || c.Table != "flights" || c.Path != "/data/f.csv" || !c.Header {
		t.Errorf("copy parse: %+v", st)
	}
	c = parseOne(t, "COPY t FROM 'rel.csv'").(*Copy)
	if c.Header {
		t.Error("header flag should default false")
	}
	if _, err := ParseStatement("COPY t FROM bare_ident"); err == nil {
		t.Error("unquoted path should fail")
	}
	if _, err := ParseStatement("COPY t FROM 'p.csv' WITH FEATHERS"); err == nil {
		t.Error("WITH must be followed by HEADER")
	}
}

func TestParseDistinct(t *testing.T) {
	sel := parseOne(t, "SELECT DISTINCT a, b FROM t").(*Select)
	if !sel.Distinct || len(sel.Items) != 2 {
		t.Errorf("distinct parse: %+v", sel)
	}
	sel = parseOne(t, "SELECT CLOSED DISTINCT a FROM t").(*Select)
	if !sel.Distinct || sel.Visibility != VisibilityClosed {
		t.Errorf("visibility+distinct parse: %+v", sel)
	}
	sel = parseOne(t, "SELECT a FROM t").(*Select)
	if sel.Distinct {
		t.Error("distinct must default false")
	}
}

func TestParseMetadataWithBins(t *testing.T) {
	cm := parseOne(t, `CREATE METADATA P_e FOR P WITH BINS (e 10, d 2.5) AS (SELECT e, d, mcount FROM s)`).(*CreateMetadata)
	if cm.Bins["e"] != 10 || cm.Bins["d"] != 2.5 {
		t.Errorf("bins = %v", cm.Bins)
	}
	if _, err := ParseStatement(`CREATE METADATA M WITH BINS (e 0) AS (SELECT e, n FROM s)`); err == nil {
		t.Error("zero bin width should fail")
	}
	if _, err := ParseStatement(`CREATE METADATA M WITH BINS (e) AS (SELECT e, n FROM s)`); err == nil {
		t.Error("missing width should fail")
	}
}

func TestExprStringRoundTripProperty(t *testing.T) {
	// Re-parsing an expression's String() yields the same String():
	// rendering is a fixed point of parse∘print.
	exprs := []string{
		"a + b * c - d / 2",
		"a > 1 AND b < 2 OR NOT c = 3",
		"c IN ('WN', 'AA') AND e BETWEEN 1 AND 5",
		"x NOT IN (1, 2, 3)",
		"a IS NULL OR b IS NOT NULL",
		"name = 'O''Hare'",
		"-x * (y + 2.5) >= 0.0000001",
	}
	for _, src := range exprs {
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		s1 := e1.String()
		e2, err := ParseExpr(s1)
		if err != nil {
			t.Fatalf("re-parse %q: %v", s1, err)
		}
		if s2 := e2.String(); s1 != s2 {
			t.Errorf("round trip unstable: %q -> %q -> %q", src, s1, s2)
		}
	}
}

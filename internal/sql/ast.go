// Package sql implements Mosaic's SQL dialect: a hand-written lexer and
// recursive-descent parser for standard SELECT/INSERT/CREATE TABLE plus the
// paper's extensions — CREATE [GLOBAL] POPULATION, CREATE SAMPLE ... USING
// MECHANISM, CREATE METADATA, and the SELECT visibility keyword
// (CLOSED | SEMI-OPEN | OPEN).
package sql

import (
	"fmt"
	"strings"

	"mosaic/internal/expr"
	"mosaic/internal/schema"
	"mosaic/internal/value"
)

// Visibility is the query openness level chosen by the user (paper Sec 3.3).
type Visibility uint8

// Visibility levels. VisibilityDefault means the user did not specify one;
// the engine resolves it (CLOSED for auxiliary tables, SEMI-OPEN for
// populations).
const (
	VisibilityDefault Visibility = iota
	VisibilityClosed
	VisibilitySemiOpen
	VisibilityOpen
)

// String returns the SQL spelling.
func (v Visibility) String() string {
	switch v {
	case VisibilityClosed:
		return "CLOSED"
	case VisibilitySemiOpen:
		return "SEMI-OPEN"
	case VisibilityOpen:
		return "OPEN"
	default:
		return "DEFAULT"
	}
}

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// AggKind enumerates aggregate functions.
type AggKind uint8

// Aggregates. AggNone marks a plain (non-aggregate) select item.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the SQL spelling.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return ""
	}
}

// SelectItem is one output column of a SELECT.
type SelectItem struct {
	Agg   AggKind   // AggNone for plain expressions
	Star  bool      // COUNT(*) or bare *
	Expr  expr.Expr // nil when Star
	Alias string    // optional AS alias
}

// Name returns the display name of the item.
func (it SelectItem) Name() string {
	if it.Alias != "" {
		return it.Alias
	}
	if it.Agg != AggNone {
		inner := "*"
		if !it.Star && it.Expr != nil {
			inner = it.Expr.String()
		}
		return it.Agg.String() + "(" + inner + ")"
	}
	if it.Star {
		return "*"
	}
	return it.Expr.String()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// Select is a SELECT statement.
type Select struct {
	Visibility Visibility
	Distinct   bool
	Items      []SelectItem
	From       string
	Where      expr.Expr
	GroupBy    []string
	Having     expr.Expr
	OrderBy    []OrderItem
	Limit      int // -1 when absent
	// NumParams is the number of `?` placeholders in the statement,
	// numbered left-to-right from 0. A Select with NumParams > 0 must be
	// bound with BindParams before execution.
	NumParams int
}

func (*Select) stmt() {}

// BindParams returns a copy of sel with every `?` placeholder replaced by
// the corresponding literal value, in left-to-right placeholder order. The
// bound statement is structurally identical to the same query written with
// the literals inline — including output column names, which render from the
// bound expressions — so answers are byte-identical to the inlined spelling.
// sel itself is never mutated; with zero placeholders and zero values it is
// returned unchanged.
func BindParams(sel *Select, vals []value.Value) (*Select, error) {
	if len(vals) != sel.NumParams {
		return nil, fmt.Errorf("sql: statement has %d parameter(s), got %d value(s)", sel.NumParams, len(vals))
	}
	if sel.NumParams == 0 {
		return sel, nil
	}
	out := *sel
	itemsCopied := false
	for i, it := range sel.Items {
		if it.Expr == nil {
			continue
		}
		b, err := expr.ReplaceParams(it.Expr, vals)
		if err != nil {
			return nil, err
		}
		if b == it.Expr {
			continue
		}
		if !itemsCopied {
			out.Items = append([]SelectItem(nil), sel.Items...)
			itemsCopied = true
		}
		out.Items[i].Expr = b
	}
	var err error
	if out.Where, err = expr.ReplaceParams(sel.Where, vals); err != nil {
		return nil, err
	}
	if out.Having, err = expr.ReplaceParams(sel.Having, vals); err != nil {
		return nil, err
	}
	orderCopied := false
	for i, o := range sel.OrderBy {
		b, err := expr.ReplaceParams(o.Expr, vals)
		if err != nil {
			return nil, err
		}
		if b == o.Expr {
			continue
		}
		if !orderCopied {
			out.OrderBy = append([]OrderItem(nil), sel.OrderBy...)
			orderCopied = true
		}
		out.OrderBy[i].Expr = b
	}
	out.NumParams = 0
	return &out, nil
}

// HasAggregates reports whether any select item is an aggregate.
func (s *Select) HasAggregates() bool {
	for _, it := range s.Items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}

// MechanismSpec is the USING MECHANISM clause of CREATE SAMPLE.
type MechanismSpec struct {
	Kind    string  // "UNIFORM" or "STRATIFIED"
	Attr    string  // stratification attribute (STRATIFIED only)
	Percent float64 // sample size as percent of the global population
}

// CreateTable creates an auxiliary relation (ordinary SQL table).
type CreateTable struct {
	Name      string
	Temporary bool
	Schema    *schema.Schema // nil when created AS SELECT
	AsSelect  *Select
}

func (*CreateTable) stmt() {}

// CreatePopulation creates a population relation (paper Sec 3.1 (1)).
type CreatePopulation struct {
	Name     string
	Global   bool
	Schema   *schema.Schema // explicit attribute list; may be nil with AS
	AsSelect *Select        // definition over the global population
}

func (*CreatePopulation) stmt() {}

// CreateSample creates a sample relation (paper Sec 3.1 (2)).
type CreateSample struct {
	Name      string
	Schema    *schema.Schema
	From      string    // the global population sampled from
	Where     expr.Expr // optional defining predicate
	Columns   []string  // projected attributes from the SELECT
	Star      bool      // SELECT *
	Mechanism *MechanismSpec
}

func (*CreateSample) stmt() {}

// CreateMetadata attaches a marginal to a population (paper Sec 3.2).
// The marginal is a 1-D or 2-D GROUP BY COUNT(*) over an auxiliary relation.
// The target population is the explicit FOR clause when present, else it is
// inferred from the metadata name's prefix before the last underscore
// (the paper's EuropeMigrants_M1 convention).
type CreateMetadata struct {
	Name       string
	Population string // optional explicit FOR <population>
	Attrs      []string
	CountExpr  expr.Expr // optional SUM-style expression; nil means COUNT(*)
	From       string
	Where      expr.Expr
	// Bins maps attribute name → histogram bin width (the optional
	// WITH BINS (attr w [, attr w]) clause for continuous attributes).
	Bins map[string]float64
}

func (*CreateMetadata) stmt() {}

// TargetPopulation resolves the population the metadata applies to.
func (c *CreateMetadata) TargetPopulation() string {
	if c.Population != "" {
		return c.Population
	}
	if i := strings.LastIndex(c.Name, "_"); i > 0 {
		return c.Name[:i]
	}
	return c.Name
}

// Insert adds literal rows to a relation.
type Insert struct {
	Table   string
	Columns []string // optional column list
	Rows    [][]expr.Expr
}

func (*Insert) stmt() {}

// UpdateWeights sets sample tuple weights (the paper's "update the initial
// sample weights via a similar command"): UPDATE SAMPLE s SET WEIGHT = e
// [WHERE p].
type UpdateWeights struct {
	Sample string
	Weight expr.Expr
	Where  expr.Expr
}

func (*UpdateWeights) stmt() {}

// Drop removes a relation of any kind.
type Drop struct {
	Kind string // "TABLE", "POPULATION", "SAMPLE", "METADATA"
	Name string
}

func (*Drop) stmt() {}

// Explain wraps a SELECT and asks the engine to describe its plan (the
// resolved visibility, chosen sample, marginal scope, and debiasing
// technique) instead of executing it.
type Explain struct {
	Query *Select
}

func (*Explain) stmt() {}

// Copy bulk-loads a CSV file into a table or sample:
// COPY <relation> FROM '<path>' [WITH HEADER].
type Copy struct {
	Table  string
	Path   string
	Header bool
}

func (*Copy) stmt() {}

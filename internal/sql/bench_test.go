package sql

import "testing"

func BenchmarkParseSelect(b *testing.B) {
	src := `SELECT SEMI-OPEN carrier, AVG(distance) AS d, COUNT(*)
		FROM Flights
		WHERE elapsed_time > 200 AND carrier IN ('WN', 'AA') AND distance BETWEEN 100 AND 2500
		GROUP BY carrier HAVING d > 10 ORDER BY d DESC LIMIT 5`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseStatement(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseScript(b *testing.B) {
	src := `
	CREATE TEMPORARY TABLE Eurostat (country TEXT, email TEXT, reported_count INT);
	CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT, age INT);
	CREATE METADATA EuropeMigrants_M1 AS (SELECT country, reported_count FROM Eurostat);
	CREATE SAMPLE YahooMigrants AS (SELECT * FROM EuropeMigrants WHERE email = 'Yahoo');
	SELECT OPEN country, email, COUNT(*) FROM EuropeMigrants GROUP BY country, email;
	`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

package sql

import (
	"testing"
)

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	toks, err := newLexer(src).lex()
	if err != nil {
		t.Fatalf("lex(%q): %v", src, err)
	}
	return toks
}

func TestLexKeywordsAndIdents(t *testing.T) {
	toks := lexAll(t, "SELECT foo From BAR_baz")
	want := []struct {
		kind tokenKind
		text string
	}{
		{tokKeyword, "SELECT"},
		{tokIdent, "foo"},
		{tokKeyword, "FROM"},
		{tokIdent, "BAR_baz"},
		{tokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].kind != w.kind || toks[i].text != w.text {
			t.Errorf("token %d = {%d %q}, want {%d %q}", i, toks[i].kind, toks[i].text, w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":      "42",
		"3.14":    "3.14",
		"1e5":     "1e5",
		"2.5E-3":  "2.5E-3",
		".5":      ".5",
		"1e+9":    "1e+9",
		"0.00001": "0.00001",
	}
	for src, want := range cases {
		toks := lexAll(t, src)
		if toks[0].kind != tokNumber || toks[0].text != want {
			t.Errorf("lex(%q) = {%d %q}", src, toks[0].kind, toks[0].text)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks := lexAll(t, "'hello world'")
	if toks[0].kind != tokString || toks[0].text != "hello world" {
		t.Errorf("string token = %v", toks[0])
	}
	// Escaped quote.
	toks = lexAll(t, "'it''s'")
	if toks[0].text != "it's" {
		t.Errorf("escaped quote = %q", toks[0].text)
	}
	if _, err := newLexer("'unterminated").lex(); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexAll(t, "<= >= != <> < > = + - * / ( ) , ; .")
	wantTexts := []string{"<=", ">=", "!=", "!=", "<", ">", "=", "+", "-", "*", "/", "(", ")", ",", ";", "."}
	for i, w := range wantTexts {
		if toks[i].kind != tokSymbol || toks[i].text != w {
			t.Errorf("symbol %d = {%d %q}, want %q", i, toks[i].kind, toks[i].text, w)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexAll(t, "SELECT -- a line comment\n1 /* block\ncomment */ + 2")
	texts := []string{}
	for _, tok := range toks {
		if tok.kind != tokEOF {
			texts = append(texts, tok.text)
		}
	}
	want := []string{"SELECT", "1", "+", "2"}
	if len(texts) != len(want) {
		t.Fatalf("got %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if _, err := newLexer("/* never closed").lex(); err == nil {
		t.Error("unterminated block comment should fail")
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexAll(t, "SELECT\n  foo")
	if toks[0].line != 1 || toks[0].col != 1 {
		t.Errorf("SELECT at %d:%d", toks[0].line, toks[0].col)
	}
	if toks[1].line != 2 || toks[1].col != 3 {
		t.Errorf("foo at %d:%d, want 2:3", toks[1].line, toks[1].col)
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	if _, err := newLexer("SELECT @foo").lex(); err == nil {
		t.Error("@ should be rejected")
	}
}

func TestKeywordCaseInsensitive(t *testing.T) {
	toks := lexAll(t, "select Select SELECT")
	for i := 0; i < 3; i++ {
		if toks[i].kind != tokKeyword || toks[i].text != "SELECT" {
			t.Errorf("token %d = {%d %q}", i, toks[i].kind, toks[i].text)
		}
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	toks := lexAll(t, "sélect_col")
	if toks[0].kind != tokIdent || toks[0].text != "sélect_col" {
		t.Errorf("unicode ident = %v", toks[0])
	}
}

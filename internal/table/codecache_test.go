package table

import (
	"fmt"
	"testing"

	"mosaic/internal/schema"
	"mosaic/internal/value"
)

func codeFixture(t *testing.T, n int) *Table {
	t.Helper()
	sc := schema.MustNew(
		schema.Attribute{Name: "c", Kind: value.KindText},
		schema.Attribute{Name: "y", Kind: value.KindFloat},
	)
	tbl := New("t", sc)
	for i := 0; i < n; i++ {
		err := tbl.Append([]value.Value{
			value.Text(fmt.Sprintf("g%d", i%5)),
			value.Float(float64(i) * 1.5),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestCodeCacheSharedAcrossSnapshots: repeated Codes/BinnedCodes calls —
// including from fresh snapshots of the same table, the repeated-IPF-fit
// pattern — serve the same backing arrays instead of re-materializing.
func TestCodeCacheSharedAcrossSnapshots(t *testing.T) {
	tbl := codeFixture(t, 100)
	s1 := tbl.Snapshot()
	cls1, bits1 := s1.Codes(0)
	cls2, bits2 := tbl.Snapshot().Codes(0) // fresh snapshot, same table
	if &cls1[0] != &cls2[0] || &bits1[0] != &bits2[0] {
		t.Error("Codes re-materialized across snapshots of an unchanged table")
	}
	b1, _ := s1.BinnedCodes(1, 10)
	b2, _ := tbl.Snapshot().BinnedCodes(1, 10)
	if &b1[0] != &b2[0] {
		t.Error("BinnedCodes re-materialized for the same (col, width)")
	}
	// Distinct widths are distinct cache entries with distinct codes.
	o1, ob1 := s1.BinnedCodes(1, 2)
	if &o1[0] == &b1[0] {
		t.Error("different widths share one cache slot")
	}
	_ = ob1
}

// TestCodeCachePrefixAfterAppend: a cached longer vector serves shorter
// snapshots as a prefix; an older short vector is replaced (not mutated)
// when a longer snapshot computes more rows — and the values always match a
// fresh computation.
func TestCodeCachePrefixAfterAppend(t *testing.T) {
	tbl := codeFixture(t, 50)
	short := tbl.Snapshot()
	sCls, sBits := short.Codes(0) // caches at length 50
	for i := 0; i < 30; i++ {
		if err := tbl.Append([]value.Value{value.Text("new"), value.Float(9)}); err != nil {
			t.Fatal(err)
		}
	}
	long := tbl.Snapshot()
	lCls, lBits := long.Codes(0) // recomputes at length 80
	if len(lCls) != 80 {
		t.Fatalf("long codes length = %d, want 80", len(lCls))
	}
	// The long vector's prefix equals the short one value-for-value.
	for i := range sCls {
		if sCls[i] != lCls[i] || sBits[i] != lBits[i] {
			t.Fatalf("row %d codes changed after append: (%v,%d) vs (%v,%d)", i, sCls[i], sBits[i], lCls[i], lBits[i])
		}
	}
	// A short snapshot taken now serves from the cached long vector.
	againCls, _ := short.Codes(0)
	if len(againCls) != 50 {
		t.Fatalf("short snapshot codes length = %d, want 50", len(againCls))
	}
	if &againCls[0] != &lCls[0] {
		t.Error("short snapshot did not reuse the cached long vector's prefix")
	}
	// Correctness against a from-scratch computation.
	freshCls, freshBits := long.computeBinnedCodes(1, 10)
	cacheCls, cacheBits := long.BinnedCodes(1, 10)
	for i := range freshCls {
		if freshCls[i] != cacheCls[i] || freshBits[i] != cacheBits[i] {
			t.Fatalf("row %d cached binned code diverges from fresh compute", i)
		}
	}
}

// TestCodeCacheInvalidatedByTruncate: Truncate drops the cache (codes of
// removed rows must not leak into a rebuilt table).
func TestCodeCacheInvalidatedByTruncate(t *testing.T) {
	tbl := codeFixture(t, 20)
	tbl.Snapshot().Codes(0)
	tbl.Truncate()
	if err := tbl.Append([]value.Value{value.Text("z"), value.Float(1)}); err != nil {
		t.Fatal(err)
	}
	cls, bits := tbl.Snapshot().Codes(0)
	if len(cls) != 1 {
		t.Fatalf("codes after truncate+append: length %d, want 1", len(cls))
	}
	code, ok := tbl.Snapshot().DictLookup("z")
	if !ok || cls[0] != value.ClassText || bits[0] != uint64(code) {
		t.Errorf("post-truncate code = (%v,%d), want text code %d", cls[0], bits[0], code)
	}
}

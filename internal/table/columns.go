// Columnar storage: typed column vectors maintained alongside the row view,
// a per-table dictionary for TEXT attributes, and the immutable Snapshot the
// executor scans without per-row locking.
//
// Locking contract (see also the Table doc): a Snapshot captures slice
// headers under one RLock. Because the table is append-only (rows are never
// mutated in place and appends past the captured length are invisible to the
// snapshot), a snapshot stays valid while writers append — but weight
// mutation (SetWeight/SetWeights/ResetWeights) and Truncate write in place,
// so those writers must be externally serialized against snapshot readers.
// The engine provides that serialization: DDL/DML runs under the engine
// write lock while queries hold the read lock.
package table

import (
	"fmt"
	"math"
	"sync"

	"mosaic/internal/schema"
	"mosaic/internal/value"
)

// Dict is an append-only string interner. Codes are dense, start at 0, and
// never change, so snapshots taken at different times agree on every code
// they both know. One Dict is shared by a table, its clones, and all its
// snapshots.
type Dict struct {
	mu    sync.RWMutex
	codes map[string]uint32
	strs  []string
}

// NewDict creates an empty dictionary.
func NewDict() *Dict {
	return &Dict{codes: make(map[string]uint32)}
}

// Code interns s and returns its code.
func (d *Dict) Code(s string) uint32 {
	d.mu.Lock()
	c, ok := d.codes[s]
	if !ok {
		c = uint32(len(d.strs))
		d.codes[s] = c
		d.strs = append(d.strs, s)
	}
	d.mu.Unlock()
	return c
}

// Lookup returns the code of s without interning it.
func (d *Dict) Lookup(s string) (uint32, bool) {
	d.mu.RLock()
	c, ok := d.codes[s]
	d.mu.RUnlock()
	return c, ok
}

// Strings returns the code→string table as of now. The returned slice is
// append-only shared storage and must not be modified.
func (d *Dict) Strings() []string {
	d.mu.RLock()
	s := d.strs
	d.mu.RUnlock()
	return s
}

// Len returns the number of interned strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	n := len(d.strs)
	d.mu.RUnlock()
	return n
}

// Column is one attribute's typed vector. Exactly one of the payload slices
// is populated, chosen by the schema kind; NULL positions carry the zero
// payload and are flagged in the Nulls bitmap.
type Column struct {
	Kind   value.Kind
	Ints   []int64   // KindInt
	Floats []float64 // KindFloat
	Bools  []bool    // KindBool
	Codes  []uint32  // KindText, dictionary codes
	Nulls  []uint64  // null bitmap (64 rows per word); nil when the column has no NULLs
}

// Null reports whether row i is NULL.
func (c *Column) Null(i int) bool {
	if c.Nulls == nil {
		return false
	}
	w := i >> 6
	if w >= len(c.Nulls) {
		return false
	}
	return c.Nulls[w]&(1<<(uint(i)&63)) != 0
}

// HasNulls reports whether any row is NULL.
func (c *Column) HasNulls() bool { return c.Nulls != nil }

func (c *Column) setNull(i int) {
	w := i >> 6
	for len(c.Nulls) <= w {
		c.Nulls = append(c.Nulls, 0)
	}
	c.Nulls[w] |= 1 << (uint(i) & 63)
}

// appendValue extends the column with row value v (already schema-coerced).
func (c *Column) appendValue(i int, v value.Value, dict *Dict) {
	if v.IsNull() {
		c.setNull(i)
		switch c.Kind {
		case value.KindInt:
			c.Ints = append(c.Ints, 0)
		case value.KindFloat:
			c.Floats = append(c.Floats, 0)
		case value.KindBool:
			c.Bools = append(c.Bools, false)
		case value.KindText:
			c.Codes = append(c.Codes, 0)
		}
		return
	}
	switch c.Kind {
	case value.KindInt:
		c.Ints = append(c.Ints, v.AsInt())
	case value.KindFloat:
		c.Floats = append(c.Floats, v.AsFloat())
	case value.KindBool:
		c.Bools = append(c.Bools, v.AsBool())
	case value.KindText:
		c.Codes = append(c.Codes, dict.Code(v.AsText()))
	}
}

// newColumns builds empty typed columns for a schema.
func newColumns(sc *schema.Schema) []Column {
	cols := make([]Column, sc.Len())
	for i := range cols {
		cols[i].Kind = sc.At(i).Kind
	}
	return cols
}

// FromColumns assembles a table directly from fully-built typed columns —
// the bulk-load path for generators that produce columnar data natively
// (e.g. swg's decoded samples), skipping the per-row Append pipeline
// (per-row validation, locking, and dictionary map lookups).
//
// The caller owns the invariants a per-row Append would have enforced: rows
// must be the row view of cols (same values in the same order, already
// schema-coerced), every TEXT code must be interned in dict, and weights
// must be non-negative. Shape mismatches (column count, kind, payload
// length, weight count) are rejected; value-level consistency between rows
// and cols is trusted. The returned table owns the given slices.
func FromColumns(name string, sc *schema.Schema, cols []Column, rows [][]value.Value, wts []float64, dict *Dict) (*Table, error) {
	n := len(rows)
	if len(wts) != n {
		return nil, fmt.Errorf("table %s: %d weights for %d rows", name, len(wts), n)
	}
	if len(cols) != sc.Len() {
		return nil, fmt.Errorf("table %s: %d columns for %d attributes", name, len(cols), sc.Len())
	}
	for i := range cols {
		c := &cols[i]
		if c.Kind != sc.At(i).Kind {
			return nil, fmt.Errorf("table %s: column %d is %s, schema says %s", name, i, c.Kind, sc.At(i).Kind)
		}
		var got int
		switch c.Kind {
		case value.KindInt:
			got = len(c.Ints)
		case value.KindFloat:
			got = len(c.Floats)
		case value.KindBool:
			got = len(c.Bools)
		case value.KindText:
			got = len(c.Codes)
		}
		if got != n {
			return nil, fmt.Errorf("table %s: column %d has %d values for %d rows", name, i, got, n)
		}
		if len(c.Nulls) == 0 {
			c.Nulls = nil
		}
	}
	for i, w := range wts {
		if w < 0 {
			return nil, fmt.Errorf("table %s: negative weight %g at row %d", name, w, i)
		}
	}
	if dict == nil {
		dict = NewDict()
	}
	return &Table{name: name, schema: sc, rows: rows, wts: wts, cols: cols, dict: dict}, nil
}

// Snapshot is an immutable view of a table at one instant: the row view, the
// weight vector, and the typed columns, captured under a single lock
// acquisition. Scans over a snapshot touch no locks at all.
type Snapshot struct {
	name     string
	sc       *schema.Schema
	rows     [][]value.Value
	wts      []float64
	cols     []Column
	dict     *Dict
	dictStrs []string // code→string table frozen at snapshot time
	tbl      *Table   // parent, for the shared code-vector cache
}

// Snapshot captures the table's current contents with one RLock. The
// returned view is safe to read concurrently with appends; in-place weight
// mutation must be externally serialized (the engine write lock does this).
func (t *Table) Snapshot() *Snapshot {
	t.mu.RLock()
	s := &Snapshot{
		name: t.name,
		sc:   t.schema,
		rows: t.rows,
		wts:  t.wts,
		dict: t.dict,
		tbl:  t,
	}
	n := len(t.rows)
	s.cols = make([]Column, len(t.cols))
	for i := range t.cols {
		c := t.cols[i]
		s.cols[i] = Column{
			Kind: c.Kind,
			// The null bitmap is copied, not clipped: a later append of a
			// NULL row in the same 64-row word would otherwise mutate a
			// word this snapshot reads (payload slices only ever gain
			// elements past n, so clipping suffices for them).
			Nulls:  append([]uint64(nil), c.Nulls...),
			Ints:   clip(c.Ints, n),
			Floats: clip(c.Floats, n),
			Bools:  clip(c.Bools, n),
			Codes:  clip(c.Codes, n),
		}
		if len(s.cols[i].Nulls) == 0 {
			s.cols[i].Nulls = nil
		}
	}
	t.mu.RUnlock()
	s.dictStrs = t.dict.Strings()
	return s
}

// clip caps a payload slice at the snapshot length so later appends cannot
// be observed (nil stays nil).
func clip[T any](v []T, n int) []T {
	if v == nil {
		return nil
	}
	return v[:n:n]
}

// SliceRange returns an immutable view of rows [lo, hi) of the snapshot —
// the contiguous range partition the sharded executor scans. lo must be a
// multiple of 64 so the null bitmaps re-slice on word boundaries (no bit
// shifting, no copying); hi is clamped to the snapshot length, and lo > hi
// (a trailing empty shard) yields an empty view. The slice shares the
// snapshot's dictionary and payload storage, but drops the parent-table
// pointer: the shared code-vector cache assumes row 0 of the vector is row 0
// of the table, which is false for any lo > 0, so sliced views always
// compute code vectors directly.
func (s *Snapshot) SliceRange(lo, hi int) *Snapshot {
	if hi > len(s.rows) {
		hi = len(s.rows)
	}
	if lo >= hi {
		// Empty shard (bounds past the table): no payload, no bitmaps, and
		// no alignment concern.
		return &Snapshot{name: s.name, sc: s.sc, dict: s.dict, dictStrs: s.dictStrs,
			cols: newColumns(s.sc)}
	}
	if lo%64 != 0 {
		panic(fmt.Sprintf("table: SliceRange lo %d is not 64-aligned", lo))
	}
	out := &Snapshot{
		name:     s.name,
		sc:       s.sc,
		rows:     s.rows[lo:hi],
		wts:      s.wts[lo:hi],
		dict:     s.dict,
		dictStrs: s.dictStrs,
	}
	out.cols = make([]Column, len(s.cols))
	for i := range s.cols {
		c := &s.cols[i]
		nc := Column{
			Kind:   c.Kind,
			Ints:   sliceRange(c.Ints, lo, hi),
			Floats: sliceRange(c.Floats, lo, hi),
			Bools:  sliceRange(c.Bools, lo, hi),
			Codes:  sliceRange(c.Codes, lo, hi),
		}
		if c.Nulls != nil && lo/64 < len(c.Nulls) {
			nc.Nulls = c.Nulls[lo/64:]
		}
		out.cols[i] = nc
	}
	return out
}

// sliceRange is clip for a sub-range (nil stays nil; hi is pre-clamped).
func sliceRange[T any](v []T, lo, hi int) []T {
	if v == nil {
		return nil
	}
	return v[lo:hi:hi]
}

// Name returns the relation name.
func (s *Snapshot) Name() string { return s.name }

// Schema returns the relation schema.
func (s *Snapshot) Schema() *schema.Schema { return s.sc }

// Len returns the number of rows in the snapshot.
func (s *Snapshot) Len() int { return len(s.rows) }

// Row returns the i-th row. The returned slice must not be modified.
func (s *Snapshot) Row(i int) []value.Value { return s.rows[i] }

// Weight returns the i-th tuple weight.
func (s *Snapshot) Weight(i int) float64 { return s.wts[i] }

// Weights returns the snapshot's weight vector. The slice is shared with the
// table and must be treated as read-only.
func (s *Snapshot) Weights() []float64 { return s.wts }

// Col returns the typed column at schema position i.
func (s *Snapshot) Col(i int) *Column { return &s.cols[i] }

// DictStr resolves a text dictionary code captured in this snapshot.
func (s *Snapshot) DictStr(code uint32) string { return s.dictStrs[code] }

// DictStrings returns the frozen code→string table (index = code).
func (s *Snapshot) DictStrings() []string { return s.dictStrs }

// DictLookup returns the dictionary code of str, if it was ever interned.
// A miss means no row of any snapshot of this table stores str.
func (s *Snapshot) DictLookup(str string) (uint32, bool) { return s.dict.Lookup(str) }

// codeKey identifies one cached code vector: a column position and the
// histogram bin width its numerics were snapped to (0 = unbinned Codes).
type codeKey struct {
	col   int
	width float64
}

// codeVec is one cached code vector: the (cls, bits) pair for the first n
// rows of a column. Codes are append-only prefix-stable, so the vector
// serves every snapshot of length ≤ n and is replaced (never edited) when a
// longer snapshot materializes more rows.
type codeVec struct {
	n    int
	cls  []value.Class
	bits []uint64
}

// cachedCodes serves one code vector from the parent table's cache,
// computing and installing it on miss. Repeated IPF fits and marginal
// builds over the same sample hit the cache instead of re-materializing
// O(rows) vectors per call; callers must treat the returned slices as
// read-only (they are shared by every snapshot of the table).
func (s *Snapshot) cachedCodes(col int, width float64, compute func() ([]value.Class, []uint64)) ([]value.Class, []uint64) {
	t := s.tbl
	if t == nil {
		return compute()
	}
	n := s.Len()
	key := codeKey{col: col, width: width}
	t.codeMu.Lock()
	if cv, ok := t.codeCache[key]; ok && cv.n >= n {
		cls, bits := cv.cls[:n:n], cv.bits[:n:n]
		t.codeMu.Unlock()
		return cls, bits
	}
	t.codeMu.Unlock()
	cls, bits := compute()
	t.codeMu.Lock()
	if t.codeCache == nil {
		t.codeCache = make(map[codeKey]*codeVec)
	}
	if cv, ok := t.codeCache[key]; !ok || cv.n < n {
		t.codeCache[key] = &codeVec{n: n, cls: cls, bits: bits}
	}
	t.codeMu.Unlock()
	return cls, bits
}

// Codes materializes the (class, bits) code of every row of column col into
// a pair of parallel slices: cls[i] partitions by HashKey tag class and
// bits[i] distinguishes values within the class (dictionary code for TEXT,
// NaN-canonical float bits for numerics, 0/1 for BOOL). Two rows have equal
// (cls, bits) pairs exactly when their HashKeys are equal, so these codes
// can key group-by and marginal-cell hash tables directly. The vectors are
// cached on the parent table (append-only prefix reuse) and must be treated
// as read-only.
func (s *Snapshot) Codes(col int) (cls []value.Class, bits []uint64) {
	return s.cachedCodes(col, 0, func() ([]value.Class, []uint64) { return s.computeCodes(col) })
}

// computeCodes materializes the code vectors of Codes without consulting the
// cache.
func (s *Snapshot) computeCodes(col int) (cls []value.Class, bits []uint64) {
	c := &s.cols[col]
	n := s.Len()
	cls = make([]value.Class, n)
	bits = make([]uint64, n)
	switch c.Kind {
	case value.KindInt:
		for i, x := range c.Ints {
			cls[i] = value.ClassNum
			bits[i] = value.NumBits(float64(x))
		}
	case value.KindFloat:
		for i, x := range c.Floats {
			cls[i] = value.ClassNum
			bits[i] = value.NumBits(x)
		}
	case value.KindBool:
		for i, b := range c.Bools {
			cls[i] = value.ClassBool
			if b {
				bits[i] = 1
			}
		}
	case value.KindText:
		for i, code := range c.Codes {
			cls[i] = value.ClassText
			bits[i] = uint64(code)
		}
	}
	if c.Nulls != nil {
		for i := 0; i < n; i++ {
			if c.Null(i) {
				cls[i] = value.ClassNull
				bits[i] = 0
			}
		}
	}
	return cls, bits
}

// CellCode keys a 1- or 2-attribute marginal cell by value codes (class +
// 64-bit payload per attribute) instead of a concatenated HashKey string.
// Code equality matches cellKey-string equality exactly; both ipf and
// marginal bucket tuples with it, so the coding scheme lives in one place.
type CellCode struct {
	C0, C1 value.Class
	B0, B1 uint64
}

// CodeOf codes one value against this snapshot's dictionary, matching the
// per-row codes from Codes/BinnedCodes. ok=false means a TEXT value no row
// of this table ever stored — such a value can never match any row.
func (s *Snapshot) CodeOf(v value.Value) (cls value.Class, bits uint64, ok bool) {
	if cls, bits, ok = v.ScalarBits(); ok {
		return cls, bits, true
	}
	c, found := s.DictLookup(v.AsText())
	if !found {
		return value.ClassText, 0, false
	}
	return value.ClassText, uint64(c), true
}

// CellCodeOf codes a 1- or 2-value cell tuple; ok=false when any component
// is unmatchable (see CodeOf).
func (s *Snapshot) CellCodeOf(vals []value.Value) (CellCode, bool) {
	var code CellCode
	cls, bits, ok := s.CodeOf(vals[0])
	if !ok {
		return code, false
	}
	code.C0, code.B0 = cls, bits
	if len(vals) == 2 {
		cls, bits, ok = s.CodeOf(vals[1])
		if !ok {
			return code, false
		}
		code.C1, code.B1 = cls, bits
	}
	return code, true
}

// BinnedCodes is Codes with numeric values snapped to histogram bin
// midpoints first: (⌊v/width⌋+0.5)·width, the same expression
// marginal.SnapVals uses, so a binned row code equals the code of its
// snapped cell value. Non-numeric columns and width 0 defer to Codes. Like
// Codes, the vectors are cached per (column, width) on the parent table and
// must be treated as read-only.
func (s *Snapshot) BinnedCodes(col int, width float64) (cls []value.Class, bits []uint64) {
	if width == 0 || (s.cols[col].Kind != value.KindInt && s.cols[col].Kind != value.KindFloat) {
		return s.Codes(col)
	}
	return s.cachedCodes(col, width, func() ([]value.Class, []uint64) { return s.computeBinnedCodes(col, width) })
}

// computeBinnedCodes materializes the code vectors of BinnedCodes without
// consulting the cache.
func (s *Snapshot) computeBinnedCodes(col int, width float64) (cls []value.Class, bits []uint64) {
	c := &s.cols[col]
	n := s.Len()
	cls = make([]value.Class, n)
	bits = make([]uint64, n)
	snapf := func(f float64) uint64 {
		return value.NumBits((math.Floor(f/width) + 0.5) * width)
	}
	if c.Kind == value.KindInt {
		for i, x := range c.Ints {
			cls[i] = value.ClassNum
			bits[i] = snapf(float64(x))
		}
	} else {
		for i, x := range c.Floats {
			cls[i] = value.ClassNum
			bits[i] = snapf(x)
		}
	}
	if c.Nulls != nil {
		for i := 0; i < n; i++ {
			if c.Null(i) {
				cls[i] = value.ClassNull
				bits[i] = 0
			}
		}
	}
	return cls, bits
}

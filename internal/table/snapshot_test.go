package table

import (
	"math"
	"testing"

	"mosaic/internal/schema"
	"mosaic/internal/value"
)

var snapSchema = schema.MustNew(
	schema.Attribute{Name: "c", Kind: value.KindText},
	schema.Attribute{Name: "x", Kind: value.KindInt},
	schema.Attribute{Name: "y", Kind: value.KindFloat},
	schema.Attribute{Name: "b", Kind: value.KindBool},
)

func snapFixture(t *testing.T) *Table {
	t.Helper()
	tbl := New("t", snapSchema)
	rows := [][]value.Value{
		{value.Text("red"), value.Int(1), value.Float(0.5), value.Bool(true)},
		{value.Text("blue"), value.Int(2), value.Null(), value.Bool(false)},
		{value.Null(), value.Null(), value.Float(-1.25), value.Null()},
		{value.Text("red"), value.Int(1), value.Float(0.5), value.Bool(true)},
	}
	for i, r := range rows {
		if err := tbl.AppendWeighted(r, float64(i)+0.5); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestSnapshotIsStableAcrossAppends: a snapshot captures a fixed prefix; rows
// appended afterwards are invisible to it, and a fresh snapshot sees them.
func TestSnapshotIsStableAcrossAppends(t *testing.T) {
	tbl := snapFixture(t)
	s := tbl.Snapshot()
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if err := tbl.Append([]value.Value{value.Text("green"), value.Int(9), value.Float(9), value.Bool(false)}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("old snapshot grew to %d rows", s.Len())
	}
	if got := len(s.Col(0).Codes); got != 4 {
		t.Fatalf("old snapshot text column has %d codes", got)
	}
	s2 := tbl.Snapshot()
	if s2.Len() != 5 {
		t.Fatalf("new snapshot Len = %d, want 5", s2.Len())
	}
	if s2.DictStr(s2.Col(0).Codes[4]) != "green" {
		t.Fatalf("appended text decodes to %q", s2.DictStr(s2.Col(0).Codes[4]))
	}
}

// TestSnapshotColumnsMirrorRows: typed columns, null bitmaps, and the
// dictionary must agree with the row view element-for-element.
func TestSnapshotColumnsMirrorRows(t *testing.T) {
	tbl := snapFixture(t)
	s := tbl.Snapshot()
	for i := 0; i < s.Len(); i++ {
		row := s.Row(i)
		for ci := 0; ci < snapSchema.Len(); ci++ {
			col := s.Col(ci)
			if row[ci].IsNull() != col.Null(i) {
				t.Fatalf("row %d col %d: null flag mismatch", i, ci)
			}
			if row[ci].IsNull() {
				continue
			}
			switch col.Kind {
			case value.KindText:
				if s.DictStr(col.Codes[i]) != row[ci].AsText() {
					t.Errorf("row %d: text %q decodes %q", i, row[ci].AsText(), s.DictStr(col.Codes[i]))
				}
			case value.KindInt:
				if col.Ints[i] != row[ci].AsInt() {
					t.Errorf("row %d: int %d vs %d", i, col.Ints[i], row[ci].AsInt())
				}
			case value.KindFloat:
				if col.Floats[i] != row[ci].AsFloat() {
					t.Errorf("row %d: float %g vs %g", i, col.Floats[i], row[ci].AsFloat())
				}
			case value.KindBool:
				if col.Bools[i] != row[ci].AsBool() {
					t.Errorf("row %d: bool mismatch", i)
				}
			}
		}
		if s.Weight(i) != float64(i)+0.5 {
			t.Errorf("weight %d = %g", i, s.Weight(i))
		}
	}
	// Dictionary interning: equal strings share one code.
	c0 := s.Col(0)
	if c0.Codes[0] != c0.Codes[3] {
		t.Error("equal strings got different dictionary codes")
	}
	if c0.Codes[0] == c0.Codes[1] {
		t.Error("distinct strings share a dictionary code")
	}
}

// TestSnapshotCodesMatchHashKeys: the (class, bits) codes must induce
// exactly the HashKey equivalence relation, row against row.
func TestSnapshotCodesMatchHashKeys(t *testing.T) {
	tbl := snapFixture(t)
	s := tbl.Snapshot()
	for ci := 0; ci < snapSchema.Len(); ci++ {
		cls, bits := s.Codes(ci)
		for i := 0; i < s.Len(); i++ {
			for j := 0; j < s.Len(); j++ {
				codeEq := cls[i] == cls[j] && bits[i] == bits[j]
				keyEq := s.Row(i)[ci].HashKey() == s.Row(j)[ci].HashKey()
				if codeEq != keyEq {
					t.Errorf("col %d rows %d,%d: codeEq=%v keyEq=%v (%s vs %s)",
						ci, i, j, codeEq, keyEq, s.Row(i)[ci], s.Row(j)[ci])
				}
			}
		}
	}
}

// TestBinnedCodesMatchMidpoints: binned codes equal the codes of the
// SnapVals-style midpoint values.
func TestBinnedCodesMatchMidpoints(t *testing.T) {
	tbl := New("t", snapSchema)
	for _, y := range []float64{0.01, 0.49, 0.5, 0.99, -0.3, 7.77} {
		if err := tbl.Append([]value.Value{value.Text("s"), value.Int(int64(y * 10)), value.Float(y), value.Bool(true)}); err != nil {
			t.Fatal(err)
		}
	}
	s := tbl.Snapshot()
	const w = 0.5
	cls, bits := s.BinnedCodes(2, w)
	for i := 0; i < s.Len(); i++ {
		if cls[i] != value.ClassNum {
			t.Fatalf("row %d: class %v", i, cls[i])
		}
		f := s.Col(2).Floats[i]
		// The contract is equality with the midpoint value's own code.
		wantCls, wantBits, _ := value.Float((math.Floor(f/w) + 0.5) * w).ScalarBits()
		if cls[i] != wantCls || bits[i] != wantBits {
			t.Errorf("row %d: binned code mismatch for %g", i, f)
		}
	}
}

// TestSnapshotSafeAgainstConcurrentNullAppend: appending a NULL row must
// not mutate bitmap words a live snapshot reads (run under -race).
func TestSnapshotSafeAgainstConcurrentNullAppend(t *testing.T) {
	tbl := snapFixture(t) // rows 1-2 already carry NULLs in-word
	s := tbl.Snapshot()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if err := tbl.Append([]value.Value{value.Null(), value.Null(), value.Null(), value.Null()}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		for ci := 0; ci < snapSchema.Len(); ci++ {
			col := s.Col(ci)
			for r := 0; r < s.Len(); r++ {
				if col.Null(r) != s.Row(r)[ci].IsNull() {
					t.Fatalf("snapshot null flag drifted at row %d col %d", r, ci)
				}
			}
		}
	}
	<-done
}

package table

import (
	"math"
	"testing"
	"testing/quick"

	"mosaic/internal/schema"
	"mosaic/internal/value"
)

var testSchema = schema.MustNew(
	schema.Attribute{Name: "a", Kind: value.KindInt},
	schema.Attribute{Name: "b", Kind: value.KindFloat},
)

func fill(t *testing.T, tbl *Table, rows [][2]float64) {
	t.Helper()
	for _, r := range rows {
		if err := tbl.Append([]value.Value{value.Int(int64(r[0])), value.Float(r[1])}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func TestAppendAndScan(t *testing.T) {
	tbl := New("t", testSchema)
	fill(t, tbl, [][2]float64{{1, 1.5}, {2, 2.5}, {3, 3.5}})
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	var seen int
	tbl.Scan(func(row []value.Value, w float64) bool {
		if w != 1 {
			t.Errorf("default weight %g, want 1", w)
		}
		seen++
		return true
	})
	if seen != 3 {
		t.Errorf("scanned %d rows", seen)
	}
	// Early stop.
	seen = 0
	tbl.Scan(func([]value.Value, float64) bool { seen++; return false })
	if seen != 1 {
		t.Errorf("early stop scanned %d", seen)
	}
}

func TestAppendValidates(t *testing.T) {
	tbl := New("t", testSchema)
	if err := tbl.Append([]value.Value{value.Text("no"), value.Float(1)}); err == nil {
		t.Error("type mismatch should fail")
	}
	if err := tbl.Append([]value.Value{value.Int(1)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if err := tbl.AppendWeighted([]value.Value{value.Int(1), value.Float(1)}, -2); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestWeightsLifecycle(t *testing.T) {
	tbl := New("t", testSchema)
	fill(t, tbl, [][2]float64{{1, 1}, {2, 2}})
	if err := tbl.SetWeights([]float64{2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.TotalWeight(); got != 5 {
		t.Errorf("TotalWeight = %g, want 5", got)
	}
	if tbl.Weight(1) != 3 {
		t.Errorf("Weight(1) = %g", tbl.Weight(1))
	}
	if err := tbl.SetWeight(0, 7); err != nil {
		t.Fatal(err)
	}
	if tbl.Weight(0) != 7 {
		t.Error("SetWeight did not stick")
	}
	if err := tbl.SetWeight(0, -1); err == nil {
		t.Error("negative weight should fail")
	}
	if err := tbl.SetWeights([]float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := tbl.SetWeights([]float64{1, -1}); err == nil {
		t.Error("negative bulk weight should fail")
	}
	if err := tbl.ResetWeights(1); err != nil {
		t.Fatal(err)
	}
	if tbl.TotalWeight() != 2 {
		t.Error("ResetWeights failed")
	}
	// Weights() must be a copy.
	w := tbl.Weights()
	w[0] = 99
	if tbl.Weight(0) == 99 {
		t.Error("Weights() must return a copy")
	}
}

func TestColumnExtraction(t *testing.T) {
	tbl := New("t", testSchema)
	fill(t, tbl, [][2]float64{{1, 1.5}, {2, 2.5}})
	col, err := tbl.Column("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(col) != 2 || col[1].AsFloat() != 2.5 {
		t.Errorf("Column(b) = %v", col)
	}
	fc, err := tbl.FloatColumn("a")
	if err != nil {
		t.Fatal(err)
	}
	if fc[0] != 1 || fc[1] != 2 {
		t.Errorf("FloatColumn(a) = %v", fc)
	}
	if _, err := tbl.Column("zz"); err == nil {
		t.Error("missing column should fail")
	}
}

func TestFloatColumnRejectsText(t *testing.T) {
	sc := schema.MustNew(schema.Attribute{Name: "s", Kind: value.KindText})
	tbl := New("t", sc)
	if err := tbl.Append([]value.Value{value.Text("x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.FloatColumn("s"); err == nil {
		t.Error("FloatColumn over text should fail")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tbl := New("t", testSchema)
	fill(t, tbl, [][2]float64{{1, 1}})
	if err := tbl.SetWeights([]float64{4}); err != nil {
		t.Fatal(err)
	}
	cp := tbl.Clone("copy")
	if cp.Len() != 1 || cp.Weight(0) != 4 || cp.Name() != "copy" {
		t.Fatalf("clone mismatch")
	}
	// Mutating the clone must not affect the original.
	if err := cp.SetWeight(0, 9); err != nil {
		t.Fatal(err)
	}
	if tbl.Weight(0) != 4 {
		t.Error("clone shares weights with original")
	}
	if err := cp.Append([]value.Value{value.Int(2), value.Float(2)}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Error("clone shares rows with original")
	}
}

func TestTruncate(t *testing.T) {
	tbl := New("t", testSchema)
	fill(t, tbl, [][2]float64{{1, 1}, {2, 2}})
	tbl.Truncate()
	if tbl.Len() != 0 || tbl.TotalWeight() != 0 {
		t.Error("Truncate left data behind")
	}
}

func TestTotalWeightLinearProperty(t *testing.T) {
	// Property: TotalWeight equals the sum of the installed weights.
	f := func(ws []float64) bool {
		tbl := New("t", testSchema)
		var want float64
		clean := make([]float64, 0, len(ws))
		for i, w := range ws {
			w = math.Abs(w)
			if math.IsInf(w, 0) || math.IsNaN(w) || w > 1e12 {
				w = 1
			}
			if err := tbl.Append([]value.Value{value.Int(int64(i)), value.Float(0)}); err != nil {
				return false
			}
			clean = append(clean, w)
			want += w
		}
		if len(clean) == 0 {
			return tbl.TotalWeight() == 0
		}
		if err := tbl.SetWeights(clean); err != nil {
			return false
		}
		got := tbl.TotalWeight()
		return math.Abs(got-want) <= 1e-6*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBulkAppend(t *testing.T) {
	tbl := New("t", testSchema)
	rows := [][]value.Value{
		{value.Int(1), value.Float(1)},
		{value.Int(2), value.Float(2)},
	}
	if err := tbl.BulkAppend(rows); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Errorf("Len = %d", tbl.Len())
	}
	bad := [][]value.Value{{value.Text("x"), value.Float(1)}}
	if err := tbl.BulkAppend(bad); err == nil {
		t.Error("bad bulk row should fail")
	}
}

func TestConcurrentReaders(t *testing.T) {
	tbl := New("t", testSchema)
	fill(t, tbl, [][2]float64{{1, 1}, {2, 2}, {3, 3}})
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- true }()
			for i := 0; i < 200; i++ {
				tbl.Scan(func(row []value.Value, w float64) bool { return true })
				_ = tbl.TotalWeight()
				_, _ = tbl.Column("a")
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

// Package table implements Mosaic's in-memory weighted row store.
//
// Every tuple carries a float64 weight (Sec 3.2 of the paper: sample
// metadata is tuple weights initialized to one). The executor answers
// SEMI-OPEN and OPEN queries by aggregating over these weights, so the store
// keeps them adjacent to the rows and supports bulk reweighting.
package table

import (
	"fmt"
	"sync"

	"mosaic/internal/schema"
	"mosaic/internal/value"
)

// Table is an append-only in-memory relation with per-tuple weights. Rows
// are stored twice: as the row view ([]value.Value per tuple, the mutation
// and compatibility surface) and as typed column vectors (the scan surface,
// see columns.go), both maintained on every append.
//
// Locking contract: the table is safe for concurrent readers; writers must
// be externally serialized against readers (the engine holds its write lock
// during DDL/DML while queries share the read lock). Hot loops should not
// call Row/Weight per index — each call takes the RLock — but should take a
// Snapshot once and scan it lock-free; Snapshot stays valid across appends
// (appends land past its captured length) but not across in-place weight
// mutation or Truncate, which the engine-level serialization prevents from
// overlapping queries.
type Table struct {
	mu     sync.RWMutex
	name   string
	schema *schema.Schema
	rows   [][]value.Value
	wts    []float64
	cols   []Column
	dict   *Dict

	// codeMu guards codeCache, the per-(column, bin width) cache of
	// materialized code vectors served through Snapshot.Codes/BinnedCodes
	// (see columns.go). Codes are append-only prefix-stable — rows never
	// mutate, dictionary codes never change — so a cached vector of length m
	// serves every snapshot of length ≤ m; only Truncate invalidates.
	codeMu    sync.Mutex
	codeCache map[codeKey]*codeVec
}

// New creates an empty table with the given name and schema.
func New(name string, s *schema.Schema) *Table {
	return &Table{name: name, schema: s, cols: newColumns(s), dict: NewDict()}
}

// Name returns the relation name.
func (t *Table) Name() string { return t.name }

// Schema returns the relation schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// Len returns the number of stored tuples.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Append validates and stores a row with weight 1.
func (t *Table) Append(row []value.Value) error {
	return t.AppendWeighted(row, 1)
}

// AppendWeighted validates and stores a row with the given weight.
func (t *Table) AppendWeighted(row []value.Value, w float64) error {
	vr, err := t.schema.Validate(row)
	if err != nil {
		return fmt.Errorf("table %s: %v", t.name, err)
	}
	if w < 0 {
		return fmt.Errorf("table %s: negative weight %g", t.name, w)
	}
	t.mu.Lock()
	i := len(t.rows)
	t.rows = append(t.rows, vr)
	t.wts = append(t.wts, w)
	for ci := range t.cols {
		t.cols[ci].appendValue(i, vr[ci], t.dict)
	}
	t.mu.Unlock()
	return nil
}

// BulkAppend stores many rows with weight 1, validating each.
func (t *Table) BulkAppend(rows [][]value.Value) error {
	for _, r := range rows {
		if err := t.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// Row returns the i-th row. The returned slice must not be modified.
func (t *Table) Row(i int) []value.Value {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[i]
}

// Weight returns the i-th tuple weight.
func (t *Table) Weight(i int) float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.wts[i]
}

// SetWeight overwrites the i-th tuple weight.
func (t *Table) SetWeight(i int, w float64) error {
	if w < 0 {
		return fmt.Errorf("table %s: negative weight %g", t.name, w)
	}
	t.mu.Lock()
	t.wts[i] = w
	t.mu.Unlock()
	return nil
}

// SetWeights overwrites all tuple weights at once; len(w) must equal Len.
func (t *Table) SetWeights(w []float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(w) != len(t.rows) {
		return fmt.Errorf("table %s: %d weights for %d rows", t.name, len(w), len(t.rows))
	}
	for i, x := range w {
		if x < 0 {
			return fmt.Errorf("table %s: negative weight %g at row %d", t.name, x, i)
		}
		t.wts[i] = x
	}
	return nil
}

// Weights returns a copy of all tuple weights.
func (t *Table) Weights() []float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]float64, len(t.wts))
	copy(out, t.wts)
	return out
}

// ResetWeights sets every tuple weight to w.
func (t *Table) ResetWeights(w float64) error {
	if w < 0 {
		return fmt.Errorf("table %s: negative weight %g", t.name, w)
	}
	t.mu.Lock()
	for i := range t.wts {
		t.wts[i] = w
	}
	t.mu.Unlock()
	return nil
}

// TotalWeight returns the sum of all tuple weights (the represented
// population size under the current reweighting).
func (t *Table) TotalWeight() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var s float64
	for _, w := range t.wts {
		s += w
	}
	return s
}

// Scan calls fn for every (row, weight) pair, stopping early if fn returns
// false. The row slice must not be modified.
func (t *Table) Scan(fn func(row []value.Value, w float64) bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i, r := range t.rows {
		if !fn(r, t.wts[i]) {
			return
		}
	}
}

// Column extracts the values of one attribute as a slice, in row order.
func (t *Table) Column(name string) ([]value.Value, error) {
	i, ok := t.schema.Index(name)
	if !ok {
		return nil, fmt.Errorf("table %s: no attribute %q", t.name, name)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]value.Value, len(t.rows))
	for j, r := range t.rows {
		out[j] = r[i]
	}
	return out, nil
}

// FloatColumn extracts a numeric attribute as float64s, in row order.
func (t *Table) FloatColumn(name string) ([]float64, error) {
	col, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(col))
	for j, v := range col {
		f, err := v.Float64()
		if err != nil {
			return nil, fmt.Errorf("table %s: attribute %q row %d: %v", t.name, name, j, err)
		}
		out[j] = f
	}
	return out, nil
}

// Clone deep-copies the table under a new name, preserving weights. The
// clone shares the source's string dictionary (codes are append-only, so
// sharing is safe and keeps clone codes compatible with source snapshots).
func (t *Table) Clone(name string) *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	nt := New(name, t.schema)
	nt.dict = t.dict
	nt.rows = make([][]value.Value, len(t.rows))
	nt.wts = make([]float64, len(t.wts))
	for i, r := range t.rows {
		rr := make([]value.Value, len(r))
		copy(rr, r)
		nt.rows[i] = rr
	}
	copy(nt.wts, t.wts)
	for ci := range t.cols {
		c := &t.cols[ci]
		nc := &nt.cols[ci]
		nc.Ints = append([]int64(nil), c.Ints...)
		nc.Floats = append([]float64(nil), c.Floats...)
		nc.Bools = append([]bool(nil), c.Bools...)
		nc.Codes = append([]uint32(nil), c.Codes...)
		nc.Nulls = append([]uint64(nil), c.Nulls...)
	}
	return nt
}

// Truncate removes all rows.
func (t *Table) Truncate() {
	t.mu.Lock()
	t.rows = nil
	t.wts = nil
	t.cols = newColumns(t.schema)
	t.mu.Unlock()
	t.codeMu.Lock()
	t.codeCache = nil
	t.codeMu.Unlock()
}

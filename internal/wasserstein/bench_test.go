package wasserstein

import (
	"math/rand"
	"testing"
)

func benchData(n int) ([]float64, *Weighted, []float64) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	vals := make([]float64, n)
	wts := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		vals[i] = rng.NormFloat64()
		wts[i] = rng.Float64() + 0.1
	}
	w, _ := NewWeighted(vals, wts)
	return xs, w, w.Quantiles(n)
}

func BenchmarkW1ToUniform500(b *testing.B) {
	xs, _, targets := benchData(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := W1ToUniform(xs, targets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantiles500(b *testing.B) {
	_, w, _ := benchData(500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Quantiles(500)
	}
}

func BenchmarkProjectCols(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pts := make([][]float64, 500)
	for i := range pts {
		pts[i] = make([]float64, 18)
		for j := range pts[i] {
			pts[i][j] = rng.NormFloat64()
		}
	}
	cols := []int{0, 3, 7, 11, 15}
	dir := RandomUnitVector(rng, len(cols))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ProjectCols(pts, cols, dir)
	}
}

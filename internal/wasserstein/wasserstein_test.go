package wasserstein

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestW1EmpiricalHandComputed(t *testing.T) {
	// W1({0,1},{1,2}) = mean(|0-1|,|1-2|) = 1.
	d, err := W1Empirical([]float64{0, 1}, []float64{2, 1})
	if err != nil || math.Abs(d-1) > 1e-12 {
		t.Errorf("W1 = %g, %v; want 1", d, err)
	}
	// Identical distributions.
	d, err = W1Empirical([]float64{3, 1, 2}, []float64{2, 3, 1})
	if err != nil || d != 0 {
		t.Errorf("W1 identical = %g, %v", d, err)
	}
	if _, err := W1Empirical([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("size mismatch should fail")
	}
	if d, err := W1Empirical(nil, nil); err != nil || d != 0 {
		t.Errorf("empty W1 = %g, %v", d, err)
	}
}

func TestW1TranslationProperty(t *testing.T) {
	// Property: W1(x+c, y+c) == W1(x, y); W1(x, x+c) == |c|.
	f := func(xs []float64, shift int8) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true
			}
		}
		c := float64(shift)
		ys := make([]float64, len(xs))
		for i := range xs {
			ys[i] = xs[i] + c
		}
		d, err := W1Empirical(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(d-math.Abs(c)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestW1SymmetryProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 {
			return true
		}
		xs, ys = xs[:n], ys[:n]
		for i := 0; i < n; i++ {
			if math.IsNaN(xs[i]) || math.Abs(xs[i]) > 1e12 || math.IsNaN(ys[i]) || math.Abs(ys[i]) > 1e12 {
				return true
			}
		}
		d1, e1 := W1Empirical(xs, ys)
		d2, e2 := W1Empirical(ys, xs)
		return e1 == nil && e2 == nil && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNewWeightedValidates(t *testing.T) {
	if _, err := NewWeighted(nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := NewWeighted([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := NewWeighted([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewWeighted([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("zero total should fail")
	}
}

func TestWeightedQuantiles(t *testing.T) {
	// Distribution: P(0)=0.5, P(10)=0.5.
	w, err := NewWeighted([]float64{10, 0}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if q := w.Quantile(0.25); q != 0 {
		t.Errorf("Q(0.25) = %g", q)
	}
	if q := w.Quantile(0.75); q != 10 {
		t.Errorf("Q(0.75) = %g", q)
	}
	if q := w.Quantile(0); q != 0 {
		t.Errorf("Q(0) = %g", q)
	}
	if q := w.Quantile(1); q != 10 {
		t.Errorf("Q(1) = %g", q)
	}
	qs := w.Quantiles(4)
	want := []float64{0, 0, 10, 10}
	for i := range want {
		if qs[i] != want[i] {
			t.Errorf("Quantiles(4) = %v, want %v", qs, want)
			break
		}
	}
}

func TestWeightedSkewedQuantiles(t *testing.T) {
	// P(1)=0.9, P(100)=0.1: the 9 lowest of 10 midpoint quantiles are 1.
	w, err := NewWeighted([]float64{1, 100}, []float64{9, 1})
	if err != nil {
		t.Fatal(err)
	}
	qs := w.Quantiles(10)
	ones := 0
	for _, q := range qs {
		if q == 1 {
			ones++
		}
	}
	if ones != 9 {
		t.Errorf("skewed quantiles = %v", qs)
	}
}

func TestWeightedMean(t *testing.T) {
	w, err := NewWeighted([]float64{0, 10}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m := w.Mean(); math.Abs(m-2.5) > 1e-12 {
		t.Errorf("Mean = %g, want 2.5", m)
	}
}

func TestW1ToUniformGradient(t *testing.T) {
	targets := []float64{0, 1, 2}
	x := []float64{2.5, -0.5, 1.0} // sorted: -0.5, 1.0, 2.5 vs 0,1,2
	d, g, err := W1ToUniform(x, targets)
	if err != nil {
		t.Fatal(err)
	}
	// |−0.5−0| + |1−1| + |2.5−2| = 1.0; /3
	if math.Abs(d-1.0/3) > 1e-12 {
		t.Errorf("distance = %g", d)
	}
	// Gradient: x[0]=2.5 matched to 2 → +1/3; x[1]=-0.5 matched to 0 → −1/3;
	// x[2]=1.0 matched to 1 → 0.
	want := []float64{1.0 / 3, -1.0 / 3, 0}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Errorf("grad[%d] = %g, want %g", i, g[i], want[i])
		}
	}
	if _, _, err := W1ToUniform([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("target size mismatch should fail")
	}
}

func TestW1ToUniformGradientIsSubgradient(t *testing.T) {
	// Finite-difference check of the W1 subgradient at generic points.
	rng := rand.New(rand.NewSource(3))
	targets := make([]float64, 16)
	x := make([]float64, 16)
	for i := range targets {
		targets[i] = rng.Float64() * 10
		x[i] = rng.Float64() * 10
	}
	sort.Float64s(targets)
	d0, g, err := W1ToUniform(x, targets)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	for i := range x {
		xp := append([]float64(nil), x...)
		xp[i] += h
		dp, _, err := W1ToUniform(xp, targets)
		if err != nil {
			t.Fatal(err)
		}
		num := (dp - d0) / h
		if math.Abs(num-g[i]) > 1e-4 {
			t.Errorf("grad[%d] = %g, finite diff %g", i, g[i], num)
		}
	}
}

func TestDistanceAgainstEmpirical(t *testing.T) {
	// A Weighted built from unit weights must agree with W1Empirical.
	rng := rand.New(rand.NewSource(4))
	n := 64
	xs := make([]float64, n)
	ys := make([]float64, n)
	ones := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 1
		ones[i] = 1
	}
	w, err := NewWeighted(ys, ones)
	if err != nil {
		t.Fatal(err)
	}
	got := w.Distance(xs)
	want, _ := W1Empirical(xs, ys)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Distance = %g, empirical = %g", got, want)
	}
}

func TestRandomUnitVector(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for d := 1; d <= 8; d++ {
		v := RandomUnitVector(rng, d)
		if len(v) != d {
			t.Fatalf("dim %d: len %d", d, len(v))
		}
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		if math.Abs(norm-1) > 1e-9 {
			t.Errorf("dim %d: norm² = %g", d, norm)
		}
	}
}

func TestProjectAndProjectCols(t *testing.T) {
	pts := [][]float64{{1, 2, 3}, {4, 5, 6}}
	dir := []float64{1, 0, -1}
	got := Project(pts, dir)
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("Project = %v", got)
	}
	got = ProjectCols(pts, []int{2, 0}, []float64{1, 1})
	if got[0] != 4 || got[1] != 10 {
		t.Errorf("ProjectCols = %v", got)
	}
}

func TestW1NonNegativityProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			clean = append(clean, x)
		}
		ones := make([]float64, len(clean))
		for i := range ones {
			ones[i] = 1
		}
		w, err := NewWeighted(clean, ones)
		if err != nil {
			return false
		}
		targets := w.Quantiles(len(clean))
		d, _, err := W1ToUniform(clean, targets)
		if err != nil {
			return false
		}
		// Distance to own quantiles is 0 (the batch sorted IS the quantile
		// vector), and always non-negative.
		return d >= 0 && d < 1e-9*math.Max(1, maxAbs(clean))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func maxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Package wasserstein implements exact one-dimensional optimal transport,
// the computational core of the paper's M-SWG (Sec 5): on the line, the
// Wasserstein-1 distance between distributions is the L1 distance between
// their quantile functions, computable by sorting (the paper's citation
// [49]). For ≥2-dimensional marginals the sliced Wasserstein distance [46]
// projects both distributions onto random unit directions and averages the
// per-projection 1-D distances.
package wasserstein

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// W1Empirical computes the exact W1 distance between two equal-size uniform
// empirical distributions: sort both and average |x_(i) − y_(i)|.
func W1Empirical(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("wasserstein: size mismatch %d vs %d", len(x), len(y))
	}
	if len(x) == 0 {
		return 0, nil
	}
	xs := append([]float64(nil), x...)
	ys := append([]float64(nil), y...)
	sort.Float64s(xs)
	sort.Float64s(ys)
	var d float64
	for i := range xs {
		d += math.Abs(xs[i] - ys[i])
	}
	return d / float64(len(xs)), nil
}

// Weighted is a weighted 1-D empirical distribution (a projected marginal).
type Weighted struct {
	vals []float64 // sorted
	cum  []float64 // cumulative weight fractions, cum[len-1] == 1
}

// NewWeighted builds a weighted empirical distribution. Weights must be
// non-negative with positive sum; vals need not be sorted.
func NewWeighted(vals, weights []float64) (*Weighted, error) {
	if len(vals) != len(weights) {
		return nil, fmt.Errorf("wasserstein: %d values, %d weights", len(vals), len(weights))
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("wasserstein: empty distribution")
	}
	type pair struct{ v, w float64 }
	ps := make([]pair, 0, len(vals))
	var total float64
	for i := range vals {
		if weights[i] < 0 {
			return nil, fmt.Errorf("wasserstein: negative weight %g", weights[i])
		}
		if weights[i] == 0 {
			continue
		}
		ps = append(ps, pair{vals[i], weights[i]})
		total += weights[i]
	}
	if total <= 0 {
		return nil, fmt.Errorf("wasserstein: zero total weight")
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].v < ps[j].v })
	w := &Weighted{vals: make([]float64, len(ps)), cum: make([]float64, len(ps))}
	var acc float64
	for i, p := range ps {
		acc += p.w
		w.vals[i] = p.v
		w.cum[i] = acc / total
	}
	w.cum[len(ps)-1] = 1
	return w, nil
}

// Quantile returns F^{-1}(q) for q in [0,1].
func (w *Weighted) Quantile(q float64) float64 {
	if q <= 0 {
		return w.vals[0]
	}
	if q >= 1 {
		return w.vals[len(w.vals)-1]
	}
	i := sort.SearchFloat64s(w.cum, q)
	if i >= len(w.vals) {
		i = len(w.vals) - 1
	}
	return w.vals[i]
}

// Quantiles evaluates the quantile function at the n midpoint fractions
// (j+0.5)/n — the optimal-transport targets for a uniform batch of size n.
func (w *Weighted) Quantiles(n int) []float64 {
	out := make([]float64, n)
	j := 0
	for i := 0; i < n; i++ {
		q := (float64(i) + 0.5) / float64(n)
		for j < len(w.cum)-1 && w.cum[j] < q {
			j++
		}
		out[i] = w.vals[j]
	}
	return out
}

// Mean returns the distribution mean.
func (w *Weighted) Mean() float64 {
	// Reconstruct weights from cum differences.
	var m, prev float64
	for i, c := range w.cum {
		m += w.vals[i] * (c - prev)
		prev = c
	}
	return m
}

// W1ToUniform computes the exact W1 distance between the weighted target and
// a uniform batch x, together with the subgradient of the distance with
// respect to each x[i]. targets must be w.Quantiles(len(x)) (precomputed by
// the caller so fixed projections amortize the quantile evaluation).
//
// With both sides sorted, W1 = (1/n)·Σ |x_(j) − t_j| and ∂W1/∂x_(j) =
// sign(x_(j) − t_j)/n; the permutation maps gradients back to input order.
func W1ToUniform(x, targets []float64) (float64, []float64, error) {
	n := len(x)
	if len(targets) != n {
		return 0, nil, fmt.Errorf("wasserstein: %d targets for batch of %d", len(targets), n)
	}
	if n == 0 {
		return 0, nil, nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return x[idx[a]] < x[idx[b]] })
	grad := make([]float64, n)
	var d float64
	inv := 1 / float64(n)
	for j, i := range idx {
		diff := x[i] - targets[j]
		d += math.Abs(diff)
		switch {
		case diff > 0:
			grad[i] = inv
		case diff < 0:
			grad[i] = -inv
		}
	}
	return d * inv, grad, nil
}

// Distance computes the exact W1 between the weighted target and a uniform
// batch without gradients.
func (w *Weighted) Distance(x []float64) float64 {
	t := w.Quantiles(len(x))
	d, _, _ := W1ToUniform(x, t)
	return d
}

// RandomUnitVector draws a direction uniformly from the unit sphere in R^d
// (Gaussian normalization).
func RandomUnitVector(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for {
		var norm float64
		for i := range v {
			v[i] = rng.NormFloat64()
			norm += v[i] * v[i]
		}
		if norm > 1e-12 {
			norm = math.Sqrt(norm)
			for i := range v {
				v[i] /= norm
			}
			return v
		}
	}
}

// Project computes the dot products of each row of points with dir.
func Project(points [][]float64, dir []float64) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		var s float64
		for j, d := range dir {
			s += p[j] * d
		}
		out[i] = s
	}
	return out
}

// ProjectCols projects only the listed columns of each row onto dir
// (len(dir) == len(cols)); used to slice a marginal's encoded subspace out of
// full generator output.
func ProjectCols(points [][]float64, cols []int, dir []float64) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		var s float64
		for j, c := range cols {
			s += p[c] * dir[j]
		}
		out[i] = s
	}
	return out
}

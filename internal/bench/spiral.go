// Package bench regenerates every table and figure of the paper's
// evaluation (Sec 5.3) plus the ablations listed in DESIGN.md. Each
// experiment is a pure function from a config to a result struct with a
// String() rendering, so the same drivers back the testing.B benchmarks in
// bench_test.go and the mosaic-bench CLI.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"mosaic/internal/dataset"
	"mosaic/internal/marginal"
	"mosaic/internal/stats"
	"mosaic/internal/swg"
	"mosaic/internal/table"
	"mosaic/internal/wasserstein"
)

// SpiralConfig tunes the synthetic-data experiments (Fig 5 and Fig 6).
type SpiralConfig struct {
	PopN    int     // population size (default 50000)
	SampleN int     // biased sample size (paper: 10000)
	Bias    float64 // right-half overrepresentation odds (default 8)
	Bins    int     // marginal histogram bins per axis (default 40)
	SWG     swg.Config
	Seed    int64
}

func (c SpiralConfig) withDefaults() SpiralConfig {
	if c.PopN <= 0 {
		c.PopN = 50000
	}
	if c.SampleN <= 0 {
		c.SampleN = 10000
	}
	if c.Bias <= 0 {
		c.Bias = 8
	}
	if c.Bins <= 0 {
		c.Bins = 40
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.SWG.Hidden) == 0 {
		// Paper: 3 ReLU FC layers with 100 nodes each, λ=0.04, ℓ=2,
		// batch 500 (Sec 5.3 footnote 3).
		c.SWG = swg.Config{
			Hidden:      []int{100, 100, 100},
			Latent:      2,
			Lambda:      0.04,
			BatchSize:   500,
			Projections: 64,
			Epochs:      25,
			LR:          0.001,
			Seed:        c.Seed,
		}
	}
	return c
}

// SpiralSetup bundles everything the spiral experiments share.
type SpiralSetup struct {
	Cfg       SpiralConfig
	Pop       *table.Table
	Sample    *table.Table
	Marginals []*marginal.Marginal
	Model     *swg.Model
}

// BuildSpiral generates the population and biased sample, derives the
// population's 1-D histogram marginals, and trains the M-SWG.
func BuildSpiral(cfg SpiralConfig) (*SpiralSetup, error) {
	cfg = cfg.withDefaults()
	pop := dataset.Spiral(dataset.SpiralConfig{N: cfg.PopN, Seed: cfg.Seed})
	sample, err := dataset.BiasedSpiralSample(pop, cfg.SampleN, cfg.Bias, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	width := 1.6 / float64(cfg.Bins) // data spans roughly [-0.3, 1.3]
	var margs []*marginal.Marginal
	for _, attr := range []string{"x", "y"} {
		m, err := marginal.FromTableBinned("spiral_"+attr, pop, []string{attr},
			map[string]float64{attr: width})
		if err != nil {
			return nil, err
		}
		margs = append(margs, m)
	}
	model, err := swg.New(sample, margs, cfg.SWG)
	if err != nil {
		return nil, err
	}
	if err := model.Train(); err != nil {
		return nil, err
	}
	return &SpiralSetup{Cfg: cfg, Pop: pop, Sample: sample, Marginals: margs, Model: model}, nil
}

// Fig5Result compares the biased sample and the M-SWG sample against the
// population: per-axis marginal W1 (lower = marginals better matched, the
// paper's "generated data more closely matches the marginals") and the mean
// nearest-population distance (lower = spiral shape maintained).
type Fig5Result struct {
	SampleW1X, SampleW1Y float64
	GenW1X, GenW1Y       float64
	SampleShape          float64
	GenShape             float64
	GeneratedN           int
}

// String renders the result as the two panels' summary.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — spiral population, biased sample vs M-SWG sample\n")
	fmt.Fprintf(&b, "%-22s %12s %12s\n", "metric", "biased", "M-SWG")
	fmt.Fprintf(&b, "%-22s %12.5f %12.5f\n", "marginal W1 (x)", r.SampleW1X, r.GenW1X)
	fmt.Fprintf(&b, "%-22s %12.5f %12.5f\n", "marginal W1 (y)", r.SampleW1Y, r.GenW1Y)
	fmt.Fprintf(&b, "%-22s %12.5f %12.5f\n", "shape dist (mean NN)", r.SampleShape, r.GenShape)
	return b.String()
}

// RunFigure5 regenerates Fig 5's comparison.
func RunFigure5(cfg SpiralConfig) (*Fig5Result, error) {
	setup, err := BuildSpiral(cfg)
	if err != nil {
		return nil, err
	}
	return Figure5From(setup)
}

// Figure5From computes the Fig 5 metrics from an existing setup.
func Figure5From(s *SpiralSetup) (*Fig5Result, error) {
	gen, err := s.Model.Generate("mswg_sample", s.Cfg.SampleN)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{GeneratedN: gen.Len()}
	for i, attr := range []string{"x", "y"} {
		popCol, err := s.Pop.FloatColumn(attr)
		if err != nil {
			return nil, err
		}
		sampCol, err := s.Sample.FloatColumn(attr)
		if err != nil {
			return nil, err
		}
		genCol, err := gen.FloatColumn(attr)
		if err != nil {
			return nil, err
		}
		ones := make([]float64, len(popCol))
		for j := range ones {
			ones[j] = 1
		}
		target, err := wasserstein.NewWeighted(popCol, ones)
		if err != nil {
			return nil, err
		}
		ws := target.Distance(sampCol)
		wg := target.Distance(genCol)
		if i == 0 {
			res.SampleW1X, res.GenW1X = ws, wg
		} else {
			res.SampleW1Y, res.GenW1Y = ws, wg
		}
	}
	rng := rand.New(rand.NewSource(s.Cfg.Seed + 7))
	res.SampleShape = meanNearestDistance(s.Sample, s.Pop, 2000, 5000, rng)
	res.GenShape = meanNearestDistance(gen, s.Pop, 2000, 5000, rng)
	return res, nil
}

// meanNearestDistance estimates E_{q∈queryTable} min_{p∈refTable} ‖q−p‖
// over random subsamples of both tables (exact nearest neighbour over the
// full 50k×10k product is unnecessary for a summary statistic).
func meanNearestDistance(query, ref *table.Table, nq, nr int, rng *rand.Rand) float64 {
	qx, _ := query.FloatColumn("x")
	qy, _ := query.FloatColumn("y")
	rx, _ := ref.FloatColumn("x")
	ry, _ := ref.FloatColumn("y")
	if len(qx) == 0 || len(rx) == 0 {
		return math.NaN()
	}
	qi := subsampleIdx(len(qx), nq, rng)
	ri := subsampleIdx(len(rx), nr, rng)
	var sum float64
	for _, i := range qi {
		best := math.Inf(1)
		for _, j := range ri {
			dx := qx[i] - rx[j]
			dy := qy[i] - ry[j]
			d := dx*dx + dy*dy
			if d < best {
				best = d
			}
		}
		sum += math.Sqrt(best)
	}
	return sum / float64(len(qi))
}

func subsampleIdx(n, limit int, rng *rand.Rand) []int {
	if n <= limit {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, limit)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}

// Fig6Row is one width-coverage group of Fig 6's box plot: the distribution
// of average percent difference over the random range queries, for the
// uniformly reweighted sample and for the M-SWG.
type Fig6Row struct {
	Coverage float64
	Unif     stats.Box
	MSWG     stats.Box
}

// Fig6Config tunes the range-query experiment.
type Fig6Config struct {
	Spiral     SpiralConfig
	Coverages  []float64 // fraction of each axis's range per box side
	Queries    int       // random boxes per coverage (paper: 100)
	Replicates int       // generated samples averaged (paper: 10)
}

func (c Fig6Config) withDefaults() Fig6Config {
	c.Spiral = c.Spiral.withDefaults()
	if len(c.Coverages) == 0 {
		c.Coverages = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	}
	if c.Queries <= 0 {
		c.Queries = 100
	}
	if c.Replicates <= 0 {
		c.Replicates = 10
	}
	return c
}

// Fig6Result is the full figure.
type Fig6Result struct {
	Rows []Fig6Row
}

// String renders the box-plot table.
func (r *Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — avg percent diff of 2-D range queries, Unif vs M-SWG\n")
	fmt.Fprintf(&b, "%-9s  %-62s  %s\n", "coverage", "Unif", "M-SWG")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9.2f  %-62s  %s\n", row.Coverage, row.Unif, row.MSWG)
	}
	return b.String()
}

// RunFigure6 regenerates Fig 6: for each coverage, Queries random square
// range-count queries, answered by (a) the uniformly reweighted biased
// sample and (b) Replicates M-SWG samples whose percent differences are
// averaged per query; each group is summarized as a box.
func RunFigure6(cfg Fig6Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	setup, err := BuildSpiral(cfg.Spiral)
	if err != nil {
		return nil, err
	}
	return Figure6From(setup, cfg)
}

// Figure6From runs the query phase against an existing setup.
func Figure6From(setup *SpiralSetup, cfg Fig6Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	popX, _ := setup.Pop.FloatColumn("x")
	popY, _ := setup.Pop.FloatColumn("y")
	sampX, _ := setup.Sample.FloatColumn("x")
	sampY, _ := setup.Sample.FloatColumn("y")
	minX, maxX := minMax(popX)
	minY, maxY := minMax(popY)

	// Generated replicates, each uniformly reweighted to the population
	// size (weight folded into the count scale factor below).
	genXs := make([][]float64, cfg.Replicates)
	genYs := make([][]float64, cfg.Replicates)
	for r := 0; r < cfg.Replicates; r++ {
		gen, err := setup.Model.Generate(fmt.Sprintf("gen%d", r), setup.Cfg.SampleN)
		if err != nil {
			return nil, err
		}
		genXs[r], _ = gen.FloatColumn("x")
		genYs[r], _ = gen.FloatColumn("y")
	}

	popToSample := float64(setup.Cfg.PopN) / float64(setup.Cfg.SampleN)
	rng := rand.New(rand.NewSource(setup.Cfg.Seed + 13))
	out := &Fig6Result{}
	for _, cov := range cfg.Coverages {
		wx := cov * (maxX - minX)
		wy := cov * (maxY - minY)
		unifErrs := make([]float64, 0, cfg.Queries)
		swgErrs := make([]float64, 0, cfg.Queries)
		for q := 0; q < cfg.Queries; q++ {
			x0 := minX + rng.Float64()*(maxX-minX-wx)
			y0 := minY + rng.Float64()*(maxY-minY-wy)
			truth := boxCount(popX, popY, x0, y0, wx, wy)
			unif := boxCount(sampX, sampY, x0, y0, wx, wy) * popToSample
			unifErrs = append(unifErrs, stats.PercentDiff(unif, truth))
			var acc float64
			for r := 0; r < cfg.Replicates; r++ {
				est := boxCount(genXs[r], genYs[r], x0, y0, wx, wy) * popToSample
				acc += stats.PercentDiff(est, truth)
			}
			swgErrs = append(swgErrs, acc/float64(cfg.Replicates))
		}
		out.Rows = append(out.Rows, Fig6Row{
			Coverage: cov,
			Unif:     stats.BoxOf(stats.Finite(unifErrs)),
			MSWG:     stats.BoxOf(stats.Finite(swgErrs)),
		})
	}
	return out, nil
}

func boxCount(xs, ys []float64, x0, y0, wx, wy float64) float64 {
	var n float64
	for i := range xs {
		if xs[i] >= x0 && xs[i] <= x0+wx && ys[i] >= y0 && ys[i] <= y0+wy {
			n++
		}
	}
	return n
}

func minMax(xs []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

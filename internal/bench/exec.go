// Executor microbenchmarks: the row engine versus the vectorized columnar
// engine on identical tables and queries, with byte-exact answer
// verification built in. `mosaic-bench -exp exec [-rows N] [-json out.json]`
// runs them; the JSON form feeds BENCH_exec.json so future PRs can track
// the trajectory.
package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"mosaic"
	"mosaic/internal/exec"
	"mosaic/internal/marginal"
	"mosaic/internal/schema"
	"mosaic/internal/sql"
	"mosaic/internal/swg"
	"mosaic/internal/table"
	"mosaic/internal/value"
)

// ExecConfig sizes the executor microbenchmarks.
type ExecConfig struct {
	Rows    int   // table size (default 1,000,000)
	Seed    int64 // RNG seed for the synthetic table
	Workers []int // worker counts swept on the vectorized path (default {1})
	Shards  []int // shard counts swept on the vectorized path (default {1})
}

// ExecCase is one measured microbenchmark: one query at one worker count.
// The row-engine baseline is measured once per query and repeated across
// that query's sweep rows so every case is self-describing.
type ExecCase struct {
	Name    string  `json:"name"`
	Query   string  `json:"query"`
	Rows    int     `json:"rows"`
	Workers int     `json:"workers"`  // vectorized-path worker count
	Shards  int     `json:"shards"`   // scatter-gather shard count (1 = unsharded)
	Groups  int     `json:"groups"`   // output rows of the query
	RowMs   float64 `json:"row_ms"`   // row engine (or baseline path), ms per run
	VecMs   float64 `json:"vec_ms"`   // vectorized engine (or optimized path), ms per run
	Speedup float64 `json:"speedup"`  // RowMs / VecMs
	Match   bool    `json:"verified"` // answers byte-identical across paths
}

// ExecResult is the full microbenchmark report.
type ExecResult struct {
	Rows      int        `json:"rows"`
	Seed      int64      `json:"seed"`
	BuildSecs float64    `json:"build_secs"`
	Cases     []ExecCase `json:"cases"`
}

// String renders the report as an aligned table.
func (r *ExecResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Executor microbenchmarks — %d rows (table build %.1fs)\n", r.Rows, r.BuildSecs)
	fmt.Fprintf(&b, "  %-26s %7s %6s %12s %12s %9s %9s\n", "case", "workers", "shards", "row ms/op", "vec ms/op", "speedup", "verified")
	for _, c := range r.Cases {
		fmt.Fprintf(&b, "  %-26s %7d %6d %12.2f %12.2f %8.2fx %9v\n", c.Name, c.Workers, c.Shards, c.RowMs, c.VecMs, c.Speedup, c.Match)
	}
	return b.String()
}

// JSON returns the machine-readable report.
func (r *ExecResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

var execBenchSchema = schema.MustNew(
	schema.Attribute{Name: "c10", Kind: value.KindText},
	schema.Attribute{Name: "c1k", Kind: value.KindText},
	schema.Attribute{Name: "c100k", Kind: value.KindText},
	schema.Attribute{Name: "x", Kind: value.KindInt},
	schema.Attribute{Name: "y", Kind: value.KindFloat},
)

// buildExecTable synthesizes the benchmark relation: three text attributes
// at group-by cardinalities 10 / 1k / 100k, an int and a float measure, and
// non-unit weights (so the weighted-aggregate rewriting is really
// exercised).
func buildExecTable(cfg ExecConfig) (*table.Table, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := table.New("t", execBenchSchema)
	for i := 0; i < cfg.Rows; i++ {
		row := []value.Value{
			value.Text(fmt.Sprintf("g%d", rng.Intn(10))),
			value.Text(fmt.Sprintf("k%d", rng.Intn(1000))),
			value.Text(fmt.Sprintf("u%d", rng.Intn(100000))),
			value.Int(int64(rng.Intn(1000))),
			value.Float(rng.Float64() * 100),
		}
		if err := t.AppendWeighted(row, 0.5+rng.Float64()); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// execBenchCases: scan-filter, group-by at three cardinalities, the headline
// 1M-row weighted group-by, columnar sort / top-K / DISTINCT, and the
// arithmetic WHERE kernels. "orderby-topk" is the acceptance gate for the
// heap path: 1M-row ORDER BY ... LIMIT 10 must beat the row engine ≥ 5×.
var execBenchCases = []struct{ name, query string }{
	{"scan-filter", "SELECT COUNT(*) FROM t WHERE x > 500"},
	{"scan-filter-text", "SELECT COUNT(*) FROM t WHERE c10 != 'g3' AND y < 75"},
	{"groupby-10", "SELECT c10, COUNT(*), AVG(y) FROM t GROUP BY c10"},
	{"groupby-1k", "SELECT c1k, COUNT(*), AVG(y) FROM t GROUP BY c1k"},
	{"groupby-100k", "SELECT c100k, COUNT(*), AVG(y) FROM t GROUP BY c100k"},
	{"weighted-groupby", "SELECT c1k, COUNT(*), SUM(x), AVG(y) FROM t GROUP BY c1k"},
	{"weighted-global", "SELECT COUNT(*), SUM(x), AVG(y), MIN(x), MAX(y) FROM t"},
	{"orderby-topk", "SELECT c1k, x, y FROM t ORDER BY y DESC, x LIMIT 10"},
	{"orderby-topk-filter", "SELECT c10, y FROM t WHERE x > 250 ORDER BY y LIMIT 100"},
	{"orderby-full", "SELECT y FROM t ORDER BY y"},
	{"distinct-1k", "SELECT DISTINCT c1k FROM t"},
	{"distinct-orderby", "SELECT DISTINCT c10, c1k FROM t ORDER BY c10, c1k DESC LIMIT 50"},
	{"arith-where", "SELECT COUNT(*) FROM t WHERE x * 2 > y + 500"},
	{"arith-agg", "SELECT c10, SUM(x * 2), AVG(y / 2) FROM t GROUP BY c10"},
}

// timeRuns measures the mean ms/op of a query over enough iterations to
// fill a modest time budget (minimum 3 runs, maximum 50).
func timeRuns(t *table.Table, sel *sql.Select, opts exec.Options) (float64, *exec.Result, error) {
	res, err := exec.Run(t, sel, opts) // warm-up, also the verification answer
	if err != nil {
		return 0, nil, err
	}
	ms, err := timeBudget(func() error {
		_, err := exec.Run(t, sel, opts)
		return err
	})
	return ms, res, err
}

// timeBudget runs fn repeatedly — at least 3 times, at most 50, stopping
// once 600ms have elapsed — and returns the mean ms per run.
func timeBudget(fn func() error) (float64, error) {
	const budget = 600 * time.Millisecond
	runs := 0
	start := time.Now()
	for runs < 3 || (time.Since(start) < budget && runs < 50) {
		if err := fn(); err != nil {
			return 0, err
		}
		runs++
	}
	return float64(time.Since(start).Microseconds()) / 1000 / float64(runs), nil
}

// RunExecMicro measures the executor paths against each other.
func RunExecMicro(cfg ExecConfig) (*ExecResult, error) {
	if cfg.Rows <= 0 {
		cfg.Rows = 1_000_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1}
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1}
	}
	buildStart := time.Now()
	t, err := buildExecTable(cfg)
	if err != nil {
		return nil, err
	}
	out := &ExecResult{Rows: cfg.Rows, Seed: cfg.Seed, BuildSecs: time.Since(buildStart).Seconds()}
	for _, c := range execBenchCases {
		sel, err := sql.ParseQuery(c.query)
		if err != nil {
			return nil, fmt.Errorf("bench exec %s: %v", c.name, err)
		}
		// The row baseline times once per query; the vectorized path sweeps
		// workers × shards. Verification matches the determinism contract:
		// at Shards 1 every answer must be byte-identical to the row engine
		// (morsel-merge determinism, checked in anger); at Shards > 1 float
		// aggregates may legitimately differ from the unsharded answer in
		// low-order bits (partial-state merges reassociate addition), so the
		// contract is bit-identity across runs and worker counts for the
		// fixed shard count — every sweep cell is checked against a fresh
		// single-worker reference at the same Shards value.
		rowMs, rowRes, err := timeRuns(t, sel, exec.Options{Weighted: true, ForceRow: true})
		if err != nil {
			return nil, fmt.Errorf("bench exec %s (row): %v", c.name, err)
		}
		for _, s := range cfg.Shards {
			want := rowRes
			if s > 1 {
				want, err = exec.Run(t, sel, exec.Options{Weighted: true, Workers: 1, Shards: s})
				if err != nil {
					return nil, fmt.Errorf("bench exec %s (%d shards, reference): %v", c.name, s, err)
				}
			}
			for _, w := range cfg.Workers {
				vecMs, vecRes, err := timeRuns(t, sel, exec.Options{Weighted: true, Workers: w, Shards: s})
				if err != nil {
					return nil, fmt.Errorf("bench exec %s (vec, %d workers, %d shards): %v", c.name, w, s, err)
				}
				out.Cases = append(out.Cases, ExecCase{
					Name:    c.name,
					Query:   c.query,
					Rows:    cfg.Rows,
					Workers: w,
					Shards:  s,
					Groups:  len(vecRes.Rows),
					RowMs:   rowMs,
					VecMs:   vecMs,
					Speedup: rowMs / vecMs,
					Match:   want.String() == vecRes.String(),
				})
			}
		}
	}
	genCase, err := runOpenGenCase(cfg)
	if err != nil {
		return nil, err
	}
	out.Cases = append(out.Cases, genCase)
	prepCase, err := runPreparedCase()
	if err != nil {
		return nil, err
	}
	out.Cases = append(out.Cases, prepCase)
	// The byte-verification is the point of the exercise: a divergence
	// between the two executors (or the two decode paths) must fail the
	// run, not just flip a JSON field — CI leans on this as a differential
	// check.
	for _, c := range out.Cases {
		if !c.Match {
			return nil, fmt.Errorf("bench exec %s: row and vectorized answers DIVERGED (query: %s)", c.Name, c.Query)
		}
	}
	return out, nil
}

// runOpenGenCase races the two OPEN replicate materialization paths on one
// pre-generated encoded batch: the retired row-append decode (per-row
// validation, locking, dictionary lookups) against the column-native decode
// that writes straight into typed column builders. The generator network is
// untrained — decode cost does not depend on the weights — and byte-equality
// of the two tables is verified before timing is reported.
func runOpenGenCase(cfg ExecConfig) (ExecCase, error) {
	sampleN := 2000
	genN := cfg.Rows / 5
	if genN < 1000 {
		genN = 1000
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sc := schema.MustNew(
		schema.Attribute{Name: "c", Kind: value.KindText},
		schema.Attribute{Name: "x", Kind: value.KindInt},
		schema.Attribute{Name: "y", Kind: value.KindFloat},
	)
	sample := table.New("s", sc)
	for i := 0; i < sampleN; i++ {
		row := []value.Value{
			value.Text(fmt.Sprintf("g%d", rng.Intn(10))),
			value.Int(int64(rng.Intn(1000))),
			value.Float(rng.Float64() * 100),
		}
		if err := sample.Append(row); err != nil {
			return ExecCase{}, err
		}
	}
	mc, err := marginal.FromTable("mc", sample, []string{"c"})
	if err != nil {
		return ExecCase{}, err
	}
	model, err := swg.New(sample, []*marginal.Marginal{mc}, swg.Config{
		Hidden: []int{8}, Latent: 2, Projections: 4, Epochs: 1, BatchSize: 512, Seed: cfg.Seed,
	})
	if err != nil {
		return ExecCase{}, err
	}
	enc := model.GenerateEncodedSeeded(genN, cfg.Seed)

	rowT, err := model.DecodeTableRowAppend("g", enc)
	if err != nil {
		return ExecCase{}, err
	}
	colT, err := model.DecodeTable("g", enc, 1)
	if err != nil {
		return ExecCase{}, err
	}
	match := tablesEqual(rowT, colT)

	rowMs, err := timeBudget(func() error { _, err := model.DecodeTableRowAppend("g", enc); return err })
	if err != nil {
		return ExecCase{}, err
	}
	vecMs, err := timeBudget(func() error { _, err := model.DecodeTable("g", enc, 1); return err })
	if err != nil {
		return ExecCase{}, err
	}
	return ExecCase{
		Name:    "open-gen-decode",
		Query:   fmt.Sprintf("swg decode of %d generated tuples: row-append vs column-native", genN),
		Rows:    genN,
		Workers: 1,
		Shards:  1,
		Groups:  genN,
		RowMs:   rowMs,
		VecMs:   vecMs,
		Speedup: rowMs / vecMs,
		Match:   match,
	}, nil
}

// runPreparedCase measures the prepared-statement amortization through the
// public API: an unprepared parameterized db.Query (re-lex, re-parse,
// re-plan, then execute) against re-executing one db.Prepare'd Stmt. The
// table is deliberately small so the per-call parse+plan overhead — the cost
// prepared statements exist to amortize — is visible next to execution; the
// answer is byte-verified against the literal-inlined spelling first.
func runPreparedCase() (ExecCase, error) {
	const rows = 2000
	db := mosaic.Open(nil)
	if err := db.Exec("CREATE TABLE tp (c10 TEXT, x INT)"); err != nil {
		return ExecCase{}, err
	}
	rng := rand.New(rand.NewSource(7))
	batch := make([][]any, rows)
	for i := range batch {
		batch[i] = []any{fmt.Sprintf("g%d", rng.Intn(10)), rng.Intn(1000)}
	}
	if err := db.Ingest("tp", batch); err != nil {
		return ExecCase{}, err
	}
	const paramQ = "SELECT c10, COUNT(*) FROM tp WHERE x > ? GROUP BY c10 ORDER BY c10"
	const litQ = "SELECT c10, COUNT(*) FROM tp WHERE x > 500 GROUP BY c10 ORDER BY c10"
	stmt, err := db.Prepare(paramQ)
	if err != nil {
		return ExecCase{}, err
	}
	want, err := db.Query(litQ)
	if err != nil {
		return ExecCase{}, err
	}
	got, err := stmt.Query(500)
	if err != nil {
		return ExecCase{}, err
	}
	match := got.String() == want.String()

	unpreparedMs, err := timeBudget(func() error {
		_, err := db.Query(paramQ, 500)
		return err
	})
	if err != nil {
		return ExecCase{}, err
	}
	preparedMs, err := timeBudget(func() error {
		_, err := stmt.Query(500)
		return err
	})
	if err != nil {
		return ExecCase{}, err
	}
	return ExecCase{
		Name:    "prepared-exec",
		Query:   fmt.Sprintf("%s (param 500, %d rows): per-call parse+plan vs prepared Stmt", paramQ, rows),
		Rows:    rows,
		Workers: runtime.GOMAXPROCS(0), // the DB's default worker pool
		Shards:  1,
		Groups:  len(got.Rows),
		RowMs:   unpreparedMs,
		VecMs:   preparedMs,
		Speedup: unpreparedMs / preparedMs,
		Match:   match,
	}, nil
}

// tablesEqual compares two tables value-for-value (rows, weights, kinds).
func tablesEqual(a, b *table.Table) bool {
	if a.Len() != b.Len() || !a.Schema().Equal(b.Schema()) {
		return false
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	for i := 0; i < sa.Len(); i++ {
		if sa.Weight(i) != sb.Weight(i) {
			return false
		}
		ra, rb := sa.Row(i), sb.Row(i)
		for j := range ra {
			if ra[j].Kind() != rb[j].Kind() || !value.Equal(ra[j], rb[j]) {
				return false
			}
		}
	}
	return true
}

package bench

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"mosaic/internal/sql"
	"mosaic/internal/swg"
)

// tinySpiral is a fast configuration for CI-speed experiment tests.
func tinySpiral() SpiralConfig {
	return SpiralConfig{
		PopN: 4000, SampleN: 800, Bias: 8, Bins: 24, Seed: 5,
		SWG: swg.Config{
			Hidden: []int{24, 24}, Latent: 2, Lambda: 0.04,
			BatchSize: 200, Projections: 8, Epochs: 10, StepsPerEpoch: 4,
			LR: 0.002, Seed: 5,
		},
	}
}

func tinyFlights() FlightsConfig {
	return FlightsConfig{
		PopN: 6000, SampleFrac: 0.05, BiasFrac: 0.95, OpenSamples: 3, Seed: 5,
		SWG: swg.Config{
			Hidden: []int{24, 24}, Latent: 8, Lambda: 1e-6,
			BatchSize: 150, Projections: 8, Epochs: 8, StepsPerEpoch: 2,
			LR: 0.002, Seed: 5,
		},
	}
}

func TestFigure5SmokeAndDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a generator")
	}
	res, err := RunFigure5(tinySpiral())
	if err != nil {
		t.Fatal(err)
	}
	if res.GeneratedN != 800 {
		t.Errorf("generated %d rows", res.GeneratedN)
	}
	// The headline claim of Fig 5: the generated sample matches the
	// population marginals better than the biased sample does.
	if res.GenW1X >= res.SampleW1X {
		t.Errorf("x marginal: M-SWG W1 %.4f not better than biased sample %.4f", res.GenW1X, res.SampleW1X)
	}
	if s := res.String(); !strings.Contains(s, "Figure 5") {
		t.Error("String missing header")
	}
	for _, v := range []float64{res.SampleW1X, res.SampleW1Y, res.GenW1X, res.GenW1Y, res.SampleShape, res.GenShape} {
		if math.IsNaN(v) || v < 0 {
			t.Errorf("bad metric %g", v)
		}
	}
}

func TestFigure6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a generator")
	}
	cfg := Fig6Config{Spiral: tinySpiral(), Coverages: []float64{0.3, 0.6}, Queries: 20, Replicates: 3}
	res, err := RunFigure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Unif.N == 0 || row.MSWG.N == 0 {
			t.Errorf("coverage %g: empty boxes", row.Coverage)
		}
		if row.Unif.Mean < 0 || row.MSWG.Mean < 0 {
			t.Errorf("coverage %g: negative error", row.Coverage)
		}
	}
	// Wide boxes: both methods should do reasonably; the biased sample's
	// error should be visibly nonzero (it is badly skewed).
	if res.Rows[1].Unif.Mean < 0.05 {
		t.Errorf("biased sample error suspiciously low: %v", res.Rows[1].Unif)
	}
	if s := res.String(); !strings.Contains(s, "Figure 6") {
		t.Error("String missing header")
	}
}

func TestFigure7SmokeAndShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a generator")
	}
	res, err := RunFigure7(tinyFlights())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for name, v := range map[string]float64{"unif": row.Unif, "ipf": row.IPF, "mswg": row.MSWG} {
			if math.IsNaN(v) || v < 0 {
				t.Errorf("query %d %s error = %g", row.ID, name, v)
			}
		}
	}
	// Shape checks from the paper:
	// Query 1's predicate matches the bias — Unif and IPF are nearly exact.
	if res.Rows[0].Unif > 0.05 {
		t.Errorf("query 1 Unif error %.4f; should be near zero (sample matches predicate)", res.Rows[0].Unif)
	}
	// Query 3: the biased sample overestimates AVG(E); IPF should not be
	// worse than Unif by much, and the raw sample must show real error.
	if res.Rows[2].Unif < 0.01 {
		t.Errorf("query 3 Unif error %.4f; biased sample should err here", res.Rows[2].Unif)
	}
	if s := res.String(); !strings.Contains(s, "Figure 7") {
		t.Error("String missing header")
	}
}

func TestVisibilityTableMatchesPaperStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a generator")
	}
	res, err := RunVisibility(VisibilityConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byVis := map[string]VisibilityRow{}
	for _, r := range res.Rows {
		byVis[r.Visibility] = r
	}
	n := res.MissingFromSample
	if n == 0 {
		t.Fatal("experiment must have missing tuples")
	}
	// Sec 3.3's table: CLOSED and SEMI-OPEN have exactly n FN and 0 FP.
	for _, vis := range []string{"CLOSED", "SEMI-OPEN"} {
		if byVis[vis].FalseNegatives != n {
			t.Errorf("%s FN = %d, want %d", vis, byVis[vis].FalseNegatives, n)
		}
		if byVis[vis].FalsePositives != 0 {
			t.Errorf("%s FP = %d, want 0", vis, byVis[vis].FalsePositives)
		}
	}
	// OPEN: FN ≤ n (possibly fewer), FP ≥ 0.
	if byVis["OPEN"].FalseNegatives > n {
		t.Errorf("OPEN FN = %d exceeds n = %d", byVis["OPEN"].FalseNegatives, n)
	}
	if s := res.String(); !strings.Contains(s, "False Negative") {
		t.Error("String missing header")
	}
}

func TestSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a generator")
	}
	res, err := RunSweep(SweepConfig{Flights: tinyFlights(), Queries: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.NonEmpty == 0 {
		t.Fatal("no non-empty queries")
	}
	if res.MSWGBeatsUnif < 0 || res.MSWGBeatsUnif > res.NonEmpty {
		t.Errorf("win count out of range: %+v", res)
	}
	if s := res.String(); !strings.Contains(s, "sweep") {
		t.Error("String missing header")
	}
}

func TestAblationMechanism(t *testing.T) {
	res, err := RunAblationMechanism(FlightsConfig{PopN: 30000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// HT is unbiased but has sampling variance (the short-flight stratum is
	// drawn at 1 % and weighted 100×); 15 % ≈ 3 standard deviations here.
	if math.Abs(res.HTCount-res.TruthCount)/res.TruthCount > 0.15 {
		t.Errorf("HT count %.0f far from truth %.0f", res.HTCount, res.TruthCount)
	}
	if res.ClosedCount >= res.TruthCount/2 {
		t.Errorf("closed count %.0f should be far below truth %.0f", res.ClosedCount, res.TruthCount)
	}
	// IPF on the elapsed-time marginal also recovers the count.
	if math.Abs(res.IPFCount-res.TruthCount)/res.TruthCount > 0.1 {
		t.Errorf("IPF count %.0f far from truth %.0f", res.IPFCount, res.TruthCount)
	}
	// The closed AVG(E) is badly biased upward; HT and IPF fix it.
	if res.ClosedAvg <= res.TruthAvg {
		t.Errorf("closed AVG %.1f should exceed truth %.1f (long-flight bias)", res.ClosedAvg, res.TruthAvg)
	}
	if math.Abs(res.HTAvg-res.TruthAvg) >= math.Abs(res.ClosedAvg-res.TruthAvg) {
		t.Errorf("HT AVG %.1f no better than closed %.1f (truth %.1f)", res.HTAvg, res.ClosedAvg, res.TruthAvg)
	}
	if s := res.String(); !strings.Contains(s, "A3") {
		t.Error("String missing header")
	}
}

func TestAblationMarginalScope(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := RunAblationMarginalScope(tinyFlights())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.QueryErr) || math.IsNaN(res.GlobalErr) {
		t.Fatalf("NaN errors: %+v", res)
	}
	// The paper's claim: query-scope accuracy is at least as good as
	// global-scope ("accuracy will likely be lower when reweighting to fit
	// global population"). Allow equality within noise.
	if res.QueryErr > res.GlobalErr+0.05 {
		t.Errorf("query-scope err %.4f much worse than global-scope %.4f", res.QueryErr, res.GlobalErr)
	}
	if s := res.String(); !strings.Contains(s, "A4") {
		t.Error("String missing header")
	}
}

func TestAblationBayesVsSWG(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a generator")
	}
	res, err := RunAblationBayesVsSWG(tinyFlights())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if math.IsNaN(row.BayesErr) || math.IsNaN(row.MSWGErr) {
			t.Errorf("NaN error in %q", row.Query)
		}
	}
	if s := res.String(); !strings.Contains(s, "A5") {
		t.Error("String missing header")
	}
}

func TestAblationLambdaDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several generators")
	}
	res, err := RunAblationLambda(tinySpiral(), []float64{0.004, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Larger λ weights the proximity term more: shape distance must not
	// get worse as λ grows.
	if res.Rows[1].Shape > res.Rows[0].Shape+0.02 {
		t.Errorf("λ=%g shape %.4f worse than λ=%g shape %.4f",
			res.Rows[1].Lambda, res.Rows[1].Shape, res.Rows[0].Lambda, res.Rows[0].Shape)
	}
	if s := res.String(); !strings.Contains(s, "A1") {
		t.Error("String missing header")
	}
}

func TestAblationProjectionsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several generators")
	}
	res, err := RunAblationProjections(tinySpiral(), []int{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if math.IsNaN(row.Sliced2DW1) || row.Sliced2DW1 < 0 {
			t.Errorf("p=%d sliced W1 = %g", row.Projections, row.Sliced2DW1)
		}
	}
	if s := res.String(); !strings.Contains(s, "A2") {
		t.Error("String missing header")
	}
}

func TestConcurrentClientsSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a generator")
	}
	cfg := tinyFlights()
	cfg.Workers = 2
	res, err := RunConcurrentClients(ConcurrentConfig{
		Flights: cfg, Clients: []int{1, 4}, QueriesPerClient: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.QPS <= 0 {
			t.Errorf("clients=%d: qps = %g", row.Clients, row.QPS)
		}
	}
	if s := res.String(); !strings.Contains(s, "Concurrent clients") {
		t.Error("String missing header")
	}
}

// benchFlights sizes the flights workload so one OPEN query does enough
// replicate work (10 replicates × 2500 generated tuples) for the worker
// fan-out to matter.
func benchFlights(workers int) FlightsConfig {
	return FlightsConfig{
		PopN: 50000, SampleFrac: 0.05, BiasFrac: 0.95, OpenSamples: 10,
		Workers: workers, Seed: 5,
		SWG: swg.Config{
			Hidden: []int{50, 50, 50, 50, 50}, Latent: 18, Lambda: 1e-7,
			BatchSize: 500, Projections: 16, Epochs: 2, StepsPerEpoch: 2,
			LR: 0.001, Seed: 5,
		},
	}
}

// BenchmarkOpenQueryParallel measures a warm OPEN query (model trained, only
// replicate generation + combine timed) on the flights workload at different
// engine worker counts. Answers are asserted byte-identical across worker
// counts — the speedup must be free of result drift.
func BenchmarkOpenQueryParallel(b *testing.B) {
	sel, err := sql.ParseQuery(withVisibility(FlightQueries[4].SQL, "OPEN"))
	if err != nil {
		b.Fatal(err)
	}
	var reference string
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			setup, err := BuildFlights(benchFlights(workers))
			if err != nil {
				b.Fatal(err)
			}
			res, err := setup.Engine.Query(sel) // trains the model, untimed
			if err != nil {
				b.Fatal(err)
			}
			got := res.String()
			if reference == "" {
				reference = got
			} else if got != reference {
				b.Fatalf("workers=%d answer differs from workers=1:\n%s\nvs\n%s", workers, got, reference)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := setup.Engine.Query(sel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestWithVisibility(t *testing.T) {
	got := withVisibility("SELECT AVG(d) FROM F", "OPEN")
	if got != "SELECT OPEN AVG(d) FROM F" {
		t.Errorf("withVisibility = %q", got)
	}
}

func TestQueryError(t *testing.T) {
	truth := map[string]float64{"a": 100, "b": 50}
	est := map[string]float64{"a": 110} // b missing → 100% for b
	got := queryError(est, truth)
	want := (0.1 + 1.0) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("queryError = %g, want %g", got, want)
	}
	if !math.IsNaN(queryError(est, nil)) {
		t.Error("empty truth should be NaN")
	}
}

func TestHTTPLoadVerifiesNetworkAnswers(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a generator")
	}
	cfg := tinyFlights()
	res, err := RunHTTPLoad(HTTPLoadConfig{
		Flights: cfg, Clients: []int{1, 4}, QueriesPerClient: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// 24 warm-up verifications (8 queries × 3 visibilities) + the sweep.
	if want := 24 + 1*2 + 4*2; res.Verified != want {
		t.Errorf("Verified = %d, want %d", res.Verified, want)
	}
	for _, row := range res.Rows {
		if row.QPS <= 0 {
			t.Errorf("clients=%d: qps = %g", row.Clients, row.QPS)
		}
	}
	if s := res.String(); !strings.Contains(s, "byte-for-byte") {
		t.Error("String missing verification note")
	}
}

// TestExecMicroVerifies runs the executor microbenchmarks at a test-sized
// row count and requires every case to verify byte-identical answers
// between the row and vectorized paths (the speedup itself is
// hardware-dependent and asserted only by the committed BENCH_exec.json).
func TestExecMicroVerifies(t *testing.T) {
	res, err := RunExecMicro(ExecConfig{Rows: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) == 0 {
		t.Fatal("no benchmark cases ran")
	}
	for _, c := range res.Cases {
		if !c.Match {
			t.Errorf("case %s (%s): row and vectorized answers diverge", c.Name, c.Query)
		}
		if c.Groups == 0 {
			t.Errorf("case %s: empty answer", c.Name)
		}
	}
	if _, err := res.JSON(); err != nil {
		t.Fatalf("JSON: %v", err)
	}
}

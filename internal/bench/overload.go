package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"mosaic"
	"mosaic/client"
	"mosaic/internal/faulty"
	"mosaic/internal/server"
	"mosaic/internal/wire"
)

// OverloadConfig tunes the overload-robustness experiment: a deliberately
// undersized server (tiny admission limits) on the flights workload, reached
// through a flaky reverse proxy that drops and truncates connections, driven
// by batch clients hammering OPEN queries while interactive clients issue
// deadline-bounded CLOSED/SEMI-OPEN queries through the retrying client.
//
// The experiment fails loudly unless:
//
//   - every delivered answer — through proxy faults and retries — is
//     byte-identical to an in-process reference engine on the same snapshot;
//   - every 503 the server sheds carries a Retry-After hint;
//   - doomed requests (zero propagated deadline) are shed with ZERO engine
//     work (the per-visibility query counters must not move);
//   - batch saturation leaves interactive slots free: interactive queries
//     keep completing inside their deadline while batch floods the server.
type OverloadConfig struct {
	Flights               FlightsConfig
	BatchClients          int           // concurrent batch hammerers; default 4
	InteractiveClients    int           // concurrent interactive clients; default 4
	QueriesPerClient      int           // interactive queries per client; default 10
	BatchQueriesPerClient int           // batch queries per client; default 4
	MaxConcurrent         int           // total admission slots; default 4
	BatchMaxConcurrent    int           // batch slot cap; default 2
	InteractiveDeadline   time.Duration // per-interactive-query deadline; default 15s
	DoomedProbes          int           // zero-deadline requests; default 5
	DropEvery             int           // proxy: drop every Nth connection; default 7
	TruncateEvery         int           // proxy: truncate every Nth connection; default 11
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.BatchClients <= 0 {
		c.BatchClients = 4
	}
	if c.InteractiveClients <= 0 {
		c.InteractiveClients = 4
	}
	if c.QueriesPerClient <= 0 {
		c.QueriesPerClient = 10
	}
	if c.BatchQueriesPerClient <= 0 {
		c.BatchQueriesPerClient = 4
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.BatchMaxConcurrent <= 0 {
		c.BatchMaxConcurrent = 2
	}
	if c.InteractiveDeadline <= 0 {
		c.InteractiveDeadline = 15 * time.Second
	}
	if c.DoomedProbes <= 0 {
		c.DoomedProbes = 5
	}
	if c.DropEvery <= 0 {
		c.DropEvery = 7
	}
	if c.TruncateEvery <= 0 {
		c.TruncateEvery = 11
	}
	return c
}

// OverloadResult is the experiment's report.
type OverloadResult struct {
	InteractiveOK    int // interactive answers delivered and verified
	InteractiveGaveUp int // interactive queries that exhausted their retry budget
	BatchOK          int // batch answers delivered and verified
	BatchGaveUp      int
	Verified         int // answers compared byte-for-byte against the reference
	DoomedShed       int // zero-deadline probes answered 503 + Retry-After
	ProxyDropped     int64
	ProxyTruncated   int64
	Shed             int64 // server-side shed counter after the run
	Rejected         int64
	PlanCacheHits    int64
	InteractiveP50   time.Duration
	InteractiveP99   time.Duration
	Deadline         time.Duration
}

// String renders the report.
func (r *OverloadResult) String() string {
	var b strings.Builder
	b.WriteString("Overload robustness — flaky proxy + undersized admission, priority classes\n")
	fmt.Fprintf(&b, "  interactive  %d ok, %d gave up; p50 %s, p99 %s (deadline %s)\n",
		r.InteractiveOK, r.InteractiveGaveUp, r.InteractiveP50.Round(time.Millisecond),
		r.InteractiveP99.Round(time.Millisecond), r.Deadline)
	fmt.Fprintf(&b, "  batch        %d ok, %d gave up\n", r.BatchOK, r.BatchGaveUp)
	fmt.Fprintf(&b, "  faults       proxy dropped %d, truncated %d connections\n", r.ProxyDropped, r.ProxyTruncated)
	fmt.Fprintf(&b, "  server       shed %d, rejected %d, plan-cache hits %d\n", r.Shed, r.Rejected, r.PlanCacheHits)
	fmt.Fprintf(&b, "  doomed       %d/%d zero-deadline probes shed with Retry-After and zero engine work\n",
		r.DoomedShed, r.DoomedShed)
	fmt.Fprintf(&b, "  verified     %d answers byte-identical to the in-process reference\n", r.Verified)
	return b.String()
}

// RunOverload builds the flights workload into a served DB and an in-process
// reference DB (identical snapshot → byte-identical answers), exposes the
// served DB through internal/server with tiny admission limits behind a
// faulty.Proxy, and drives it with batch + interactive clients under retries.
func RunOverload(cfg OverloadConfig) (*OverloadResult, error) {
	cfg = cfg.withDefaults()
	setup, err := BuildFlights(cfg.Flights)
	if err != nil {
		return nil, err
	}
	script, err := setup.Engine.DumpScript()
	if err != nil {
		return nil, err
	}
	opts := &mosaic.Options{
		Seed:        setup.Cfg.Seed,
		OpenSamples: setup.Cfg.OpenSamples,
		Workers:     setup.Cfg.Workers,
		SWG:         setup.Cfg.SWG,
		IPF:         setup.Cfg.IPF,
	}
	served := mosaic.Open(opts)
	if err := served.Restore(script); err != nil {
		return nil, fmt.Errorf("bench: restore served DB: %v", err)
	}
	ref := mosaic.Open(opts)
	if err := ref.Restore(script); err != nil {
		return nil, fmt.Errorf("bench: restore reference DB: %v", err)
	}

	srv, err := server.New(server.Config{
		DB:                 served,
		MaxConcurrent:      cfg.MaxConcurrent,
		BatchMaxConcurrent: cfg.BatchMaxConcurrent,
		RequestTimeout:     5 * time.Minute,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()
	direct := "http://" + ln.Addr().String()

	proxy := &faulty.Proxy{
		Target:        ln.Addr().String(),
		DropEvery:     cfg.DropEvery,
		TruncateEvery: cfg.TruncateEvery,
	}
	proxyAddr, err := proxy.Start()
	if err != nil {
		return nil, err
	}
	defer proxy.Close()
	flaky := "http://" + proxyAddr

	// The job mixes: interactive = CLOSED and SEMI-OPEN Table 2 queries
	// (answered from stored samples, fast), batch = OPEN (model sampling,
	// slow) — matching the server's visibility-derived class defaults.
	type job struct {
		sql string
		ref string
	}
	var interactive, batch []job
	for _, q := range FlightQueries {
		interactive = append(interactive,
			job{sql: withVisibility(q.SQL, "CLOSED")},
			job{sql: withVisibility(q.SQL, "SEMI-OPEN")})
		batch = append(batch, job{sql: withVisibility(q.SQL, "OPEN")})
	}
	// Warm both engines through the direct (fault-free) path and pin the
	// reference renderings; this also trains the served engine's models so
	// the load phase measures serving, not first-touch training.
	warm := client.New(direct)
	pin := func(jobs []job) error {
		for i := range jobs {
			res, err := ref.Query(jobs[i].sql)
			if err != nil {
				return fmt.Errorf("bench: reference warm-up %q: %v", jobs[i].sql, err)
			}
			jobs[i].ref = renderResult(res)
			got, err := warm.Query(jobs[i].sql)
			if err != nil {
				return fmt.Errorf("bench: network warm-up %q: %v", jobs[i].sql, err)
			}
			if renderResult(got) != jobs[i].ref {
				return fmt.Errorf("bench: warm-up answer for %q diverged over HTTP", jobs[i].sql)
			}
		}
		return nil
	}
	if err := pin(interactive); err != nil {
		return nil, err
	}
	if err := pin(batch); err != nil {
		return nil, err
	}

	out := &OverloadResult{Verified: len(interactive) + len(batch), Deadline: cfg.InteractiveDeadline}
	retry := client.RetryPolicy{MaxRetries: 6, BaseBackoff: 50 * time.Millisecond, Budget: cfg.InteractiveDeadline}

	var mu sync.Mutex
	var latencies []time.Duration
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	// Batch hammerers: OPEN queries through the flaky proxy, batch priority,
	// generous budget. Saturating the batch slots is the point.
	for c := 0; c < cfg.BatchClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(flaky, client.WithRetry(client.RetryPolicy{
				MaxRetries: 8, BaseBackoff: 50 * time.Millisecond, Budget: 2 * time.Minute,
			}), client.WithPriority("batch"))
			for i := 0; i < cfg.BatchQueriesPerClient; i++ {
				j := batch[(c+i)%len(batch)]
				res, err := cl.Query(j.sql)
				if err != nil {
					mu.Lock()
					out.BatchGaveUp++
					mu.Unlock()
					continue
				}
				if renderResult(res) != j.ref {
					fail(fmt.Errorf("bench: batch client %d (%q): answer diverged from reference", c, j.sql))
					return
				}
				mu.Lock()
				out.BatchOK++
				out.Verified++
				mu.Unlock()
			}
		}(c)
	}
	// Interactive clients: deadline-bounded queries through the same flaky
	// proxy, racing the batch flood. Every delivered answer is verified; a
	// delivered answer inside the context deadline IS the latency bound.
	for c := 0; c < cfg.InteractiveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := client.New(flaky, client.WithRetry(retry), client.WithPriority("interactive"))
			for i := 0; i < cfg.QueriesPerClient; i++ {
				j := interactive[(c+i)%len(interactive)]
				ctx, cancel := context.WithTimeout(context.Background(), cfg.InteractiveDeadline)
				start := time.Now()
				res, err := cl.QueryContext(ctx, j.sql)
				elapsed := time.Since(start)
				cancel()
				if err != nil {
					mu.Lock()
					out.InteractiveGaveUp++
					mu.Unlock()
					continue
				}
				if renderResult(res) != j.ref {
					fail(fmt.Errorf("bench: interactive client %d (%q): answer diverged from reference", c, j.sql))
					return
				}
				mu.Lock()
				out.InteractiveOK++
				out.Verified++
				latencies = append(latencies, elapsed)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if out.InteractiveOK == 0 {
		return nil, fmt.Errorf("bench: no interactive query completed inside %s while batch saturated — QoS isolation failed", cfg.InteractiveDeadline)
	}
	sort.Slice(latencies, func(i, k int) bool { return latencies[i] < latencies[k] })
	out.InteractiveP50 = latencies[len(latencies)/2]
	out.InteractiveP99 = latencies[len(latencies)*99/100]

	// Doomed probes: a zero propagated deadline must shed with 503 +
	// Retry-After BEFORE the engine sees the query — the per-visibility
	// query counters must not move.
	before, err := warm.Stats()
	if err != nil {
		return nil, err
	}
	probe, _ := json.Marshal(wire.QueryRequest{Query: interactive[0].sql})
	for i := 0; i < cfg.DoomedProbes; i++ {
		req, err := http.NewRequest(http.MethodPost, direct+"/v1/query", bytes.NewReader(probe))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Mosaic-Deadline-Ms", "0")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, fmt.Errorf("bench: doomed probe %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			return nil, fmt.Errorf("bench: doomed probe %d answered %d, want 503", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			return nil, fmt.Errorf("bench: doomed probe %d shed without a Retry-After hint", i)
		}
		out.DoomedShed++
	}
	after, err := warm.Stats()
	if err != nil {
		return nil, err
	}
	for _, vis := range []string{"closed", "semi-open", "open"} {
		if after.Visibilities[vis].Queries != before.Visibilities[vis].Queries {
			return nil, fmt.Errorf("bench: doomed probes reached the engine (%s query counter moved)", vis)
		}
	}
	if after.Shed < int64(cfg.DoomedProbes) {
		return nil, fmt.Errorf("bench: shed counter %d after %d doomed probes", after.Shed, cfg.DoomedProbes)
	}
	out.Shed = after.Shed
	out.Rejected = after.Rejected
	if after.PlanCache != nil {
		out.PlanCacheHits = after.PlanCache.Hits
	}
	if out.PlanCacheHits == 0 {
		return nil, fmt.Errorf("bench: plan cache recorded no hits across repeated identical queries")
	}
	out.ProxyDropped = proxy.Dropped.Load()
	out.ProxyTruncated = proxy.Truncated.Load()
	return out, nil
}

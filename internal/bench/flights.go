package bench

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"mosaic/internal/core"
	"mosaic/internal/dataset"
	"mosaic/internal/exec"
	"mosaic/internal/ipf"
	"mosaic/internal/marginal"
	"mosaic/internal/sql"
	"mosaic/internal/stats"
	"mosaic/internal/swg"
	"mosaic/internal/table"
)

// FlightsConfig tunes the flights experiments (Fig 7, the 200-query sweep,
// and several ablations).
type FlightsConfig struct {
	PopN        int     // population rows (paper: 426,411; default 50,000 — see DESIGN.md)
	SampleFrac  float64 // sample fraction (paper: 0.05)
	BiasFrac    float64 // fraction of sample tuples with elapsed_time > 200 (paper: 0.95)
	OpenSamples int     // generated replicates per OPEN query (paper: 10)
	Workers     int     // engine intra-query parallelism (OPEN fan-out, training)
	SWG         swg.Config
	IPF         ipf.Options
	Seed        int64
}

func (c FlightsConfig) withDefaults() FlightsConfig {
	if c.PopN <= 0 {
		c.PopN = 50000
	}
	if c.SampleFrac <= 0 {
		c.SampleFrac = 0.05
	}
	if c.BiasFrac <= 0 {
		c.BiasFrac = 0.95
	}
	if c.OpenSamples <= 0 {
		c.OpenSamples = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.SWG.Hidden) == 0 {
		// Paper final flights parameters: 5 layers × 50 nodes, λ=1e-7,
		// p=1000, batch 500, ℓ = input dimensionality (18), 80 epochs.
		// Projections and epochs are reduced for CPU budget; the ablation
		// A2 sweeps p.
		c.SWG = swg.Config{
			Hidden:      []int{50, 50, 50, 50, 50},
			Latent:      18,
			Lambda:      1e-7,
			BatchSize:   500,
			Projections: 48,
			Epochs:      15,
			LR:          0.001,
			Seed:        c.Seed,
		}
	}
	return c
}

// MarginalBinWidths are the histogram bin widths used when deriving the
// population marginals (C,E), (O,E), (I,E), (D,E). The paper's whole-number
// "projections of the population data" are well-populated at 426k rows; at
// 50k rows the same cell occupancy needs coarser bins.
var MarginalBinWidths = map[string]float64{
	"elapsed_time": 10,
	"taxi_out":     2,
	"taxi_in":      2,
	"distance":     50,
}

// FlightsSetup bundles the engine-loaded flights world.
type FlightsSetup struct {
	Cfg     FlightsConfig
	Pop     *table.Table
	Sample  *table.Table
	Engine  *core.Engine
	SampleN int
}

// BuildFlights generates the population, draws the biased sample, loads
// both into a Mosaic engine (population metadata + sample), and returns the
// setup. The M-SWG trains lazily on the first OPEN query.
func BuildFlights(cfg FlightsConfig) (*FlightsSetup, error) {
	cfg = cfg.withDefaults()
	pop := dataset.Flights(dataset.FlightsConfig{N: cfg.PopN, Seed: cfg.Seed})
	pred, err := sql.ParseExpr("elapsed_time > 200")
	if err != nil {
		return nil, err
	}
	n := int(math.Round(float64(cfg.PopN) * cfg.SampleFrac))
	sample, err := dataset.BiasedSampleExact(pop, pred, n, cfg.BiasFrac, "flights_sample", cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(core.Options{
		Seed:        cfg.Seed,
		OpenSamples: cfg.OpenSamples,
		Workers:     cfg.Workers,
		SWG:         cfg.SWG,
		IPF:         cfg.IPF,
	})
	if _, err := eng.ExecScript(`
		CREATE GLOBAL POPULATION Flights
			(carrier TEXT, taxi_out INT, taxi_in INT, elapsed_time INT, distance INT);
		CREATE SAMPLE FlightsSample AS (SELECT * FROM Flights);
	`); err != nil {
		return nil, err
	}
	if err := eng.IngestTable("FlightsSample", sample); err != nil {
		return nil, err
	}
	// Population marginals: the four attribute pairs of Sec 5.3.
	for _, pair := range [][2]string{
		{"carrier", "elapsed_time"},
		{"taxi_out", "elapsed_time"},
		{"taxi_in", "elapsed_time"},
		{"distance", "elapsed_time"},
	} {
		widths := map[string]float64{}
		for _, a := range pair {
			if w, ok := MarginalBinWidths[a]; ok {
				widths[a] = w
			}
		}
		m, err := marginal.FromTableBinned(
			"Flights_"+pair[0]+"_"+pair[1], pop, []string{pair[0], pair[1]}, widths)
		if err != nil {
			return nil, err
		}
		if err := eng.AddMarginal("Flights", m); err != nil {
			return nil, err
		}
	}
	return &FlightsSetup{Cfg: cfg, Pop: pop, Sample: sample, Engine: eng, SampleN: n}, nil
}

// FlightQuery is one Table 2 query.
type FlightQuery struct {
	ID      int
	SQL     string // without visibility keyword, FROM Flights
	GroupBy bool
}

// FlightQueries are the paper's Table 2 queries (1–4 continuous, 5–8
// categorical GROUP BY).
var FlightQueries = []FlightQuery{
	{1, "SELECT AVG(distance) FROM Flights WHERE elapsed_time > 200", false},
	{2, "SELECT AVG(taxi_in) FROM Flights WHERE elapsed_time < 200", false},
	{3, "SELECT AVG(elapsed_time) FROM Flights WHERE distance > 1000", false},
	{4, "SELECT AVG(taxi_out) FROM Flights WHERE distance < 1000", false},
	{5, "SELECT carrier, AVG(distance) FROM Flights WHERE elapsed_time > 200 AND carrier IN ('WN', 'AA') GROUP BY carrier", true},
	{6, "SELECT carrier, AVG(taxi_in) FROM Flights WHERE elapsed_time < 200 AND carrier IN ('WN', 'AA') GROUP BY carrier", true},
	{7, "SELECT carrier, AVG(elapsed_time) FROM Flights WHERE distance > 1000 AND carrier IN ('WN', 'AA') GROUP BY carrier", true},
	{8, "SELECT carrier, AVG(taxi_out) FROM Flights WHERE distance < 1000 AND carrier IN ('US', 'F9') GROUP BY carrier", true},
}

func withVisibility(q, vis string) string {
	return strings.Replace(q, "SELECT ", "SELECT "+vis+" ", 1)
}

// answerMap flattens a result into group-key → aggregate value (scalar
// queries use the empty key).
func answerMap(res *exec.Result, grouped bool) map[string]float64 {
	out := map[string]float64{}
	for _, row := range res.Rows {
		key := ""
		vi := 0
		if grouped {
			key = row[0].HashKey() + "|" + row[0].String()
			vi = 1
		}
		if row[vi].IsNull() {
			continue
		}
		f, err := row[vi].Float64()
		if err != nil {
			continue
		}
		out[key] = f
	}
	return out
}

// queryError is the mean percent difference over the truth's groups; a
// group missing from the estimate counts as 100 % error (the estimate of
// that group is "it does not exist"). Empty truth gives NaN.
func queryError(est, truth map[string]float64) float64 {
	if len(truth) == 0 {
		return math.NaN()
	}
	var sum float64
	for k, tv := range truth {
		ev, ok := est[k]
		if !ok {
			sum += 1
			continue
		}
		sum += stats.PercentDiff(ev, tv)
	}
	return sum / float64(len(truth))
}

// Fig7Row is one query's percent difference per method.
type Fig7Row struct {
	ID               int
	SQL              string
	Unif, IPF, MSWG  float64
	TruthGroups      int
	EstMissingGroups int // truth groups absent from the M-SWG answer
}

// Fig7Result is the full figure (left panel: queries 1–4, right: 5–8).
type Fig7Result struct {
	Rows []Fig7Row
}

// String renders both panels.
func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — percent difference per query (Unif vs IPF vs M-SWG)\n")
	fmt.Fprintf(&b, "%-3s %-10s %-10s %-10s %s\n", "id", "Unif", "IPF", "M-SWG", "query")
	for _, row := range r.Rows {
		if row.ID == 5 {
			fmt.Fprintf(&b, "--- categorical GROUP BY queries ---\n")
		}
		fmt.Fprintf(&b, "%-3d %-10.4f %-10.4f %-10.4f %s\n", row.ID, row.Unif, row.IPF, row.MSWG, row.SQL)
	}
	return b.String()
}

// RunFigure7 regenerates Fig 7: Unif answers from the raw biased sample
// (CLOSED), IPF answers via SEMI-OPEN, and M-SWG answers via OPEN, each
// compared against the true population answer.
func RunFigure7(cfg FlightsConfig) (*Fig7Result, error) {
	setup, err := BuildFlights(cfg)
	if err != nil {
		return nil, err
	}
	return Figure7From(setup, FlightQueries)
}

// Figure7From answers the given queries against an existing setup.
func Figure7From(setup *FlightsSetup, queries []FlightQuery) (*Fig7Result, error) {
	out := &Fig7Result{}
	for _, fq := range queries {
		row, err := runFlightQuery(setup, fq)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, *row)
	}
	return out, nil
}

func runFlightQuery(setup *FlightsSetup, fq FlightQuery) (*Fig7Row, error) {
	truthSel, err := sql.ParseQuery(fq.SQL)
	if err != nil {
		return nil, fmt.Errorf("query %d: %v", fq.ID, err)
	}
	truthRes, err := exec.Run(setup.Pop, truthSel, exec.Options{Weighted: false})
	if err != nil {
		return nil, fmt.Errorf("query %d truth: %v", fq.ID, err)
	}
	truth := answerMap(truthRes, fq.GroupBy)

	answers := map[string]map[string]float64{}
	for vis, label := range map[string]string{
		"CLOSED": "unif", "SEMI-OPEN": "ipf", "OPEN": "mswg",
	} {
		sel, err := sql.ParseQuery(withVisibility(fq.SQL, vis))
		if err != nil {
			return nil, err
		}
		res, err := setup.Engine.Query(sel)
		if err != nil {
			return nil, fmt.Errorf("query %d %s: %v", fq.ID, vis, err)
		}
		answers[label] = answerMap(res, fq.GroupBy)
	}
	missing := 0
	for k := range truth {
		if _, ok := answers["mswg"][k]; !ok {
			missing++
		}
	}
	return &Fig7Row{
		ID:               fq.ID,
		SQL:              fq.SQL,
		Unif:             queryError(answers["unif"], truth),
		IPF:              queryError(answers["ipf"], truth),
		MSWG:             queryError(answers["mswg"], truth),
		TruthGroups:      len(truth),
		EstMissingGroups: missing,
	}, nil
}

// SweepConfig tunes the 200-random-query model-selection sweep (Sec 5.3:
// "200 random queries over the continuous attributes with the same template
// as queries 1–4 where the attributes and predicates are randomly
// generated").
type SweepConfig struct {
	Flights FlightsConfig
	Queries int
}

// SweepResult summarizes the sweep.
type SweepResult struct {
	Queries       int
	NonEmpty      int // queries where both truth and M-SWG answers exist
	MSWGBeatsUnif int
	IPFBeatsUnif  int
	MeanErrUnif   float64
	MeanErrIPF    float64
	MeanErrMSWG   float64
}

// String renders the sweep summary.
func (r *SweepResult) String() string {
	return fmt.Sprintf(
		"Random-query sweep — %d queries, %d non-empty\n"+
			"M-SWG beats Unif on %d/%d; IPF beats Unif on %d/%d\n"+
			"mean %% diff: Unif=%.4f IPF=%.4f M-SWG=%.4f",
		r.Queries, r.NonEmpty,
		r.MSWGBeatsUnif, r.NonEmpty, r.IPFBeatsUnif, r.NonEmpty,
		r.MeanErrUnif, r.MeanErrIPF, r.MeanErrMSWG)
}

// RunSweep regenerates the sweep.
func RunSweep(cfg SweepConfig) (*SweepResult, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 200
	}
	setup, err := BuildFlights(cfg.Flights)
	if err != nil {
		return nil, err
	}
	return SweepFrom(setup, cfg.Queries)
}

// SweepFrom runs the sweep against an existing setup.
func SweepFrom(setup *FlightsSetup, queries int) (*SweepResult, error) {
	attrs := []string{"taxi_out", "taxi_in", "elapsed_time", "distance"}
	ranges := map[string][2]float64{}
	for _, a := range attrs {
		col, err := setup.Pop.FloatColumn(a)
		if err != nil {
			return nil, err
		}
		lo, hi := minMax(col)
		ranges[a] = [2]float64{lo, hi}
	}
	rng := rand.New(rand.NewSource(setup.Cfg.Seed + 21))
	res := &SweepResult{Queries: queries}
	var eU, eI, eM []float64
	for q := 0; q < queries; q++ {
		agg := attrs[rng.Intn(len(attrs))]
		pv := attrs[rng.Intn(len(attrs))]
		r := ranges[pv]
		// Threshold in the central 60 % of the predicate attribute's range.
		thr := r[0] + (0.2+0.6*rng.Float64())*(r[1]-r[0])
		op := ">"
		if rng.Intn(2) == 0 {
			op = "<"
		}
		base := fmt.Sprintf("SELECT AVG(%s) FROM Flights WHERE %s %s %d", agg, pv, op, int(thr))
		row, err := runFlightQuery(setup, FlightQuery{ID: 100 + q, SQL: base})
		if err != nil {
			return nil, err
		}
		// Non-empty filter: NaN means empty truth; a missing scalar answer
		// shows up as error 1 from queryError's missing-group rule only for
		// grouped queries — for scalars an empty estimate map gives err 1.
		if math.IsNaN(row.Unif) || math.IsNaN(row.MSWG) || math.IsNaN(row.IPF) {
			continue
		}
		res.NonEmpty++
		if row.MSWG < row.Unif {
			res.MSWGBeatsUnif++
		}
		if row.IPF < row.Unif {
			res.IPFBeatsUnif++
		}
		eU = append(eU, row.Unif)
		eI = append(eI, row.IPF)
		eM = append(eM, row.MSWG)
	}
	res.MeanErrUnif = stats.Mean(eU)
	res.MeanErrIPF = stats.Mean(eI)
	res.MeanErrMSWG = stats.Mean(eM)
	return res, nil
}

// flightsTruthScalar answers a scalar query over the population directly.
func flightsTruthScalar(pop *table.Table, q string) (float64, error) {
	sel, err := sql.ParseQuery(q)
	if err != nil {
		return 0, err
	}
	res, err := exec.Run(pop, sel, exec.Options{})
	if err != nil {
		return 0, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return 0, fmt.Errorf("bench: %q is not scalar", q)
	}
	if res.Rows[0][0].IsNull() {
		return math.NaN(), nil
	}
	return res.Rows[0][0].Float64()
}
